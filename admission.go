package vdce

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// QuotaConfig bounds each owner's simultaneous use of the submission
// pipeline. Zero fields are unlimited. Quotas are per owner name; the
// anonymous owner "" is one owner like any other.
type QuotaConfig struct {
	// MaxQueuedPerOwner caps how many of one owner's jobs may sit in the
	// admission queue (including submitters still blocked on queue
	// backpressure). Admission over the cap fails immediately with a
	// QuotaError — the caller is told to back off rather than silently
	// deepening the backlog.
	MaxQueuedPerOwner int
	// MaxInFlightPerOwner caps how many of one owner's jobs may be
	// scheduling or running at once. Jobs over the cap are not rejected:
	// they park in the admission queue — other owners' jobs dispatch
	// past them — until the owner drops below the cap. Pair it with
	// MaxQueuedPerOwner: parked jobs still occupy shared QueueDepth
	// slots, so without a queued cap one throttled owner's backlog can
	// fill the queue and stall every owner's Submit on backpressure.
	MaxInFlightPerOwner int
	// MaxHostsPerOwner caps an owner's concurrently held host slots:
	// each dispatched job charges one slot per distinct host of its own
	// placement (plus replacement hosts it reschedules onto mid-run),
	// so two jobs sharing a host charge it twice — the accounting an
	// owner's per-job hosts_held counters sum to, deliberately
	// conservative on the small overlapping testbeds this models. A
	// scheduled job that would exceed the cap parks (off-worker, so it
	// never blocks other owners' dispatch) until enough of the owner's
	// slots free up. A single job needing more slots than the cap is
	// admitted alone, once the owner holds nothing — an over-sized job
	// parks, it does not deadlock.
	MaxHostsPerOwner int
}

// ErrQuotaExceeded is the sentinel matched (via errors.Is) by every
// per-owner quota rejection.
var ErrQuotaExceeded = errors.New("vdce: owner quota exceeded")

// QuotaError is the typed admission rejection: which owner hit which
// per-owner cap, and where usage stood. It matches ErrQuotaExceeded
// with errors.Is.
type QuotaError struct {
	// Owner is the job's owner ("" for anonymous submissions).
	Owner string
	// Resource names the exhausted cap: "queued-jobs", "in-flight-jobs",
	// or "hosts".
	Resource string
	// Limit is the configured cap; Used is the owner's usage at the
	// rejection.
	Limit int
	Used  int
}

func (e *QuotaError) Error() string {
	owner := e.Owner
	if owner == "" {
		owner = "(anonymous)"
	}
	return fmt.Sprintf("vdce: owner %s over %s quota (%d of %d in use)",
		owner, e.Resource, e.Used, e.Limit)
}

// Is makes errors.Is(err, ErrQuotaExceeded) match every QuotaError.
func (e *QuotaError) Is(target error) bool { return target == ErrQuotaExceeded }

// admitQueue is the pipeline's admission queue: weighted fair queuing
// across owners over per-owner priority sub-queues.
//
// Within one owner, jobs order exactly as the PR 2 aging heap did: a
// max-heap over (effective priority, enqueue time) where a queued job's
// effective priority rises by one level per AgingStep of waiting.
// Because every queued job ages at the same rate, the pairwise order of
// two jobs never changes over time, so the heap key is computed once at
// enqueue:
//
//	rank = base * step - enqueuedNanos
//
// Higher rank pops first; saturated ranks fall back to FIFO seq order.
//
// Across owners, pops are arbitrated by smoothed virtual-time fair
// queuing: each owner carries a weight w and a virtual finish time. A
// pop charges the chosen owner 1/w of virtual time, and the next pop
// goes to the eligible owner with the smallest charge point
// max(ownerVFinish, queueVTime) — so over a backlogged interval each
// owner's dispatch share converges to w/Σw, and one owner's flood can
// no longer starve the rest regardless of its jobs' priorities. The
// max() against the queue-wide virtual clock is the smoothing: an owner
// returning from idle resumes at "now" instead of burning banked
// credit, and a saturated owner cannot run up debt that would silence
// it later.
//
// Arbitration is O(log owners) per pop via the eligible-owner index:
// the smoothing max() splits eligible owners into exactly two groups —
// owners at or behind the queue clock (vfinish <= vtime), whose charge
// points all equal vtime and therefore tie, resolved by name; and
// owners ahead of the clock (vfinish > vtime), whose charge points are
// their own finish times. The index keeps the first group in a min-heap
// by name (q.lagged) and the second in a min-heap by (vfinish, name)
// (q.ahead); the lagged top always beats every ahead owner, so the
// winner is one peek. vtime only ever advances, so ahead owners it
// overtakes migrate to lagged at most once per pop they earned —
// amortized O(log owners). pickOwnerLinearLocked retains the pre-index
// linear scan as the reference the property suite and the 10k-owner
// bench compare against.
//
// The queue also carries the per-owner quota ledger (queued
// reservations, in-flight jobs, held hosts): eligibility for a pop
// requires the owner to be under its in-flight cap, which is how
// capped owners' jobs park in place while other owners dispatch past
// them.
//
// The sub-queue heaps are hand-rolled over slices (no container/heap)
// so the Submit hot path does not pay an interface boxing allocation
// per push and pop.
type admitQueue struct {
	mu    sync.Mutex
	step  time.Duration
	quota QuotaConfig
	seq   uint64
	vtime float64 // queue-wide virtual clock: charge point of the last pop
	// owners holds every owner with live queue state: backlog, quota
	// reservations, in-flight charges, or admin pins. Shares that drain
	// to nothing are pruned (see maybePruneLocked), so churning one-shot
	// owners do not grow the map, the position replay, or /v1/owners
	// without bound.
	owners map[string]*ownerShare
	// loc maps every queued job ID to its owner and sub-heap slot,
	// maintained through every heap swap — remove (cancel) and the
	// position membership probe are O(1) lookups instead of scans over
	// every owner's backlog.
	loc map[string]jobLoc
	// lagged/ahead: the eligible-owner index (see the type comment).
	lagged ownerHeap
	ahead  ownerHeap
	// queued is the total backlog across owners, so depth gauges do not
	// iterate the owner map.
	queued int
	// prunes counts owner shares retired by maybePruneLocked (metrics).
	prunes uint64
	// gen counts the mutations that can change the arbitration replay's
	// output — push (new job, possible weight change), pop (backlog and
	// virtual clocks move), remove (backlog shrinks). posCache memoizes
	// the last full position replay and is valid while posGen == gen, so
	// a burst of Status()/ListJobs calls over an unchanged queue pays
	// for one replay, not one per call (the PR 3 generation-validated
	// cache pattern).
	gen      uint64
	posGen   uint64
	posCache map[string]int
}

// jobLoc is one queued job's location: its owner's share and its index
// in the owner's sub-heap slice.
type jobLoc struct {
	os  *ownerShare
	idx int
}

// ownerShare is one owner's sub-queue plus its fair-share and quota
// state. All fields are guarded by admitQueue.mu.
type ownerShare struct {
	name string
	q    *admitQueue  // back-pointer for the job-location index
	jobs []admitEntry // aging-rank max-heap
	// weight is the owner's fair-share weight (>= 1); the latest
	// submitted job's resolved weight wins.
	weight int
	// vfinish is the owner's virtual finish time: the charge point of
	// its last pop plus 1/weight.
	vfinish float64
	// where/hidx: membership in the eligible-owner index — which heap
	// (heapNone when ineligible) and at which slot.
	where int8
	hidx  int
	// reserved counts the owner's queued jobs, from admission-quota
	// reservation (before the submitter even waits for a queue slot)
	// until pop or removal.
	reserved int
	// inFlight counts the owner's scheduling+running jobs (charged at
	// pop, released when the job terminalizes).
	inFlight int
	// hostsHeld counts the testbed hosts the owner's running jobs hold.
	hostsHeld int
	// parked counts the owner's jobs parked on the held-hosts cap.
	// While any is parked the owner is ineligible for pops, so parked
	// dispatch goroutines are bounded per owner by the scheduler's
	// worker count times its dispatch batch (workers that popped before
	// the first park landed can add up to a batch each) — a capped
	// owner's backlog waits in the queue, not in a growing pile of
	// goroutines holding stale placements.
	parked int
	// changed is this owner's usage broadcast: closed (and lazily
	// remade) when the owner's in-flight or held-host usage frees or
	// its caps change, waking only this owner's parked dispatches —
	// terminal jobs elsewhere no longer thunder through every parked
	// goroutine in the system.
	changed chan struct{}
	// pinned marks a weight set by the owner-admin endpoint: submissions
	// no longer override it (normally the latest job's resolved share
	// weight wins).
	pinned bool
	// caps, when non-nil, replaces the queue-wide QuotaConfig for this
	// owner — the admin endpoint's per-owner quota override.
	caps *QuotaConfig
}

// Eligible-owner index heap identifiers.
const (
	heapNone int8 = iota
	heapLagged
	heapAhead
)

// ownerHeap is one half of the eligible-owner index: a hand-rolled
// min-heap of owner shares ordered by name (lagged group — every member
// charges at the queue clock, so only the tie-break matters) or by
// (vfinish, name) (ahead group). Members carry their slot in hidx so
// arbitrary removal is O(log n).
type ownerHeap struct {
	id    int8
	items []*ownerShare
}

func (h *ownerHeap) less(a, b *ownerShare) bool {
	if h.id == heapAhead && a.vfinish != b.vfinish {
		return a.vfinish < b.vfinish
	}
	return a.name < b.name
}

func (h *ownerHeap) push(os *ownerShare) {
	os.where = h.id
	os.hidx = len(h.items)
	h.items = append(h.items, os)
	h.up(os.hidx)
}

func (h *ownerHeap) removeAt(i int) *ownerShare {
	os := h.items[i]
	last := len(h.items) - 1
	h.items[i] = h.items[last]
	h.items[last] = nil
	h.items = h.items[:last]
	if i < last {
		h.items[i].hidx = i
		h.down(i)
		h.up(i)
	}
	os.where = heapNone
	os.hidx = -1
	return os
}

func (h *ownerHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		h.items[i].hidx = i
		i = parent
	}
	h.items[i].hidx = i
}

func (h *ownerHeap) down(i int) {
	n := len(h.items)
	for {
		best := i
		if l := 2*i + 1; l < n && h.less(h.items[l], h.items[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && h.less(h.items[r], h.items[best]) {
			best = r
		}
		if best == i {
			break
		}
		h.items[i], h.items[best] = h.items[best], h.items[i]
		h.items[i].hidx = i
		i = best
	}
	h.items[i].hidx = i
}

func newAdmitQueue(step time.Duration, quota QuotaConfig) *admitQueue {
	return &admitQueue{
		step:   step,
		quota:  quota,
		owners: make(map[string]*ownerShare),
		loc:    make(map[string]jobLoc),
		lagged: ownerHeap{id: heapLagged},
		ahead:  ownerHeap{id: heapAhead},
	}
}

// owner returns (creating if needed) the owner's share record. Caller
// holds q.mu.
func (q *admitQueue) owner(name string) *ownerShare {
	os, ok := q.owners[name]
	if !ok {
		os = &ownerShare{name: name, q: q, weight: 1, hidx: -1}
		q.owners[name] = os
	}
	return os
}

// reindexLocked places an owner in, moves it within, or drops it from
// the eligible-owner index to match its current eligibility and charge
// point. Call after any mutation that can change either: backlog size,
// in-flight count, parked count, caps, or vfinish. Caller holds q.mu.
func (q *admitQueue) reindexLocked(os *ownerShare) {
	q.detachLocked(os)
	if !q.eligible(os) {
		return
	}
	if os.vfinish <= q.vtime {
		q.lagged.push(os)
	} else {
		q.ahead.push(os)
	}
}

// detachLocked removes an owner from whichever index heap holds it.
// Caller holds q.mu.
func (q *admitQueue) detachLocked(os *ownerShare) {
	switch os.where {
	case heapLagged:
		q.lagged.removeAt(os.hidx)
	case heapAhead:
		q.ahead.removeAt(os.hidx)
	}
}

// migrateLocked moves ahead-group owners the advancing queue clock has
// overtaken into the lagged group, restoring the index invariant that
// every eligible owner with vfinish <= vtime sits in q.lagged. Each
// migration is paid for by the pop that advanced the clock past the
// owner, so the amortized cost stays O(log owners). Caller holds q.mu.
func (q *admitQueue) migrateLocked() {
	for len(q.ahead.items) > 0 && q.ahead.items[0].vfinish <= q.vtime {
		q.lagged.push(q.ahead.removeAt(0))
	}
}

// maybePruneLocked retires an owner share that holds no state at all —
// no backlog, reservations, in-flight or host charges, parks, and no
// admin pin or quota override — so churning one-shot owners leave the
// queue at steady-state size. A pruned owner that returns resumes at
// the queue clock, which the smoothing max() already guarantees for
// any idle owner; the only forgotten state is at most one pop's 1/w of
// un-elapsed virtual debt, which an owner can only shed by fully
// draining first. Caller holds q.mu.
func (q *admitQueue) maybePruneLocked(os *ownerShare) {
	if len(os.jobs) != 0 || os.reserved != 0 || os.inFlight != 0 || os.hostsHeld != 0 ||
		os.parked != 0 || os.pinned || os.caps != nil {
		return
	}
	q.detachLocked(os)
	delete(q.owners, os.name)
	q.prunes++
}

// rank computes the static within-owner heap key for a job admitted at
// enqueued. The priority boost saturates at ±2^61 so an absurd
// caller-supplied priority (the HTTP field is an arbitrary int) cannot
// overflow the product and invert the queue order; saturated jobs rank
// equal and fall back to FIFO via the seq tie-break.
func (q *admitQueue) rank(priority int, enqueued time.Time) int64 {
	const maxBoost = int64(1) << 61 // |boost| + |UnixNano| stays well inside int64
	limit := maxBoost / int64(q.step)
	p := int64(priority)
	if p > limit {
		p = limit
	} else if p < -limit {
		p = -limit
	}
	return p*int64(q.step) - enqueued.UnixNano()
}

// reserveQueued claims one unit of the owner's queued-jobs quota before
// the job enters the admission path, so a flooding owner is rejected
// with a typed error instead of invisibly consuming shared queue
// capacity. The reservation is consumed by push and released by pop,
// remove, or unreserveQueued (for submissions that die before push).
func (q *admitQueue) reserveQueued(owner string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	os := q.owner(owner)
	if cap := q.capsFor(os).MaxQueuedPerOwner; cap > 0 && os.reserved >= cap {
		q.maybePruneLocked(os) // a rejected first contact must not leave a share behind
		return &QuotaError{Owner: owner, Resource: "queued-jobs", Limit: cap, Used: os.reserved}
	}
	os.reserved++
	return nil
}

// adoptQueued re-enqueues a job recovered from the durable store:
// reservation and push in one step, bypassing the queued-jobs cap — the
// job was already admitted in the previous incarnation, and rejecting
// it now would silently drop accepted work.
func (q *admitQueue) adoptQueued(j *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	os := q.owner(j.Owner)
	os.reserved++
	q.pushLocked(os, j)
}

// unreserveQueued returns a reservation for a submission that never
// reached push (canceled or failed while waiting for a queue slot).
func (q *admitQueue) unreserveQueued(owner string) {
	q.mu.Lock()
	os := q.owner(owner)
	os.reserved--
	q.maybePruneLocked(os)
	q.mu.Unlock()
}

// push enqueues a job under its owner's sub-queue, consuming the
// reservation made by reserveQueued. The job's resolved share weight
// becomes the owner's weight (latest submission wins), saturated at
// MaxShareWeight — the weight is client-settable over HTTP, so like
// the rank() priority clamp this bounds what a hostile value can buy.
func (q *admitQueue) push(j *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.pushLocked(q.owner(j.Owner), j)
}

// pushLocked is the shared body of push and adoptQueued. Caller holds
// q.mu.
func (q *admitQueue) pushLocked(os *ownerShare, j *Job) {
	q.seq++
	q.gen++
	if j.shareWeight >= 1 && !os.pinned {
		os.weight = clampShareWeight(j.shareWeight)
	}
	os.jobs = append(os.jobs, admitEntry{job: j, rank: q.rank(j.priority, j.enqueued), seq: q.seq})
	os.up(len(os.jobs) - 1)
	q.queued++
	q.reindexLocked(os)
}

// capsFor returns the quota caps that govern an owner: its admin
// override when one is set, the queue-wide config otherwise. Caller
// holds q.mu.
func (q *admitQueue) capsFor(os *ownerShare) QuotaConfig {
	if os.caps != nil {
		return *os.caps
	}
	return q.quota
}

// eligible reports whether the owner may dispatch another job: it has
// queued work, is under its in-flight cap, and has no job already
// parked on the held-hosts cap (popping another would only grow the
// parked pile with a placement that goes stale while it waits).
// Caller holds q.mu.
func (q *admitQueue) eligible(os *ownerShare) bool {
	if len(os.jobs) == 0 {
		return false
	}
	if cap := q.capsFor(os).MaxInFlightPerOwner; cap > 0 && os.inFlight >= cap {
		return false
	}
	if os.parked > 0 {
		return false
	}
	return true
}

// setParked marks or clears a job's held-hosts park, gating the
// owner's eligibility for further pops. Idempotent per job.
func (q *admitQueue) setParked(j *Job, parked bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j.hostParked == parked {
		return
	}
	j.hostParked = parked
	os := q.owner(j.Owner)
	if parked {
		os.parked++
	} else {
		os.parked--
	}
	q.reindexLocked(os)
}

// The WFQ arbitration primitives, shared by pop (pickOwnerLocked), the
// retained linear reference arbiter, and the position replay so the
// three can never drift apart (pinned against each other by
// TestAdmitPositionPredictsPopOrder and the indexed-vs-linear
// equivalence suite).

// chargePoint is the virtual time at which an owner's next pop is
// charged: its own finish time, smoothed forward to the queue clock
// when it returns from idle.
func chargePoint(vfinish, vtime float64) float64 {
	if vtime > vfinish {
		return vtime
	}
	return vfinish
}

// wfqWins reports whether a candidate (charge, name) beats the
// incumbent: smaller charge point first, owner name as the
// deterministic tie-break.
func wfqWins(charge float64, name string, incCharge float64, incName string) bool {
	return charge < incCharge || (charge == incCharge && name < incName)
}

// wfqCost is the virtual-time cost one pop charges an owner.
func wfqCost(weight int) float64 { return 1 / float64(weight) }

// pickOwnerLocked returns the eligible owner with the smallest virtual
// charge point in O(log owners), advancing the virtual clocks. The
// winner is detached from the index; the caller mutates its backlog and
// ledger and then reindexes it. Caller holds q.mu.
//
// Correctness of the two-group peek: every lagged owner charges at
// exactly vtime; every ahead owner charges at its vfinish > vtime. So
// when the lagged heap is non-empty its name-minimal top is the global
// WFQ winner (all lagged owners tie, name breaks the tie, and no ahead
// owner can charge that low); otherwise the ahead heap's
// (vfinish, name)-minimal top is.
func (q *admitQueue) pickOwnerLocked() *ownerShare {
	var best *ownerShare
	if len(q.lagged.items) > 0 {
		best = q.lagged.items[0]
	} else if len(q.ahead.items) > 0 {
		best = q.ahead.items[0]
	} else {
		return nil
	}
	charge := chargePoint(best.vfinish, q.vtime)
	q.detachLocked(best)
	q.vtime = charge
	best.vfinish = charge + wfqCost(best.weight)
	q.migrateLocked()
	return best
}

// pickOwnerLinearLocked is the pre-index O(owners) arbiter, retained as
// the reference implementation: the randomized equivalence suite drives
// it and pickOwnerLocked from one op stream and asserts identical pop
// order, and BenchmarkAdmission10kOwners uses it as the scaling
// baseline. It maintains the same index/clock state so the two are
// interchangeable mid-stream. Caller holds q.mu.
func (q *admitQueue) pickOwnerLinearLocked() *ownerShare {
	var best *ownerShare
	var bestCharge float64
	for _, os := range q.owners {
		if !q.eligible(os) {
			continue
		}
		charge := chargePoint(os.vfinish, q.vtime)
		if best == nil || wfqWins(charge, os.name, bestCharge, best.name) {
			best, bestCharge = os, charge
		}
	}
	if best == nil {
		return nil
	}
	q.detachLocked(best)
	q.vtime = bestCharge
	best.vfinish = bestCharge + wfqCost(best.weight)
	q.migrateLocked()
	return best
}

// popOneLocked drains one job from the owner the arbiter selects,
// charging the owner's in-flight ledger. The linear flag picks the
// retained reference arbiter instead of the index (a flag, not a
// function value, so the hot path does not allocate a method closure
// per pop). Caller holds q.mu.
func (q *admitQueue) popOneLocked(linear bool) *Job {
	var os *ownerShare
	if linear {
		os = q.pickOwnerLinearLocked()
	} else {
		os = q.pickOwnerLocked()
	}
	if os == nil {
		return nil
	}
	q.gen++
	j := os.removeAt(0).job
	os.reserved--
	os.inFlight++
	q.queued--
	j.usageCharged = true
	q.reindexLocked(os)
	return j
}

// pop removes and returns the next job under weighted fair queuing, or
// nil when no owner is eligible (queue empty, or every backlogged
// owner is at its in-flight cap — its jobs stay parked in place). The
// popped job is charged against its owner's in-flight count; the
// charge is released when the job terminalizes.
func (q *admitQueue) pop() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.popOneLocked(false)
}

// popLinear is pop arbitrated by the retained linear-scan reference.
// Test and benchmark use only.
func (q *admitQueue) popLinear() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.popOneLocked(true)
}

// popBatch appends up to max fairly-arbitrated jobs to buf under one
// lock acquisition — the batched scheduler handoff: one worker wakeup
// drains a batch instead of paying a lock round-trip and a wake token
// per job. Semantically identical to max sequential pops.
func (q *admitQueue) popBatch(buf []*Job, max int) []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(buf) < max {
		j := q.popOneLocked(false)
		if j == nil {
			break
		}
		buf = append(buf, j)
	}
	return buf
}

// remove deletes one job by ID, reporting whether it was found. Used by
// Cancel to free the job's queue slot eagerly. O(log backlog) via the
// job-location index — a cancel storm no longer scans every owner's
// entire backlog per call.
func (q *admitQueue) remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	l, ok := q.loc[id]
	if !ok {
		return false
	}
	q.gen++
	l.os.removeAt(l.idx)
	l.os.reserved--
	q.queued--
	q.reindexLocked(l.os)
	q.maybePruneLocked(l.os)
	return true
}

// release returns a terminal job's in-flight and held-host charges to
// its owner and wakes the owner's parked dispatches. It reports whether
// anything was freed (callers use that to wake idle workers exactly
// once). Idempotent: only the first call after a pop frees anything.
func (q *admitQueue) release(j *Job) bool {
	q.mu.Lock()
	if !j.usageCharged {
		q.mu.Unlock()
		return false
	}
	j.usageCharged = false
	os := q.owner(j.Owner)
	os.inFlight--
	os.hostsHeld -= j.hostsCharged
	j.hostsCharged = 0
	j.chargedHosts = nil
	if j.hostParked {
		// A parked job that terminalized (cancel, shutdown) un-gates its
		// owner here, whatever its park goroutine is still doing.
		j.hostParked = false
		os.parked--
	}
	if os.changed != nil {
		// Wake only this owner's parked dispatches: freed usage is
		// per-owner state, so terminalizing owner A's job must not
		// thunder through every other owner's parked goroutines.
		close(os.changed)
		os.changed = nil
	}
	q.reindexLocked(os)
	q.maybePruneLocked(os)
	q.mu.Unlock()
	return true
}

// tryChargeHosts attempts to charge the placement's distinct hosts
// against the job's owner, recording the usage (always, so /v1/owners
// counters stay live) and enforcing MaxHostsPerOwner when set. An
// owner holding nothing may always dispatch one job — a single job
// larger than the cap runs alone instead of parking forever. Returns
// false when the job must park until hosts free.
func (q *admitQueue) tryChargeHosts(j *Job, hosts []string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !j.usageCharged {
		// The job already terminalized and returned its charges; report
		// success without charging — the dispatch path observes the
		// cancellation and goes no further, and hosts charged here would
		// never be released.
		return true
	}
	os := q.owner(j.Owner)
	n := len(hosts)
	if cap := q.capsFor(os).MaxHostsPerOwner; cap > 0 && os.hostsHeld > 0 && os.hostsHeld+n > cap {
		return false
	}
	os.hostsHeld += n
	j.hostsCharged = n
	j.chargedHosts = make(map[string]bool, n)
	for _, h := range hosts {
		j.chargedHosts[h] = true
	}
	return true
}

// chargeReplacementHost adds a host the engine rescheduled one of the
// job's tasks onto mid-run, keeping the owner's held-hosts ledger
// truthful as the placement drifts from the dispatched table. The
// charge bypasses the cap — a running job cannot park — but inflates
// the owner's usage so subsequent dispatches see it; hosts lost to
// failure stay charged until the job ends (other tasks of the job may
// still run there), which errs on the side of under-admission. It
// returns the job's updated host count and whether anything changed.
func (q *admitQueue) chargeReplacementHost(j *Job, host string) (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !j.usageCharged || host == "" || j.chargedHosts[host] {
		return j.hostsCharged, false
	}
	j.chargedHosts[host] = true
	j.hostsCharged++
	q.owner(j.Owner).hostsHeld++
	return j.hostsCharged, true
}

// usageChanged returns the owner's current usage broadcast channel: it
// closes the next time that owner's in-flight or held-host usage frees
// (or its caps change). Parked dispatches fetch it before re-checking
// quota so a release between check and wait still wakes them. The
// channel is created lazily — owners with nothing parked never allocate
// one.
func (q *admitQueue) usageChanged(owner string) <-chan struct{} {
	q.mu.Lock()
	defer q.mu.Unlock()
	os := q.owner(owner)
	if os.changed == nil {
		os.changed = make(chan struct{})
	}
	return os.changed
}

// position returns the 1-based dequeue position of a queued job (1 =
// next to pop), or 0 when the job is not queued — served from the same
// cached arbitration replay positions() serves, so the single-job and
// listing surfaces can never disagree. The membership probe is an O(1)
// location-index lookup: Status() asks for jobs that have already
// popped (or are not yet pushed) all the time, and those must not pay
// for a replay — or, at scale, even a backlog scan.
func (q *admitQueue) position(id string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.loc[id]; !ok {
		return 0
	}
	return q.positionsLocked()[id]
}

// positions returns the 1-based dequeue position of every queued job
// in one arbitration replay, O(backlog·owners + backlog·log backlog)
// when the queue changed since the last call and O(1) otherwise. The
// returned map is shared with the cache: callers read, never mutate.
func (q *admitQueue) positions() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.positionsLocked()
}

// positionsLocked returns the full position replay, recomputing only
// when a push/pop/remove invalidated the cached one. Caller holds q.mu.
func (q *admitQueue) positionsLocked() map[string]int {
	if q.posCache == nil || q.posGen != q.gen {
		q.posCache = q.replayPositions("")
		q.posGen = q.gen
	}
	return q.posCache
}

// replayPositions replays the weighted-fair arbitration over the
// current backlog with the live virtual clocks shadowed, assigning
// each queued job the position pop would drain it at; a non-empty
// target stops the replay as soon as that job is placed. In-flight
// caps are ignored — a parked job reports the position it will
// dispatch from once its owner frees up. The replay uses the same
// chargePoint / wfqWins / wfqCost primitives as pickOwnerLocked, and
// TestAdmitPositionPredictsPopOrder pins the agreement. Caller holds
// q.mu.
func (q *admitQueue) replayPositions(target string) map[string]int {
	type shadow struct {
		os      *ownerShare
		order   []admitEntry // within-owner dequeue order
		next    int
		vfinish float64
	}
	total := 0
	shadows := make([]shadow, 0, len(q.owners))
	for _, os := range q.owners {
		if len(os.jobs) == 0 {
			continue
		}
		order := append([]admitEntry(nil), os.jobs...)
		sort.Slice(order, func(i, j int) bool { return order[i].before(order[j]) })
		shadows = append(shadows, shadow{os: os, order: order, vfinish: os.vfinish})
		total += len(order)
	}
	out := make(map[string]int, total)
	vtime := q.vtime
	for pos := 1; pos <= total; pos++ {
		var best *shadow
		var bestCharge float64
		for i := range shadows {
			s := &shadows[i]
			if s.next == len(s.order) {
				continue
			}
			charge := chargePoint(s.vfinish, vtime)
			if best == nil || wfqWins(charge, s.os.name, bestCharge, best.os.name) {
				best, bestCharge = s, charge
			}
		}
		vtime = bestCharge
		best.vfinish = bestCharge + wfqCost(best.os.weight)
		id := best.order[best.next].job.ID
		out[id] = pos
		best.next++
		if id == target {
			break
		}
	}
	return out
}

// queuedLen returns the total backlog size across owners (tests and
// monitoring) — an O(1) counter read, so depth gauges cost nothing at
// 10k owners.
func (q *admitQueue) queuedLen() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}

// ownerCount returns how many owner shares the queue currently holds
// (monitoring; with pruning this tracks live owners, not every owner
// ever seen).
func (q *admitQueue) ownerCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.owners)
}

// pruneCount returns how many idle owner shares have been retired.
func (q *admitQueue) pruneCount() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.prunes
}

// setOwnerAdmin applies a runtime owner-admin update: a weight >= 1
// pins the owner's fair-share weight against future submissions, and a
// non-nil caps installs a per-owner quota override (replacing any
// previous override wholesale). It wakes the owner's parked dispatches
// — a raised cap may free them — and invalidates the position cache,
// since a weight change reorders the arbitration replay.
func (q *admitQueue) setOwnerAdmin(name string, weight int, caps *QuotaConfig) {
	q.mu.Lock()
	defer q.mu.Unlock()
	os := q.owner(name)
	if weight >= 1 {
		os.weight = clampShareWeight(weight)
		os.pinned = true
	}
	if caps != nil {
		c := *caps
		os.caps = &c
	}
	q.gen++
	if os.changed != nil {
		close(os.changed)
		os.changed = nil
	}
	q.reindexLocked(os)
	q.maybePruneLocked(os)
}

// ownerAdmin reports an owner's effective admin state: weight, whether
// it is pinned, the caps that govern it, whether those caps are a
// per-owner override (as opposed to the queue-wide config), and whether
// the queue currently holds a share for the owner at all. A read — it
// does not materialize a share for unknown owners, which would leak
// one per monitoring probe.
func (q *admitQueue) ownerAdmin(name string) (weight int, pinned bool, caps QuotaConfig, override, known bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if os, ok := q.owners[name]; ok {
		return os.weight, os.pinned, q.capsFor(os), os.caps != nil, true
	}
	return 1, false, q.quota, false, false
}

// ownerWeights snapshots each live owner's fair-share weight.
func (q *admitQueue) ownerWeights() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int, len(q.owners))
	for name, os := range q.owners {
		out[name] = os.weight
	}
	return out
}

// --- within-owner aging-rank heap ---

// setLoc records the job at heap slot i in the queue's location index.
// Caller holds the queue's mu.
func (os *ownerShare) setLoc(i int) {
	os.q.loc[os.jobs[i].job.ID] = jobLoc{os: os, idx: i}
}

// removeAt deletes index i, restoring the heap and the location index.
// Caller holds the queue's mu.
func (os *ownerShare) removeAt(i int) admitEntry {
	e := os.jobs[i]
	delete(os.q.loc, e.job.ID)
	last := len(os.jobs) - 1
	os.jobs[i] = os.jobs[last]
	os.jobs[last] = admitEntry{} // release the *Job reference
	os.jobs = os.jobs[:last]
	if i < last {
		os.setLoc(i)
		os.down(i)
		os.up(i)
	}
	return e
}

// up sifts index i toward the root, keeping the location index current
// through every swap.
func (os *ownerShare) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !os.jobs[i].before(os.jobs[parent]) {
			break
		}
		os.jobs[i], os.jobs[parent] = os.jobs[parent], os.jobs[i]
		os.setLoc(i)
		i = parent
	}
	os.setLoc(i)
}

// down sifts index i toward the leaves, keeping the location index
// current through every swap.
func (os *ownerShare) down(i int) {
	n := len(os.jobs)
	for {
		best := i
		if l := 2*i + 1; l < n && os.jobs[l].before(os.jobs[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && os.jobs[r].before(os.jobs[best]) {
			best = r
		}
		if best == i {
			break
		}
		os.jobs[i], os.jobs[best] = os.jobs[best], os.jobs[i]
		os.setLoc(i)
		i = best
	}
	os.setLoc(i)
}

// admitEntry is one queued job with its precomputed admission rank.
type admitEntry struct {
	job  *Job
	rank int64
	seq  uint64 // FIFO tie-break for identical ranks
}

// before reports whether e dequeues ahead of o within one owner.
func (e admitEntry) before(o admitEntry) bool {
	if e.rank != o.rank {
		return e.rank > o.rank
	}
	return e.seq < o.seq
}
