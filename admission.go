package vdce

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// QuotaConfig bounds each owner's simultaneous use of the submission
// pipeline. Zero fields are unlimited. Quotas are per owner name; the
// anonymous owner "" is one owner like any other.
type QuotaConfig struct {
	// MaxQueuedPerOwner caps how many of one owner's jobs may sit in the
	// admission queue (including submitters still blocked on queue
	// backpressure). Admission over the cap fails immediately with a
	// QuotaError — the caller is told to back off rather than silently
	// deepening the backlog.
	MaxQueuedPerOwner int
	// MaxInFlightPerOwner caps how many of one owner's jobs may be
	// scheduling or running at once. Jobs over the cap are not rejected:
	// they park in the admission queue — other owners' jobs dispatch
	// past them — until the owner drops below the cap. Pair it with
	// MaxQueuedPerOwner: parked jobs still occupy shared QueueDepth
	// slots, so without a queued cap one throttled owner's backlog can
	// fill the queue and stall every owner's Submit on backpressure.
	MaxInFlightPerOwner int
	// MaxHostsPerOwner caps an owner's concurrently held host slots:
	// each dispatched job charges one slot per distinct host of its own
	// placement (plus replacement hosts it reschedules onto mid-run),
	// so two jobs sharing a host charge it twice — the accounting an
	// owner's per-job hosts_held counters sum to, deliberately
	// conservative on the small overlapping testbeds this models. A
	// scheduled job that would exceed the cap parks (off-worker, so it
	// never blocks other owners' dispatch) until enough of the owner's
	// slots free up. A single job needing more slots than the cap is
	// admitted alone, once the owner holds nothing — an over-sized job
	// parks, it does not deadlock.
	MaxHostsPerOwner int
}

// ErrQuotaExceeded is the sentinel matched (via errors.Is) by every
// per-owner quota rejection.
var ErrQuotaExceeded = errors.New("vdce: owner quota exceeded")

// QuotaError is the typed admission rejection: which owner hit which
// per-owner cap, and where usage stood. It matches ErrQuotaExceeded
// with errors.Is.
type QuotaError struct {
	// Owner is the job's owner ("" for anonymous submissions).
	Owner string
	// Resource names the exhausted cap: "queued-jobs", "in-flight-jobs",
	// or "hosts".
	Resource string
	// Limit is the configured cap; Used is the owner's usage at the
	// rejection.
	Limit int
	Used  int
}

func (e *QuotaError) Error() string {
	owner := e.Owner
	if owner == "" {
		owner = "(anonymous)"
	}
	return fmt.Sprintf("vdce: owner %s over %s quota (%d of %d in use)",
		owner, e.Resource, e.Used, e.Limit)
}

// Is makes errors.Is(err, ErrQuotaExceeded) match every QuotaError.
func (e *QuotaError) Is(target error) bool { return target == ErrQuotaExceeded }

// admitQueue is the pipeline's admission queue: weighted fair queuing
// across owners over per-owner priority sub-queues.
//
// Within one owner, jobs order exactly as the PR 2 aging heap did: a
// max-heap over (effective priority, enqueue time) where a queued job's
// effective priority rises by one level per AgingStep of waiting.
// Because every queued job ages at the same rate, the pairwise order of
// two jobs never changes over time, so the heap key is computed once at
// enqueue:
//
//	rank = base * step - enqueuedNanos
//
// Higher rank pops first; saturated ranks fall back to FIFO seq order.
//
// Across owners, pops are arbitrated by smoothed virtual-time fair
// queuing: each owner carries a weight w and a virtual finish time. A
// pop charges the chosen owner 1/w of virtual time, and the next pop
// goes to the eligible owner with the smallest charge point
// max(ownerVFinish, queueVTime) — so over a backlogged interval each
// owner's dispatch share converges to w/Σw, and one owner's flood can
// no longer starve the rest regardless of its jobs' priorities. The
// max() against the queue-wide virtual clock is the smoothing: an owner
// returning from idle resumes at "now" instead of burning banked
// credit, and a saturated owner cannot run up debt that would silence
// it later.
//
// The queue also carries the per-owner quota ledger (queued
// reservations, in-flight jobs, held hosts): eligibility for a pop
// requires the owner to be under its in-flight cap, which is how
// capped owners' jobs park in place while other owners dispatch past
// them.
//
// The sub-queue heaps are hand-rolled over slices (no container/heap)
// so the Submit hot path does not pay an interface boxing allocation
// per push and pop.
type admitQueue struct {
	mu    sync.Mutex
	step  time.Duration
	quota QuotaConfig
	seq   uint64
	vtime float64 // queue-wide virtual clock: charge point of the last pop
	// owners holds every owner ever seen; idle owners keep their weight
	// and usage counters (a handful of words each) so quota accounting
	// and /v1/owners survive queue-empty moments.
	owners map[string]*ownerShare
	// changed is the usage broadcast: closed and replaced whenever
	// in-flight or held-host usage frees, waking parked dispatches.
	changed chan struct{}
	// gen counts the mutations that can change the arbitration replay's
	// output — push (new job, possible weight change), pop (backlog and
	// virtual clocks move), remove (backlog shrinks). posCache memoizes
	// the last full position replay and is valid while posGen == gen, so
	// a burst of Status()/ListJobs calls over an unchanged queue pays
	// for one replay, not one per call (the PR 3 generation-validated
	// cache pattern).
	gen      uint64
	posGen   uint64
	posCache map[string]int
}

// ownerShare is one owner's sub-queue plus its fair-share and quota
// state. All fields are guarded by admitQueue.mu.
type ownerShare struct {
	name string
	jobs []admitEntry // aging-rank max-heap
	// weight is the owner's fair-share weight (>= 1); the latest
	// submitted job's resolved weight wins.
	weight int
	// vfinish is the owner's virtual finish time: the charge point of
	// its last pop plus 1/weight.
	vfinish float64
	// reserved counts the owner's queued jobs, from admission-quota
	// reservation (before the submitter even waits for a queue slot)
	// until pop or removal.
	reserved int
	// inFlight counts the owner's scheduling+running jobs (charged at
	// pop, released when the job terminalizes).
	inFlight int
	// hostsHeld counts the testbed hosts the owner's running jobs hold.
	hostsHeld int
	// parked counts the owner's jobs parked on the held-hosts cap.
	// While any is parked the owner is ineligible for pops, so parked
	// dispatch goroutines are bounded per owner by the scheduler worker
	// count (workers that popped before the first park landed can add
	// one each) — a capped owner's backlog waits in the queue, not in a
	// growing pile of goroutines holding stale placements.
	parked int
	// pinned marks a weight set by the owner-admin endpoint: submissions
	// no longer override it (normally the latest job's resolved share
	// weight wins).
	pinned bool
	// caps, when non-nil, replaces the queue-wide QuotaConfig for this
	// owner — the admin endpoint's per-owner quota override.
	caps *QuotaConfig
}

func newAdmitQueue(step time.Duration, quota QuotaConfig) *admitQueue {
	return &admitQueue{
		step:    step,
		quota:   quota,
		owners:  make(map[string]*ownerShare),
		changed: make(chan struct{}),
	}
}

// owner returns (creating if needed) the owner's share record. Caller
// holds q.mu.
func (q *admitQueue) owner(name string) *ownerShare {
	os, ok := q.owners[name]
	if !ok {
		os = &ownerShare{name: name, weight: 1}
		q.owners[name] = os
	}
	return os
}

// rank computes the static within-owner heap key for a job admitted at
// enqueued. The priority boost saturates at ±2^61 so an absurd
// caller-supplied priority (the HTTP field is an arbitrary int) cannot
// overflow the product and invert the queue order; saturated jobs rank
// equal and fall back to FIFO via the seq tie-break.
func (q *admitQueue) rank(priority int, enqueued time.Time) int64 {
	const maxBoost = int64(1) << 61 // |boost| + |UnixNano| stays well inside int64
	limit := maxBoost / int64(q.step)
	p := int64(priority)
	if p > limit {
		p = limit
	} else if p < -limit {
		p = -limit
	}
	return p*int64(q.step) - enqueued.UnixNano()
}

// reserveQueued claims one unit of the owner's queued-jobs quota before
// the job enters the admission path, so a flooding owner is rejected
// with a typed error instead of invisibly consuming shared queue
// capacity. The reservation is consumed by push and released by pop,
// remove, or unreserveQueued (for submissions that die before push).
func (q *admitQueue) reserveQueued(owner string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	os := q.owner(owner)
	if cap := q.capsFor(os).MaxQueuedPerOwner; cap > 0 && os.reserved >= cap {
		return &QuotaError{Owner: owner, Resource: "queued-jobs", Limit: cap, Used: os.reserved}
	}
	os.reserved++
	return nil
}

// adoptQueued re-enqueues a job recovered from the durable store:
// reservation and push in one step, bypassing the queued-jobs cap — the
// job was already admitted in the previous incarnation, and rejecting
// it now would silently drop accepted work.
func (q *admitQueue) adoptQueued(j *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.owner(j.Owner).reserved++
	q.seq++
	q.gen++
	os := q.owner(j.Owner)
	if j.shareWeight >= 1 && !os.pinned {
		os.weight = clampShareWeight(j.shareWeight)
	}
	os.jobs = append(os.jobs, admitEntry{job: j, rank: q.rank(j.priority, j.enqueued), seq: q.seq})
	os.up(len(os.jobs) - 1)
}

// unreserveQueued returns a reservation for a submission that never
// reached push (canceled or failed while waiting for a queue slot).
func (q *admitQueue) unreserveQueued(owner string) {
	q.mu.Lock()
	q.owner(owner).reserved--
	q.mu.Unlock()
}

// push enqueues a job under its owner's sub-queue, consuming the
// reservation made by reserveQueued. The job's resolved share weight
// becomes the owner's weight (latest submission wins), saturated at
// MaxShareWeight — the weight is client-settable over HTTP, so like
// the rank() priority clamp this bounds what a hostile value can buy.
func (q *admitQueue) push(j *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.seq++
	q.gen++
	os := q.owner(j.Owner)
	if j.shareWeight >= 1 && !os.pinned {
		os.weight = clampShareWeight(j.shareWeight)
	}
	os.jobs = append(os.jobs, admitEntry{job: j, rank: q.rank(j.priority, j.enqueued), seq: q.seq})
	os.up(len(os.jobs) - 1)
}

// capsFor returns the quota caps that govern an owner: its admin
// override when one is set, the queue-wide config otherwise. Caller
// holds q.mu.
func (q *admitQueue) capsFor(os *ownerShare) QuotaConfig {
	if os.caps != nil {
		return *os.caps
	}
	return q.quota
}

// eligible reports whether the owner may dispatch another job: it has
// queued work, is under its in-flight cap, and has no job already
// parked on the held-hosts cap (popping another would only grow the
// parked pile with a placement that goes stale while it waits).
// Caller holds q.mu.
func (q *admitQueue) eligible(os *ownerShare) bool {
	if len(os.jobs) == 0 {
		return false
	}
	if cap := q.capsFor(os).MaxInFlightPerOwner; cap > 0 && os.inFlight >= cap {
		return false
	}
	if os.parked > 0 {
		return false
	}
	return true
}

// setParked marks or clears a job's held-hosts park, gating the
// owner's eligibility for further pops. Idempotent per job.
func (q *admitQueue) setParked(j *Job, parked bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j.hostParked == parked {
		return
	}
	j.hostParked = parked
	if parked {
		q.owner(j.Owner).parked++
	} else {
		q.owner(j.Owner).parked--
	}
}

// The WFQ arbitration primitives, shared by pop (pickOwner) and the
// position replay so the two can never drift apart (and pinned against
// each other by TestAdmitPositionPredictsPopOrder).

// chargePoint is the virtual time at which an owner's next pop is
// charged: its own finish time, smoothed forward to the queue clock
// when it returns from idle.
func chargePoint(vfinish, vtime float64) float64 {
	if vtime > vfinish {
		return vtime
	}
	return vfinish
}

// wfqWins reports whether a candidate (charge, name) beats the
// incumbent: smaller charge point first, owner name as the
// deterministic tie-break.
func wfqWins(charge float64, name string, incCharge float64, incName string) bool {
	return charge < incCharge || (charge == incCharge && name < incName)
}

// wfqCost is the virtual-time cost one pop charges an owner.
func wfqCost(weight int) float64 { return 1 / float64(weight) }

// pickOwner returns the eligible owner with the smallest virtual charge
// point, advancing the virtual clocks. Caller holds q.mu.
func (q *admitQueue) pickOwner() *ownerShare {
	var best *ownerShare
	var bestCharge float64
	for _, os := range q.owners {
		if !q.eligible(os) {
			continue
		}
		charge := chargePoint(os.vfinish, q.vtime)
		if best == nil || wfqWins(charge, os.name, bestCharge, best.name) {
			best, bestCharge = os, charge
		}
	}
	if best != nil {
		q.vtime = bestCharge
		best.vfinish = bestCharge + wfqCost(best.weight)
	}
	return best
}

// pop removes and returns the next job under weighted fair queuing, or
// nil when no owner is eligible (queue empty, or every backlogged
// owner is at its in-flight cap — its jobs stay parked in place). The
// popped job is charged against its owner's in-flight count; the
// charge is released when the job terminalizes.
func (q *admitQueue) pop() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	os := q.pickOwner()
	if os == nil {
		return nil
	}
	q.gen++
	j := os.removeAt(0).job
	os.reserved--
	os.inFlight++
	j.usageCharged = true
	return j
}

// remove deletes one job by ID, reporting whether it was found. Used by
// Cancel to free the job's queue slot eagerly.
func (q *admitQueue) remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, os := range q.owners {
		for i := range os.jobs {
			if os.jobs[i].job.ID == id {
				q.gen++
				os.removeAt(i)
				os.reserved--
				return true
			}
		}
	}
	return false
}

// release returns a terminal job's in-flight and held-host charges to
// its owner and wakes parked dispatches. It reports whether anything
// was freed (callers use that to wake idle workers exactly once).
// Idempotent: only the first call after a pop frees anything.
func (q *admitQueue) release(j *Job) bool {
	q.mu.Lock()
	if !j.usageCharged {
		q.mu.Unlock()
		return false
	}
	j.usageCharged = false
	os := q.owner(j.Owner)
	os.inFlight--
	os.hostsHeld -= j.hostsCharged
	j.hostsCharged = 0
	j.chargedHosts = nil
	if j.hostParked {
		// A parked job that terminalized (cancel, shutdown) un-gates its
		// owner here, whatever its park goroutine is still doing.
		j.hostParked = false
		os.parked--
	}
	close(q.changed)
	q.changed = make(chan struct{})
	q.mu.Unlock()
	return true
}

// tryChargeHosts attempts to charge the placement's distinct hosts
// against the job's owner, recording the usage (always, so /v1/owners
// counters stay live) and enforcing MaxHostsPerOwner when set. An
// owner holding nothing may always dispatch one job — a single job
// larger than the cap runs alone instead of parking forever. Returns
// false when the job must park until hosts free.
func (q *admitQueue) tryChargeHosts(j *Job, hosts []string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !j.usageCharged {
		// The job already terminalized and returned its charges; report
		// success without charging — the dispatch path observes the
		// cancellation and goes no further, and hosts charged here would
		// never be released.
		return true
	}
	os := q.owner(j.Owner)
	n := len(hosts)
	if cap := q.capsFor(os).MaxHostsPerOwner; cap > 0 && os.hostsHeld > 0 && os.hostsHeld+n > cap {
		return false
	}
	os.hostsHeld += n
	j.hostsCharged = n
	j.chargedHosts = make(map[string]bool, n)
	for _, h := range hosts {
		j.chargedHosts[h] = true
	}
	return true
}

// chargeReplacementHost adds a host the engine rescheduled one of the
// job's tasks onto mid-run, keeping the owner's held-hosts ledger
// truthful as the placement drifts from the dispatched table. The
// charge bypasses the cap — a running job cannot park — but inflates
// the owner's usage so subsequent dispatches see it; hosts lost to
// failure stay charged until the job ends (other tasks of the job may
// still run there), which errs on the side of under-admission. It
// returns the job's updated host count and whether anything changed.
func (q *admitQueue) chargeReplacementHost(j *Job, host string) (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !j.usageCharged || host == "" || j.chargedHosts[host] {
		return j.hostsCharged, false
	}
	j.chargedHosts[host] = true
	j.hostsCharged++
	q.owner(j.Owner).hostsHeld++
	return j.hostsCharged, true
}

// usageChanged returns the current usage broadcast channel: it closes
// the next time in-flight or held-host usage frees. Parked dispatches
// fetch it before re-checking quota so a release between check and
// wait still wakes them.
func (q *admitQueue) usageChanged() <-chan struct{} {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.changed
}

// position returns the 1-based dequeue position of a queued job (1 =
// next to pop), or 0 when the job is not queued — served from the same
// cached arbitration replay positions() serves, so the single-job and
// listing surfaces can never disagree and repeated polls of an
// unchanged queue cost O(backlog) membership scan, not a replay each.
func (q *admitQueue) position(id string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	// Cheap O(backlog) membership scan first: Status() asks for jobs
	// that have already popped (or are not yet pushed) all the time,
	// and those must not pay for a full arbitration replay.
	queued := false
	for _, os := range q.owners {
		for i := range os.jobs {
			if os.jobs[i].job.ID == id {
				queued = true
				break
			}
		}
		if queued {
			break
		}
	}
	if !queued {
		return 0
	}
	return q.positionsLocked()[id]
}

// positions returns the 1-based dequeue position of every queued job
// in one arbitration replay, O(backlog·owners + backlog·log backlog)
// when the queue changed since the last call and O(1) otherwise. The
// returned map is shared with the cache: callers read, never mutate.
func (q *admitQueue) positions() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.positionsLocked()
}

// positionsLocked returns the full position replay, recomputing only
// when a push/pop/remove invalidated the cached one. Caller holds q.mu.
func (q *admitQueue) positionsLocked() map[string]int {
	if q.posCache == nil || q.posGen != q.gen {
		q.posCache = q.replayPositions("")
		q.posGen = q.gen
	}
	return q.posCache
}

// replayPositions replays the weighted-fair arbitration over the
// current backlog with the live virtual clocks shadowed, assigning
// each queued job the position pop would drain it at; a non-empty
// target stops the replay as soon as that job is placed. In-flight
// caps are ignored — a parked job reports the position it will
// dispatch from once its owner frees up. The replay uses the same
// chargePoint / wfqWins / wfqCost primitives as pickOwner, and
// TestAdmitPositionPredictsPopOrder pins the agreement. Caller holds
// q.mu.
func (q *admitQueue) replayPositions(target string) map[string]int {
	type shadow struct {
		os      *ownerShare
		order   []admitEntry // within-owner dequeue order
		next    int
		vfinish float64
	}
	total := 0
	shadows := make([]shadow, 0, len(q.owners))
	for _, os := range q.owners {
		if len(os.jobs) == 0 {
			continue
		}
		order := append([]admitEntry(nil), os.jobs...)
		sort.Slice(order, func(i, j int) bool { return order[i].before(order[j]) })
		shadows = append(shadows, shadow{os: os, order: order, vfinish: os.vfinish})
		total += len(order)
	}
	out := make(map[string]int, total)
	vtime := q.vtime
	for pos := 1; pos <= total; pos++ {
		var best *shadow
		var bestCharge float64
		for i := range shadows {
			s := &shadows[i]
			if s.next == len(s.order) {
				continue
			}
			charge := chargePoint(s.vfinish, vtime)
			if best == nil || wfqWins(charge, s.os.name, bestCharge, best.os.name) {
				best, bestCharge = s, charge
			}
		}
		vtime = bestCharge
		best.vfinish = bestCharge + wfqCost(best.os.weight)
		id := best.order[best.next].job.ID
		out[id] = pos
		best.next++
		if id == target {
			break
		}
	}
	return out
}

// queuedLen returns the total backlog size across owners (tests and
// monitoring).
func (q *admitQueue) queuedLen() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, os := range q.owners {
		n += len(os.jobs)
	}
	return n
}

// setOwnerAdmin applies a runtime owner-admin update: a weight >= 1
// pins the owner's fair-share weight against future submissions, and a
// non-nil caps installs a per-owner quota override (replacing any
// previous override wholesale). It wakes parked dispatches — a raised
// cap may free them — and invalidates the position cache, since a
// weight change reorders the arbitration replay.
func (q *admitQueue) setOwnerAdmin(name string, weight int, caps *QuotaConfig) {
	q.mu.Lock()
	defer q.mu.Unlock()
	os := q.owner(name)
	if weight >= 1 {
		os.weight = clampShareWeight(weight)
		os.pinned = true
	}
	if caps != nil {
		c := *caps
		os.caps = &c
	}
	q.gen++
	close(q.changed)
	q.changed = make(chan struct{})
}

// ownerAdmin reports an owner's effective admin state: weight, whether
// it is pinned, the caps that govern it, and whether those caps are a
// per-owner override (as opposed to the queue-wide config).
func (q *admitQueue) ownerAdmin(name string) (weight int, pinned bool, caps QuotaConfig, override bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	os := q.owner(name)
	return os.weight, os.pinned, q.capsFor(os), os.caps != nil
}

// ownerWeights snapshots each known owner's fair-share weight.
func (q *admitQueue) ownerWeights() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int, len(q.owners))
	for name, os := range q.owners {
		out[name] = os.weight
	}
	return out
}

// --- within-owner aging-rank heap ---

// removeAt deletes index i, restoring the heap. Caller holds the
// queue's mu.
func (os *ownerShare) removeAt(i int) admitEntry {
	e := os.jobs[i]
	last := len(os.jobs) - 1
	os.jobs[i] = os.jobs[last]
	os.jobs[last] = admitEntry{} // release the *Job reference
	os.jobs = os.jobs[:last]
	if i < last {
		os.down(i)
		os.up(i)
	}
	return e
}

// up sifts index i toward the root.
func (os *ownerShare) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !os.jobs[i].before(os.jobs[parent]) {
			return
		}
		os.jobs[i], os.jobs[parent] = os.jobs[parent], os.jobs[i]
		i = parent
	}
}

// down sifts index i toward the leaves.
func (os *ownerShare) down(i int) {
	n := len(os.jobs)
	for {
		best := i
		if l := 2*i + 1; l < n && os.jobs[l].before(os.jobs[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && os.jobs[r].before(os.jobs[best]) {
			best = r
		}
		if best == i {
			return
		}
		os.jobs[i], os.jobs[best] = os.jobs[best], os.jobs[i]
		i = best
	}
}

// admitEntry is one queued job with its precomputed admission rank.
type admitEntry struct {
	job  *Job
	rank int64
	seq  uint64 // FIFO tie-break for identical ranks
}

// before reports whether e dequeues ahead of o within one owner.
func (e admitEntry) before(o admitEntry) bool {
	if e.rank != o.rank {
		return e.rank > o.rank
	}
	return e.seq < o.seq
}
