package vdce

import (
	"sync"
	"time"
)

// admitQueue is the pipeline's priority admission queue: a max-heap over
// (effective priority, enqueue time) with starvation-protecting aging.
//
// A queued job's effective priority rises by one level per AgingStep of
// waiting: eff(now) = base + (now - enqueued)/step. Because every queued
// job ages at the same rate, the pairwise order of two jobs never changes
// over time — eff_a(now) - eff_b(now) is independent of now — so the heap
// key can be computed once at enqueue:
//
//	rank = base * step - enqueuedNanos
//
// Higher rank pops first. A low-priority job enqueued step*(Δbase) before
// a high-priority one overtakes it, which is exactly aging: no job starves
// forever behind a stream of higher-priority arrivals.
//
// The heap is hand-rolled over a slice of admitEntry (no container/heap)
// so the Submit hot path does not pay an interface boxing allocation per
// push and pop.
type admitQueue struct {
	mu   sync.Mutex
	jobs []admitEntry
	step time.Duration
	seq  uint64
}

func newAdmitQueue(step time.Duration) *admitQueue {
	return &admitQueue{step: step}
}

// rank computes the static heap key for a job admitted at enqueued. The
// priority boost saturates at ±2^61 so an absurd caller-supplied
// priority (the HTTP field is an arbitrary int) cannot overflow the
// product and invert the queue order; saturated jobs rank equal and
// fall back to FIFO via the seq tie-break.
func (q *admitQueue) rank(priority int, enqueued time.Time) int64 {
	const maxBoost = int64(1) << 61 // |boost| + |UnixNano| stays well inside int64
	limit := maxBoost / int64(q.step)
	p := int64(priority)
	if p > limit {
		p = limit
	} else if p < -limit {
		p = -limit
	}
	return p*int64(q.step) - enqueued.UnixNano()
}

// push enqueues a job.
func (q *admitQueue) push(j *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.seq++
	q.jobs = append(q.jobs, admitEntry{job: j, rank: q.rank(j.priority, j.enqueued), seq: q.seq})
	q.up(len(q.jobs) - 1)
}

// pop removes and returns the highest-ranked queued job, or nil when the
// queue is empty.
func (q *admitQueue) pop() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.jobs) == 0 {
		return nil
	}
	return q.removeAt(0).job
}

// remove deletes one job by ID, reporting whether it was found. Used by
// Cancel to free the job's queue slot eagerly.
func (q *admitQueue) remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i := range q.jobs {
		if q.jobs[i].job.ID == id {
			q.removeAt(i)
			return true
		}
	}
	return false
}

// position returns the 1-based dequeue position of a queued job (1 = next
// to pop), or 0 when the job is not queued.
func (q *admitQueue) position(id string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	var target *admitEntry
	for i := range q.jobs {
		if q.jobs[i].job.ID == id {
			target = &q.jobs[i]
			break
		}
	}
	if target == nil {
		return 0
	}
	pos := 1
	for i := range q.jobs {
		if q.jobs[i].before(*target) {
			pos++
		}
	}
	return pos
}

// removeAt deletes index i, restoring the heap. Caller holds q.mu.
func (q *admitQueue) removeAt(i int) admitEntry {
	e := q.jobs[i]
	last := len(q.jobs) - 1
	q.jobs[i] = q.jobs[last]
	q.jobs[last] = admitEntry{} // release the *Job reference
	q.jobs = q.jobs[:last]
	if i < last {
		q.down(i)
		q.up(i)
	}
	return e
}

// up sifts index i toward the root. Caller holds q.mu.
func (q *admitQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.jobs[i].before(q.jobs[parent]) {
			return
		}
		q.jobs[i], q.jobs[parent] = q.jobs[parent], q.jobs[i]
		i = parent
	}
}

// down sifts index i toward the leaves. Caller holds q.mu.
func (q *admitQueue) down(i int) {
	n := len(q.jobs)
	for {
		best := i
		if l := 2*i + 1; l < n && q.jobs[l].before(q.jobs[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && q.jobs[r].before(q.jobs[best]) {
			best = r
		}
		if best == i {
			return
		}
		q.jobs[i], q.jobs[best] = q.jobs[best], q.jobs[i]
		i = best
	}
}

// admitEntry is one queued job with its precomputed admission rank.
type admitEntry struct {
	job  *Job
	rank int64
	seq  uint64 // FIFO tie-break for identical ranks
}

// before reports whether e dequeues ahead of o.
func (e admitEntry) before(o admitEntry) bool {
	if e.rank != o.rank {
		return e.rank > o.rank
	}
	return e.seq < o.seq
}
