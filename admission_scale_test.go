package vdce

// Scale suite for the O(log owners) admission rewrite: the randomized
// indexed-vs-linear equivalence stream (the honesty check on the
// eligible-owner index), the cancel-storm and transient-owner-churn
// regressions for the location index and owner pruning, the per-owner
// wake isolation pin, batch-pop equivalence, and the pop-path alloc
// guard CI enforces.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// twinJob is one logical job realized as two *Job instances, one per
// queue under comparison — pop and setParked mutate per-job fields
// (usageCharged, hostParked), so the twin queues must never share an
// instance.
type twinJob struct{ a, b *Job }

// checkIndexInvariants asserts the eligible-owner index matches the
// owner map exactly: every eligible owner sits in the heap its vfinish
// dictates (vfinish <= vtime -> lagged, else ahead), every ineligible
// owner in neither, hidx back-pointers are live, both heaps are valid
// min-heaps, and the job-location index round-trips every queued job.
func checkIndexInvariants(t *testing.T, q *admitQueue) {
	t.Helper()
	q.mu.Lock()
	defer q.mu.Unlock()
	inHeap := make(map[*ownerShare]int8)
	for _, h := range []*ownerHeap{&q.lagged, &q.ahead} {
		for i, os := range h.items {
			if os.where != h.id || os.hidx != i {
				t.Fatalf("owner %q heap back-pointer stale: where=%d hidx=%d, at heap %d slot %d",
					os.name, os.where, os.hidx, h.id, i)
			}
			if i > 0 {
				parent := (i - 1) / 2
				if h.less(os, h.items[parent]) {
					t.Fatalf("owner heap %d order broken at slot %d (%q before parent %q)",
						h.id, i, os.name, h.items[parent].name)
				}
			}
			inHeap[os] = h.id
		}
	}
	queued := 0
	for name, os := range q.owners {
		want := heapNone
		if q.eligible(os) {
			want = heapLagged
			if os.vfinish > q.vtime {
				want = heapAhead
			}
		}
		if got := inHeap[os]; got != want {
			t.Fatalf("owner %q in heap %d, want %d (vfinish=%v vtime=%v eligible=%v)",
				name, got, want, os.vfinish, q.vtime, q.eligible(os))
		}
		queued += len(os.jobs)
		for i, e := range os.jobs {
			l, ok := q.loc[e.job.ID]
			if !ok || l.os != os || l.idx != i {
				t.Fatalf("location index wrong for %q: got %+v, want owner %q idx %d",
					e.job.ID, l, name, i)
			}
		}
	}
	if queued != q.queued {
		t.Fatalf("q.queued = %d, want %d (sum of backlogs)", q.queued, queued)
	}
	if len(q.loc) != queued {
		t.Fatalf("location index holds %d jobs, want %d", len(q.loc), queued)
	}
}

// TestIndexedArbiterMatchesLinearReference drives the indexed WFQ
// arbiter and the retained linear-scan reference side by side from one
// fixed-seed op stream — push, pop, cancel, park/unpark, release,
// weight pins, and per-owner cap overrides — asserting identical pop
// order throughout and on the final drain. This is the satellite that
// keeps the O(log n) rewrite honest: any divergence in eligibility,
// charge points, or tie-breaks shows up as a mismatched pop.
func TestIndexedArbiterMatchesLinearReference(t *testing.T) {
	const ops = 6000
	rng := rand.New(rand.NewSource(20260808))
	base := time.Unix(9000, 0)
	qa := newAdmitQueue(time.Second, QuotaConfig{}) // pops via the index
	qb := newAdmitQueue(time.Second, QuotaConfig{}) // pops via the linear scan

	jobs := make(map[string]twinJob)
	var queuedIDs, inflightIDs []string
	next := 0

	ownerName := func() string { return fmt.Sprintf("o%02d", rng.Intn(40)) }
	popBoth := func() (string, bool) {
		ja, jb := qa.pop(), qb.popLinear()
		switch {
		case ja == nil && jb == nil:
			return "", false
		case ja == nil || jb == nil:
			t.Fatalf("arbiter divergence: indexed=%v linear=%v", ja, jb)
		case ja.ID != jb.ID:
			t.Fatalf("pop order divergence: indexed popped %q, linear popped %q", ja.ID, jb.ID)
		}
		return ja.ID, true
	}
	removeID := func(ids []string, i int) []string {
		ids[i] = ids[len(ids)-1]
		return ids[:len(ids)-1]
	}

	for op := 0; op < ops; op++ {
		switch c := rng.Intn(100); {
		case c < 40: // push
			id := fmt.Sprintf("j%d", next)
			next++
			owner := ownerName()
			prio := rng.Intn(9) - 4
			weight := rng.Intn(5) // 0 leaves the owner's weight alone
			at := base.Add(time.Duration(rng.Intn(5_000_000)) * time.Microsecond)
			tj := twinJob{
				a: mkAdmitJob(id, owner, prio, weight, at),
				b: mkAdmitJob(id, owner, prio, weight, at),
			}
			jobs[id] = tj
			qa.push(tj.a)
			qb.push(tj.b)
			queuedIDs = append(queuedIDs, id)
		case c < 70: // pop
			id, ok := popBoth()
			if !ok {
				continue
			}
			for i, qid := range queuedIDs {
				if qid == id {
					queuedIDs = removeID(queuedIDs, i)
					break
				}
			}
			inflightIDs = append(inflightIDs, id)
		case c < 80: // cancel a queued job
			if len(queuedIDs) == 0 {
				continue
			}
			i := rng.Intn(len(queuedIDs))
			id := queuedIDs[i]
			queuedIDs = removeID(queuedIDs, i)
			fa, fb := qa.remove(id), qb.remove(id)
			if !fa || !fb {
				t.Fatalf("cancel %q: indexed found=%v linear found=%v, want both true", id, fa, fb)
			}
			delete(jobs, id)
		case c < 85: // toggle a host-quota park on an in-flight job
			if len(inflightIDs) == 0 {
				continue
			}
			tj := jobs[inflightIDs[rng.Intn(len(inflightIDs))]]
			parked := !tj.a.hostParked
			qa.setParked(tj.a, parked)
			qb.setParked(tj.b, parked)
		case c < 95: // release an in-flight job (also clears its park)
			if len(inflightIDs) == 0 {
				continue
			}
			i := rng.Intn(len(inflightIDs))
			id := inflightIDs[i]
			inflightIDs = removeID(inflightIDs, i)
			tj := jobs[id]
			qa.release(tj.a)
			qb.release(tj.b)
			delete(jobs, id)
		default: // owner-admin update: weight pin, sometimes an in-flight cap
			owner := ownerName()
			weight := 1 + rng.Intn(4)
			var caps *QuotaConfig
			if rng.Intn(2) == 0 {
				caps = &QuotaConfig{MaxInFlightPerOwner: 1 + rng.Intn(3)}
			}
			qa.setOwnerAdmin(owner, weight, caps)
			qb.setOwnerAdmin(owner, weight, caps)
		}
		if op%500 == 0 {
			checkIndexInvariants(t, qa)
			if la, lb := qa.queuedLen(), qb.queuedLen(); la != lb {
				t.Fatalf("backlog divergence at op %d: indexed=%d linear=%d", op, la, lb)
			}
		}
	}

	// Drain: release everything in flight (lifting caps and parks), then
	// pop both queues dry and require the full remaining order to match.
	for _, id := range inflightIDs {
		tj := jobs[id]
		qa.release(tj.a)
		qb.release(tj.b)
	}
	checkIndexInvariants(t, qa)
	drained := 0
	for {
		id, ok := popBoth()
		if !ok {
			break
		}
		tj := jobs[id]
		qa.release(tj.a)
		qb.release(tj.b)
		drained++
	}
	if want := len(queuedIDs); drained != want {
		t.Fatalf("final drain popped %d jobs, want %d", drained, want)
	}
	if qa.queuedLen() != 0 || qb.queuedLen() != 0 {
		t.Fatalf("queues not empty after drain: indexed=%d linear=%d", qa.queuedLen(), qb.queuedLen())
	}
}

// TestAdmitCancelStormUnderDeadline is the satellite-1 regression: a
// cancel storm over a deep multi-owner backlog must run in near-linear
// time via the job-location index. The pre-index remove scanned every
// owner's entire backlog per call — O(owners x jobs), ~10^8 entry
// visits for this shape — so the wall-clock bound fails loudly on a
// regression while staying far from flaky on a loaded CI runner.
func TestAdmitCancelStormUnderDeadline(t *testing.T) {
	const (
		jobsN  = 10_000
		owners = 1_000
	)
	q := newAdmitQueue(time.Second, QuotaConfig{})
	base := time.Unix(12000, 0)
	ids := make([]string, jobsN)
	for i := 0; i < jobsN; i++ {
		owner := fmt.Sprintf("storm-%d", i%owners)
		if err := q.reserveQueued(owner); err != nil {
			t.Fatal(err)
		}
		ids[i] = fmt.Sprintf("s%d", i)
		q.push(mkAdmitJob(ids[i], owner, i%5, 1+i%3, base.Add(time.Duration(i)*time.Millisecond)))
	}
	rand.New(rand.NewSource(7)).Shuffle(jobsN, func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })

	start := time.Now()
	for _, id := range ids {
		if !q.remove(id) {
			t.Fatalf("remove(%q) did not find the queued job", id)
		}
	}
	elapsed := time.Since(start)
	const deadline = 5 * time.Second
	if elapsed > deadline {
		t.Fatalf("canceling %d queued jobs took %v, want < %v (location index regression)",
			jobsN, elapsed, deadline)
	}
	if n := q.queuedLen(); n != 0 {
		t.Fatalf("backlog after storm = %d, want 0", n)
	}
	// Every owner fully drained by cancels alone, so pruning must have
	// retired every share.
	if n := q.ownerCount(); n != 0 {
		t.Fatalf("owner shares after storm = %d, want 0 (pruning regression)", n)
	}
}

// TestAdmitTransientOwnersPruned is the satellite-2 regression: 10k
// one-shot owners that each submit, dispatch, and terminalize one job
// must leave the queue at steady-state size — the owner map, the
// eligible index, and the position replay all return to empty.
func TestAdmitTransientOwnersPruned(t *testing.T) {
	const ownersN = 10_000
	q := newAdmitQueue(time.Second, QuotaConfig{})
	base := time.Unix(15000, 0)
	for i := 0; i < ownersN; i++ {
		owner := fmt.Sprintf("transient-%d", i)
		if err := q.reserveQueued(owner); err != nil {
			t.Fatal(err)
		}
		j := mkAdmitJob(fmt.Sprintf("t%d", i), owner, 0, 1+i%4, base.Add(time.Duration(i)*time.Microsecond))
		q.push(j)
		popped := q.pop()
		if popped == nil || popped.ID != j.ID {
			t.Fatalf("owner %d: pop = %v, want %s", i, popped, j.ID)
		}
		if !q.release(popped) {
			t.Fatalf("owner %d: release freed nothing", i)
		}
	}
	if n := q.ownerCount(); n != 0 {
		t.Fatalf("owner shares after %d transient owners = %d, want 0", ownersN, n)
	}
	if n := q.pruneCount(); n != ownersN {
		t.Fatalf("prune count = %d, want %d", n, ownersN)
	}
	checkIndexInvariants(t, q)

	// A pinned owner survives its drain (admin state is live state), and
	// un-pinning semantics are out of scope — the share must simply not
	// be collected while the pin holds.
	q.setOwnerAdmin("pinned-owner", 3, nil)
	if err := q.reserveQueued("pinned-owner"); err != nil {
		t.Fatal(err)
	}
	q.push(mkAdmitJob("pin-1", "pinned-owner", 0, 0, base))
	q.release(q.pop())
	if n := q.ownerCount(); n != 1 {
		t.Fatalf("owner shares with one pinned owner = %d, want 1", n)
	}
}

// TestAdmitReleaseWakesOnlyOwner is the satellite-3 pin: terminalizing
// owner A's job closes A's usage broadcast and leaves B's untouched —
// the thundering herd (one global channel closed per terminal job,
// waking every parked goroutine in the system) stays dead.
func TestAdmitReleaseWakesOnlyOwner(t *testing.T) {
	q := newAdmitQueue(time.Second, QuotaConfig{})
	base := time.Unix(16000, 0)
	ja := mkAdmitJob("wake-a", "owner-a", 0, 1, base)
	jb := mkAdmitJob("wake-b", "owner-b", 0, 1, base.Add(time.Millisecond))
	q.push(ja)
	q.push(jb)
	for i := 0; i < 2; i++ {
		if q.pop() == nil {
			t.Fatal("pop drained early")
		}
	}

	chA := q.usageChanged("owner-a")
	chB := q.usageChanged("owner-b")
	if !q.release(ja) {
		t.Fatal("release(ja) freed nothing")
	}
	select {
	case <-chA:
	default:
		t.Fatal("owner-a's usage channel not closed by its own job's release")
	}
	select {
	case <-chB:
		t.Fatal("owner-b's parked dispatches woken by owner-a's terminal job")
	default:
	}
	// B's own release closes B's channel.
	if !q.release(jb) {
		t.Fatal("release(jb) freed nothing")
	}
	select {
	case <-chB:
	default:
		t.Fatal("owner-b's usage channel not closed by its own job's release")
	}
}

// TestAdmitPopBatchMatchesSequentialPops pins the batched scheduler
// handoff's semantics: popBatch(k) is exactly k sequential pops under
// one lock — same jobs, same order, same ledger charges.
func TestAdmitPopBatchMatchesSequentialPops(t *testing.T) {
	mk := func() *admitQueue {
		q := newAdmitQueue(time.Second, QuotaConfig{})
		base := time.Unix(17000, 0)
		for i := 0; i < 40; i++ {
			owner := fmt.Sprintf("b%d", i%7)
			q.push(mkAdmitJob(fmt.Sprintf("seq-%d", i), owner, i%3, 1+i%3,
				base.Add(time.Duration(i)*time.Millisecond)))
		}
		return q
	}
	one, batched := mk(), mk()
	var want, got []string
	for {
		j := one.pop()
		if j == nil {
			break
		}
		want = append(want, j.ID)
	}
	buf := make([]*Job, 0, 6)
	for {
		buf = batched.popBatch(buf[:0], 6)
		if len(buf) == 0 {
			break
		}
		for _, j := range buf {
			got = append(got, j.ID)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("batched drain popped %d jobs, sequential popped %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop %d: batched=%q sequential=%q", i, got[i], want[i])
		}
	}
}

// TestAdmitPopAllocFree is the CI alloc guard on the pop hot path: a
// steady-state pop (heaps at capacity, no position replay) must not
// allocate at all — at 10k owners, one allocation per pop is the
// difference between the index paying for itself and GC churn eating
// the win.
func TestAdmitPopAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under the race detector")
	}
	q := newAdmitQueue(time.Second, QuotaConfig{})
	base := time.Unix(18000, 0)
	const (
		ownersN = 32
		jobsN   = 256
		runs    = 100
	)
	for i := 0; i < jobsN; i++ {
		q.push(mkAdmitJob(fmt.Sprintf("a%d", i), fmt.Sprintf("alloc-%d", i%ownersN), i%5, 1+i%3,
			base.Add(time.Duration(i)*time.Millisecond)))
	}
	// Warm the index heaps to capacity: the first pops migrate owners
	// into the ahead heap, growing its backing array once.
	for i := 0; i < ownersN*2; i++ {
		if q.pop() == nil {
			t.Fatal("queue drained during warmup")
		}
	}
	allocs := testing.AllocsPerRun(runs, func() {
		if q.pop() == nil {
			t.Fatal("queue drained mid-measurement")
		}
	})
	if allocs != 0 {
		t.Fatalf("pop allocates %.2f objects per op, want 0", allocs)
	}
}
