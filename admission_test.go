package vdce

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// mkAdmitJob builds a bare queue-test job (never dispatched).
func mkAdmitJob(id, owner string, prio, weight int, at time.Time) *Job {
	return &Job{ID: id, Owner: owner, priority: prio, shareWeight: weight, enqueued: at}
}

// checkHeapInvariant asserts every owner sub-queue is a valid
// before()-ordered binary heap.
func checkHeapInvariant(t *testing.T, q *admitQueue) {
	t.Helper()
	q.mu.Lock()
	defer q.mu.Unlock()
	for name, os := range q.owners {
		for i := 1; i < len(os.jobs); i++ {
			parent := (i - 1) / 2
			if os.jobs[i].before(os.jobs[parent]) {
				t.Fatalf("owner %q heap invariant broken at index %d: %s before parent %s",
					name, i, os.jobs[i].job.ID, os.jobs[parent].job.ID)
			}
		}
	}
}

// TestAdmitSaturatedRankTiesFallBackToFIFO pins the saturation
// tie-break: jobs whose absurd priorities saturate the rank clamp AND
// share an enqueue instant have identical ranks, so they must dequeue
// in push (seq) order, not heap-internal order.
func TestAdmitSaturatedRankTiesFallBackToFIFO(t *testing.T) {
	q := newAdmitQueue(time.Second, QuotaConfig{})
	t0 := time.Unix(5000, 0)
	huge := int(^uint(0) >> 1)
	const n = 9
	for i := 0; i < n; i++ {
		// Alternate between +huge and a merely absurd value that also
		// saturates: both clamp to the same boost, leaving seq as the
		// only discriminator.
		p := huge
		if i%2 == 1 {
			p = huge - 1000
		}
		q.push(mkAdmitJob(fmt.Sprintf("sat-%d", i), "", p, 1, t0))
	}
	checkHeapInvariant(t, q)
	for i := 0; i < n; i++ {
		j := q.pop()
		if j == nil || j.ID != fmt.Sprintf("sat-%d", i) {
			t.Fatalf("saturated pop %d = %v, want sat-%d (FIFO seq order)", i, j, i)
		}
	}
	if q.pop() != nil {
		t.Fatal("queue not drained")
	}
}

// TestAdmitFairInterleavingIsWeightProportional pins the cross-owner
// arbitration: with owners weighted 1/1/2 and a deep backlog, every
// consecutive window of 4 pops contains exactly one job from each
// weight-1 owner and two from the weight-2 owner.
func TestAdmitFairInterleavingIsWeightProportional(t *testing.T) {
	q := newAdmitQueue(time.Second, QuotaConfig{})
	t0 := time.Unix(6000, 0)
	weights := map[string]int{"a": 1, "b": 1, "c": 2}
	const per = 20
	for i := 0; i < per; i++ {
		for _, owner := range []string{"a", "b", "c"} {
			q.push(mkAdmitJob(fmt.Sprintf("%s-%d", owner, i), owner, 0, weights[owner], t0))
		}
	}
	// c holds 20 jobs but earns 2 of every 4 pops; it drains after 10
	// windows, so only the first 10 windows have all owners backlogged.
	counts := map[string]int{}
	for w := 0; w < 10; w++ {
		window := map[string]int{}
		for k := 0; k < 4; k++ {
			j := q.pop()
			if j == nil {
				t.Fatalf("pop returned nil with backlog remaining (window %d)", w)
			}
			window[j.Owner]++
			counts[j.Owner]++
		}
		if window["a"] != 1 || window["b"] != 1 || window["c"] != 2 {
			t.Fatalf("window %d shares = %v, want a:1 b:1 c:2", w, window)
		}
	}
	if counts["a"] != 10 || counts["b"] != 10 || counts["c"] != 20 {
		t.Fatalf("40-pop shares = %v, want a:10 b:10 c:20", counts)
	}
	// Within one owner, FIFO order held (equal priorities).
	q2 := newAdmitQueue(time.Second, QuotaConfig{})
	q2.push(mkAdmitJob("x-0", "x", 0, 1, t0))
	q2.push(mkAdmitJob("x-1", "x", 5, 1, t0))
	if j := q2.pop(); j.ID != "x-1" {
		t.Fatalf("within-owner priority ignored: popped %s", j.ID)
	}
}

// TestAdmitInFlightCapParksOwnerInPlace pins the pop-side quota gate:
// an owner at its in-flight cap is skipped (its jobs stay queued, no
// virtual time charged) while other owners dispatch past it, and a
// release makes it eligible again.
func TestAdmitInFlightCapParksOwnerInPlace(t *testing.T) {
	q := newAdmitQueue(time.Second, QuotaConfig{MaxInFlightPerOwner: 1})
	t0 := time.Unix(7000, 0)
	a0 := mkAdmitJob("a-0", "a", 0, 1, t0)
	q.push(a0)
	q.push(mkAdmitJob("a-1", "a", 0, 1, t0))
	q.push(mkAdmitJob("b-0", "b", 0, 1, t0))

	if j := q.pop(); j == nil || j.ID != "a-0" {
		t.Fatalf("first pop = %v, want a-0", j)
	}
	if j := q.pop(); j == nil || j.ID != "b-0" {
		t.Fatalf("second pop = %v, want b-0 (a is at its in-flight cap)", j)
	}
	if j := q.pop(); j != nil {
		t.Fatalf("third pop = %v, want nil (a capped, b empty)", j)
	}
	if pos := q.position("a-1"); pos != 1 {
		t.Fatalf("parked job position = %d, want 1 (next once the owner frees)", pos)
	}
	if !q.release(a0) {
		t.Fatal("release(a-0) freed nothing")
	}
	if q.release(a0) {
		t.Fatal("double release freed twice")
	}
	if j := q.pop(); j == nil || j.ID != "a-1" {
		t.Fatalf("post-release pop = %v, want a-1", j)
	}
}

// TestAdmitReplacementHostChargesLedger pins the mid-run accounting:
// a host the engine reschedules onto is charged to the owner's
// held-hosts ledger exactly once (even past the cap — a running job
// cannot park), and release returns the dispatch charge and every
// replacement charge together.
func TestAdmitReplacementHostChargesLedger(t *testing.T) {
	q := newAdmitQueue(time.Second, QuotaConfig{MaxHostsPerOwner: 2})
	j := mkAdmitJob("a-0", "a", 0, 1, time.Unix(1, 0))
	q.push(j)
	if got := q.pop(); got != j {
		t.Fatalf("pop = %v, want a-0", got)
	}
	if !q.tryChargeHosts(j, []string{"h1", "h2"}) {
		t.Fatal("dispatch charge refused (owner held nothing)")
	}
	if n, changed := q.chargeReplacementHost(j, "h3"); !changed || n != 3 {
		t.Fatalf("replacement charge = (%d, %v), want (3, true)", n, changed)
	}
	if n, changed := q.chargeReplacementHost(j, "h3"); changed || n != 3 {
		t.Fatalf("duplicate replacement charge = (%d, %v), want (3, false)", n, changed)
	}
	if n, changed := q.chargeReplacementHost(j, "h1"); changed || n != 3 {
		t.Fatalf("already-placed host charge = (%d, %v), want (3, false)", n, changed)
	}
	q.mu.Lock()
	held := q.owners["a"].hostsHeld
	q.mu.Unlock()
	if held != 3 {
		t.Fatalf("owner holds %d hosts, want 3 (2 dispatched + 1 replacement)", held)
	}
	// A second job of the owner now parks against the true usage.
	j2 := mkAdmitJob("a-1", "a", 0, 1, time.Unix(2, 0))
	q.push(j2)
	if q.pop() != j2 {
		t.Fatal("pop did not return a-1")
	}
	if q.tryChargeHosts(j2, []string{"h4"}) {
		t.Fatal("dispatch charged past the inflated ledger; should park")
	}
	if !q.release(j) {
		t.Fatal("release freed nothing")
	}
	q.mu.Lock()
	held = q.owners["a"].hostsHeld
	q.mu.Unlock()
	if held != 0 {
		t.Fatalf("owner holds %d hosts after release, want 0", held)
	}
	// Terminal jobs never charge (the late-event race).
	if n, changed := q.chargeReplacementHost(j, "h9"); changed || n != 0 {
		t.Fatalf("post-release replacement charge = (%d, %v), want (0, false)", n, changed)
	}
}

// TestAdmitQueueRandomizedAgainstReference is the property check over
// randomized push/pop/cancel sequences (fixed seed): the queue must
// agree with a sort-based reference model at every pop, keep every
// owner heap's invariant intact after removals (the pop-after-cancel
// regression), and report positions consistent with actual dequeue
// order.
func TestAdmitQueueRandomizedAgainstReference(t *testing.T) {
	const (
		seed = 42
		ops  = 4000
	)
	rng := rand.New(rand.NewSource(seed))
	step := 250 * time.Millisecond
	q := newAdmitQueue(step, QuotaConfig{})
	owners := []string{"", "ana", "bo", "cyd"}
	weights := map[string]int{"": 1, "ana": 1, "bo": 2, "cyd": 3}

	// Reference model: per owner, entries sorted by (rank desc, seq asc).
	type refEntry struct {
		id   string
		rank int64
		seq  uint64
	}
	ref := map[string][]*refEntry{}
	var refSeq uint64
	refPop := func(owner string) string {
		entries := ref[owner]
		if len(entries) == 0 {
			return ""
		}
		best := 0
		for i, e := range entries {
			if e.rank > entries[best].rank ||
				(e.rank == entries[best].rank && e.seq < entries[best].seq) {
				best = i
			}
		}
		id := entries[best].id
		ref[owner] = append(entries[:best], entries[best+1:]...)
		return id
	}
	refRemove := func(id string) bool {
		for owner, entries := range ref {
			for i, e := range entries {
				if e.id == id {
					ref[owner] = append(entries[:i], entries[i+1:]...)
					return true
				}
			}
		}
		return false
	}
	var live []string
	t0 := time.Unix(9000, 0)
	nextID := 0

	for op := 0; op < ops; op++ {
		switch r := rng.Intn(100); {
		case r < 50: // push
			owner := owners[rng.Intn(len(owners))]
			prio := rng.Intn(21) - 10
			if rng.Intn(20) == 0 {
				prio = int(^uint(0)>>1) - rng.Intn(2) // saturating
			}
			at := t0.Add(time.Duration(rng.Intn(10000)) * time.Millisecond)
			id := fmt.Sprintf("r-%d", nextID)
			nextID++
			q.push(mkAdmitJob(id, owner, prio, weights[owner], at))
			refSeq++
			ref[owner] = append(ref[owner], &refEntry{id: id, rank: q.rank(prio, at), seq: refSeq})
			live = append(live, id)
		case r < 75: // pop: must match the reference for the popped owner
			j := q.pop()
			if j == nil {
				total := 0
				for _, entries := range ref {
					total += len(entries)
				}
				if total != 0 {
					t.Fatalf("op %d: pop = nil with %d jobs in the reference", op, total)
				}
				continue
			}
			if want := refPop(j.Owner); j.ID != want {
				t.Fatalf("op %d: pop for owner %q = %s, reference says %s", op, j.Owner, j.ID, want)
			}
			for i, id := range live {
				if id == j.ID {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
		case r < 90: // cancel (remove) a random live job
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			id := live[i]
			if !q.remove(id) {
				t.Fatalf("op %d: remove(%s) found nothing, reference disagrees", op, id)
			}
			if !refRemove(id) {
				t.Fatalf("op %d: reference remove(%s) missing", op, id)
			}
			if q.remove(id) {
				t.Fatalf("op %d: double remove(%s) succeeded", op, id)
			}
			live = append(live[:i], live[i+1:]...)
		default: // position sanity: 1-based, bounded by backlog, unique head
			if len(live) == 0 {
				continue
			}
			id := live[rng.Intn(len(live))]
			pos := q.position(id)
			if pos < 1 || pos > len(live) {
				t.Fatalf("op %d: position(%s) = %d with %d queued", op, id, pos, len(live))
			}
		}
		if op%97 == 0 {
			checkHeapInvariant(t, q)
		}
	}

	// Drain: every remaining pop must keep matching the reference, and
	// the set of positions just before draining must be a permutation of
	// 1..n.
	checkHeapInvariant(t, q)
	positions := make([]int, 0, len(live))
	for _, id := range live {
		positions = append(positions, q.position(id))
	}
	sort.Ints(positions)
	for i, p := range positions {
		if p != i+1 {
			t.Fatalf("positions are not a permutation of 1..%d: %v", len(positions), positions)
		}
	}
	drained := 0
	for {
		j := q.pop()
		if j == nil {
			break
		}
		if want := refPop(j.Owner); j.ID != want {
			t.Fatalf("drain: pop for owner %q = %s, reference says %s", j.Owner, j.ID, want)
		}
		drained++
		checkHeapInvariant(t, q)
	}
	if drained != len(live) {
		t.Fatalf("drained %d jobs, reference had %d", drained, len(live))
	}
}

// TestAdmitPositionPredictsPopOrder pins position() against reality:
// over a mixed-owner, mixed-priority backlog the reported positions
// must equal the order pop actually produces.
func TestAdmitPositionPredictsPopOrder(t *testing.T) {
	q := newAdmitQueue(time.Second, QuotaConfig{})
	t0 := time.Unix(8000, 0)
	ids := []string{}
	for i := 0; i < 24; i++ {
		owner := []string{"a", "b", "c"}[i%3]
		weight := map[string]int{"a": 1, "b": 1, "c": 2}[owner]
		id := fmt.Sprintf("%s-%d", owner, i)
		q.push(mkAdmitJob(id, owner, i%5, weight, t0.Add(time.Duration(i)*time.Millisecond)))
		ids = append(ids, id)
	}
	byPos := make(map[int]string, len(ids))
	batch := q.positions()
	for _, id := range ids {
		pos := q.position(id)
		if prev, dup := byPos[pos]; dup {
			t.Fatalf("position %d claimed by both %s and %s", pos, prev, id)
		}
		byPos[pos] = id
		if batch[id] != pos {
			t.Fatalf("positions()[%s] = %d, position() = %d — batch and single replay disagree",
				id, batch[id], pos)
		}
	}
	for i := 1; i <= len(ids); i++ {
		j := q.pop()
		if j == nil {
			t.Fatalf("pop %d = nil", i)
		}
		if byPos[i] != j.ID {
			t.Fatalf("pop %d = %s, but position() predicted %s", i, j.ID, byPos[i])
		}
	}
}
