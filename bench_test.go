// One benchmark per experiment in the per-experiment index of DESIGN.md
// (the paper's figures and claims), plus micro-benchmarks used as
// ablations for the design choices the scheduler relies on. Regenerate
// EXPERIMENTS.md rows with:
//
//	go test -bench=. -benchmem
//	go run ./cmd/vdce-bench            # full-size sweeps with tables
package vdce

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"vdce/internal/afg"
	"vdce/internal/core"
	"vdce/internal/experiments"
	"vdce/internal/netmodel"
	"vdce/internal/predict"
	"vdce/internal/repository"
	"vdce/internal/sim"
	"vdce/internal/tasklib"
	"vdce/internal/testbed"
	"vdce/internal/workload"
)

// benchExperiment runs one E-suite entry in quick mode per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_LESBuild(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2_SiteScheduler(b *testing.B) { benchExperiment(b, "E2") }
func BenchmarkE3_HostSelection(b *testing.B) { benchExperiment(b, "E3") }
func BenchmarkE4_Locality(b *testing.B)      { benchExperiment(b, "E4") }
func BenchmarkE5_Monitoring(b *testing.B)    { benchExperiment(b, "E5") }
func BenchmarkE6_FailureDetect(b *testing.B) { benchExperiment(b, "E6") }
func BenchmarkE7_Reschedule(b *testing.B)    { benchExperiment(b, "E7") }
func BenchmarkE8_Prediction(b *testing.B)    { benchExperiment(b, "E8") }
func BenchmarkE9_Scale(b *testing.B)         { benchExperiment(b, "E9") }
func BenchmarkE10_DataManager(b *testing.B)  { benchExperiment(b, "E10") }

// --- micro-benchmarks / ablations ---

// BenchmarkLevelComputation isolates the priority phase of the site
// scheduler (the level computation of §3) on a 1000-task layered DAG.
func BenchmarkLevelComputation(b *testing.B) {
	w, err := workload.Layered(workload.Params{Tasks: 1000, CCR: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	cost := w.CostFunc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.G.Levels(cost); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredict isolates one Predict(task, R) evaluation — the inner
// loop of the host selection algorithm.
func BenchmarkPredict(b *testing.B) {
	p := predict.Default()
	task := repository.TaskParams{
		Name: "t", ComputationOps: 1e9, CommunicationBytes: 1 << 20,
		RequiredMemBytes: 1 << 26, Parallelizable: true, SerialFraction: 0.1,
	}
	host := repository.HostView{
		HostName: "h", SpeedFactor: 2, CPULoad: 0.3,
		TotalMem: 1 << 30, AvailMem: 1 << 29, Status: repository.HostUp,
	}
	measured := 3 * time.Second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Predict(task, host, 4, &measured); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulate isolates the schedule evaluator on a 300-task graph.
func BenchmarkSimulate(b *testing.B) {
	w, err := workload.Layered(workload.Params{Tasks: 300, CCR: 1, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	net, err := netmodel.New([]string{"s0"})
	if err != nil {
		b.Fatal(err)
	}
	// A fixed synthetic placement across 8 hosts.
	table := &core.AllocationTable{App: "bench"}
	order, err := w.G.TopoSort()
	if err != nil {
		b.Fatal(err)
	}
	for _, id := range order {
		table.Entries = append(table.Entries, core.Placement{
			Task: id, TaskName: w.G.Task(id).Name, Site: "s0",
			Hosts:     []string{fmt.Sprintf("h%d", int(id)%8)},
			Predicted: w.Costs[id],
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(w.G, table, net); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLevelPriorityAblation compares the paper's level priority
// against FIFO ordering on the same cluster — the design choice DESIGN.md
// calls out (list scheduling priority).
func BenchmarkLevelPriorityAblation(b *testing.B) {
	for _, prio := range []struct {
		name string
		mode core.PriorityMode
	}{{"level", core.LevelPriority}, {"fifo", core.FIFOPriority}} {
		b.Run(prio.name, func(b *testing.B) {
			// Direct measurement: schedule+simulate one 200-task graph.
			w, err := workload.Layered(workload.Params{Tasks: 200, CCR: 5, Seed: 3})
			if err != nil {
				b.Fatal(err)
			}
			env := newBenchCluster(b, 4, 8, 3)
			if err := env.install(b, w); err != nil {
				b.Fatal(err)
			}
			var makespan time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sched := core.NewScheduler(env.sites[0], env.remotes(), env.net, 3)
				sched.Priority = prio.mode
				table, err := sched.Schedule(w.G, w.CostFunc())
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run(w.G, table, env.net)
				if err != nil {
					b.Fatal(err)
				}
				makespan = res.Makespan
			}
			b.ReportMetric(float64(makespan)/1e6, "makespan-ms")
		})
	}
}

// benchCluster is a minimal in-package analogue of the experiments
// fixture for ablation benches.
type benchCluster struct {
	sites []*core.LocalSite
	net   *netmodel.Network
	repos []*repository.Repository
	hosts [][]string
}

func newBenchCluster(b testing.TB, nSites, hostsPer int, seed int64) *benchCluster {
	b.Helper()
	env, err := New(Config{Testbed: testbed.Config{
		Sites: nSites, HostsPerGroup: hostsPer, Seed: seed,
	}})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(env.Close)
	c := &benchCluster{net: env.Net, sites: env.Sites}
	for _, s := range env.TB.Sites {
		c.repos = append(c.repos, s.Repo)
		var names []string
		for _, h := range s.Hosts {
			names = append(names, h.Name)
		}
		c.hosts = append(c.hosts, names)
	}
	return c
}

func (c *benchCluster) install(b testing.TB, w *workload.Graph) error {
	b.Helper()
	for i, repo := range c.repos {
		if err := w.Install(repo, c.hosts[i]); err != nil {
			return err
		}
	}
	return nil
}

func (c *benchCluster) remotes() []core.SiteService {
	var out []core.SiteService
	for _, s := range c.sites[1:] {
		out = append(out, s)
	}
	return out
}

// BenchmarkKNearestAblation sweeps the paper's k parameter on a ring —
// the locality design choice.
func BenchmarkKNearestAblation(b *testing.B) {
	for _, k := range []int{0, 1, 3, 7} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			w, err := workload.Layered(workload.Params{Tasks: 100, CCR: 5, Seed: 4})
			if err != nil {
				b.Fatal(err)
			}
			env := newBenchCluster(b, 8, 4, 4)
			env.net.Ring(10*time.Millisecond, 2e6)
			if err := env.install(b, w); err != nil {
				b.Fatal(err)
			}
			var makespan time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sched := core.NewScheduler(env.sites[0], env.remotes(), env.net, k)
				table, err := sched.Schedule(w.G, w.CostFunc())
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run(w.G, table, env.net)
				if err != nil {
					b.Fatal(err)
				}
				makespan = res.Makespan
			}
			b.ReportMetric(float64(makespan)/1e6, "makespan-ms")
		})
	}
}

// BenchmarkBlendAblation sweeps the prediction model's measured-history
// weight — the calibration design choice (DESIGN.md S5). It reports the
// absolute prediction error against a synthetic ground truth where the
// catalog over-estimates host speed by 2x.
func BenchmarkBlendAblation(b *testing.B) {
	for _, blend := range []float64{0, 0.3, 0.6, 0.9} {
		b.Run(fmt.Sprintf("blend=%.1f", blend), func(b *testing.B) {
			p := predict.Default()
			p.MeasuredBlend = blend
			task := repository.TaskParams{Name: "t", ComputationOps: 1e8}
			host := repository.HostView{
				HostName: "h", SpeedFactor: 2, // catalog claims 2x
				TotalMem: 1 << 30, AvailMem: 1 << 30, Status: repository.HostUp,
			}
			// Ground truth: the host actually behaves like speed 1.
			truth := time.Second
			measured := truth // smoothed history has converged to reality
			var errNs float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := p.Predict(task, host, 1, &measured)
				if err != nil {
					b.Fatal(err)
				}
				d := float64(got - truth)
				if d < 0 {
					d = -d
				}
				errNs = d
			}
			b.ReportMetric(errNs/1e6, "abs-err-ms")
		})
	}
}

// BenchmarkSchedulerRound isolates one full core.Scheduler round
// (Fig. 2) on a 200-task layered workload across 4 sites — the
// scheduling hot path of the submission pipeline. ReportAllocs feeds
// allocs/op into the BENCH_*.json records so allocation regressions on
// this path stay visible to future PRs.
func BenchmarkSchedulerRound(b *testing.B) {
	w, err := workload.Layered(workload.Params{Tasks: 200, CCR: 1, Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	env := newBenchCluster(b, 4, 8, 6)
	if err := env.install(b, w); err != nil {
		b.Fatal(err)
	}
	cost := w.CostFunc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched := core.NewScheduler(env.sites[0], env.remotes(), env.net, 3)
		if _, err := sched.Schedule(w.G, cost); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSchedulerRoundAllocationCeiling is the allocation guardrail for
// the scheduling hot path: one scheduler round on the benchmark
// workload must stay under a fixed allocation budget. Epoch-snapshot
// reads plus the generation-validated ranked-host cache put a
// steady-state round at ~5.4k allocs (200 tasks on 4 sites; the
// pre-cache baseline was ~21k); the ceiling keeps ~2x headroom over
// that so it only trips on a real regression.
func TestSchedulerRoundAllocationCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	w, err := workload.Layered(workload.Params{Tasks: 200, CCR: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	env := newBenchCluster(t, 4, 8, 6)
	if err := env.install(t, w); err != nil {
		t.Fatal(err)
	}
	cost := w.CostFunc()
	const ceiling = 12_000
	avg := testing.AllocsPerRun(5, func() {
		sched := core.NewScheduler(env.sites[0], env.remotes(), env.net, 3)
		if _, err := sched.Schedule(w.G, cost); err != nil {
			t.Fatal(err)
		}
	})
	if avg > ceiling {
		t.Fatalf("scheduler round allocates %.0f allocs/run, ceiling %d — hot path regressed", avg, ceiling)
	}
}

// BenchmarkConcurrentSubmit measures aggregate throughput of the
// submission pipeline against the serial one-shot path on the same
// workload: a batch of 8 small C3I applications per iteration. The
// pipeline variant additionally reports the engine's peak application
// concurrency, demonstrating >1 application in flight.
func BenchmarkConcurrentSubmit(b *testing.B) {
	const batch = 8
	buildBatch := func(b *testing.B) []*afg.Graph {
		b.Helper()
		graphs := make([]*afg.Graph, batch)
		for i := range graphs {
			g, err := tasklibC3I(6+i%3, int64(i+1))
			if err != nil {
				b.Fatal(err)
			}
			graphs[i] = g
		}
		return graphs
	}
	newSubmitEnv := func(b *testing.B) *Environment {
		b.Helper()
		env, err := New(Config{
			Testbed: testbed.Config{Sites: 4, HostsPerGroup: 3, Seed: 41, BaseLoadMax: 0.2},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(env.Close)
		return env
	}

	b.Run("serial", func(b *testing.B) {
		env := newSubmitEnv(b)
		graphs := buildBatch(b)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, g := range graphs {
				if _, _, err := env.Run(ctx, g, 2); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "apps/sec")
	})

	b.Run("pipeline", func(b *testing.B) {
		env := newSubmitEnv(b)
		graphs := buildBatch(b)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			jobs := make([]*Job, batch)
			for j, g := range graphs {
				job, err := env.Submit(ctx, g, WithMaxHosts(2))
				if err != nil {
					b.Fatal(err)
				}
				jobs[j] = job
			}
			for _, job := range jobs {
				if err := job.Wait(ctx); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "apps/sec")
		b.ReportMetric(float64(env.Engine.PeakConcurrency()), "peak-apps")
	})
}

// tasklibC3I builds a C3I pipeline with machine-type preferences
// cleared (clearMachineTypes), so any fabricated testbed host is
// eligible.
func tasklibC3I(targets int, seed int64) (*afg.Graph, error) {
	g, err := tasklib.BuildC3IPipeline(targets, seed)
	if err != nil {
		return nil, err
	}
	clearMachineTypes(g)
	return g, nil
}

// BenchmarkPriorityAdmission compares the priority admission queue (the
// aging heap behind Submit) against the FIFO channel it replaced, on the
// enqueue/dequeue hot path: one iteration admits and drains a batch of
// 1024 jobs with rotating priorities. The heap buys priority ordering
// and starvation protection for a modest constant over the channel.
func BenchmarkPriorityAdmission(b *testing.B) {
	const batch = 1024
	mkJobs := func() []*Job {
		jobs := make([]*Job, batch)
		base := time.Now()
		for i := range jobs {
			jobs[i] = &Job{
				ID:       fmt.Sprintf("job-%d", i),
				priority: i % 7,
				enqueued: base.Add(time.Duration(i) * time.Microsecond),
			}
		}
		return jobs
	}

	b.Run("fifo-channel", func(b *testing.B) {
		jobs := mkJobs()
		q := make(chan *Job, batch)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, j := range jobs {
				q <- j
			}
			for range jobs {
				<-q
			}
		}
	})

	b.Run("priority-heap", func(b *testing.B) {
		jobs := mkJobs()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := newAdmitQueue(30*time.Second, QuotaConfig{})
			for _, j := range jobs {
				q.push(j)
			}
			for q.pop() != nil {
			}
		}
	})
}

// BenchmarkFairShareAdmission measures the weighted-fair admission
// queue on a mixed-owner workload: the same 1024-job batch as
// BenchmarkPriorityAdmission, but spread across 8 owners with rotating
// priorities and weights, so every pop exercises the cross-owner
// virtual-time arbitration on top of the per-owner heaps. Compare with
// BenchmarkPriorityAdmission/priority-heap (single-owner fast path) —
// the fair-share layer must stay within 2x of its alloc profile.
func BenchmarkFairShareAdmission(b *testing.B) {
	const batch = 1024
	const owners = 8
	mkJobs := func() []*Job {
		jobs := make([]*Job, batch)
		base := time.Now()
		for i := range jobs {
			jobs[i] = &Job{
				ID:          fmt.Sprintf("job-%d", i),
				Owner:       fmt.Sprintf("owner-%d", i%owners),
				priority:    i % 7,
				shareWeight: 1 + i%4,
				enqueued:    base.Add(time.Duration(i) * time.Microsecond),
			}
		}
		return jobs
	}
	jobs := mkJobs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := newAdmitQueue(30*time.Second, QuotaConfig{})
		for _, j := range jobs {
			q.push(j)
		}
		for q.pop() != nil {
		}
	}
}

// TestAdmitQueueOrdering pins the admission comparator: higher priority
// first, FIFO within a priority level, and aging — one extra AgingStep
// of waiting outranks one level of priority.
func TestAdmitQueueOrdering(t *testing.T) {
	const step = time.Second
	q := newAdmitQueue(step, QuotaConfig{})
	t0 := time.Unix(1000, 0)
	mk := func(id string, prio int, at time.Time) *Job {
		return &Job{ID: id, priority: prio, enqueued: at}
	}
	// old-low waited 3 steps longer than new-mid (priority +2): aging wins.
	q.push(mk("new-high", 9, t0.Add(3*step)))
	q.push(mk("old-low", 0, t0))
	q.push(mk("new-mid", 2, t0.Add(3*step)))
	q.push(mk("fifo-a", 2, t0.Add(3*step)))
	want := []string{"new-high", "old-low", "new-mid", "fifo-a"}
	if got := q.position("old-low"); got != 2 {
		t.Fatalf("position(old-low) = %d, want 2", got)
	}
	for _, id := range want {
		j := q.pop()
		if j == nil || j.ID != id {
			t.Fatalf("pop = %v, want %s", j, id)
		}
	}
	if q.pop() != nil {
		t.Fatal("queue not drained")
	}
	// remove deletes by ID.
	q.push(mk("a", 1, t0))
	q.push(mk("b", 1, t0.Add(step)))
	if !q.remove("a") || q.remove("a") {
		t.Fatal("remove misbehaved")
	}
	if j := q.pop(); j == nil || j.ID != "b" {
		t.Fatalf("pop after remove = %v, want b", j)
	}
	// Overflow guard: an absurd caller-supplied priority saturates
	// instead of wrapping negative; saturated jobs still rank first,
	// ordered among themselves by enqueue time.
	q.push(mk("normal", 5, t0))
	q.push(mk("huge-1", int(^uint(0)>>1), t0.Add(step)))
	q.push(mk("huge-2", int(^uint(0)>>1), t0))
	for _, id := range []string{"huge-2", "huge-1", "normal"} {
		j := q.pop()
		if j == nil || j.ID != id {
			t.Fatalf("overflow pop = %v, want %s", j, id)
		}
	}
}

// BenchmarkRepoSnapshotContention measures the lock-free scheduling
// read path under pressure: parallel readers sweep a site snapshot
// (up-host views + measured times) while a background writer publishes
// monitor updates at a realistic cadence. Before the epoch-snapshot
// rework this path serialized every reader behind the repository
// RWMutex and deep-copied each host record per sweep.
func BenchmarkRepoSnapshotContention(b *testing.B) {
	const hosts = 32
	repo := repository.New("s1")
	for i := 0; i < hosts; i++ {
		if err := repo.Resources.AddHost(repository.ResourceInfo{
			HostName: fmt.Sprintf("h%d", i), Site: "s1", Group: "g0",
			TotalMem: 1 << 30, SpeedFactor: float64(i%4 + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := repo.TaskPerf.RegisterTask(repository.TaskParams{Name: "t", ComputationOps: 1e8}); err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var writerDone sync.WaitGroup
	writerDone.Add(1)
	go func() {
		defer writerDone.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			h := fmt.Sprintf("h%d", i%hosts)
			_ = repo.Resources.UpdateWorkload(h, repository.WorkloadSample{
				CPULoad: float64(i%10) / 10, AvailMemBytes: 1 << 29, Time: time.Unix(int64(i), 0),
			})
			i++
			time.Sleep(50 * time.Microsecond) // monitor cadence, not a tight loop
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var sink float64
		for pb.Next() {
			snap := repo.Snapshot()
			for _, v := range snap.UpHosts() {
				if d, ok := snap.MeasuredTime("t", v.HostName); ok {
					sink += d.Seconds()
				}
				sink += v.CPULoad
			}
		}
		_ = sink
	})
	b.StopTimer()
	close(stop)
	writerDone.Wait()
}

// BenchmarkRankedHostsCached measures the generation-validated
// ranked-host cache on both sides: "warm" rounds where no repository
// write lands between lookups (pure hits), and "invalidated" rounds
// where every lookup follows a workload update (worst case: full
// re-predict over the catalog). The gap between the two is what the
// cache buys each unchanged-state scheduling round.
func BenchmarkRankedHostsCached(b *testing.B) {
	build := func(b *testing.B) (*core.LocalSite, *afg.Graph) {
		b.Helper()
		env, err := New(Config{Testbed: testbed.Config{Sites: 1, HostsPerGroup: 32, Seed: 11}})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(env.Close)
		g, err := tasklibC3I(6, 1)
		if err != nil {
			b.Fatal(err)
		}
		return env.Sites[0], g
	}

	b.Run("warm", func(b *testing.B) {
		site, g := build(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := site.HostSelection(g); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := site.CacheStats()
		b.ReportMetric(st.HitRatio(), "hit-ratio")
	})

	b.Run("invalidated", func(b *testing.B) {
		site, g := build(b)
		host := site.Repo.Resources.Views()[0].HostName
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := site.Repo.Resources.UpdateWorkload(host, repository.WorkloadSample{
				CPULoad: float64(i%10) / 100, AvailMemBytes: 1 << 30, Time: time.Unix(int64(i), 0),
			}); err != nil {
				b.Fatal(err)
			}
			if _, err := site.HostSelection(g); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := site.CacheStats()
		b.ReportMetric(st.HitRatio(), "hit-ratio")
	})
}

// BenchmarkAFGTopoSort exercises the structural core on a wide graph.
func BenchmarkAFGTopoSort(b *testing.B) {
	w, err := workload.FFT(workload.Params{Tasks: 2000, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.G.TopoSort(); err != nil {
			b.Fatal(err)
		}
	}
}
