package vdce

// Chaos soak: hosts are killed (and some recovered) by the fault
// injector WHILE a 32-application submission wave executes, with the
// heartbeat failure detector running. Acceptance (ISSUE 4): every job
// reaches a deterministic terminal state, nothing hangs in Wait, and
// jobs whose tasks had viable alternate hosts complete successfully via
// detector-driven rescheduling. Under -short the scenario is bounded
// (fewer jobs, fewer kills) so the race-enabled run stays quick.

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"vdce/internal/afg"
	"vdce/internal/chaos"
	"vdce/internal/detect"
	"vdce/internal/testbed"
)

// spinChain builds a 3-task pipeline: Spin -> Checksum -> Checksum.
func spinChain(t *testing.T, name string, ms int) *afg.Graph {
	t.Helper()
	g := afg.NewGraph(name)
	spin := g.AddTask("Spin", "util", 0, 1)
	if err := g.SetProps(spin, afg.Properties{Args: map[string]string{"ms": fmt.Sprint(ms)}}); err != nil {
		t.Fatal(err)
	}
	c1 := g.AddTask("Checksum", "util", 1, 1)
	c2 := g.AddTask("Checksum", "util", 1, 1)
	if err := g.Connect(spin, 0, c1, 0, 1024); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(c1, 0, c2, 0, 1024); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestChaosSoakKillAndRecoverUnderConcurrentSubmissions(t *testing.T) {
	jobsN, hostsPerSite, kills, recovers := 32, 8, 4, 2
	if testing.Short() {
		jobsN, hostsPerSite, kills, recovers = 12, 4, 2, 1
	}

	env, err := New(Config{
		Testbed: testbed.Config{
			Sites: 2, HostsPerGroup: hostsPerSite, Seed: 77,
			SpeedMin: 1, SpeedMax: 2, BaseLoadMax: 0.1, LoadSigma: 0.01,
		},
		StartDaemons:  true,
		MonitorPeriod: 10 * time.Millisecond,
		StartDetector: true,
		// Generous suspicion relative to the 10ms monitor period: a
		// loaded race-mode CI must not confirm a live host dead just
		// because its daemon tick slipped.
		Detect: detect.Config{
			SuspicionTimeout: 100 * time.Millisecond,
			ConfirmQuorum:    2,
			TickPeriod:       25 * time.Millisecond,
		},
		Pipeline: PipelineConfig{QueueDepth: 64, SchedulerWorkers: 4, MaxConcurrentRuns: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	// Dead hosts accumulate in the exclusion lists attempt by attempt
	// until the detector publishes them down; give tasks headroom to
	// outlast the confirmation window.
	env.Engine.MaxAttempts = 8
	env.Engine.LoadCheckPeriod = 2 * time.Millisecond

	// Submit the whole wave.
	jobs := make([]*Job, 0, jobsN)
	for i := 0; i < jobsN; i++ {
		g := spinChain(t, fmt.Sprintf("soak-%d", i), 25)
		job, err := env.Submit(context.Background(), g)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, job)
	}

	// Wait until an early batch is scheduled so the kill set provably
	// intersects live placements, then kill 25% of the fleet — placed
	// hosts first, padded deterministically by the injector's seed.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		scheduled := 0
		for _, j := range jobs[:jobsN/4] {
			if j.Table() != nil {
				scheduled++
			}
		}
		if scheduled == jobsN/4 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	placed := make(map[string]bool)
	for _, j := range jobs[:jobsN/4] {
		if table := j.Table(); table != nil {
			for _, e := range table.Entries {
				placed[e.Hosts[0]] = true
			}
		}
	}
	placedNames := make([]string, 0, len(placed))
	for h := range placed {
		placedNames = append(placedNames, h)
	}
	if len(placedNames) == 0 {
		// Never fall through to fractional targeting here: an empty
		// explicit host list would silently kill a seeded 25% whose
		// names the victim assertions below would not know about.
		t.Fatal("no job scheduled within 30s; cannot pick placement-intersecting victims")
	}
	sort.Strings(placedNames)
	victims := placedNames
	if len(victims) > kills {
		victims = victims[:kills]
	}
	inj := chaos.NewInjector(env.TB, 7)
	if _, err := inj.Apply(chaos.Event{Action: chaos.Kill, Hosts: victims}); err != nil {
		t.Fatal(err)
	}
	if len(victims) < kills {
		// Pad to the full 25% with seeded picks from the survivors.
		a, err := inj.Apply(chaos.Event{Action: chaos.Kill,
			Fraction: float64(kills-len(victims)) / float64(2*hostsPerSite-len(victims))})
		if err != nil {
			t.Fatal(err)
		}
		victims = append(victims, a.Targets...)
	}
	t.Logf("killed %v", victims)

	// Recover some of the dead mid-wave, as the scenario demands.
	go func() {
		time.Sleep(300 * time.Millisecond)
		_, _ = inj.Apply(chaos.Event{Action: chaos.Recover,
			Hosts: victims[:recovers]})
	}()

	// Every job must reach a terminal state: Drain bounds the whole wave
	// so a single job stuck in Wait fails loudly instead of hanging CI.
	drainCtx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := env.Drain(drainCtx); err != nil {
		for _, j := range jobs {
			if j.State() != JobDone && j.State() != JobFailed && j.State() != JobCanceled {
				t.Errorf("job %s stuck in %s", j.ID, j.State())
			}
		}
		t.Fatalf("drain: %v", err)
	}

	// With 75% of the fleet alive and Spin/Checksum eligible everywhere,
	// every job had viable alternates: all must have completed, the
	// failed attempts absorbed by detector-driven rescheduling.
	totalReschedules, jobsWithFailedHosts := 0, 0
	for _, j := range jobs {
		if err := j.Wait(context.Background()); err != nil {
			t.Errorf("job %s (%s): %v [reschedules=%d failed_hosts=%v]",
				j.ID, j.State(), err, j.Reschedules(), j.FailedHosts())
			continue
		}
		if j.State() != JobDone {
			t.Errorf("job %s terminal state = %s, want done", j.ID, j.State())
		}
		st := j.Status()
		if st.Reschedules != j.Reschedules() {
			t.Errorf("job %s status reschedules %d != handle %d", j.ID, st.Reschedules, j.Reschedules())
		}
		totalReschedules += j.Reschedules()
		if len(st.FailedHosts) > 0 {
			jobsWithFailedHosts++
			for _, h := range st.FailedHosts {
				found := false
				for _, v := range victims {
					if v == h {
						found = true
					}
				}
				if !found {
					t.Errorf("job %s reports non-victim failed host %s", j.ID, h)
				}
			}
		}
	}
	if totalReschedules == 0 {
		t.Error("no job rescheduled despite kills intersecting live placements")
	}
	if jobsWithFailedHosts == 0 {
		t.Error("no job surfaced failed_hosts despite mid-run kills")
	}

	// The detector must have confirmed the kills...
	_, confirmations, _, _ := env.Detector.Stats()
	if int(confirmations) < kills {
		t.Errorf("detector confirmed %d deaths, want >= %d", confirmations, kills)
	}
	// ...and the recovered hosts must rejoin: repository up again and the
	// detector reporting them alive, within the heartbeat cadence.
	waitFor := func(cond func() bool) bool {
		end := time.Now().Add(10 * time.Second)
		for time.Now().Before(end) {
			if cond() {
				return true
			}
			time.Sleep(5 * time.Millisecond)
		}
		return cond()
	}
	for _, h := range victims[:recovers] {
		host := h
		if !waitFor(func() bool {
			st, ok := env.Detector.State(host)
			return ok && st.Alive()
		}) {
			st, _ := env.Detector.State(host)
			t.Errorf("recovered host %s never rejoined (detector state %s)", host, st)
		}
	}
}

// TestDetectorRecoversPartitionedSiteUnderLoad drives the detector-only
// path end to end through the public pipeline: a host is partitioned —
// never Failed, so the engine watchdog cannot see it locally — while
// its tasks run; only heartbeat silence, quorum confirmation, and the
// engine's dead-set interruption can move the work and finish the jobs.
func TestDetectorRecoversPartitionedHostUnderLoad(t *testing.T) {
	env, err := New(Config{
		Testbed: testbed.Config{
			Sites: 1, HostsPerGroup: 4, Seed: 21,
			SpeedMin: 1, SpeedMax: 1, BaseLoadMax: 0.05, LoadSigma: 0.01,
		},
		StartDaemons:  true,
		MonitorPeriod: 10 * time.Millisecond,
		StartDetector: true,
		// Suspicion must stay far above the monitor period: a stalled
		// daemon tick on a loaded CI machine must not read as death.
		Detect: detect.Config{
			SuspicionTimeout: 100 * time.Millisecond,
			ConfirmQuorum:    2,
			TickPeriod:       25 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	env.Engine.MaxAttempts = 8
	env.Engine.LoadCheckPeriod = 2 * time.Millisecond

	// A long spin pinned by scheduling to the fastest host; it must
	// outlast suspicion + quorum confirmation by a wide margin.
	g := spinChain(t, "partition-victim", 600)
	job, err := env.Submit(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for placement, then partition the primary host of the spin.
	var victim string
	for victim == "" {
		if table := job.Table(); table != nil {
			victim = table.Entries[0].Hosts[0]
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let the task start
	h, err := env.TB.Host(victim)
	if err != nil {
		t.Fatal(err)
	}
	h.Partition()
	defer h.Heal()
	if h.Failed() {
		t.Fatal("partitioned host reports Failed; the watchdog would bypass the detector")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := job.Wait(ctx); err != nil {
		t.Fatalf("job did not survive the partition: %v (state %s, reschedules %d)",
			err, job.State(), job.Reschedules())
	}
	if job.Reschedules() < 1 {
		t.Fatalf("reschedules = %d; the spin should have moved off %s", job.Reschedules(), victim)
	}
	// The patched table must show the task's final host, not the victim.
	if table := job.Table(); table.Entries[0].Hosts[0] == victim {
		t.Errorf("table still places the spin on the partitioned host")
	}
	fh := job.FailedHosts()
	if len(fh) != 1 || fh[0] != victim {
		t.Errorf("failed hosts = %v, want [%s]", fh, victim)
	}
	if res := job.Result(); res == nil || len(res.FailedHosts) == 0 {
		t.Error("result missing failed-host accounting")
	} else if res.Rescheduled != job.Reschedules() {
		t.Errorf("result reschedules %d != live counter %d", res.Rescheduled, job.Reschedules())
	}
}
