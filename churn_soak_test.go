package vdce

// Churn soak: a wave of one-shot owners floods a choked pipeline, a
// cancel storm kills most of the backlog while it is queued, and the
// survivors drain serialized. Acceptance (ISSUE 10): every canceled job
// terminalizes as canceled, every survivor reaches a terminal state,
// and — the owner-pruning contract under real pipeline traffic — the
// admission queue returns to zero live owner shares once the wave is
// terminal, while the board retains the rows. Runs bounded under
// -short so the dedicated -race CI step stays quick.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"vdce/internal/services"
	"vdce/internal/testbed"
)

func TestChurnSoakTransientOwnersCancelStorm(t *testing.T) {
	ownersN, survivors := 96, 12
	if testing.Short() {
		ownersN, survivors = 36, 8
	}

	env := newEnv(t, Config{
		Testbed: testbed.Config{Sites: 1, HostsPerGroup: 2, Seed: 404, BaseLoadMax: 0.2},
		Pipeline: PipelineConfig{
			QueueDepth:        ownersN + 8,
			SchedulerWorkers:  1,
			MaxConcurrentRuns: 1,
		},
	})
	// Suspend execution while the wave submits and the storm runs: the
	// first dispatched job parks at the console gate, so the rest of the
	// backlog is guaranteed to still be queued when the cancels land.
	env.Console.Suspend()
	ctx := context.Background()

	// One job per transient owner.
	jobs := make([]*Job, ownersN)
	for i := range jobs {
		j, err := env.Submit(ctx, soakGraph(t, i), WithOwner(fmt.Sprintf("churn-%d", i)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs[i] = j
	}

	// Cancel storm: kill everything but the first `survivors` jobs. Most
	// targets are still queued (exercising the location-index remove);
	// any that already dispatched exercise the in-flight cancel path —
	// both must terminalize as canceled.
	for _, j := range jobs[survivors:] {
		j.Cancel()
	}
	env.Console.Resume()

	for i, j := range jobs {
		if err := j.Wait(ctx); err != nil && i < survivors {
			t.Fatalf("survivor %d (%s): %v", i, j.ID, err)
		}
	}
	for _, j := range jobs[survivors:] {
		if s := j.Status(); s.State != services.JobStateCanceled {
			t.Fatalf("canceled job %s terminalized as %q, want %q", j.ID, s.State, services.JobStateCanceled)
		}
	}

	// Every owner is now fully drained (no backlog, in-flight, hosts, or
	// parks), so pruning must return the queue to steady-state size. The
	// final release commits just before Wait observers unblock, so allow
	// a short settle.
	deadline := time.Now().Add(5 * time.Second)
	for env.pipe.admit.ownerCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("admission queue still tracks %d owner shares after the wave terminalized, want 0",
				env.pipe.admit.ownerCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := env.pipe.admit.pruneCount(); n < uint64(ownersN) {
		t.Fatalf("prune count = %d, want >= %d (one per transient owner)", n, ownersN)
	}

	// The board — not the queue — is the surviving record: every owner's
	// rows and last-submitted weight remain readable after the prune.
	usages := env.Board.OwnerUsages()
	for i := 0; i < ownersN; i++ {
		owner := fmt.Sprintf("churn-%d", i)
		u, ok := usages[owner]
		if !ok || u.Total != 1 {
			t.Fatalf("board usage for %s = %+v (present=%v), want Total 1", owner, u, ok)
		}
	}
}
