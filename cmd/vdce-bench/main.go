// Command vdce-bench runs the reproduction experiment suite (E1-E10 in
// DESIGN.md) and prints each experiment's table. These are the rows
// recorded in EXPERIMENTS.md.
//
//	vdce-bench            # full suite
//	vdce-bench -run E2,E4 # selected experiments
//	vdce-bench -quick     # reduced sweeps
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vdce/internal/experiments"
)

func main() {
	runList := flag.String("run", "all", "comma-separated experiment IDs (E1..E10) or 'all'")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast pass")
	flag.Parse()

	var ids []string
	if *runList == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*runList, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	failed := 0
	for _, id := range ids {
		e, err := experiments.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed++
			continue
		}
		t0 := time.Now()
		table, err := e.Run(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed++
			continue
		}
		fmt.Println(table)
		fmt.Printf("(%s finished in %v)\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
