// Command vdce-monitor connects to a Site Manager's RPC endpoint and
// prints the site's resource-performance database — host status, load,
// and memory — optionally refreshing like the paper's workload
// visualization windows.
//
//	vdce-monitor -addr 127.0.0.1:41234
//	vdce-monitor -addr 127.0.0.1:41234 -watch 2s
package main

import (
	"flag"
	"fmt"
	"log"
	"net/rpc"
	"time"

	"vdce/internal/protocol"
)

func main() {
	addr := flag.String("addr", "", "Site Manager RPC address (required)")
	group := flag.String("group", "", "restrict to one group")
	upOnly := flag.Bool("up", false, "show only hosts marked up")
	watch := flag.Duration("watch", 0, "refresh interval (0 = print once)")
	flag.Parse()
	if *addr == "" {
		log.Fatal("vdce-monitor: -addr is required")
	}
	client, err := rpc.Dial("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	for {
		var list protocol.ResourceList
		err := client.Call(protocol.SiteServiceName+".Resources",
			protocol.ResourceQuery{Group: *group, UpOnly: *upOnly}, &list)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %-8s %-6s %-7s %-9s %s\n",
			"HOST", "GROUP", "STATUS", "LOAD", "MEM(MB)", "MACHINE")
		for _, h := range list.Hosts {
			fmt.Printf("%-28s %-8s %-6s %-7.2f %-9d %s %s (x%.2f)\n",
				h.HostName, h.Group, h.Status, h.CPULoad, h.AvailMem>>20,
				h.ArchType, h.OSType, h.SpeedFactor)
		}
		if *watch <= 0 {
			return
		}
		time.Sleep(*watch)
		fmt.Println()
	}
}
