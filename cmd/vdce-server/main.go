// Command vdce-server runs one VDCE site: the Site Manager RPC endpoint
// (scheduling, monitoring, and execution-record traffic) plus the
// Application Editor HTTP API, over a fabricated testbed site.
// Submissions flow through the environment's fair-share priority
// admission pipeline: within one owner higher-priority jobs overtake a
// saturated queue (with aging), while across owners the queue drains
// by weighted fair queuing so no single user monopolizes the site; the
// -quota-* flags add per-owner caps (queued submissions are rejected
// with 429 over the cap, in-flight and held-host excess parks). The
// versioned job-control API (GET /v1/jobs with owner/state filters and
// cursor pagination, GET /v1/jobs/{id}, DELETE /v1/jobs/{id} to cancel,
// GET /v1/owners for per-owner weights/quotas/usage, PATCH
// /v1/owners/{owner} for runtime weight pins and quota overrides)
// serves status and control; GET /v1/jobs/{id}/events and GET
// /v1/events stream job transitions as Server-Sent Events so clients
// subscribe instead of polling; -rate-rps adds a per-owner API request
// rate limit (429 with Retry-After over it). The legacy GET /jobs dump
// remains. With -store-dir the control plane is durable: job lifecycle,
// owner admin state, and learned performance history are logged to an
// append-only store, and a restarted server re-admits queued jobs and
// re-dispatches in-flight ones. With -shed-wait the admission queue
// sheds instead of blocking under overload: submissions that cannot get
// a slot in time are rejected with 503 + Retry-After, /readyz reports
// not-ready while recovery replay drains or the shed rate is high, and
// per-host circuit breakers (-breakers, on by default) quarantine
// flapping hosts from placement until half-open probes succeed — state
// visible on GET /v1/hosts. GET /metrics exposes the control plane's
// Prometheus-text metrics (admission, scheduler, exec, breakers, WAL,
// events), GET /v1/jobs/{id}/trace returns a job's lifecycle trace,
// -debug-addr serves net/http/pprof on a second listener, and
// -log-level/-log-format enable structured slog output on stderr.
//
//	vdce-server -hosts 8 -http 127.0.0.1:8470 -workers 4 -parallel 8
//	vdce-server -hosts 8 -quota-queued 32 -quota-inflight 4
//
// The heartbeat failure detector runs by default (-detector=false
// disables it), so crashed or partitioned hosts are confirmed dead,
// marked down in the repository, and their running tasks rescheduled
// mid-flight; per-job recovery is visible as reschedules/failed_hosts
// on /v1/jobs. With -chaos a fault-injection scenario plays against the
// live testbed while submissions execute:
//
//	vdce-server -hosts 8 -chaos kill-quarter -chaos-span 30s
//
// Log in with user "user_k", password "vdce".
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"time"

	"vdce"
	"vdce/internal/chaos"
	"vdce/internal/exec"
	"vdce/internal/jobsapi"
	"vdce/internal/testbed"
)

// buildLogger turns the -log-level/-log-format flags into a structured
// logger on stderr (keeping stdout for the banner and chaos reports).
// An empty level disables logging entirely (the library's default).
func buildLogger(level, format string) (*slog.Logger, error) {
	if level == "" {
		return nil, nil
	}
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("vdce-server: bad -log-level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("vdce-server: bad -log-format %q (want text|json)", format)
	}
}

// lockedWriter serializes writes from the chaos goroutine and run's
// own prints onto one underlying writer.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		log.Fatal(err)
	}
}

// run starts the server and blocks until ctx is canceled. notify, when
// non-nil, receives the editor's actual listen address once it is
// serving (tests use it with ephemeral ports).
func run(ctx context.Context, args []string, out io.Writer, notify func(addr string)) error {
	fs := flag.NewFlagSet("vdce-server", flag.ContinueOnError)
	hosts := fs.Int("hosts", 8, "hosts in the site")
	groups := fs.Int("groups", 2, "groups in the site")
	httpAddr := fs.String("http", "127.0.0.1:8470", "Application Editor HTTP address")
	seed := fs.Int64("seed", 1, "testbed seed")
	execute := fs.Bool("execute", true, "execute submitted applications (not just schedule)")
	workers := fs.Int("workers", 0, "scheduler workers (0 = default)")
	queue := fs.Int("queue", 0, "admission queue depth (0 = default)")
	parallel := fs.Int("parallel", 0, "max concurrently executing applications (0 = default)")
	detector := fs.Bool("detector", true, "run the heartbeat failure detector")
	quotaQueued := fs.Int("quota-queued", 0, "max queued jobs per owner (0 = unlimited)")
	quotaInflight := fs.Int("quota-inflight", 0, "max scheduling+running jobs per owner (0 = unlimited; excess parks in the queue — pair with -quota-queued so a throttled owner's backlog cannot fill the shared queue)")
	quotaHosts := fs.Int("quota-hosts", 0, "max concurrently held hosts per owner (0 = unlimited; excess parks before execution)")
	rateRPS := fs.Float64("rate-rps", 0, "per-owner API request rate limit in requests/second (0 = unlimited; over-limit requests get 429 with Retry-After)")
	rateBurst := fs.Int("rate-burst", 0, "per-owner API request burst capacity (0 = ceil of -rate-rps)")
	eventBuffer := fs.Int("event-buffer", 0, "job-event replay ring size for SSE Last-Event-ID resume (0 = default 4096)")
	storeDir := fs.String("store-dir", "", "durable control-plane store directory: job lifecycle, owner admin state, and performance history survive restarts (empty = in-memory only)")
	shedWait := fs.Duration("shed-wait", 0, "max time a submission may wait for an admission-queue slot before it is shed with 503 + Retry-After (0 = never shed, block indefinitely)")
	shedRetryAfter := fs.Duration("shed-retry-after", 0, "Retry-After hint attached to shed responses (0 = default 1s)")
	shedDeadline := fs.Bool("shed-deadline", false, "shed submissions whose deadline is infeasible even on an idle testbed (lower-bound critical-path estimate)")
	breakers := fs.Bool("breakers", true, "run per-host circuit breakers: hosts with a high windowed failure rate are quarantined from placement until half-open probes succeed")
	retryBudget := fs.Float64("retry-budget", 0, "engine-wide retry budget in retries/second; over-budget reschedules park until a token frees (0 = unlimited)")
	chaosName := fs.String("chaos", "", "play a fault scenario against the live testbed: kill-quarter|rolling-restart|site-partition|flapping-host|brownout")
	chaosSpan := fs.Duration("chaos-span", 30*time.Second, "duration the -chaos scenario is spread over")
	logLevel := fs.String("log-level", "", "structured log level: debug|info|warn|error (empty = logging off)")
	logFormat := fs.String("log-format", "text", "structured log format: text|json")
	debugAddr := fs.String("debug-addr", "", "debug HTTP address serving net/http/pprof and an unauthenticated /metrics mirror (empty = off)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}

	env, err := vdce.New(vdce.Config{
		Testbed: testbed.Config{
			Sites: 1, GroupsPerSite: *groups, HostsPerGroup: *hosts, Seed: *seed,
		},
		UseRPC:        true,
		StartDaemons:  true,
		StartDetector: *detector,
		DilationScale: 1,
		LoadThreshold: 0.9,
		Pipeline: vdce.PipelineConfig{
			QueueDepth:        *queue,
			SchedulerWorkers:  *workers,
			MaxConcurrentRuns: *parallel,
			Quota: vdce.QuotaConfig{
				MaxQueuedPerOwner:   *quotaQueued,
				MaxInFlightPerOwner: *quotaInflight,
				MaxHostsPerOwner:    *quotaHosts,
			},
			APIRate: jobsapi.RateLimitConfig{
				RequestsPerSecond: *rateRPS,
				Burst:             *rateBurst,
			},
			EventBuffer: *eventBuffer,
			Shed: vdce.ShedConfig{
				MaxSubmitWait: *shedWait,
				RetryAfter:    *shedRetryAfter,
				CheckDeadline: *shedDeadline,
			},
		},
		StoreDir:      *storeDir,
		StartBreakers: *breakers,
		Retry:         exec.RetryConfig{BudgetPerSecond: *retryBudget},
		Logger:        logger,
	})
	if err != nil {
		return err
	}
	defer env.Close()
	if *storeDir != "" {
		rep := env.Recovery()
		fmt.Fprintf(out, "store: %s (recovered: %d queued re-admitted, %d in-flight re-dispatched, %d terminal retained)\n",
			*storeDir, rep.QueuedRecovered, rep.InFlightRedispatched, rep.TerminalRetained)
	}

	if *chaosName != "" {
		sc, err := chaos.Named(*chaosName, env.TB, *chaosSpan)
		if err != nil {
			return err
		}
		// The scenario goroutine logs events as they land, concurrently
		// with run's own writes: serialize the writer, and join the
		// goroutine before returning so nothing writes after run exits.
		lw := &lockedWriter{w: out}
		out = lw
		inj := chaos.NewInjector(env.TB, *seed)
		inj.OnApply = func(a chaos.Applied) { fmt.Fprintf(lw, "chaos: %s\n", a) }
		chaosCtx, stopChaos := context.WithCancel(ctx)
		chaosDone := make(chan struct{})
		defer func() { <-chaosDone }() // registered first: joins after the cancel below
		defer stopChaos()
		go func() {
			defer close(chaosDone)
			if _, err := inj.Run(chaosCtx, sc); err != nil && !errors.Is(err, context.Canceled) {
				fmt.Fprintf(lw, "chaos: scenario aborted: %v\n", err)
			}
		}()
	}

	editorSrv := env.EditorServer(*execute, 0)
	mux := http.NewServeMux()
	mux.Handle("/", editorSrv.Handler())
	// Versioned job-control API, mounted site-wide (not owner-scoped:
	// this is the server's administrative surface, so any authenticated
	// user may cancel any job). The editor's own /v1/jobs mount stays
	// owner-scoped; this more specific registration shadows it here.
	jobsV1 := env.JobsHandler(jobsapi.Config{Authenticate: editorSrv.SessionUser})
	mux.Handle("GET /v1/jobs", jobsV1)
	mux.Handle("GET /v1/jobs/{id}", jobsV1)
	mux.Handle("GET /v1/jobs/{id}/events", jobsV1)
	mux.Handle("GET /v1/jobs/{id}/trace", jobsV1)
	mux.Handle("GET /v1/events", jobsV1)
	mux.Handle("DELETE /v1/jobs/{id}", jobsV1)
	mux.Handle("GET /v1/owners", jobsV1)
	mux.Handle("PATCH /v1/owners/{owner}", jobsV1)
	mux.Handle("GET /v1/hosts", jobsV1)
	// Prometheus text exposition, unauthenticated like the health probes:
	// scrapers are infrastructure, not editor users, and the registry
	// carries no per-job payloads — only aggregate series.
	mux.Handle("GET /metrics", env.Obs.Handler())
	// Health probes, unauthenticated by design: /healthz answers 200
	// while the process is up (liveness); /readyz answers 503 while the
	// server should not take traffic — recovery replay still draining
	// adopted jobs, or the shed rate over the configured threshold.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		ready, reason := env.Ready()
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]string{"status": "not ready", "reason": reason})
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "ready"})
	})
	// Legacy job lifecycle monitoring: every submission's state, straight
	// off the environment's job board. Shares the editor's login model.
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if !editorSrv.Authenticated(r) {
			w.WriteHeader(http.StatusUnauthorized)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "editor: not authenticated"})
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]any{
			"jobs":   env.Jobs(),
			"counts": env.Board.Counts(),
		})
	})

	// The debug listener is a second, separately-bindable surface so
	// pprof and raw metrics can stay off the public address (bind it to
	// localhost) while the main API is exposed.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dlis, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return err
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("GET /debug/pprof/", pprof.Index)
		dmux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		dmux.Handle("GET /metrics", env.Obs.Handler())
		debugSrv = &http.Server{Handler: dmux}
		go func() { _ = debugSrv.Serve(dlis) }()
		defer debugSrv.Shutdown(context.Background())
		fmt.Fprintf(out, "debug: pprof + metrics on http://%s/debug/pprof/\n", dlis.Addr())
	}

	lis, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		return err
	}
	httpServer := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() {
		if err := httpServer.Serve(lis); err != http.ErrServerClosed {
			serveErr <- err
		}
	}()

	addr := lis.Addr().String()
	if notify != nil {
		notify(addr)
	}
	fmt.Fprintf(out, "VDCE server for %s\n", env.TB.Sites[0].Name)
	fmt.Fprintf(out, "  site manager RPC : %s\n", env.Managers[0].Addr())
	fmt.Fprintf(out, "  application editor: http://%s (user_k / vdce)\n", addr)
	fmt.Fprintf(out, "  jobs endpoint     : http://%s/jobs\n", addr)
	fmt.Fprintf(out, "  job-control API   : http://%s/v1/jobs\n", addr)
	fmt.Fprintf(out, "  event stream      : http://%s/v1/events (SSE; per-job: /v1/jobs/{id}/events)\n", addr)
	fmt.Fprintf(out, "  owners API        : http://%s/v1/owners\n", addr)
	fmt.Fprintf(out, "  hosts API         : http://%s/v1/hosts\n", addr)
	fmt.Fprintf(out, "  metrics           : http://%s/metrics (job traces: /v1/jobs/{id}/trace)\n", addr)
	fmt.Fprintf(out, "  health            : http://%s/healthz, /readyz\n", addr)
	fmt.Fprintf(out, "  hosts:\n")
	for _, h := range env.TB.Sites[0].Hosts {
		fmt.Fprintf(out, "    %-28s %s %s speed=%.2f mem=%dMB\n",
			h.Name, h.Arch, h.OS, h.Speed, h.TotalMem>>20)
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "\nshutting down")
	return httpServer.Shutdown(context.Background())
}
