// Command vdce-server runs one VDCE site: the Site Manager RPC endpoint
// (scheduling, monitoring, and execution-record traffic) plus the
// Application Editor HTTP API, over a fabricated testbed site.
//
//	vdce-server -hosts 8 -http 127.0.0.1:8470 -rpc 127.0.0.1:0
//
// Log in with user "user_k", password "vdce".
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"

	"vdce"
	"vdce/internal/testbed"
)

func main() {
	hosts := flag.Int("hosts", 8, "hosts in the site")
	groups := flag.Int("groups", 2, "groups in the site")
	httpAddr := flag.String("http", "127.0.0.1:8470", "Application Editor HTTP address")
	seed := flag.Int64("seed", 1, "testbed seed")
	execute := flag.Bool("execute", true, "execute submitted applications (not just schedule)")
	flag.Parse()

	env, err := vdce.New(vdce.Config{
		Testbed: testbed.Config{
			Sites: 1, GroupsPerSite: *groups, HostsPerGroup: *hosts, Seed: *seed,
		},
		UseRPC:        true,
		StartDaemons:  true,
		DilationScale: 1,
		LoadThreshold: 0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	editorSrv := env.EditorServer(*execute, 0)
	httpServer := &http.Server{Addr: *httpAddr, Handler: editorSrv.Handler()}
	go func() {
		if err := httpServer.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	fmt.Printf("VDCE server for %s\n", env.TB.Sites[0].Name)
	fmt.Printf("  site manager RPC : %s\n", env.Managers[0].Addr())
	fmt.Printf("  application editor: http://%s (user_k / vdce)\n", *httpAddr)
	fmt.Printf("  hosts:\n")
	for _, h := range env.TB.Sites[0].Hosts {
		fmt.Printf("    %-28s %s %s speed=%.2f mem=%dMB\n",
			h.Name, h.Arch, h.OS, h.Speed, h.TotalMem>>20)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	<-ctx.Done()
	fmt.Println("\nshutting down")
	_ = httpServer.Shutdown(context.Background())
}
