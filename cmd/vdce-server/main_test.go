package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"vdce/internal/tasklib"
)

// startServer runs the server on an ephemeral port and returns its base
// URL once it is serving.
func startServer(t *testing.T, extraArgs ...string) string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	args := append([]string{"-http", "127.0.0.1:0", "-hosts", "2", "-groups", "1"}, extraArgs...)
	var out strings.Builder
	go func() {
		errCh <- run(ctx, args, &out, func(addr string) { addrCh <- addr })
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-errCh:
			if err != nil {
				t.Errorf("server exited with %v\noutput:\n%s", err, out.String())
			}
		case <-time.After(30 * time.Second):
			t.Error("server did not shut down")
		}
	})
	select {
	case addr := <-addrCh:
		return "http://" + addr
	case err := <-errCh:
		t.Fatalf("server failed to start: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never reported its address")
	}
	return ""
}

func login(t *testing.T, base string) string {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"user": "user_k", "password": "vdce"})
	resp, err := http.Post(base+"/login", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Token string `json:"token"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Token == "" {
		t.Fatal("login returned no token")
	}
	return out.Token
}

func TestServerServesSubmissionsAndJobs(t *testing.T) {
	base := startServer(t, "-workers", "2", "-parallel", "2")
	token := login(t, base)

	g, err := tasklib.BuildC3IPipeline(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	data, err := g.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	do := func(method, path string, body []byte) map[string]any {
		t.Helper()
		req, err := http.NewRequest(method, base+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		if resp.StatusCode >= 300 {
			t.Fatalf("%s %s: %d %v", method, path, resp.StatusCode, out)
		}
		return out
	}

	imported := do("POST", "/apps/import", data)
	id, _ := imported["id"].(string)
	if id == "" {
		t.Fatalf("import failed: %v", imported)
	}
	result := do("POST", fmt.Sprintf("/apps/%s/submit", id), nil)
	if result["result"] == nil {
		t.Fatalf("submission returned no result: %v", result)
	}

	// The jobs endpoint shares the editor's login model.
	unauth, err := http.Get(base + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	unauth.Body.Close()
	if unauth.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /jobs = %d, want 401", unauth.StatusCode)
	}

	// Authenticated, it reflects the executed submission.
	req, err := http.NewRequest("GET", base+"/jobs", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jobs struct {
		Jobs   []map[string]any `json:"jobs"`
		Counts map[string]int   `json:"counts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs.Jobs) != 1 {
		t.Fatalf("jobs endpoint lists %d jobs, want 1: %+v", len(jobs.Jobs), jobs)
	}
	if jobs.Counts["done"] != 1 {
		t.Fatalf("job counts = %v, want one done", jobs.Counts)
	}
}

// TestServerServesJobControlAPI drives the versioned surface end to
// end over the server binary: async v1 submission with priority, job
// listing with filters, and cancellation.
func TestServerServesJobControlAPI(t *testing.T) {
	base := startServer(t, "-workers", "2", "-parallel", "2")
	token := login(t, base)

	do := func(method, path string, body []byte, want int) map[string]any {
		t.Helper()
		req, err := http.NewRequest(method, base+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		if resp.StatusCode != want {
			t.Fatalf("%s %s: %d (want %d) %v", method, path, resp.StatusCode, want, out)
		}
		return out
	}

	g, err := tasklib.BuildC3IPipeline(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	data, err := g.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	imported := do("POST", "/apps/import", data, http.StatusCreated)
	appID, _ := imported["id"].(string)

	body, _ := json.Marshal(map[string]any{"priority": 7})
	accepted := do("POST", fmt.Sprintf("/v1/apps/%s/submit", appID), body, http.StatusAccepted)
	job, _ := accepted["job"].(map[string]any)
	jobID, _ := job["id"].(string)
	if jobID == "" {
		t.Fatalf("v1 submit returned no job: %v", accepted)
	}
	if prio, _ := job["priority"].(float64); prio != 7 {
		t.Fatalf("job priority = %v, want 7", job["priority"])
	}

	deadline := time.Now().Add(time.Minute)
	for {
		got := do("GET", "/v1/jobs/"+jobID, nil, http.StatusOK)
		state, _ := got["job"].(map[string]any)["state"].(string)
		if state == "done" {
			break
		}
		if state == "failed" || state == "canceled" {
			t.Fatalf("job ended %s: %v", state, got)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %v", jobID, got)
		}
		time.Sleep(5 * time.Millisecond)
	}

	list := do("GET", "/v1/jobs?owner=user_k&state=done", nil, http.StatusOK)
	jobs, _ := list["jobs"].([]any)
	if len(jobs) != 1 {
		t.Fatalf("filtered listing = %v", list)
	}
	// Unauthenticated requests are rejected.
	resp, err := http.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /v1/jobs = %d, want 401", resp.StatusCode)
	}
	// Canceling a finished job is a no-op that reports the final state.
	final := do("DELETE", "/v1/jobs/"+jobID, nil, http.StatusOK)
	if state, _ := final["job"].(map[string]any)["state"].(string); state != "done" {
		t.Fatalf("cancel of finished job reports %q, want done", state)
	}
}

func TestServerRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-no-such-flag"}, &out, nil); err == nil {
		t.Error("unknown flag accepted")
	}
}
