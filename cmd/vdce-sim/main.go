// Command vdce-sim schedules a synthetic workload with a chosen policy
// and prints the allocation table, simulated statistics, and a Gantt
// chart of the resulting schedule — the fastest way to see the site
// scheduler's decisions.
//
//	vdce-sim -family layered -tasks 40 -ccr 2 -sites 3 -hosts 4
//	vdce-sim -family fft -tasks 60 -policy minmin -gantt-width 100
//
// With -chaos it additionally plays a fault-injection scenario against
// the testbed, drives the heartbeat failure detector to confirmation,
// reschedules the workload on the surviving hosts, and reports how the
// allocation recovered:
//
//	vdce-sim -family layered -tasks 24 -sites 2 -chaos kill-quarter
//	vdce-sim -chaos site-partition -sites 3
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"vdce/internal/chaos"
	"vdce/internal/core"
	"vdce/internal/detect"
	"vdce/internal/sim"
	"vdce/internal/testbed"
	"vdce/internal/trace"
	"vdce/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run parses args and executes the simulation, writing reports to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vdce-sim", flag.ContinueOnError)
	family := fs.String("family", "layered", "workload family: layered|forkjoin|gauss|fft|intree")
	tasks := fs.Int("tasks", 30, "task count (or LES order / C3I targets)")
	ccr := fs.Float64("ccr", 1, "communication-to-computation ratio")
	sites := fs.Int("sites", 2, "number of sites")
	hosts := fs.Int("hosts", 4, "hosts per site")
	k := fs.Int("k", -1, "nearest-neighbor sites (-1 = all)")
	policy := fs.String("policy", "vdce", "vdce|fifo|random|rrobin|minmin")
	seed := fs.Int64("seed", 1, "seed")
	ganttWidth := fs.Int("gantt-width", 80, "gantt chart width")
	chaosName := fs.String("chaos", "", "fault scenario: kill-quarter|rolling-restart|site-partition")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	tb, err := testbed.Build(testbed.Config{
		Sites: *sites, HostsPerGroup: *hosts, Seed: *seed, BaseLoadMax: 0.4,
	})
	if err != nil {
		return err
	}
	if err := tb.RefreshRepos(time.Unix(0, 0)); err != nil {
		return err
	}
	var locals []*core.LocalSite
	var hostNames [][]string
	for _, s := range tb.Sites {
		locals = append(locals, core.NewLocalSite(s.Repo))
		var names []string
		for _, h := range s.Hosts {
			names = append(names, h.Name)
		}
		hostNames = append(hostNames, names)
	}

	// Build the workload.
	var gen func(workload.Params) (*workload.Graph, error)
	for _, f := range workload.Families() {
		if f.Name == *family {
			gen = f.Gen
		}
	}
	if gen == nil {
		return fmt.Errorf("unknown family %q (library apps like LES live in examples/)", *family)
	}
	w, err := gen(workload.Params{Tasks: *tasks, CCR: *ccr, Seed: *seed})
	if err != nil {
		return err
	}
	for i, s := range tb.Sites {
		if err := w.Install(s.Repo, hostNames[i]); err != nil {
			return err
		}
	}
	stats, err := w.G.ComputeStats()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "workload %s: %s\n\n", w.G.Name, stats)

	// Schedule. The closure re-runs the SAME policy against the current
	// repository state, so the chaos path's post-failure reallocation
	// measures fault recovery rather than a policy switch.
	scheduleOnce := func() (*core.AllocationTable, error) {
		switch *policy {
		case "vdce", "fifo":
			kk := *k
			if kk < 0 {
				kk = *sites - 1
			}
			var remotes []core.SiteService
			for _, s := range locals[1:] {
				remotes = append(remotes, s)
			}
			sched := core.NewScheduler(locals[0], remotes, tb.Net, kk)
			if *policy == "fifo" {
				sched.Priority = core.FIFOPriority
			}
			return sched.Schedule(w.G, w.CostFunc())
		case "random":
			return core.ScheduleRandom(w.G, locals, tb.Net, *seed)
		case "rrobin":
			return core.ScheduleRoundRobin(w.G, locals, tb.Net)
		case "minmin":
			return core.ScheduleMinMin(w.G, locals, tb.Net)
		default:
			return nil, fmt.Errorf("unknown policy %q", *policy)
		}
	}
	table, err := scheduleOnce()
	if err != nil {
		return err
	}
	fmt.Fprintln(out, table)

	if *chaosName != "" {
		return runChaos(out, tb, table, *chaosName, *seed, scheduleOnce)
	}

	// Simulate and render.
	res, err := sim.Run(w.G, table, tb.Net)
	if err != nil {
		return err
	}
	fmt.Fprint(out, res)
	fmt.Fprintln(out)
	fmt.Fprint(out, trace.Gantt(trace.FromSim(w.G, table, res), *ganttWidth))
	return nil
}

// runChaos plays the named fault scenario over the already-scheduled
// testbed on a synthetic clock, drives the failure detector through
// suspicion and confirmation after every burst of same-offset events,
// reschedules the workload on the survivors with the SAME policy that
// produced the original table, and prints a recovery report comparing
// the two allocations.
func runChaos(out io.Writer, tb *testbed.Testbed, before *core.AllocationTable, name string, seed int64, reschedule func() (*core.AllocationTable, error)) error {
	sc, err := chaos.Named(name, tb, 4*time.Second)
	if err != nil {
		return err
	}
	det := detect.New(detect.Config{SuspicionTimeout: 10 * time.Millisecond, ConfirmQuorum: 2})
	for _, s := range tb.Sites {
		det.AddSite(s.Name, s.Repo.Resources)
	}
	inj := chaos.NewInjector(tb, seed)

	fmt.Fprintf(out, "chaos scenario %q (seed %d): %d events\n", sc.Name, seed, len(sc.Events))
	// Synthetic clock: heartbeats land at now, then the clock jumps past
	// the suspicion timeout before each detector round, so silence is
	// judged instantly instead of in wall time.
	now := time.Unix(0, 0)
	detection := func() error {
		for round := 0; round < 3; round++ {
			now = now.Add(25 * time.Millisecond)
			for _, h := range tb.AllHosts() {
				if h.Reachable() {
					det.Observe(h.Name, now)
				}
			}
			trs, err := det.Tick(now)
			if err != nil {
				return err
			}
			for _, tr := range trs {
				fmt.Fprintf(out, "  detector: %s %s -> %s\n", tr.Host, tr.From, tr.To)
			}
		}
		return nil
	}
	// Apply bursts of same-offset events, detecting after each burst.
	for i := 0; i < len(sc.Events); {
		j := i
		for j < len(sc.Events) && sc.Events[j].At == sc.Events[i].At {
			a, err := inj.Apply(sc.Events[j])
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "  inject: %s\n", a)
			j++
		}
		if err := detection(); err != nil {
			return err
		}
		i = j
	}

	dead := det.Counts()[detect.Dead]
	sus, conf, rec, rounds := det.Stats()
	fmt.Fprintf(out, "detector stats: %d suspicions, %d confirmations, %d recoveries over %d rounds\n",
		sus, conf, rec, rounds)

	// Reschedule on the survivors (same policy) and diff the allocations.
	after, err := reschedule()
	if err != nil {
		return fmt.Errorf("post-chaos reschedule: %w (%d hosts confirmed dead)", err, dead)
	}
	moved := 0
	for _, e := range after.Entries {
		if p := before.Placement(e.Task); p == nil || p.Hosts[0] != e.Hosts[0] {
			moved++
		}
	}
	fmt.Fprintln(out, after)
	fmt.Fprintf(out, "recovery: %d/%d placements moved, %d hosts confirmed dead, %d recovered\n",
		moved, len(after.Entries), dead, rec)
	// Rescheduled placements must avoid every confirmed-dead host.
	for _, e := range after.Entries {
		for _, h := range e.Hosts {
			if st, ok := det.State(h); ok && st == detect.Dead {
				return fmt.Errorf("task %d rescheduled onto confirmed-dead host %s", e.Task, h)
			}
		}
	}
	return nil
}
