// Command vdce-sim schedules a synthetic workload with a chosen policy
// and prints the allocation table, simulated statistics, and a Gantt
// chart of the resulting schedule — the fastest way to see the site
// scheduler's decisions.
//
//	vdce-sim -family layered -tasks 40 -ccr 2 -sites 3 -hosts 4
//	vdce-sim -family fft -tasks 60 -policy minmin -gantt-width 100
//
// With -chaos it additionally plays a fault-injection scenario against
// the testbed, drives the heartbeat failure detector to confirmation,
// reschedules the workload on the surviving hosts, and reports how the
// allocation recovered:
//
//	vdce-sim -family layered -tasks 24 -sites 2 -chaos kill-quarter
//	vdce-sim -chaos site-partition -sites 3
//	vdce-sim -chaos flapping-host -sites 2 -hosts 4
//	vdce-sim -chaos brownout -sites 2 -hosts 4
//
// Chaos runs also feed a per-host circuit-breaker set from the same
// observations the detector sees and report which hosts' breakers
// opened — flapping-host shows the breaker quarantining a host that
// the up/down detector alone keeps re-admitting.
//
// The server-restart scenario exercises the control plane instead of
// the hosts: it boots a durable environment (Config.StoreDir), runs a
// job workload through the submission pipeline, kills the control
// plane mid-workload (no graceful flush), restarts it on the same
// store, and reports how many queued jobs were re-admitted and
// in-flight jobs re-dispatched:
//
//	vdce-sim -chaos server-restart -sites 2 -hosts 3
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"vdce"
	"vdce/internal/afg"
	"vdce/internal/breaker"
	"vdce/internal/chaos"
	"vdce/internal/core"
	"vdce/internal/detect"
	"vdce/internal/obs"
	"vdce/internal/services"
	"vdce/internal/sim"
	"vdce/internal/tasklib"
	"vdce/internal/testbed"
	"vdce/internal/trace"
	"vdce/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run parses args and executes the simulation, writing reports to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vdce-sim", flag.ContinueOnError)
	family := fs.String("family", "layered", "workload family: layered|forkjoin|gauss|fft|intree")
	tasks := fs.Int("tasks", 30, "task count (or LES order / C3I targets)")
	ccr := fs.Float64("ccr", 1, "communication-to-computation ratio")
	sites := fs.Int("sites", 2, "number of sites")
	hosts := fs.Int("hosts", 4, "hosts per site")
	k := fs.Int("k", -1, "nearest-neighbor sites (-1 = all)")
	policy := fs.String("policy", "vdce", "vdce|fifo|random|rrobin|minmin")
	seed := fs.Int64("seed", 1, "seed")
	ganttWidth := fs.Int("gantt-width", 80, "gantt chart width")
	chaosName := fs.String("chaos", "", "fault scenario: kill-quarter|rolling-restart|site-partition|flapping-host|brownout|server-restart")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	if *chaosName == "server-restart" {
		// A control-plane fault, not a host fault: it drives the full
		// environment (durable store included), so it bypasses the
		// schedule-and-simulate path below entirely.
		return runServerRestart(out, *sites, *hosts, *seed)
	}

	tb, err := testbed.Build(testbed.Config{
		Sites: *sites, HostsPerGroup: *hosts, Seed: *seed, BaseLoadMax: 0.4,
	})
	if err != nil {
		return err
	}
	if err := tb.RefreshRepos(time.Unix(0, 0)); err != nil {
		return err
	}
	var locals []*core.LocalSite
	var hostNames [][]string
	for _, s := range tb.Sites {
		locals = append(locals, core.NewLocalSite(s.Repo))
		var names []string
		for _, h := range s.Hosts {
			names = append(names, h.Name)
		}
		hostNames = append(hostNames, names)
	}

	// Build the workload.
	var gen func(workload.Params) (*workload.Graph, error)
	for _, f := range workload.Families() {
		if f.Name == *family {
			gen = f.Gen
		}
	}
	if gen == nil {
		return fmt.Errorf("unknown family %q (library apps like LES live in examples/)", *family)
	}
	w, err := gen(workload.Params{Tasks: *tasks, CCR: *ccr, Seed: *seed})
	if err != nil {
		return err
	}
	for i, s := range tb.Sites {
		if err := w.Install(s.Repo, hostNames[i]); err != nil {
			return err
		}
	}
	stats, err := w.G.ComputeStats()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "workload %s: %s\n\n", w.G.Name, stats)

	// Schedule. The closure re-runs the SAME policy against the current
	// repository state, so the chaos path's post-failure reallocation
	// measures fault recovery rather than a policy switch.
	scheduleOnce := func() (*core.AllocationTable, error) {
		switch *policy {
		case "vdce", "fifo":
			kk := *k
			if kk < 0 {
				kk = *sites - 1
			}
			var remotes []core.SiteService
			for _, s := range locals[1:] {
				remotes = append(remotes, s)
			}
			sched := core.NewScheduler(locals[0], remotes, tb.Net, kk)
			if *policy == "fifo" {
				sched.Priority = core.FIFOPriority
			}
			return sched.Schedule(w.G, w.CostFunc())
		case "random":
			return core.ScheduleRandom(w.G, locals, tb.Net, *seed)
		case "rrobin":
			return core.ScheduleRoundRobin(w.G, locals, tb.Net)
		case "minmin":
			return core.ScheduleMinMin(w.G, locals, tb.Net)
		default:
			return nil, fmt.Errorf("unknown policy %q", *policy)
		}
	}
	table, err := scheduleOnce()
	if err != nil {
		return err
	}
	fmt.Fprintln(out, table)

	if *chaosName != "" {
		return runChaos(out, tb, table, *chaosName, *seed, scheduleOnce)
	}

	// Simulate and render.
	res, err := sim.Run(w.G, table, tb.Net)
	if err != nil {
		return err
	}
	fmt.Fprint(out, res)
	fmt.Fprintln(out)
	fmt.Fprint(out, trace.Gantt(trace.FromSim(w.G, table, res), *ganttWidth))
	return nil
}

// restartGraph builds the i-th application of the server-restart
// workload: small Linear Equation Solver instances with the builders'
// machine-type preferences cleared (the fabricated testbed mixes types
// arbitrarily).
func restartGraph(i int, seed int64) (*afg.Graph, error) {
	g, err := tasklib.BuildLinearEquationSolver(8+4*(i%3), seed+int64(i))
	if err != nil {
		return nil, err
	}
	for _, task := range g.Tasks {
		task.Props.MachineType = ""
	}
	g.Name = fmt.Sprintf("%s#%d", g.Name, i)
	return g, nil
}

// runServerRestart is the control-plane fault scenario: a durable
// environment runs a job workload, dies mid-workload without a
// graceful flush (Environment.Crash), and a second incarnation on the
// same store directory recovers — queued jobs re-admitted with their
// admission parameters intact, in-flight jobs re-dispatched through a
// fresh scheduling round — then drains the recovered workload to done.
func runServerRestart(out io.Writer, sites, hosts int, seed int64) error {
	dir, err := os.MkdirTemp("", "vdce-restart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg := vdce.Config{
		Testbed: testbed.Config{Sites: sites, HostsPerGroup: hosts, Seed: seed, BaseLoadMax: 0.2},
		// One worker and one run slot serialize dispatch, so most of the
		// workload is still queued (and one job in flight) at the kill.
		Pipeline: vdce.PipelineConfig{SchedulerWorkers: 1, MaxConcurrentRuns: 1},
		StoreDir: dir,
	}
	env, err := vdce.New(cfg)
	if err != nil {
		return err
	}
	const jobs = 10
	ctx := context.Background()
	for i := 0; i < jobs; i++ {
		g, gerr := restartGraph(i, seed)
		if gerr != nil {
			env.Crash()
			return gerr
		}
		if _, serr := env.Submit(ctx, g, vdce.WithMaxHosts(sites-1)); serr != nil {
			env.Crash()
			return serr
		}
	}
	// Kill mid-workload: wait (briefly) until at least one job left the
	// queue, so the restart exercises in-flight re-adoption too.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c := env.Board.Counts()
		if c[services.JobStateScheduling]+c[services.JobStateRunning] > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	pre := env.Board.Counts()
	fmt.Fprintf(out, "server-restart: killing control plane with %d queued, %d in flight, %d done\n",
		pre[services.JobStateQueued],
		pre[services.JobStateScheduling]+pre[services.JobStateRunning],
		pre[services.JobStateDone])
	env.Crash()

	env2, err := vdce.New(cfg)
	if err != nil {
		return fmt.Errorf("restart on %s: %w", dir, err)
	}
	defer env2.Close()
	rep := env2.Recovery()
	fmt.Fprintf(out, "server-restart: recovered %d queued re-admitted, %d in-flight re-dispatched, %d terminal retained\n",
		rep.QueuedRecovered, rep.InFlightRedispatched, rep.TerminalRetained)

	drainCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	if err := env2.Drain(drainCtx); err != nil {
		return fmt.Errorf("post-restart drain: %w", err)
	}
	post := env2.Board.Counts()
	fmt.Fprintf(out, "server-restart: after drain %d done, %d failed, %d canceled\n",
		post[services.JobStateDone], post[services.JobStateFailed], post[services.JobStateCanceled])
	if got := rep.QueuedRecovered + rep.InFlightRedispatched + rep.TerminalRetained; got != jobs {
		return fmt.Errorf("recovery lost jobs: %d recovered of %d submitted", got, jobs)
	}
	if post[services.JobStateDone] != jobs {
		return fmt.Errorf("post-restart workload did not finish: %d/%d done", post[services.JobStateDone], jobs)
	}
	printMetricsSummary(out, env2.Obs)
	return nil
}

// printMetricsSummary renders the chaos report's closing table straight
// from the environment's metrics registry — the same series /metrics
// exposes, so the report can never disagree with the scrape.
func printMetricsSummary(out io.Writer, reg *obs.Registry) {
	fmt.Fprintln(out, "metrics summary:")
	for _, row := range []struct{ label, name string }{
		{"jobs admitted", "vdce_admission_accepted_total"},
		{"submissions shed", "vdce_admission_rejects_total"},
		{"jobs recovered", "vdce_recovery_jobs_total"},
		{"task retries", "vdce_exec_retries_total"},
		{"retry parks", "vdce_exec_retry_parks_total"},
		{"reschedules", "vdce_exec_reschedules_total"},
		{"host failures", "vdce_exec_host_failures_total"},
		{"breaker opens", "vdce_breaker_opens_total"},
		{"events published", "vdce_events_published_total"},
	} {
		fmt.Fprintf(out, "  %-20s %g\n", row.label, reg.Total(row.name))
	}
}

// runChaos plays the named fault scenario over the already-scheduled
// testbed on a synthetic clock, drives the failure detector through
// suspicion and confirmation after every burst of same-offset events,
// reschedules the workload on the survivors with the SAME policy that
// produced the original table, and prints a recovery report comparing
// the two allocations.
func runChaos(out io.Writer, tb *testbed.Testbed, before *core.AllocationTable, name string, seed int64, reschedule func() (*core.AllocationTable, error)) error {
	sc, err := chaos.Named(name, tb, 4*time.Second)
	if err != nil {
		return err
	}
	det := detect.New(detect.Config{SuspicionTimeout: 10 * time.Millisecond, ConfirmQuorum: 2})
	for _, s := range tb.Sites {
		det.AddSite(s.Name, s.Repo.Resources)
	}
	inj := chaos.NewInjector(tb, seed)

	fmt.Fprintf(out, "chaos scenario %q (seed %d): %d events\n", sc.Name, seed, len(sc.Events))
	// Synthetic clock: heartbeats land at now, then the clock jumps past
	// the suspicion timeout before each detector round, so silence is
	// judged instantly instead of in wall time.
	now := time.Unix(0, 0)
	// Per-host circuit breakers ride the same synthetic clock and see
	// the same per-round observations the detector does: a reachable
	// host is a success, a dark one a failure. A host that flaps
	// accumulates a mixed window whose failure rate trips the breaker
	// even though the detector keeps flipping it back to healthy.
	reg := obs.NewRegistry()
	opens := reg.Counter("vdce_breaker_opens_total",
		"Circuit-breaker transitions into the open state, per host.", "host")
	brk := breaker.New(breaker.Config{
		Now: func() time.Time { return now },
		OnTransition: func(host string, _, to breaker.State) {
			if to == breaker.Open {
				opens.With(host).Inc()
			}
		},
	})
	detection := func() error {
		for round := 0; round < 3; round++ {
			now = now.Add(25 * time.Millisecond)
			for _, h := range tb.AllHosts() {
				if h.Reachable() {
					det.Observe(h.Name, now)
					brk.ReportSuccess(h.Name)
				} else {
					brk.ReportFailure(h.Name)
				}
			}
			trs, err := det.Tick(now)
			if err != nil {
				return err
			}
			for _, tr := range trs {
				fmt.Fprintf(out, "  detector: %s %s -> %s\n", tr.Host, tr.From, tr.To)
			}
		}
		return nil
	}
	// Apply bursts of same-offset events, detecting after each burst.
	for i := 0; i < len(sc.Events); {
		j := i
		for j < len(sc.Events) && sc.Events[j].At == sc.Events[i].At {
			a, err := inj.Apply(sc.Events[j])
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "  inject: %s\n", a)
			j++
		}
		if err := detection(); err != nil {
			return err
		}
		i = j
	}

	dead := det.Counts()[detect.Dead]
	sus, conf, rec, rounds := det.Stats()
	fmt.Fprintf(out, "detector stats: %d suspicions, %d confirmations, %d recoveries over %d rounds\n",
		sus, conf, rec, rounds)
	open := brk.Excluded()
	fmt.Fprintf(out, "breakers: %d/%d open\n", len(open), len(tb.AllHosts()))
	for _, hs := range brk.Snapshot() {
		if hs.State != breaker.Closed.String() || hs.Opens > 0 {
			fmt.Fprintf(out, "  breaker: %-28s %-9s rate=%.2f samples=%d opens=%d\n",
				hs.Host, hs.State, hs.FailureRate, hs.Samples, hs.Opens)
		}
	}

	// Reschedule on the survivors (same policy) and diff the allocations.
	after, err := reschedule()
	if err != nil {
		return fmt.Errorf("post-chaos reschedule: %w (%d hosts confirmed dead)", err, dead)
	}
	moved := 0
	for _, e := range after.Entries {
		if p := before.Placement(e.Task); p == nil || p.Hosts[0] != e.Hosts[0] {
			moved++
		}
	}
	fmt.Fprintln(out, after)
	fmt.Fprintf(out, "recovery: %d/%d placements moved, %d hosts confirmed dead, %d recovered\n",
		moved, len(after.Entries), dead, rec)
	// Rescheduled placements must avoid every confirmed-dead host.
	for _, e := range after.Entries {
		for _, h := range e.Hosts {
			if st, ok := det.State(h); ok && st == detect.Dead {
				return fmt.Errorf("task %d rescheduled onto confirmed-dead host %s", e.Task, h)
			}
		}
	}
	printMetricsSummary(out, reg)
	return nil
}
