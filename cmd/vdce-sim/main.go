// Command vdce-sim schedules a synthetic workload with a chosen policy
// and prints the allocation table, simulated statistics, and a Gantt
// chart of the resulting schedule — the fastest way to see the site
// scheduler's decisions.
//
//	vdce-sim -family layered -tasks 40 -ccr 2 -sites 3 -hosts 4
//	vdce-sim -family fft -tasks 60 -policy minmin -gantt-width 100
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"vdce/internal/core"
	"vdce/internal/sim"
	"vdce/internal/testbed"
	"vdce/internal/trace"
	"vdce/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run parses args and executes the simulation, writing reports to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vdce-sim", flag.ContinueOnError)
	family := fs.String("family", "layered", "workload family: layered|forkjoin|gauss|fft|intree")
	tasks := fs.Int("tasks", 30, "task count (or LES order / C3I targets)")
	ccr := fs.Float64("ccr", 1, "communication-to-computation ratio")
	sites := fs.Int("sites", 2, "number of sites")
	hosts := fs.Int("hosts", 4, "hosts per site")
	k := fs.Int("k", -1, "nearest-neighbor sites (-1 = all)")
	policy := fs.String("policy", "vdce", "vdce|fifo|random|rrobin|minmin")
	seed := fs.Int64("seed", 1, "seed")
	ganttWidth := fs.Int("gantt-width", 80, "gantt chart width")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	tb, err := testbed.Build(testbed.Config{
		Sites: *sites, HostsPerGroup: *hosts, Seed: *seed, BaseLoadMax: 0.4,
	})
	if err != nil {
		return err
	}
	if err := tb.RefreshRepos(time.Unix(0, 0)); err != nil {
		return err
	}
	var locals []*core.LocalSite
	var hostNames [][]string
	for _, s := range tb.Sites {
		locals = append(locals, core.NewLocalSite(s.Repo))
		var names []string
		for _, h := range s.Hosts {
			names = append(names, h.Name)
		}
		hostNames = append(hostNames, names)
	}

	// Build the workload.
	var gen func(workload.Params) (*workload.Graph, error)
	for _, f := range workload.Families() {
		if f.Name == *family {
			gen = f.Gen
		}
	}
	if gen == nil {
		return fmt.Errorf("unknown family %q (library apps like LES live in examples/)", *family)
	}
	w, err := gen(workload.Params{Tasks: *tasks, CCR: *ccr, Seed: *seed})
	if err != nil {
		return err
	}
	for i, s := range tb.Sites {
		if err := w.Install(s.Repo, hostNames[i]); err != nil {
			return err
		}
	}
	stats, err := w.G.ComputeStats()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "workload %s: %s\n\n", w.G.Name, stats)

	// Schedule.
	var table *core.AllocationTable
	switch *policy {
	case "vdce", "fifo":
		kk := *k
		if kk < 0 {
			kk = *sites - 1
		}
		var remotes []core.SiteService
		for _, s := range locals[1:] {
			remotes = append(remotes, s)
		}
		sched := core.NewScheduler(locals[0], remotes, tb.Net, kk)
		if *policy == "fifo" {
			sched.Priority = core.FIFOPriority
		}
		table, err = sched.Schedule(w.G, w.CostFunc())
	case "random":
		table, err = core.ScheduleRandom(w.G, locals, tb.Net, *seed)
	case "rrobin":
		table, err = core.ScheduleRoundRobin(w.G, locals, tb.Net)
	case "minmin":
		table, err = core.ScheduleMinMin(w.G, locals, tb.Net)
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(out, table)

	// Simulate and render.
	res, err := sim.Run(w.G, table, tb.Net)
	if err != nil {
		return err
	}
	fmt.Fprint(out, res)
	fmt.Fprintln(out)
	fmt.Fprint(out, trace.Gantt(trace.FromSim(w.G, table, res), *ganttWidth))
	return nil
}
