package main

import (
	"strings"
	"testing"
)

func TestRunProducesScheduleReport(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-family", "layered", "-tasks", "12", "-sites", "2", "-hosts", "2", "-seed", "7"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"workload", "Resource allocation table", "makespan"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunEveryPolicy(t *testing.T) {
	for _, policy := range []string{"vdce", "fifo", "random", "rrobin", "minmin"} {
		t.Run(policy, func(t *testing.T) {
			var out strings.Builder
			err := run([]string{"-family", "fft", "-tasks", "8", "-policy", policy, "-seed", "3"}, &out)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), "Resource allocation table") {
				t.Errorf("policy %s produced no table", policy)
			}
		})
	}
}

func TestRunChaosScenarios(t *testing.T) {
	for _, scenario := range []string{"kill-quarter", "rolling-restart", "site-partition"} {
		t.Run(scenario, func(t *testing.T) {
			var out strings.Builder
			err := run([]string{"-family", "layered", "-tasks", "10", "-sites", "2", "-hosts", "3",
				"-seed", "1", "-chaos", scenario}, &out)
			if err != nil {
				t.Fatal(err)
			}
			got := out.String()
			for _, want := range []string{
				"chaos scenario", "inject:", "-> suspect", "-> dead",
				"detector stats:", "recovery:", "Resource allocation table",
			} {
				if !strings.Contains(got, want) {
					t.Errorf("chaos output missing %q:\n%s", want, got)
				}
			}
		})
	}
}

// TestRunServerRestartScenario smoke-tests the control-plane fault
// scenario: kill a durable control plane mid-workload, restart it on
// the same store, recover every job, and drain the workload to done.
func TestRunServerRestartScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("restarts a full environment and drains a workload")
	}
	var out strings.Builder
	err := run([]string{"-sites", "2", "-hosts", "3", "-seed", "5", "-chaos", "server-restart"}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"killing control plane", "recovered", "re-admitted", "after drain",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("server-restart output missing %q:\n%s", want, got)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-family", "no-such-family"}, &out); err == nil {
		t.Error("unknown family accepted")
	}
	if err := run([]string{"-policy", "no-such-policy", "-tasks", "4"}, &out); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run([]string{"-tasks", "4", "-chaos", "no-such-scenario"}, &out); err == nil {
		t.Error("unknown chaos scenario accepted")
	}
}
