// Command vdce-submit authenticates against a VDCE server's Application
// Editor and submits an application: either a built-in demo graph (the
// Fig. 1 Linear Equation Solver or the C3I pipeline) or an AFG JSON
// file.
//
//	vdce-submit -server http://127.0.0.1:8470 -app les -n 256
//	vdce-submit -server http://127.0.0.1:8470 -file app.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"vdce/internal/afg"
	"vdce/internal/tasklib"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:8470", "editor base URL")
	user := flag.String("user", "user_k", "VDCE user")
	pass := flag.String("pass", "vdce", "password")
	app := flag.String("app", "les", "built-in application: les | c3i")
	n := flag.Int("n", 256, "problem size (LES matrix order / C3I targets)")
	file := flag.String("file", "", "submit an AFG JSON file instead of a built-in app")
	flag.Parse()

	var graph *afg.Graph
	var err error
	switch {
	case *file != "":
		data, rerr := os.ReadFile(*file)
		if rerr != nil {
			log.Fatal(rerr)
		}
		graph, err = afg.DecodeJSON(data)
	case *app == "les":
		graph, err = tasklib.BuildLinearEquationSolver(*n, 1)
	case *app == "c3i":
		graph, err = tasklib.BuildC3IPipeline(*n, 1)
	default:
		log.Fatalf("unknown app %q", *app)
	}
	if err != nil {
		log.Fatal(err)
	}

	token := login(*server, *user, *pass)
	id := importGraph(*server, token, graph)
	fmt.Printf("submitted %q as %s\n", graph.Name, id)
	result := post(*server, token, "/apps/"+id+"/submit", nil)
	pretty, _ := json.MarshalIndent(result, "", "  ")
	fmt.Println(string(pretty))
}

func login(base, user, pass string) string {
	body, _ := json.Marshal(map[string]string{"user": user, "password": pass})
	resp, err := http.Post(base+"/login", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Token string `json:"token"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	if out.Error != "" {
		log.Fatalf("login: %s", out.Error)
	}
	return out.Token
}

func importGraph(base, token string, g *afg.Graph) string {
	data, err := g.EncodeJSON()
	if err != nil {
		log.Fatal(err)
	}
	out := request(base, token, "POST", "/apps/import", data)
	id, ok := out["id"].(string)
	if !ok {
		log.Fatalf("import failed: %v", out)
	}
	return id
}

func post(base, token, path string, body []byte) map[string]any {
	return request(base, token, "POST", path, body)
}

func request(base, token, method, path string, body []byte) map[string]any {
	req, err := http.NewRequest(method, base+path, bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	if resp.StatusCode >= 300 {
		log.Fatalf("%s %s: %d %v", method, path, resp.StatusCode, out)
	}
	return out
}
