// Command vdce-submit authenticates against a VDCE server's Application
// Editor and submits an application: either a built-in demo graph (the
// Fig. 1 Linear Equation Solver or the C3I pipeline) or an AFG JSON
// file. With -count > 1 it submits that many copies concurrently,
// exercising the server's multi-application submission pipeline.
//
// Submissions go through the versioned job-control API
// (POST /v1/apps/{id}/submit with -priority, -deadline, -maxhosts, and
// -weight for the owner's fair-share weight), then each job is watched
// by subscribing to its Server-Sent Events stream
// (GET /v1/jobs/{id}/events): queue position and state transitions are
// reported as they arrive — zero status polls — and the command exits
// non-zero if any submitted job is rejected, fails, or is canceled. A
// dropped stream resumes from the last event cursor (Last-Event-ID);
// -poll forces the legacy GET /v1/jobs/{id} polling watcher, which is
// also the automatic fallback against servers without the streaming
// endpoint. A per-owner quota rejection (HTTP 429) is rendered
// distinctly — the server is healthy, the owner is over its cap.
// An overload shed (HTTP 503 with Retry-After, from the server's
// admission control) is also distinct: the command waits out the
// server's Retry-After hint once and retries; if the retry is shed too
// it exits with code 75 (EX_TEMPFAIL) so scripts can tell "server
// saturated, try later" from a failed job. Servers without the job
// pipeline (schedule-only, 503 without Retry-After) fall back to the
// legacy synchronous submit.
//
//	vdce-submit -server http://127.0.0.1:8470 -app les -n 256
//	vdce-submit -server http://127.0.0.1:8470 -app c3i -count 8 -priority 9
//	vdce-submit -server http://127.0.0.1:8470 -file app.json -deadline 30s
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"vdce/internal/afg"
	"vdce/internal/services"
	"vdce/internal/tasklib"
)

// errShed marks a submission rejected by the server's overload control
// (503 + Retry-After) even after the one client-side retry: the server
// is healthy but saturated, so the right move is to come back later,
// not to treat the run as failed.
var errShed = errors.New("server shedding load")

// exitShed is the process exit code for errShed — EX_TEMPFAIL from
// sysexits, the conventional "transient failure, retry later".
const exitShed = 75

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, errShed) {
			log.Print(err)
			os.Exit(exitShed)
		}
		log.Fatal(err)
	}
}

// run parses args, builds the graph, and submits it -count times
// concurrently, writing results to out. It returns an error — and the
// process exits non-zero — if any submission is rejected or any job
// ends failed or canceled.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vdce-submit", flag.ContinueOnError)
	server := fs.String("server", "http://127.0.0.1:8470", "editor base URL")
	user := fs.String("user", "user_k", "VDCE user")
	pass := fs.String("pass", "vdce", "password")
	app := fs.String("app", "les", "built-in application: les | c3i")
	n := fs.Int("n", 256, "problem size (LES matrix order / C3I targets)")
	file := fs.String("file", "", "submit an AFG JSON file instead of a built-in app")
	count := fs.Int("count", 1, "how many copies to submit concurrently")
	priority := fs.Int("priority", -1, "job priority (-1 = the account's default)")
	deadline := fs.Duration("deadline", 0, "job deadline from submission (0 = none)")
	maxHosts := fs.Int("maxhosts", -1, "neighbor-site count k (-1 = server default)")
	weight := fs.Int("weight", 0, "owner fair-share weight (0 = the account's default)")
	poll := fs.Bool("poll", false, "watch jobs by polling GET /v1/jobs/{id} instead of subscribing to the event stream")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *count < 1 {
		return fmt.Errorf("count must be >= 1, got %d", *count)
	}

	graph, err := buildGraph(*file, *app, *n)
	if err != nil {
		return err
	}

	token, err := login(*server, *user, *pass)
	if err != nil {
		return err
	}

	body := map[string]any{}
	if *priority >= 0 {
		body["priority"] = *priority
	}
	if *deadline > 0 {
		body["deadline_ms"] = deadline.Milliseconds()
	}
	if *maxHosts >= 0 {
		body["max_hosts"] = *maxHosts
	}
	if *weight > 0 {
		body["share_weight"] = *weight
	}

	var mu sync.Mutex // serializes report lines from concurrent watchers
	say := func(format string, a ...any) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintf(out, format, a...)
	}

	type outcome struct {
		idx int
		err error
	}
	results := make([]outcome, *count)
	var wg sync.WaitGroup
	for i := 0; i < *count; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = outcome{idx: i, err: submitOne(*server, token, graph, body, *poll, say)}
		}(i)
	}
	wg.Wait()

	var firstErr error
	for _, oc := range results {
		if oc.err != nil {
			say("submission %d failed: %v\n", oc.idx, oc.err)
			if firstErr == nil {
				firstErr = oc.err
			}
		}
	}
	return firstErr
}

// submitOne imports the graph and submits it once, preferring the
// versioned async endpoint and watching the job to a terminal state. A
// shed submission (503 carrying Retry-After or a shed_reason — the
// server's overload control, as opposed to the bare 503 of a
// schedule-only server) is retried exactly once after waiting out the
// server's hint; a second shed returns errShed.
func submitOne(server, token string, graph *afg.Graph, body map[string]any, poll bool, say func(string, ...any)) error {
	appID, err := importGraph(server, token, graph)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	for attempt := 0; ; attempt++ {
		v1, code, hdr, err := requestHdr(server, token, "POST", "/v1/apps/"+appID+"/submit", payload)
		if code == http.StatusServiceUnavailable && (hdr.Get("Retry-After") != "" || v1["shed_reason"] != nil) {
			reason, _ := v1["shed_reason"].(string)
			msg, _ := v1["error"].(string)
			if attempt == 0 {
				wait := retryAfterDelay(hdr.Get("Retry-After"))
				say("submission of %q shed by overload control (%s); retrying once in %v\n", graph.Name, reason, wait)
				time.Sleep(wait)
				continue
			}
			say("submission of %q shed again (%s): server saturated, try later\n", graph.Name, reason)
			return fmt.Errorf("%w: %s (reason: %s)", errShed, msg, reason)
		}
		switch code {
		case http.StatusAccepted:
			job, _ := v1["job"].(map[string]any)
			id, _ := job["id"].(string)
			if id == "" {
				return fmt.Errorf("v1 submit returned no job id: %v", v1)
			}
			prio, _ := job["priority"].(float64)
			say("submitted %q as %s: job %s (priority %d)\n", graph.Name, appID, id, int(prio))
			if poll {
				return watchJob(server, token, id, say)
			}
			return watchJobEvents(server, token, id, say)
		case http.StatusTooManyRequests:
			// Per-owner quota rejection: render it distinctly from job
			// failures — the server is healthy, the owner is over its cap
			// and should back off or raise its quota.
			msg, _ := v1["error"].(string)
			if msg == "" {
				msg = "owner quota exceeded"
			}
			say("submission of %q rejected by owner quota: %s\n", graph.Name, msg)
			return fmt.Errorf("owner quota exceeded: %s", msg)
		case http.StatusNotFound, http.StatusServiceUnavailable:
			// Schedule-only or pre-/v1 server: legacy synchronous submit.
			legacy, lcode, lerr := request(server, token, "POST", "/apps/"+appID+"/submit", nil)
			if lerr != nil {
				return lerr
			}
			if lcode >= 300 {
				return fmt.Errorf("POST /apps/%s/submit: %d %v", appID, lcode, legacy)
			}
			pretty, _ := json.MarshalIndent(legacy["result"], "", "  ")
			say("submitted %q as %s\n%s\n", graph.Name, appID, pretty)
			return nil
		default:
			if err != nil {
				return err
			}
			return fmt.Errorf("POST /v1/apps/%s/submit: %d %v", appID, code, v1)
		}
	}
}

// retryAfterDelay turns a Retry-After header (delay-seconds form) into
// a wait, defaulting to 1s when absent or unparseable and capping at 5s
// so a pathological hint cannot hang the client.
func retryAfterDelay(h string) time.Duration {
	d := time.Second
	if secs, err := strconv.Atoi(strings.TrimSpace(h)); err == nil && secs > 0 {
		d = time.Duration(secs) * time.Second
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// watchJobEvents subscribes to the job's Server-Sent Events stream
// (GET /v1/jobs/{id}/events) and reports queue-position and state
// transitions as the server pushes them — no status polling at all. A
// dropped connection reconnects with Last-Event-ID so no transition is
// lost; servers that do not stream (pre-events, schedule-only) drop the
// watcher back to the polling path.
func watchJobEvents(server, token, id string, say func(string, ...any)) error {
	lastState, lastPos := "", -1
	var cursor uint64
	connected := false
	for {
		req, err := http.NewRequest("GET", server+"/v1/jobs/"+id+"/events", nil)
		if err != nil {
			return err
		}
		req.Header.Set("Authorization", "Bearer "+token)
		req.Header.Set("Accept", "text/event-stream")
		if cursor > 0 {
			req.Header.Set("Last-Event-ID", strconv.FormatUint(cursor, 10))
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			if connected {
				// The stream worked before; treat this as a transient drop.
				time.Sleep(200 * time.Millisecond)
				continue
			}
			return err
		}
		streaming := strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream")
		switch {
		case resp.StatusCode == http.StatusOK && streaming:
			// Proceed below.
		case resp.StatusCode == http.StatusNotFound && connected:
			// Same bounded-history eviction race the polling watcher
			// tolerates: the job existed and ran.
			resp.Body.Close()
			say("  %s evicted from the server's job history before its final state was observed\n", id)
			return nil
		case resp.StatusCode == http.StatusNotFound,
			resp.StatusCode == http.StatusMethodNotAllowed,
			resp.StatusCode == http.StatusServiceUnavailable,
			resp.StatusCode == http.StatusOK && !streaming:
			// This server does not stream job events; poll instead.
			resp.Body.Close()
			return watchJob(server, token, id, say)
		default:
			var body map[string]any
			_ = json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			return fmt.Errorf("GET /v1/jobs/%s/events: %d %v", id, resp.StatusCode, body)
		}
		connected = true
		done, jobErr := drainJobStream(resp.Body, id, &cursor, &lastState, &lastPos, say)
		resp.Body.Close()
		if done {
			return jobErr
		}
		// Stream ended without a terminal event (server restart, slow-
		// consumer eviction): reconnect and resume after the last cursor.
		time.Sleep(200 * time.Millisecond)
	}
}

// drainJobStream consumes SSE frames until the stream ends, reporting
// transitions. It returns done=true once a terminal state was observed
// (jobErr non-nil for failed/canceled) and done=false when the stream
// dropped first and the caller should reconnect.
func drainJobStream(r io.Reader, id string, cursor *uint64, lastState *string, lastPos *int, say func(string, ...any)) (done bool, jobErr error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data bytes.Buffer
	var typ string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			// Blank line dispatches the accumulated frame.
			if data.Len() > 0 {
				if done, jobErr = handleJobEvent(typ, data.Bytes(), id, cursor, lastState, lastPos, say); done {
					return done, jobErr
				}
			}
			data.Reset()
			typ = ""
		case strings.HasPrefix(line, "id:"):
			if v, err := strconv.ParseUint(strings.TrimSpace(line[3:]), 10, 64); err == nil {
				*cursor = v
			}
		case strings.HasPrefix(line, "event:"):
			typ = strings.TrimSpace(line[6:])
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimSpace(line[5:]))
		case strings.HasPrefix(line, ":"):
			// Comment (reset/eviction notices): diagnostics only.
		}
	}
	return false, nil
}

// handleJobEvent reports one stream event's transition, mirroring the
// polling watcher's output, and spots terminal states.
func handleJobEvent(typ string, data []byte, id string, cursor *uint64, lastState *string, lastPos *int, say func(string, ...any)) (bool, error) {
	var ev struct {
		Cursor uint64 `json:"cursor"`
		Job    struct {
			State         string `json:"state"`
			QueuePosition int    `json:"queue_position"`
			Reschedules   int    `json:"reschedules"`
			Error         string `json:"error"`
		} `json:"job"`
	}
	if err := json.Unmarshal(data, &ev); err != nil {
		return false, nil // tolerate unknown frames
	}
	if ev.Cursor > *cursor {
		*cursor = ev.Cursor
	}
	state, pos := ev.Job.State, ev.Job.QueuePosition
	switch typ {
	case "rescheduled":
		say("  %s recovery: task rescheduled mid-run (%d so far)\n", id, ev.Job.Reschedules)
	case "host-failure":
		say("  %s recovery: a host running this job failed\n", id)
	}
	if state != *lastState || pos != *lastPos {
		switch {
		case state == services.JobStateQueued && pos > 0:
			say("  %s %s (queue position %d)\n", id, state, pos)
		default:
			say("  %s %s\n", id, state)
		}
		*lastState, *lastPos = state, pos
	}
	switch state {
	case services.JobStateDone:
		return true, nil
	case services.JobStateFailed, services.JobStateCanceled:
		return true, fmt.Errorf("job %s ended %s: %s", id, state, ev.Job.Error)
	}
	return false, nil
}

// watchJob polls GET /v1/jobs/{id}, reporting queue-position and state
// transitions until the job is terminal. Failed and canceled jobs are
// errors.
func watchJob(server, token, id string, say func(string, ...any)) error {
	// Slow-start polling: quick enough to catch millisecond jobs, backing
	// off toward a gentle cadence so -count watchers do not hammer the
	// very server they are monitoring. A transition resets the pace.
	const minPoll, maxPoll = 10 * time.Millisecond, 250 * time.Millisecond
	poll := minPoll
	lastState, lastPos := "", -1
	for {
		resp, code, err := request(server, token, "GET", "/v1/jobs/"+id, nil)
		if err != nil {
			return err
		}
		if code == http.StatusNotFound && lastState != "" {
			// The server retains a bounded job history; a terminal job can
			// be evicted between polls. The final state is unknowable, but
			// the job did exist and ran — do not report it as a failure.
			say("  %s evicted from the server's job history before its final state was observed\n", id)
			return nil
		}
		if code != http.StatusOK {
			return fmt.Errorf("GET /v1/jobs/%s: %d %v", id, code, resp)
		}
		job, _ := resp["job"].(map[string]any)
		state, _ := job["state"].(string)
		pos := 0
		if p, ok := job["queue_position"].(float64); ok {
			pos = int(p)
		}
		if state != lastState || pos != lastPos {
			switch {
			case state == services.JobStateQueued && pos > 0:
				say("  %s %s (queue position %d)\n", id, state, pos)
			default:
				say("  %s %s\n", id, state)
			}
			lastState, lastPos = state, pos
			poll = minPoll
		}
		switch state {
		case services.JobStateDone:
			return nil
		case services.JobStateFailed, services.JobStateCanceled:
			msg, _ := job["error"].(string)
			return fmt.Errorf("job %s ended %s: %s", id, state, msg)
		}
		time.Sleep(poll)
		if poll < maxPoll {
			poll *= 2
			if poll > maxPoll {
				poll = maxPoll
			}
		}
	}
}

// buildGraph resolves the submission source: a JSON file or a built-in.
func buildGraph(file, app string, n int) (*afg.Graph, error) {
	switch {
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return afg.DecodeJSON(data)
	case app == "les":
		return tasklib.BuildLinearEquationSolver(n, 1)
	case app == "c3i":
		return tasklib.BuildC3IPipeline(n, 1)
	default:
		return nil, fmt.Errorf("unknown app %q", app)
	}
}

func login(base, user, pass string) (string, error) {
	body, _ := json.Marshal(map[string]string{"user": user, "password": pass})
	resp, err := http.Post(base+"/login", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out struct {
		Token string `json:"token"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	if out.Error != "" {
		return "", fmt.Errorf("login: %s", out.Error)
	}
	return out.Token, nil
}

func importGraph(base, token string, g *afg.Graph) (string, error) {
	data, err := g.EncodeJSON()
	if err != nil {
		return "", err
	}
	out, code, err := request(base, token, "POST", "/apps/import", data)
	if err != nil {
		return "", err
	}
	if code >= 300 {
		return "", fmt.Errorf("POST /apps/import: %d %v", code, out)
	}
	id, ok := out["id"].(string)
	if !ok {
		return "", fmt.Errorf("import failed: %v", out)
	}
	return id, nil
}

// request issues one authenticated JSON request, returning the decoded
// body and status code. Transport failures are errors; HTTP error codes
// are returned for the caller to interpret.
func request(base, token, method, path string, body []byte) (map[string]any, int, error) {
	out, code, _, err := requestHdr(base, token, method, path, body)
	return out, code, err
}

// requestHdr is request plus the response headers, for callers that
// interpret them (Retry-After on shed responses).
func requestHdr(base, token, method, path string, body []byte) (map[string]any, int, http.Header, error) {
	req, err := http.NewRequest(method, base+path, bytes.NewReader(body))
	if err != nil {
		return nil, 0, nil, err
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, 0, nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return out, resp.StatusCode, resp.Header, nil
}
