// Command vdce-submit authenticates against a VDCE server's Application
// Editor and submits an application: either a built-in demo graph (the
// Fig. 1 Linear Equation Solver or the C3I pipeline) or an AFG JSON
// file. With -count > 1 it submits that many copies concurrently,
// exercising the server's multi-application submission pipeline.
//
// Submissions go through the versioned job-control API
// (POST /v1/apps/{id}/submit with -priority, -deadline, -maxhosts, and
// -weight for the owner's fair-share weight), then each job is polled
// on GET /v1/jobs/{id}: queue position and state transitions are
// reported as they happen, and the command exits non-zero if any
// submitted job is rejected, fails, or is canceled. A per-owner quota
// rejection (HTTP 429) is rendered distinctly — the server is healthy,
// the owner is over its cap.
// Servers without the job pipeline (schedule-only) fall back to the
// legacy synchronous submit.
//
//	vdce-submit -server http://127.0.0.1:8470 -app les -n 256
//	vdce-submit -server http://127.0.0.1:8470 -app c3i -count 8 -priority 9
//	vdce-submit -server http://127.0.0.1:8470 -file app.json -deadline 30s
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sync"
	"time"

	"vdce/internal/afg"
	"vdce/internal/services"
	"vdce/internal/tasklib"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run parses args, builds the graph, and submits it -count times
// concurrently, writing results to out. It returns an error — and the
// process exits non-zero — if any submission is rejected or any job
// ends failed or canceled.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vdce-submit", flag.ContinueOnError)
	server := fs.String("server", "http://127.0.0.1:8470", "editor base URL")
	user := fs.String("user", "user_k", "VDCE user")
	pass := fs.String("pass", "vdce", "password")
	app := fs.String("app", "les", "built-in application: les | c3i")
	n := fs.Int("n", 256, "problem size (LES matrix order / C3I targets)")
	file := fs.String("file", "", "submit an AFG JSON file instead of a built-in app")
	count := fs.Int("count", 1, "how many copies to submit concurrently")
	priority := fs.Int("priority", -1, "job priority (-1 = the account's default)")
	deadline := fs.Duration("deadline", 0, "job deadline from submission (0 = none)")
	maxHosts := fs.Int("maxhosts", -1, "neighbor-site count k (-1 = server default)")
	weight := fs.Int("weight", 0, "owner fair-share weight (0 = the account's default)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *count < 1 {
		return fmt.Errorf("count must be >= 1, got %d", *count)
	}

	graph, err := buildGraph(*file, *app, *n)
	if err != nil {
		return err
	}

	token, err := login(*server, *user, *pass)
	if err != nil {
		return err
	}

	body := map[string]any{}
	if *priority >= 0 {
		body["priority"] = *priority
	}
	if *deadline > 0 {
		body["deadline_ms"] = deadline.Milliseconds()
	}
	if *maxHosts >= 0 {
		body["max_hosts"] = *maxHosts
	}
	if *weight > 0 {
		body["share_weight"] = *weight
	}

	var mu sync.Mutex // serializes report lines from concurrent watchers
	say := func(format string, a ...any) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintf(out, format, a...)
	}

	type outcome struct {
		idx int
		err error
	}
	results := make([]outcome, *count)
	var wg sync.WaitGroup
	for i := 0; i < *count; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = outcome{idx: i, err: submitOne(*server, token, graph, body, say)}
		}(i)
	}
	wg.Wait()

	var firstErr error
	for _, oc := range results {
		if oc.err != nil {
			say("submission %d failed: %v\n", oc.idx, oc.err)
			if firstErr == nil {
				firstErr = oc.err
			}
		}
	}
	return firstErr
}

// submitOne imports the graph and submits it once, preferring the
// versioned async endpoint and watching the job to a terminal state.
func submitOne(server, token string, graph *afg.Graph, body map[string]any, say func(string, ...any)) error {
	appID, err := importGraph(server, token, graph)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	v1, code, err := request(server, token, "POST", "/v1/apps/"+appID+"/submit", payload)
	switch code {
	case http.StatusAccepted:
		job, _ := v1["job"].(map[string]any)
		id, _ := job["id"].(string)
		if id == "" {
			return fmt.Errorf("v1 submit returned no job id: %v", v1)
		}
		prio, _ := job["priority"].(float64)
		say("submitted %q as %s: job %s (priority %d)\n", graph.Name, appID, id, int(prio))
		return watchJob(server, token, id, say)
	case http.StatusTooManyRequests:
		// Per-owner quota rejection: render it distinctly from job
		// failures — the server is healthy, the owner is over its cap
		// and should back off or raise its quota.
		msg, _ := v1["error"].(string)
		if msg == "" {
			msg = "owner quota exceeded"
		}
		say("submission of %q rejected by owner quota: %s\n", graph.Name, msg)
		return fmt.Errorf("owner quota exceeded: %s", msg)
	case http.StatusNotFound, http.StatusServiceUnavailable:
		// Schedule-only or pre-/v1 server: legacy synchronous submit.
		legacy, lcode, lerr := request(server, token, "POST", "/apps/"+appID+"/submit", nil)
		if lerr != nil {
			return lerr
		}
		if lcode >= 300 {
			return fmt.Errorf("POST /apps/%s/submit: %d %v", appID, lcode, legacy)
		}
		pretty, _ := json.MarshalIndent(legacy["result"], "", "  ")
		say("submitted %q as %s\n%s\n", graph.Name, appID, pretty)
		return nil
	default:
		if err != nil {
			return err
		}
		return fmt.Errorf("POST /v1/apps/%s/submit: %d %v", appID, code, v1)
	}
}

// watchJob polls GET /v1/jobs/{id}, reporting queue-position and state
// transitions until the job is terminal. Failed and canceled jobs are
// errors.
func watchJob(server, token, id string, say func(string, ...any)) error {
	// Slow-start polling: quick enough to catch millisecond jobs, backing
	// off toward a gentle cadence so -count watchers do not hammer the
	// very server they are monitoring. A transition resets the pace.
	const minPoll, maxPoll = 10 * time.Millisecond, 250 * time.Millisecond
	poll := minPoll
	lastState, lastPos := "", -1
	for {
		resp, code, err := request(server, token, "GET", "/v1/jobs/"+id, nil)
		if err != nil {
			return err
		}
		if code == http.StatusNotFound && lastState != "" {
			// The server retains a bounded job history; a terminal job can
			// be evicted between polls. The final state is unknowable, but
			// the job did exist and ran — do not report it as a failure.
			say("  %s evicted from the server's job history before its final state was observed\n", id)
			return nil
		}
		if code != http.StatusOK {
			return fmt.Errorf("GET /v1/jobs/%s: %d %v", id, code, resp)
		}
		job, _ := resp["job"].(map[string]any)
		state, _ := job["state"].(string)
		pos := 0
		if p, ok := job["queue_position"].(float64); ok {
			pos = int(p)
		}
		if state != lastState || pos != lastPos {
			switch {
			case state == services.JobStateQueued && pos > 0:
				say("  %s %s (queue position %d)\n", id, state, pos)
			default:
				say("  %s %s\n", id, state)
			}
			lastState, lastPos = state, pos
			poll = minPoll
		}
		switch state {
		case services.JobStateDone:
			return nil
		case services.JobStateFailed, services.JobStateCanceled:
			msg, _ := job["error"].(string)
			return fmt.Errorf("job %s ended %s: %s", id, state, msg)
		}
		time.Sleep(poll)
		if poll < maxPoll {
			poll *= 2
			if poll > maxPoll {
				poll = maxPoll
			}
		}
	}
}

// buildGraph resolves the submission source: a JSON file or a built-in.
func buildGraph(file, app string, n int) (*afg.Graph, error) {
	switch {
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return afg.DecodeJSON(data)
	case app == "les":
		return tasklib.BuildLinearEquationSolver(n, 1)
	case app == "c3i":
		return tasklib.BuildC3IPipeline(n, 1)
	default:
		return nil, fmt.Errorf("unknown app %q", app)
	}
}

func login(base, user, pass string) (string, error) {
	body, _ := json.Marshal(map[string]string{"user": user, "password": pass})
	resp, err := http.Post(base+"/login", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out struct {
		Token string `json:"token"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	if out.Error != "" {
		return "", fmt.Errorf("login: %s", out.Error)
	}
	return out.Token, nil
}

func importGraph(base, token string, g *afg.Graph) (string, error) {
	data, err := g.EncodeJSON()
	if err != nil {
		return "", err
	}
	out, code, err := request(base, token, "POST", "/apps/import", data)
	if err != nil {
		return "", err
	}
	if code >= 300 {
		return "", fmt.Errorf("POST /apps/import: %d %v", code, out)
	}
	id, ok := out["id"].(string)
	if !ok {
		return "", fmt.Errorf("import failed: %v", out)
	}
	return id, nil
}

// request issues one authenticated JSON request, returning the decoded
// body and status code. Transport failures are errors; HTTP error codes
// are returned for the caller to interpret.
func request(base, token, method, path string, body []byte) (map[string]any, int, error) {
	req, err := http.NewRequest(method, base+path, bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return out, resp.StatusCode, nil
}
