// Command vdce-submit authenticates against a VDCE server's Application
// Editor and submits an application: either a built-in demo graph (the
// Fig. 1 Linear Equation Solver or the C3I pipeline) or an AFG JSON
// file. With -count > 1 it submits that many copies concurrently,
// exercising the server's multi-application submission pipeline.
//
//	vdce-submit -server http://127.0.0.1:8470 -app les -n 256
//	vdce-submit -server http://127.0.0.1:8470 -app c3i -count 8
//	vdce-submit -server http://127.0.0.1:8470 -file app.json
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sync"

	"vdce/internal/afg"
	"vdce/internal/tasklib"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run parses args, builds the graph, and submits it -count times
// concurrently, writing results to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vdce-submit", flag.ContinueOnError)
	server := fs.String("server", "http://127.0.0.1:8470", "editor base URL")
	user := fs.String("user", "user_k", "VDCE user")
	pass := fs.String("pass", "vdce", "password")
	app := fs.String("app", "les", "built-in application: les | c3i")
	n := fs.Int("n", 256, "problem size (LES matrix order / C3I targets)")
	file := fs.String("file", "", "submit an AFG JSON file instead of a built-in app")
	count := fs.Int("count", 1, "how many copies to submit concurrently")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *count < 1 {
		return fmt.Errorf("count must be >= 1, got %d", *count)
	}

	graph, err := buildGraph(*file, *app, *n)
	if err != nil {
		return err
	}

	token, err := login(*server, *user, *pass)
	if err != nil {
		return err
	}

	type outcome struct {
		idx    int
		id     string
		result map[string]any
		err    error
	}
	results := make([]outcome, *count)
	var wg sync.WaitGroup
	for i := 0; i < *count; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			oc := outcome{idx: i}
			oc.id, oc.err = importGraph(*server, token, graph)
			if oc.err == nil {
				oc.result, oc.err = post(*server, token, "/apps/"+oc.id+"/submit", nil)
			}
			results[i] = oc
		}(i)
	}
	wg.Wait()

	var firstErr error
	for _, oc := range results {
		if oc.err != nil {
			fmt.Fprintf(out, "submission %d failed: %v\n", oc.idx, oc.err)
			if firstErr == nil {
				firstErr = oc.err
			}
			continue
		}
		fmt.Fprintf(out, "submitted %q as %s\n", graph.Name, oc.id)
		pretty, _ := json.MarshalIndent(oc.result, "", "  ")
		fmt.Fprintln(out, string(pretty))
	}
	return firstErr
}

// buildGraph resolves the submission source: a JSON file or a built-in.
func buildGraph(file, app string, n int) (*afg.Graph, error) {
	switch {
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return afg.DecodeJSON(data)
	case app == "les":
		return tasklib.BuildLinearEquationSolver(n, 1)
	case app == "c3i":
		return tasklib.BuildC3IPipeline(n, 1)
	default:
		return nil, fmt.Errorf("unknown app %q", app)
	}
}

func login(base, user, pass string) (string, error) {
	body, _ := json.Marshal(map[string]string{"user": user, "password": pass})
	resp, err := http.Post(base+"/login", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out struct {
		Token string `json:"token"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	if out.Error != "" {
		return "", fmt.Errorf("login: %s", out.Error)
	}
	return out.Token, nil
}

func importGraph(base, token string, g *afg.Graph) (string, error) {
	data, err := g.EncodeJSON()
	if err != nil {
		return "", err
	}
	out, err := request(base, token, "POST", "/apps/import", data)
	if err != nil {
		return "", err
	}
	id, ok := out["id"].(string)
	if !ok {
		return "", fmt.Errorf("import failed: %v", out)
	}
	return id, nil
}

func post(base, token, path string, body []byte) (map[string]any, error) {
	return request(base, token, "POST", path, body)
}

func request(base, token, method, path string, body []byte) (map[string]any, error) {
	req, err := http.NewRequest(method, base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	if resp.StatusCode >= 300 {
		return nil, fmt.Errorf("%s %s: %d %v", method, path, resp.StatusCode, out)
	}
	return out, nil
}
