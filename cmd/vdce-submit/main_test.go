package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vdce"
	"vdce/internal/testbed"
)

// newEditorServer spins an in-process VDCE environment plus its editor
// HTTP API for the client to talk to.
func newEditorServer(t *testing.T, execute bool) (*httptest.Server, *vdce.Environment) {
	t.Helper()
	env, err := vdce.New(vdce.Config{
		Testbed: testbed.Config{Sites: 1, HostsPerGroup: 3, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	srv := httptest.NewServer(env.EditorServer(execute, 0).Handler())
	t.Cleanup(srv.Close)
	return srv, env
}

// TestRunSubmitsBuiltinApp covers the schedule-only server: the v1
// endpoint answers 503, and the client falls back to the legacy
// synchronous submit.
func TestRunSubmitsBuiltinApp(t *testing.T) {
	srv, _ := newEditorServer(t, false)
	var out strings.Builder
	err := run([]string{"-server", srv.URL, "-app", "c3i", "-n", "6"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "submitted") {
		t.Errorf("no submission confirmation in output:\n%s", out.String())
	}
}

func TestRunSubmitsConcurrentCopies(t *testing.T) {
	srv, _ := newEditorServer(t, true)
	var out strings.Builder
	err := run([]string{"-server", srv.URL, "-app", "c3i", "-n", "6", "-count", "4", "-priority", "8"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	if n := strings.Count(got, "submitted"); n != 4 {
		t.Errorf("confirmed %d submissions, want 4:\n%s", n, got)
	}
	// Async submissions surface their pipeline job IDs, priorities, and
	// final state transitions.
	if !strings.Contains(got, "(priority 8)") {
		t.Errorf("submission reported no priority:\n%s", got)
	}
	if strings.Count(got, " done") != 4 {
		t.Errorf("expected 4 done transitions:\n%s", got)
	}
}

// TestRunExitsNonZeroOnCanceledJob pins the failure contract: a job that
// does not end done (here: its deadline expires while the environment's
// console is suspended) makes run return an error.
func TestRunExitsNonZeroOnCanceledJob(t *testing.T) {
	srv, env := newEditorServer(t, true)
	env.Console.Suspend()
	defer env.Console.Resume()
	var out strings.Builder
	err := run([]string{"-server", srv.URL, "-app", "c3i", "-n", "6", "-deadline", "50ms"}, &out)
	if err == nil {
		t.Fatalf("run succeeded despite expired deadline:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "failed") {
		t.Errorf("no failure transition in output:\n%s", out.String())
	}
}

// TestRunRendersQuotaRejectionDistinctly pins the 429 path: a server
// enforcing a per-owner queued cap rejects the overflow copy, and the
// client reports it as a quota rejection (not a job failure) while
// still exiting non-zero.
func TestRunRendersQuotaRejectionDistinctly(t *testing.T) {
	env, err := vdce.New(vdce.Config{
		Testbed: testbed.Config{Sites: 1, HostsPerGroup: 3, Seed: 12},
		Pipeline: vdce.PipelineConfig{
			SchedulerWorkers:  1,
			MaxConcurrentRuns: 1,
			Quota:             vdce.QuotaConfig{MaxQueuedPerOwner: 1, MaxInFlightPerOwner: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	srv := httptest.NewServer(env.EditorServer(true, 0).Handler())
	t.Cleanup(srv.Close)
	// Suspend the console so nothing completes while the 6 copies
	// submit: the first occupies the single in-flight slot, the second
	// the single queued slot, the rest overflow to 429s. The timed
	// resume then lets the two accepted jobs finish so their watchers
	// (and run itself) return.
	env.Console.Suspend()
	timer := time.AfterFunc(2*time.Second, env.Console.Resume)
	defer timer.Stop()
	defer env.Console.Resume()

	var out strings.Builder
	err = run([]string{"-server", srv.URL, "-app", "c3i", "-n", "6", "-count", "6", "-weight", "2"}, &out)
	if err == nil {
		t.Fatalf("run succeeded despite quota overflow:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "owner quota exceeded") {
		t.Errorf("error %q does not name the quota", err)
	}
	if !strings.Contains(out.String(), "rejected by owner quota") {
		t.Errorf("no distinct quota rendering in output:\n%s", out.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-app", "no-such-app"}, &out); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run([]string{"-count", "0"}, &out); err == nil {
		t.Error("count 0 accepted")
	}
	if err := run([]string{"-file", "/does/not/exist.json"}, &out); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunFailsOnBadCredentials(t *testing.T) {
	srv, _ := newEditorServer(t, false)
	var out strings.Builder
	if err := run([]string{"-server", srv.URL, "-user", "ghost", "-pass", "nope", "-app", "c3i", "-n", "6"}, &out); err == nil {
		t.Error("bad credentials accepted")
	}
}
