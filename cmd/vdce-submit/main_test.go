package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"vdce"
	"vdce/internal/testbed"
)

// newEditorServer spins an in-process VDCE environment plus its editor
// HTTP API for the client to talk to.
func newEditorServer(t *testing.T, execute bool) *httptest.Server {
	t.Helper()
	env, err := vdce.New(vdce.Config{
		Testbed: testbed.Config{Sites: 1, HostsPerGroup: 3, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	srv := httptest.NewServer(env.EditorServer(execute, 0).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestRunSubmitsBuiltinApp(t *testing.T) {
	srv := newEditorServer(t, false)
	var out strings.Builder
	err := run([]string{"-server", srv.URL, "-app", "c3i", "-n", "6"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "submitted") {
		t.Errorf("no submission confirmation in output:\n%s", out.String())
	}
}

func TestRunSubmitsConcurrentCopies(t *testing.T) {
	srv := newEditorServer(t, true)
	var out strings.Builder
	err := run([]string{"-server", srv.URL, "-app", "c3i", "-n", "6", "-count", "4"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if got := strings.Count(out.String(), "submitted"); got != 4 {
		t.Errorf("confirmed %d submissions, want 4:\n%s", got, out.String())
	}
	// Executed submissions return their pipeline job IDs.
	if !strings.Contains(out.String(), `"job"`) {
		t.Errorf("executed submission reported no job ID:\n%s", out.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-app", "no-such-app"}, &out); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run([]string{"-count", "0"}, &out); err == nil {
		t.Error("count 0 accepted")
	}
	if err := run([]string{"-file", "/does/not/exist.json"}, &out); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunFailsOnBadCredentials(t *testing.T) {
	srv := newEditorServer(t, false)
	var out strings.Builder
	if err := run([]string{"-server", srv.URL, "-user", "ghost", "-pass", "nope", "-app", "c3i", "-n", "6"}, &out); err == nil {
		t.Error("bad credentials accepted")
	}
}
