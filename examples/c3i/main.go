// C3i runs the command-and-control application from the paper's C3I
// task library: two radar feeds fused, smoothed, threat-scored, and
// reported — with the visualization service charting per-task runtimes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"vdce"
	"vdce/internal/tasklib"
	"vdce/internal/testbed"
)

func main() {
	targets := flag.Int("targets", 96, "targets per sensor")
	flag.Parse()

	g, err := tasklib.BuildC3IPipeline(*targets, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.Summary())

	env, err := vdce.New(vdce.Config{
		Testbed:       testbed.Config{Sites: 2, HostsPerGroup: 3, Seed: 3},
		DilationScale: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	table, res, err := env.Run(context.Background(), g, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table)

	report := res.Outputs[g.Exits()[0]][0].(string)
	fmt.Println(report)
	fmt.Printf("makespan: %v\n\n", res.Makespan)

	// Visualization service: one chart per task series recorded during
	// the run.
	for _, name := range env.Metrics.Names() {
		fmt.Print(env.Metrics.Chart(name, 48, 6))
	}
}
