// Lineqsolver reproduces the paper's Fig. 1 end to end: the Linear
// Equation Solver application flow graph with the exact task properties
// the figure shows (LU_Decomposition parallel on two nodes reading
// matrix_A.dat; Matrix_Multiplication sequential with two dataflow
// inputs writing vector_X.dat), scheduled by the site scheduler and
// executed on the runtime. The residual check verifies the solve.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"vdce"
	"vdce/internal/tasklib"
	"vdce/internal/testbed"
)

func main() {
	n := flag.Int("n", 256, "matrix order")
	dot := flag.Bool("dot", false, "print the GraphViz DOT of the AFG")
	flag.Parse()

	g, err := tasklib.BuildLinearEquationSolver(*n, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Fig. 1: Linear Equation Solver application flow graph ===")
	fmt.Println(g.Summary())
	for _, task := range g.Tasks {
		if task.Name == "LU_Decomposition" || task.Name == "Matrix_Multiplication" {
			fmt.Println("TASK PROPERTIES WINDOW")
			fmt.Println(task.PropertiesWindow())
		}
	}
	if *dot {
		fmt.Println(g.DOT())
	}

	// The figure pins Matrix_Multiplication to a SUN Solaris machine; a
	// machine of that type must exist, so restrict the testbed's mix.
	env, err := vdce.New(vdce.Config{
		Testbed: testbed.Config{
			Sites: 2, HostsPerGroup: 4, Seed: 7,
			ArchOS: [][2]string{{"SUN", "Solaris"}, {"SUN", "SunOS"}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	table, res, err := env.Run(context.Background(), g, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Resource allocation table ===")
	fmt.Println(table)

	exit := g.Exits()[0]
	residual := res.Outputs[exit][0].(float64)
	fmt.Printf("makespan: %v, reschedules: %d\n", res.Makespan, res.Rescheduled)
	fmt.Printf("solution residual ||Ax-b||_inf = %.3g  (solve %s)\n",
		residual, map[bool]string{true: "VERIFIED", false: "FAILED"}[residual < 1e-6])
}
