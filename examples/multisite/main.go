// Multisite demonstrates the wide-area side of VDCE: four sites with
// Site Managers on real TCP RPC, Monitor daemons and Group Managers
// maintaining the resource databases, a host failure detected by echo
// packets mid-run, and the Application Controller rescheduling work off
// an overloaded machine.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"vdce"
	"vdce/internal/repository"
	"vdce/internal/tasklib"
	"vdce/internal/testbed"
	"vdce/internal/trace"
)

func main() {
	env, err := vdce.New(vdce.Config{
		Testbed: testbed.Config{
			Sites: 4, GroupsPerSite: 2, HostsPerGroup: 3, Seed: 9,
		},
		UseRPC:        true,
		StartDaemons:  true,
		MonitorPeriod: 50 * time.Millisecond,
		LoadThreshold: 0.85,
		// Dilation emulates host heterogeneity during execution, which
		// also gives the load watchdog a realistic window to act in.
		DilationScale: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	fmt.Println("sites and Site Manager endpoints:")
	for i, sm := range env.Managers {
		fmt.Printf("  %s -> %s (%d hosts)\n", sm.SiteName(), sm.Addr(), len(env.TB.Sites[i].Hosts))
	}

	// Fail a host and watch the Group Manager's echo detection mark it
	// down in the resource-performance database.
	victim := env.TB.Sites[1].Hosts[0]
	fmt.Printf("\ninjecting failure on %s\n", victim.Name)
	victim.Fail()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		rec, err := env.Sites[1].Repo.Resources.Host(victim.Name)
		if err != nil {
			log.Fatal(err)
		}
		if rec.Status == repository.HostDown {
			fmt.Printf("echo detection marked %s down\n", victim.Name)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Schedule the LES across the surviving resources; the dead host is
	// automatically avoided.
	g, err := tasklib.BuildLinearEquationSolver(128, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, task := range g.Tasks {
		task.Props.MachineType = "" // the 4-site testbed mixes platforms
	}
	table, err := env.Schedule(g, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Overload the host chosen for Matrix_Inversion before execution so
	// the Application Controller's threshold fires and the task moves.
	var bully string
	for _, e := range table.Entries {
		if e.TaskName == "Matrix_Inversion" {
			bully = e.Hosts[0]
		}
	}
	if h, err := env.TB.Host(bully); err == nil {
		fmt.Printf("\ninjecting a 95%% contention burst on %s (runs Matrix_Inversion)\n", bully)
		h.InjectLoad(0.95)
	}

	res, err := env.Engine.Execute(context.Background(), g, table)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== allocation across sites ===")
	fmt.Println(table)
	for _, e := range table.Entries {
		for _, h := range e.Hosts {
			if h == victim.Name {
				log.Fatalf("scheduler used the failed host %s", victim.Name)
			}
		}
	}
	fmt.Printf("makespan: %v, rescheduling requests: %d\n", res.Makespan, res.Rescheduled)

	residual := res.Outputs[g.Exits()[0]][0].(float64)
	fmt.Printf("residual: %.3g\n\n", residual)

	// Execution timeline (terminated attempts are marked with 'x').
	fmt.Print(trace.Gantt(trace.FromRuns(res.Runs), 72))

	// Group Manager statistics: filtered monitoring traffic.
	var recv, fwd int64
	for _, gm := range env.Groups {
		r, f, _ := gm.Stats()
		recv += r
		fwd += f
	}
	if recv > 0 {
		fmt.Printf("monitoring: %d samples taken, %d forwarded to Site Managers (%.0f%% filtered)\n",
			recv, fwd, 100*(1-float64(fwd)/float64(recv)))
	}
}
