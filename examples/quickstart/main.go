// Quickstart: build a tiny application against the public vdce API,
// schedule it across a two-site environment, execute it on real TCP
// data channels, and print the resource allocation table.
package main

import (
	"context"
	"fmt"
	"log"

	"vdce"
	"vdce/internal/afg"
	"vdce/internal/testbed"
)

func main() {
	// A small environment: 2 sites x 4 hosts, everything in-process.
	env, err := vdce.New(vdce.Config{
		Testbed: testbed.Config{Sites: 2, HostsPerGroup: 4, Seed: 42},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	// Build an application flow graph the way the Application Editor
	// would: generate a matrix, multiply it with itself, checksum the
	// product.
	g := afg.NewGraph("quickstart")
	gen := g.AddTask("Matrix_Generate", "matrix", 0, 1)
	mul := g.AddTask("Matrix_Multiplication", "matrix", 2, 1)
	sum := g.AddTask("Checksum", "util", 1, 1)
	must(g.SetProps(gen, afg.Properties{Args: map[string]string{"n": "64", "seed": "7"}}))
	must(g.SetProps(mul, afg.Properties{Mode: afg.Parallel, Nodes: 2}))
	must(g.Connect(gen, 0, mul, 0, 64*64*8))
	must(g.Connect(gen, 0, mul, 1, 64*64*8))
	must(g.Connect(mul, 0, sum, 0, 64*64*8))

	// Schedule (k = 1 nearest remote site) and execute.
	table, res, err := env.Run(context.Background(), g, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table)
	fmt.Printf("makespan: %v over %d task runs\n", res.Makespan, len(res.Runs))
	fmt.Printf("product checksum: %s\n", res.Outputs[sum][0].(string)[:16]+"...")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
