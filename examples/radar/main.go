// Radar runs a signal-processing application from the VDCE signal
// library: two noisy receiver channels are synthesized, low-pass
// filtered, transformed to power spectra in parallel, and peak-detected
// — the spectrum-surveillance workload sitting beside the paper's C3I
// motivation. The detected carrier frequencies are cross-checked against
// the synthesis ground truth.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"vdce"
	"vdce/internal/afg"
	"vdce/internal/dsp"
	"vdce/internal/testbed"
)

func main() {
	n := flag.Int("n", 4096, "samples per channel (power of two)")
	flag.Parse()

	g := afg.NewGraph("Radar Spectrum Surveillance")
	// Two receiver channels with known carriers at bins 96 and 200.
	rx1 := g.AddTask("Signal_Generate", "signal", 0, 1)
	rx2 := g.AddTask("Signal_Generate", "signal", 0, 1)
	f1 := g.AddTask("Lowpass_Filter", "signal", 1, 1)
	f2 := g.AddTask("Lowpass_Filter", "signal", 1, 1)
	ps1 := g.AddTask("Power_Spectrum", "signal", 1, 1)
	ps2 := g.AddTask("Power_Spectrum", "signal", 1, 1)
	pk1 := g.AddTask("Peak_Detect", "signal", 1, 1)
	pk2 := g.AddTask("Peak_Detect", "signal", 1, 1)

	ns := fmt.Sprint(*n)
	must(g.SetProps(rx1, afg.Properties{Args: map[string]string{
		"n": ns, "f1": "96", "a1": "2", "noise": "0.3", "seed": "11"}}))
	must(g.SetProps(rx2, afg.Properties{Args: map[string]string{
		"n": ns, "f1": "200", "a1": "1.5", "f2": "1800", "a2": "1", "noise": "0.3", "seed": "12"}}))
	for _, f := range []afg.TaskID{f1, f2} {
		must(g.SetProps(f, afg.Properties{Args: map[string]string{"taps": "63", "cutoff": "0.15"}}))
	}
	for _, p := range []afg.TaskID{ps1, ps2} {
		must(g.SetProps(p, afg.Properties{Mode: afg.Parallel, Nodes: 2}))
	}
	for _, p := range []afg.TaskID{pk1, pk2} {
		must(g.SetProps(p, afg.Properties{Args: map[string]string{"threshold": "5"}}))
	}
	sz := int64(*n) * 8
	must(g.Connect(rx1, 0, f1, 0, sz))
	must(g.Connect(rx2, 0, f2, 0, sz))
	must(g.Connect(f1, 0, ps1, 0, sz))
	must(g.Connect(f2, 0, ps2, 0, sz))
	must(g.Connect(ps1, 0, pk1, 0, sz/2))
	must(g.Connect(ps2, 0, pk2, 0, sz/2))

	env, err := vdce.New(vdce.Config{
		Testbed: testbed.Config{Sites: 2, HostsPerGroup: 4, Seed: 13},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	table, res, err := env.Run(context.Background(), g, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.Summary())
	fmt.Println(table)

	report := func(name string, id afg.TaskID, want int) {
		peaks := res.Outputs[id][0].([]dsp.Peak)
		fmt.Printf("%s: %d peaks", name, len(peaks))
		if len(peaks) > 0 {
			fmt.Printf(", dominant at bin %d (power %.1f)", peaks[0].Bin, peaks[0].Power)
			if diff := peaks[0].Bin - want; diff >= -2 && diff <= 2 {
				fmt.Printf("  [matches carrier %d: OK]", want)
			} else {
				fmt.Printf("  [expected carrier %d: MISMATCH]", want)
			}
		}
		fmt.Println()
	}
	report("channel 1", pk1, 96)
	report("channel 2", pk2, 200)
	fmt.Printf("makespan: %v\n", res.Makespan)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
