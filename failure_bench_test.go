package vdce

// BenchmarkFailureRecovery measures the kill -> confirmed -> rescheduled
// latency of mid-run fault recovery, per failure flavor:
//
//   - crash: the host model fails visibly, so the Application
//     Controller's watchdog catches it on its next check period — the
//     pre-detector ("before") path.
//   - partition: the host keeps computing but goes silent; only the
//     heartbeat failure detector (suspicion timeout + confirmation
//     quorum) can interrupt the task — the detector-driven ("after")
//     path this PR adds. Its latency is dominated by the configured
//     detection cadence, not by execution machinery.
//
// The custom metric ms/recovery is the time from fault injection to the
// task's reschedule event. Recorded in EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"vdce/internal/afg"
	"vdce/internal/detect"
	"vdce/internal/exec"
	"vdce/internal/repository"
	"vdce/internal/testbed"
)

func BenchmarkFailureRecovery(b *testing.B) {
	b.Run("crash", func(b *testing.B) { benchFailureRecovery(b, false) })
	b.Run("partition", func(b *testing.B) { benchFailureRecovery(b, true) })
}

func benchFailureRecovery(b *testing.B, partition bool) {
	env, err := New(Config{
		Testbed: testbed.Config{
			Sites: 1, HostsPerGroup: 4, Seed: 31,
			SpeedMin: 1, SpeedMax: 1, BaseLoadMax: 0.05, LoadSigma: 0.01,
		},
		StartDaemons:  true,
		MonitorPeriod: 10 * time.Millisecond,
		StartDetector: true,
		// Suspicion sits well above the monitor period: the spin tasks
		// are real busy loops, and a starved daemon tick must not read
		// as a second host death mid-measurement.
		Detect: detect.Config{
			SuspicionTimeout: 60 * time.Millisecond,
			ConfirmQuorum:    2,
			TickPeriod:       20 * time.Millisecond,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	env.Engine.MaxAttempts = 8
	env.Engine.LoadCheckPeriod = time.Millisecond

	var total time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := afg.NewGraph(fmt.Sprintf("bench-%d", i))
		id := g.AddTask("Spin", "util", 0, 1)
		if err := g.SetProps(id, afg.Properties{Args: map[string]string{"ms": "250"}}); err != nil {
			b.Fatal(err)
		}
		table, err := env.Schedule(g, 0)
		if err != nil {
			b.Fatal(err)
		}
		victim := table.Entries[0].Hosts[0]
		h, err := env.TB.Host(victim)
		if err != nil {
			b.Fatal(err)
		}

		rescheduled := make(chan time.Time, 1)
		done := make(chan error, 1)
		go func() {
			_, err := env.Engine.Execute(context.Background(), g, table,
				exec.WithEventSink(func(ev exec.Event) {
					if ev.Type == exec.EventRescheduled {
						select {
						case rescheduled <- time.Now():
						default:
						}
					}
				}))
			done <- err
		}()

		time.Sleep(15 * time.Millisecond) // let the spin start
		t0 := time.Now()
		if partition {
			h.Partition()
		} else {
			h.Fail()
		}
		select {
		case at := <-rescheduled:
			total += at.Sub(t0)
		case <-time.After(30 * time.Second):
			b.Fatal("no reschedule within 30s")
		}
		if err := <-done; err != nil {
			b.Fatalf("run failed: %v", err)
		}

		// Heal and wait for the detector to readmit the victim so the
		// next iteration starts from a clean fleet.
		if partition {
			h.Heal()
		} else {
			h.Recover()
		}
		cleanBy := time.Now().Add(30 * time.Second)
		for time.Now().Before(cleanBy) {
			st, ok := env.Detector.State(victim)
			v, has := env.Sites[0].Repo.Resources.View(victim)
			if ok && st.Alive() && has && v.Status == repository.HostUp {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(total.Microseconds())/1000/float64(b.N), "ms/recovery")
	}
}
