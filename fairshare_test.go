package vdce

import (
	"context"
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"vdce/internal/afg"
	"vdce/internal/testbed"
)

// TestFairShareSoak is the deterministic fairness soak: two heavy
// owners (weight 1 each) and one light owner (weight 2) submit
// concurrently into a choked single-worker pipeline, then the backlog
// drains serialized. The dispatch share of each owner over the first
// measured window must stay within ±15% of its weight fraction
// (1/4, 1/4, 2/4), and — the starvation regression for the aging
// contract under fair-share — no job may wait more than a bounded
// multiple of the mean wait.
func TestFairShareSoak(t *testing.T) {
	jobsPerOwner := 12
	measure := 20
	if testing.Short() {
		jobsPerOwner = 6
		measure = 12
	}
	type ownerSpec struct {
		name   string
		weight int
	}
	owners := []ownerSpec{{"heavy-a", 1}, {"heavy-b", 1}, {"light-c", 2}}
	totalWeight := 0
	for _, o := range owners {
		totalWeight += o.weight
	}

	env := newEnv(t, Config{
		Testbed: testbed.Config{Sites: 1, HostsPerGroup: 2, Seed: 101, BaseLoadMax: 0.2},
		Pipeline: PipelineConfig{
			QueueDepth:        len(owners)*jobsPerOwner + 8,
			SchedulerWorkers:  1,
			MaxConcurrentRuns: 1,
		},
	})
	env.Console.Suspend()
	ctx := context.Background()

	// Build the graphs up front (t.Fatal must not fire in goroutines).
	graphs := make([][]*afg.Graph, len(owners))
	for oi := range owners {
		graphs[oi] = make([]*afg.Graph, jobsPerOwner)
		for i := range graphs[oi] {
			graphs[oi][i] = soakGraph(t, i%2)
		}
	}

	// All owners submit concurrently (this is the -race surface: three
	// goroutines hammering reserveQueued/push against the worker's pops).
	jobs := make([][]*Job, len(owners))
	errCh := make(chan error, len(owners)*jobsPerOwner)
	var wg sync.WaitGroup
	for oi, o := range owners {
		jobs[oi] = make([]*Job, jobsPerOwner)
		wg.Add(1)
		go func(oi int, o ownerSpec) {
			defer wg.Done()
			for i := 0; i < jobsPerOwner; i++ {
				job, err := env.Submit(ctx, graphs[oi][i],
					WithOwner(o.name), WithShareWeight(o.weight))
				if err != nil {
					errCh <- err
					return
				}
				jobs[oi][i] = job
			}
		}(oi, o)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("submit: %v", err)
	}

	env.Console.Resume()
	drainCtx, cancel := context.WithTimeout(ctx, 8*time.Minute)
	defer cancel()
	if err := env.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Collect every job's dispatch record.
	type record struct {
		owner              string
		submitted, started time.Time
	}
	var records []record
	for oi, o := range owners {
		for i, job := range jobs[oi] {
			if err := job.Err(); err != nil {
				t.Fatalf("%s job %d failed: %v", o.name, i, err)
			}
			s := job.Status()
			if s.StartedAt.IsZero() {
				t.Fatalf("%s job %d has no start time", o.name, i)
			}
			records = append(records, record{o.name, s.SubmittedAt, s.StartedAt})
		}
	}
	sort.Slice(records, func(i, j int) bool { return records[i].started.Before(records[j].started) })

	// Fairness: over the first `measure` dispatches — while every owner
	// is still backlogged — each owner's share must be within ±15% of
	// its weight fraction. (The first couple of pops race the concurrent
	// submissions; the tolerance absorbs them.)
	shares := map[string]int{}
	for _, r := range records[:measure] {
		shares[r.owner]++
	}
	for _, o := range owners {
		got := float64(shares[o.name]) / float64(measure)
		want := float64(o.weight) / float64(totalWeight)
		if diff := got - want; diff < -0.15 || diff > 0.15 {
			t.Errorf("owner %s dispatch share = %.2f (%d of %d), want %.2f ±0.15",
				o.name, got, shares[o.name], measure, want)
		}
	}

	// Starvation bound: no job waits more than a bounded multiple of the
	// mean wait (the 1s absolute slack keeps sub-millisecond means from
	// making the bound degenerate).
	var total time.Duration
	var maxWait time.Duration
	for _, r := range records {
		w := r.started.Sub(r.submitted)
		total += w
		if w > maxWait {
			maxWait = w
		}
	}
	mean := total / time.Duration(len(records))
	if bound := 4*mean + time.Second; maxWait > bound {
		t.Errorf("max wait %v exceeds starvation bound %v (mean %v)", maxWait, bound, mean)
	}
}

// TestQueuedQuotaRejectsTyped covers the admission-side quota: an
// owner over MaxQueuedPerOwner is rejected with a typed QuotaError
// (matching ErrQuotaExceeded), other owners are unaffected, and — the
// fair-share acceptance bullet — a capped owner's excess submissions
// never block another owner's dispatch.
func TestQueuedQuotaRejectsTyped(t *testing.T) {
	env := newEnv(t, Config{
		Testbed: testbed.Config{Sites: 1, HostsPerGroup: 2, Seed: 102, BaseLoadMax: 0.2},
		Pipeline: PipelineConfig{
			QueueDepth:        16,
			SchedulerWorkers:  1,
			MaxConcurrentRuns: 1,
			Quota: QuotaConfig{
				MaxQueuedPerOwner:   2,
				MaxInFlightPerOwner: 1,
			},
		},
	})
	env.Console.Suspend()
	ctx := context.Background()

	a1, err := env.Submit(ctx, soakGraph(t, 1), WithOwner("alice"))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker claims a1 (its queued-quota slot frees and
	// alice hits her in-flight cap, parking everything behind it).
	waitForState(t, a1, func(s JobState) bool { return s != JobQueued })

	a2, err := env.Submit(ctx, soakGraph(t, 1), WithOwner("alice"))
	if err != nil {
		t.Fatal(err)
	}
	a3, err := env.Submit(ctx, soakGraph(t, 1), WithOwner("alice"))
	if err != nil {
		t.Fatal(err)
	}
	// Fourth submission: over the queued cap. Typed rejection, no job.
	_, err = env.Submit(ctx, soakGraph(t, 1), WithOwner("alice"))
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-cap submit = %v, want ErrQuotaExceeded", err)
	}
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("over-cap submit error %T is not a *QuotaError", err)
	}
	if qe.Owner != "alice" || qe.Resource != "queued-jobs" || qe.Limit != 2 || qe.Used != 2 {
		t.Fatalf("QuotaError = %+v, want alice/queued-jobs 2 of 2", qe)
	}

	// Another owner is untouched by alice's caps — and dispatches past
	// her parked backlog: bob was submitted after a2/a3 but must reach
	// the scheduler while they are still queued (alice is at her
	// in-flight cap).
	b1, err := env.Submit(ctx, soakGraph(t, 1), WithOwner("bob"))
	if err != nil {
		t.Fatalf("other owner rejected by alice's quota: %v", err)
	}
	waitForState(t, b1, func(s JobState) bool { return s != JobQueued })
	if got := a2.State(); got != JobQueued {
		t.Fatalf("a2 state = %v while alice is at her in-flight cap, want queued", got)
	}
	if got := a3.State(); got != JobQueued {
		t.Fatalf("a3 state = %v while alice is at her in-flight cap, want queued", got)
	}

	// Release the backlog: everything completes, and the parked jobs
	// dispatch only after their predecessor finished (cap 1 serializes
	// the owner).
	env.Console.Resume()
	drainCtx, cancel := context.WithTimeout(ctx, 4*time.Minute)
	defer cancel()
	if err := env.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for name, job := range map[string]*Job{"a1": a1, "a2": a2, "a3": a3, "b1": b1} {
		if err := job.Err(); err != nil {
			t.Fatalf("%s failed: %v", name, err)
		}
	}
	if a2Started, a1Finished := a2.Status().StartedAt, a1.Status().FinishedAt; a2Started.Before(a1Finished) {
		t.Fatalf("a2 started %v before a1 finished %v despite in-flight cap 1", a2Started, a1Finished)
	}
	// The freed quota admits new work again.
	if _, err := env.Submit(ctx, soakGraph(t, 1), WithOwner("alice")); err != nil {
		t.Fatalf("post-drain submit still rejected: %v", err)
	}
	drainCtx2, cancel2 := context.WithTimeout(ctx, 4*time.Minute)
	defer cancel2()
	if err := env.Drain(drainCtx2); err != nil {
		t.Fatal(err)
	}
}

// TestHostsQuotaParksUntilHostsFree covers the held-hosts cap: with
// MaxHostsPerOwner=1 every placement charges at least one host, so an
// owner's second scheduled job parks after scheduling (state stays
// scheduling, no hosts held) until the first job releases its hosts —
// the first job itself is admitted alone even if its placement exceeds
// the cap — while another owner's job dispatches meanwhile; owner
// usage counters track held hosts live.
func TestHostsQuotaParksUntilHostsFree(t *testing.T) {
	env := newEnv(t, Config{
		Testbed: testbed.Config{Sites: 1, HostsPerGroup: 2, Seed: 103, BaseLoadMax: 0.2},
		Pipeline: PipelineConfig{
			QueueDepth: 16,
			// One worker makes the parked gate deterministic: the pop
			// following h2's park always observes it.
			SchedulerWorkers:  1,
			MaxConcurrentRuns: 3,
			Quota:             QuotaConfig{MaxHostsPerOwner: 1},
		},
	})
	env.Console.Suspend()
	ctx := context.Background()

	h1, err := env.Submit(ctx, soakGraph(t, 1), WithOwner("alice"))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, h1, func(s JobState) bool { return s == JobRunning })
	if got := env.Board.OwnerUsages()["alice"].HostsHeld; got < 1 {
		t.Fatalf("alice holds %d hosts while h1 runs, want >= 1", got)
	}

	h2, err := env.Submit(ctx, soakGraph(t, 1), WithOwner("alice"))
	if err != nil {
		t.Fatal(err)
	}
	// h2 schedules, then parks on the held-hosts cap: it must sit in
	// scheduling with no hosts held, not running.
	waitForState(t, h2, func(s JobState) bool { return s == JobScheduling })
	b1, err := env.Submit(ctx, soakGraph(t, 1), WithOwner("bob"))
	if err != nil {
		t.Fatal(err)
	}
	// bob is under his own (empty) ledger: his job dispatches past
	// alice's parked one.
	waitForState(t, b1, func(s JobState) bool { return s == JobRunning })
	if got := h2.State(); got != JobScheduling {
		t.Fatalf("h2 state = %v while alice's host is held, want scheduling (parked)", got)
	}
	if got := h2.Status().HostsHeld; got != 0 {
		t.Fatalf("parked job reports %d held hosts, want 0", got)
	}
	// The parked gate: with h2 parked, alice's further jobs stay in the
	// queue instead of piling up as parked goroutines.
	h3, err := env.Submit(ctx, soakGraph(t, 1), WithOwner("alice"))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if got := h3.State(); got != JobQueued {
		t.Fatalf("h3 state = %v while h2 is parked, want queued (pop skips parked owners)", got)
	}

	env.Console.Resume()
	drainCtx, cancel := context.WithTimeout(ctx, 4*time.Minute)
	defer cancel()
	if err := env.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for name, job := range map[string]*Job{"h1": h1, "h2": h2, "h3": h3, "b1": b1} {
		if err := job.Err(); err != nil {
			t.Fatalf("%s failed: %v", name, err)
		}
	}
	if h2Started, h1Finished := h2.Status().StartedAt, h1.Status().FinishedAt; h2Started.Before(h1Finished) {
		t.Fatalf("h2 started %v before h1 finished %v despite hosts cap", h2Started, h1Finished)
	}
	// All charges returned.
	if got := env.Board.OwnerUsages()["alice"].HostsHeld; got != 0 {
		t.Fatalf("alice still holds %d hosts after drain", got)
	}
}

// TestDeadlineExpiresWhileParkedOnHostsQuota pins WithDeadline's
// whole-lifetime contract against the hosts-quota park: a job whose
// deadline passes while it is parked (post-schedule, pre-dispatch)
// terminalizes with ErrJobDeadlineExceeded instead of waiting for the
// owner's hosts, and never runs.
func TestDeadlineExpiresWhileParkedOnHostsQuota(t *testing.T) {
	env := newEnv(t, Config{
		Testbed: testbed.Config{Sites: 1, HostsPerGroup: 2, Seed: 105, BaseLoadMax: 0.2},
		Pipeline: PipelineConfig{
			QueueDepth:        16,
			SchedulerWorkers:  2,
			MaxConcurrentRuns: 3,
			Quota:             QuotaConfig{MaxHostsPerOwner: 1},
		},
	})
	env.Console.Suspend()
	ctx := context.Background()

	h1, err := env.Submit(ctx, soakGraph(t, 1), WithOwner("alice"))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, h1, func(s JobState) bool { return s == JobRunning })
	doomed, err := env.Submit(ctx, soakGraph(t, 1), WithOwner("alice"),
		WithDeadline(time.Now().Add(400*time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, doomed, func(s JobState) bool { return s == JobScheduling })
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := doomed.Wait(waitCtx); !errors.Is(err, ErrJobDeadlineExceeded) {
		t.Fatalf("parked job's Wait = %v, want ErrJobDeadlineExceeded", err)
	}
	if !doomed.Status().StartedAt.IsZero() {
		t.Fatal("deadline-expired parked job reports a start time")
	}
	// h1 is untouched; the owner's gate cleared so later jobs dispatch.
	env.Console.Resume()
	drainCtx, cancelDrain := context.WithTimeout(ctx, 4*time.Minute)
	defer cancelDrain()
	if err := env.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
	if err := h1.Err(); err != nil {
		t.Fatalf("h1 failed: %v", err)
	}
}

// TestShareWeightResolution pins the weight default chain: explicit
// WithShareWeight wins, owned jobs default to the account priority,
// anonymous jobs weigh 1, and everything clamps to >= 1.
func TestShareWeightResolution(t *testing.T) {
	env := newEnv(t, Config{Testbed: testbed.Config{Sites: 1, HostsPerGroup: 2, Seed: 104}})
	ctx := context.Background()
	g := soakGraph(t, 1)

	cases := []struct {
		name string
		opts []SubmitOption
		want int
	}{
		{"account-default", []SubmitOption{WithOwner("user_k")}, 5}, // user_k priority 5
		{"explicit", []SubmitOption{WithOwner("user_k"), WithShareWeight(3)}, 3},
		{"anonymous", nil, 1},
		{"clamped-low", []SubmitOption{WithShareWeight(-7)}, 1},
		// The weight is client-settable over HTTP: an absurd value
		// saturates instead of buying an unbounded dispatch share.
		{"clamped-high", []SubmitOption{WithShareWeight(1 << 30)}, MaxShareWeight},
	}
	for _, tc := range cases {
		job, err := env.Submit(ctx, g, tc.opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := job.ShareWeight(); got != tc.want {
			t.Errorf("%s: ShareWeight = %d, want %d", tc.name, got, tc.want)
		}
		if got := job.Status().ShareWeight; got != tc.want {
			t.Errorf("%s: Status().ShareWeight = %d, want %d", tc.name, got, tc.want)
		}
	}
	drainCtx, cancel := context.WithTimeout(ctx, 4*time.Minute)
	defer cancel()
	if err := env.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
	// Owners() reflects the last-submitted weights and matched usage.
	for _, o := range env.Owners() {
		if o.Owner == "user_k" && o.Weight != 3 {
			t.Errorf("Owners() weight for user_k = %d, want the latest submission's 3", o.Weight)
		}
	}
}

// waitForState polls a job until cond holds for its state, failing the
// test after 30 seconds.
func waitForState(t *testing.T, job *Job, cond func(JobState) bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond(job.State()) {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %v", job.ID, job.State())
		}
		time.Sleep(time.Millisecond)
	}
}
