module vdce

go 1.24
