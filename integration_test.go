package vdce

// Cross-module integration tests: the full user journey over HTTP, the
// prediction feedback loop across runs, repository persistence across a
// site restart, and concurrent application executions sharing one
// environment.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"vdce/internal/afg"
	"vdce/internal/core"
	"vdce/internal/netmodel"
	"vdce/internal/repository"
	"vdce/internal/sim"
	"vdce/internal/tasklib"
	"vdce/internal/testbed"
)

// TestFullHTTPJourney drives login → browse libraries → build →
// properties → submit-with-execution over the real editor HTTP API
// against a live environment.
func TestFullHTTPJourney(t *testing.T) {
	env, err := New(Config{
		Testbed: testbed.Config{Sites: 2, HostsPerGroup: 3, Seed: 61},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	ts := httptest.NewServer(env.EditorServer(true, 1).Handler())
	defer ts.Close()

	call := func(method, path, token string, body any, want int) map[string]any {
		t.Helper()
		var buf bytes.Buffer
		if body != nil {
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				t.Fatal(err)
			}
		}
		req, err := http.NewRequest(method, ts.URL+path, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		if resp.StatusCode != want {
			t.Fatalf("%s %s = %d (want %d): %v", method, path, resp.StatusCode, want, out)
		}
		return out
	}

	token := call("POST", "/login", "", map[string]string{"user": "user_k", "password": "vdce"}, 200)["token"].(string)
	libs := call("GET", "/libraries", token, nil, 200)["libraries"].([]any)
	if len(libs) != 4 {
		t.Fatalf("libraries = %v", libs)
	}
	appID := call("POST", "/apps", token, map[string]string{"name": "http-journey"}, 201)["id"].(string)
	add := func(name string) int {
		out := call("POST", "/apps/"+appID+"/tasks", token, map[string]string{"name": name}, 201)
		return int(out["task"].(float64))
	}
	gen := add("Matrix_Generate")
	chk := add("Checksum")
	call("POST", "/apps/"+appID+"/props", token,
		map[string]any{"task": gen, "props": afg.Properties{Args: map[string]string{"n": "16"}}}, 200)
	call("POST", "/apps/"+appID+"/edges", token,
		map[string]any{"from": gen, "to": chk, "size_bytes": 2048}, 201)
	result := call("POST", "/apps/"+appID+"/submit", token, nil, 200)["result"].(map[string]any)
	if result["runs"].(float64) != 2 {
		t.Fatalf("submit result = %v", result)
	}
	if result["makespan"].(string) == "" {
		t.Fatal("no makespan reported")
	}
}

// TestFeedbackImprovesPlacement shows the calibration loop end to end: a
// host whose real behavior is far worse than its catalog parameters
// loses its placements once measured execution times flow back.
func TestFeedbackImprovesPlacement(t *testing.T) {
	repo := repository.New("s1")
	for _, h := range []struct {
		name  string
		speed float64
	}{{"liar", 4}, {"honest", 2}} {
		if err := repo.Resources.AddHost(repository.ResourceInfo{
			HostName: h.name, ArchType: "SUN", OSType: "Solaris",
			TotalMem: 1 << 30, Site: "s1", SpeedFactor: h.speed,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tasklib.Default().InstallInto(repo, []string{"liar", "honest"}); err != nil {
		t.Fatal(err)
	}
	site := core.NewLocalSite(repo)
	g := afg.NewGraph("probe")
	id := g.AddTask("Matrix_Multiplication", "matrix", 2, 1)
	sel, err := site.HostSelection(g)
	if err != nil {
		t.Fatal(err)
	}
	if sel[id].Hosts[0] != "liar" {
		t.Fatalf("cold selection picked %v, catalog says liar is 2x faster", sel[id].Hosts)
	}
	// Reality disagrees: executions on "liar" take 10x the base time.
	base, _ := repo.TaskPerf.BaseTime("Matrix_Multiplication")
	for i := 0; i < 4; i++ {
		if err := repo.TaskPerf.RecordExecution("Matrix_Multiplication", "liar", 10*base, time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	sel2, err := site.HostSelection(g)
	if err != nil {
		t.Fatal(err)
	}
	if sel2[id].Hosts[0] != "honest" {
		t.Fatalf("feedback ignored: still picking %v", sel2[id].Hosts)
	}
}

// TestRepositorySurvivesRestart persists a site repository mid-flight
// and verifies a scheduler over the reloaded copy makes identical
// decisions.
func TestRepositorySurvivesRestart(t *testing.T) {
	env, err := New(Config{Testbed: testbed.Config{Sites: 1, HostsPerGroup: 4, Seed: 62}})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	repo := env.Sites[0].Repo
	if err := env.RefreshMonitoring(time.Unix(100, 0)); err != nil {
		t.Fatal(err)
	}
	if err := repo.TaskPerf.RecordExecution("Checksum", env.TB.Sites[0].Hosts[0].Name, 5*time.Millisecond, time.Now()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "site.json")
	if err := repo.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	reloaded, err := repository.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	g, err := tasklib.BuildC3IPipeline(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	before, err := core.NewLocalSite(repo).HostSelection(g)
	if err != nil {
		t.Fatal(err)
	}
	after, err := core.NewLocalSite(reloaded).HostSelection(g)
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range before {
		got := after[id]
		if got.Err != want.Err || got.Predicted != want.Predicted {
			t.Fatalf("task %d decisions diverged after restart: %+v vs %+v", id, got, want)
		}
		for i := range want.Hosts {
			if got.Hosts[i] != want.Hosts[i] {
				t.Fatalf("task %d hosts diverged: %v vs %v", id, got.Hosts, want.Hosts)
			}
		}
	}
}

// TestConcurrentApplications executes several applications at once on a
// shared environment — the multi-user situation a VDCE server faces.
func TestConcurrentApplications(t *testing.T) {
	env, err := New(Config{Testbed: testbed.Config{Sites: 2, HostsPerGroup: 4, Seed: 63}})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var g *afg.Graph
			var err error
			if i%2 == 0 {
				g, err = tasklib.BuildC3IPipeline(8+i, int64(i))
			} else {
				g, err = tasklib.BuildLinearEquationSolver(16+i, int64(i))
				if err == nil {
					for _, task := range g.Tasks {
						task.Props.MachineType = ""
					}
				}
			}
			if err != nil {
				errs <- err
				return
			}
			if _, _, err := env.Run(context.Background(), g, 1); err != nil {
				errs <- fmt.Errorf("app %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSimAgreesWithDirection sanity-checks that the simulated makespan
// of a scheduled LES tracks the allocation's critical work: it must be
// at least the largest single predicted task and at most the serial sum
// plus transfers.
func TestSimAgreesWithDirection(t *testing.T) {
	env, err := New(Config{Testbed: testbed.Config{Sites: 1, HostsPerGroup: 4, Seed: 64}})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	g, err := tasklib.BuildLinearEquationSolver(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range g.Tasks {
		task.Props.MachineType = ""
	}
	table, err := env.Schedule(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	net, err := netmodel.New([]string{env.TB.Sites[0].Name})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(g, table, net)
	if err != nil {
		t.Fatal(err)
	}
	var longest, serial time.Duration
	for _, e := range table.Entries {
		serial += e.Predicted + e.TransferIn
		if e.Predicted > longest {
			longest = e.Predicted
		}
	}
	if res.Makespan < longest || res.Makespan > serial+time.Second {
		t.Fatalf("makespan %v outside [%v, %v]", res.Makespan, longest, serial)
	}
}
