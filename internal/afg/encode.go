package afg

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// MarshalJSON-compatible encode/decode helpers. Graphs serialize to plain
// JSON (the editor's wire format) and to GraphViz DOT (for rendering
// Fig. 1-style pictures).

// EncodeJSON returns the graph as indented JSON.
func (g *Graph) EncodeJSON() ([]byte, error) {
	return json.MarshalIndent(g, "", "  ")
}

// DecodeJSON parses a graph from JSON and validates it.
func DecodeJSON(data []byte) (*Graph, error) {
	var g Graph
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("afg: decode: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// DOT renders the graph in GraphViz DOT format. Parallel tasks are drawn
// as doubled boxes annotated with their node counts, matching how Fig. 1
// distinguishes LU_Decomposition (parallel, 2 nodes) from the sequential
// tasks.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  rankdir=TB;\n  node [shape=box];\n")
	for _, t := range g.Tasks {
		label := t.Name
		if t.Props.Mode == Parallel {
			label = fmt.Sprintf("%s\\n(parallel x%d)", t.Name, t.Props.Nodes)
			fmt.Fprintf(&b, "  t%d [label=\"%s\", peripheries=2];\n", t.ID, label)
		} else {
			fmt.Fprintf(&b, "  t%d [label=\"%s\"];\n", t.ID, label)
		}
	}
	for _, e := range g.Edges {
		if s := g.EdgeSize(e); s > 0 {
			fmt.Fprintf(&b, "  t%d -> t%d [label=\"%dB\"];\n", e.From, e.To, s)
		} else {
			fmt.Fprintf(&b, "  t%d -> t%d;\n", e.From, e.To)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Summary returns a one-line-per-task textual description of the graph,
// used by the CLI tools and the E1 reproduction output.
func (g *Graph) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Application %q: %d tasks, %d edges\n", g.Name, len(g.Tasks), len(g.Edges))
	for _, t := range g.Tasks {
		parents := g.Parents(t.ID)
		ps := make([]string, len(parents))
		for i, p := range parents {
			ps[i] = g.Tasks[p].Name
		}
		sort.Strings(ps)
		from := "entry"
		if len(ps) > 0 {
			from = "after " + strings.Join(ps, ", ")
		}
		fmt.Fprintf(&b, "  [%2d] %-24s %-12s x%d  (%s)\n", t.ID, t.Name, t.Props.Mode, t.Props.Nodes, from)
	}
	return b.String()
}
