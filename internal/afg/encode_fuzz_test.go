package afg

import (
	"bytes"
	"testing"
)

// fuzzSeeds builds the seed corpus: encodings of representative valid
// graphs (sequential chain, diamond with a parallel task, fan-out) plus
// corrupt and adversarial JSON payloads.
func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte

	chain := NewGraph("chain")
	a := chain.AddTask("A", "lib", 0, 1)
	b := chain.AddTask("B", "lib", 1, 1)
	c := chain.AddTask("C", "lib", 1, 0)
	if err := chain.Connect(a, 0, b, 0, 128); err != nil {
		f.Fatal(err)
	}
	if err := chain.Connect(b, 0, c, 0, 0); err != nil {
		f.Fatal(err)
	}

	diamond := NewGraph("diamond")
	d0 := diamond.AddTask("Entry", "lib", 0, 2)
	d1 := diamond.AddTask("Left", "lib", 1, 1)
	d2 := diamond.AddTask("Right", "lib", 1, 1)
	d3 := diamond.AddTask("Join", "lib", 2, 0)
	for _, e := range []struct {
		from     TaskID
		fromPort int
		to       TaskID
		toPort   int
	}{{d0, 0, d1, 0}, {d0, 1, d2, 0}, {d1, 0, d3, 0}, {d2, 0, d3, 1}} {
		if err := diamond.Connect(e.from, e.fromPort, e.to, e.toPort, 100); err != nil {
			f.Fatal(err)
		}
	}
	if err := diamond.SetProps(d1, Properties{Mode: Parallel, Nodes: 2}); err != nil {
		f.Fatal(err)
	}
	diamond.Owner = "user_k"
	diamond.InputSizeBytes = 4096

	fan := NewGraph("fan")
	root := fan.AddTask("Root", "lib", 0, 4)
	for i := 0; i < 4; i++ {
		leaf := fan.AddTask("Leaf", "lib", 1, 0)
		if err := fan.Connect(root, i, leaf, 0, int64(i)*64); err != nil {
			f.Fatal(err)
		}
	}

	for _, g := range []*Graph{chain, diamond, fan} {
		data, err := g.EncodeJSON()
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, data)
	}
	seeds = append(seeds,
		[]byte(`{}`),
		[]byte(`{"name":"x","tasks":[]}`),
		[]byte(`{"name":"x","tasks":[{"id":7,"name":"A"}]}`),
		[]byte(`{"name":"c","tasks":[{"id":0,"name":"A","in_ports":1,"out_ports":1}],"edges":[{"from":0,"to":0}]}`),
		[]byte(`{"name":"neg","tasks":[{"id":0,"name":"A","in_ports":-1,"out_ports":1}]}`),
		[]byte(`{"tasks":[{"id":0,"name":"A","props":{"mode":1,"nodes":0}}]}`),
		[]byte(`not json at all`),
		[]byte(`[1,2,3]`),
	)
	return seeds
}

// FuzzDecodeGraph checks that DecodeJSON never panics on arbitrary
// input, and that every graph it does accept survives an encode/decode
// round trip unchanged in structure.
func FuzzDecodeGraph(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := DecodeJSON(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted graphs must be internally consistent enough for the
		// traversal helpers the scheduler relies on.
		if _, err := g.TopoSort(); err != nil {
			t.Fatalf("accepted graph fails TopoSort: %v", err)
		}
		enc, err := g.EncodeJSON()
		if err != nil {
			t.Fatalf("accepted graph fails to encode: %v", err)
		}
		g2, err := DecodeJSON(enc)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v\nencoded: %s", err, enc)
		}
		if g2.Name != g.Name || len(g2.Tasks) != len(g.Tasks) || len(g2.Edges) != len(g.Edges) {
			t.Fatalf("round trip changed structure: %d/%d tasks, %d/%d edges",
				len(g.Tasks), len(g2.Tasks), len(g.Edges), len(g2.Edges))
		}
		enc2, err := g2.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding not stable:\nfirst:  %s\nsecond: %s", enc, enc2)
		}
	})
}
