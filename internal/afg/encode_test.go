package afg

import (
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	g, ids := diamond(t)
	g.Owner = "user_k"
	g.InputSizeBytes = 12488
	if err := g.SetProps(ids[0], Properties{Mode: Parallel, Nodes: 2}); err != nil {
		t.Fatal(err)
	}
	data, err := g.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != g.Name || back.Owner != "user_k" || back.InputSizeBytes != 12488 {
		t.Fatal("metadata lost in round trip")
	}
	if len(back.Tasks) != 4 || len(back.Edges) != 4 {
		t.Fatal("structure lost in round trip")
	}
	if back.Task(ids[0]).Props.Mode != Parallel || back.Task(ids[0]).Props.Nodes != 2 {
		t.Fatal("properties lost in round trip")
	}
}

func TestDecodeJSONRejectsGarbage(t *testing.T) {
	if _, err := DecodeJSON([]byte("{not json")); err == nil {
		t.Fatal("expected parse error")
	}
	// Valid JSON but invalid graph (cycle).
	bad := `{"name":"c","tasks":[
	  {"id":0,"name":"A","in_ports":1,"out_ports":1,"props":{"mode":0,"nodes":1}},
	  {"id":1,"name":"B","in_ports":1,"out_ports":1,"props":{"mode":0,"nodes":1}}],
	  "edges":[{"from":0,"to":1},{"from":1,"to":0}]}`
	if _, err := DecodeJSON([]byte(bad)); err == nil {
		t.Fatal("expected validation error for cyclic graph")
	}
}

func TestDOT(t *testing.T) {
	g, ids := diamond(t)
	if err := g.SetProps(ids[0], Properties{Mode: Parallel, Nodes: 2}); err != nil {
		t.Fatal(err)
	}
	dot := g.DOT()
	for _, want := range []string{"digraph", "peripheries=2", "t0 -> t1", "100B"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestSummary(t *testing.T) {
	g, _ := diamond(t)
	s := g.Summary()
	for _, want := range []string{"4 tasks", "entry", "after B, C"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary missing %q:\n%s", want, s)
		}
	}
}
