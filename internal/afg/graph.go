package afg

import (
	"errors"
	"fmt"
	"sort"
)

// Edge is a dataflow connection from one task's output port to another
// task's input port.
type Edge struct {
	From     TaskID `json:"from"`
	FromPort int    `json:"from_port"`
	To       TaskID `json:"to"`
	ToPort   int    `json:"to_port"`
	// SizeBytes is the expected transfer size on this edge; if zero, the
	// scheduler falls back to the producing task's output FileSpec size or
	// the application input size, as the paper prescribes.
	SizeBytes int64 `json:"size_bytes,omitempty"`
}

// Graph is an application flow graph under construction or ready to
// schedule. Graphs are not safe for concurrent mutation; schedulers treat
// them as immutable once validated.
type Graph struct {
	Name  string  `json:"name"`
	Owner string  `json:"owner,omitempty"`
	Tasks []*Task `json:"tasks"`
	Edges []Edge  `json:"edges"`
	// InputSizeBytes is the application-level input size the paper says may
	// be used as the transfer-size parameter when edge sizes are unknown.
	InputSizeBytes int64 `json:"input_size_bytes,omitempty"`
}

// NewGraph returns an empty named graph.
func NewGraph(name string) *Graph {
	return &Graph{Name: name}
}

// AddTask appends a task with the given name, library, and port counts
// and returns its ID. Properties default to sequential on one node.
func (g *Graph) AddTask(name, library string, inPorts, outPorts int) TaskID {
	id := TaskID(len(g.Tasks))
	g.Tasks = append(g.Tasks, &Task{
		ID:       id,
		Name:     name,
		Library:  library,
		InPorts:  inPorts,
		OutPorts: outPorts,
		Props:    Properties{Mode: Sequential, Nodes: 1},
	})
	return id
}

// Task returns the task with the given ID, or nil if out of range.
func (g *Graph) Task(id TaskID) *Task {
	if id < 0 || int(id) >= len(g.Tasks) {
		return nil
	}
	return g.Tasks[id]
}

// SetProps replaces the properties of task id.
func (g *Graph) SetProps(id TaskID, p Properties) error {
	t := g.Task(id)
	if t == nil {
		return fmt.Errorf("afg: no task %d", id)
	}
	if p.Mode == Sequential {
		p.Nodes = 1
	} else if p.Nodes < 1 {
		p.Nodes = 1
	}
	t.Props = p
	return nil
}

// Connect adds a dataflow edge from (from, fromPort) to (to, toPort) and
// marks the destination input as dataflow. sizeBytes may be zero.
func (g *Graph) Connect(from TaskID, fromPort int, to TaskID, toPort int, sizeBytes int64) error {
	ft, tt := g.Task(from), g.Task(to)
	if ft == nil || tt == nil {
		return fmt.Errorf("afg: Connect references missing task (%d -> %d)", from, to)
	}
	if from == to {
		return fmt.Errorf("afg: self-loop on task %d (%s)", from, ft.Name)
	}
	if fromPort < 0 || fromPort >= ft.OutPorts {
		return fmt.Errorf("afg: task %d (%s) has no output port %d", from, ft.Name, fromPort)
	}
	if toPort < 0 || toPort >= tt.InPorts {
		return fmt.Errorf("afg: task %d (%s) has no input port %d", to, tt.Name, toPort)
	}
	for _, e := range g.Edges {
		if e.To == to && e.ToPort == toPort {
			return fmt.Errorf("afg: input port %d of task %d (%s) already connected", toPort, to, tt.Name)
		}
	}
	g.Edges = append(g.Edges, Edge{From: from, FromPort: fromPort, To: to, ToPort: toPort, SizeBytes: sizeBytes})
	// Mark the destination input as dataflow, growing Inputs if needed. A
	// path already recorded for the port (the editor lets users name the
	// file a dataflow input corresponds to, as Fig. 1 does for
	// matrix_A.dat) is preserved.
	for len(tt.Props.Inputs) <= toPort {
		tt.Props.Inputs = append(tt.Props.Inputs, FileSpec{})
	}
	spec := FileSpec{Dataflow: true, SizeBytes: sizeBytes, Path: tt.Props.Inputs[toPort].Path}
	if spec.SizeBytes == 0 {
		spec.SizeBytes = tt.Props.Inputs[toPort].SizeBytes
	}
	tt.Props.Inputs[toPort] = spec
	return nil
}

// Parents returns the IDs of tasks with an edge into id, deduplicated and
// sorted.
func (g *Graph) Parents(id TaskID) []TaskID {
	seen := make(map[TaskID]bool)
	var out []TaskID
	for _, e := range g.Edges {
		if e.To == id && !seen[e.From] {
			seen[e.From] = true
			out = append(out, e.From)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Children returns the IDs of tasks with an edge out of id, deduplicated
// and sorted.
func (g *Graph) Children(id TaskID) []TaskID {
	seen := make(map[TaskID]bool)
	var out []TaskID
	for _, e := range g.Edges {
		if e.From == id && !seen[e.To] {
			seen[e.To] = true
			out = append(out, e.To)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InEdges returns the edges into id in insertion order.
func (g *Graph) InEdges(id TaskID) []Edge {
	var out []Edge
	for _, e := range g.Edges {
		if e.To == id {
			out = append(out, e)
		}
	}
	return out
}

// OutEdges returns the edges out of id in insertion order.
func (g *Graph) OutEdges(id TaskID) []Edge {
	var out []Edge
	for _, e := range g.Edges {
		if e.From == id {
			out = append(out, e)
		}
	}
	return out
}

// Entries returns tasks with no parents — the paper's "entry nodes".
func (g *Graph) Entries() []TaskID {
	hasParent := make([]bool, len(g.Tasks))
	for _, e := range g.Edges {
		hasParent[e.To] = true
	}
	var out []TaskID
	for i := range g.Tasks {
		if !hasParent[i] {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// Exits returns tasks with no children — the paper's "exit nodes".
func (g *Graph) Exits() []TaskID {
	hasChild := make([]bool, len(g.Tasks))
	for _, e := range g.Edges {
		hasChild[e.From] = true
	}
	var out []TaskID
	for i := range g.Tasks {
		if !hasChild[i] {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// EdgeSize returns the transfer size to use for edge e, following the
// paper's fallback chain: explicit edge size, then the producing output's
// FileSpec size, then the application input size.
func (g *Graph) EdgeSize(e Edge) int64 {
	if e.SizeBytes > 0 {
		return e.SizeBytes
	}
	if t := g.Task(e.From); t != nil && e.FromPort < len(t.Props.Outputs) {
		if s := t.Props.Outputs[e.FromPort].SizeBytes; s > 0 {
			return s
		}
	}
	return g.InputSizeBytes
}

// ErrCycle is returned by Validate and TopoSort when the graph has a
// directed cycle.
var ErrCycle = errors.New("afg: graph contains a cycle")

// Validate checks structural integrity: at least one task, all edge
// endpoints and ports valid (enforced during Connect but re-checked for
// deserialized graphs), acyclicity, every non-dataflow input of a
// non-entry task consistent, and parallel node counts positive.
func (g *Graph) Validate() error {
	if len(g.Tasks) == 0 {
		return errors.New("afg: graph has no tasks")
	}
	for i, t := range g.Tasks {
		if t.ID != TaskID(i) {
			return fmt.Errorf("afg: task %q has ID %d at index %d", t.Name, t.ID, i)
		}
		if t.Name == "" {
			return fmt.Errorf("afg: task %d has empty name", i)
		}
		if t.InPorts < 0 || t.OutPorts < 0 {
			return fmt.Errorf("afg: task %d (%s) has negative port count", i, t.Name)
		}
		if t.Props.Mode == Parallel && t.Props.Nodes < 1 {
			return fmt.Errorf("afg: parallel task %d (%s) has node count %d", i, t.Name, t.Props.Nodes)
		}
		if len(t.Props.Inputs) > t.InPorts {
			return fmt.Errorf("afg: task %d (%s) has %d input specs for %d ports", i, t.Name, len(t.Props.Inputs), t.InPorts)
		}
		if len(t.Props.Outputs) > t.OutPorts {
			return fmt.Errorf("afg: task %d (%s) has %d output specs for %d ports", i, t.Name, len(t.Props.Outputs), t.OutPorts)
		}
	}
	seenPort := make(map[[2]int]bool)
	for _, e := range g.Edges {
		ft, tt := g.Task(e.From), g.Task(e.To)
		if ft == nil || tt == nil {
			return fmt.Errorf("afg: edge %v references missing task", e)
		}
		if e.From == e.To {
			return fmt.Errorf("afg: self-loop on task %d", e.From)
		}
		if e.FromPort < 0 || e.FromPort >= ft.OutPorts {
			return fmt.Errorf("afg: edge from invalid port %d of task %d (%s)", e.FromPort, e.From, ft.Name)
		}
		if e.ToPort < 0 || e.ToPort >= tt.InPorts {
			return fmt.Errorf("afg: edge to invalid port %d of task %d (%s)", e.ToPort, e.To, tt.Name)
		}
		key := [2]int{int(e.To), e.ToPort}
		if seenPort[key] {
			return fmt.Errorf("afg: input port %d of task %d (%s) multiply connected", e.ToPort, e.To, tt.Name)
		}
		seenPort[key] = true
	}
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	return nil
}
