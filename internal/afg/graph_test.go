package afg

import (
	"errors"
	"strings"
	"testing"
)

// diamond builds the canonical 4-task diamond A -> {B, C} -> D.
func diamond(t *testing.T) (*Graph, [4]TaskID) {
	t.Helper()
	g := NewGraph("diamond")
	a := g.AddTask("A", "test", 0, 2)
	b := g.AddTask("B", "test", 1, 1)
	c := g.AddTask("C", "test", 1, 1)
	d := g.AddTask("D", "test", 2, 0)
	for _, conn := range []struct {
		f  TaskID
		fp int
		to TaskID
		tp int
	}{{a, 0, b, 0}, {a, 1, c, 0}, {b, 0, d, 0}, {c, 0, d, 1}} {
		if err := g.Connect(conn.f, conn.fp, conn.to, conn.tp, 100); err != nil {
			t.Fatal(err)
		}
	}
	return g, [4]TaskID{a, b, c, d}
}

func TestAddTaskAssignsDenseIDs(t *testing.T) {
	g := NewGraph("x")
	for i := 0; i < 5; i++ {
		if id := g.AddTask("t", "lib", 1, 1); int(id) != i {
			t.Fatalf("AddTask returned %d, want %d", id, i)
		}
	}
	if g.Task(2) == nil || g.Task(5) != nil || g.Task(-1) != nil {
		t.Fatal("Task lookup out-of-range behaviour wrong")
	}
}

func TestConnectValidation(t *testing.T) {
	g := NewGraph("x")
	a := g.AddTask("A", "lib", 0, 1)
	b := g.AddTask("B", "lib", 1, 0)
	if err := g.Connect(a, 0, b, 0, 0); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		err  error
	}{
		{"missing task", g.Connect(a, 0, 99, 0, 0)},
		{"self loop", g.Connect(a, 0, a, 0, 0)},
		{"bad from port", g.Connect(a, 5, b, 0, 0)},
		{"bad to port", g.Connect(a, 0, b, 5, 0)},
		{"port already connected", g.Connect(a, 0, b, 0, 0)},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// The connected input must have been marked dataflow.
	if !g.Task(b).Props.Inputs[0].Dataflow {
		t.Fatal("Connect did not mark input as dataflow")
	}
}

func TestParentsChildrenEntriesExits(t *testing.T) {
	g, ids := diamond(t)
	a, b, c, d := ids[0], ids[1], ids[2], ids[3]
	if got := g.Parents(d); len(got) != 2 || got[0] != b || got[1] != c {
		t.Fatalf("Parents(D) = %v", got)
	}
	if got := g.Children(a); len(got) != 2 || got[0] != b || got[1] != c {
		t.Fatalf("Children(A) = %v", got)
	}
	if got := g.Entries(); len(got) != 1 || got[0] != a {
		t.Fatalf("Entries = %v", got)
	}
	if got := g.Exits(); len(got) != 1 || got[0] != d {
		t.Fatalf("Exits = %v", got)
	}
	if got := g.InEdges(d); len(got) != 2 {
		t.Fatalf("InEdges(D) = %v", got)
	}
	if got := g.OutEdges(a); len(got) != 2 {
		t.Fatalf("OutEdges(A) = %v", got)
	}
}

func TestValidateOK(t *testing.T) {
	g, _ := diamond(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	g := NewGraph("cycle")
	a := g.AddTask("A", "lib", 1, 1)
	b := g.AddTask("B", "lib", 1, 1)
	if err := g.Connect(a, 0, b, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(b, 0, a, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("got %v, want ErrCycle", err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Graph)
	}{
		{"empty", func(g *Graph) { g.Tasks = nil; g.Edges = nil }},
		{"bad id", func(g *Graph) { g.Tasks[1].ID = 7 }},
		{"empty name", func(g *Graph) { g.Tasks[0].Name = "" }},
		{"negative ports", func(g *Graph) { g.Tasks[0].InPorts = -1 }},
		{"parallel zero nodes", func(g *Graph) {
			g.Tasks[0].Props.Mode = Parallel
			g.Tasks[0].Props.Nodes = 0
		}},
		{"edge missing task", func(g *Graph) { g.Edges[0].To = 99 }},
		{"edge self loop", func(g *Graph) { g.Edges[0].To = g.Edges[0].From }},
		{"edge bad from port", func(g *Graph) { g.Edges[0].FromPort = 9 }},
		{"edge bad to port", func(g *Graph) { g.Edges[0].ToPort = 9 }},
		{"double-connected port", func(g *Graph) { g.Edges[1] = g.Edges[0] }},
		{"too many input specs", func(g *Graph) {
			g.Tasks[0].Props.Inputs = make([]FileSpec, 10)
		}},
		{"too many output specs", func(g *Graph) {
			g.Tasks[0].Props.Outputs = make([]FileSpec, 10)
		}},
	}
	for _, c := range cases {
		g, _ := diamond(t)
		c.mut(g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted corrupt graph", c.name)
		}
	}
}

func TestSetProps(t *testing.T) {
	g, ids := diamond(t)
	if err := g.SetProps(ids[1], Properties{Mode: Parallel, Nodes: 4}); err != nil {
		t.Fatal(err)
	}
	if g.Task(ids[1]).Props.Nodes != 4 {
		t.Fatal("SetProps lost node count")
	}
	// Sequential normalizes nodes to 1; parallel with 0 nodes normalizes up.
	if err := g.SetProps(ids[2], Properties{Mode: Sequential, Nodes: 9}); err != nil {
		t.Fatal(err)
	}
	if g.Task(ids[2]).Props.Nodes != 1 {
		t.Fatal("sequential task should have 1 node")
	}
	if err := g.SetProps(ids[3], Properties{Mode: Parallel}); err != nil {
		t.Fatal(err)
	}
	if g.Task(ids[3]).Props.Nodes != 1 {
		t.Fatal("parallel task with no node count should default to 1")
	}
	if err := g.SetProps(99, Properties{}); err == nil {
		t.Fatal("SetProps on missing task should fail")
	}
}

func TestEdgeSizeFallbacks(t *testing.T) {
	g := NewGraph("x")
	g.InputSizeBytes = 5000
	a := g.AddTask("A", "lib", 0, 1)
	b := g.AddTask("B", "lib", 1, 0)
	if err := g.Connect(a, 0, b, 0, 0); err != nil {
		t.Fatal(err)
	}
	e := g.Edges[0]
	// No explicit size, no output spec -> app input size.
	if s := g.EdgeSize(e); s != 5000 {
		t.Fatalf("EdgeSize fallback = %d, want 5000", s)
	}
	// Output spec size takes precedence over app input size.
	g.Task(a).Props.Outputs = []FileSpec{{Path: "out", SizeBytes: 777}}
	if s := g.EdgeSize(e); s != 777 {
		t.Fatalf("EdgeSize from output spec = %d, want 777", s)
	}
	// Explicit edge size wins.
	e.SizeBytes = 42
	if s := g.EdgeSize(e); s != 42 {
		t.Fatalf("EdgeSize explicit = %d, want 42", s)
	}
}

func TestPropertiesWindowRendering(t *testing.T) {
	g, ids := diamond(t)
	if err := g.SetProps(ids[0], Properties{
		Mode: Parallel, Nodes: 2,
		Inputs:  []FileSpec{},
		Outputs: []FileSpec{{Path: "/users/VDCE/user_k/matrix_A.dat", SizeBytes: 12488}},
	}); err != nil {
		t.Fatal(err)
	}
	w := g.Task(ids[0]).PropertiesWindow()
	for _, want := range []string{"Task <A>", "<parallel>", "Number of Nodes: 2", "matrix_A.dat, SIZE=12488"} {
		if !strings.Contains(w, want) {
			t.Errorf("PropertiesWindow missing %q:\n%s", want, w)
		}
	}
}

func TestFileSpecString(t *testing.T) {
	cases := []struct {
		spec FileSpec
		want string
	}{
		{FileSpec{Dataflow: true}, "<dataflow>"},
		{FileSpec{}, "<unset>"},
		{FileSpec{Path: "a.dat"}, "<a.dat>"},
		{FileSpec{Path: "a.dat", SizeBytes: 9}, "<a.dat, SIZE=9>"},
	}
	for _, c := range cases {
		if got := c.spec.String(); got != c.want {
			t.Errorf("FileSpec%v.String() = %q, want %q", c.spec, got, c.want)
		}
	}
}

func TestComputationModeString(t *testing.T) {
	if Sequential.String() != "<sequential>" || Parallel.String() != "<parallel>" {
		t.Fatal("mode strings wrong")
	}
	if !strings.Contains(ComputationMode(9).String(), "9") {
		t.Fatal("unknown mode string wrong")
	}
}
