package afg

import "fmt"

// Stats summarizes a graph's shape for reports and tooling.
type Stats struct {
	Tasks   int
	Edges   int
	Entries int
	Exits   int
	// Depth is the number of tasks on the longest path (hop count + 1).
	Depth int
	// Width is the largest number of tasks at the same depth — an upper
	// bound on exploitable task parallelism.
	Width int
	// AvgInDegree is edges / tasks.
	AvgInDegree float64
}

// ComputeStats derives Stats; it requires a valid DAG.
func (g *Graph) ComputeStats() (Stats, error) {
	order, err := g.TopoSort()
	if err != nil {
		return Stats{}, err
	}
	depth := make([]int, len(g.Tasks))
	maxDepth := 0
	for _, id := range order {
		d := 0
		for _, p := range g.Parents(id) {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[id] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	widths := make([]int, maxDepth+1)
	maxWidth := 0
	for _, d := range depth {
		widths[d]++
		if widths[d] > maxWidth {
			maxWidth = widths[d]
		}
	}
	s := Stats{
		Tasks:   len(g.Tasks),
		Edges:   len(g.Edges),
		Entries: len(g.Entries()),
		Exits:   len(g.Exits()),
		Depth:   maxDepth + 1,
		Width:   maxWidth,
	}
	if s.Tasks > 0 {
		s.AvgInDegree = float64(s.Edges) / float64(s.Tasks)
	}
	return s, nil
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("tasks=%d edges=%d entries=%d exits=%d depth=%d width=%d avg-in=%.2f",
		s.Tasks, s.Edges, s.Entries, s.Exits, s.Depth, s.Width, s.AvgInDegree)
}
