package afg

import (
	"strings"
	"testing"
)

func TestComputeStatsDiamond(t *testing.T) {
	g, _ := diamond(t)
	s, err := g.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Tasks != 4 || s.Edges != 4 || s.Entries != 1 || s.Exits != 1 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.Depth != 3 { // A at depth 0, B/C at 1, D at 2 -> 3 levels
		t.Fatalf("depth = %d", s.Depth)
	}
	if s.Width != 2 { // B and C side by side
		t.Fatalf("width = %d", s.Width)
	}
	if s.AvgInDegree != 1.0 {
		t.Fatalf("avg in-degree = %g", s.AvgInDegree)
	}
	if !strings.Contains(s.String(), "depth=3") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestComputeStatsChainAndCycle(t *testing.T) {
	g := NewGraph("chain")
	a := g.AddTask("A", "l", 1, 1)
	b := g.AddTask("B", "l", 1, 1)
	c := g.AddTask("C", "l", 1, 1)
	_ = g.Connect(a, 0, b, 0, 0)
	_ = g.Connect(b, 0, c, 0, 0)
	s, err := g.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth != 3 || s.Width != 1 {
		t.Fatalf("chain stats: %+v", s)
	}
	// Cycles are rejected.
	_ = g.Connect(c, 0, a, 0, 0)
	if _, err := g.ComputeStats(); err == nil {
		t.Fatal("cycle accepted")
	}
}
