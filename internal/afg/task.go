// Package afg models VDCE application flow graphs (AFGs): directed
// acyclic graphs whose nodes are library tasks with logical input/output
// ports and whose edges are dataflow connections. An AFG plus per-task
// properties is exactly what the paper's Application Editor produces and
// what the Application Scheduler consumes.
package afg

import (
	"fmt"
	"strings"
)

// TaskID identifies a task within one graph. IDs are assigned densely by
// Graph.AddTask starting at 0, which lets schedulers index by ID.
type TaskID int

// ComputationMode is the task property the editor exposes as
// "Computation Type".
type ComputationMode int

const (
	// Sequential tasks run on exactly one node.
	Sequential ComputationMode = iota
	// Parallel tasks run on Props.Nodes nodes within a single site.
	Parallel
)

// String implements fmt.Stringer using the paper's editor vocabulary.
func (m ComputationMode) String() string {
	switch m {
	case Sequential:
		return "<sequential>"
	case Parallel:
		return "<parallel>"
	default:
		return fmt.Sprintf("ComputationMode(%d)", int(m))
	}
}

// AnyMachine is the editor's "<any>" wildcard for machine preferences.
const AnyMachine = "<any>"

// FileSpec describes one input or output of a task. A Dataflow input is
// supplied by a parent task over a Data Manager channel rather than read
// from a file or URL.
type FileSpec struct {
	// Path is a file path or URL; empty for pure dataflow.
	Path string `json:"path,omitempty"`
	// SizeBytes is the (predicted or known) size used for transfer-time
	// estimation. Zero means unknown.
	SizeBytes int64 `json:"size_bytes,omitempty"`
	// Dataflow marks an input as produced by a parent task.
	Dataflow bool `json:"dataflow,omitempty"`
	// URL marks Path as a URL to be fetched by the I/O service.
	URL bool `json:"url,omitempty"`
}

// String renders the spec the way Fig. 1's task-properties windows do.
func (f FileSpec) String() string {
	if f.Dataflow && f.Path == "" {
		return "<dataflow>"
	}
	if f.Path == "" {
		return "<unset>"
	}
	if f.SizeBytes > 0 {
		return fmt.Sprintf("<%s, SIZE=%d>", f.Path, f.SizeBytes)
	}
	return fmt.Sprintf("<%s>", f.Path)
}

// Properties are the optional per-task preferences the user sets in the
// editor's task-properties popup (Fig. 1).
type Properties struct {
	// Mode selects sequential or parallel execution.
	Mode ComputationMode `json:"mode"`
	// Nodes is the number of processors for a Parallel task; ignored (and
	// normalized to 1) for Sequential tasks.
	Nodes int `json:"nodes"`
	// MachineType restricts scheduling to hosts of this architecture/OS
	// label, e.g. "SUN Solaris". AnyMachine (or empty) means no restriction.
	MachineType string `json:"machine_type,omitempty"`
	// Host pins the task to one specific host name. AnyMachine (or empty)
	// means no restriction.
	Host string `json:"host,omitempty"`
	// Inputs and Outputs follow the task's port order: Inputs[i] feeds
	// input port i, Outputs[i] is produced on output port i.
	Inputs  []FileSpec `json:"inputs,omitempty"`
	Outputs []FileSpec `json:"outputs,omitempty"`
	// Services the user requested for this task (I/O, console,
	// visualization), by service name.
	Services []string `json:"services,omitempty"`
	// Args are named arguments passed to the task executable (problem
	// size, seeds, thresholds). The editor exposes them in the
	// task-properties popup alongside the file entries.
	Args map[string]string `json:"args,omitempty"`
}

// Task is one node of an AFG.
type Task struct {
	ID TaskID `json:"id"`
	// Name is the task-library entry this node invokes, e.g.
	// "LU_Decomposition".
	Name string `json:"name"`
	// Library is the menu group the task came from, e.g. "matrix" or "c3i".
	Library string `json:"library,omitempty"`
	// InPorts and OutPorts are the logical port counts shown as markers on
	// the editor icon.
	InPorts  int `json:"in_ports"`
	OutPorts int `json:"out_ports"`
	// Props holds the user's preferences for this node.
	Props Properties `json:"props"`
}

// PropertiesWindow renders the task the way the paper's Fig. 1
// task-properties windows do, for the E1 reproduction.
func (t *Task) PropertiesWindow() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Task <%s>\n", t.Name)
	fmt.Fprintf(&b, "Computation Type: %s\n", t.Props.Mode)
	nodes := t.Props.Nodes
	if nodes < 1 {
		nodes = 1
	}
	fmt.Fprintf(&b, "Number of Nodes: %d\n", nodes)
	mt := t.Props.MachineType
	if mt == "" {
		mt = AnyMachine
	}
	fmt.Fprintf(&b, "Preferred Machine Type: <%s>\n", strings.Trim(mt, "<>"))
	h := t.Props.Host
	if h == "" {
		h = AnyMachine
	}
	fmt.Fprintf(&b, "Preferred Machine : <%s>\n", strings.Trim(h, "<>"))
	ins := make([]string, len(t.Props.Inputs))
	for i, f := range t.Props.Inputs {
		ins[i] = f.String()
	}
	fmt.Fprintf(&b, "Input: <%d> %s\n", len(ins), strings.Join(ins, ", "))
	outs := make([]string, len(t.Props.Outputs))
	for i, f := range t.Props.Outputs {
		outs[i] = f.String()
	}
	fmt.Fprintf(&b, "Output: <%d> %s\n", len(outs), strings.Join(outs, ", "))
	return b.String()
}
