package afg

import (
	"fmt"
	"sort"
)

// TopoSort returns the task IDs in a topological order (Kahn's
// algorithm; ties broken by ascending ID for determinism). It returns
// ErrCycle if the graph is not a DAG.
func (g *Graph) TopoSort() ([]TaskID, error) {
	n := len(g.Tasks)
	indeg := make([]int, n)
	adj := make([][]TaskID, n)
	for _, e := range g.Edges {
		if e.From < 0 || int(e.From) >= n || e.To < 0 || int(e.To) >= n {
			return nil, fmt.Errorf("afg: edge %v out of range", e)
		}
		indeg[e.To]++
		adj[e.From] = append(adj[e.From], e.To)
	}
	// Min-heap-free deterministic Kahn: keep the frontier sorted.
	var frontier []TaskID
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, TaskID(i))
		}
	}
	order := make([]TaskID, 0, n)
	for len(frontier) > 0 {
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		id := frontier[0]
		frontier = frontier[1:]
		order = append(order, id)
		for _, c := range adj[id] {
			indeg[c]--
			if indeg[c] == 0 {
				frontier = append(frontier, c)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// CostFunc supplies the computation cost of a task "on the base
// processor" — the paper takes this from the task-performance database.
type CostFunc func(TaskID) float64

// Levels computes the level of every node: the largest sum of
// computation costs along any path from the node to an exit node,
// including the node's own cost (Kwok & Ahmad's static b-level restricted
// to computation costs, as the paper specifies). The node with the higher
// level has the higher scheduling priority.
func (g *Graph) Levels(cost CostFunc) ([]float64, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	n := len(g.Tasks)
	levels := make([]float64, n)
	children := make([][]TaskID, n)
	for _, e := range g.Edges {
		children[e.From] = append(children[e.From], e.To)
	}
	// Walk in reverse topological order so children are final first.
	for i := n - 1; i >= 0; i-- {
		id := order[i]
		var best float64
		for _, c := range children[id] {
			if levels[c] > best {
				best = levels[c]
			}
		}
		levels[id] = cost(id) + best
	}
	return levels, nil
}

// ByLevelDesc returns all task IDs sorted by descending level, breaking
// ties by ascending ID. This is the list-scheduling priority order.
func ByLevelDesc(levels []float64) []TaskID {
	ids := make([]TaskID, len(levels))
	for i := range ids {
		ids[i] = TaskID(i)
	}
	sort.SliceStable(ids, func(a, b int) bool {
		la, lb := levels[ids[a]], levels[ids[b]]
		if la != lb {
			return la > lb
		}
		return ids[a] < ids[b]
	})
	return ids
}

// CriticalPath returns the task sequence realizing the maximum level from
// any entry node, i.e. the computation-cost critical path, along with its
// total cost.
func (g *Graph) CriticalPath(cost CostFunc) ([]TaskID, float64, error) {
	levels, err := g.Levels(cost)
	if err != nil {
		return nil, 0, err
	}
	// Start at the entry (or any node) with the max level.
	best := TaskID(-1)
	for i := range g.Tasks {
		if best == -1 || levels[i] > levels[best] {
			best = TaskID(i)
		}
	}
	if best == -1 {
		return nil, 0, fmt.Errorf("afg: empty graph")
	}
	total := levels[best]
	var path []TaskID
	cur := best
	for {
		path = append(path, cur)
		children := g.Children(cur)
		if len(children) == 0 {
			break
		}
		// Follow the child whose level dominates: level(cur) = cost(cur) + max child level.
		next := children[0]
		for _, c := range children[1:] {
			if levels[c] > levels[next] {
				next = c
			}
		}
		cur = next
	}
	return path, total, nil
}

// ReadySet maintains the paper's ready-tasks set: tasks all of whose
// parents have been scheduled. Initialize with the entry nodes, then
// Complete tasks as the site scheduler assigns them.
type ReadySet struct {
	g         *Graph
	remaining []int // unscheduled-parent count per task
	ready     map[TaskID]bool
	done      map[TaskID]bool
}

// NewReadySet builds a ReadySet whose initial members are the graph's
// entry nodes.
func NewReadySet(g *Graph) *ReadySet {
	rs := &ReadySet{
		g:         g,
		remaining: make([]int, len(g.Tasks)),
		ready:     make(map[TaskID]bool),
		done:      make(map[TaskID]bool),
	}
	seen := make(map[[2]TaskID]bool)
	for _, e := range g.Edges {
		key := [2]TaskID{e.From, e.To}
		if !seen[key] { // count distinct parents, not edges
			seen[key] = true
			rs.remaining[e.To]++
		}
	}
	for i := range g.Tasks {
		if rs.remaining[i] == 0 {
			rs.ready[TaskID(i)] = true
		}
	}
	return rs
}

// Ready returns the current ready tasks sorted by ID.
func (rs *ReadySet) Ready() []TaskID {
	out := make([]TaskID, 0, len(rs.ready))
	for id := range rs.ready {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Contains reports whether id is currently ready.
func (rs *ReadySet) Contains(id TaskID) bool { return rs.ready[id] }

// Empty reports whether no tasks remain ready.
func (rs *ReadySet) Empty() bool { return len(rs.ready) == 0 }

// Complete removes id from the ready set and adds any children whose
// parents are now all complete, mirroring step 7 of the site scheduler.
// It returns an error if id was not ready (a scheduler bug).
func (rs *ReadySet) Complete(id TaskID) error {
	if !rs.ready[id] {
		return fmt.Errorf("afg: task %d completed but not ready", id)
	}
	delete(rs.ready, id)
	rs.done[id] = true
	for _, c := range rs.g.Children(id) {
		rs.remaining[c]--
		if rs.remaining[c] == 0 {
			rs.ready[c] = true
		}
	}
	return nil
}

// DoneCount returns how many tasks have been completed.
func (rs *ReadySet) DoneCount() int { return len(rs.done) }
