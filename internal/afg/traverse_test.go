package afg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func unitCost(TaskID) float64 { return 1 }

func TestTopoSortDiamond(t *testing.T) {
	g, ids := diamond(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[TaskID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("topological violation: %d before %d", e.To, e.From)
		}
	}
	if order[0] != ids[0] || order[3] != ids[3] {
		t.Fatalf("unexpected order %v", order)
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := NewGraph("c")
	a := g.AddTask("A", "l", 1, 1)
	b := g.AddTask("B", "l", 1, 1)
	_ = g.Connect(a, 0, b, 0, 0)
	_ = g.Connect(b, 0, a, 0, 0)
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestLevelsDiamond(t *testing.T) {
	g, ids := diamond(t)
	levels, err := g.Levels(unitCost)
	if err != nil {
		t.Fatal(err)
	}
	// D is exit: level 1; B, C: 2; A: 3.
	want := map[TaskID]float64{ids[0]: 3, ids[1]: 2, ids[2]: 2, ids[3]: 1}
	for id, w := range want {
		if levels[id] != w {
			t.Fatalf("level[%d] = %g, want %g", id, levels[id], w)
		}
	}
}

func TestLevelsWeighted(t *testing.T) {
	// Chain A -> B -> C with costs 1, 10, 2: levels 13, 12, 2.
	g := NewGraph("chain")
	a := g.AddTask("A", "l", 0, 1)
	b := g.AddTask("B", "l", 1, 1)
	c := g.AddTask("C", "l", 1, 0)
	_ = g.Connect(a, 0, b, 0, 0)
	_ = g.Connect(b, 0, c, 0, 0)
	costs := map[TaskID]float64{a: 1, b: 10, c: 2}
	levels, err := g.Levels(func(id TaskID) float64 { return costs[id] })
	if err != nil {
		t.Fatal(err)
	}
	if levels[a] != 13 || levels[b] != 12 || levels[c] != 2 {
		t.Fatalf("levels = %v", levels)
	}
}

func TestByLevelDesc(t *testing.T) {
	order := ByLevelDesc([]float64{3, 1, 3, 2})
	// Levels 3,3,2,1 -> IDs 0,2,3,1 (ties by ascending ID).
	want := []TaskID{0, 2, 3, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ByLevelDesc = %v, want %v", order, want)
		}
	}
}

func TestCriticalPath(t *testing.T) {
	g := NewGraph("cp")
	a := g.AddTask("A", "l", 0, 2)
	b := g.AddTask("B", "l", 1, 1) // cheap branch
	c := g.AddTask("C", "l", 1, 1) // expensive branch
	d := g.AddTask("D", "l", 2, 0)
	_ = g.Connect(a, 0, b, 0, 0)
	_ = g.Connect(a, 1, c, 0, 0)
	_ = g.Connect(b, 0, d, 0, 0)
	_ = g.Connect(c, 0, d, 1, 0)
	costs := map[TaskID]float64{a: 1, b: 1, c: 5, d: 1}
	path, total, err := g.CriticalPath(func(id TaskID) float64 { return costs[id] })
	if err != nil {
		t.Fatal(err)
	}
	if total != 7 {
		t.Fatalf("critical path cost %g, want 7", total)
	}
	want := []TaskID{a, c, d}
	if len(path) != 3 || path[0] != want[0] || path[1] != want[1] || path[2] != want[2] {
		t.Fatalf("critical path %v, want %v", path, want)
	}
}

func TestReadySetDiamond(t *testing.T) {
	g, ids := diamond(t)
	rs := NewReadySet(g)
	if r := rs.Ready(); len(r) != 1 || r[0] != ids[0] {
		t.Fatalf("initial ready = %v", r)
	}
	if err := rs.Complete(ids[0]); err != nil {
		t.Fatal(err)
	}
	if r := rs.Ready(); len(r) != 2 {
		t.Fatalf("after A, ready = %v", r)
	}
	if err := rs.Complete(ids[3]); err == nil {
		t.Fatal("completing a non-ready task should fail")
	}
	if err := rs.Complete(ids[1]); err != nil {
		t.Fatal(err)
	}
	if rs.Contains(ids[3]) {
		t.Fatal("D ready with only one parent done")
	}
	if err := rs.Complete(ids[2]); err != nil {
		t.Fatal(err)
	}
	if !rs.Contains(ids[3]) {
		t.Fatal("D not ready after both parents done")
	}
	if err := rs.Complete(ids[3]); err != nil {
		t.Fatal(err)
	}
	if !rs.Empty() || rs.DoneCount() != 4 {
		t.Fatalf("final state wrong: empty=%v done=%d", rs.Empty(), rs.DoneCount())
	}
}

// randomDAG builds a random layered DAG for property tests; edges only go
// from lower to higher IDs, so it is a DAG by construction.
func randomDAG(rng *rand.Rand, n int) *Graph {
	g := NewGraph("rand")
	for i := 0; i < n; i++ {
		g.AddTask("T", "l", n, n)
	}
	port := make([]int, n) // next free input port per task
	for to := 1; to < n; to++ {
		parents := rng.Intn(min(to, 3) + 1)
		used := make(map[int]bool)
		for p := 0; p < parents; p++ {
			from := rng.Intn(to)
			if used[from] {
				continue
			}
			used[from] = true
			_ = g.Connect(TaskID(from), p, TaskID(to), port[to], int64(rng.Intn(1000)))
			port[to]++
		}
	}
	return g
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Property: topological order respects every edge, and levels satisfy the
// recursive definition level(t) = cost(t) + max(level(children)).
func TestTopoAndLevelProperty(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(szRaw)%30 + 1
		g := randomDAG(rng, n)
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := make(map[TaskID]int)
		for i, id := range order {
			pos[id] = i
		}
		for _, e := range g.Edges {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		levels, err := g.Levels(unitCost)
		if err != nil {
			return false
		}
		for i := range g.Tasks {
			var maxChild float64
			for _, c := range g.Children(TaskID(i)) {
				if levels[c] > maxChild {
					maxChild = levels[c]
				}
			}
			if levels[i] != 1+maxChild {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// Property: draining a ReadySet visits every task exactly once and never
// offers a task before all its parents completed.
func TestReadySetProperty(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(szRaw)%25 + 1
		g := randomDAG(rng, n)
		rs := NewReadySet(g)
		completed := make(map[TaskID]bool)
		for !rs.Empty() {
			ready := rs.Ready()
			id := ready[rng.Intn(len(ready))]
			for _, p := range g.Parents(id) {
				if !completed[p] {
					return false
				}
			}
			if err := rs.Complete(id); err != nil {
				return false
			}
			completed[id] = true
		}
		return len(completed) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}
