// Package breaker implements per-host circuit breakers for the VDCE
// placement path. The heartbeat failure detector (internal/detect)
// confirms *silent* hosts dead, but a flapping host — one that fails,
// recovers before the suspicion timeout, and fails again — never stays
// quiet long enough to be confirmed, so it keeps winning placements and
// keeps killing the tasks placed on it. The breaker closes that gap
// with the classic three-state machine:
//
//	closed ──(failure rate ≥ threshold over the window)──▶ open
//	open ──(OpenTimeout elapsed)──▶ half-open
//	half-open ──(ProbeSuccesses consecutive successes)──▶ closed
//	half-open ──(any failure)──▶ open
//
// Failure samples come from the execution engine's watchdog
// terminations (EventHostFailure) and from the detector's suspect
// transitions; successes come from completed task runs. Placement
// exclusion lists consult Excluded()/Allow() so open hosts stop
// receiving work, while half-open hosts admit probe traffic that
// re-closes the breaker after genuine recovery.
//
// All time flows through Config.Now, so tests (and the simulator) drive
// the state machine on a synthetic clock.
package breaker

import (
	"sort"
	"sync"
	"time"
)

// State is one circuit-breaker state.
type State int

const (
	// Closed: the host takes placements normally; outcomes are sampled.
	Closed State = iota
	// Open: the host is quarantined — excluded from placements until
	// OpenTimeout elapses.
	Open
	// HalfOpen: the quarantine expired; the host may take probe
	// placements whose outcomes decide between re-closing and re-opening.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Config tunes the per-host state machines. The zero value gets
// sensible defaults from New.
type Config struct {
	// Window is the sliding interval over which the failure rate is
	// measured (default 30s).
	Window time.Duration
	// Buckets is the window's ring granularity (default 6). More buckets
	// age samples out more smoothly at slightly more bookkeeping.
	Buckets int
	// FailureThreshold opens the breaker when failures/total over the
	// window reaches it, provided MinSamples were observed (default 0.5).
	FailureThreshold float64
	// MinSamples is the minimum number of outcomes in the window before
	// the rate is trusted (default 4) — one unlucky failure on an idle
	// host must not quarantine it.
	MinSamples int
	// OpenTimeout is how long an open breaker quarantines the host
	// before moving to half-open (default 30s).
	OpenTimeout time.Duration
	// ProbeSuccesses is how many consecutive half-open successes close
	// the breaker (default 2). Any half-open failure re-opens it.
	ProbeSuccesses int
	// Now supplies the clock (default time.Now). Injected by tests and
	// the simulator.
	Now func() time.Time
	// OnTransition, when non-nil, observes every state change. Called
	// with the set's lock held: keep it fast and do not call back into
	// the Set.
	OnTransition func(host string, from, to State)
}

func (c *Config) fillDefaults() {
	if c.Window <= 0 {
		c.Window = 30 * time.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 6
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 4
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 30 * time.Second
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// bucket holds one ring slot of outcome counts.
type bucket struct {
	failures  int
	successes int
}

// hostBreaker is one host's state machine. All fields are guarded by
// the owning Set's mutex.
type hostBreaker struct {
	state    State
	openedAt time.Time
	// probeOK counts consecutive half-open successes.
	probeOK int
	// opens counts closed/half-open → open transitions, for reports.
	opens int

	ring     []bucket
	cur      int
	curStart time.Time
}

// Set is a registry of per-host breakers sharing one Config.
type Set struct {
	cfg       Config
	bucketDur time.Duration

	mu    sync.Mutex
	hosts map[string]*hostBreaker
}

// New returns an empty Set; hosts materialize on first report or query.
func New(cfg Config) *Set {
	cfg.fillDefaults()
	return &Set{
		cfg:       cfg,
		bucketDur: cfg.Window / time.Duration(cfg.Buckets),
		hosts:     make(map[string]*hostBreaker),
	}
}

// host returns the named breaker, creating it closed. Callers hold s.mu.
func (s *Set) host(name string, now time.Time) *hostBreaker {
	hb, ok := s.hosts[name]
	if !ok {
		hb = &hostBreaker{ring: make([]bucket, s.cfg.Buckets), curStart: now}
		s.hosts[name] = hb
	}
	return hb
}

// advance ages the ring to now, zeroing buckets that fell out of the
// window, and lazily trips the open → half-open timeout. Callers hold
// s.mu.
func (s *Set) advance(name string, hb *hostBreaker, now time.Time) {
	steps := 0
	for !now.Before(hb.curStart.Add(s.bucketDur)) && steps < s.cfg.Buckets {
		hb.cur = (hb.cur + 1) % s.cfg.Buckets
		hb.ring[hb.cur] = bucket{}
		hb.curStart = hb.curStart.Add(s.bucketDur)
		steps++
	}
	if steps == s.cfg.Buckets {
		// The whole window elapsed since the last sample: clear everything
		// and re-anchor rather than spinning bucket-by-bucket.
		for i := range hb.ring {
			hb.ring[i] = bucket{}
		}
		hb.curStart = now
	}
	if hb.state == Open && !now.Before(hb.openedAt.Add(s.cfg.OpenTimeout)) {
		s.transition(name, hb, HalfOpen)
		hb.probeOK = 0
	}
}

// transition moves hb to next and notifies the observer. Callers hold
// s.mu.
func (s *Set) transition(name string, hb *hostBreaker, next State) {
	if hb.state == next {
		return
	}
	from := hb.state
	hb.state = next
	if next == Open {
		hb.opens++
	}
	if s.cfg.OnTransition != nil {
		s.cfg.OnTransition(name, from, next)
	}
}

// rate returns the windowed failure rate and sample count. Callers hold
// s.mu and have advanced the ring.
func (hb *hostBreaker) rate() (float64, int) {
	var fail, total int
	for _, b := range hb.ring {
		fail += b.failures
		total += b.failures + b.successes
	}
	if total == 0 {
		return 0, 0
	}
	return float64(fail) / float64(total), total
}

// ReportFailure records one failure outcome for the host: a watchdog
// termination, a detector suspect/dead transition, or any other signal
// that placements on the host went wrong.
func (s *Set) ReportFailure(host string) {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	hb := s.host(host, now)
	s.advance(host, hb, now)
	hb.ring[hb.cur].failures++
	switch hb.state {
	case Closed:
		if r, n := hb.rate(); n >= s.cfg.MinSamples && r >= s.cfg.FailureThreshold {
			s.transition(host, hb, Open)
			hb.openedAt = now
		}
	case HalfOpen:
		// A failed probe restarts the quarantine in full.
		s.transition(host, hb, Open)
		hb.openedAt = now
		hb.probeOK = 0
	}
}

// ReportSuccess records one successful task run on the host.
func (s *Set) ReportSuccess(host string) {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	hb := s.host(host, now)
	s.advance(host, hb, now)
	hb.ring[hb.cur].successes++
	if hb.state == HalfOpen {
		hb.probeOK++
		if hb.probeOK >= s.cfg.ProbeSuccesses {
			s.transition(host, hb, Closed)
			// A freshly closed breaker starts from a clean slate: the
			// quarantine already paid for the recorded failures.
			for i := range hb.ring {
				hb.ring[i] = bucket{}
			}
			hb.ring[hb.cur].successes = hb.probeOK
			hb.curStart = now
			hb.probeOK = 0
		}
	}
}

// Allow reports whether the host may take a placement right now:
// closed and half-open (probe traffic) admit, open rejects.
func (s *Set) Allow(host string) bool {
	return s.State(host) != Open
}

// State returns the host's current state, applying the open → half-open
// timeout lazily. Unknown hosts are closed.
func (s *Set) State(host string) State {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	hb, ok := s.hosts[host]
	if !ok {
		return Closed
	}
	s.advance(host, hb, now)
	return hb.state
}

// Excluded returns the hosts whose breakers are currently open, sorted —
// the exclusion list placement paths merge into their own.
func (s *Set) Excluded() []string {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for name, hb := range s.hosts {
		s.advance(name, hb, now)
		if hb.state == Open {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// OpenFraction reports what share of the known hosts is currently open.
// total is the site's host count; known hosts the Set has never sampled
// count as closed. total <= 0 returns 0.
func (s *Set) OpenFraction(total int) float64 {
	if total <= 0 {
		return 0
	}
	open := len(s.Excluded())
	if open > total {
		open = total
	}
	return float64(open) / float64(total)
}

// HostStatus is one host's breaker snapshot, for the /v1/hosts API and
// simulator reports.
type HostStatus struct {
	Host        string  `json:"host"`
	State       string  `json:"breaker"`
	FailureRate float64 `json:"failure_rate"`
	Samples     int     `json:"samples"`
	Opens       int     `json:"opens"`
}

// Snapshot returns every known host's status, sorted by host name.
func (s *Set) Snapshot() []HostStatus {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]HostStatus, 0, len(s.hosts))
	for name, hb := range s.hosts {
		s.advance(name, hb, now)
		r, n := hb.rate()
		out = append(out, HostStatus{
			Host: name, State: hb.state.String(),
			FailureRate: r, Samples: n, Opens: hb.opens,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}
