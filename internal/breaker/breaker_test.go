package breaker

import (
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for driving the state machine
// deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClock() *fakeClock                   { return &fakeClock{t: time.Unix(0, 0)} }
func newSet(c *fakeClock, cfg Config) *Set   { cfg.Now = c.now; return New(cfg) }
func requireState(t *testing.T, s *Set, host string, want State) {
	t.Helper()
	if got := s.State(host); got != want {
		t.Fatalf("state(%s) = %v, want %v", host, got, want)
	}
}

func TestClosedUntilMinSamples(t *testing.T) {
	clk := newClock()
	s := newSet(clk, Config{MinSamples: 4})
	// Three straight failures: rate 1.0 but below the sample floor.
	for i := 0; i < 3; i++ {
		s.ReportFailure("h")
	}
	requireState(t, s, "h", Closed)
	if !s.Allow("h") {
		t.Fatal("closed breaker must allow placements")
	}
	// The fourth failure meets MinSamples at rate 1.0 >= 0.5: open.
	s.ReportFailure("h")
	requireState(t, s, "h", Open)
	if s.Allow("h") {
		t.Fatal("open breaker must reject placements")
	}
}

func TestRateBelowThresholdStaysClosed(t *testing.T) {
	clk := newClock()
	s := newSet(clk, Config{FailureThreshold: 0.5, MinSamples: 4})
	// 2 failures in 10 samples: rate 0.3 after the final failure.
	for i := 0; i < 7; i++ {
		s.ReportSuccess("h")
	}
	s.ReportFailure("h")
	s.ReportFailure("h")
	s.ReportFailure("h")
	requireState(t, s, "h", Closed)
}

func TestOpenToHalfOpenAfterTimeout(t *testing.T) {
	clk := newClock()
	s := newSet(clk, Config{MinSamples: 2, OpenTimeout: 10 * time.Second})
	s.ReportFailure("h")
	s.ReportFailure("h")
	requireState(t, s, "h", Open)
	// One tick short of the timeout: still quarantined.
	clk.advance(10*time.Second - time.Millisecond)
	requireState(t, s, "h", Open)
	clk.advance(time.Millisecond)
	requireState(t, s, "h", HalfOpen)
	if !s.Allow("h") {
		t.Fatal("half-open breaker must admit probe traffic")
	}
}

func TestHalfOpenProbeSuccessesClose(t *testing.T) {
	clk := newClock()
	s := newSet(clk, Config{MinSamples: 2, OpenTimeout: time.Second, ProbeSuccesses: 2})
	s.ReportFailure("h")
	s.ReportFailure("h")
	clk.advance(time.Second)
	requireState(t, s, "h", HalfOpen)
	s.ReportSuccess("h")
	requireState(t, s, "h", HalfOpen) // one probe is not enough
	s.ReportSuccess("h")
	requireState(t, s, "h", Closed)
	// The close wiped the failure history: one new failure (below
	// MinSamples with the re-seeded successes) must not re-open.
	s.ReportFailure("h")
	requireState(t, s, "h", Closed)
}

func TestHalfOpenFailureReopens(t *testing.T) {
	clk := newClock()
	s := newSet(clk, Config{MinSamples: 2, OpenTimeout: time.Second})
	s.ReportFailure("h")
	s.ReportFailure("h")
	clk.advance(time.Second)
	requireState(t, s, "h", HalfOpen)
	s.ReportFailure("h")
	requireState(t, s, "h", Open)
	// The quarantine restarted in full from the failed probe.
	clk.advance(time.Second - time.Millisecond)
	requireState(t, s, "h", Open)
	clk.advance(time.Millisecond)
	requireState(t, s, "h", HalfOpen)
}

func TestWindowAgesOutFailures(t *testing.T) {
	clk := newClock()
	s := newSet(clk, Config{Window: 6 * time.Second, Buckets: 6, MinSamples: 4})
	s.ReportFailure("h")
	s.ReportFailure("h")
	s.ReportFailure("h")
	// A full window later the old failures are gone: the next failure is
	// 1 sample, below MinSamples, so the breaker stays closed.
	clk.advance(7 * time.Second)
	s.ReportFailure("h")
	requireState(t, s, "h", Closed)
	if r, n := s.hosts["h"].rate(); n != 1 || r != 1.0 {
		t.Fatalf("windowed rate = %.2f over %d samples, want 1.00 over 1", r, n)
	}
}

func TestExcludedAndOpenFraction(t *testing.T) {
	clk := newClock()
	s := newSet(clk, Config{MinSamples: 2})
	s.ReportFailure("b")
	s.ReportFailure("b")
	s.ReportFailure("a")
	s.ReportFailure("a")
	s.ReportSuccess("c")
	got := s.Excluded()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Excluded() = %v, want [a b]", got)
	}
	if f := s.OpenFraction(4); f != 0.5 {
		t.Fatalf("OpenFraction(4) = %v, want 0.5", f)
	}
	if f := s.OpenFraction(0); f != 0 {
		t.Fatalf("OpenFraction(0) = %v, want 0", f)
	}
}

func TestUnknownHostIsClosed(t *testing.T) {
	s := newSet(newClock(), Config{})
	requireState(t, s, "never-seen", Closed)
	if !s.Allow("never-seen") {
		t.Fatal("unknown host must be allowed")
	}
}

func TestTransitionsObserved(t *testing.T) {
	clk := newClock()
	type tr struct {
		host     string
		from, to State
	}
	var seen []tr
	cfg := Config{MinSamples: 2, OpenTimeout: time.Second, ProbeSuccesses: 1,
		OnTransition: func(h string, from, to State) { seen = append(seen, tr{h, from, to}) }}
	s := newSet(clk, cfg)
	s.ReportFailure("h")
	s.ReportFailure("h") // closed -> open
	clk.advance(time.Second)
	s.ReportSuccess("h") // open -> half-open (lazy) -> closed
	want := []tr{{"h", Closed, Open}, {"h", Open, HalfOpen}, {"h", HalfOpen, Closed}}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestSnapshotCountsOpens(t *testing.T) {
	clk := newClock()
	s := newSet(clk, Config{MinSamples: 2, OpenTimeout: time.Second, ProbeSuccesses: 1})
	// Two full open cycles.
	for cycle := 0; cycle < 2; cycle++ {
		s.ReportFailure("h")
		s.ReportFailure("h")
		clk.advance(time.Second)
		s.ReportSuccess("h")
	}
	snap := s.Snapshot()
	if len(snap) != 1 || snap[0].Host != "h" {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap[0].Opens != 2 {
		t.Fatalf("opens = %d, want 2", snap[0].Opens)
	}
	if snap[0].State != "closed" {
		t.Fatalf("state = %q, want closed", snap[0].State)
	}
}
