// Package chaos is the testbed's fault-injection harness: a
// deterministic, seedable actor that kills, partitions, degrades, and
// recovers hosts while applications execute, so failure detection and
// mid-run rescheduling can be exercised under load instead of with
// hand-placed h.Fail() calls.
//
// A Scenario is a script of timed Events. Targets may be explicit host
// names, a whole site, or a fraction of the eligible population chosen
// deterministically from the injector's seed — the same seed always
// hits the same hosts, so soak failures reproduce. Run plays a scenario
// against the wall clock as a background actor; Apply executes one
// event immediately for synchronous drivers (vdce-sim, benchmarks).
package chaos

import (
	"cmp"
	"context"
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"strings"
	"sync"
	"time"

	"vdce/internal/testbed"
)

// Action is one fault-injection primitive.
type Action string

const (
	// Kill crashes the targets: execution stops and monitors go silent.
	Kill Action = "kill"
	// Recover restarts crashed targets.
	Recover Action = "recover"
	// Degrade inflates the targets' workload by Event.Load — enough to
	// cross the Application Controller's load threshold.
	Degrade Action = "degrade"
	// Restore removes previously injected load.
	Restore Action = "restore"
	// PartitionSite cuts every host of Event.Site off the network while
	// they keep computing — only heartbeat silence reveals it.
	PartitionSite Action = "partition-site"
	// HealSite reconnects a partitioned site.
	HealSite Action = "heal-site"
	// Flap toggles each target: up hosts crash, crashed hosts restart.
	// A repeated Flap on one host scripts the oscillating alive/dead
	// pattern that per-host circuit breakers exist to quarantine.
	Flap Action = "flap"
	// Brownout degrades the targets by Event.Load and remembers exactly
	// which hosts it hit; BrownoutEnd restores those same hosts with the
	// same load, unlike fractional Restore which re-picks targets.
	Brownout Action = "brownout"
	// BrownoutEnd lifts a previous Brownout. With no explicit targets it
	// restores every host the injector has browned so far.
	BrownoutEnd Action = "brownout-end"
)

// Event is one scripted fault.
type Event struct {
	// At is the event's offset from scenario start.
	At time.Duration
	// Action selects the primitive.
	Action Action
	// Hosts are explicit targets. Empty means "pick Fraction of the
	// eligible population" (up hosts for Kill/Degrade, failed hosts for
	// Recover) with the injector's seeded RNG.
	Hosts []string
	// Site names the target for the site-wide actions.
	Site string
	// Fraction of the eligible population to target when Hosts is empty;
	// at least one host is always picked. Default 0.25.
	Fraction float64
	// Load is the Degrade/Restore contention delta. Default 0.5.
	Load float64
}

// Applied records one executed event with its resolved targets.
type Applied struct {
	Event
	// Targets are the hosts the event actually hit.
	Targets []string
	// Wall is when the injector applied it.
	Wall time.Time
}

// String renders the applied event for scenario logs.
func (a Applied) String() string {
	target := strings.Join(a.Targets, ",")
	if a.Site != "" {
		target = "site " + a.Site
	}
	return fmt.Sprintf("+%-8v %-14s %s", a.At, a.Action, target)
}

// Scenario is a named fault script. Events play in At order.
type Scenario struct {
	Name   string
	Events []Event
}

// Injector applies scenarios to a testbed.
type Injector struct {
	tb *testbed.Testbed
	// OnApply, when set, observes every applied event as it lands —
	// live scenario logging for servers. Set it before use; it is
	// called outside the injector's lock.
	OnApply func(Applied)

	mu  sync.Mutex
	rng *rand.Rand
	log []Applied
	// browned remembers per-host injected brownout load so BrownoutEnd
	// restores exactly the hosts (and amounts) Brownout degraded.
	browned map[string]float64
}

// NewInjector returns an injector whose random target choices derive
// deterministically from seed.
func NewInjector(tb *testbed.Testbed, seed int64) *Injector {
	return &Injector{tb: tb, rng: rand.New(rand.NewSource(seed)), browned: make(map[string]float64)}
}

// pick chooses max(1, round(frac*len(eligible))) hosts from the eligible
// set, deterministically for a given injector seed and call sequence.
// Candidates are considered in sorted-name order so the testbed's map
// iteration order never leaks into target choice.
func (in *Injector) pick(eligible []*testbed.Host, frac float64) []*testbed.Host {
	if len(eligible) == 0 {
		return nil
	}
	if frac <= 0 {
		frac = 0.25
	}
	n := int(float64(len(eligible))*frac + 0.5)
	if n < 1 {
		n = 1
	}
	if n > len(eligible) {
		n = len(eligible)
	}
	sorted := append([]*testbed.Host(nil), eligible...)
	slices.SortFunc(sorted, func(a, b *testbed.Host) int { return strings.Compare(a.Name, b.Name) })
	idx := in.rng.Perm(len(sorted))[:n]
	sort.Ints(idx)
	out := make([]*testbed.Host, n)
	for i, j := range idx {
		out[i] = sorted[j]
	}
	return out
}

// resolve maps an event to its target host models.
func (in *Injector) resolve(e Event) ([]*testbed.Host, error) {
	if e.Site != "" || e.Action == PartitionSite || e.Action == HealSite {
		site, err := in.tb.Site(e.Site)
		if err != nil {
			return nil, err
		}
		return site.Hosts, nil
	}
	if len(e.Hosts) > 0 {
		out := make([]*testbed.Host, 0, len(e.Hosts))
		for _, name := range e.Hosts {
			h, err := in.tb.Host(name)
			if err != nil {
				return nil, err
			}
			out = append(out, h)
		}
		return out, nil
	}
	// Fractional targeting over the action's eligible population.
	var eligible []*testbed.Host
	for _, h := range in.tb.AllHosts() {
		switch e.Action {
		case Recover:
			if h.Failed() {
				eligible = append(eligible, h)
			}
		case Flap:
			// A flap toggles, so every host is eligible regardless of
			// current state.
			eligible = append(eligible, h)
		case BrownoutEnd:
			// Targets come from the browned memory, resolved in apply.
			if _, ok := in.browned[h.Name]; ok {
				eligible = append(eligible, h)
			}
		default:
			if h.Reachable() {
				eligible = append(eligible, h)
			}
		}
	}
	if e.Action == BrownoutEnd {
		// Restore everything remembered, never a fraction of it.
		return eligible, nil
	}
	return in.pick(eligible, e.Fraction), nil
}

// Apply executes one event immediately and records it.
func (in *Injector) Apply(e Event) (Applied, error) {
	a, err := in.apply(e)
	if err == nil && in.OnApply != nil {
		in.OnApply(a)
	}
	return a, err
}

func (in *Injector) apply(e Event) (Applied, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	targets, err := in.resolve(e)
	if err != nil {
		return Applied{}, err
	}
	load := e.Load
	if load <= 0 {
		load = 0.5
	}
	names := make([]string, len(targets))
	for i, h := range targets {
		names[i] = h.Name
		switch e.Action {
		case Kill:
			h.Fail()
		case Recover:
			h.Recover()
		case Degrade:
			h.InjectLoad(load)
		case Restore:
			h.InjectLoad(-load)
		case PartitionSite:
			h.Partition()
		case HealSite:
			h.Heal()
		case Flap:
			if h.Failed() {
				h.Recover()
			} else {
				h.Fail()
			}
		case Brownout:
			h.InjectLoad(load)
			in.browned[h.Name] += load
		case BrownoutEnd:
			if l, ok := in.browned[h.Name]; ok {
				h.InjectLoad(-l)
				delete(in.browned, h.Name)
			}
		default:
			return Applied{}, fmt.Errorf("chaos: unknown action %q", e.Action)
		}
	}
	a := Applied{Event: e, Targets: names, Wall: time.Now()}
	in.log = append(in.log, a)
	return a, nil
}

// Run plays the scenario as a background actor: it sleeps to each
// event's offset (relative to the moment Run is called) and applies it.
// A canceled ctx stops the script early; events applied so far are
// returned either way. Events run in At order regardless of script
// order, and same-offset events keep their script order.
func (in *Injector) Run(ctx context.Context, sc Scenario) ([]Applied, error) {
	events := append([]Event(nil), sc.Events...)
	sortEvents(events)
	start := time.Now()
	var out []Applied
	for _, e := range events {
		if wait := e.At - time.Since(start); wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return out, ctx.Err()
			case <-t.C:
			}
		}
		a, err := in.Apply(e)
		if err != nil {
			return out, fmt.Errorf("chaos: scenario %s: %w", sc.Name, err)
		}
		out = append(out, a)
	}
	return out, nil
}

// Log returns every event applied so far, in application order.
func (in *Injector) Log() []Applied {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Applied(nil), in.log...)
}

// KillQuarter kills 25% of the up hosts at kill and recovers half of
// the crashed population at heal — the canonical soak scenario.
func KillQuarter(kill, heal time.Duration) Scenario {
	return Scenario{Name: "kill-quarter", Events: []Event{
		{At: kill, Action: Kill, Fraction: 0.25},
		{At: heal, Action: Recover, Fraction: 0.5},
	}}
}

// RollingRestart crashes each listed host in turn — one every period,
// down for downFor — so the outage walks across the fleet with at most
// a few hosts dark at once.
func RollingRestart(hosts []string, period, downFor time.Duration) Scenario {
	sc := Scenario{Name: "rolling-restart"}
	for i, h := range hosts {
		at := time.Duration(i) * period
		sc.Events = append(sc.Events,
			Event{At: at, Action: Kill, Hosts: []string{h}},
			Event{At: at + downFor, Action: Recover, Hosts: []string{h}},
		)
	}
	return sc
}

// SitePartition cuts the named site off the network at cut and heals it
// at heal. Hosts keep computing while dark: only the failure detector's
// heartbeat silence can drive recovery.
func SitePartition(site string, cut, heal time.Duration) Scenario {
	return Scenario{Name: "site-partition", Events: []Event{
		{At: cut, Action: PartitionSite, Site: site},
		{At: heal, Action: HealSite, Site: site},
	}}
}

// FlappingHost toggles one host up/down count times, once per period —
// the canonical circuit-breaker workload: the host keeps coming back
// just long enough to attract placements before dying again.
func FlappingHost(host string, period time.Duration, count int) Scenario {
	sc := Scenario{Name: "flapping-host"}
	for i := 0; i < count; i++ {
		sc.Events = append(sc.Events, Event{
			At: time.Duration(i+1) * period, Action: Flap, Hosts: []string{host},
		})
	}
	return sc
}

// BrownoutScenario degrades frac of the up hosts by load at start and
// lifts the degradation from exactly those hosts at end — a capacity
// brownout rather than an outage, for exercising load shedding.
func BrownoutScenario(start, end time.Duration, frac, load float64) Scenario {
	return Scenario{Name: "brownout", Events: []Event{
		{At: start, Action: Brownout, Fraction: frac, Load: load},
		{At: end, Action: BrownoutEnd},
	}}
}

// Randomized generates a reproducible random script: n events spread
// uniformly over span, drawn from kill/recover/degrade with small
// fractions. The same seed always yields the same script.
func Randomized(seed int64, span time.Duration, n int) Scenario {
	if span <= 0 {
		span = 4 * time.Second
	}
	rng := rand.New(rand.NewSource(seed))
	actions := []Action{Kill, Recover, Degrade}
	sc := Scenario{Name: fmt.Sprintf("randomized-%d", seed)}
	for i := 0; i < n; i++ {
		sc.Events = append(sc.Events, Event{
			At:       time.Duration(rng.Int63n(int64(span))),
			Action:   actions[rng.Intn(len(actions))],
			Fraction: 0.1 + rng.Float64()*0.15,
			Load:     0.3 + rng.Float64()*0.4,
		})
	}
	sortEvents(sc.Events)
	return sc
}

// sortEvents orders a script by offset, keeping same-offset events in
// script order.
func sortEvents(events []Event) {
	slices.SortStableFunc(events, func(a, b Event) int { return cmp.Compare(a.At, b.At) })
}

// Named resolves a CLI scenario name against a testbed, spreading the
// script over span. The names are the vdce-sim -chaos vocabulary.
func Named(name string, tb *testbed.Testbed, span time.Duration) (Scenario, error) {
	if span <= 0 {
		span = 4 * time.Second
	}
	switch name {
	case "kill-quarter":
		return KillQuarter(span/4, span*3/4), nil
	case "rolling-restart":
		hosts := tb.HostNames()
		period := span / time.Duration(len(hosts)+1)
		return RollingRestart(hosts, period, period/2), nil
	case "site-partition":
		// Partition the last site so the first (the scheduling home in
		// vdce-sim) survives to host the rescheduled work. On a
		// single-site system that would cut off every host with nowhere
		// left to recover onto — refuse instead of blacking out.
		if len(tb.Sites) < 2 {
			return Scenario{}, fmt.Errorf("chaos: site-partition needs >= 2 sites (testbed has %d); no site would survive to absorb the rescheduled work", len(tb.Sites))
		}
		site := tb.Sites[len(tb.Sites)-1].Name
		return SitePartition(site, span/4, span*3/4), nil
	case "flapping-host":
		// Flap the first host (sorted order, so deterministic) six
		// times: three full down/up cycles within the span.
		hosts := tb.HostNames()
		sort.Strings(hosts)
		const flaps = 6
		return FlappingHost(hosts[0], span/(flaps+1), flaps), nil
	case "brownout":
		return BrownoutScenario(span/4, span*3/4, 0.5, 0.6), nil
	default:
		return Scenario{}, fmt.Errorf("chaos: unknown scenario %q (want kill-quarter|rolling-restart|site-partition|flapping-host|brownout)", name)
	}
}
