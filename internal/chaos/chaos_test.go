package chaos

import (
	"context"
	"testing"
	"time"

	"vdce/internal/testbed"
)

func build(t *testing.T, sites, hosts int) *testbed.Testbed {
	t.Helper()
	tb, err := testbed.Build(testbed.Config{Sites: sites, HostsPerGroup: hosts, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func failedNames(tb *testbed.Testbed) []string {
	var out []string
	for _, h := range tb.AllHosts() {
		if h.Failed() {
			out = append(out, h.Name)
		}
	}
	return out
}

func TestKillTargetsAreDeterministicPerSeed(t *testing.T) {
	pickTargets := func() []string {
		tb := build(t, 2, 8)
		in := NewInjector(tb, 42)
		a, err := in.Apply(Event{Action: Kill, Fraction: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		return a.Targets
	}
	first, second := pickTargets(), pickTargets()
	if len(first) != 4 {
		t.Fatalf("killed %d hosts of 16 at fraction 0.25", len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same seed picked different targets: %v vs %v", first, second)
		}
	}
	// A different seed should (for this population) pick differently.
	tb := build(t, 2, 8)
	other, err := NewInjector(tb, 43).Apply(Event{Action: Kill, Fraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range first {
		if other.Targets[i] != first[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 picked identical targets %v", first)
	}
}

func TestApplyActions(t *testing.T) {
	tb := build(t, 2, 4)
	in := NewInjector(tb, 7)

	// Kill then recover an explicit host.
	name := tb.Sites[0].Hosts[0].Name
	if _, err := in.Apply(Event{Action: Kill, Hosts: []string{name}}); err != nil {
		t.Fatal(err)
	}
	h, _ := tb.Host(name)
	if !h.Failed() {
		t.Fatal("killed host not failed")
	}
	if got := failedNames(tb); len(got) != 1 || got[0] != name {
		t.Fatalf("failed set = %v", got)
	}
	// Recover with fractional targeting picks only from failed hosts.
	a, err := in.Apply(Event{Action: Recover, Fraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Targets) != 1 || a.Targets[0] != name {
		t.Fatalf("recover targets = %v", a.Targets)
	}
	if h.Failed() {
		t.Fatal("recovered host still failed")
	}

	// Degrade/restore adjust injected load.
	before := h.CurrentLoad()
	if _, err := in.Apply(Event{Action: Degrade, Hosts: []string{name}, Load: 0.4}); err != nil {
		t.Fatal(err)
	}
	if got := h.CurrentLoad(); got < before+0.3 {
		t.Fatalf("degrade load %v -> %v", before, got)
	}
	if _, err := in.Apply(Event{Action: Restore, Hosts: []string{name}, Load: 0.4}); err != nil {
		t.Fatal(err)
	}

	// Partition a site: hosts unreachable but not failed.
	site := tb.Sites[1]
	if _, err := in.Apply(Event{Action: PartitionSite, Site: site.Name}); err != nil {
		t.Fatal(err)
	}
	for _, h := range site.Hosts {
		if h.Reachable() || h.Failed() {
			t.Fatalf("partitioned host %s: reachable=%v failed=%v", h.Name, h.Reachable(), h.Failed())
		}
		if err := h.Echo(); err == nil {
			t.Fatalf("partitioned host %s answered echo", h.Name)
		}
	}
	if _, err := in.Apply(Event{Action: HealSite, Site: site.Name}); err != nil {
		t.Fatal(err)
	}
	for _, h := range site.Hosts {
		if !h.Reachable() {
			t.Fatalf("healed host %s unreachable", h.Name)
		}
	}

	if _, err := in.Apply(Event{Action: Action("nuke")}); err == nil {
		t.Fatal("unknown action accepted")
	}
	if _, err := in.Apply(Event{Action: Kill, Hosts: []string{"no-such-host"}}); err == nil {
		t.Fatal("unknown host accepted")
	}
	if got := len(in.Log()); got != 6 {
		t.Fatalf("log has %d entries, want 6 successful applies", got)
	}
}

func TestRunPlaysScriptInOrderAndHonorsCancel(t *testing.T) {
	tb := build(t, 1, 4)
	in := NewInjector(tb, 9)
	name := tb.Sites[0].Hosts[0].Name
	sc := Scenario{Name: "t", Events: []Event{
		// Deliberately out of order: Run must sort by offset.
		{At: 10 * time.Millisecond, Action: Recover, Hosts: []string{name}},
		{At: 0, Action: Kill, Hosts: []string{name}},
	}}
	applied, err := in.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 2 || applied[0].Action != Kill || applied[1].Action != Recover {
		t.Fatalf("applied = %+v", applied)
	}
	h, _ := tb.Host(name)
	if h.Failed() {
		t.Fatal("host not recovered after script")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	applied, err = in.Run(ctx, Scenario{Name: "late", Events: []Event{
		{At: time.Hour, Action: Kill, Hosts: []string{name}},
	}})
	if err == nil || len(applied) != 0 {
		t.Fatalf("canceled run: applied=%v err=%v", applied, err)
	}
}

func TestScenarioBuilders(t *testing.T) {
	sc := KillQuarter(10*time.Millisecond, 30*time.Millisecond)
	if len(sc.Events) != 2 || sc.Events[0].Action != Kill || sc.Events[1].Action != Recover {
		t.Fatalf("kill-quarter = %+v", sc.Events)
	}
	rr := RollingRestart([]string{"a", "b"}, 10*time.Millisecond, 5*time.Millisecond)
	if len(rr.Events) != 4 {
		t.Fatalf("rolling-restart = %+v", rr.Events)
	}
	sp := SitePartition("s1", 0, time.Millisecond)
	if sp.Events[0].Action != PartitionSite || sp.Events[1].Action != HealSite {
		t.Fatalf("site-partition = %+v", sp.Events)
	}

	r1, r2 := Randomized(3, time.Second, 8), Randomized(3, time.Second, 8)
	if len(r1.Events) != 8 {
		t.Fatalf("randomized produced %d events", len(r1.Events))
	}
	for i := range r1.Events {
		if r1.Events[i].At != r2.Events[i].At || r1.Events[i].Action != r2.Events[i].Action {
			t.Fatal("randomized scenario not reproducible from seed")
		}
		if i > 0 && r1.Events[i].At < r1.Events[i-1].At {
			t.Fatal("randomized events not time-sorted")
		}
	}

	tb := build(t, 2, 2)
	for _, name := range []string{"kill-quarter", "rolling-restart", "site-partition"} {
		if _, err := Named(name, tb, time.Second); err != nil {
			t.Fatalf("Named(%s): %v", name, err)
		}
	}
	if _, err := Named("bogus", tb, time.Second); err == nil {
		t.Fatal("unknown scenario name accepted")
	}
	// A single-site testbed must refuse site-partition: every host would
	// be cut off with no surviving site to reschedule onto.
	if _, err := Named("site-partition", build(t, 1, 4), time.Second); err == nil {
		t.Fatal("site-partition accepted on a single-site testbed")
	}
}
