package control

import (
	"context"
	"strings"
	"testing"
	"time"

	"vdce/internal/afg"
	"vdce/internal/core"
	"vdce/internal/netmodel"
	"vdce/internal/protocol"
	"vdce/internal/repository"
	"vdce/internal/tasklib"
	"vdce/internal/testbed"
)

// startSite builds a one-site testbed and serves its Site Manager.
func startSite(t *testing.T, name string, hosts int) (*SiteManager, *testbed.Testbed) {
	t.Helper()
	tb, err := testbed.Build(testbed.Config{Sites: 1, HostsPerGroup: hosts, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	site := tb.Sites[0]
	site.Repo.Site = name // align repo site name with caller's label
	names := make([]string, len(site.Hosts))
	for i, h := range site.Hosts {
		names[i] = h.Name
	}
	if err := tasklib.Default().InstallInto(site.Repo, names); err != nil {
		t.Fatal(err)
	}
	sm, err := StartSiteManager(core.NewLocalSite(site.Repo), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sm.Close() })
	return sm, tb
}

func TestRemoteHostSelectionMatchesLocal(t *testing.T) {
	sm, _ := startSite(t, "siteX", 4)
	remote, err := DialSite("siteX", sm.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	if err := remote.Ping(); err != nil {
		t.Fatal(err)
	}

	g, err := tasklib.BuildLinearEquationSolver(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range g.Tasks {
		task.Props.MachineType = "" // the random testbed may lack SUN Solaris
	}
	viaRPC, err := remote.HostSelection(g)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sm.Local().HostSelection(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaRPC) != len(direct) {
		t.Fatalf("selection sizes differ: %d vs %d", len(viaRPC), len(direct))
	}
	for id, want := range direct {
		got := viaRPC[id]
		if got.Err != want.Err || got.Predicted != want.Predicted || len(got.Hosts) != len(want.Hosts) {
			t.Fatalf("task %d: rpc %+v != local %+v", id, got, want)
		}
		for i := range want.Hosts {
			if got.Hosts[i] != want.Hosts[i] {
				t.Fatalf("task %d host %d: %s != %s", id, i, got.Hosts[i], want.Hosts[i])
			}
		}
	}
}

func TestRemoteSiteInScheduler(t *testing.T) {
	// Local site is slow; remote site (over real TCP RPC) is identical.
	// The distributed scheduler must function with a wire remote.
	smA, _ := startSite(t, "siteA", 2)
	smB, _ := startSite(t, "siteB", 2)
	remoteB, err := DialSite("siteB", smB.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer remoteB.Close()

	net, err := netmodel.New([]string{"siteA", "siteB"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := tasklib.BuildC3IPipeline(32, 9)
	if err != nil {
		t.Fatal(err)
	}
	sched := core.NewScheduler(smA.Local(), []core.SiteService{remoteB}, net, 1)
	cost := func(id afg.TaskID) float64 {
		d, err := smA.Local().Oracle.BaseTimeFor(g.Task(id).Name)
		if err != nil {
			t.Fatalf("cost: %v", err)
		}
		return d.Seconds()
	}
	table, err := sched.Schedule(g, cost)
	if err != nil {
		t.Fatal(err)
	}
	if err := table.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadAndFailureRPC(t *testing.T) {
	sm, tb := startSite(t, "siteW", 2)
	remote, err := DialSite("siteW", sm.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	rep := RemoteReporter{Site: remote}
	host := tb.Sites[0].Hosts[0].Name

	batch := protocol.WorkloadBatch{Site: "siteW", Group: "g", Samples: []protocol.HostSample{
		{Host: host, Sample: repository.WorkloadSample{CPULoad: 0.42, AvailMemBytes: 123, Time: time.Unix(10, 0)}},
	}}
	if err := rep.ApplyWorkloads(batch); err != nil {
		t.Fatal(err)
	}
	rec, err := sm.Repo().Resources.Host(host)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CPULoad != 0.42 || rec.AvailMem != 123 {
		t.Fatalf("workload not applied: %+v", rec)
	}
	if sm.WorkloadUpdates() != 1 {
		t.Fatalf("updates = %d", sm.WorkloadUpdates())
	}

	if err := rep.ApplyFailure(protocol.FailureNotice{Host: host, Detected: time.Now()}); err != nil {
		t.Fatal(err)
	}
	rec, _ = sm.Repo().Resources.Host(host)
	if rec.Status != repository.HostDown {
		t.Fatal("failure not applied")
	}
	if err := rep.ApplyRecovery(protocol.RecoveryNotice{Host: host, Detected: time.Now()}); err != nil {
		t.Fatal(err)
	}
	rec, _ = sm.Repo().Resources.Host(host)
	if rec.Status != repository.HostUp {
		t.Fatal("recovery not applied")
	}

	// Execution records flow into the task-performance database.
	var ack protocol.Ack
	err = remote.client.Call(protocol.SiteServiceName+".RecordExecution",
		protocol.ExecutionRecord{Task: "LU_Decomposition", Host: host, Elapsed: time.Second, At: time.Now()}, &ack)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := sm.Repo().TaskPerf.MeasuredTime("LU_Decomposition", host); !ok || d != time.Second {
		t.Fatalf("execution record lost: %v %v", d, ok)
	}

	// Resource queries.
	var list protocol.ResourceList
	if err := remote.client.Call(protocol.SiteServiceName+".Resources",
		protocol.ResourceQuery{UpOnly: true}, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Hosts) != 2 {
		t.Fatalf("resources = %d hosts", len(list.Hosts))
	}
}

func TestGroupManagerFiltering(t *testing.T) {
	sm, tb := startSite(t, "siteF", 1)
	h := tb.Sites[0].Hosts[0]
	gm := NewGroupManager("siteF", "g0", []*testbed.Host{h}, sm, time.Hour)
	gm.Threshold = 0.1
	gm.MemThreshold = 1 << 40 // effectively disable the memory trigger

	mk := func(load float64) repository.WorkloadSample {
		return repository.WorkloadSample{CPULoad: load, AvailMemBytes: 1 << 20, Time: time.Now()}
	}
	// First sample always forwards.
	if err := gm.Ingest(h.Name, mk(0.30)); err != nil {
		t.Fatal(err)
	}
	// Small change suppressed.
	if err := gm.Ingest(h.Name, mk(0.35)); err != nil {
		t.Fatal(err)
	}
	// Big change forwards.
	if err := gm.Ingest(h.Name, mk(0.55)); err != nil {
		t.Fatal(err)
	}
	recv, fwd, _ := gm.Stats()
	if recv != 3 || fwd != 2 {
		t.Fatalf("received=%d forwarded=%d, want 3/2", recv, fwd)
	}
	if sm.WorkloadUpdates() != 2 {
		t.Fatalf("site saw %d updates, want 2", sm.WorkloadUpdates())
	}
	// The suppressed value never reached the repository.
	rec, _ := sm.Repo().Resources.Host(h.Name)
	if rec.CPULoad != 0.55 {
		t.Fatalf("repo load = %g", rec.CPULoad)
	}
}

func TestGroupManagerCumulativeDrift(t *testing.T) {
	// Regression guard: the filter compares against the last REPORTED
	// value, so a slow drift must eventually be reported.
	sm, tb := startSite(t, "siteD", 1)
	h := tb.Sites[0].Hosts[0]
	gm := NewGroupManager("siteD", "g0", []*testbed.Host{h}, sm, time.Hour)
	gm.Threshold = 0.1
	gm.MemThreshold = 1 << 40
	load := 0.0
	for i := 0; i < 10; i++ {
		load += 0.03 // each step below threshold, total far above
		if err := gm.Ingest(h.Name, repository.WorkloadSample{CPULoad: load, AvailMemBytes: 1, Time: time.Now()}); err != nil {
			t.Fatal(err)
		}
	}
	_, fwd, _ := gm.Stats()
	if fwd < 3 {
		t.Fatalf("drift never reported: forwarded=%d", fwd)
	}
}

func TestGroupManagerEchoDetection(t *testing.T) {
	sm, tb := startSite(t, "siteE", 3)
	hosts := tb.Sites[0].Hosts
	gm := NewGroupManager("siteE", "g0", hosts, sm, time.Hour)

	if err := gm.EchoRound(time.Now()); err != nil {
		t.Fatal(err)
	}
	if sm.FailureReports() != 0 {
		t.Fatal("healthy round produced reports")
	}
	hosts[1].Fail()
	if err := gm.EchoRound(time.Now()); err != nil {
		t.Fatal(err)
	}
	if !gm.Down(hosts[1].Name) {
		t.Fatal("failure not detected")
	}
	rec, _ := sm.Repo().Resources.Host(hosts[1].Name)
	if rec.Status != repository.HostDown {
		t.Fatal("repo not updated on failure")
	}
	// No duplicate reports while still down.
	before := sm.FailureReports()
	if err := gm.EchoRound(time.Now()); err != nil {
		t.Fatal(err)
	}
	if sm.FailureReports() != before {
		t.Fatal("duplicate failure report")
	}
	// Recovery flips it back.
	hosts[1].Recover()
	if err := gm.EchoRound(time.Now()); err != nil {
		t.Fatal(err)
	}
	if gm.Down(hosts[1].Name) {
		t.Fatal("recovery not detected")
	}
	rec, _ = sm.Repo().Resources.Host(hosts[1].Name)
	if rec.Status != repository.HostUp {
		t.Fatal("repo not updated on recovery")
	}
}

func TestGroupManagerRunLoop(t *testing.T) {
	sm, tb := startSite(t, "siteR", 2)
	hosts := tb.Sites[0].Hosts
	gm := NewGroupManager("siteR", "g0", hosts, sm, 5*time.Millisecond)
	gm.EchoPeriod = 5 * time.Millisecond
	gm.Threshold = 0 // forward everything

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { gm.Run(ctx); close(done) }()

	// Fail one host mid-run, then wait for the daemon loops to act.
	time.Sleep(30 * time.Millisecond)
	hosts[0].Fail()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		rec, _ := sm.Repo().Resources.Host(hosts[0].Name)
		if rec.Status == repository.HostDown {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done
	rec, _ := sm.Repo().Resources.Host(hosts[0].Name)
	if rec.Status != repository.HostDown {
		t.Fatal("run loop never detected the failure")
	}
	if sm.WorkloadUpdates() == 0 {
		t.Fatal("run loop forwarded no workloads")
	}
	recv, _, echoes := gm.Stats()
	if recv == 0 || echoes == 0 {
		t.Fatalf("stats: recv=%d echoes=%d", recv, echoes)
	}
}

func TestDialSiteFailure(t *testing.T) {
	if _, err := DialSite("x", "127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestSiteManagerDoubleClose(t *testing.T) {
	sm, _ := startSite(t, "siteC", 1)
	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sm.Close(); err != nil {
		t.Fatal("second close errored")
	}
	if !strings.Contains(sm.Addr(), ":") {
		t.Fatal("addr unreadable after close")
	}
}
