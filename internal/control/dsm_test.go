package control

import (
	"fmt"
	"sync"
	"testing"

	"vdce/internal/protocol"
)

func TestDSMOverRPC(t *testing.T) {
	sm, _ := startSite(t, "siteDSM", 1)
	remote, err := DialSite("siteDSM", sm.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	// Empty read.
	if _, found, err := remote.DSMRead("page"); err != nil || found {
		t.Fatalf("fresh read: %v %v", found, err)
	}
	// Write then read across the wire.
	if err := remote.DSMWrite("page", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, found, err := remote.DSMRead("page")
	if err != nil || !found || string(v) != "v1" {
		t.Fatalf("read back: %q %v %v", v, found, err)
	}
	// The in-process view is the same store.
	local, found, err := sm.DSM().Read("page")
	if err != nil || !found || string(local) != "v1" {
		t.Fatalf("local view: %q %v %v", local, found, err)
	}
	// CAS semantics over RPC.
	ok, _, err := remote.DSMCompareAndSwap("page", []byte("v1"), []byte("v2"))
	if err != nil || !ok {
		t.Fatalf("cas: %v %v", ok, err)
	}
	ok, cur, err := remote.DSMCompareAndSwap("page", []byte("v1"), []byte("v3"))
	if err != nil || ok || string(cur) != "v2" {
		t.Fatalf("stale cas: %v %q %v", ok, cur, err)
	}
	// Unknown op is rejected server-side.
	var resp protocol.DSMReply
	if err := remote.client.Call(protocol.SiteServiceName+".DSM",
		protocol.DSMRequest{Op: "explode"}, &resp); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestDSMOverRPCConcurrentCounters(t *testing.T) {
	sm, _ := startSite(t, "siteDSM2", 1)
	var clients []*RemoteSite
	for i := 0; i < 4; i++ {
		c, err := DialSite("siteDSM2", sm.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	if err := clients[0].DSMWrite("ctr", []byte("0")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *RemoteSite) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				for {
					cur, _, err := c.DSMRead("ctr")
					if err != nil {
						t.Errorf("read: %v", err)
						return
					}
					var n int
					fmt.Sscanf(string(cur), "%d", &n)
					ok, _, err := c.DSMCompareAndSwap("ctr", cur, []byte(fmt.Sprint(n+1)))
					if err != nil {
						t.Errorf("cas: %v", err)
						return
					}
					if ok {
						break
					}
				}
			}
		}(c)
	}
	wg.Wait()
	v, _, err := clients[0].DSMRead("ctr")
	if err != nil || string(v) != "100" {
		t.Fatalf("counter = %q (%v), want 100 — sequential consistency broken", v, err)
	}
}
