package control

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"vdce/internal/monitor"
	"vdce/internal/protocol"
	"vdce/internal/repository"
	"vdce/internal/testbed"
)

// Reporter is where a Group Manager sends its updates: a SiteManager in
// the same process, or an RPC-backed client for a remote VDCE server.
type Reporter interface {
	ApplyWorkloads(protocol.WorkloadBatch) error
	ApplyFailure(protocol.FailureNotice) error
	ApplyRecovery(protocol.RecoveryNotice) error
}

// RemoteReporter adapts a RemoteSite RPC client into a Reporter, for
// groups whose leader machine is not the VDCE server.
type RemoteReporter struct{ Site *RemoteSite }

// ApplyWorkloads forwards a batch over RPC.
func (r RemoteReporter) ApplyWorkloads(b protocol.WorkloadBatch) error {
	var a protocol.Ack
	return r.Site.client.Call(protocol.SiteServiceName+".ReportWorkloads", b, &a)
}

// ApplyFailure forwards a failure notice over RPC.
func (r RemoteReporter) ApplyFailure(n protocol.FailureNotice) error {
	var a protocol.Ack
	return r.Site.client.Call(protocol.SiteServiceName+".ReportFailure", n, &a)
}

// ApplyRecovery forwards a recovery notice over RPC.
func (r RemoteReporter) ApplyRecovery(n protocol.RecoveryNotice) error {
	var a protocol.Ack
	return r.Site.client.Call(protocol.SiteServiceName+".ReportRecovery", n, &a)
}

// GroupManager runs on each group leader machine: it collects Monitor
// daemon measurements, forwards to the Site Manager only the workloads
// that changed considerably since the previous report, and periodically
// checks all hosts in the group with echo packets, reporting failures.
type GroupManager struct {
	Site  string
	Group string
	// Threshold is the significant-change filter: a sample is forwarded
	// only if |load - lastReported| >= Threshold or available memory
	// changed by >= MemThreshold bytes. Zero thresholds forward
	// everything.
	Threshold    float64
	MemThreshold int64
	// EchoPeriod is the failure-detection cadence; EchoTimeout is how
	// long a host may stay silent before being declared down.
	EchoPeriod  time.Duration
	EchoTimeout time.Duration
	// Heartbeat, when set, receives every measurement the group's
	// monitor daemons deliver — BEFORE the significant-change filter —
	// so a failure detector can track per-host last-seen times from the
	// full stream. The filter exists to spare the Site Manager link;
	// heartbeats must not be filtered or a steady host would look
	// silent. Set it before Run starts.
	Heartbeat monitor.Sink

	hosts    []*testbed.Host
	daemons  []*monitor.Daemon
	reporter Reporter

	mu           sync.Mutex
	lastReported map[string]repository.WorkloadSample
	lastSeen     map[string]time.Time
	down         map[string]bool

	// counters for E5/E6
	received  atomic.Int64 // samples received from monitors
	forwarded atomic.Int64 // samples forwarded to the site manager
	echoes    atomic.Int64
}

// NewGroupManager builds a manager for the given hosts reporting to
// reporter. monitorPeriod parameterizes the per-host daemons.
func NewGroupManager(site, group string, hosts []*testbed.Host, reporter Reporter, monitorPeriod time.Duration) *GroupManager {
	gm := &GroupManager{
		Site:         site,
		Group:        group,
		Threshold:    0.05,
		MemThreshold: 16 << 20,
		EchoPeriod:   time.Second,
		EchoTimeout:  3 * time.Second,
		hosts:        hosts,
		reporter:     reporter,
		lastReported: make(map[string]repository.WorkloadSample),
		lastSeen:     make(map[string]time.Time),
		down:         make(map[string]bool),
	}
	for _, h := range hosts {
		gm.daemons = append(gm.daemons, monitor.NewDaemon(h, monitorPeriod))
	}
	return gm
}

// Stats returns (samples received, samples forwarded, echoes sent).
func (gm *GroupManager) Stats() (received, forwarded, echoes int64) {
	return gm.received.Load(), gm.forwarded.Load(), gm.echoes.Load()
}

// Ingest receives one monitor measurement, applies the
// significant-change filter, and forwards when warranted. Exposed for
// deterministic tests; Run wires it to the daemons.
func (gm *GroupManager) Ingest(host string, s repository.WorkloadSample) error {
	gm.received.Add(1)
	if gm.Heartbeat != nil {
		gm.Heartbeat(host, s)
	}
	gm.mu.Lock()
	prev, seen := gm.lastReported[host]
	significant := !seen ||
		abs(s.CPULoad-prev.CPULoad) >= gm.Threshold ||
		absI64(s.AvailMemBytes-prev.AvailMemBytes) >= gm.MemThreshold
	if significant {
		gm.lastReported[host] = s
	}
	gm.lastSeen[host] = s.Time
	gm.mu.Unlock()
	if !significant {
		return nil
	}
	gm.forwarded.Add(1)
	return gm.reporter.ApplyWorkloads(protocol.WorkloadBatch{
		Site: gm.Site, Group: gm.Group,
		Samples: []protocol.HostSample{{Host: host, Sample: s}},
	})
}

// EchoRound sends one echo to every host in the group and reports
// transitions: a newly unresponsive host is reported down, a recovered
// one up. now stamps the notices.
func (gm *GroupManager) EchoRound(now time.Time) error {
	for _, h := range gm.hosts {
		gm.echoes.Add(1)
		err := h.Echo()
		gm.mu.Lock()
		wasDown := gm.down[h.Name]
		gm.mu.Unlock()
		switch {
		case err != nil && !wasDown:
			gm.mu.Lock()
			gm.down[h.Name] = true
			gm.mu.Unlock()
			if rerr := gm.reporter.ApplyFailure(protocol.FailureNotice{
				Host: h.Name, Group: gm.Group, Detected: now,
			}); rerr != nil {
				return rerr
			}
		case err == nil && wasDown:
			gm.mu.Lock()
			gm.down[h.Name] = false
			gm.mu.Unlock()
			if rerr := gm.reporter.ApplyRecovery(protocol.RecoveryNotice{
				Host: h.Name, Group: gm.Group, Detected: now,
			}); rerr != nil {
				return rerr
			}
		}
	}
	return nil
}

// Down reports whether the manager currently believes host is down.
func (gm *GroupManager) Down(host string) bool {
	gm.mu.Lock()
	defer gm.mu.Unlock()
	return gm.down[host]
}

// Run starts the monitor daemons and the echo loop, until ctx is done.
func (gm *GroupManager) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for _, d := range gm.daemons {
		wg.Add(1)
		go func(d *monitor.Daemon) {
			defer wg.Done()
			d.Run(ctx, func(host string, s repository.WorkloadSample) {
				// Ingest errors indicate a dead site manager; the group
				// manager keeps trying (inter-site links flap).
				_ = gm.Ingest(host, s)
			})
		}(d)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(gm.EchoPeriod)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case now := <-t.C:
				_ = gm.EchoRound(now)
			}
		}
	}()
	wg.Wait()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func absI64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
