// Package control implements the VDCE Control Manager's Resource
// Controller: the Site Manager that owns a site's repository, serves the
// site's Application Scheduler interface over TCP RPC, and applies
// monitoring/failure updates; and the Group Manager that aggregates
// Monitor daemon measurements, forwards only significant changes, and
// detects host failures with periodic echoes.
package control

import (
	"encoding/json"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"

	"vdce/internal/afg"
	"vdce/internal/core"
	"vdce/internal/protocol"
	"vdce/internal/repository"
	"vdce/internal/services"
)

// SiteManager is the server software running on a VDCE Server: it
// bridges VDCE modules to the site databases and handles inter-site
// communication (the paper's description verbatim). It exposes the
// local Application Scheduler's host selection to remote sites via RPC,
// and hosts the site's distributed-shared-memory service (the paper's
// §5 extension).
type SiteManager struct {
	site  *core.LocalSite
	lis   net.Listener
	srv   *rpc.Server
	dsm   *services.DSM
	wg    sync.WaitGroup
	mu    sync.Mutex
	conns map[net.Conn]struct{}

	closed atomic.Bool
	// counters for the monitoring experiments
	workloadUpdates atomic.Int64
	failureReports  atomic.Int64

	// hooks intercept echo-detected failure/recovery notices before they
	// touch the repository (see InterceptFailureNotices).
	hooks atomic.Pointer[failureHooks]
}

// failureHooks routes failure-detection notices to an external policy.
type failureHooks struct {
	onFailure  func(protocol.FailureNotice) bool
	onRecovery func(protocol.RecoveryNotice) bool
}

// StartSiteManager serves the site's RPC interface on addr
// ("127.0.0.1:0" for an ephemeral port). The returned manager owns the
// listener; Close releases it.
func StartSiteManager(site *core.LocalSite, addr string) (*SiteManager, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("control: listen: %w", err)
	}
	sm := &SiteManager{
		site:  site,
		lis:   lis,
		srv:   rpc.NewServer(),
		dsm:   services.NewDSM(),
		conns: make(map[net.Conn]struct{}),
	}
	if err := sm.srv.RegisterName(protocol.SiteServiceName, &siteRPC{sm: sm}); err != nil {
		lis.Close()
		sm.dsm.Close()
		return nil, fmt.Errorf("control: register: %w", err)
	}
	sm.wg.Add(1)
	go sm.acceptLoop()
	return sm, nil
}

func (sm *SiteManager) acceptLoop() {
	defer sm.wg.Done()
	for {
		conn, err := sm.lis.Accept()
		if err != nil {
			return // listener closed
		}
		sm.mu.Lock()
		sm.conns[conn] = struct{}{}
		sm.mu.Unlock()
		sm.wg.Add(1)
		go func() {
			defer sm.wg.Done()
			sm.srv.ServeConn(conn)
			sm.mu.Lock()
			delete(sm.conns, conn)
			sm.mu.Unlock()
			conn.Close()
		}()
	}
}

// Addr returns the manager's listen address (for clients).
func (sm *SiteManager) Addr() string { return sm.lis.Addr().String() }

// SiteName returns the managed site's name.
func (sm *SiteManager) SiteName() string { return sm.site.SiteName() }

// Repo exposes the site repository (local components share it).
func (sm *SiteManager) Repo() *repository.Repository { return sm.site.Repo }

// Local returns the site's in-process scheduler service.
func (sm *SiteManager) Local() *core.LocalSite { return sm.site }

// Close stops serving and waits for in-flight connections to finish.
func (sm *SiteManager) Close() error {
	if sm.closed.Swap(true) {
		return nil
	}
	err := sm.lis.Close()
	sm.mu.Lock()
	for c := range sm.conns {
		c.Close()
	}
	sm.mu.Unlock()
	sm.wg.Wait()
	sm.dsm.Close()
	return err
}

// DSM exposes the site's shared-memory service to in-process callers.
func (sm *SiteManager) DSM() *services.DSM { return sm.dsm }

// WorkloadUpdates reports how many per-host workload writes the manager
// has applied (E5 accounting).
func (sm *SiteManager) WorkloadUpdates() int64 { return sm.workloadUpdates.Load() }

// FailureReports reports how many failure/recovery notices arrived.
func (sm *SiteManager) FailureReports() int64 { return sm.failureReports.Load() }

// ApplyWorkloads is the local (non-RPC) path Group Managers in the same
// process use: update the resource-performance database with the
// monitoring information. The whole batch lands as one copy-on-write
// epoch publish, so a monitor round costs schedulers one ranked-host
// cache invalidation instead of one per host.
func (sm *SiteManager) ApplyWorkloads(batch protocol.WorkloadBatch) error {
	samples := make([]repository.HostSample, len(batch.Samples))
	for i, s := range batch.Samples {
		samples[i] = repository.HostSample{Host: s.Host, Sample: s.Sample}
	}
	applied, err := sm.site.Repo.Resources.UpdateWorkloads(samples)
	sm.workloadUpdates.Add(int64(applied))
	return err
}

// InterceptFailureNotices installs hooks that see every echo-detected
// failure/recovery notice before the repository does; a hook returning
// true consumes the notice (no direct status flip). The failure
// detector installs these so echo reports become quorum votes — and
// liveness flips happen in single batched epochs — instead of each
// notice immediately rewriting the host's status.
func (sm *SiteManager) InterceptFailureNotices(
	onFailure func(protocol.FailureNotice) bool,
	onRecovery func(protocol.RecoveryNotice) bool,
) {
	sm.hooks.Store(&failureHooks{onFailure: onFailure, onRecovery: onRecovery})
}

// ApplyFailure marks a host down in the resource-performance database,
// unless an installed interceptor consumes the notice.
func (sm *SiteManager) ApplyFailure(n protocol.FailureNotice) error {
	sm.failureReports.Add(1)
	if h := sm.hooks.Load(); h != nil && h.onFailure != nil && h.onFailure(n) {
		return nil
	}
	return sm.site.Repo.Resources.SetStatus(n.Host, repository.HostDown)
}

// ApplyRecovery marks a host up again, unless an installed interceptor
// consumes the notice.
func (sm *SiteManager) ApplyRecovery(n protocol.RecoveryNotice) error {
	sm.failureReports.Add(1)
	if h := sm.hooks.Load(); h != nil && h.onRecovery != nil && h.onRecovery(n) {
		return nil
	}
	return sm.site.Repo.Resources.SetStatus(n.Host, repository.HostUp)
}

// RecordExecution updates the task-performance database with the
// execution time after an application execution completes.
func (sm *SiteManager) RecordExecution(rec protocol.ExecutionRecord) error {
	return sm.site.Repo.TaskPerf.RecordExecution(rec.Task, rec.Host, rec.Elapsed, rec.At)
}

// siteRPC is the RPC surface; kept separate so only intended methods are
// exported to the network.
type siteRPC struct {
	sm *SiteManager
}

// HostSelection runs the Host Selection Algorithm for a multicast AFG.
func (r *siteRPC) HostSelection(req protocol.HostSelectionRequest, resp *protocol.HostSelectionResponse) error {
	g, err := afg.DecodeJSON(req.GraphJSON)
	if err != nil {
		return err
	}
	sel, err := r.sm.site.HostSelection(g)
	if err != nil {
		return err
	}
	resp.Site = r.sm.SiteName()
	resp.Choices = make(map[int]core.HostChoice, len(sel))
	for id, c := range sel {
		resp.Choices[int(id)] = c
	}
	return nil
}

// ReportWorkloads applies a Group Manager's filtered batch.
func (r *siteRPC) ReportWorkloads(batch protocol.WorkloadBatch, _ *protocol.Ack) error {
	return r.sm.ApplyWorkloads(batch)
}

// ReportFailure applies an echo-detected failure.
func (r *siteRPC) ReportFailure(n protocol.FailureNotice, _ *protocol.Ack) error {
	return r.sm.ApplyFailure(n)
}

// ReportRecovery applies a detected recovery.
func (r *siteRPC) ReportRecovery(n protocol.RecoveryNotice, _ *protocol.Ack) error {
	return r.sm.ApplyRecovery(n)
}

// RecordExecution feeds the task-performance database.
func (r *siteRPC) RecordExecution(rec protocol.ExecutionRecord, _ *protocol.Ack) error {
	return r.sm.RecordExecution(rec)
}

// Resources answers resource queries (used by tools and tests).
func (r *siteRPC) Resources(q protocol.ResourceQuery, resp *protocol.ResourceList) error {
	var hosts []repository.ResourceInfo
	if q.UpOnly {
		hosts = r.sm.site.Repo.Resources.UpHosts()
	} else {
		hosts = r.sm.site.Repo.Resources.Hosts()
	}
	for _, h := range hosts {
		if q.Group != "" && h.Group != q.Group {
			continue
		}
		resp.Hosts = append(resp.Hosts, h)
	}
	return nil
}

// Ping answers liveness probes (inter-site coordination heartbeat).
func (r *siteRPC) Ping(_ protocol.Ack, _ *protocol.Ack) error { return nil }

// DSM serves the site's shared-memory pages to remote processes —
// the sequentially consistent store of the paper's §5 extension.
func (r *siteRPC) DSM(req protocol.DSMRequest, resp *protocol.DSMReply) error {
	switch req.Op {
	case "read":
		v, found, err := r.sm.dsm.Read(req.Key)
		if err != nil {
			return err
		}
		resp.Value, resp.Found = v, found
		return nil
	case "write":
		return r.sm.dsm.Write(req.Key, req.Value)
	case "cas":
		ok, cur, err := r.sm.dsm.CompareAndSwap(req.Key, req.Old, req.Value)
		if err != nil {
			return err
		}
		resp.Swapped, resp.Value = ok, cur
		return nil
	default:
		return fmt.Errorf("control: unknown DSM op %q", req.Op)
	}
}

// RemoteSite adapts a VDCE server's RPC endpoint to core.SiteService, so
// a local Application Scheduler can multicast AFGs to remote sites
// exactly as it calls its own host selection.
type RemoteSite struct {
	name   string
	client *rpc.Client
}

// DialSite connects to a remote Site Manager.
func DialSite(name, addr string) (*RemoteSite, error) {
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("control: dial %s: %w", addr, err)
	}
	return &RemoteSite{name: name, client: client}, nil
}

// SiteName implements core.SiteService.
func (r *RemoteSite) SiteName() string { return r.name }

// HostSelection implements core.SiteService over the wire.
func (r *RemoteSite) HostSelection(g *afg.Graph) (core.Selection, error) {
	data, err := json.Marshal(g)
	if err != nil {
		return nil, err
	}
	var resp protocol.HostSelectionResponse
	if err := r.client.Call(protocol.SiteServiceName+".HostSelection",
		protocol.HostSelectionRequest{GraphJSON: data}, &resp); err != nil {
		return nil, err
	}
	sel := make(core.Selection, len(resp.Choices))
	for id, c := range resp.Choices {
		sel[afg.TaskID(id)] = c
	}
	return sel, nil
}

// Ping checks liveness.
func (r *RemoteSite) Ping() error {
	var a protocol.Ack
	return r.client.Call(protocol.SiteServiceName+".Ping", protocol.Ack{}, &a)
}

// DSMRead fetches a shared-memory page from the remote site.
func (r *RemoteSite) DSMRead(key string) ([]byte, bool, error) {
	var resp protocol.DSMReply
	err := r.client.Call(protocol.SiteServiceName+".DSM", protocol.DSMRequest{Op: "read", Key: key}, &resp)
	return resp.Value, resp.Found, err
}

// DSMWrite stores a shared-memory page on the remote site.
func (r *RemoteSite) DSMWrite(key string, value []byte) error {
	var resp protocol.DSMReply
	return r.client.Call(protocol.SiteServiceName+".DSM", protocol.DSMRequest{Op: "write", Key: key, Value: value}, &resp)
}

// DSMCompareAndSwap atomically replaces a page if it still equals old.
func (r *RemoteSite) DSMCompareAndSwap(key string, old, value []byte) (bool, []byte, error) {
	var resp protocol.DSMReply
	err := r.client.Call(protocol.SiteServiceName+".DSM",
		protocol.DSMRequest{Op: "cas", Key: key, Old: old, Value: value}, &resp)
	return resp.Swapped, resp.Value, err
}

// Close releases the connection.
func (r *RemoteSite) Close() error { return r.client.Close() }
