package core

import (
	"fmt"
	"math/rand"
	"time"

	"vdce/internal/afg"
	"vdce/internal/netmodel"
	"vdce/internal/repository"
)

// The baseline policies the evaluation compares the VDCE scheduler
// against (experiment E2). All of them fill the same AllocationTable
// structure, computing Predicted values with the same prediction oracle
// so that simulated comparisons isolate the placement policy.

// baselineEnv bundles what every baseline needs. check() freezes one
// snapshot per site so the whole baseline run reads a coherent view.
type baselineEnv struct {
	g     *afg.Graph
	sites []*LocalSite
	snaps []*repository.Snapshot
	net   *netmodel.Network
}

func (e *baselineEnv) check() error {
	if len(e.sites) == 0 {
		return ErrNoSites
	}
	e.snaps = make([]*repository.Snapshot, len(e.sites))
	for i, s := range e.sites {
		e.snaps[i] = s.Snapshot()
	}
	return e.g.Validate()
}

// transferFor sums the input transfer times of task id if placed on
// destSite, given prior placements.
func (e *baselineEnv) transferFor(id afg.TaskID, destSite string, placedSite map[afg.TaskID]string) (time.Duration, error) {
	var xfer time.Duration
	for _, edge := range e.g.InEdges(id) {
		src, ok := placedSite[edge.From]
		if !ok {
			return 0, fmt.Errorf("core: parent %d of %d unplaced", edge.From, id)
		}
		t, err := e.net.TransferTime(e.g.EdgeSize(edge), src, destSite)
		if err != nil {
			return 0, err
		}
		xfer += t
	}
	return xfer, nil
}

// siteOptions lists, per site, the host set a task would get there (best
// hosts for the deterministic policies, or all ranked hosts for random).
type siteOption struct {
	site   *LocalSite
	snap   *repository.Snapshot
	ranked []RankedHost
	nodes  int
}

func (e *baselineEnv) optionsFor(task *afg.Task) []siteOption {
	var out []siteOption
	for i, s := range e.sites {
		snap := e.snaps[i]
		ranked := s.RankedHostsAt(snap, task)
		nodes := RequiredNodesAt(snap, task)
		if len(ranked) < nodes || len(ranked) == 0 {
			continue
		}
		out = append(out, siteOption{site: s, snap: snap, ranked: ranked, nodes: nodes})
	}
	return out
}

// ScheduleRandom places every task on a uniformly random eligible site
// and random eligible host set within it.
func ScheduleRandom(g *afg.Graph, sites []*LocalSite, net *netmodel.Network, seed int64) (*AllocationTable, error) {
	env := &baselineEnv{g: g, sites: sites, net: net}
	if err := env.check(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	table := &AllocationTable{App: g.Name + " [random]"}
	placed := make(map[afg.TaskID]string)
	for _, id := range order {
		task := g.Task(id)
		opts := env.optionsFor(task)
		if len(opts) == 0 {
			return nil, fmt.Errorf("%w: task %d (%s)", ErrNoEligibleSite, id, task.Name)
		}
		opt := opts[rng.Intn(len(opts))]
		perm := rng.Perm(len(opt.ranked))[:opt.nodes]
		hosts := make([]string, opt.nodes)
		for i, pi := range perm {
			hosts[i] = opt.ranked[pi].Name
		}
		pred, err := opt.site.PredictSetAt(opt.snap, task, hosts)
		if err != nil {
			return nil, err
		}
		xfer, err := env.transferFor(id, opt.site.SiteName(), placed)
		if err != nil {
			return nil, err
		}
		table.Entries = append(table.Entries, Placement{
			Task: id, TaskName: task.Name, Site: opt.site.SiteName(),
			Hosts: hosts, Predicted: pred, TransferIn: xfer,
		})
		placed[id] = opt.site.SiteName()
	}
	return table, table.Validate(g)
}

// ScheduleRoundRobin deals tasks across sites in rotation, and across
// each site's eligible hosts in rotation, ignoring predictions entirely.
func ScheduleRoundRobin(g *afg.Graph, sites []*LocalSite, net *netmodel.Network) (*AllocationTable, error) {
	env := &baselineEnv{g: g, sites: sites, net: net}
	if err := env.check(); err != nil {
		return nil, err
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	table := &AllocationTable{App: g.Name + " [round-robin]"}
	placed := make(map[afg.TaskID]string)
	siteCursor := 0
	hostCursor := make(map[string]int)
	for _, id := range order {
		task := g.Task(id)
		opts := env.optionsFor(task)
		if len(opts) == 0 {
			return nil, fmt.Errorf("%w: task %d (%s)", ErrNoEligibleSite, id, task.Name)
		}
		opt := opts[siteCursor%len(opts)]
		siteCursor++
		name := opt.site.SiteName()
		hosts := make([]string, opt.nodes)
		for i := range hosts {
			hosts[i] = opt.ranked[(hostCursor[name]+i)%len(opt.ranked)].Name
		}
		// Distinct hosts are required for multi-node placements; with
		// wraparound collisions, fall back to the first nodes hosts.
		if opt.nodes > 1 {
			seen := make(map[string]bool)
			distinct := true
			for _, h := range hosts {
				if seen[h] {
					distinct = false
					break
				}
				seen[h] = true
			}
			if !distinct {
				for i := range hosts {
					hosts[i] = opt.ranked[i].Name
				}
			}
		}
		hostCursor[name] += opt.nodes
		pred, err := opt.site.PredictSetAt(opt.snap, task, hosts)
		if err != nil {
			return nil, err
		}
		xfer, err := env.transferFor(id, name, placed)
		if err != nil {
			return nil, err
		}
		table.Entries = append(table.Entries, Placement{
			Task: id, TaskName: task.Name, Site: name,
			Hosts: hosts, Predicted: pred, TransferIn: xfer,
		})
		placed[id] = name
	}
	return table, table.Validate(g)
}

// ScheduleMinMin implements the classic min-min heuristic: repeatedly
// compute, for every ready task, its minimal estimated completion time
// over all sites (host availability + data arrival + prediction), then
// commit the task achieving the overall minimum.
func ScheduleMinMin(g *afg.Graph, sites []*LocalSite, net *netmodel.Network) (*AllocationTable, error) {
	env := &baselineEnv{g: g, sites: sites, net: net}
	if err := env.check(); err != nil {
		return nil, err
	}
	table := &AllocationTable{App: g.Name + " [min-min]"}
	placed := make(map[afg.TaskID]string)
	finish := make(map[afg.TaskID]time.Duration)
	hostFree := make(map[string]time.Duration)
	rs := afg.NewReadySet(g)

	for !rs.Empty() {
		type best struct {
			id    afg.TaskID
			site  *LocalSite
			hosts []string
			pred  time.Duration
			xfer  time.Duration
			ect   time.Duration
		}
		var pick *best
		for _, id := range rs.Ready() {
			task := g.Task(id)
			for _, opt := range env.optionsFor(task) {
				hosts := make([]string, opt.nodes)
				for i := 0; i < opt.nodes; i++ {
					hosts[i] = opt.ranked[i].Name
				}
				pred, err := opt.site.PredictSetAt(opt.snap, task, hosts)
				if err != nil {
					continue
				}
				var dataReady time.Duration
				var xferSum time.Duration
				for _, edge := range g.InEdges(id) {
					t, err := net.TransferTime(g.EdgeSize(edge), placed[edge.From], opt.site.SiteName())
					if err != nil {
						continue
					}
					xferSum += t
					if arr := finish[edge.From] + t; arr > dataReady {
						dataReady = arr
					}
				}
				start := dataReady
				for _, h := range hosts {
					if hostFree[h] > start {
						start = hostFree[h]
					}
				}
				ect := start + pred
				if pick == nil || ect < pick.ect {
					pick = &best{id: id, site: opt.site, hosts: hosts, pred: pred, xfer: xferSum, ect: ect}
				}
			}
		}
		if pick == nil {
			return nil, fmt.Errorf("%w: no ready task schedulable", ErrNoEligibleSite)
		}
		table.Entries = append(table.Entries, Placement{
			Task: pick.id, TaskName: g.Task(pick.id).Name, Site: pick.site.SiteName(),
			Hosts: pick.hosts, Predicted: pick.pred, TransferIn: pick.xfer,
		})
		placed[pick.id] = pick.site.SiteName()
		finish[pick.id] = pick.ect
		for _, h := range pick.hosts {
			hostFree[h] = pick.ect
		}
		if err := rs.Complete(pick.id); err != nil {
			return nil, err
		}
	}
	return table, table.Validate(g)
}
