package core

import (
	"testing"

	"vdce/internal/afg"
	"vdce/internal/netmodel"
	"vdce/internal/tasklib"
)

func baselineCluster(t *testing.T) ([]*LocalSite, *netmodel.Network) {
	t.Helper()
	a := mkSite(t, "siteA", []hostSpec{
		{name: "a1", speed: 1}, {name: "a2", speed: 2}, {name: "a3", speed: 3},
	})
	b := mkSite(t, "siteB", []hostSpec{
		{name: "b1", speed: 2}, {name: "b2", speed: 4}, {name: "b3", speed: 1},
	})
	net, err := netmodel.New([]string{"siteA", "siteB"})
	if err != nil {
		t.Fatal(err)
	}
	return []*LocalSite{a, b}, net
}

func lesGraph(t *testing.T) *afg.Graph {
	t.Helper()
	g, err := tasklib.BuildLinearEquationSolver(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the machine-type pin so every baseline can place every task on
	// either crafted site.
	for _, task := range g.Tasks {
		task.Props.MachineType = ""
	}
	return g
}

func TestScheduleRandomValidAndSeeded(t *testing.T) {
	sites, net := baselineCluster(t)
	g := lesGraph(t)
	t1, err := ScheduleRandom(g, sites, net, 7)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := ScheduleRandom(g, sites, net, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.Validate(g); err != nil {
		t.Fatal(err)
	}
	for i := range t1.Entries {
		if t1.Entries[i].Site != t2.Entries[i].Site || t1.Entries[i].Hosts[0] != t2.Entries[i].Hosts[0] {
			t.Fatal("equal seeds diverged")
		}
	}
	// Different seeds eventually differ somewhere (probabilistic but with
	// 6 tasks over 6 hosts, seed 7 vs 8 differing is essentially sure).
	t3, err := ScheduleRandom(g, sites, net, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range t1.Entries {
		if t1.Entries[i].Hosts[0] != t3.Entries[i].Hosts[0] {
			same = false
			break
		}
	}
	if same {
		t.Log("warning: seeds 7 and 8 produced identical tables (unlikely but legal)")
	}
}

func TestScheduleRoundRobinSpreads(t *testing.T) {
	sites, net := baselineCluster(t)
	g := lesGraph(t)
	table, err := ScheduleRoundRobin(g, sites, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := table.Validate(g); err != nil {
		t.Fatal(err)
	}
	seenSites := make(map[string]bool)
	for _, e := range table.Entries {
		seenSites[e.Site] = true
	}
	if len(seenSites) < 2 {
		t.Fatalf("round-robin used only %v", seenSites)
	}
}

func TestScheduleMinMinValid(t *testing.T) {
	sites, net := baselineCluster(t)
	g := lesGraph(t)
	table, err := ScheduleMinMin(g, sites, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := table.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Min-min fills predictions everywhere.
	for _, e := range table.Entries {
		if e.Predicted <= 0 {
			t.Fatalf("entry %d has no prediction", e.Task)
		}
	}
}

func TestBaselinesNoEligibleSite(t *testing.T) {
	sites, net := baselineCluster(t)
	g, _ := oneTaskGraph(t, "Matrix_Generate", afg.Properties{Host: "nowhere"})
	if _, err := ScheduleRandom(g, sites, net, 1); err == nil {
		t.Fatal("random accepted unplaceable task")
	}
	if _, err := ScheduleRoundRobin(g, sites, net); err == nil {
		t.Fatal("round-robin accepted unplaceable task")
	}
	if _, err := ScheduleMinMin(g, sites, net); err == nil {
		t.Fatal("min-min accepted unplaceable task")
	}
}

func TestBaselinesEmptySites(t *testing.T) {
	_, net := baselineCluster(t)
	g := lesGraph(t)
	if _, err := ScheduleRandom(g, nil, net, 1); err == nil {
		t.Fatal("no sites accepted")
	}
	if _, err := ScheduleRoundRobin(g, nil, net); err == nil {
		t.Fatal("no sites accepted")
	}
	if _, err := ScheduleMinMin(g, nil, net); err == nil {
		t.Fatal("no sites accepted")
	}
}

func TestRoundRobinParallelDistinctHosts(t *testing.T) {
	sites, net := baselineCluster(t)
	g, id := oneTaskGraph(t, "LU_Decomposition", afg.Properties{Mode: afg.Parallel, Nodes: 3})
	table, err := ScheduleRoundRobin(g, sites, net)
	if err != nil {
		t.Fatal(err)
	}
	p := table.Placement(id)
	seen := make(map[string]bool)
	for _, h := range p.Hosts {
		if seen[h] {
			t.Fatalf("duplicate host %s in parallel placement", h)
		}
		seen[h] = true
	}
}
