// Package core implements the paper's primary contribution: the VDCE
// Application Scheduler. It contains the two built-in algorithms of
// Section 3 — the Site Scheduler Algorithm (Fig. 2) and the Host
// Selection Algorithm (Fig. 3) — plus the baseline policies the
// evaluation harness compares against.
//
// The scheduler is distributed: every site runs its own Application
// Scheduler. The local site receives the application flow graph,
// multicasts it to its k nearest neighbor sites, gathers each site's
// host-selection output (best machine and predicted execution time per
// task), and then walks the ready-task set in level-priority order,
// placing each task on the site that minimizes predicted execution time
// plus input transfer time. The result is the resource allocation table
// handed to the Site Manager.
package core

import (
	"errors"
	"fmt"
	"slices"
	"strings"
	"time"

	"vdce/internal/afg"
)

// HostChoice is one site's host-selection answer for one task: the best
// machine(s) within the site and the predicted execution time — exactly
// the "mapping information" each remote site sends back in Fig. 2 step 5.
type HostChoice struct {
	Site      string        `json:"site"`
	Hosts     []string      `json:"hosts"` // len > 1 for parallel tasks
	Predicted time.Duration `json:"predicted"`
	// Err is non-empty when the site has no eligible host for the task
	// (constraint, preference, or availability); such sites are skipped.
	Err string `json:"err,omitempty"`
}

// Selection is a full host-selection result: one choice per task.
type Selection map[afg.TaskID]HostChoice

// SiteService is the scheduling interface one site exposes to another:
// run the Host Selection Algorithm over the site's own repository. The
// in-process implementation is LocalSite; the wire implementation lives
// in internal/control and carries the same semantics over RPC.
type SiteService interface {
	// SiteName returns the site's name (matching the network model).
	SiteName() string
	// HostSelection runs Fig. 3 over the site's resources for every task
	// in g.
	HostSelection(g *afg.Graph) (Selection, error)
}

// Placement is one row of the resource allocation table.
type Placement struct {
	Task      afg.TaskID    `json:"task"`
	TaskName  string        `json:"task_name"`
	Site      string        `json:"site"`
	Hosts     []string      `json:"hosts"`
	Predicted time.Duration `json:"predicted"`
	// TransferIn is the estimated time to move the task's dataflow inputs
	// from the sites its parents were placed on.
	TransferIn time.Duration `json:"transfer_in"`
	// Level is the task's list-scheduling priority at placement time.
	Level float64 `json:"level"`
}

// AllocationTable is the scheduler's output artifact: the paper's
// "resource allocation table ... generated and transferred to the Site
// Manager". Entries appear in assignment order, which is topological.
type AllocationTable struct {
	App     string      `json:"app"`
	Entries []Placement `json:"entries"`
}

// Placement returns the entry for the given task, or nil.
func (t *AllocationTable) Placement(id afg.TaskID) *Placement {
	for i := range t.Entries {
		if t.Entries[i].Task == id {
			return &t.Entries[i]
		}
	}
	return nil
}

// ScheduleLength returns the sum-free upper metric the paper's goal
// references (the actual schedule length comes from simulation or
// execution); here: the sum of the critical-path predicted times.
// Primarily a debugging aid; use sim.Run for the real metric.
func (t *AllocationTable) TotalPredicted() time.Duration {
	var sum time.Duration
	for _, e := range t.Entries {
		sum += e.Predicted
	}
	return sum
}

// String renders the table like the paper's allocation listings.
func (t *AllocationTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Resource allocation table for %q (%d tasks)\n", t.App, len(t.Entries))
	for _, e := range t.Entries {
		fmt.Fprintf(&b, "  [%2d] %-24s -> %s:%s  predict=%v transfer=%v\n",
			e.Task, e.TaskName, e.Site, strings.Join(e.Hosts, ","), e.Predicted, e.TransferIn)
	}
	return b.String()
}

// Validate checks that the table covers every task of g exactly once,
// every entry names at least one host, and the order is topological.
func (t *AllocationTable) Validate(g *afg.Graph) error {
	if len(t.Entries) != len(g.Tasks) {
		return fmt.Errorf("core: table has %d entries for %d tasks", len(t.Entries), len(g.Tasks))
	}
	pos := make(map[afg.TaskID]int, len(t.Entries))
	for i, e := range t.Entries {
		if g.Task(e.Task) == nil {
			return fmt.Errorf("core: entry %d references missing task %d", i, e.Task)
		}
		if _, dup := pos[e.Task]; dup {
			return fmt.Errorf("core: task %d placed twice", e.Task)
		}
		if len(e.Hosts) == 0 {
			return fmt.Errorf("core: task %d has no hosts", e.Task)
		}
		want := 1
		if task := g.Task(e.Task); task.Props.Mode == afg.Parallel {
			want = task.Props.Nodes
		}
		// A parallel-mode task may be demoted to a single host when its
		// library implementation is not parallelizable.
		if len(e.Hosts) != want && len(e.Hosts) != 1 {
			return fmt.Errorf("core: task %d has %d hosts, wants %d", e.Task, len(e.Hosts), want)
		}
		pos[e.Task] = i
	}
	for _, e := range g.Edges {
		if pos[e.From] >= pos[e.To] {
			return fmt.Errorf("core: table not topological: task %d placed before parent %d", e.To, e.From)
		}
	}
	return nil
}

// Errors shared by the schedulers.
var (
	ErrNoEligibleSite = errors.New("core: no site can run task")
	ErrNoSites        = errors.New("core: scheduler has no sites")
)

// pickMin returns the index of the minimal duration with deterministic
// tie-breaking by the order items were appended.
func pickMin(durs []time.Duration) int {
	best := 0
	for i := 1; i < len(durs); i++ {
		if durs[i] < durs[best] {
			best = i
		}
	}
	return best
}

// sortCandidates orders candidate site names: local first, then
// lexicographic, used only for tie-breaking.
func sortCandidates(cands []string, local string) {
	slices.SortStableFunc(cands, func(a, b string) int {
		if (a == local) != (b == local) {
			if a == local {
				return -1
			}
			return 1
		}
		return strings.Compare(a, b)
	})
}
