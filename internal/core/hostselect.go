package core

import (
	"fmt"
	"sort"
	"time"

	"vdce/internal/afg"
	"vdce/internal/predict"
	"vdce/internal/repository"
)

// LocalSite runs the Host Selection Algorithm (Fig. 3) against one
// site's repository:
//
//  1. Retrieve task-specific parameters of AFG tasks from the
//     task-performance database.
//  2. Retrieve resource-specific parameters from the
//     resource-performance database.
//  3. Set task-queue = all AFG tasks.
//  4. For each task, evaluate Predict(task, R) for all R and assign the
//     task to the R that minimizes it.
//
// For parallel tasks the algorithm "is updated to select the number of
// machines required within the site": it ranks hosts by single-node
// prediction, takes the required count, and predicts the parallel time
// on the slowest chosen machine.
type LocalSite struct {
	Repo   *repository.Repository
	Oracle *predict.Oracle
}

// NewLocalSite returns a LocalSite with a default-constant oracle.
func NewLocalSite(repo *repository.Repository) *LocalSite {
	return &LocalSite{Repo: repo, Oracle: predict.NewOracle(repo)}
}

// SiteName implements SiteService.
func (s *LocalSite) SiteName() string { return s.Repo.Site }

// eligibleHosts applies the editor preferences and databases: the host
// must be up, must have the task installed (task-constraints database),
// and must match any machine-type or host-name preference.
func (s *LocalSite) eligibleHosts(task *afg.Task) []repository.ResourceInfo {
	var out []repository.ResourceInfo
	for _, h := range s.Repo.Resources.UpHosts() {
		if !s.Repo.Constraints.HasTask(task.Name, h.HostName) {
			continue
		}
		if mt := task.Props.MachineType; mt != "" && mt != afg.AnyMachine && h.MachineType() != mt {
			continue
		}
		if hp := task.Props.Host; hp != "" && hp != afg.AnyMachine && h.HostName != hp {
			continue
		}
		out = append(out, h)
	}
	return out
}

// HostSelection implements SiteService (Fig. 3).
func (s *LocalSite) HostSelection(g *afg.Graph) (Selection, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	sel := make(Selection, len(g.Tasks))
	for _, task := range g.Tasks {
		sel[task.ID] = s.chooseFor(task)
	}
	return sel, nil
}

// RankedHost is one eligible host with its predicted single-node
// execution time for a task.
type RankedHost struct {
	Name   string
	Single time.Duration
}

// RankedHosts returns the task's eligible hosts sorted by ascending
// predicted single-node time (ties by name). An empty slice means the
// site cannot run the task.
func (s *LocalSite) RankedHosts(task *afg.Task) []RankedHost {
	params, err := s.Repo.TaskPerf.Params(task.Name)
	if err != nil {
		return nil
	}
	var out []RankedHost
	for _, h := range s.eligibleHosts(task) {
		var measured *time.Duration
		if d, ok := s.Repo.TaskPerf.MeasuredTime(task.Name, h.HostName); ok {
			measured = &d
		}
		d, err := s.Oracle.P.Predict(params, h, 1, measured)
		if err != nil {
			continue // saturated or down hosts drop out
		}
		out = append(out, RankedHost{Name: h.HostName, Single: d})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Single != out[j].Single {
			return out[i].Single < out[j].Single
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// requiredNodes returns how many machines the task needs on this site.
func (s *LocalSite) requiredNodes(task *afg.Task) int {
	params, err := s.Repo.TaskPerf.Params(task.Name)
	if err != nil {
		return 1
	}
	if task.Props.Mode == afg.Parallel && params.Parallelizable {
		return task.Props.Nodes
	}
	return 1
}

// PredictSet predicts the execution time of task on the given host set
// (nodes = len(hosts)); for multi-host sets the prediction is taken on
// the slowest member, since the parallel task finishes when its slowest
// share does.
func (s *LocalSite) PredictSet(task *afg.Task, hosts []string) (time.Duration, error) {
	if len(hosts) == 0 {
		return 0, fmt.Errorf("core: PredictSet with no hosts")
	}
	params, err := s.Repo.TaskPerf.Params(task.Name)
	if err != nil {
		return 0, err
	}
	var worst time.Duration
	var worstName string
	for _, name := range hosts {
		h, err := s.Repo.Resources.Host(name)
		if err != nil {
			return 0, err
		}
		var measured *time.Duration
		if d, ok := s.Repo.TaskPerf.MeasuredTime(task.Name, name); ok {
			measured = &d
		}
		d, err := s.Oracle.P.Predict(params, h, 1, measured)
		if err != nil {
			return 0, err
		}
		if d >= worst {
			worst, worstName = d, name
		}
	}
	h, err := s.Repo.Resources.Host(worstName)
	if err != nil {
		return 0, err
	}
	var measured *time.Duration
	if d, ok := s.Repo.TaskPerf.MeasuredTime(task.Name, worstName); ok {
		measured = &d
	}
	return s.Oracle.P.Predict(params, h, len(hosts), measured)
}

// chooseFor runs the per-task body of Fig. 3.
func (s *LocalSite) chooseFor(task *afg.Task) HostChoice {
	if _, err := s.Repo.TaskPerf.Params(task.Name); err != nil {
		return HostChoice{Site: s.SiteName(), Err: err.Error()}
	}
	ranked := s.RankedHosts(task)
	if len(ranked) == 0 {
		return HostChoice{Site: s.SiteName(), Err: fmt.Sprintf("no eligible host for %s", task.Name)}
	}
	nodes := s.requiredNodes(task)
	if nodes <= 1 {
		return HostChoice{
			Site:      s.SiteName(),
			Hosts:     []string{ranked[0].Name},
			Predicted: ranked[0].Single,
		}
	}
	if nodes > len(ranked) {
		return HostChoice{Site: s.SiteName(), Err: fmt.Sprintf(
			"parallel task %s wants %d nodes, site has %d eligible", task.Name, nodes, len(ranked))}
	}
	names := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		names[i] = ranked[i].Name
	}
	d, err := s.PredictSet(task, names)
	if err != nil {
		return HostChoice{Site: s.SiteName(), Err: err.Error()}
	}
	return HostChoice{Site: s.SiteName(), Hosts: names, Predicted: d}
}
