package core

import (
	"cmp"
	"fmt"
	"slices"
	"strings"
	"time"

	"vdce/internal/afg"
	"vdce/internal/predict"
	"vdce/internal/repository"
)

// LocalSite runs the Host Selection Algorithm (Fig. 3) against one
// site's repository:
//
//  1. Retrieve task-specific parameters of AFG tasks from the
//     task-performance database.
//  2. Retrieve resource-specific parameters from the
//     resource-performance database.
//  3. Set task-queue = all AFG tasks.
//  4. For each task, evaluate Predict(task, R) for all R and assign the
//     task to the R that minimizes it.
//
// For parallel tasks the algorithm "is updated to select the number of
// machines required within the site": it ranks hosts by single-node
// prediction, takes the required count, and predicts the parallel time
// on the slowest chosen machine.
//
// Every selection round reads one repository.Snapshot — a frozen
// copy-on-write epoch of the resource and task-performance databases —
// so monitor and failure-detection writes landing mid-round cannot tear
// the round's view of host workloads, statuses, or measurements. The
// task-constraints database (install-time state, written only during
// application registration) is read live: a concurrent install can make
// tasks within one round see different install sets, but the
// constraints write counter still invalidates affected cache entries.
// Per-task rankings are memoized in a generation-validated cache (see
// rankCache): an unchanged-state round is served from cache without
// re-running Predict over the catalog.
type LocalSite struct {
	Repo   *repository.Repository
	Oracle *predict.Oracle
	cache  rankCache
}

// NewLocalSite returns a LocalSite with a default-constant oracle.
func NewLocalSite(repo *repository.Repository) *LocalSite {
	return &LocalSite{Repo: repo, Oracle: predict.NewOracle(repo)}
}

// SiteName implements SiteService.
func (s *LocalSite) SiteName() string { return s.Repo.Site }

// Snapshot captures the site's current scheduling state; pass it to the
// *At methods to serve a whole round from one coherent view.
func (s *LocalSite) Snapshot() *repository.Snapshot { return s.Repo.Snapshot() }

// CacheStats reports the ranked-host cache counters.
func (s *LocalSite) CacheStats() RankCacheStats { return s.cache.stats() }

// HostSelection implements SiteService (Fig. 3). The whole graph is
// selected against a single snapshot.
func (s *LocalSite) HostSelection(g *afg.Graph) (Selection, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return s.hostSelectionValidated(g), nil
}

// hostSelectionValidated runs Fig. 3 without re-validating g — the
// in-process fast path for schedulers that validated the graph at the
// top of the round (validation walks the whole DAG; once per round is
// enough).
func (s *LocalSite) hostSelectionValidated(g *afg.Graph) Selection {
	snap := s.Repo.Snapshot()
	sel := make(Selection, len(g.Tasks))
	for _, task := range g.Tasks {
		sel[task.ID] = s.chooseForAt(snap, task)
	}
	return sel
}

// RankedHost is one eligible host with its predicted single-node
// execution time for a task.
type RankedHost struct {
	Name   string
	Single time.Duration
}

// RankedHosts returns the task's eligible hosts sorted by ascending
// predicted single-node time (ties by name). An empty slice means the
// site cannot run the task. The returned slice may be shared with the
// cache and other callers: do not modify it.
func (s *LocalSite) RankedHosts(task *afg.Task) []RankedHost {
	return s.RankedHostsAt(s.Repo.Snapshot(), task)
}

// RankedHostsAt is RankedHosts against a caller-held snapshot. Rankings
// are served from the generation-validated cache when no repository
// write has touched the inputs since the last computation.
func (s *LocalSite) RankedHostsAt(snap *repository.Snapshot, task *afg.Task) []RankedHost {
	params, err := snap.TaskParams(task.Name)
	if err != nil {
		return nil
	}
	taskGen, _ := snap.TaskGeneration(task.Name)
	resGen := snap.ResourceGeneration()
	consGen := s.Repo.Constraints.Generation()

	e := s.cache.entry(keyFor(task))
	pred := s.Oracle.P
	hit := func(r *rankResult) bool {
		return r != nil && r.resGen == resGen && r.taskGen == taskGen &&
			r.consGen == consGen && r.pred == pred
	}
	// Lock-free fast path: a matching-generation result serves the round
	// with a pointer load and three compares.
	if r := e.cur.Load(); hit(r) {
		s.cache.hits.Add(1)
		return r.ranked
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// Double-check: a concurrent miss on the same generations may have
	// recomputed while we waited for the singleflight lock.
	if r := e.cur.Load(); hit(r) {
		s.cache.hits.Add(1)
		return r.ranked
	}
	prev := e.cur.Load()
	ranked := s.computeRankedAt(snap, task, params)
	// A concurrent round holding a newer snapshot may already have stored
	// a fresher ranking; never replace newer with older.
	if prev == nil || (prev.resGen <= resGen && prev.taskGen <= taskGen && prev.consGen <= consGen) {
		if prev != nil {
			s.cache.invalidations.Add(1)
		}
		e.cur.Store(&rankResult{resGen: resGen, taskGen: taskGen, consGen: consGen, pred: pred, ranked: ranked})
	}
	s.cache.misses.Add(1)
	return ranked
}

// computeRankedAt evaluates Predict(task, R) over the snapshot's up
// hosts — the uncached body of Fig. 3 steps 1-2+4.
func (s *LocalSite) computeRankedAt(snap *repository.Snapshot, task *afg.Task, params repository.TaskParams) []RankedHost {
	views := snap.UpHosts()
	out := make([]RankedHost, 0, len(views))
	for _, h := range views {
		// Eligibility: task installed on the host (task-constraints
		// database) and editor machine-type / host-name preferences.
		if !s.Repo.Constraints.HasTask(task.Name, h.HostName) {
			continue
		}
		if mt := task.Props.MachineType; mt != "" && mt != afg.AnyMachine && h.MachineType() != mt {
			continue
		}
		if hp := task.Props.Host; hp != "" && hp != afg.AnyMachine && h.HostName != hp {
			continue
		}
		var measured *time.Duration
		if d, ok := snap.MeasuredTime(task.Name, h.HostName); ok {
			measured = &d
		}
		d, err := s.Oracle.P.Predict(params, h, 1, measured)
		if err != nil {
			continue // saturated or down hosts drop out
		}
		out = append(out, RankedHost{Name: h.HostName, Single: d})
	}
	slices.SortStableFunc(out, func(a, b RankedHost) int {
		if a.Single != b.Single {
			return cmp.Compare(a.Single, b.Single)
		}
		return strings.Compare(a.Name, b.Name)
	})
	return out
}

// RequiredNodesAt returns how many machines the task needs on a site,
// as of snap: Props.Nodes when the task runs in parallel mode AND its
// library implementation is parallelizable, else 1. This is the single
// authority on the node-count rule — the schedulers, baselines, and the
// rescheduler all consult it.
func RequiredNodesAt(snap *repository.Snapshot, task *afg.Task) int {
	params, err := snap.TaskParams(task.Name)
	if err != nil {
		return 1
	}
	if task.Props.Mode == afg.Parallel && params.Parallelizable && task.Props.Nodes > 1 {
		return task.Props.Nodes
	}
	return 1
}

// PredictSet predicts the execution time of task on the given host set
// (nodes = len(hosts)); for multi-host sets the prediction is taken on
// the slowest member, since the parallel task finishes when its slowest
// share does.
func (s *LocalSite) PredictSet(task *afg.Task, hosts []string) (time.Duration, error) {
	return s.PredictSetAt(s.Repo.Snapshot(), task, hosts)
}

// PredictSetAt is PredictSet against a caller-held snapshot. The worst
// member is tracked inside the ranking loop, so the parallel-time
// prediction is computed once from it rather than re-fetching and
// re-ranking the worst host afterwards.
func (s *LocalSite) PredictSetAt(snap *repository.Snapshot, task *afg.Task, hosts []string) (time.Duration, error) {
	if len(hosts) == 0 {
		return 0, fmt.Errorf("core: PredictSet with no hosts")
	}
	params, err := snap.TaskParams(task.Name)
	if err != nil {
		return 0, err
	}
	var worst time.Duration
	var worstHost repository.HostView
	var worstMeasured *time.Duration
	for _, name := range hosts {
		h, ok := snap.View(name)
		if !ok {
			return 0, fmt.Errorf("%w: %s", repository.ErrUnknownHost, name)
		}
		var measured *time.Duration
		if d, ok := snap.MeasuredTime(task.Name, name); ok {
			measured = &d
		}
		d, err := s.Oracle.P.Predict(params, h, 1, measured)
		if err != nil {
			return 0, err
		}
		if d >= worst {
			worst, worstHost, worstMeasured = d, h, measured
		}
	}
	if len(hosts) == 1 {
		return worst, nil
	}
	return s.Oracle.P.Predict(params, worstHost, len(hosts), worstMeasured)
}

// chooseForAt runs the per-task body of Fig. 3 against one snapshot.
func (s *LocalSite) chooseForAt(snap *repository.Snapshot, task *afg.Task) HostChoice {
	if _, err := snap.TaskParams(task.Name); err != nil {
		return HostChoice{Site: s.SiteName(), Err: err.Error()}
	}
	ranked := s.RankedHostsAt(snap, task)
	if len(ranked) == 0 {
		return HostChoice{Site: s.SiteName(), Err: fmt.Sprintf("no eligible host for %s", task.Name)}
	}
	nodes := RequiredNodesAt(snap, task)
	if nodes <= 1 {
		return HostChoice{
			Site:      s.SiteName(),
			Hosts:     []string{ranked[0].Name},
			Predicted: ranked[0].Single,
		}
	}
	if nodes > len(ranked) {
		return HostChoice{Site: s.SiteName(), Err: fmt.Sprintf(
			"parallel task %s wants %d nodes, site has %d eligible", task.Name, nodes, len(ranked))}
	}
	names := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		names[i] = ranked[i].Name
	}
	d, err := s.PredictSetAt(snap, task, names)
	if err != nil {
		return HostChoice{Site: s.SiteName(), Err: err.Error()}
	}
	return HostChoice{Site: s.SiteName(), Hosts: names, Predicted: d}
}
