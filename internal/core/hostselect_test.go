package core

import (
	"strings"
	"testing"
	"time"

	"vdce/internal/afg"
	"vdce/internal/repository"
	"vdce/internal/tasklib"
)

// hostSpec describes one crafted test host.
type hostSpec struct {
	name  string
	speed float64
	load  float64
	arch  string
	os    string
}

// mkSite builds a LocalSite with the given hosts and the default task
// catalog installed everywhere.
func mkSite(t *testing.T, site string, hosts []hostSpec) *LocalSite {
	t.Helper()
	repo := repository.New(site)
	names := make([]string, len(hosts))
	for i, h := range hosts {
		names[i] = h.name
		arch, osName := h.arch, h.os
		if arch == "" {
			arch = "SUN"
		}
		if osName == "" {
			osName = "Solaris"
		}
		if err := repo.Resources.AddHost(repository.ResourceInfo{
			HostName: h.name, ArchType: arch, OSType: osName,
			TotalMem: 1 << 30, Site: site, Group: site + "-g0",
			SpeedFactor: h.speed, CPULoad: h.load,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tasklib.Default().InstallInto(repo, names); err != nil {
		t.Fatal(err)
	}
	return NewLocalSite(repo)
}

// oneTaskGraph returns a single-task graph for the named library task.
func oneTaskGraph(t *testing.T, name string, props afg.Properties) (*afg.Graph, afg.TaskID) {
	t.Helper()
	g := afg.NewGraph("unit")
	spec, err := tasklib.Default().Get(name)
	if err != nil {
		t.Fatal(err)
	}
	id := g.AddTask(name, spec.Library, spec.InPorts, spec.OutPorts)
	if err := g.SetProps(id, props); err != nil {
		t.Fatal(err)
	}
	return g, id
}

func TestHostSelectionPicksFastestIdleHost(t *testing.T) {
	s := mkSite(t, "s1", []hostSpec{
		{name: "slow", speed: 1, load: 0},
		{name: "fast", speed: 4, load: 0},
		{name: "loaded-fast", speed: 4, load: 0.9},
	})
	g, id := oneTaskGraph(t, "Matrix_Multiplication", afg.Properties{})
	sel, err := s.HostSelection(g)
	if err != nil {
		t.Fatal(err)
	}
	c := sel[id]
	if c.Err != "" {
		t.Fatal(c.Err)
	}
	if len(c.Hosts) != 1 || c.Hosts[0] != "fast" {
		t.Fatalf("picked %v, want fast", c.Hosts)
	}
	if c.Predicted <= 0 {
		t.Fatal("no prediction")
	}
}

func TestHostSelectionRespectsMachineType(t *testing.T) {
	s := mkSite(t, "s1", []hostSpec{
		{name: "sun", speed: 1, arch: "SUN", os: "Solaris"},
		{name: "sgi", speed: 8, arch: "SGI", os: "IRIX"},
	})
	g, id := oneTaskGraph(t, "Matrix_Multiplication", afg.Properties{MachineType: "SUN Solaris"})
	sel, err := s.HostSelection(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := sel[id].Hosts; len(got) != 1 || got[0] != "sun" {
		t.Fatalf("machine-type preference ignored: %v", got)
	}
}

func TestHostSelectionRespectsHostPin(t *testing.T) {
	s := mkSite(t, "s1", []hostSpec{
		{name: "a", speed: 8},
		{name: "b", speed: 1},
	})
	g, id := oneTaskGraph(t, "Matrix_Multiplication", afg.Properties{Host: "b"})
	sel, err := s.HostSelection(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := sel[id].Hosts; len(got) != 1 || got[0] != "b" {
		t.Fatalf("host pin ignored: %v", got)
	}
	// Pinning to a host the site does not have yields an error choice.
	g2, id2 := oneTaskGraph(t, "Matrix_Multiplication", afg.Properties{Host: "elsewhere"})
	sel2, err := s.HostSelection(g2)
	if err != nil {
		t.Fatal(err)
	}
	if sel2[id2].Err == "" {
		t.Fatal("missing pin target accepted")
	}
}

func TestHostSelectionRespectsConstraintsAndStatus(t *testing.T) {
	s := mkSite(t, "s1", []hostSpec{
		{name: "a", speed: 4},
		{name: "b", speed: 1},
	})
	// Uninstall the task from the fast host: selection must fall to b.
	s.Repo.Constraints.RemoveHost("a")
	g, id := oneTaskGraph(t, "Matrix_Multiplication", afg.Properties{})
	sel, _ := s.HostSelection(g)
	if got := sel[id].Hosts; len(got) != 1 || got[0] != "b" {
		t.Fatalf("constraints ignored: %v", got)
	}
	// Mark b down too: no eligible host.
	if err := s.Repo.Resources.SetStatus("b", repository.HostDown); err != nil {
		t.Fatal(err)
	}
	sel2, _ := s.HostSelection(g)
	if sel2[id].Err == "" {
		t.Fatal("down host selected")
	}
}

func TestHostSelectionUnknownTask(t *testing.T) {
	s := mkSite(t, "s1", []hostSpec{{name: "a", speed: 1}})
	g := afg.NewGraph("x")
	id := g.AddTask("Not_A_Task", "none", 0, 1)
	sel, err := s.HostSelection(g)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sel[id].Err, "unknown task") {
		t.Fatalf("unknown task err = %q", sel[id].Err)
	}
}

func TestHostSelectionParallel(t *testing.T) {
	s := mkSite(t, "s1", []hostSpec{
		{name: "a", speed: 4},
		{name: "b", speed: 2},
		{name: "c", speed: 1},
	})
	// Matrix_Multiplication has a low serial fraction, so two nodes beat
	// one even after coordination overhead.
	g, id := oneTaskGraph(t, "Matrix_Multiplication", afg.Properties{Mode: afg.Parallel, Nodes: 2})
	sel, err := s.HostSelection(g)
	if err != nil {
		t.Fatal(err)
	}
	c := sel[id]
	if c.Err != "" {
		t.Fatal(c.Err)
	}
	if len(c.Hosts) != 2 || c.Hosts[0] != "a" || c.Hosts[1] != "b" {
		t.Fatalf("parallel choice %v, want the two fastest", c.Hosts)
	}
	// Predicted must reflect the slower chosen machine: worse than a's
	// solo parallel time would be, better than sequential on b.
	soloSeq, err := s.PredictSet(g.Task(id), []string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if c.Predicted >= soloSeq {
		t.Fatalf("parallel on {a,b} (%v) not faster than sequential on b (%v)", c.Predicted, soloSeq)
	}
	// Asking for more nodes than the site owns errors out.
	g2, id2 := oneTaskGraph(t, "LU_Decomposition", afg.Properties{Mode: afg.Parallel, Nodes: 9})
	sel2, _ := s.HostSelection(g2)
	if sel2[id2].Err == "" {
		t.Fatal("oversubscribed parallel request accepted")
	}
}

func TestParallelModeOnSequentialTaskDemotes(t *testing.T) {
	s := mkSite(t, "s1", []hostSpec{{name: "a", speed: 1}, {name: "b", speed: 1}})
	// Vector_Generate is not parallelizable; requesting parallel x2 must
	// demote to one host.
	g, id := oneTaskGraph(t, "Vector_Generate", afg.Properties{Mode: afg.Parallel, Nodes: 2})
	sel, err := s.HostSelection(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := sel[id].Hosts; len(got) != 1 {
		t.Fatalf("non-parallelizable task got %d hosts", len(got))
	}
}

func TestMeasurementInfluencesSelection(t *testing.T) {
	s := mkSite(t, "s1", []hostSpec{
		{name: "a", speed: 2},
		{name: "b", speed: 1.9},
	})
	g, id := oneTaskGraph(t, "Matrix_Multiplication", afg.Properties{})
	sel, _ := s.HostSelection(g)
	if sel[id].Hosts[0] != "a" {
		t.Fatalf("baseline pick %v", sel[id].Hosts)
	}
	// A history of terrible runs on a flips the choice to b.
	for i := 0; i < 4; i++ {
		if err := s.Repo.TaskPerf.RecordExecution("Matrix_Multiplication", "a", time.Hour, time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	sel2, _ := s.HostSelection(g)
	if sel2[id].Hosts[0] != "b" {
		t.Fatalf("measurements ignored: %v", sel2[id].Hosts)
	}
}

func TestPredictSetErrors(t *testing.T) {
	s := mkSite(t, "s1", []hostSpec{{name: "a", speed: 1}})
	g, id := oneTaskGraph(t, "Matrix_Multiplication", afg.Properties{})
	if _, err := s.PredictSet(g.Task(id), nil); err == nil {
		t.Fatal("empty host set accepted")
	}
	if _, err := s.PredictSet(g.Task(id), []string{"ghost"}); err == nil {
		t.Fatal("unknown host accepted")
	}
}
