package core

import (
	"fmt"
	"time"

	"vdce/internal/afg"
	"vdce/internal/netmodel"
	"vdce/internal/repository"
)

// ScheduleQueueAware is the extension E2 motivates: the paper's site
// scheduler with one change — host selection accounts for the work this
// application has already placed on each machine. For every ready task
// (still taken in level-priority order, as §3 prescribes) it minimizes
// the *estimated finish time*
//
//	EFT(task, hosts) = max(dataReady, hostFree(hosts)) + Predict(task, hosts)
//
// instead of the bare Predict. This closes the serialization gap the
// published Fig. 3 has on wide CPU-bound graphs (see EXPERIMENTS.md E2)
// while keeping every other element — levels, prediction, transfer
// charging, nearest-site multicast semantics — identical.
func ScheduleQueueAware(g *afg.Graph, sites []*LocalSite, net *netmodel.Network, cost afg.CostFunc) (*AllocationTable, error) {
	if len(sites) == 0 {
		return nil, ErrNoSites
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	levels, err := g.Levels(cost)
	if err != nil {
		return nil, err
	}
	table := &AllocationTable{App: g.Name + " [queue-aware]"}
	placedSite := make(map[afg.TaskID]string, len(g.Tasks))
	finish := make(map[afg.TaskID]time.Duration, len(g.Tasks))
	hostFree := make(map[string]time.Duration)
	rs := afg.NewReadySet(g)
	// One coherent snapshot per site serves the whole round.
	snaps := make([]*repository.Snapshot, len(sites))
	for i, site := range sites {
		snaps[i] = site.Snapshot()
	}

	for !rs.Empty() {
		// Highest level first, ties by ID — the paper's priority rule.
		ready := rs.Ready()
		id := ready[0]
		for _, cand := range ready[1:] {
			if levels[cand] > levels[id] || (levels[cand] == levels[id] && cand < id) {
				id = cand
			}
		}
		task := g.Task(id)

		type option struct {
			site  *LocalSite
			hosts []string
			pred  time.Duration
			xfer  time.Duration
			eft   time.Duration
		}
		var best *option
		for si, site := range sites {
			snap := snaps[si]
			ranked := site.RankedHostsAt(snap, task)
			nodes := RequiredNodesAt(snap, task)
			if len(ranked) < nodes || len(ranked) == 0 {
				continue
			}
			// Consider each eligible host (or host window for parallel
			// tasks) — cheapest EFT wins within the site.
			limit := len(ranked) - nodes + 1
			for start := 0; start < limit; start++ {
				hosts := make([]string, nodes)
				for i := 0; i < nodes; i++ {
					hosts[i] = ranked[start+i].Name
				}
				pred, err := site.PredictSetAt(snap, task, hosts)
				if err != nil {
					continue
				}
				var dataReady, xferSum time.Duration
				ok := true
				for _, e := range g.InEdges(id) {
					t, err := net.TransferTime(g.EdgeSize(e), placedSite[e.From], site.SiteName())
					if err != nil {
						ok = false
						break
					}
					xferSum += t
					if arr := finish[e.From] + t; arr > dataReady {
						dataReady = arr
					}
				}
				if !ok {
					continue
				}
				startAt := dataReady
				for _, h := range hosts {
					if hostFree[h] > startAt {
						startAt = hostFree[h]
					}
				}
				eft := startAt + pred
				if best == nil || eft < best.eft {
					best = &option{site: site, hosts: hosts, pred: pred, xfer: xferSum, eft: eft}
				}
			}
		}
		if best == nil {
			return nil, fmt.Errorf("%w: task %d (%s)", ErrNoEligibleSite, id, task.Name)
		}
		table.Entries = append(table.Entries, Placement{
			Task: id, TaskName: task.Name, Site: best.site.SiteName(),
			Hosts: best.hosts, Predicted: best.pred, TransferIn: best.xfer,
			Level: levels[id],
		})
		placedSite[id] = best.site.SiteName()
		finish[id] = best.eft
		for _, h := range best.hosts {
			hostFree[h] = best.eft
		}
		if err := rs.Complete(id); err != nil {
			return nil, err
		}
	}
	return table, table.Validate(g)
}
