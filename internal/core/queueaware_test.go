package core

import (
	"testing"

	"vdce/internal/afg"
	"vdce/internal/netmodel"
	"vdce/internal/tasklib"
)

func TestQueueAwareSpreadsIndependentTasks(t *testing.T) {
	// One site, two equal hosts, four independent equal tasks: the
	// paper's Fig. 3 puts all four on the same "best" host; the
	// queue-aware variant must use both machines.
	s := mkSite(t, "s1", []hostSpec{{name: "a", speed: 1}, {name: "b", speed: 1}})
	net, err := netmodel.New([]string{"s1"})
	if err != nil {
		t.Fatal(err)
	}
	g := afg.NewGraph("indep")
	for i := 0; i < 4; i++ {
		g.AddTask("Matrix_Generate", "matrix", 0, 1)
	}
	cost := costFrom(t, s, g)

	paper := NewScheduler(s, nil, net, 0)
	paperTable, err := paper.Schedule(g, cost)
	if err != nil {
		t.Fatal(err)
	}
	paperHosts := make(map[string]bool)
	for _, e := range paperTable.Entries {
		paperHosts[e.Hosts[0]] = true
	}
	if len(paperHosts) != 1 {
		t.Fatalf("expected the published algorithm to serialize, used %v", paperHosts)
	}

	qa, err := ScheduleQueueAware(g, []*LocalSite{s}, net, cost)
	if err != nil {
		t.Fatal(err)
	}
	if err := qa.Validate(g); err != nil {
		t.Fatal(err)
	}
	qaHosts := make(map[string]bool)
	for _, e := range qa.Entries {
		qaHosts[e.Hosts[0]] = true
	}
	if len(qaHosts) != 2 {
		t.Fatalf("queue-aware variant used %v, want both hosts", qaHosts)
	}
}

func TestQueueAwareRespectsPrecedenceAndLevels(t *testing.T) {
	s := mkSite(t, "s1", []hostSpec{{name: "a", speed: 2}, {name: "b", speed: 1}})
	net, _ := netmodel.New([]string{"s1"})
	g, err := tasklib.BuildLinearEquationSolver(32, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range g.Tasks {
		task.Props.MachineType = ""
	}
	table, err := ScheduleQueueAware(g, []*LocalSite{s}, net, costFrom(t, s, g))
	if err != nil {
		t.Fatal(err)
	}
	if err := table.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Levels recorded and non-increasing along the table where tasks are
	// independent is not guaranteed, but the first entry must carry the
	// highest level of any entry task.
	if table.Entries[0].Level <= 0 {
		t.Fatal("levels not recorded")
	}
}

func TestQueueAwareErrors(t *testing.T) {
	net, _ := netmodel.New([]string{"s1"})
	g, _ := oneTaskGraph(t, "Matrix_Generate", afg.Properties{})
	if _, err := ScheduleQueueAware(g, nil, net, func(afg.TaskID) float64 { return 1 }); err == nil {
		t.Fatal("no sites accepted")
	}
	s := mkSite(t, "s1", []hostSpec{{name: "a", speed: 1}})
	g2, _ := oneTaskGraph(t, "Matrix_Generate", afg.Properties{Host: "missing"})
	if _, err := ScheduleQueueAware(g2, []*LocalSite{s}, net, func(afg.TaskID) float64 { return 1 }); err == nil {
		t.Fatal("unplaceable task accepted")
	}
}
