package core

import (
	"sync"
	"sync/atomic"

	"vdce/internal/afg"
	"vdce/internal/predict"
)

// RankCacheStats reports the ranked-host cache counters of one site.
type RankCacheStats struct {
	// Hits counts lookups served from an unchanged-generation entry.
	Hits int64 `json:"hits"`
	// Misses counts recomputations (first-time entries included).
	Misses int64 `json:"misses"`
	// Invalidations counts recomputations that replaced an entry whose
	// generations had been outrun by repository writes.
	Invalidations int64 `json:"invalidations"`
}

// HitRatio is Hits / (Hits + Misses), or 0 with no lookups.
func (s RankCacheStats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// rankCache memoizes RankedHosts results per (task, preference) key,
// validated by the repository generations that feed a ranking: the
// resource epoch (workload updates, failures, host churn), the task's
// own performance record (new measurements, parameter changes), and the
// constraints write counter (install/remove). A lookup whose generations
// all match is a lock-free-read cache hit; any repository write that
// could change the ranking bumps a generation and forces one
// recomputation, which concurrent rounds share singleflight-style: the
// per-entry mutex lets exactly one goroutine recompute while the rest
// wait for its result.
type rankCache struct {
	entries sync.Map     // rankKey -> *rankEntry; lock-free lookups
	count   atomic.Int64 // approximate entry count for the eviction cap

	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
}

// rankKey identifies a cached ranking. Eligibility depends on the task's
// editor preferences, not just its name — two graphs may share a task
// name with different machine-type or host pins — so the preferences are
// part of the key.
type rankKey struct {
	task        string
	machineType string
	hostPin     string
}

func keyFor(task *afg.Task) rankKey {
	return rankKey{task: task.Name, machineType: task.Props.MachineType, hostPin: task.Props.Host}
}

// rankResult is one immutable memoized ranking plus the generations and
// predictor constants it was computed from. Readers share ranked
// without copying. pred is part of validity because Predictor fields
// are exported tuning knobs (the blend ablation flips them at runtime):
// a constants change must recompute, not serve stale rankings.
type rankResult struct {
	resGen  uint64
	taskGen uint64
	consGen uint64
	pred    predict.Predictor
	ranked  []RankedHost
}

// rankEntry is one cache slot. Hits are a lock-free pointer load plus
// three generation compares; mu serializes only the recompute, so
// concurrent rounds missing on the same task share one Predict sweep
// instead of convoying every reader behind it.
type rankEntry struct {
	mu  sync.Mutex // singleflight recompute only
	cur atomic.Pointer[rankResult]
}

// maxRankEntries bounds the cache. Keys embed client-supplied editor
// preferences (host pins, machine types are arbitrary per-graph
// strings), so without a cap a long-lived site accumulates one entry
// per distinct triple forever. The task catalog times realistic
// preference variety sits far below this; overflowing it means churn,
// where caching is worthless anyway.
const maxRankEntries = 4096

// entry returns (creating if needed) the slot for key. The steady-state
// path — key already present — is a lock-free sync.Map load, so
// concurrent scheduler rounds never serialize on the cache itself.
func (c *rankCache) entry(key rankKey) *rankEntry {
	if v, ok := c.entries.Load(key); ok {
		return v.(*rankEntry)
	}
	v, loaded := c.entries.LoadOrStore(key, &rankEntry{})
	if !loaded && c.count.Add(1) > maxRankEntries {
		// Evict one arbitrary other entry (Range order is unspecified);
		// in-flight holders of an evicted *rankEntry are unaffected —
		// they just lose shared recomputation. LoadAndDelete keeps the
		// counter honest when two evictors pick the same victim.
		c.entries.Range(func(k, _ any) bool {
			if k == key {
				return true
			}
			if _, present := c.entries.LoadAndDelete(k); present {
				c.count.Add(-1)
				return false
			}
			return true
		})
	}
	return v.(*rankEntry)
}

// stats snapshots the counters.
func (c *rankCache) stats() RankCacheStats {
	return RankCacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
	}
}
