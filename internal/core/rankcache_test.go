package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"vdce/internal/afg"
	"vdce/internal/repository"
)

// statsDelta runs f and returns the counter movement it caused.
func statsDelta(s *LocalSite, f func()) RankCacheStats {
	before := s.CacheStats()
	f()
	after := s.CacheStats()
	return RankCacheStats{
		Hits:          after.Hits - before.Hits,
		Misses:        after.Misses - before.Misses,
		Invalidations: after.Invalidations - before.Invalidations,
	}
}

func TestRankedHostsCacheHitOnUnchangedState(t *testing.T) {
	s := mkSite(t, "s1", []hostSpec{
		{name: "a", speed: 2},
		{name: "b", speed: 1},
	})
	g, id := oneTaskGraph(t, "Matrix_Multiplication", afg.Properties{})
	task := g.Task(id)

	first := s.RankedHosts(task)
	if len(first) != 2 {
		t.Fatalf("ranked %d hosts, want 2", len(first))
	}
	d := statsDelta(s, func() {
		second := s.RankedHosts(task)
		if len(second) != len(first) || second[0] != first[0] {
			t.Fatalf("cached ranking differs: %v vs %v", second, first)
		}
	})
	if d.Hits != 1 || d.Misses != 0 {
		t.Fatalf("unchanged-state lookup: %+v, want pure hit", d)
	}
}

func TestWorkloadUpdateInvalidatesRanking(t *testing.T) {
	s := mkSite(t, "s1", []hostSpec{
		{name: "a", speed: 2},
		{name: "b", speed: 1.5},
	})
	g, id := oneTaskGraph(t, "Matrix_Multiplication", afg.Properties{})
	task := g.Task(id)

	if got := s.RankedHosts(task); got[0].Name != "a" {
		t.Fatalf("baseline pick %v", got)
	}
	// Load a heavily: the cached ranking must not survive the update.
	if err := s.Repo.Resources.UpdateWorkload("a", repository.WorkloadSample{
		CPULoad: 0.95, AvailMemBytes: 1 << 30, Time: time.Now(),
	}); err != nil {
		t.Fatal(err)
	}
	d := statsDelta(s, func() {
		if got := s.RankedHosts(task); got[0].Name != "b" {
			t.Fatalf("stale ranking served after workload update: %v", got)
		}
	})
	if d.Misses != 1 || d.Invalidations != 1 {
		t.Fatalf("workload update: %+v, want one invalidating miss", d)
	}
}

func TestStatusDownInvalidatesRanking(t *testing.T) {
	s := mkSite(t, "s1", []hostSpec{
		{name: "a", speed: 2},
		{name: "b", speed: 1},
	})
	g, id := oneTaskGraph(t, "Matrix_Multiplication", afg.Properties{})
	task := g.Task(id)

	s.RankedHosts(task) // warm
	if err := s.Repo.Resources.SetStatus("a", repository.HostDown); err != nil {
		t.Fatal(err)
	}
	got := s.RankedHosts(task)
	if len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("downed host still ranked: %v", got)
	}
	// Recovery must invalidate again.
	if err := s.Repo.Resources.SetStatus("a", repository.HostUp); err != nil {
		t.Fatal(err)
	}
	if got := s.RankedHosts(task); len(got) != 2 {
		t.Fatalf("recovered host missing: %v", got)
	}
}

func TestMeasurementInvalidatesOnlyItsTask(t *testing.T) {
	s := mkSite(t, "s1", []hostSpec{
		{name: "a", speed: 2},
		{name: "b", speed: 1},
	})
	gA, idA := oneTaskGraph(t, "Matrix_Multiplication", afg.Properties{})
	gB, idB := oneTaskGraph(t, "LU_Decomposition", afg.Properties{})
	taskA, taskB := gA.Task(idA), gB.Task(idB)

	s.RankedHosts(taskA) // warm both
	s.RankedHosts(taskB)

	// New measurement for A: A's ranking recomputes, B's stays cached.
	if err := s.Repo.TaskPerf.RecordExecution("Matrix_Multiplication", "a", time.Hour, time.Now()); err != nil {
		t.Fatal(err)
	}
	d := statsDelta(s, func() { s.RankedHosts(taskA) })
	if d.Misses != 1 || d.Invalidations != 1 {
		t.Fatalf("measured task: %+v, want one invalidating miss", d)
	}
	d = statsDelta(s, func() { s.RankedHosts(taskB) })
	if d.Hits != 1 || d.Misses != 0 {
		t.Fatalf("unrelated task: %+v, want pure hit", d)
	}
}

func TestPredictorChangeInvalidatesRanking(t *testing.T) {
	s := mkSite(t, "s1", []hostSpec{
		{name: "a", speed: 2},
		{name: "b", speed: 1},
	})
	g, id := oneTaskGraph(t, "Matrix_Multiplication", afg.Properties{})
	task := g.Task(id)

	first := s.RankedHosts(task)
	// Tuning an exported predictor constant at runtime (as the blend
	// ablation does) must not be served stale cached rankings.
	s.Oracle.P.BaseOpsPerSec *= 2
	d := statsDelta(s, func() {
		second := s.RankedHosts(task)
		if second[0].Single >= first[0].Single {
			t.Fatalf("doubling throughput did not shrink prediction: %v vs %v", second[0], first[0])
		}
	})
	if d.Misses != 1 {
		t.Fatalf("predictor change: %+v, want a recompute", d)
	}
}

func TestWriteOnOneSiteLeavesOtherSiteCached(t *testing.T) {
	s1 := mkSite(t, "s1", []hostSpec{{name: "s1-a", speed: 1}, {name: "s1-b", speed: 2}})
	s2 := mkSite(t, "s2", []hostSpec{{name: "s2-a", speed: 1}})
	g, id := oneTaskGraph(t, "Matrix_Multiplication", afg.Properties{})
	task := g.Task(id)

	s1.RankedHosts(task)
	s2.RankedHosts(task)
	if err := s1.Repo.Resources.UpdateWorkload("s1-a", repository.WorkloadSample{
		CPULoad: 0.5, AvailMemBytes: 1 << 30, Time: time.Now(),
	}); err != nil {
		t.Fatal(err)
	}
	d := statsDelta(s2, func() { s2.RankedHosts(task) })
	if d.Hits != 1 || d.Misses != 0 {
		t.Fatalf("cross-site invalidation leak: %+v, want pure hit on s2", d)
	}
}

func TestConstraintChangeInvalidatesRanking(t *testing.T) {
	s := mkSite(t, "s1", []hostSpec{
		{name: "a", speed: 4},
		{name: "b", speed: 1},
	})
	g, id := oneTaskGraph(t, "Matrix_Multiplication", afg.Properties{})
	task := g.Task(id)

	if got := s.RankedHosts(task); got[0].Name != "a" {
		t.Fatalf("baseline pick %v", got)
	}
	// Uninstalling the task from the fast host must drop it immediately.
	s.Repo.Constraints.RemoveHost("a")
	got := s.RankedHosts(task)
	if len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("stale ranking after constraint change: %v", got)
	}
}

func TestPreferencesGetDistinctCacheEntries(t *testing.T) {
	s := mkSite(t, "s1", []hostSpec{
		{name: "sun", speed: 1, arch: "SUN", os: "Solaris"},
		{name: "sgi", speed: 8, arch: "SGI", os: "IRIX"},
	})
	gAny, idAny := oneTaskGraph(t, "Matrix_Multiplication", afg.Properties{})
	gSun, idSun := oneTaskGraph(t, "Matrix_Multiplication", afg.Properties{MachineType: "SUN Solaris"})

	// Same task name, different preferences: both must be computed (two
	// misses) and neither may serve the other's host set.
	anyRank := s.RankedHosts(gAny.Task(idAny))
	sunRank := s.RankedHosts(gSun.Task(idSun))
	if len(anyRank) != 2 {
		t.Fatalf("unrestricted ranking %v", anyRank)
	}
	if len(sunRank) != 1 || sunRank[0].Name != "sun" {
		t.Fatalf("machine-type ranking leaked across preference key: %v", sunRank)
	}
	st := s.CacheStats()
	if st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 distinct entries", st.Misses)
	}
}

// TestRankedHostsConcurrentRoundsNeverServeStale hammers one site with
// concurrent scheduler rounds while a writer flips status, pushes
// workloads, and records measurements. Run under -race this checks the
// lock-free read path; the serial asserts after each write prove a
// completed write is immediately visible (no stale ranking outlives the
// generation bump).
func TestRankedHostsConcurrentRoundsNeverServeStale(t *testing.T) {
	hosts := []hostSpec{
		{name: "h0", speed: 1}, {name: "h1", speed: 2},
		{name: "h2", speed: 3}, {name: "h3", speed: 4},
	}
	s := mkSite(t, "s1", hosts)
	g, id := oneTaskGraph(t, "Matrix_Multiplication", afg.Properties{})
	task := g.Task(id)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sel, err := s.HostSelection(g)
				if err != nil {
					t.Error(err)
					return
				}
				// A round may see the pre- or post-write epoch, but its
				// choice must be a host that exists.
				if c := sel[id]; c.Err == "" && len(c.Hosts) == 0 {
					t.Error("empty choice without error")
					return
				}
			}
		}()
	}

	for i := 0; i < 200; i++ {
		victim := hosts[i%len(hosts)].name
		switch i % 3 {
		case 0:
			if err := s.Repo.Resources.SetStatus(victim, repository.HostDown); err != nil {
				t.Fatal(err)
			}
			// The write completed: a fresh ranking must exclude victim.
			for _, r := range s.RankedHosts(task) {
				if r.Name == victim {
					t.Fatalf("stale ranking: %s served after SetStatus(down)", victim)
				}
			}
			if err := s.Repo.Resources.SetStatus(victim, repository.HostUp); err != nil {
				t.Fatal(err)
			}
		case 1:
			load := float64(i%10) / 10
			if err := s.Repo.Resources.UpdateWorkload(victim, repository.WorkloadSample{
				CPULoad: load, AvailMemBytes: 1 << 30, Time: time.Now(),
			}); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := s.Repo.TaskPerf.RecordExecution("Matrix_Multiplication", victim,
				time.Duration(i+1)*time.Millisecond, time.Now()); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()

	// Final serial check: every host is up again; ranking covers all.
	if got := s.RankedHosts(task); len(got) != len(hosts) {
		t.Fatalf("final ranking has %d hosts, want %d", len(got), len(hosts))
	}
}

// TestRankCacheSteadyStateHitRatio runs a soak of many scheduling rounds
// with occasional updates: the cache must serve the overwhelming
// majority of lookups from generation-validated entries.
func TestRankCacheSteadyStateHitRatio(t *testing.T) {
	var hosts []hostSpec
	for i := 0; i < 8; i++ {
		hosts = append(hosts, hostSpec{name: fmt.Sprintf("h%d", i), speed: float64(i%4 + 1)})
	}
	s := mkSite(t, "s1", hosts)
	g, _ := oneTaskGraph(t, "Matrix_Multiplication", afg.Properties{})

	const rounds = 500
	for i := 0; i < rounds; i++ {
		if i%100 == 50 { // a rare monitor write
			if err := s.Repo.Resources.UpdateWorkload("h0", repository.WorkloadSample{
				CPULoad: 0.1, AvailMemBytes: 1 << 30, Time: time.Now(),
			}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.HostSelection(g); err != nil {
			t.Fatal(err)
		}
	}
	st := s.CacheStats()
	if ratio := st.HitRatio(); ratio < 0.95 {
		t.Fatalf("steady-state hit ratio %.3f (%+v), want >= 0.95", ratio, st)
	}
	if st.Invalidations == 0 {
		t.Fatal("soak produced no invalidations; updates not exercised")
	}
}
