package core

import (
	"fmt"
	"sync"
	"time"

	"vdce/internal/afg"
	"vdce/internal/netmodel"
)

// PriorityMode selects the list-scheduling priority. LevelPriority is the
// paper's heuristic; FIFOPriority is the ablation baseline that scans the
// ready set in task-ID order.
type PriorityMode int

const (
	// LevelPriority orders ready tasks by descending level (Fig. 2 + §3).
	LevelPriority PriorityMode = iota
	// FIFOPriority orders ready tasks by ascending task ID.
	FIFOPriority
)

// Scheduler is one site's Application Scheduler (Fig. 2). Local is the
// site it runs on; Remote lists the reachable peer sites (their
// schedulers), of which the K nearest by network latency participate in
// each scheduling round; Net supplies transfer-time estimates.
type Scheduler struct {
	Local  SiteService
	Remote []SiteService
	Net    *netmodel.Network
	// K is the paper's "k nearest VDCE neighbor sites". K <= 0 schedules
	// on the local site alone.
	K int
	// Priority selects the list-scheduling order; LevelPriority unless
	// overridden for ablations.
	Priority PriorityMode
}

// NewScheduler returns a level-priority scheduler over the given sites.
func NewScheduler(local SiteService, remote []SiteService, net *netmodel.Network, k int) *Scheduler {
	return &Scheduler{Local: local, Remote: remote, Net: net, K: k}
}

// neighborServices resolves the K nearest remote sites that have a
// reachable SiteService (Fig. 2 step 2).
func (s *Scheduler) neighborServices() ([]SiteService, error) {
	if s.K <= 0 || len(s.Remote) == 0 {
		return nil, nil
	}
	byName := make(map[string]SiteService, len(s.Remote))
	for _, r := range s.Remote {
		byName[r.SiteName()] = r
	}
	names, err := s.Net.Nearest(s.Local.SiteName(), len(byName))
	if err != nil {
		return nil, err
	}
	var out []SiteService
	for _, n := range names {
		if svc, ok := byName[n]; ok {
			out = append(out, svc)
			if len(out) == s.K {
				break
			}
		}
	}
	return out, nil
}

// multicast runs HostSelection on every site concurrently (Fig. 2 steps
// 3-5). Sites that error are dropped with their error recorded. The
// caller has already validated g, so in-process sites take the
// no-revalidation fast path; remote sites validate on their own side of
// the wire as always.
func multicast(g *afg.Graph, sites []SiteService) (map[string]Selection, map[string]error) {
	selections := make(map[string]Selection, len(sites))
	errs := make(map[string]error)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, svc := range sites {
		wg.Add(1)
		go func(svc SiteService) {
			defer wg.Done()
			var sel Selection
			var err error
			if ls, ok := svc.(*LocalSite); ok {
				sel = ls.hostSelectionValidated(g)
			} else {
				sel, err = svc.HostSelection(g)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs[svc.SiteName()] = err
				return
			}
			selections[svc.SiteName()] = sel
		}(svc)
	}
	wg.Wait()
	return selections, errs
}

// Schedule runs the Site Scheduler Algorithm (Fig. 2) and returns the
// resource allocation table. cost supplies each task's level-computation
// cost (the base-processor time from the task-performance database).
func (s *Scheduler) Schedule(g *afg.Graph, cost afg.CostFunc) (*AllocationTable, error) {
	if s.Local == nil {
		return nil, ErrNoSites
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	// Priorities are computed before the scheduling run (§3).
	levels, err := g.Levels(cost)
	if err != nil {
		return nil, err
	}

	// Steps 2-5: gather host selections from the local site and the k
	// nearest remote sites.
	neighbors, err := s.neighborServices()
	if err != nil {
		return nil, err
	}
	sites := append([]SiteService{s.Local}, neighbors...)
	selections, siteErrs := multicast(g, sites)
	if len(selections) == 0 {
		return nil, fmt.Errorf("core: every site failed host selection: %v", siteErrs)
	}

	// Steps 6-7: walk the ready set in priority order.
	table := &AllocationTable{App: g.Name}
	assignedSite := make(map[afg.TaskID]string, len(g.Tasks))
	rs := afg.NewReadySet(g)
	local := s.Local.SiteName()

	for !rs.Empty() {
		id := s.nextReady(rs, levels)
		task := g.Task(id)

		// Candidate sites: those whose host selection produced a real
		// choice for this task.
		var cands []string
		for name, sel := range selections {
			if c, ok := sel[id]; ok && c.Err == "" && len(c.Hosts) > 0 {
				cands = append(cands, name)
			}
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("%w: task %d (%s)", ErrNoEligibleSite, id, task.Name)
		}
		sortCandidates(cands, local)

		inEdges := g.InEdges(id)
		noInput := len(inEdges) == 0 // entry task or no dataflow input

		totals := make([]time.Duration, len(cands))
		transfers := make([]time.Duration, len(cands))
		for i, siteName := range cands {
			choice := selections[siteName][id]
			if noInput {
				totals[i] = choice.Predicted
				continue
			}
			// Time_total(task, Sj) = sum of transfer times from each
			// parent's site + Predict(task, Rj).
			var xfer time.Duration
			for _, e := range inEdges {
				parentSite, ok := assignedSite[e.From]
				if !ok {
					return nil, fmt.Errorf("core: parent %d of task %d not yet assigned", e.From, id)
				}
				t, err := s.Net.TransferTime(g.EdgeSize(e), parentSite, siteName)
				if err != nil {
					return nil, err
				}
				xfer += t
			}
			transfers[i] = xfer
			totals[i] = choice.Predicted + xfer
		}
		best := pickMin(totals)
		chosen := selections[cands[best]][id]
		table.Entries = append(table.Entries, Placement{
			Task:       id,
			TaskName:   task.Name,
			Site:       chosen.Site,
			Hosts:      append([]string(nil), chosen.Hosts...),
			Predicted:  chosen.Predicted,
			TransferIn: transfers[best],
			Level:      levels[id],
		})
		assignedSite[id] = chosen.Site
		if err := rs.Complete(id); err != nil {
			return nil, err
		}
	}
	if err := table.Validate(g); err != nil {
		return nil, err
	}
	return table, nil
}

// nextReady picks the next task from the ready set according to the
// configured priority mode.
func (s *Scheduler) nextReady(rs *afg.ReadySet, levels []float64) afg.TaskID {
	ready := rs.Ready()
	switch s.Priority {
	case FIFOPriority:
		return ready[0] // Ready() is ID-sorted
	default:
		best := ready[0]
		for _, cand := range ready[1:] {
			if levels[cand] > levels[best] || (levels[cand] == levels[best] && cand < best) {
				best = cand
			}
		}
		return best
	}
}
