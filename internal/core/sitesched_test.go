package core

import (
	"errors"
	"testing"
	"time"

	"vdce/internal/afg"
	"vdce/internal/netmodel"
	"vdce/internal/predict"
	"vdce/internal/tasklib"
)

// costFrom builds the level cost function from a site's oracle, as the
// facade does.
func costFrom(t *testing.T, s *LocalSite, g *afg.Graph) afg.CostFunc {
	t.Helper()
	return func(id afg.TaskID) float64 {
		d, err := s.Oracle.BaseTimeFor(g.Task(id).Name)
		if err != nil {
			t.Fatalf("BaseTimeFor(%s): %v", g.Task(id).Name, err)
		}
		return d.Seconds()
	}
}

func twoSiteCluster(t *testing.T) (*LocalSite, *LocalSite, *netmodel.Network) {
	t.Helper()
	a := mkSite(t, "siteA", []hostSpec{
		{name: "a1", speed: 1}, {name: "a2", speed: 1},
	})
	b := mkSite(t, "siteB", []hostSpec{
		{name: "b1", speed: 8}, {name: "b2", speed: 8},
	})
	net, err := netmodel.New([]string{"siteA", "siteB"})
	if err != nil {
		t.Fatal(err)
	}
	return a, b, net
}

func TestScheduleSingleSite(t *testing.T) {
	a := mkSite(t, "siteA", []hostSpec{{name: "a1", speed: 2}, {name: "a2", speed: 1}})
	net, _ := netmodel.New([]string{"siteA"})
	g, err := tasklib.BuildLinearEquationSolver(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(a, nil, net, 0)
	table, err := sched.Schedule(g, costFrom(t, a, g))
	if err != nil {
		t.Fatal(err)
	}
	if err := table.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Everything must land on siteA.
	for _, e := range table.Entries {
		if e.Site != "siteA" {
			t.Fatalf("task %d on %s with no remote sites", e.Task, e.Site)
		}
	}
	if table.String() == "" || table.TotalPredicted() <= 0 {
		t.Fatal("table rendering broken")
	}
}

func TestScheduleUsesFasterRemoteForEntryTasks(t *testing.T) {
	a, b, net := twoSiteCluster(t)
	// Entry tasks have no input: Fig. 2 assigns them purely by predicted
	// time, so the 8x faster siteB must win them.
	g, id := oneTaskGraph(t, "Matrix_Generate", afg.Properties{})
	sched := NewScheduler(a, []SiteService{b}, net, 1)
	table, err := sched.Schedule(g, costFrom(t, a, g))
	if err != nil {
		t.Fatal(err)
	}
	if p := table.Placement(id); p == nil || p.Site != "siteB" {
		t.Fatalf("entry task placed at %+v, want siteB", p)
	}
}

func TestScheduleKeepsChildNearParentWhenTransferDominates(t *testing.T) {
	a, b, net := twoSiteCluster(t)
	// Cripple the WAN so moving data to the fast site is ruinous.
	if err := net.SetLink("siteA", "siteB", netmodel.Link{
		Latency: 5 * time.Second, BytesPerSec: 1,
	}); err != nil {
		t.Fatal(err)
	}
	g := afg.NewGraph("chain")
	gen := g.AddTask("Matrix_Generate", "matrix", 0, 1)
	mul := g.AddTask("Matrix_Multiplication", "matrix", 2, 1)
	tr := g.AddTask("Matrix_Transpose", "matrix", 1, 1)
	if err := g.Connect(gen, 0, mul, 0, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(gen, 0, mul, 1, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(mul, 0, tr, 0, 1<<20); err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(a, []SiteService{b}, net, 1)
	table, err := sched.Schedule(g, costFrom(t, a, g))
	if err != nil {
		t.Fatal(err)
	}
	// The entry goes to fast siteB; its children must stay there rather
	// than pay the transfer back to siteA.
	entrySite := table.Placement(gen).Site
	if entrySite != "siteB" {
		t.Fatalf("entry at %s", entrySite)
	}
	if got := table.Placement(mul).Site; got != entrySite {
		t.Fatalf("child crossed a dead WAN: %s vs %s", got, entrySite)
	}
	if got := table.Placement(tr).Site; got != entrySite {
		t.Fatalf("grandchild crossed a dead WAN: %s", got)
	}
}

func TestScheduleHonorsK(t *testing.T) {
	a := mkSite(t, "s0", []hostSpec{{name: "h0", speed: 1}})
	b := mkSite(t, "s1", []hostSpec{{name: "h1", speed: 2}})
	c := mkSite(t, "s2", []hostSpec{{name: "h2", speed: 16}})
	net, err := netmodel.New([]string{"s0", "s1", "s2"})
	if err != nil {
		t.Fatal(err)
	}
	// s1 is nearer than s2; with K=1 only s1 participates, so the very
	// fast s2 host must NOT be used.
	_ = net.SetLink("s0", "s1", netmodel.Link{Latency: time.Millisecond, BytesPerSec: 1e6})
	_ = net.SetLink("s0", "s2", netmodel.Link{Latency: 100 * time.Millisecond, BytesPerSec: 1e6})
	g, id := oneTaskGraph(t, "Matrix_Generate", afg.Properties{})
	sched := NewScheduler(a, []SiteService{b, c}, net, 1)
	table, err := sched.Schedule(g, costFrom(t, a, g))
	if err != nil {
		t.Fatal(err)
	}
	if p := table.Placement(id); p.Site == "s2" {
		t.Fatal("K=1 scheduler used the 2nd-nearest site")
	}
	// With K=2 the fast site wins.
	sched.K = 2
	table2, err := sched.Schedule(g, costFrom(t, a, g))
	if err != nil {
		t.Fatal(err)
	}
	if p := table2.Placement(id); p.Site != "s2" {
		t.Fatalf("K=2 ignored the fastest site: %s", p.Site)
	}
}

func TestScheduleLevelVsFIFOOrder(t *testing.T) {
	a := mkSite(t, "siteA", []hostSpec{{name: "a1", speed: 1}})
	net, _ := netmodel.New([]string{"siteA"})
	// Two independent chains: X (heavy) and Y (light), plus a shared sink.
	// Level priority must schedule the heavy chain's head first.
	g := afg.NewGraph("prio")
	light := g.AddTask("Vector_Generate", "matrix", 0, 1)     // ID 0, tiny cost
	heavy := g.AddTask("Matrix_Generate", "matrix", 0, 1)     // ID 1
	heavyMul := g.AddTask("Matrix_Transpose", "matrix", 1, 1) // ID 2
	if err := g.Connect(heavy, 0, heavyMul, 0, 8); err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(a, nil, net, 0)
	table, err := sched.Schedule(g, costFrom(t, a, g))
	if err != nil {
		t.Fatal(err)
	}
	if table.Entries[0].Task != heavy {
		t.Fatalf("level priority scheduled task %d first, want heavy chain head %d",
			table.Entries[0].Task, heavy)
	}
	sched.Priority = FIFOPriority
	table2, err := sched.Schedule(g, costFrom(t, a, g))
	if err != nil {
		t.Fatal(err)
	}
	if table2.Entries[0].Task != light {
		t.Fatalf("FIFO priority scheduled task %d first, want lowest ID %d",
			table2.Entries[0].Task, light)
	}
}

func TestScheduleNoEligibleSite(t *testing.T) {
	a := mkSite(t, "siteA", []hostSpec{{name: "a1", speed: 1}})
	net, _ := netmodel.New([]string{"siteA"})
	g, _ := oneTaskGraph(t, "Matrix_Generate", afg.Properties{Host: "not-here"})
	sched := NewScheduler(a, nil, net, 0)
	if _, err := sched.Schedule(g, costFrom(t, a, g)); !errors.Is(err, ErrNoEligibleSite) {
		t.Fatalf("got %v, want ErrNoEligibleSite", err)
	}
}

func TestScheduleNilLocal(t *testing.T) {
	var s Scheduler
	g, _ := oneTaskGraph(t, "Matrix_Generate", afg.Properties{})
	if _, err := s.Schedule(g, func(afg.TaskID) float64 { return 1 }); !errors.Is(err, ErrNoSites) {
		t.Fatalf("got %v", err)
	}
}

func TestSchedulePlacesParallelTaskOnOneSite(t *testing.T) {
	a, b, net := twoSiteCluster(t)
	g, id := oneTaskGraph(t, "LU_Decomposition", afg.Properties{Mode: afg.Parallel, Nodes: 2})
	sched := NewScheduler(a, []SiteService{b}, net, 1)
	table, err := sched.Schedule(g, costFrom(t, a, g))
	if err != nil {
		t.Fatal(err)
	}
	p := table.Placement(id)
	if len(p.Hosts) != 2 {
		t.Fatalf("parallel task has %d hosts", len(p.Hosts))
	}
	// Both hosts belong to the chosen site (paper: parallel tasks select
	// machines within the site).
	for _, h := range p.Hosts {
		info, err := siteOf(a, b, h)
		if err != nil {
			t.Fatal(err)
		}
		if info != p.Site {
			t.Fatalf("host %s of site %s in placement on %s", h, info, p.Site)
		}
	}
}

func siteOf(a, b *LocalSite, host string) (string, error) {
	if _, err := a.Repo.Resources.Host(host); err == nil {
		return a.SiteName(), nil
	}
	if _, err := b.Repo.Resources.Host(host); err == nil {
		return b.SiteName(), nil
	}
	return "", errors.New("host not found in either site")
}

func TestTotalPredictedAndOracleDefaults(t *testing.T) {
	// Guard the assumption the catalog and predictor agree on the base
	// processor: predicted time on an idle speed-1 host equals BaseTime.
	s := mkSite(t, "s", []hostSpec{{name: "h", speed: 1}})
	params, err := s.Repo.TaskPerf.Params("Matrix_Multiplication")
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Oracle.Predict("Matrix_Multiplication", "h", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != params.BaseTime {
		t.Fatalf("idle base-host prediction %v != BaseTime %v", got, params.BaseTime)
	}
	_ = predict.Default() // document the dependency
}
