// Package detect implements the VDCE failure-detection service: a
// heartbeat-based detector that consumes monitor reports, tracks
// per-host last-seen timestamps, and moves hosts through
// healthy -> suspect -> confirmed-dead -> recovered.
//
// The paper's Group Managers detect failures with echo packets and
// immediately mark hosts down; on a wide-area system that turns every
// transient network blip into a scheduling blackout. The detector
// instead requires sustained silence (SuspicionTimeout) plus a
// confirmation quorum of independent suspicion votes — silent
// evaluation rounds and echo-detected failures both count — before a
// host is confirmed dead. Confirmed transitions for a site land in its
// resource-performance database as ONE copy-on-write epoch per
// evaluation round (the ApplyRound batch path), so the lock-free
// scheduling read side always sees a coherent liveness picture and the
// ranked-host caches invalidate once per round, not once per host.
package detect

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vdce/internal/repository"
)

// State is a host's position in the failure-detection lifecycle.
type State int

const (
	// Healthy hosts heartbeat within the suspicion timeout.
	Healthy State = iota
	// Suspect hosts have been silent longer than the suspicion timeout
	// but are not yet confirmed dead; the repository still lists them up.
	Suspect
	// Dead hosts accumulated a confirmation quorum of suspicion votes;
	// the repository marks them down and running tasks are interrupted.
	Dead
	// Recovered hosts heartbeated again after being confirmed dead; the
	// repository marks them up. Recovered behaves like Healthy (the next
	// silence makes it Suspect) but keeps the history visible.
	Recovered
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	case Recovered:
		return "recovered"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Alive reports whether a host in this state is usable for scheduling.
func (s State) Alive() bool { return s == Healthy || s == Recovered }

// Transition is one published state change.
type Transition struct {
	Host string
	Site string
	From State
	To   State
	At   time.Time
}

// Config parameterizes a Detector. Zero fields take the listed defaults.
type Config struct {
	// SuspicionTimeout is how long a host may stay silent before it
	// becomes suspect. It should be a small multiple of the monitor
	// period so one dropped report never raises suspicion. Default 3s.
	SuspicionTimeout time.Duration
	// ConfirmQuorum is how many suspicion votes confirm a death. Every
	// evaluation round a suspect host remains silent contributes one
	// vote, and every echo-detected failure report contributes one, so
	// independent observers shorten confirmation. Default 2.
	ConfirmQuorum int
	// TickPeriod is the cadence of Run's evaluation rounds. Default 1s.
	TickPeriod time.Duration
}

func (c *Config) fillDefaults() {
	if c.SuspicionTimeout <= 0 {
		c.SuspicionTimeout = 3 * time.Second
	}
	if c.ConfirmQuorum <= 0 {
		c.ConfirmQuorum = 2
	}
	if c.TickPeriod <= 0 {
		c.TickPeriod = time.Second
	}
}

// hostState is the detector's bookkeeping for one host.
type hostState struct {
	site     string
	state    State
	lastSeen time.Time // zero until the first heartbeat or first Tick
	votes    int       // suspicion votes accumulated since last heartbeat
}

// Detector is the failure-detection service. One instance watches every
// registered site; heartbeats arrive via Observe (and echo votes via
// ReportFailure), and Tick evaluates all hosts, publishing confirmed
// transitions to each site's repository as a single epoch.
type Detector struct {
	cfg Config

	mu    sync.Mutex
	sites map[string]*repository.ResourceDB
	hosts map[string]*hostState
	subs  []func(Transition)

	// counters for observability and tests
	suspicions    atomic.Int64
	confirmations atomic.Int64
	recoveries    atomic.Int64
	rounds        atomic.Int64
}

// New returns a detector with no sites registered.
func New(cfg Config) *Detector {
	cfg.fillDefaults()
	return &Detector{
		cfg:   cfg,
		sites: make(map[string]*repository.ResourceDB),
		hosts: make(map[string]*hostState),
	}
}

// AddSite registers a site's resource database: every host currently in
// it is watched, and confirmed transitions for the site are published
// through it. Hosts start Healthy with their silence clock starting at
// the first heartbeat or the first evaluation round, whichever comes
// first, so a freshly registered site is never instantly suspect.
func (d *Detector) AddSite(site string, db *repository.ResourceDB) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sites[site] = db
	for _, v := range db.Views() {
		if _, ok := d.hosts[v.HostName]; !ok {
			d.hosts[v.HostName] = &hostState{site: site}
		}
	}
}

// Subscribe registers fn to receive every published transition. fn is
// called after the round's repository epoch is published, outside the
// detector's lock, in deterministic (host name) order within a round.
func (d *Detector) Subscribe(fn func(Transition)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.subs = append(d.subs, fn)
}

// Observe records a heartbeat: any monitor report for the host counts.
// Timestamps never move the last-seen clock backwards. A fresh
// heartbeat clears accumulated suspicion votes — proof of life outranks
// any number of missed echoes. Unknown hosts are ignored (a report can
// outlive a site registration change).
func (d *Detector) Observe(host string, at time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, ok := d.hosts[host]
	if !ok {
		return
	}
	if at.After(h.lastSeen) {
		h.lastSeen = at
		h.votes = 0
	}
}

// ReportFailure records one external suspicion vote — typically a Group
// Manager's echo timeout. Votes accumulate toward the confirmation
// quorum but never confirm by themselves: transitions happen only in
// Tick, so the repository sees at most one liveness epoch per round.
// A vote older than the host's latest heartbeat is discarded: the
// heartbeat already refuted that observation.
func (d *Detector) ReportFailure(host string, at time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, ok := d.hosts[host]
	if !ok {
		return
	}
	if h.state == Dead || !at.After(h.lastSeen) {
		return
	}
	h.votes++
}

// Tick runs one evaluation round at the given time: silent hosts accrue
// suspicion, quorums confirm deaths, heartbeating suspects heal, and
// heartbeating dead hosts recover. All confirmed status changes for a
// site are published as one ApplyRound epoch; subscribers then see the
// round's transitions in host-name order. It returns the transitions.
func (d *Detector) Tick(now time.Time) ([]Transition, error) {
	d.rounds.Add(1)
	var trs []Transition
	updates := make(map[string][]repository.RoundUpdate)

	d.mu.Lock()
	names := make([]string, 0, len(d.hosts))
	for name := range d.hosts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := d.hosts[name]
		if h.lastSeen.IsZero() {
			// Never heard from: start the silence clock at this round.
			h.lastSeen = now
			continue
		}
		silent := now.Sub(h.lastSeen) > d.cfg.SuspicionTimeout
		switch h.state {
		case Healthy, Recovered:
			if silent {
				from := h.state
				h.state = Suspect
				// This round's silence is one vote; echo-timeout votes
				// accumulated since the last real heartbeat (Observe
				// resets them) count toward the same quorum, so
				// independent observers genuinely shorten confirmation.
				h.votes++
				d.suspicions.Add(1)
				trs = append(trs, Transition{Host: name, Site: h.site, From: from, To: Suspect, At: now})
				if h.votes >= d.cfg.ConfirmQuorum {
					h.state = Dead
					d.confirmations.Add(1)
					trs = append(trs, Transition{Host: name, Site: h.site, From: Suspect, To: Dead, At: now})
					updates[h.site] = append(updates[h.site],
						repository.RoundUpdate{Host: name, Status: repository.HostDown})
				}
			}
		case Suspect:
			if !silent {
				h.state = Healthy
				h.votes = 0
				trs = append(trs, Transition{Host: name, Site: h.site, From: Suspect, To: Healthy, At: now})
				continue
			}
			h.votes++
			if h.votes >= d.cfg.ConfirmQuorum {
				h.state = Dead
				d.confirmations.Add(1)
				trs = append(trs, Transition{Host: name, Site: h.site, From: Suspect, To: Dead, At: now})
				updates[h.site] = append(updates[h.site],
					repository.RoundUpdate{Host: name, Status: repository.HostDown})
			}
		case Dead:
			if !silent {
				h.state = Recovered
				h.votes = 0
				d.recoveries.Add(1)
				trs = append(trs, Transition{Host: name, Site: h.site, From: Dead, To: Recovered, At: now})
				updates[h.site] = append(updates[h.site],
					repository.RoundUpdate{Host: name, Status: repository.HostUp})
			}
		}
	}
	subs := append([]func(Transition){}, d.subs...)
	dbs := make(map[string]*repository.ResourceDB, len(updates))
	for site := range updates {
		dbs[site] = d.sites[site]
	}
	d.mu.Unlock()

	// Publish each site's confirmed changes as one epoch, then notify.
	var firstErr error
	sites := make([]string, 0, len(updates))
	for site := range updates {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	for _, site := range sites {
		if db := dbs[site]; db != nil {
			if _, err := db.ApplyRound(updates[site]); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("detect: publish %s round: %w", site, err)
			}
		}
	}
	for _, tr := range trs {
		for _, fn := range subs {
			fn(tr)
		}
	}
	return trs, firstErr
}

// Run evaluates rounds every TickPeriod until ctx is done.
func (d *Detector) Run(ctx context.Context) {
	t := time.NewTicker(d.cfg.TickPeriod)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			_, _ = d.Tick(now)
		}
	}
}

// State returns the detector's current view of one host.
func (d *Detector) State(host string) (State, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, ok := d.hosts[host]
	if !ok {
		return Healthy, false
	}
	return h.state, true
}

// Counts returns how many hosts sit in each state.
func (d *Detector) Counts() map[State]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[State]int)
	for _, h := range d.hosts {
		out[h.state]++
	}
	return out
}

// Stats reports (suspicions raised, deaths confirmed, recoveries seen,
// evaluation rounds run) since the detector was created.
func (d *Detector) Stats() (suspicions, confirmations, recoveries, rounds int64) {
	return d.suspicions.Load(), d.confirmations.Load(), d.recoveries.Load(), d.rounds.Load()
}
