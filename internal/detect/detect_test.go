package detect

import (
	"testing"
	"time"

	"vdce/internal/repository"
)

// fixture builds a detector over one site with the given hosts, all
// heartbeating at t0.
func fixture(t *testing.T, cfg Config, hosts ...string) (*Detector, *repository.ResourceDB, time.Time) {
	t.Helper()
	db := repository.NewResourceDB()
	for _, h := range hosts {
		if err := db.AddHost(repository.ResourceInfo{
			HostName: h, Site: "s0", TotalMem: 1 << 20,
		}); err != nil {
			t.Fatal(err)
		}
	}
	d := New(cfg)
	d.AddSite("s0", db)
	t0 := time.Unix(1000, 0)
	for _, h := range hosts {
		d.Observe(h, t0)
	}
	return d, db, t0
}

func status(t *testing.T, db *repository.ResourceDB, host string) repository.HostStatus {
	t.Helper()
	v, ok := db.View(host)
	if !ok {
		t.Fatalf("host %s missing from db", host)
	}
	return v.Status
}

func TestLifecycleHealthySuspectDeadRecovered(t *testing.T) {
	cfg := Config{SuspicionTimeout: time.Second, ConfirmQuorum: 2}
	d, db, t0 := fixture(t, cfg, "a", "b")

	// Round 1 at t0+2s: "a" keeps heartbeating, "b" goes silent.
	d.Observe("a", t0.Add(2*time.Second))
	trs, err := d.Tick(t0.Add(2 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 1 || trs[0].Host != "b" || trs[0].To != Suspect {
		t.Fatalf("round 1 transitions = %+v, want b -> suspect", trs)
	}
	if st, _ := d.State("b"); st != Suspect {
		t.Fatalf("b state = %v", st)
	}
	// Suspicion is not confirmation: the repository still lists b up.
	if got := status(t, db, "b"); got != repository.HostUp {
		t.Fatalf("suspect b already marked %s", got)
	}

	// Round 2: still silent -> quorum of 2 reached -> confirmed dead.
	d.Observe("a", t0.Add(4*time.Second))
	trs, err = d.Tick(t0.Add(4 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 1 || trs[0].To != Dead || trs[0].From != Suspect {
		t.Fatalf("round 2 transitions = %+v, want b suspect -> dead", trs)
	}
	if got := status(t, db, "b"); got != repository.HostDown {
		t.Fatalf("confirmed-dead b marked %s, want down", got)
	}

	// b heartbeats again -> recovered, repository back up.
	d.Observe("b", t0.Add(6*time.Second))
	d.Observe("a", t0.Add(6*time.Second))
	trs, err = d.Tick(t0.Add(6 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 1 || trs[0].To != Recovered {
		t.Fatalf("round 3 transitions = %+v, want b -> recovered", trs)
	}
	if got := status(t, db, "b"); got != repository.HostUp {
		t.Fatalf("recovered b marked %s, want up", got)
	}
	if !Healthy.Alive() || !Recovered.Alive() || Suspect.Alive() || Dead.Alive() {
		t.Fatal("state aliveness misclassified")
	}

	sus, conf, rec, rounds := d.Stats()
	if sus != 1 || conf != 1 || rec != 1 || rounds != 3 {
		t.Fatalf("stats = %d/%d/%d/%d", sus, conf, rec, rounds)
	}
}

func TestSuspectHealsOnHeartbeat(t *testing.T) {
	cfg := Config{SuspicionTimeout: time.Second, ConfirmQuorum: 3}
	d, db, t0 := fixture(t, cfg, "a")

	if _, err := d.Tick(t0.Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if st, _ := d.State("a"); st != Suspect {
		t.Fatalf("a = %v, want suspect", st)
	}
	// The heartbeat returns before the quorum fills: back to healthy,
	// votes reset, repository untouched throughout.
	gen := db.Generation()
	d.Observe("a", t0.Add(3*time.Second))
	trs, err := d.Tick(t0.Add(3 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 1 || trs[0].From != Suspect || trs[0].To != Healthy {
		t.Fatalf("transitions = %+v, want suspect -> healthy", trs)
	}
	if db.Generation() != gen {
		t.Fatal("suspicion round published a repository epoch")
	}
	// A fresh silence must re-earn the full quorum.
	if _, err := d.Tick(t0.Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if st, _ := d.State("a"); st != Suspect {
		t.Fatalf("a = %v, want suspect again", st)
	}
	if got := status(t, db, "a"); got != repository.HostUp {
		t.Fatalf("a marked %s before quorum", got)
	}
}

func TestEchoVotesAccelerateConfirmation(t *testing.T) {
	cfg := Config{SuspicionTimeout: time.Second, ConfirmQuorum: 3}
	d, db, t0 := fixture(t, cfg, "a")

	// Two echo-timeout votes plus the first silent round = quorum of 3:
	// one evaluation round confirms instead of three.
	d.ReportFailure("a", t0.Add(1500*time.Millisecond))
	d.ReportFailure("a", t0.Add(1600*time.Millisecond))
	trs, err := d.Tick(t0.Add(2 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 2 || trs[0].To != Suspect || trs[1].To != Dead {
		t.Fatalf("transitions = %+v, want suspect then dead in one round", trs)
	}
	if got := status(t, db, "a"); got != repository.HostDown {
		t.Fatalf("a marked %s, want down", got)
	}
}

// TestEchoVotesSurviveUntilSuspicion: votes reported while the silence
// is still below the suspicion threshold must not be wiped by an
// intermediate evaluation round — only a real heartbeat clears them.
func TestEchoVotesSurviveUntilSuspicion(t *testing.T) {
	cfg := Config{SuspicionTimeout: time.Second, ConfirmQuorum: 3}
	d, db, t0 := fixture(t, cfg, "a")

	// Crash at t0: heartbeats stop; two echo timeouts land before the
	// suspicion threshold is crossed.
	d.ReportFailure("a", t0.Add(200*time.Millisecond))
	d.ReportFailure("a", t0.Add(400*time.Millisecond))
	// A round before the threshold sees nothing yet — and must not
	// reset the accumulated votes.
	if trs, _ := d.Tick(t0.Add(500 * time.Millisecond)); len(trs) != 0 {
		t.Fatalf("pre-threshold transitions = %+v", trs)
	}
	// First round past the threshold: 2 echo votes + this round's
	// silence fill the quorum of 3 immediately.
	trs, err := d.Tick(t0.Add(1500 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 2 || trs[1].To != Dead {
		t.Fatalf("transitions = %+v, want suspect+dead in the first silent round", trs)
	}
	if got := status(t, db, "a"); got != repository.HostDown {
		t.Fatalf("a marked %s", got)
	}
}

// TestStaleEchoVoteDiscarded: a failure notice older than the host's
// latest heartbeat is refuted evidence and must not count toward the
// quorum.
func TestStaleEchoVoteDiscarded(t *testing.T) {
	cfg := Config{SuspicionTimeout: time.Second, ConfirmQuorum: 2}
	d, db, t0 := fixture(t, cfg, "a")

	d.Observe("a", t0.Add(2*time.Second))
	// Delivered late: the echo timed out before the heartbeat above.
	d.ReportFailure("a", t0.Add(1*time.Second))
	trs, err := d.Tick(t0.Add(3500 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// Fresh silence alone: one vote — suspect, not dead. A counted
	// stale vote would have confirmed death here.
	if len(trs) != 1 || trs[0].To != Suspect {
		t.Fatalf("transitions = %+v, want suspect only", trs)
	}
	if got := status(t, db, "a"); got != repository.HostUp {
		t.Fatalf("a marked %s on a stale vote", got)
	}
}

func TestEchoVotesAloneNeverConfirm(t *testing.T) {
	cfg := Config{SuspicionTimeout: time.Second, ConfirmQuorum: 2}
	d, db, t0 := fixture(t, cfg, "a")

	// A flood of echo votes while the heartbeat stream is alive must not
	// kill the host: heartbeats reset the vote count every round.
	for i := 0; i < 10; i++ {
		d.ReportFailure("a", t0)
	}
	d.Observe("a", t0.Add(2*time.Second))
	trs, err := d.Tick(t0.Add(2 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 0 {
		t.Fatalf("transitions = %+v, want none", trs)
	}
	if st, _ := d.State("a"); st != Healthy {
		t.Fatalf("a = %v, want healthy", st)
	}
	if got := status(t, db, "a"); got != repository.HostUp {
		t.Fatalf("a marked %s", got)
	}
}

// TestRoundPublishesSingleEpoch is the batching contract: however many
// hosts are confirmed in one round, the site repository moves exactly
// one generation, so the lock-free read side sees one coherent flip.
func TestRoundPublishesSingleEpoch(t *testing.T) {
	cfg := Config{SuspicionTimeout: time.Second, ConfirmQuorum: 1}
	d, db, t0 := fixture(t, cfg, "a", "b", "c", "d")

	gen := db.Generation()
	trs, err := d.Tick(t0.Add(2 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	dead := 0
	for _, tr := range trs {
		if tr.To == Dead {
			dead++
		}
	}
	if dead != 4 {
		t.Fatalf("confirmed %d deaths, want 4: %+v", dead, trs)
	}
	if got := db.Generation(); got != gen+1 {
		t.Fatalf("4 confirmations moved the epoch %d times, want 1", got-gen)
	}
	for _, h := range []string{"a", "b", "c", "d"} {
		if got := status(t, db, h); got != repository.HostDown {
			t.Fatalf("%s marked %s", h, got)
		}
	}
}

func TestNeverSeenHostGetsGracePeriod(t *testing.T) {
	db := repository.NewResourceDB()
	if err := db.AddHost(repository.ResourceInfo{HostName: "quiet", Site: "s0"}); err != nil {
		t.Fatal(err)
	}
	d := New(Config{SuspicionTimeout: time.Second, ConfirmQuorum: 1})
	d.AddSite("s0", db)
	t0 := time.Unix(2000, 0)
	// First round only starts the silence clock; no instant suspicion.
	if trs, _ := d.Tick(t0); len(trs) != 0 {
		t.Fatalf("first round transitions = %+v", trs)
	}
	// But sustained silence after that is a real failure.
	trs, err := d.Tick(t0.Add(2 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 2 || trs[len(trs)-1].To != Dead {
		t.Fatalf("transitions = %+v, want suspect+dead", trs)
	}
}

func TestUnknownHostsIgnored(t *testing.T) {
	d, _, t0 := fixture(t, Config{}, "a")
	d.Observe("ghost", t0)
	d.ReportFailure("ghost", t0)
	if _, ok := d.State("ghost"); ok {
		t.Fatal("ghost host tracked")
	}
}

func TestSubscribersSeeOrderedTransitions(t *testing.T) {
	cfg := Config{SuspicionTimeout: time.Second, ConfirmQuorum: 1}
	d, db, t0 := fixture(t, cfg, "b", "a", "c")

	var got []Transition
	d.Subscribe(func(tr Transition) {
		// The round's epoch must already be published when a subscriber
		// runs — the engine relies on the repository agreeing with the
		// transition it is reacting to.
		if tr.To == Dead {
			if v, _ := db.View(tr.Host); v.Status != repository.HostDown {
				t.Errorf("subscriber saw %s dead before the epoch published", tr.Host)
			}
		}
		got = append(got, tr)
	})
	if _, err := d.Tick(t0.Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	var deadOrder []string
	for _, tr := range got {
		if tr.To == Dead {
			deadOrder = append(deadOrder, tr.Host)
		}
	}
	want := []string{"a", "b", "c"}
	if len(deadOrder) != 3 {
		t.Fatalf("dead transitions = %v", deadOrder)
	}
	for i := range want {
		if deadOrder[i] != want[i] {
			t.Fatalf("transition order %v, want %v", deadOrder, want)
		}
	}
	if c := d.Counts(); c[Dead] != 3 {
		t.Fatalf("counts = %v", c)
	}
}
