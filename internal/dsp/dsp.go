// Package dsp provides the signal-processing kernels behind the VDCE
// "signal" task library: radix-2 FFT, power spectra, FIR filtering, and
// peak detection. Like linalg, it is deterministic and stdlib-only so
// task-performance measurements are reproducible.
package dsp

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// ErrNotPowerOfTwo is returned by the radix-2 FFT for bad lengths.
var ErrNotPowerOfTwo = errors.New("dsp: length is not a power of two")

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT computes the in-place-free radix-2 decimation-in-time FFT of x.
// len(x) must be a power of two.
func FFT(x []complex128) ([]complex128, error) {
	n := len(x)
	if !IsPowerOfTwo(n) {
		return nil, fmt.Errorf("%w: %d", ErrNotPowerOfTwo, n)
	}
	out := make([]complex128, n)
	copy(out, x)
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			out[i], out[j] = out[j], out[i]
		}
		mask := n >> 1
		for ; j&mask != 0; mask >>= 1 {
			j &^= mask
		}
		j |= mask
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := -2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := cmplx.Exp(complex(0, step*float64(k)))
				a := out[start+k]
				b := out[start+k+half] * w
				out[start+k] = a + b
				out[start+k+half] = a - b
			}
		}
	}
	return out, nil
}

// IFFT computes the inverse FFT.
func IFFT(x []complex128) ([]complex128, error) {
	n := len(x)
	conj := make([]complex128, n)
	for i, v := range x {
		conj[i] = cmplx.Conj(v)
	}
	fwd, err := FFT(conj)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, n)
	for i, v := range fwd {
		out[i] = cmplx.Conj(v) / complex(float64(n), 0)
	}
	return out, nil
}

// RealFFT transforms a real signal, returning the complex spectrum.
func RealFFT(x []float64) ([]complex128, error) {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return FFT(c)
}

// PowerSpectrum returns |X[k]|^2 / n for the first n/2+1 bins of a real
// signal's FFT.
func PowerSpectrum(x []float64) ([]float64, error) {
	spec, err := RealFFT(x)
	if err != nil {
		return nil, err
	}
	n := len(x)
	out := make([]float64, n/2+1)
	for k := range out {
		m := cmplx.Abs(spec[k])
		out[k] = m * m / float64(n)
	}
	return out, nil
}

// Convolve returns the full linear convolution of a and b (length
// len(a)+len(b)-1), computed directly; fine for the filter lengths the
// task library uses.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

// LowpassFIR designs a windowed-sinc low-pass FIR filter with the given
// number of taps (odd, >= 3) and normalized cutoff in (0, 0.5).
func LowpassFIR(taps int, cutoff float64) ([]float64, error) {
	if taps < 3 || taps%2 == 0 {
		return nil, fmt.Errorf("dsp: taps must be odd and >= 3, got %d", taps)
	}
	if cutoff <= 0 || cutoff >= 0.5 {
		return nil, fmt.Errorf("dsp: cutoff %g outside (0, 0.5)", cutoff)
	}
	h := make([]float64, taps)
	mid := taps / 2
	var sum float64
	for i := range h {
		m := float64(i - mid)
		var v float64
		if m == 0 {
			v = 2 * cutoff
		} else {
			v = math.Sin(2*math.Pi*cutoff*m) / (math.Pi * m)
		}
		// Hamming window.
		v *= 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(taps-1))
		h[i] = v
		sum += v
	}
	// Normalize DC gain to 1.
	for i := range h {
		h[i] /= sum
	}
	return h, nil
}

// Peak is a detected spectral peak.
type Peak struct {
	Bin   int
	Power float64
}

// FindPeaks returns local maxima of the spectrum above threshold, sorted
// by descending power.
func FindPeaks(spectrum []float64, threshold float64) []Peak {
	var out []Peak
	for i := 1; i < len(spectrum)-1; i++ {
		if spectrum[i] >= threshold && spectrum[i] > spectrum[i-1] && spectrum[i] >= spectrum[i+1] {
			out = append(out, Peak{Bin: i, Power: spectrum[i]})
		}
	}
	// Insertion sort by power (peak lists are short).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Power > out[j-1].Power; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Synthesize builds a test signal: a sum of sinusoids (freq in cycles
// per full window, amplitude) plus Gaussian noise with the given stddev.
func Synthesize(n int, tones [][2]float64, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		t := float64(i) / float64(n)
		for _, tone := range tones {
			out[i] += tone[1] * math.Sin(2*math.Pi*tone[0]*t)
		}
		if noise > 0 {
			out[i] += rng.NormFloat64() * noise
		}
	}
	return out
}
