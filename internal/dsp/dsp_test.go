package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTKnownValues(t *testing.T) {
	// FFT of an impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	out, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT bin %d = %v", i, v)
		}
	}
	// FFT of a constant is an impulse at DC.
	for i := range x {
		x[i] = 1
	}
	out, err = FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(out[0]-8) > 1e-12 {
		t.Fatalf("DC bin = %v", out[0])
	}
	for i := 1; i < 8; i++ {
		if cmplx.Abs(out[i]) > 1e-12 {
			t.Fatalf("bin %d = %v, want 0", i, out[i])
		}
	}
}

func TestFFTRejectsBadLengths(t *testing.T) {
	for _, n := range []int{0, 3, 6, 100} {
		if _, err := FFT(make([]complex128, n)); err == nil {
			t.Errorf("FFT accepted length %d", n)
		}
	}
}

func TestIFFTInverts(t *testing.T) {
	sig := Synthesize(64, [][2]float64{{3, 1}, {9, 0.5}}, 0.1, 7)
	spec, err := RealFFT(sig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := IFFT(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sig {
		if math.Abs(real(back[i])-sig[i]) > 1e-9 || math.Abs(imag(back[i])) > 1e-9 {
			t.Fatalf("IFFT(FFT(x))[%d] = %v, want %g", i, back[i], sig[i])
		}
	}
}

// Property: Parseval — energy in time equals energy in frequency / n.
func TestParsevalProperty(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := 1 << (uint(szRaw)%6 + 2) // 4..256
		sig := Synthesize(n, [][2]float64{{2, 1}}, 0.5, seed)
		var timeE float64
		for _, v := range sig {
			timeE += v * v
		}
		spec, err := RealFFT(sig)
		if err != nil {
			return false
		}
		var freqE float64
		for _, v := range spec {
			m := cmplx.Abs(v)
			freqE += m * m
		}
		return math.Abs(timeE-freqE/float64(n)) < 1e-6*(1+timeE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(15))}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerSpectrumFindsTone(t *testing.T) {
	sig := Synthesize(256, [][2]float64{{32, 2}}, 0.01, 3)
	ps, err := PowerSpectrum(sig)
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i, v := range ps {
		if v > ps[best] {
			best = i
		}
	}
	if best != 32 {
		t.Fatalf("dominant bin = %d, want 32", best)
	}
}

func TestConvolve(t *testing.T) {
	got := Convolve([]float64{1, 2, 3}, []float64{0, 1})
	want := []float64{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("conv[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if Convolve(nil, []float64{1}) != nil {
		t.Fatal("empty convolution should be nil")
	}
}

func TestLowpassFIR(t *testing.T) {
	h, err := LowpassFIR(31, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// DC gain 1.
	var sum float64
	for _, v := range h {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("DC gain = %g", sum)
	}
	// It actually attenuates a high tone relative to a low one.
	low := Synthesize(256, [][2]float64{{5, 1}}, 0, 1)
	high := Synthesize(256, [][2]float64{{100, 1}}, 0, 1)
	energy := func(x []float64) float64 {
		var e float64
		for _, v := range x {
			e += v * v
		}
		return e
	}
	lowOut := Convolve(low, h)
	highOut := Convolve(high, h)
	if energy(highOut) > energy(lowOut)/10 {
		t.Fatalf("filter passed the high tone: low=%g high=%g", energy(lowOut), energy(highOut))
	}
	// Parameter validation.
	if _, err := LowpassFIR(4, 0.1); err == nil {
		t.Fatal("even taps accepted")
	}
	if _, err := LowpassFIR(2, 0.1); err == nil {
		t.Fatal("tiny taps accepted")
	}
	if _, err := LowpassFIR(5, 0.9); err == nil {
		t.Fatal("bad cutoff accepted")
	}
}

func TestFindPeaks(t *testing.T) {
	spec := []float64{0, 1, 5, 1, 0, 3, 0.5, 8, 0.1}
	peaks := FindPeaks(spec, 2)
	if len(peaks) != 3 {
		t.Fatalf("peaks = %v", peaks)
	}
	if peaks[0].Bin != 7 || peaks[1].Bin != 2 || peaks[2].Bin != 5 {
		t.Fatalf("order wrong: %v", peaks)
	}
	if got := FindPeaks(spec, 100); len(got) != 0 {
		t.Fatal("threshold ignored")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(32, [][2]float64{{3, 1}}, 0.2, 9)
	b := Synthesize(32, [][2]float64{{3, 1}}, 0.2, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed differed")
		}
	}
}
