// Package editor implements the server side of the VDCE Application
// Editor: the paper's web-based interface through which a user
// authenticates against the site's user-accounts database, browses the
// menu-driven task libraries, builds an application flow graph, sets
// task properties, and submits the application to the Application
// Scheduler. The browser GUI is replaced by a JSON/HTTP API with
// identical capabilities (the scheduler consumes the same AFGs).
package editor

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"time"

	"vdce/internal/afg"
	"vdce/internal/repository"
	"vdce/internal/services"
	"vdce/internal/tasklib"
)

// Submitter receives a finished application graph (Fig. 2 step 1:
// "Receive application flow graph from Application Editor"). ctx is the
// submitting request's context: it bounds how long the submitter may
// block (admission backpressure, waiting for completion) so abandoned
// requests do not pin handler goroutines — work already admitted to a
// pipeline still runs to completion on the environment's own lifetime.
// It returns an opaque JSON-encodable result shown to the user —
// typically the resource allocation table.
type Submitter func(ctx context.Context, owner string, g *afg.Graph) (any, error)

// JobOptions carries the per-submission controls of the versioned
// submit endpoint (POST /v1/apps/{id}/submit). Nil pointers mean "use
// the server default".
type JobOptions struct {
	// Priority overrides the owner's account priority for this job.
	Priority *int
	// Deadline bounds the job's lifetime from admission; 0 means none.
	Deadline time.Duration
	// MaxHosts overrides the scheduler's neighbor-site count k (still
	// clamped by the owner's access domain).
	MaxHosts *int
	// ShareWeight overrides the owner's fair-share weight (>= 1) used
	// by weighted fair queuing across owners.
	ShareWeight *int
}

// JobSubmitter enqueues a validated application for asynchronous
// execution and returns the job's admission status immediately — the
// versioned counterpart of Submitter, wired to the environment's
// priority submission pipeline.
type JobSubmitter func(ctx context.Context, owner string, g *afg.Graph, o JobOptions) (services.JobStatus, error)

// ErrBadSubmission marks JobSubmitter failures caused by the request
// itself (an already-expired deadline, a client that disconnected), so
// the v1 submit endpoint answers 400 instead of 500. Wrap with
// fmt.Errorf("%w: ...", ErrBadSubmission).
var ErrBadSubmission = errors.New("editor: bad submission")

// ErrQuotaExceeded marks JobSubmitter failures caused by the owner
// being over a per-owner admission quota, so the v1 submit endpoint
// answers 429 (back off and retry) instead of 400 or 500. Wrap with
// fmt.Errorf("%w: ...", ErrQuotaExceeded).
var ErrQuotaExceeded = errors.New("editor: owner quota exceeded")

// ErrOverloaded marks JobSubmitter failures caused by the service
// shedding load (full queue, infeasible deadline, quarantined hosts):
// the whole service is backing off, not one owner, so the v1 submit
// endpoint answers 503 with a Retry-After header — next to the 429 +
// Retry-After per-owner quota vocabulary. Matched via errors.Is; wrap
// in an *OverloadedError to carry the backoff hint.
var ErrOverloaded = errors.New("editor: service overloaded")

// OverloadedError carries a shed rejection's backoff hint and reason
// through the JobSubmitter boundary to the HTTP layer.
type OverloadedError struct {
	// RetryAfter is the suggested client backoff, emitted as the 503's
	// Retry-After header (rounded up to whole seconds, minimum 1).
	RetryAfter time.Duration
	// Reason is the shedder's machine-readable reason (e.g. queue-full),
	// echoed in the error body.
	Reason string
	// Err is the underlying rejection.
	Err error
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("%v: %v", ErrOverloaded, e.Err)
}

func (e *OverloadedError) Unwrap() error { return e.Err }

// Is lets errors.Is(err, ErrOverloaded) match the typed rejection.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// retryAfterSeconds renders a backoff hint as a Retry-After header
// value: whole seconds, rounded up, at least 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// Server is the editor backend for one VDCE site.
type Server struct {
	Users    *repository.UserAccountsDB
	Registry *tasklib.Registry
	Submit   Submitter
	// SubmitJob backs POST /v1/apps/{id}/submit; nil disables the
	// endpoint (503), e.g. on schedule-only servers.
	SubmitJob JobSubmitter
	// Jobs, when non-nil, is mounted under /v1/jobs — the shared
	// job-control API (internal/jobsapi), owner-scoped by the embedding
	// environment so editor users manage their own jobs.
	Jobs http.Handler

	mu       sync.Mutex
	sessions map[string]string         // token -> user
	apps     map[string]*appInProgress // app id -> builder state
	nextApp  int
}

type appInProgress struct {
	owner string
	graph *afg.Graph
}

// NewServer wires an editor over the given accounts database and task
// catalog.
func NewServer(users *repository.UserAccountsDB, reg *tasklib.Registry, submit Submitter) *Server {
	return &Server{
		Users:    users,
		Registry: reg,
		Submit:   submit,
		sessions: make(map[string]string),
		apps:     make(map[string]*appInProgress),
	}
}

// Handler returns the editor's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /login", s.handleLogin)
	mux.HandleFunc("GET /libraries", s.auth(s.handleLibraries))
	mux.HandleFunc("GET /libraries/{lib}", s.auth(s.handleLibrary))
	mux.HandleFunc("POST /apps", s.auth(s.handleCreateApp))
	mux.HandleFunc("GET /apps", s.auth(s.handleListApps))
	mux.HandleFunc("POST /apps/import", s.auth(s.handleImport))
	mux.HandleFunc("DELETE /apps/{id}", s.auth(s.handleDeleteApp))
	mux.HandleFunc("GET /apps/{id}", s.auth(s.handleGetApp))
	mux.HandleFunc("POST /apps/{id}/tasks", s.auth(s.handleAddTask))
	mux.HandleFunc("POST /apps/{id}/edges", s.auth(s.handleAddEdge))
	mux.HandleFunc("POST /apps/{id}/props", s.auth(s.handleSetProps))
	mux.HandleFunc("POST /apps/{id}/submit", s.auth(s.handleSubmit))
	// Versioned job-control surface: asynchronous submission with
	// priority/deadline/max-hosts, plus the shared /v1/jobs API.
	mux.HandleFunc("POST /v1/apps/{id}/submit", s.auth(s.handleSubmitV1))
	if s.Jobs != nil {
		mux.Handle("/v1/jobs", s.Jobs)
		mux.Handle("/v1/jobs/{id}", s.Jobs)
		// {id} matches exactly one path segment, so the streaming
		// endpoints need their own mounts.
		mux.Handle("GET /v1/jobs/{id}/events", s.Jobs)
		mux.Handle("GET /v1/events", s.Jobs)
		mux.Handle("/v1/owners", s.Jobs)
		// Host health (breaker/detector state): answered by the jobs API
		// when its source exposes hosts, 404 otherwise.
		mux.Handle("GET /v1/hosts", s.Jobs)
		// Owner administration is routed through so the owner-scoped API
		// answers it with a clean 403 (the editor surface is read-only on
		// owners) instead of a mux 404.
		mux.Handle("PATCH /v1/owners/{owner}", s.Jobs)
	}
	return mux
}

// --- helpers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func newToken() string {
	b := make([]byte, 16)
	if _, err := rand.Read(b); err != nil {
		panic(fmt.Sprintf("editor: crypto/rand: %v", err))
	}
	return hex.EncodeToString(b)
}

// sessionUser resolves the request's bearer token to its logged-in
// user.
func (s *Server) sessionUser(r *http.Request) (string, bool) {
	tok := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
	if tok == "" {
		return "", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	user, ok := s.sessions[tok]
	return user, ok
}

// Authenticated reports whether the request carries a valid session
// token — for sibling endpoints mounted outside the editor's own mux
// that should share its login model.
func (s *Server) Authenticated(r *http.Request) bool {
	_, ok := s.sessionUser(r)
	return ok
}

// SessionUser resolves the request's bearer token to its logged-in user
// — the authentication hook sibling mounts (the job-control API) plug
// into so every surface shares one login model.
func (s *Server) SessionUser(r *http.Request) (string, bool) {
	return s.sessionUser(r)
}

// auth wraps a handler with bearer-token session checking — the paper's
// "after user authentication, the Application Editor is loaded".
func (s *Server) auth(h func(http.ResponseWriter, *http.Request, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		user, ok := s.sessionUser(r)
		if !ok {
			writeErr(w, http.StatusUnauthorized, errors.New("editor: not authenticated"))
			return
		}
		h(w, r, user)
	}
}

func (s *Server) app(id, user string) (*appInProgress, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	app, ok := s.apps[id]
	if !ok {
		return nil, fmt.Errorf("editor: no application %q", id)
	}
	if app.owner != user {
		return nil, fmt.Errorf("editor: application %q belongs to %s", id, app.owner)
	}
	return app, nil
}

// --- handlers ---

type loginRequest struct {
	User     string `json:"user"`
	Password string `json:"password"`
}

func (s *Server) handleLogin(w http.ResponseWriter, r *http.Request) {
	var req loginRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	acct, err := s.Users.Authenticate(req.User, req.Password)
	if err != nil {
		writeErr(w, http.StatusUnauthorized, err)
		return
	}
	tok := newToken()
	s.mu.Lock()
	s.sessions[tok] = acct.Name
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"token": tok, "user_id": acct.UserID, "priority": acct.Priority, "domain": acct.Domain,
	})
}

func (s *Server) handleLibraries(w http.ResponseWriter, _ *http.Request, _ string) {
	writeJSON(w, http.StatusOK, map[string]any{"libraries": s.Registry.Libraries()})
}

type taskInfo struct {
	Name     string `json:"name"`
	InPorts  int    `json:"in_ports"`
	OutPorts int    `json:"out_ports"`
	Parallel bool   `json:"parallelizable"`
}

func (s *Server) handleLibrary(w http.ResponseWriter, r *http.Request, _ string) {
	lib := r.PathValue("lib")
	names := s.Registry.Names(lib)
	if len(names) == 0 {
		writeErr(w, http.StatusNotFound, fmt.Errorf("editor: no library %q", lib))
		return
	}
	out := make([]taskInfo, 0, len(names))
	for _, n := range names {
		spec, err := s.Registry.Get(n)
		if err != nil {
			continue
		}
		out = append(out, taskInfo{
			Name: n, InPorts: spec.InPorts, OutPorts: spec.OutPorts,
			Parallel: spec.Params.Parallelizable,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"library": lib, "tasks": out})
}

func (s *Server) handleCreateApp(w http.ResponseWriter, r *http.Request, user string) {
	var req struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("editor: application needs a name"))
		return
	}
	s.mu.Lock()
	s.nextApp++
	id := fmt.Sprintf("app-%d", s.nextApp)
	g := afg.NewGraph(req.Name)
	g.Owner = user
	s.apps[id] = &appInProgress{owner: user, graph: g}
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

// handleListApps lists the caller's applications with their task counts.
func (s *Server) handleListApps(w http.ResponseWriter, _ *http.Request, user string) {
	type row struct {
		ID    string `json:"id"`
		Name  string `json:"name"`
		Tasks int    `json:"tasks"`
		Edges int    `json:"edges"`
	}
	s.mu.Lock()
	var out []row
	for id, app := range s.apps {
		if app.owner != user {
			continue
		}
		out = append(out, row{ID: id, Name: app.graph.Name, Tasks: len(app.graph.Tasks), Edges: len(app.graph.Edges)})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"apps": out})
}

// handleDeleteApp removes one of the caller's applications.
func (s *Server) handleDeleteApp(w http.ResponseWriter, r *http.Request, user string) {
	id := r.PathValue("id")
	if _, err := s.app(id, user); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.mu.Lock()
	delete(s.apps, id)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

// handleImport accepts a complete AFG as JSON (the format EncodeJSON
// emits), validating it before registration — the CLI submission path.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request, user string) {
	body, err := json.Marshal(json.RawMessage(mustReadAll(r)))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	g, err := afg.DecodeJSON(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	g.Owner = user
	s.mu.Lock()
	s.nextApp++
	id := fmt.Sprintf("app-%d", s.nextApp)
	s.apps[id] = &appInProgress{owner: user, graph: g}
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

func mustReadAll(r *http.Request) []byte {
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(r.Body)
	return buf.Bytes()
}

func (s *Server) handleGetApp(w http.ResponseWriter, r *http.Request, user string) {
	app, err := s.app(r.PathValue("id"), user)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, app.graph)
}

func (s *Server) handleAddTask(w http.ResponseWriter, r *http.Request, user string) {
	app, err := s.app(r.PathValue("id"), user)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	spec, err := s.Registry.Get(req.Name)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.mu.Lock()
	id := app.graph.AddTask(spec.Name, spec.Library, spec.InPorts, spec.OutPorts)
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]int{"task": int(id)})
}

func (s *Server) handleAddEdge(w http.ResponseWriter, r *http.Request, user string) {
	app, err := s.app(r.PathValue("id"), user)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var req struct {
		From     int   `json:"from"`
		FromPort int   `json:"from_port"`
		To       int   `json:"to"`
		ToPort   int   `json:"to_port"`
		Size     int64 `json:"size_bytes"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	err = app.graph.Connect(afg.TaskID(req.From), req.FromPort, afg.TaskID(req.To), req.ToPort, req.Size)
	s.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "connected"})
}

func (s *Server) handleSetProps(w http.ResponseWriter, r *http.Request, user string) {
	app, err := s.app(r.PathValue("id"), user)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var req struct {
		Task  int            `json:"task"`
		Props afg.Properties `json:"props"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	err = app.graph.SetProps(afg.TaskID(req.Task), req.Props)
	s.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// snapshotGraph deep-copies an application's graph under the server
// lock (via a JSON round trip), so the submission pipeline never shares
// structure with a graph later edit requests keep mutating.
func (s *Server) snapshotGraph(app *appInProgress) (*afg.Graph, error) {
	s.mu.Lock()
	data, err := app.graph.EncodeJSON()
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return afg.DecodeJSON(data)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request, user string) {
	app, err := s.app(r.PathValue("id"), user)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	g, err := s.snapshotGraph(app)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := g.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if s.Submit == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("editor: no scheduler attached"))
		return
	}
	result, err := s.Submit(r.Context(), user, g)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"result": result})
}

// submitV1Request is the body of POST /v1/apps/{id}/submit. All fields
// are optional.
type submitV1Request struct {
	// Priority overrides the account priority for this job.
	Priority *int `json:"priority"`
	// DeadlineMS bounds the job's lifetime, in milliseconds from now.
	DeadlineMS int64 `json:"deadline_ms"`
	// MaxHosts overrides the scheduler's neighbor-site count k.
	MaxHosts *int `json:"max_hosts"`
	// ShareWeight overrides the owner's fair-share weight (>= 1).
	ShareWeight *int `json:"share_weight"`
}

// handleSubmitV1 enqueues the application asynchronously with job
// options and returns the job's admission status (ID, state, priority,
// queue position) immediately; clients follow progress — and cancel —
// through /v1/jobs/{id}.
func (s *Server) handleSubmitV1(w http.ResponseWriter, r *http.Request, user string) {
	app, err := s.app(r.PathValue("id"), user)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var req submitV1Request
	if r.Body != nil && r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	if req.DeadlineMS < 0 {
		writeErr(w, http.StatusBadRequest, errors.New("editor: deadline_ms must be >= 0"))
		return
	}
	g, err := s.snapshotGraph(app)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := g.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if s.SubmitJob == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("editor: no job pipeline attached"))
		return
	}
	status, err := s.SubmitJob(r.Context(), user, g, JobOptions{
		Priority:    req.Priority,
		Deadline:    time.Duration(req.DeadlineMS) * time.Millisecond,
		MaxHosts:    req.MaxHosts,
		ShareWeight: req.ShareWeight,
	})
	if err != nil {
		code := http.StatusInternalServerError
		var oe *OverloadedError
		switch {
		case errors.As(err, &oe):
			// Adaptive load shedding: the service refused the work to stay
			// responsive. 503 + Retry-After tells the client when to come
			// back; the reason says why it was shed.
			w.Header().Set("Retry-After", retryAfterSeconds(oe.RetryAfter))
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{
				"error":       err.Error(),
				"shed_reason": oe.Reason,
			})
			return
		case errors.Is(err, ErrQuotaExceeded):
			code = http.StatusTooManyRequests
		case errors.Is(err, ErrBadSubmission):
			code = http.StatusBadRequest
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"job": status})
}
