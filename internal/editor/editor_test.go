package editor

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"vdce/internal/afg"
	"vdce/internal/repository"
	"vdce/internal/tasklib"
)

type client struct {
	t     *testing.T
	base  string
	token string
}

func (c *client) do(method, path string, body any, wantCode int) map[string]any {
	c.t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			c.t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, c.base+path, &buf)
	if err != nil {
		c.t.Fatal(err)
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	if resp.StatusCode != wantCode {
		c.t.Fatalf("%s %s: status %d (want %d): %v", method, path, resp.StatusCode, wantCode, out)
	}
	return out
}

func newEditor(t *testing.T, submit Submitter) *client {
	t.Helper()
	users := repository.NewUserAccountsDB()
	if _, err := users.AddUser("user_k", "pw", 3, repository.DomainGlobal); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(users, tasklib.Default(), submit)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &client{t: t, base: ts.URL}
}

func login(c *client) {
	out := c.do("POST", "/login", map[string]string{"user": "user_k", "password": "pw"}, 200)
	c.token = out["token"].(string)
	if c.token == "" {
		c.t.Fatal("empty token")
	}
}

func TestLoginFlow(t *testing.T) {
	c := newEditor(t, nil)
	// Wrong password rejected.
	c.do("POST", "/login", map[string]string{"user": "user_k", "password": "no"}, 401)
	// Unauthenticated API calls rejected.
	c.do("GET", "/libraries", nil, 401)
	login(c)
	out := c.do("GET", "/libraries", nil, 200)
	libs := out["libraries"].([]any)
	if len(libs) != 4 {
		t.Fatalf("libraries = %v", libs)
	}
}

func TestLibraryMenus(t *testing.T) {
	c := newEditor(t, nil)
	login(c)
	out := c.do("GET", "/libraries/matrix", nil, 200)
	tasks := out["tasks"].([]any)
	found := false
	for _, ti := range tasks {
		if ti.(map[string]any)["name"] == "LU_Decomposition" {
			found = true
		}
	}
	if !found {
		t.Fatal("matrix menu missing LU_Decomposition")
	}
	c.do("GET", "/libraries/nope", nil, 404)
}

func TestBuildAndSubmitApplication(t *testing.T) {
	var submitted *afg.Graph
	c := newEditor(t, func(_ context.Context, owner string, g *afg.Graph) (any, error) {
		if owner != "user_k" {
			t.Errorf("owner = %q", owner)
		}
		submitted = g
		return map[string]string{"status": "scheduled"}, nil
	})
	login(c)

	out := c.do("POST", "/apps", map[string]string{"name": "LES"}, 201)
	appID := out["id"].(string)

	addTask := func(name string) int {
		r := c.do("POST", fmt.Sprintf("/apps/%s/tasks", appID), map[string]string{"name": name}, 201)
		return int(r["task"].(float64))
	}
	gen := addTask("Matrix_Generate")
	lu := addTask("LU_Decomposition")
	c.do("POST", fmt.Sprintf("/apps/%s/edges", appID),
		map[string]any{"from": gen, "from_port": 0, "to": lu, "to_port": 0, "size_bytes": 4096}, 201)
	c.do("POST", fmt.Sprintf("/apps/%s/props", appID),
		map[string]any{"task": lu, "props": afg.Properties{Mode: afg.Parallel, Nodes: 2}}, 200)

	// The graph is visible and carries the properties.
	got := c.do("GET", "/apps/"+appID, nil, 200)
	if got["name"] != "LES" {
		t.Fatalf("app graph = %v", got)
	}

	c.do("POST", fmt.Sprintf("/apps/%s/submit", appID), nil, 200)
	if submitted == nil || len(submitted.Tasks) != 2 {
		t.Fatal("submit did not deliver the graph")
	}
	if submitted.Task(afg.TaskID(lu)).Props.Nodes != 2 {
		t.Fatal("properties lost on submit")
	}
}

func TestEditorValidation(t *testing.T) {
	c := newEditor(t, nil)
	login(c)
	// Unknown app.
	c.do("GET", "/apps/app-99", nil, 404)
	// Create, then exercise error paths.
	out := c.do("POST", "/apps", map[string]string{"name": "x"}, 201)
	id := out["id"].(string)
	c.do("POST", "/apps/"+id+"/tasks", map[string]string{"name": "No_Such"}, 404)
	c.do("POST", "/apps", map[string]string{}, 400) // empty name
	// Bad edge (no tasks yet).
	c.do("POST", "/apps/"+id+"/edges", map[string]any{"from": 0, "to": 1}, 400)
	// Bad props target.
	c.do("POST", "/apps/"+id+"/props", map[string]any{"task": 7}, 400)
	// Submit with no scheduler → validation first (empty graph = 400).
	c.do("POST", "/apps/"+id+"/submit", nil, 400)
	// With one task but no Submitter → 503.
	c.do("POST", "/apps/"+id+"/tasks", map[string]string{"name": "Spin"}, 201)
	c.do("POST", "/apps/"+id+"/submit", nil, 503)
}

func TestAppOwnershipIsolation(t *testing.T) {
	users := repository.NewUserAccountsDB()
	for _, u := range []string{"alice", "bob"} {
		if _, err := users.AddUser(u, "pw", 0, repository.DomainLocal); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(users, tasklib.Default(), nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	alice := &client{t: t, base: ts.URL}
	out := alice.do("POST", "/login", map[string]string{"user": "alice", "password": "pw"}, 200)
	alice.token = out["token"].(string)
	bob := &client{t: t, base: ts.URL}
	out = bob.do("POST", "/login", map[string]string{"user": "bob", "password": "pw"}, 200)
	bob.token = out["token"].(string)

	created := alice.do("POST", "/apps", map[string]string{"name": "private"}, 201)
	id := created["id"].(string)
	// Bob cannot see or modify Alice's application.
	bob.do("GET", "/apps/"+id, nil, 404)
	bob.do("POST", "/apps/"+id+"/tasks", map[string]string{"name": "Spin"}, 404)
}

func TestListAndDeleteApps(t *testing.T) {
	c := newEditor(t, nil)
	login(c)
	// Empty list first.
	if apps := c.do("GET", "/apps", nil, 200)["apps"]; apps != nil {
		t.Fatalf("fresh list = %v", apps)
	}
	a := c.do("POST", "/apps", map[string]string{"name": "one"}, 201)["id"].(string)
	b := c.do("POST", "/apps", map[string]string{"name": "two"}, 201)["id"].(string)
	c.do("POST", "/apps/"+a+"/tasks", map[string]string{"name": "Spin"}, 201)
	apps := c.do("GET", "/apps", nil, 200)["apps"].([]any)
	if len(apps) != 2 {
		t.Fatalf("list = %v", apps)
	}
	first := apps[0].(map[string]any)
	if first["name"] != "one" || first["tasks"].(float64) != 1 {
		t.Fatalf("first row = %v", first)
	}
	c.do("DELETE", "/apps/"+a, nil, 200)
	c.do("DELETE", "/apps/"+a, nil, 404) // double delete
	apps = c.do("GET", "/apps", nil, 200)["apps"].([]any)
	if len(apps) != 1 || apps[0].(map[string]any)["id"] != b {
		t.Fatalf("list after delete = %v", apps)
	}
}
