package exec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"vdce/internal/afg"
	"vdce/internal/core"
	"vdce/internal/protocol"
	"vdce/internal/tasklib"
	"vdce/internal/testbed"
)

// appController is the Application Controller for one task on its
// assigned machine: it sets up the execution environment, waits for the
// startup signal, monitors the execution, and requests rescheduling when
// the current load exceeds the threshold or the machine fails.
type appController struct {
	app  *appRun
	task *afg.Task
	spec *tasklib.Spec
	dm   *dataManager
}

func newAppController(run *appRun, task *afg.Task) (*appController, error) {
	spec, err := run.engine.Reg.Get(task.Name)
	if err != nil {
		return nil, err
	}
	dm, err := newDataManager(run, task)
	if err != nil {
		return nil, err
	}
	return &appController{app: run, task: task, spec: spec, dm: dm}, nil
}

// run executes the controller's lifecycle to completion.
func (ac *appController) run(ctx context.Context) error {
	defer ac.dm.close()
	e := ac.app.engine

	// Console service: a suspended application dispatches no new tasks.
	if e.Console != nil {
		if err := e.Console.Gate(ctx); err != nil {
			return err
		}
	}

	// Receive dataflow inputs (blocks until parents deliver).
	in, err := ac.dm.receiveInputs()
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	if e.Console != nil { // re-check after possibly long waits
		if err := e.Console.Gate(ctx); err != nil {
			return err
		}
	}

	outs, err := ac.executeWithRescheduling(ctx, in)
	if err != nil {
		return err
	}
	if len(outs) != ac.task.OutPorts {
		return fmt.Errorf("exec: produced %d outputs, declared %d", len(outs), ac.task.OutPorts)
	}
	ac.app.storeOutputs(ac.task.ID, outs)
	return ac.dm.sendOutputs(outs)
}

// executeWithRescheduling runs the task, moving it to a new host when
// the Application Controller terminates it (load threshold, host
// failure, or a detector-confirmed death).
func (ac *appController) executeWithRescheduling(ctx context.Context, in []tasklib.Value) ([]tasklib.Value, error) {
	e := ac.app.engine
	excluded := make(map[string]bool)
	for attempt := 1; attempt <= ac.app.maxAttempts; attempt++ {
		placement := ac.app.placement(ac.task.ID)
		if placement == nil {
			return nil, fmt.Errorf("exec: task %d has no placement", ac.task.ID)
		}
		primary, err := e.TB.Host(placement.Hosts[0])
		if err != nil {
			return nil, err
		}
		outs, tr, err := ac.attempt(ctx, in, placement, primary, attempt)
		ac.app.recordRun(tr)
		if err == nil {
			if e.Breakers != nil {
				for _, h := range placement.Hosts {
					e.Breakers.ReportSuccess(h)
				}
			}
			if e.Record != nil {
				e.Record(protocol.ExecutionRecord{
					Task: ac.task.Name, Host: primary.Name, Elapsed: tr.Elapsed, At: tr.End,
				})
			}
			if e.Metrics != nil {
				e.Metrics.Add("task:"+ac.task.Name, tr.End.Sub(tr.Start), tr.Elapsed.Seconds())
			}
			return outs, nil
		}
		var term *terminationError
		if !errors.As(err, &term) {
			return nil, err
		}
		// Task rescheduling request: ask for a new placement that avoids
		// the machine that actually misbehaved.
		if e.Reschedule == nil {
			return nil, fmt.Errorf("exec: task %d terminated on %s (%s) and no rescheduler configured",
				ac.task.ID, term.host, term.reason)
		}
		if term.overload() {
			ac.app.emit(Event{Type: EventOverload, Task: ac.task.ID, TaskName: ac.task.Name,
				Host: term.host, Reason: term.reason})
		} else {
			ac.app.recordFailedHost(term.host)
			if e.Breakers != nil {
				e.Breakers.ReportFailure(term.host)
			}
			ac.app.emit(Event{Type: EventHostFailure, Task: ac.task.ID, TaskName: ac.task.Name,
				Host: term.host, Reason: term.reason})
			e.logger().Warn("host failure", "app", ac.app.appID,
				"task", ac.task.Name, "host", term.host, "reason", term.reason)
		}
		if attempt == ac.app.maxAttempts {
			// No attempt left to use a new placement: skip the wasted
			// scheduling pass (and its EventRescheduled — 'will re-run
			// there' would be a lie) and report exhaustion.
			break
		}
		// Retry policy: jittered exponential backoff for this task plus
		// the engine-wide budget — a mass host failure must not turn into
		// an immediate retry storm against the scheduler.
		if rerr := e.retryPause(ctx, attempt); rerr != nil {
			return nil, rerr
		}
		excluded[term.host] = true
		ac.app.mu.Lock()
		ac.app.rescheduled++
		ac.app.mu.Unlock()
		// The exclusion list carries every host this task was chased off
		// plus every host the detector currently holds confirmed dead —
		// the repository usually agrees already (the detector published
		// the down status), but a death confirmed microseconds ago must
		// not win the placement because the round's snapshot predates it.
		// Open circuit breakers ride along: a flapping host the detector
		// cannot confirm dead is quarantined from replacements too.
		exclude := make([]string, 0, len(excluded))
		for h := range excluded {
			exclude = append(exclude, h)
		}
		sort.Strings(exclude)
		exclude = append(exclude, e.deadHostsExcept(excluded)...)
		exclude = append(exclude, e.breakerExcluded(excluded)...)
		np, rerr := e.Reschedule(ac.app.g, ac.task.ID, exclude)
		if rerr != nil {
			return nil, fmt.Errorf("exec: reschedule task %d: %w", ac.task.ID, rerr)
		}
		ac.app.setPlacement(ac.task.ID, np)
		ac.app.emit(Event{Type: EventRescheduled, Task: ac.task.ID, TaskName: ac.task.Name,
			Host: np.Hosts[0], Hosts: append([]string(nil), np.Hosts...)})
		e.logger().Info("task rescheduled", "app", ac.app.appID,
			"task", ac.task.Name, "host", np.Hosts[0], "attempt", attempt)
	}
	return nil, fmt.Errorf("exec: task %d exhausted %d attempts", ac.task.ID, ac.app.maxAttempts)
}

// attempt performs one execution on the current placement, supervised by
// the load/failure watchdog.
func (ac *appController) attempt(ctx context.Context, in []tasklib.Value, placement *core.Placement, primary *testbed.Host, attemptNo int) ([]tasklib.Value, TaskRun, error) {
	e := ac.app.engine
	// The watchdog supervises every machine of the placement: a parallel
	// task dies with any of its nodes, not just the primary.
	watch := make([]*testbed.Host, 0, len(placement.Hosts))
	for _, name := range placement.Hosts {
		h, err := e.TB.Host(name)
		if err != nil {
			return nil, TaskRun{Task: ac.task.ID, TaskName: ac.task.Name, Host: primary.Name,
				Attempt: attemptNo, Start: time.Now(), End: time.Now()}, err
		}
		watch = append(watch, h)
	}
	// One task per machine at a time — engine-wide, so tasks of
	// different applications serialize on shared hosts.
	unlock := e.lockHosts(placement.Hosts)
	defer unlock()
	tr := TaskRun{
		Task: ac.task.ID, TaskName: ac.task.Name,
		Host: primary.Name, Attempt: attemptNo, Start: time.Now(),
	}

	// Set up the execution environment: reserve the task's memory.
	params, perr := paramsFor(ac, primary)
	if perr == nil && params > 0 {
		if err := primary.ClaimMem(params); err == nil {
			defer primary.ReleaseMem(params)
		}
		// A memory-starved host still runs the task — the prediction
		// penalty models the resulting thrashing.
	}

	nodes := len(placement.Hosts)
	if ac.task.Props.Mode != afg.Parallel {
		nodes = 1
	}

	type outcome struct {
		outs    []tasklib.Value
		elapsed time.Duration
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		t0 := time.Now()
		outs, err := ac.spec.Fn(&tasklib.Context{In: in, Args: ac.task.Props.Args, Nodes: nodes})
		done <- outcome{outs: outs, elapsed: time.Since(t0), err: err}
	}()

	// The watchdog is the Application Controller's monitoring loop.
	tick := time.NewTicker(ac.app.checkPeriod)
	defer tick.Stop()
	var oc outcome
compute:
	for {
		select {
		case <-ctx.Done():
			tr.End = time.Now()
			return nil, tr, ctx.Err()
		case oc = <-done:
			break compute
		case <-tick.C:
			if term := ac.shouldTerminate(watch); term != nil {
				tr.End = time.Now()
				tr.Terminated = true
				return nil, tr, term
			}
		}
	}
	if oc.err != nil {
		tr.End = time.Now()
		return nil, tr, oc.err
	}

	// Dilation: stretch the observed runtime by the host model's factor
	// to emulate slower/loaded hardware. The sleep remains supervised so
	// threshold kills still happen during the stretched window.
	elapsed := oc.elapsed
	if e.DilationScale > 0 {
		extra := time.Duration(float64(oc.elapsed) * (primary.Dilation() - 1) * e.DilationScale)
		if extra > 0 {
			timer := time.NewTimer(extra)
			defer timer.Stop()
		dilate:
			for {
				select {
				case <-ctx.Done():
					tr.End = time.Now()
					return nil, tr, ctx.Err()
				case <-timer.C:
					break dilate
				case <-tick.C:
					if term := ac.shouldTerminate(watch); term != nil {
						tr.End = time.Now()
						tr.Terminated = true
						return nil, tr, term
					}
				}
			}
			elapsed += extra
		}
	}

	// Results must leave the machines: however far the local computation
	// got, a host that crashed, was confirmed dead, or is partitioned at
	// delivery time cannot hand its outputs to anyone. Without this
	// check a short task could "finish" on a partitioned host before the
	// detector confirms the silence — delivering data the network model
	// says never arrived. (A load spike, by contrast, does not invalidate
	// completed work, so the threshold is deliberately not re-checked.)
	for _, h := range watch {
		if !h.Reachable() || e.hostDead(h.Name) {
			tr.End = time.Now()
			tr.Terminated = true
			return nil, tr, &terminationError{host: h.Name, reason: "host unreachable at delivery"}
		}
	}

	tr.End = time.Now()
	tr.Elapsed = elapsed
	return oc.outs, tr, nil
}

// shouldTerminate implements the paper's rule: "If the current load on
// any of these machines is more than a predefined threshold value, the
// Application Controller terminates the task execution ... and sends a
// task rescheduling request". Host failure is treated the same way, in
// two flavors: a crash the local controller sees directly (Failed), and
// a detector-confirmed death (MarkHostDead) — the only signal available
// when the machine is partitioned but still computing. It returns nil
// or the termination naming the offending machine.
func (ac *appController) shouldTerminate(watch []*testbed.Host) *terminationError {
	e := ac.app.engine
	thr := e.LoadThreshold
	for _, h := range watch {
		if h.Failed() {
			return &terminationError{host: h.Name, reason: "host failed"}
		}
		if e.hostDead(h.Name) {
			return &terminationError{host: h.Name, reason: "host confirmed dead"}
		}
		if thr > 0 && h.CurrentLoad() > thr {
			return &terminationError{host: h.Name, reason: "load threshold exceeded"}
		}
	}
	return nil
}

// overload reports whether the kill was a load-threshold trip rather
// than a failure: overloaded hosts are avoided, not reported failed.
func (t *terminationError) overload() bool {
	return t.reason == "load threshold exceeded"
}

// paramsFor returns the task's required memory on the host.
func paramsFor(ac *appController, h *testbed.Host) (int64, error) {
	// Memory requirements come from the catalog spec; the repository copy
	// would be equivalent.
	return ac.spec.Params.RequiredMemBytes, nil
}
