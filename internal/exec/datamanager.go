package exec

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"vdce/internal/afg"
	"vdce/internal/protocol"
	"vdce/internal/tasklib"
)

// dataManager is one task's endpoint of the socket-based point-to-point
// communication system: a TCP listener for its dataflow inputs and
// dialers toward its children.
type dataManager struct {
	run  *appRun
	task *afg.Task
	ln   net.Listener // nil when the task has no dataflow inputs

	mu     sync.Mutex
	closed bool
}

// newDataManager sets up the communication endpoint for a task: the
// paper's "communication proxy" activation plus channel setup. Opening
// the listener and publishing its address is the acknowledgment.
func newDataManager(run *appRun, task *afg.Task) (*dataManager, error) {
	dm := &dataManager{run: run, task: task}
	if len(run.g.InEdges(task.ID)) > 0 {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("exec: data manager listen for task %d: %w", task.ID, err)
		}
		dm.ln = ln
		run.addrs.Store(task.ID, ln.Addr().String())
	}
	return dm, nil
}

func (dm *dataManager) close() {
	dm.mu.Lock()
	defer dm.mu.Unlock()
	if dm.closed {
		return
	}
	dm.closed = true
	if dm.ln != nil {
		dm.ln.Close()
	}
}

// receiveInputs accepts one connection per in-edge and returns the
// decoded values indexed by input port. It blocks until all inputs have
// arrived or the listener is closed (cancellation path).
func (dm *dataManager) receiveInputs() ([]tasklib.Value, error) {
	in := make([]tasklib.Value, dm.task.InPorts)
	edges := dm.run.g.InEdges(dm.task.ID)
	if len(edges) == 0 {
		return in, nil
	}
	expect := make(map[int]bool, len(edges))
	for _, e := range edges {
		expect[e.ToPort] = true
	}
	for received := 0; received < len(edges); received++ {
		conn, err := dm.ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("exec: task %d input channel: %w", dm.task.ID, err)
		}
		var env protocol.DataEnvelope
		err = gob.NewDecoder(conn).Decode(&env)
		conn.Close()
		if err != nil {
			return nil, fmt.Errorf("exec: task %d decode: %w", dm.task.ID, err)
		}
		if env.AppID != dm.run.appID {
			return nil, fmt.Errorf("exec: task %d got payload for app %q", dm.task.ID, env.AppID)
		}
		if !expect[env.ToPort] {
			return nil, fmt.Errorf("exec: task %d got unexpected port %d", dm.task.ID, env.ToPort)
		}
		expect[env.ToPort] = false
		val, err := tasklib.DecodeValue(env.Payload)
		if err != nil {
			return nil, fmt.Errorf("exec: task %d payload: %w", dm.task.ID, err)
		}
		in[env.ToPort] = val
	}
	return in, nil
}

// sendOutputs dials each child's data manager and delivers the produced
// values, one envelope per out-edge.
func (dm *dataManager) sendOutputs(outs []tasklib.Value) error {
	// Encode each out-port once; fan-out edges reuse the bytes.
	encoded := make(map[int][]byte)
	for _, e := range dm.run.g.OutEdges(dm.task.ID) {
		payload, ok := encoded[e.FromPort]
		if !ok {
			if e.FromPort >= len(outs) {
				return fmt.Errorf("exec: task %d produced no output for port %d", dm.task.ID, e.FromPort)
			}
			var err error
			payload, err = tasklib.EncodeValue(outs[e.FromPort])
			if err != nil {
				return err
			}
			encoded[e.FromPort] = payload
		}
		addrVal, ok := dm.run.addrs.Load(e.To)
		if !ok {
			return fmt.Errorf("exec: task %d has no channel address for child %d", dm.task.ID, e.To)
		}
		if err := dm.sendOne(addrVal.(string), e, payload); err != nil {
			return err
		}
	}
	return nil
}

func (dm *dataManager) sendOne(addr string, e afg.Edge, payload []byte) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("exec: dial child %d: %w", e.To, err)
	}
	defer conn.Close()
	env := protocol.DataEnvelope{
		AppID:    dm.run.appID,
		FromTask: int(e.From),
		ToTask:   int(e.To),
		ToPort:   e.ToPort,
		Payload:  payload,
	}
	if err := gob.NewEncoder(conn).Encode(&env); err != nil {
		return fmt.Errorf("exec: send to child %d: %w", e.To, err)
	}
	return nil
}
