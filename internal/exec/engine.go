// Package exec implements the VDCE Runtime System's execution path: the
// Application Controller, which sets up the execution environment on
// each assigned machine, monitors the run, and requests rescheduling
// when a machine's load crosses the threshold; and the Data Manager, the
// socket-based point-to-point communication system for inter-task data.
//
// The lifecycle follows §4 exactly: Data Managers create listening
// sockets for every task with dataflow inputs, acknowledgments are
// collected, the execution startup signal is broadcast, tasks run and
// stream their outputs to their children over TCP, and each completed
// execution is reported so the Site Manager can update the
// task-performance database.
package exec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vdce/internal/afg"
	"vdce/internal/core"
	"vdce/internal/protocol"
	"vdce/internal/services"
	"vdce/internal/tasklib"
	"vdce/internal/testbed"
)

// Engine executes scheduled applications on the simulated testbed with
// real task code and real TCP data channels.
type Engine struct {
	// Reg resolves task names to implementations.
	Reg *tasklib.Registry
	// TB supplies the host models (dilation, load, failure, memory).
	TB *testbed.Testbed
	// Record receives one ExecutionRecord per successful task run;
	// typically wired to SiteManager.RecordExecution. Optional.
	Record func(protocol.ExecutionRecord)
	// LoadThreshold is the Application Controller's termination trigger:
	// if the primary host's load exceeds it mid-run, the task is killed
	// and rescheduled. <= 0 disables the check.
	LoadThreshold float64
	// LoadCheckPeriod is the watchdog cadence (default 5ms).
	LoadCheckPeriod time.Duration
	// DilationScale stretches task runtimes by the host model's dilation
	// factor to emulate heterogeneous hardware: extra sleep =
	// elapsed * (dilation-1) * DilationScale. 0 disables dilation.
	DilationScale float64
	// Reschedule supplies a replacement placement when a task must move
	// (load threshold or host failure), excluding the listed hosts. Nil
	// makes such events fatal.
	Reschedule func(g *afg.Graph, id afg.TaskID, exclude []string) (*core.Placement, error)
	// MaxAttempts bounds per-task executions (default 3).
	MaxAttempts int
	// Console gates task dispatch (suspend/resume). Optional.
	Console *services.Console
	// Metrics receives the task timeline for visualization. Optional.
	Metrics *services.Metrics

	// lockMu guards hostLocks, the engine-wide table serializing task
	// execution per machine. It is shared by every concurrent Execute so
	// independent applications contend for the same simulated hardware.
	lockMu    sync.Mutex
	hostLocks map[string]*sync.Mutex

	// appSeq disambiguates app IDs of same-named graphs submitted within
	// the same nanosecond.
	appSeq atomic.Int64
	// inFlight/peakInFlight gauge how many applications execute
	// simultaneously.
	inFlight     atomic.Int32
	peakInFlight atomic.Int32
}

// lockHosts serializes execution on the given machines: a host runs one
// task at a time — across every application the engine is executing —
// exactly as the schedule simulator assumes. Locks are acquired in
// sorted order so multi-host (parallel) tasks cannot deadlock against
// each other. The returned function releases them.
func (e *Engine) lockHosts(hosts []string) func() {
	sorted := append([]string(nil), hosts...)
	sort.Strings(sorted)
	locks := make([]*sync.Mutex, 0, len(sorted))
	e.lockMu.Lock()
	if e.hostLocks == nil {
		e.hostLocks = make(map[string]*sync.Mutex)
	}
	for _, h := range sorted {
		l, ok := e.hostLocks[h]
		if !ok {
			l = &sync.Mutex{}
			e.hostLocks[h] = l
		}
		locks = append(locks, l)
	}
	e.lockMu.Unlock()
	for _, l := range locks {
		l.Lock()
	}
	return func() {
		for i := len(locks) - 1; i >= 0; i-- {
			locks[i].Unlock()
		}
	}
}

// PeakConcurrency reports the maximum number of applications the engine
// has had executing at the same time since it was created.
func (e *Engine) PeakConcurrency() int {
	return int(e.peakInFlight.Load())
}

// TaskRun describes one attempt at executing a task.
type TaskRun struct {
	Task       afg.TaskID
	TaskName   string
	Host       string
	Attempt    int
	Start, End time.Time
	Elapsed    time.Duration
	Terminated bool // killed by the load threshold or a host failure
}

// Result is the outcome of Execute.
type Result struct {
	AppID    string
	Outputs  map[afg.TaskID][]tasklib.Value
	Runs     []TaskRun
	Makespan time.Duration
	// Rescheduled counts reschedule requests the Application Controllers
	// issued.
	Rescheduled int
}

// errTerminated marks a watchdog kill internally.
var errTerminated = errors.New("exec: task terminated by application controller")

// Execute runs g as placed by table. It returns when every task has
// completed or any task fails permanently.
func (e *Engine) Execute(ctx context.Context, g *afg.Graph, table *core.AllocationTable) (*Result, error) {
	if e.Reg == nil || e.TB == nil {
		return nil, errors.New("exec: engine needs Reg and TB")
	}
	if err := table.Validate(g); err != nil {
		return nil, err
	}
	maxAttempts := e.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	checkPeriod := e.LoadCheckPeriod
	if checkPeriod <= 0 {
		checkPeriod = 5 * time.Millisecond
	}

	cur := e.inFlight.Add(1)
	defer e.inFlight.Add(-1)
	for {
		peak := e.peakInFlight.Load()
		if cur <= peak || e.peakInFlight.CompareAndSwap(peak, cur) {
			break
		}
	}

	appID := fmt.Sprintf("%s-%d-%d", g.Name, time.Now().UnixNano(), e.appSeq.Add(1))
	run := &appRun{
		engine:      e,
		g:           g,
		appID:       appID,
		maxAttempts: maxAttempts,
		checkPeriod: checkPeriod,
		placements:  make(map[afg.TaskID]*core.Placement, len(table.Entries)),
		outputs:     make(map[afg.TaskID][]tasklib.Value, len(g.Tasks)),
	}
	for i := range table.Entries {
		p := table.Entries[i]
		run.placements[p.Task] = &p
	}

	// Phase 1 (Data Manager setup): every task with dataflow inputs
	// opens its listening socket; the "resource allocation information,
	// including the socket number [and] IP address" is assembled for the
	// producers. Socket setup completing for all tasks is the paper's
	// acknowledgment collection.
	controllers := make([]*appController, 0, len(g.Tasks))
	for _, task := range g.Tasks {
		ac, err := newAppController(run, task)
		if err != nil {
			run.closeAll(controllers)
			return nil, err
		}
		controllers = append(controllers, ac)
	}

	// Phase 2: the execution startup signal.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Cancellation path: controllers parked in receiveInputs block in
	// Accept and never observe the context, so close every listener the
	// moment the run is canceled (a task failure or a caller abort).
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-runCtx.Done():
			run.closeAll(controllers)
		case <-watchDone:
		}
	}()
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, len(controllers))
	for _, ac := range controllers {
		wg.Add(1)
		go func(ac *appController) {
			defer wg.Done()
			if err := ac.run(runCtx); err != nil {
				errCh <- fmt.Errorf("task %d (%s): %w", ac.task.ID, ac.task.Name, err)
				cancel() // one permanent failure aborts the application
			}
		}(ac)
	}
	wg.Wait()
	close(errCh)
	run.closeAll(controllers)
	if err := <-errCh; err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &Result{
		AppID:       appID,
		Outputs:     run.outputs,
		Runs:        run.runs,
		Makespan:    time.Since(start),
		Rescheduled: int(run.rescheduled),
	}
	return res, nil
}

// appRun is the shared state of one application execution.
type appRun struct {
	engine      *Engine
	g           *afg.Graph
	appID       string
	maxAttempts int
	checkPeriod time.Duration

	mu          sync.Mutex
	placements  map[afg.TaskID]*core.Placement
	outputs     map[afg.TaskID][]tasklib.Value
	runs        []TaskRun
	rescheduled int64
	addrs       sync.Map // afg.TaskID -> listen address
}

func (r *appRun) placement(id afg.TaskID) *core.Placement {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.placements[id]
}

func (r *appRun) setPlacement(id afg.TaskID, p *core.Placement) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.placements[id] = p
}

func (r *appRun) recordRun(tr TaskRun) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.runs = append(r.runs, tr)
}

func (r *appRun) storeOutputs(id afg.TaskID, vals []tasklib.Value) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.outputs[id] = vals
}

func (r *appRun) closeAll(controllers []*appController) {
	for _, ac := range controllers {
		ac.dm.close()
	}
}
