// Package exec implements the VDCE Runtime System's execution path: the
// Application Controller, which sets up the execution environment on
// each assigned machine, monitors the run, and requests rescheduling
// when a machine's load crosses the threshold; and the Data Manager, the
// socket-based point-to-point communication system for inter-task data.
//
// The lifecycle follows §4 exactly: Data Managers create listening
// sockets for every task with dataflow inputs, acknowledgments are
// collected, the execution startup signal is broadcast, tasks run and
// stream their outputs to their children over TCP, and each completed
// execution is reported so the Site Manager can update the
// task-performance database.
package exec

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vdce/internal/afg"
	"vdce/internal/breaker"
	"vdce/internal/core"
	"vdce/internal/protocol"
	"vdce/internal/services"
	"vdce/internal/tasklib"
	"vdce/internal/testbed"
)

// Engine executes scheduled applications on the simulated testbed with
// real task code and real TCP data channels.
type Engine struct {
	// Reg resolves task names to implementations.
	Reg *tasklib.Registry
	// TB supplies the host models (dilation, load, failure, memory).
	TB *testbed.Testbed
	// Record receives one ExecutionRecord per successful task run;
	// typically wired to SiteManager.RecordExecution. Optional.
	Record func(protocol.ExecutionRecord)
	// LoadThreshold is the Application Controller's termination trigger:
	// if the primary host's load exceeds it mid-run, the task is killed
	// and rescheduled. <= 0 disables the check.
	LoadThreshold float64
	// LoadCheckPeriod is the watchdog cadence (default 5ms).
	LoadCheckPeriod time.Duration
	// DilationScale stretches task runtimes by the host model's dilation
	// factor to emulate heterogeneous hardware: extra sleep =
	// elapsed * (dilation-1) * DilationScale. 0 disables dilation.
	DilationScale float64
	// Reschedule supplies a replacement placement when a task must move
	// (load threshold or host failure), excluding the listed hosts. Nil
	// makes such events fatal.
	Reschedule func(g *afg.Graph, id afg.TaskID, exclude []string) (*core.Placement, error)
	// MaxAttempts bounds per-task executions (default 3).
	MaxAttempts int
	// Retry shapes rescheduling retries: per-attempt jittered backoff
	// plus the engine-wide token-bucket retry budget. The zero value
	// preserves the legacy immediate-retry behavior.
	Retry RetryConfig
	// Breakers, when non-nil, is the per-host circuit-breaker set: the
	// engine feeds it watchdog outcomes (failures open a flapping host's
	// breaker, successes close it again) and merges its open hosts into
	// every rescheduling exclusion list.
	Breakers *breaker.Set
	// Console gates task dispatch (suspend/resume). Optional.
	Console *services.Console
	// Metrics receives the task timeline for visualization. Optional.
	Metrics *services.Metrics
	// Log receives structured recovery events (host failures, task
	// reschedules) correlated by app ID. Optional; nil discards.
	Log *slog.Logger

	// retryOnce/retry materialize Retry into the shared gate.
	retryOnce sync.Once
	retry     *retryGate

	// lockMu guards hostLocks, the engine-wide table serializing task
	// execution per machine. It is shared by every concurrent Execute so
	// independent applications contend for the same simulated hardware.
	lockMu    sync.Mutex
	hostLocks map[string]*sync.Mutex

	// liveMu guards dead, the failure detector's confirmed-dead set. The
	// per-task watchdogs consult it every check period, so a confirmed
	// death interrupts every task running on the host even when the host
	// model itself looks alive (a network partition: the machine computes
	// on, but its results are unreachable).
	liveMu sync.RWMutex
	dead   map[string]bool

	// appSeq disambiguates app IDs of same-named graphs submitted within
	// the same nanosecond.
	appSeq atomic.Int64
	// inFlight/peakInFlight gauge how many applications execute
	// simultaneously.
	inFlight     atomic.Int32
	peakInFlight atomic.Int32
}

// lockHosts serializes execution on the given machines: a host runs one
// task at a time — across every application the engine is executing —
// exactly as the schedule simulator assumes. Locks are acquired in
// sorted order so multi-host (parallel) tasks cannot deadlock against
// each other. The returned function releases them.
func (e *Engine) lockHosts(hosts []string) func() {
	sorted := append([]string(nil), hosts...)
	sort.Strings(sorted)
	locks := make([]*sync.Mutex, 0, len(sorted))
	e.lockMu.Lock()
	if e.hostLocks == nil {
		e.hostLocks = make(map[string]*sync.Mutex)
	}
	for _, h := range sorted {
		l, ok := e.hostLocks[h]
		if !ok {
			l = &sync.Mutex{}
			e.hostLocks[h] = l
		}
		locks = append(locks, l)
	}
	e.lockMu.Unlock()
	for _, l := range locks {
		l.Lock()
	}
	return func() {
		for i := len(locks) - 1; i >= 0; i-- {
			locks[i].Unlock()
		}
	}
}

// PeakConcurrency reports the maximum number of applications the engine
// has had executing at the same time since it was created.
func (e *Engine) PeakConcurrency() int {
	return int(e.peakInFlight.Load())
}

// InFlight reports how many applications are executing right now.
func (e *Engine) InFlight() int {
	return int(e.inFlight.Load())
}

// discardLog backs logger() so recovery-path call sites never branch.
var discardLog = slog.New(slog.DiscardHandler)

// logger returns the engine's structured logger, or a discarding one.
func (e *Engine) logger() *slog.Logger {
	if e.Log != nil {
		return e.Log
	}
	return discardLog
}

// MarkHostDead records a failure-detector confirmation: every running
// task placed on the host is interrupted at its next watchdog check and
// flows through the rescheduler with the host excluded.
func (e *Engine) MarkHostDead(host string) {
	e.liveMu.Lock()
	if e.dead == nil {
		e.dead = make(map[string]bool)
	}
	e.dead[host] = true
	e.liveMu.Unlock()
}

// MarkHostAlive clears a detector confirmation after recovery.
func (e *Engine) MarkHostAlive(host string) {
	e.liveMu.Lock()
	delete(e.dead, host)
	e.liveMu.Unlock()
}

// hostDead reports whether the detector has confirmed the host dead.
func (e *Engine) hostDead(host string) bool {
	e.liveMu.RLock()
	defer e.liveMu.RUnlock()
	return e.dead[host]
}

// deadHostsExcept returns the confirmed-dead hosts not already in the
// given set — the extra exclusions a rescheduling request carries so a
// task is never re-placed onto a host the detector knows is gone.
func (e *Engine) deadHostsExcept(already map[string]bool) []string {
	e.liveMu.RLock()
	defer e.liveMu.RUnlock()
	var out []string
	for h := range e.dead {
		if !already[h] {
			out = append(out, h)
		}
	}
	sort.Strings(out)
	return out
}

// breakerExcluded returns the open-breaker hosts not already excluded:
// the quarantine list a rescheduling request merges in so a flapping
// host — never quiet long enough for the detector to confirm dead —
// still stops winning placements.
func (e *Engine) breakerExcluded(already map[string]bool) []string {
	if e.Breakers == nil {
		return nil
	}
	var out []string
	for _, h := range e.Breakers.Excluded() {
		if !already[h] {
			out = append(out, h)
		}
	}
	return out
}

// EventType tags an execution progress event.
type EventType int

const (
	// EventHostFailure: a watchdog killed an attempt because its host
	// failed or was confirmed dead by the failure detector.
	EventHostFailure EventType = iota
	// EventOverload: a watchdog killed an attempt because the host's
	// load crossed the threshold.
	EventOverload
	// EventRescheduled: the task received a replacement placement and
	// will re-run there.
	EventRescheduled
)

// Event is one execution progress notification, streamed to the sink
// installed with WithEventSink as recovery happens mid-run.
type Event struct {
	Type     EventType
	Task     afg.TaskID
	TaskName string
	// Host is the offending host for failures/overloads and the new
	// primary host for reschedules.
	Host string
	// Hosts is the full replacement placement for reschedules (the
	// primary plus any parallel nodes); nil for other event types.
	Hosts []string
	// Reason is the watchdog's termination reason (failures/overloads).
	Reason string
}

// ExecOption configures one Execute call.
type ExecOption func(*execOpts)

type execOpts struct {
	sink func(Event)
}

// WithEventSink streams per-task recovery events (host losses,
// overload kills, reschedules) to fn as they happen, so callers can
// observe recovery while the run is still in flight. fn must be safe
// for concurrent use; it is called from the task controllers.
func WithEventSink(fn func(Event)) ExecOption {
	return func(o *execOpts) { o.sink = fn }
}

// TaskRun describes one attempt at executing a task.
type TaskRun struct {
	Task       afg.TaskID
	TaskName   string
	Host       string
	Attempt    int
	Start, End time.Time
	Elapsed    time.Duration
	Terminated bool // killed by the load threshold or a host failure
}

// Result is the outcome of Execute.
type Result struct {
	AppID    string
	Outputs  map[afg.TaskID][]tasklib.Value
	Runs     []TaskRun
	Makespan time.Duration
	// Rescheduled counts reschedule requests the Application Controllers
	// issued.
	Rescheduled int
	// FailedHosts lists the distinct hosts whose failure (crash or
	// detector confirmation — not overload) forced a task off them, in
	// first-observed order.
	FailedHosts []string
	// Table is the allocation table as actually executed: the input
	// table with every mid-run rescheduling patch applied. It is a fresh
	// copy — the caller's input table is never mutated.
	Table *core.AllocationTable
}

// errTerminated marks a watchdog kill internally.
var errTerminated = errors.New("exec: task terminated by application controller")

// terminationError is a watchdog kill carrying the offending host, so
// the rescheduling loop excludes the machine that actually misbehaved
// (which, for a parallel task, need not be the primary).
type terminationError struct {
	host   string
	reason string
}

func (t *terminationError) Error() string {
	return fmt.Sprintf("%v: %s on %s", errTerminated, t.reason, t.host)
}

func (t *terminationError) Unwrap() error { return errTerminated }

// Execute runs g as placed by table. It returns when every task has
// completed or any task fails permanently.
func (e *Engine) Execute(ctx context.Context, g *afg.Graph, table *core.AllocationTable, opts ...ExecOption) (*Result, error) {
	if e.Reg == nil || e.TB == nil {
		return nil, errors.New("exec: engine needs Reg and TB")
	}
	if err := table.Validate(g); err != nil {
		return nil, err
	}
	maxAttempts := e.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	checkPeriod := e.LoadCheckPeriod
	if checkPeriod <= 0 {
		checkPeriod = 5 * time.Millisecond
	}

	cur := e.inFlight.Add(1)
	defer e.inFlight.Add(-1)
	for {
		peak := e.peakInFlight.Load()
		if cur <= peak || e.peakInFlight.CompareAndSwap(peak, cur) {
			break
		}
	}

	var eo execOpts
	for _, opt := range opts {
		opt(&eo)
	}
	appID := fmt.Sprintf("%s-%d-%d", g.Name, time.Now().UnixNano(), e.appSeq.Add(1))
	run := &appRun{
		engine:      e,
		g:           g,
		appID:       appID,
		maxAttempts: maxAttempts,
		checkPeriod: checkPeriod,
		sink:        eo.sink,
		placements:  make(map[afg.TaskID]*core.Placement, len(table.Entries)),
		outputs:     make(map[afg.TaskID][]tasklib.Value, len(g.Tasks)),
		failedSeen:  make(map[string]bool),
	}
	for i := range table.Entries {
		p := table.Entries[i]
		run.placements[p.Task] = &p
	}

	// Phase 1 (Data Manager setup): every task with dataflow inputs
	// opens its listening socket; the "resource allocation information,
	// including the socket number [and] IP address" is assembled for the
	// producers. Socket setup completing for all tasks is the paper's
	// acknowledgment collection.
	controllers := make([]*appController, 0, len(g.Tasks))
	for _, task := range g.Tasks {
		ac, err := newAppController(run, task)
		if err != nil {
			run.closeAll(controllers)
			return nil, err
		}
		controllers = append(controllers, ac)
	}

	// Phase 2: the execution startup signal.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Cancellation path: controllers parked in receiveInputs block in
	// Accept and never observe the context, so close every listener the
	// moment the run is canceled (a task failure or a caller abort).
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-runCtx.Done():
			run.closeAll(controllers)
		case <-watchDone:
		}
	}()
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, len(controllers))
	for _, ac := range controllers {
		wg.Add(1)
		go func(ac *appController) {
			defer wg.Done()
			if err := ac.run(runCtx); err != nil {
				errCh <- fmt.Errorf("task %d (%s): %w", ac.task.ID, ac.task.Name, err)
				cancel() // one permanent failure aborts the application
			}
		}(ac)
	}
	wg.Wait()
	close(errCh)
	run.closeAll(controllers)
	if err := <-errCh; err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &Result{
		AppID:       appID,
		Outputs:     run.outputs,
		Runs:        run.runs,
		Makespan:    time.Since(start),
		Rescheduled: int(run.rescheduled),
		FailedHosts: run.failedHosts,
		Table:       run.patchedTable(table),
	}
	return res, nil
}

// appRun is the shared state of one application execution.
type appRun struct {
	engine      *Engine
	g           *afg.Graph
	appID       string
	maxAttempts int
	checkPeriod time.Duration
	sink        func(Event) // optional recovery-event stream

	mu          sync.Mutex
	placements  map[afg.TaskID]*core.Placement
	outputs     map[afg.TaskID][]tasklib.Value
	runs        []TaskRun
	rescheduled int64
	failedHosts []string
	failedSeen  map[string]bool
	addrs       sync.Map // afg.TaskID -> listen address
}

// emit streams one recovery event to the run's sink, if any.
func (r *appRun) emit(ev Event) {
	if r.sink != nil {
		r.sink(ev)
	}
}

// recordFailedHost remembers a host lost to failure (not overload),
// first observation wins the ordering.
func (r *appRun) recordFailedHost(host string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.failedSeen[host] {
		r.failedSeen[host] = true
		r.failedHosts = append(r.failedHosts, host)
	}
}

// patchedTable returns a copy of the input allocation table with the
// run's final placements — every mid-run reschedule applied — so the
// caller's record of "where did this actually run" is coherent.
func (r *appRun) patchedTable(in *core.AllocationTable) *core.AllocationTable {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := &core.AllocationTable{App: in.App, Entries: append([]core.Placement(nil), in.Entries...)}
	for i := range out.Entries {
		e := &out.Entries[i]
		if p := r.placements[e.Task]; p != nil {
			// Keep the original TransferIn/Level: reschedules replace the
			// placement, not the scheduling round's bookkeeping.
			e.Site, e.Predicted = p.Site, p.Predicted
			e.Hosts = append([]string(nil), p.Hosts...)
		}
	}
	return out
}

func (r *appRun) placement(id afg.TaskID) *core.Placement {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.placements[id]
}

func (r *appRun) setPlacement(id afg.TaskID, p *core.Placement) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.placements[id] = p
}

func (r *appRun) recordRun(tr TaskRun) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.runs = append(r.runs, tr)
}

func (r *appRun) storeOutputs(id afg.TaskID, vals []tasklib.Value) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.outputs[id] = vals
}

func (r *appRun) closeAll(controllers []*appController) {
	for _, ac := range controllers {
		ac.dm.close()
	}
}
