package exec

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"vdce/internal/afg"
	"vdce/internal/core"
	"vdce/internal/netmodel"
	"vdce/internal/protocol"
	"vdce/internal/services"
	"vdce/internal/tasklib"
	"vdce/internal/testbed"
)

// rig is a single-site execution fixture.
type rig struct {
	tb     *testbed.Testbed
	site   *core.LocalSite
	net    *netmodel.Network
	engine *Engine
}

func newRig(t *testing.T, hosts int) *rig {
	t.Helper()
	tb, err := testbed.Build(testbed.Config{
		Sites: 1, HostsPerGroup: hosts, Seed: 11,
		SpeedMin: 1, SpeedMax: 1, BaseLoadMax: 0.01, LoadSigma: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	site := tb.Sites[0]
	names := make([]string, len(site.Hosts))
	for i, h := range site.Hosts {
		names[i] = h.Name
	}
	if err := tasklib.Default().InstallInto(site.Repo, names); err != nil {
		t.Fatal(err)
	}
	local := core.NewLocalSite(site.Repo)
	net, err := netmodel.New([]string{site.Name})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{
		tb:   tb,
		site: local,
		net:  net,
		engine: &Engine{
			Reg:        tasklib.Default(),
			TB:         tb,
			Reschedule: NewRescheduler([]*core.LocalSite{local}),
		},
	}
}

func (r *rig) schedule(t *testing.T, g *afg.Graph) *core.AllocationTable {
	t.Helper()
	sched := core.NewScheduler(r.site, nil, r.net, 0)
	cost := func(id afg.TaskID) float64 {
		d, err := r.site.Oracle.BaseTimeFor(g.Task(id).Name)
		if err != nil {
			t.Fatalf("cost(%s): %v", g.Task(id).Name, err)
		}
		return d.Seconds()
	}
	table, err := sched.Schedule(g, cost)
	if err != nil {
		t.Fatal(err)
	}
	return table
}

func TestExecuteLESEndToEnd(t *testing.T) {
	r := newRig(t, 4)
	g, err := tasklib.BuildLinearEquationSolver(32, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range g.Tasks {
		task.Props.MachineType = "" // random testbed arch mix
	}
	table := r.schedule(t, g)

	var mu sync.Mutex
	var records []protocol.ExecutionRecord
	r.engine.Record = func(rec protocol.ExecutionRecord) {
		mu.Lock()
		records = append(records, rec)
		mu.Unlock()
	}
	res, err := r.engine.Execute(context.Background(), g, table)
	if err != nil {
		t.Fatal(err)
	}
	// Distributed execution must agree with the reference executor.
	ref, err := tasklib.RunLocal(g, tasklib.Default())
	if err != nil {
		t.Fatal(err)
	}
	exit := g.Exits()[0]
	got := res.Outputs[exit][0].(float64)
	want := ref[exit][0].(float64)
	if got != want {
		t.Fatalf("distributed residual %g != local %g", got, want)
	}
	if got > 1e-7 {
		t.Fatalf("residual too large: %g", got)
	}
	if len(res.Runs) != len(g.Tasks) {
		t.Fatalf("runs = %d, want %d", len(res.Runs), len(g.Tasks))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(records) != len(g.Tasks) {
		t.Fatalf("records = %d, want %d", len(records), len(g.Tasks))
	}
	if res.Makespan <= 0 || res.Rescheduled != 0 {
		t.Fatalf("makespan=%v rescheduled=%d", res.Makespan, res.Rescheduled)
	}
}

func TestExecuteC3IEndToEnd(t *testing.T) {
	r := newRig(t, 3)
	g, err := tasklib.BuildC3IPipeline(24, 5)
	if err != nil {
		t.Fatal(err)
	}
	table := r.schedule(t, g)
	res, err := r.engine.Execute(context.Background(), g, table)
	if err != nil {
		t.Fatal(err)
	}
	report := res.Outputs[g.Exits()[0]][0].(string)
	if !strings.Contains(report, "C3I THREAT REPORT") {
		t.Fatalf("report = %q", report)
	}
}

func TestConsoleSuspendResume(t *testing.T) {
	r := newRig(t, 2)
	r.engine.Console = services.NewConsole()
	g, err := tasklib.BuildC3IPipeline(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	table := r.schedule(t, g)

	r.engine.Console.Suspend()
	type out struct {
		res *Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := r.engine.Execute(context.Background(), g, table)
		done <- out{res, err}
	}()
	select {
	case <-done:
		t.Fatal("suspended application completed")
	case <-time.After(50 * time.Millisecond):
	}
	r.engine.Console.Resume()
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatal(o.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("resume did not release the application")
	}
}

func TestLoadThresholdTriggersReschedule(t *testing.T) {
	r := newRig(t, 2)
	hostA := r.tb.Sites[0].Hosts[0]
	hostB := r.tb.Sites[0].Hosts[1]
	// Overload A; the controller must kill the task and move it to B.
	hostA.InjectLoad(0.95)
	r.engine.LoadThreshold = 0.8
	r.engine.LoadCheckPeriod = time.Millisecond

	g := afg.NewGraph("spin")
	id := g.AddTask("Spin", "util", 0, 1)
	if err := g.SetProps(id, afg.Properties{Args: map[string]string{"ms": "50"}}); err != nil {
		t.Fatal(err)
	}
	table := &core.AllocationTable{App: "spin", Entries: []core.Placement{{
		Task: id, TaskName: "Spin", Site: "site0",
		Hosts: []string{hostA.Name}, Predicted: time.Millisecond,
	}}}
	res, err := r.engine.Execute(context.Background(), g, table)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rescheduled < 1 {
		t.Fatalf("rescheduled = %d, want >= 1", res.Rescheduled)
	}
	last := res.Runs[len(res.Runs)-1]
	if last.Host != hostB.Name || last.Terminated {
		t.Fatalf("final run: %+v, want success on %s", last, hostB.Name)
	}
	// The terminated attempt must be visible in the run log.
	if !res.Runs[0].Terminated {
		t.Fatalf("first run not marked terminated: %+v", res.Runs[0])
	}
}

func TestHostFailureTriggersReschedule(t *testing.T) {
	r := newRig(t, 2)
	hostA := r.tb.Sites[0].Hosts[0]
	r.engine.LoadCheckPeriod = time.Millisecond

	g := afg.NewGraph("spin")
	id := g.AddTask("Spin", "util", 0, 1)
	if err := g.SetProps(id, afg.Properties{Args: map[string]string{"ms": "60"}}); err != nil {
		t.Fatal(err)
	}
	table := &core.AllocationTable{App: "spin", Entries: []core.Placement{{
		Task: id, TaskName: "Spin", Site: "site0",
		Hosts: []string{hostA.Name}, Predicted: time.Millisecond,
	}}}
	// Fail A shortly after the run starts.
	go func() {
		time.Sleep(10 * time.Millisecond)
		hostA.Fail()
	}()
	res, err := r.engine.Execute(context.Background(), g, table)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rescheduled < 1 {
		t.Fatalf("rescheduled = %d", res.Rescheduled)
	}
	last := res.Runs[len(res.Runs)-1]
	if last.Host == hostA.Name {
		t.Fatal("task finished on the failed host")
	}
}

func TestRescheduleExhaustion(t *testing.T) {
	r := newRig(t, 2)
	for _, h := range r.tb.Sites[0].Hosts {
		h.InjectLoad(0.95)
	}
	r.engine.LoadThreshold = 0.5
	r.engine.LoadCheckPeriod = time.Millisecond
	r.engine.MaxAttempts = 2

	g := afg.NewGraph("spin")
	id := g.AddTask("Spin", "util", 0, 1)
	if err := g.SetProps(id, afg.Properties{Args: map[string]string{"ms": "40"}}); err != nil {
		t.Fatal(err)
	}
	table := &core.AllocationTable{App: "spin", Entries: []core.Placement{{
		Task: id, TaskName: "Spin", Site: "site0",
		Hosts: []string{r.tb.Sites[0].Hosts[0].Name}, Predicted: time.Millisecond,
	}}}
	if _, err := r.engine.Execute(context.Background(), g, table); err == nil {
		t.Fatal("hopeless application succeeded")
	}
}

func TestTaskErrorAborts(t *testing.T) {
	r := newRig(t, 2)
	// Feed LU a vector: a type error deep in the pipeline must surface.
	g := afg.NewGraph("bad")
	vg := g.AddTask("Vector_Generate", "matrix", 0, 1)
	lu := g.AddTask("LU_Decomposition", "matrix", 1, 1)
	if err := g.Connect(vg, 0, lu, 0, 0); err != nil {
		t.Fatal(err)
	}
	table := r.schedule(t, g)
	if _, err := r.engine.Execute(context.Background(), g, table); err == nil {
		t.Fatal("type error swallowed")
	}
}

func TestContextCancellation(t *testing.T) {
	r := newRig(t, 2)
	g := afg.NewGraph("spin")
	id := g.AddTask("Spin", "util", 0, 1)
	if err := g.SetProps(id, afg.Properties{Args: map[string]string{"ms": "500"}}); err != nil {
		t.Fatal(err)
	}
	table := r.schedule(t, g)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := r.engine.Execute(ctx, g, table); err == nil {
		t.Fatal("cancelled execution succeeded")
	}
}

func TestDilationStretchesRuntime(t *testing.T) {
	tb, err := testbed.Build(testbed.Config{
		Sites: 1, HostsPerGroup: 1, Seed: 11,
		SpeedMin: 0.25, SpeedMax: 0.25, BaseLoadMax: 0.01, LoadSigma: 0.0001,
	})
	if err != nil {
		t.Fatal(err)
	}
	site := tb.Sites[0]
	if err := tasklib.Default().InstallInto(site.Repo, []string{site.Hosts[0].Name}); err != nil {
		t.Fatal(err)
	}
	engine := &Engine{Reg: tasklib.Default(), TB: tb, DilationScale: 1}
	g := afg.NewGraph("spin")
	id := g.AddTask("Spin", "util", 0, 1)
	if err := g.SetProps(id, afg.Properties{Args: map[string]string{"ms": "20"}}); err != nil {
		t.Fatal(err)
	}
	table := &core.AllocationTable{App: "spin", Entries: []core.Placement{{
		Task: id, TaskName: "Spin", Site: "site0",
		Hosts: []string{site.Hosts[0].Name}, Predicted: time.Millisecond,
	}}}
	res, err := engine.Execute(context.Background(), g, table)
	if err != nil {
		t.Fatal(err)
	}
	// Speed 0.25 -> dilation ~4x: a 20ms spin should report >= ~60ms.
	if got := res.Runs[0].Elapsed; got < 55*time.Millisecond {
		t.Fatalf("dilated elapsed = %v, want >= 55ms", got)
	}
}

func TestSameHostTasksSerialize(t *testing.T) {
	r := newRig(t, 2)
	hostA := r.tb.Sites[0].Hosts[0].Name
	hostB := r.tb.Sites[0].Hosts[1].Name
	mkGraph := func() *afg.Graph {
		g := afg.NewGraph("pair")
		for i := 0; i < 2; i++ {
			id := g.AddTask("Spin", "util", 0, 1)
			if err := g.SetProps(id, afg.Properties{Args: map[string]string{"ms": "40"}}); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	place := func(g *afg.Graph, hosts [2]string) *core.AllocationTable {
		return &core.AllocationTable{App: g.Name, Entries: []core.Placement{
			{Task: 0, TaskName: "Spin", Site: "site0", Hosts: []string{hosts[0]}, Predicted: time.Millisecond},
			{Task: 1, TaskName: "Spin", Site: "site0", Hosts: []string{hosts[1]}, Predicted: time.Millisecond},
		}}
	}
	// Same host: the two 40ms spins must serialize (>= ~75ms).
	g1 := mkGraph()
	res1, err := r.engine.Execute(context.Background(), g1, place(g1, [2]string{hostA, hostA}))
	if err != nil {
		t.Fatal(err)
	}
	if res1.Makespan < 75*time.Millisecond {
		t.Fatalf("same-host makespan %v — tasks overlapped on one machine", res1.Makespan)
	}
	// Different hosts: they overlap (well under the serial sum).
	g2 := mkGraph()
	res2, err := r.engine.Execute(context.Background(), g2, place(g2, [2]string{hostA, hostB}))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Makespan >= res1.Makespan {
		t.Fatalf("two-host makespan %v not faster than one-host %v", res2.Makespan, res1.Makespan)
	}
}

func TestEngineValidation(t *testing.T) {
	var e Engine
	g := afg.NewGraph("x")
	g.AddTask("Spin", "util", 0, 1)
	if _, err := e.Execute(context.Background(), g, &core.AllocationTable{}); err == nil {
		t.Fatal("unconfigured engine accepted work")
	}
	r := newRig(t, 1)
	if _, err := r.engine.Execute(context.Background(), g, &core.AllocationTable{}); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestWaitForLoadHelper(t *testing.T) {
	if !waitForLoad(100*time.Millisecond, func() bool { return true }) {
		t.Fatal("immediate condition failed")
	}
	if waitForLoad(10*time.Millisecond, func() bool { return false }) {
		t.Fatal("impossible condition succeeded")
	}
}
