package exec

// Mid-run failure and recovery regressions: per-host engine locks must
// be released when a task is rescheduled off a locked host, a
// detector-confirmed death must interrupt tasks on a host the local
// watchdog cannot see failing (a partition), and the recovery event
// stream / patched result table must report what actually happened.

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"vdce/internal/afg"
	"vdce/internal/core"
)

// spinTable places one Spin task (of ms milliseconds) on the host.
func spinTable(t *testing.T, g *afg.Graph, host string, ms string) *core.AllocationTable {
	t.Helper()
	id := g.Exits()[0]
	if err := g.SetProps(id, afg.Properties{Args: map[string]string{"ms": ms}}); err != nil {
		t.Fatal(err)
	}
	return &core.AllocationTable{App: g.Name, Entries: []core.Placement{{
		Task: id, TaskName: "Spin", Site: "site0",
		Hosts: []string{host}, Predicted: time.Millisecond,
	}}}
}

// TestHostLocksReleasedAfterMidRunReschedule is the lock-leak
// regression: when the watchdog chases a task off a host, the host's
// engine-wide lock must be free the moment the task moves — both while
// the rescheduled attempt still runs elsewhere and after the run ends.
func TestHostLocksReleasedAfterMidRunReschedule(t *testing.T) {
	r := newRig(t, 2)
	hostA := r.tb.Sites[0].Hosts[0]
	r.engine.LoadCheckPeriod = time.Millisecond

	g := afg.NewGraph("spin")
	g.AddTask("Spin", "util", 0, 1)
	table := spinTable(t, g, hostA.Name, "60")

	// The moment the reschedule lands, the dead host's lock must be
	// available: the terminated attempt released it on its way out.
	freeDuringRun := make(chan bool, 1)
	sink := func(ev Event) {
		if ev.Type != EventRescheduled {
			return
		}
		r.engine.lockMu.Lock()
		l := r.engine.hostLocks[hostA.Name]
		r.engine.lockMu.Unlock()
		if l == nil {
			freeDuringRun <- false
			return
		}
		ok := l.TryLock()
		if ok {
			l.Unlock()
		}
		select {
		case freeDuringRun <- ok:
		default:
		}
	}

	go func() {
		time.Sleep(10 * time.Millisecond)
		hostA.Fail()
	}()
	res, err := r.engine.Execute(context.Background(), g, table, WithEventSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rescheduled < 1 {
		t.Fatalf("rescheduled = %d", res.Rescheduled)
	}
	select {
	case ok := <-freeDuringRun:
		if !ok {
			t.Error("failed host's lock still held while the task ran elsewhere")
		}
	default:
		t.Error("no reschedule event observed")
	}
	// After the run, every lock the engine ever created must be free.
	r.engine.lockMu.Lock()
	defer r.engine.lockMu.Unlock()
	for name, l := range r.engine.hostLocks {
		if !l.TryLock() {
			t.Errorf("lock for %s leaked", name)
			continue
		}
		l.Unlock()
	}
}

// TestConfirmedDeathInterruptsPartitionedHost exercises the
// detector-driven path end to end at the engine boundary: the host is
// partitioned (still computing, so the watchdog's Failed() check stays
// false) and only MarkHostDead — what the detector calls on a confirmed
// transition — moves the task.
func TestConfirmedDeathInterruptsPartitionedHost(t *testing.T) {
	r := newRig(t, 2)
	hostA := r.tb.Sites[0].Hosts[0]
	hostB := r.tb.Sites[0].Hosts[1]
	r.engine.LoadCheckPeriod = time.Millisecond

	g := afg.NewGraph("spin")
	g.AddTask("Spin", "util", 0, 1)
	table := spinTable(t, g, hostA.Name, "80")

	go func() {
		time.Sleep(10 * time.Millisecond)
		hostA.Partition()
		if hostA.Failed() {
			t.Error("partitioned host reports Failed — watchdog would short-circuit the detector path")
		}
		// What the failure detector does on a confirmed transition.
		r.engine.MarkHostDead(hostA.Name)
	}()
	res, err := r.engine.Execute(context.Background(), g, table)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Runs[len(res.Runs)-1]
	if last.Host != hostB.Name {
		t.Fatalf("final run on %s, want %s", last.Host, hostB.Name)
	}
	if !res.Runs[0].Terminated {
		t.Fatalf("first run not terminated: %+v", res.Runs[0])
	}
	// Recovery restores the host for future placements.
	r.engine.MarkHostAlive(hostA.Name)
	if r.engine.hostDead(hostA.Name) {
		t.Fatal("MarkHostAlive did not clear the dead set")
	}
}

// TestPartitionedHostCannotDeliverResults: a task that computes to
// completion on a partitioned host must NOT deliver its outputs — even
// before the failure detector confirms anything, the results cannot
// have left the machine. The delivery check reschedules it instead.
func TestPartitionedHostCannotDeliverResults(t *testing.T) {
	r := newRig(t, 2)
	hostA := r.tb.Sites[0].Hosts[0]
	hostB := r.tb.Sites[0].Hosts[1]
	r.engine.LoadCheckPeriod = time.Hour // watchdog silent: only the delivery check may fire

	g := afg.NewGraph("spin")
	g.AddTask("Spin", "util", 0, 1)
	table := spinTable(t, g, hostA.Name, "40")

	go func() {
		time.Sleep(10 * time.Millisecond)
		hostA.Partition()
	}()
	res, err := r.engine.Execute(context.Background(), g, table)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rescheduled < 1 {
		t.Fatalf("partitioned host delivered results: %+v", res.Runs)
	}
	if !res.Runs[0].Terminated {
		t.Fatalf("first run not terminated: %+v", res.Runs[0])
	}
	if last := res.Runs[len(res.Runs)-1]; last.Host != hostB.Name {
		t.Fatalf("final run on %s, want %s", last.Host, hostB.Name)
	}
	if len(res.FailedHosts) != 1 || res.FailedHosts[0] != hostA.Name {
		t.Fatalf("FailedHosts = %v", res.FailedHosts)
	}
}

// TestEventStreamAndPatchedTable pins the observability contract: the
// sink sees the failure and the reschedule, the result lists the failed
// host, and the returned table reflects the placement that actually ran
// without mutating the caller's input table.
func TestEventStreamAndPatchedTable(t *testing.T) {
	r := newRig(t, 2)
	hostA := r.tb.Sites[0].Hosts[0]
	r.engine.LoadCheckPeriod = time.Millisecond

	g := afg.NewGraph("spin")
	g.AddTask("Spin", "util", 0, 1)
	table := spinTable(t, g, hostA.Name, "60")

	var mu sync.Mutex
	var events []Event
	sink := func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		hostA.Fail()
	}()
	res, err := r.engine.Execute(context.Background(), g, table, WithEventSink(sink))
	if err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	var sawFailure, sawResched bool
	for _, ev := range events {
		switch ev.Type {
		case EventHostFailure:
			sawFailure = true
			if ev.Host != hostA.Name || ev.Reason == "" {
				t.Fatalf("failure event = %+v", ev)
			}
		case EventRescheduled:
			sawResched = true
			if ev.Host == hostA.Name {
				t.Fatalf("rescheduled back onto the failed host: %+v", ev)
			}
		}
	}
	if !sawFailure || !sawResched {
		t.Fatalf("events = %+v, want a failure and a reschedule", events)
	}
	if len(res.FailedHosts) != 1 || res.FailedHosts[0] != hostA.Name {
		t.Fatalf("FailedHosts = %v", res.FailedHosts)
	}
	if res.Table == nil || res.Table.Entries[0].Hosts[0] == hostA.Name {
		t.Fatalf("patched table still places the task on the failed host: %+v", res.Table)
	}
	if table.Entries[0].Hosts[0] != hostA.Name {
		t.Fatal("input table was mutated")
	}
	// Scheduling bookkeeping survives the patch.
	if res.Table.Entries[0].Level != table.Entries[0].Level {
		t.Fatal("patch clobbered the level bookkeeping")
	}
}

// TestNoRescheduleEventOnFinalAttempt: when the last allowed attempt is
// terminated, no replacement placement is computed and no
// EventRescheduled is emitted — the event promises a re-run that
// exhaustion makes impossible.
func TestNoRescheduleEventOnFinalAttempt(t *testing.T) {
	r := newRig(t, 2)
	hostA := r.tb.Sites[0].Hosts[0]
	r.engine.MaxAttempts = 1
	r.engine.LoadCheckPeriod = time.Millisecond

	g := afg.NewGraph("spin")
	g.AddTask("Spin", "util", 0, 1)
	table := spinTable(t, g, hostA.Name, "60")

	var mu sync.Mutex
	var events []Event
	go func() {
		time.Sleep(10 * time.Millisecond)
		hostA.Fail()
	}()
	_, err := r.engine.Execute(context.Background(), g, table, WithEventSink(func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}))
	if err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("err = %v, want attempt exhaustion", err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, ev := range events {
		if ev.Type == EventRescheduled {
			t.Fatalf("rescheduled event emitted for a placement that never ran: %+v", ev)
		}
	}
	if len(events) == 0 {
		t.Fatal("the host failure itself was not reported")
	}
}

// TestOverloadIsNotAFailedHost: a load-threshold kill reschedules but
// must not brand the host failed.
func TestOverloadIsNotAFailedHost(t *testing.T) {
	r := newRig(t, 2)
	hostA := r.tb.Sites[0].Hosts[0]
	hostA.InjectLoad(0.95)
	r.engine.LoadThreshold = 0.8
	r.engine.LoadCheckPeriod = time.Millisecond

	g := afg.NewGraph("spin")
	g.AddTask("Spin", "util", 0, 1)
	table := spinTable(t, g, hostA.Name, "50")

	var mu sync.Mutex
	var overloads int
	res, err := r.engine.Execute(context.Background(), g, table, WithEventSink(func(ev Event) {
		if ev.Type == EventOverload {
			mu.Lock()
			overloads++
			mu.Unlock()
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rescheduled < 1 {
		t.Fatalf("rescheduled = %d", res.Rescheduled)
	}
	if len(res.FailedHosts) != 0 {
		t.Fatalf("overloaded host listed as failed: %v", res.FailedHosts)
	}
	mu.Lock()
	defer mu.Unlock()
	if overloads < 1 {
		t.Fatal("no overload event observed")
	}
}
