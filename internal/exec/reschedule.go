package exec

import (
	"fmt"
	"time"

	"vdce/internal/afg"
	"vdce/internal/breaker"
	"vdce/internal/core"
)

// ReschedulerOption customizes NewRescheduler.
type ReschedulerOption func(*reschedulerOpts)

type reschedulerOpts struct {
	breakers *breaker.Set
}

// WithBreakers makes the rescheduler consult the per-host circuit
// breakers: hosts with open breakers are excluded from replacement
// placements exactly like the caller's own exclusion list. The breaker
// filter is advisory — if honoring it would leave no placement at all,
// the rescheduler retries without it rather than failing the task (a
// suspect host beats no host).
func WithBreakers(b *breaker.Set) ReschedulerOption {
	return func(o *reschedulerOpts) { o.breakers = b }
}

// NewRescheduler builds the Reschedule hook from the available site
// schedulers: on a rescheduling request it re-runs host selection for
// the single task across all sites, excluding the hosts the Application
// Controller reported (plus any open-breaker hosts), and returns the
// fastest remaining placement.
func NewRescheduler(sites []*core.LocalSite, opts ...ReschedulerOption) func(*afg.Graph, afg.TaskID, []string) (*core.Placement, error) {
	var o reschedulerOpts
	for _, opt := range opts {
		opt(&o)
	}
	return func(g *afg.Graph, id afg.TaskID, exclude []string) (*core.Placement, error) {
		task := g.Task(id)
		if task == nil {
			return nil, fmt.Errorf("exec: reschedule of unknown task %d", id)
		}
		bad := make(map[string]bool, len(exclude))
		for _, h := range exclude {
			bad[h] = true
		}
		if best := rescheduleOnce(sites, task, id, bad, o.breakers); best != nil {
			return best, nil
		}
		if o.breakers != nil {
			// Advisory fallback: every candidate was quarantined. Place on
			// a breaker-excluded host anyway rather than failing the task.
			if best := rescheduleOnce(sites, task, id, bad, nil); best != nil {
				return best, nil
			}
		}
		return nil, fmt.Errorf("exec: no host available to reschedule task %d (%s)", id, task.Name)
	}
}

// rescheduleOnce runs one cross-site selection pass for task, skipping
// hosts in bad and (when breakers is non-nil) hosts whose breaker is
// open. It returns nil when no site can place the task.
func rescheduleOnce(sites []*core.LocalSite, task *afg.Task, id afg.TaskID, bad map[string]bool, breakers *breaker.Set) *core.Placement {
	var best *core.Placement
	for _, site := range sites {
		// One snapshot per site keeps the exclusion scan and the
		// final prediction on the same view.
		snap := site.Snapshot()
		ranked := site.RankedHostsAt(snap, task)
		var usable []core.RankedHost
		for _, r := range ranked {
			if bad[r.Name] {
				continue
			}
			if breakers != nil && !breakers.Allow(r.Name) {
				continue
			}
			usable = append(usable, r)
		}
		if len(usable) == 0 {
			continue
		}
		nodes := core.RequiredNodesAt(snap, task)
		if len(usable) < nodes {
			continue
		}
		hosts := make([]string, nodes)
		for i := 0; i < nodes; i++ {
			hosts[i] = usable[i].Name
		}
		pred, err := site.PredictSetAt(snap, task, hosts)
		if err != nil {
			continue
		}
		if best == nil || pred < best.Predicted {
			best = &core.Placement{
				Task: id, TaskName: task.Name, Site: site.SiteName(),
				Hosts: hosts, Predicted: pred,
			}
		}
	}
	return best
}

// waitForLoad is a small test helper shared by the experiments: it polls
// until the condition holds or the timeout elapses.
func waitForLoad(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}
