package exec

import (
	"fmt"
	"time"

	"vdce/internal/afg"
	"vdce/internal/core"
)

// NewRescheduler builds the Reschedule hook from the available site
// schedulers: on a rescheduling request it re-runs host selection for
// the single task across all sites, excluding the hosts the Application
// Controller reported, and returns the fastest remaining placement.
func NewRescheduler(sites []*core.LocalSite) func(*afg.Graph, afg.TaskID, []string) (*core.Placement, error) {
	return func(g *afg.Graph, id afg.TaskID, exclude []string) (*core.Placement, error) {
		task := g.Task(id)
		if task == nil {
			return nil, fmt.Errorf("exec: reschedule of unknown task %d", id)
		}
		bad := make(map[string]bool, len(exclude))
		for _, h := range exclude {
			bad[h] = true
		}
		var best *core.Placement
		for _, site := range sites {
			// One snapshot per site keeps the exclusion scan and the
			// final prediction on the same view.
			snap := site.Snapshot()
			ranked := site.RankedHostsAt(snap, task)
			var usable []core.RankedHost
			for _, r := range ranked {
				if !bad[r.Name] {
					usable = append(usable, r)
				}
			}
			if len(usable) == 0 {
				continue
			}
			nodes := core.RequiredNodesAt(snap, task)
			if len(usable) < nodes {
				continue
			}
			hosts := make([]string, nodes)
			for i := 0; i < nodes; i++ {
				hosts[i] = usable[i].Name
			}
			pred, err := site.PredictSetAt(snap, task, hosts)
			if err != nil {
				continue
			}
			if best == nil || pred < best.Predicted {
				best = &core.Placement{
					Task: id, TaskName: task.Name, Site: site.SiteName(),
					Hosts: hosts, Predicted: pred,
				}
			}
		}
		if best == nil {
			return nil, fmt.Errorf("exec: no host available to reschedule task %d (%s)", id, task.Name)
		}
		return best, nil
	}
}

// waitForLoad is a small test helper shared by the experiments: it polls
// until the condition holds or the timeout elapses.
func waitForLoad(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}
