package exec

import (
	"errors"
	"strings"
	"testing"

	"vdce/internal/afg"
	"vdce/internal/core"
	"vdce/internal/repository"
	"vdce/internal/tasklib"
)

// siteWith builds a LocalSite whose hosts all share one speed map:
// hosts[name] = speed factor relative to the base processor.
func siteWith(t *testing.T, name string, hosts map[string]float64) *core.LocalSite {
	t.Helper()
	repo := repository.New(name)
	names := make([]string, 0, len(hosts))
	for h, speed := range hosts {
		if err := repo.Resources.AddHost(repository.ResourceInfo{
			HostName: h, ArchType: "SUN", OSType: "Solaris",
			TotalMem: 1 << 30, Site: name, SpeedFactor: speed,
		}); err != nil {
			t.Fatal(err)
		}
		names = append(names, h)
	}
	if err := tasklib.Default().InstallInto(repo, names); err != nil {
		t.Fatal(err)
	}
	return core.NewLocalSite(repo)
}

// spinGraph returns a one-task graph over the catalog's Spin task.
func spinGraph(t *testing.T) (*afg.Graph, afg.TaskID) {
	t.Helper()
	g := afg.NewGraph("resched")
	id := g.AddTask("Spin", "util", 0, 1)
	return g, id
}

func TestReschedulerExcludesReportedHosts(t *testing.T) {
	// fast is 4x the base processor; the rescheduler must prefer it —
	// unless it is exactly the host the controller reported.
	site := siteWith(t, "s0", map[string]float64{"fast": 4, "mid": 2, "slow": 1})
	resched := NewRescheduler([]*core.LocalSite{site})
	g, id := spinGraph(t)

	p, err := resched(g, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hosts[0] != "fast" {
		t.Fatalf("unexcluded pick = %v, want fast", p.Hosts)
	}
	p, err = resched(g, id, []string{"fast"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Hosts[0] != "mid" {
		t.Fatalf("pick with fast excluded = %v, want mid", p.Hosts)
	}
	p, err = resched(g, id, []string{"fast", "mid"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Hosts[0] != "slow" {
		t.Fatalf("pick with fast+mid excluded = %v, want slow", p.Hosts)
	}
}

func TestReschedulerSkipsDownHosts(t *testing.T) {
	// A host the failure detector marked down must never win a
	// rescheduling request, even when it would be the fastest choice.
	site := siteWith(t, "s0", map[string]float64{"fast": 4, "slow": 1})
	if err := site.Repo.Resources.SetStatus("fast", repository.HostDown); err != nil {
		t.Fatal(err)
	}
	g, id := spinGraph(t)
	p, err := NewRescheduler([]*core.LocalSite{site})(g, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hosts[0] != "slow" {
		t.Fatalf("picked %v, want slow (fast is down)", p.Hosts)
	}
}

func TestReschedulerParallelFallsAcrossSites(t *testing.T) {
	// A parallel task wanting 2 nodes: the (faster) local site can no
	// longer field 2 usable hosts after the exclusion, so the placement
	// must fall through to the remote site that can.
	s0 := siteWith(t, "s0", map[string]float64{"a0": 4, "a1": 4})
	s1 := siteWith(t, "s1", map[string]float64{"b0": 1, "b1": 1})
	resched := NewRescheduler([]*core.LocalSite{s0, s1})

	g := afg.NewGraph("par")
	id := g.AddTask("Synthetic_Work", "util", 2, 1)
	if err := g.SetProps(id, afg.Properties{Mode: afg.Parallel, Nodes: 2}); err != nil {
		t.Fatal(err)
	}

	p, err := resched(g, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Site != "s0" || len(p.Hosts) != 2 {
		t.Fatalf("unexcluded parallel pick = %+v, want 2 hosts on s0", p)
	}
	p, err = resched(g, id, []string{"a0"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Site != "s1" || len(p.Hosts) != 2 {
		t.Fatalf("parallel pick with a0 excluded = %+v, want 2 hosts on s1", p)
	}
}

func TestReschedulerNoCapacityError(t *testing.T) {
	site := siteWith(t, "s0", map[string]float64{"only": 1})
	g, id := spinGraph(t)
	resched := NewRescheduler([]*core.LocalSite{site})

	if _, err := resched(g, id, []string{"only"}); err == nil {
		t.Fatal("reschedule succeeded with every host excluded")
	} else if !strings.Contains(err.Error(), "no host available") {
		t.Fatalf("error = %v, want a no-host-available explanation", err)
	}

	// Same outcome when the last host is down rather than excluded.
	if err := site.Repo.Resources.SetStatus("only", repository.HostDown); err != nil {
		t.Fatal(err)
	}
	if _, err := resched(g, id, nil); err == nil {
		t.Fatal("reschedule succeeded on an all-down site")
	}
}

func TestReschedulerUnknownTask(t *testing.T) {
	site := siteWith(t, "s0", map[string]float64{"h": 1})
	g, _ := spinGraph(t)
	if _, err := NewRescheduler([]*core.LocalSite{site})(g, afg.TaskID(99), nil); err == nil {
		t.Fatal("unknown task accepted")
	} else if errors.Is(err, errTerminated) {
		t.Fatal("wrong error class")
	}
}
