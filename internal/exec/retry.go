package exec

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"time"
)

// RetryConfig shapes the engine's rescheduling retries. Before it
// existed, executeWithRescheduling re-attempted with zero delay the
// instant a watchdog killed an attempt — so a wave of host failures
// (a quarter of the site dying at once) multiplied load exactly when
// the site had the least capacity to absorb it. Backoff spaces the
// retries of one task; the engine-wide token-bucket budget caps the
// aggregate retry rate across every application the engine is running.
type RetryConfig struct {
	// BaseDelay is the first retry's backoff; attempt n waits a jittered
	// BaseDelay * 2^(n-1), capped at MaxDelay. 0 disables backoff
	// (legacy immediate retry).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 64 * BaseDelay).
	MaxDelay time.Duration
	// BudgetPerSecond is the engine-wide retry budget: the sustained
	// rate of rescheduling retries the engine will perform across all
	// applications. Retries beyond the budget park until their reserved
	// token refills instead of hammering the scheduler. 0 = unlimited.
	BudgetPerSecond float64
	// BudgetBurst is the bucket capacity (default ceil(BudgetPerSecond),
	// minimum 1): how many retries may fire back-to-back before the
	// rate limit bites.
	BudgetBurst int
	// Seed makes the jitter deterministic for tests. 0 seeds from the
	// clock.
	Seed int64
	// Now supplies the budget clock (default time.Now).
	Now func() time.Time
	// Sleep performs the backoff/park waits (default a ctx-aware real
	// sleep). Tests inject a recorder to assert delays without waiting.
	Sleep func(ctx context.Context, d time.Duration) error
}

// retryGate is the runtime form of RetryConfig: one per Engine, lazily
// built, shared by every task controller.
type retryGate struct {
	cfg RetryConfig

	mu     sync.Mutex
	rng    *rand.Rand
	tokens float64
	last   time.Time

	retries int64
	parks   int64
}

func newRetryGate(cfg RetryConfig) *retryGate {
	if cfg.BaseDelay > 0 && cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 64 * cfg.BaseDelay
	}
	if cfg.BudgetPerSecond > 0 && cfg.BudgetBurst <= 0 {
		cfg.BudgetBurst = int(math.Ceil(cfg.BudgetPerSecond))
		if cfg.BudgetBurst < 1 {
			cfg.BudgetBurst = 1
		}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Sleep == nil {
		cfg.Sleep = func(ctx context.Context, d time.Duration) error {
			if d <= 0 {
				return ctx.Err()
			}
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = cfg.Now().UnixNano()
	}
	g := &retryGate{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	g.tokens = float64(cfg.BudgetBurst)
	g.last = cfg.Now()
	return g
}

// backoff returns the jittered exponential delay before retry number
// attempt (1-based: the delay taken after the first failed attempt).
// Full-jitter on the upper half keeps retries spread while preserving
// the exponential floor: d/2 + rand[0, d/2).
func (g *retryGate) backoff(attempt int) time.Duration {
	base := g.cfg.BaseDelay
	if base <= 0 {
		return 0
	}
	d := base
	for i := 1; i < attempt && d < g.cfg.MaxDelay; i++ {
		d *= 2
	}
	if d > g.cfg.MaxDelay {
		d = g.cfg.MaxDelay
	}
	g.mu.Lock()
	j := time.Duration(g.rng.Int63n(int64(d/2) + 1))
	g.mu.Unlock()
	return d/2 + j
}

// reserve takes one retry token, returning how long the caller must
// park first. With tokens in the bucket the wait is 0; an empty bucket
// reserves the next token to refill and returns the time until then,
// so the aggregate retry rate never exceeds the budget.
func (g *retryGate) reserve() (wait time.Duration, parked bool) {
	if g.cfg.BudgetPerSecond <= 0 {
		g.mu.Lock()
		g.retries++
		g.mu.Unlock()
		return 0, false
	}
	now := g.cfg.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	elapsed := now.Sub(g.last).Seconds()
	if elapsed > 0 {
		g.tokens = math.Min(float64(g.cfg.BudgetBurst), g.tokens+elapsed*g.cfg.BudgetPerSecond)
		g.last = now
	}
	g.retries++
	g.tokens--
	if g.tokens >= 0 {
		return 0, false
	}
	// Over budget: this retry owns the (-tokens)'th future token; park
	// until it exists.
	g.parks++
	return time.Duration(-g.tokens / g.cfg.BudgetPerSecond * float64(time.Second)), true
}

// RetryStats reports the engine's cumulative rescheduling retries and
// how many of them were parked by the budget.
func (e *Engine) RetryStats() (retries, parked int64) {
	g := e.retryGate()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.retries, g.parks
}

// retryGate lazily builds the engine's shared gate from e.Retry.
func (e *Engine) retryGate() *retryGate {
	e.retryOnce.Do(func() {
		e.retry = newRetryGate(e.Retry)
	})
	return e.retry
}

// retryPause applies the retry policy before one rescheduling retry:
// jittered exponential backoff for this task plus any budget park the
// engine-wide token bucket imposes. It returns ctx's error if the wait
// was interrupted.
func (e *Engine) retryPause(ctx context.Context, attempt int) error {
	g := e.retryGate()
	d := g.backoff(attempt)
	if wait, _ := g.reserve(); wait > d {
		// The budget park subsumes the backoff — both start now.
		d = wait
	}
	if d <= 0 {
		return ctx.Err()
	}
	return g.cfg.Sleep(ctx, d)
}
