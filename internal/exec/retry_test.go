package exec

import (
	"context"
	"testing"
	"time"
)

func TestBackoffDeterministicForSeed(t *testing.T) {
	mk := func() *retryGate {
		return newRetryGate(RetryConfig{BaseDelay: 100 * time.Millisecond, Seed: 7})
	}
	a, b := mk(), mk()
	for attempt := 1; attempt <= 6; attempt++ {
		da, db := a.backoff(attempt), b.backoff(attempt)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", attempt, da, db)
		}
	}
}

func TestBackoffExponentialEnvelope(t *testing.T) {
	g := newRetryGate(RetryConfig{BaseDelay: 100 * time.Millisecond, MaxDelay: 800 * time.Millisecond, Seed: 1})
	// Attempt n's jittered delay lives in [d/2, d] for d = min(base*2^(n-1), max).
	want := []time.Duration{100, 200, 400, 800, 800, 800}
	for i, w := range want {
		d := w * time.Millisecond
		got := g.backoff(i + 1)
		if got < d/2 || got > d {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", i+1, got, d/2, d)
		}
	}
}

func TestBackoffDisabledIsZero(t *testing.T) {
	g := newRetryGate(RetryConfig{Seed: 1})
	if d := g.backoff(3); d != 0 {
		t.Fatalf("backoff with no BaseDelay = %v, want 0", d)
	}
}

func TestBudgetParksOverBudgetRetries(t *testing.T) {
	now := time.Unix(0, 0)
	g := newRetryGate(RetryConfig{
		BudgetPerSecond: 2, BudgetBurst: 2, Seed: 1,
		Now: func() time.Time { return now },
	})
	// The burst drains free; every retry past it parks for its reserved
	// token — the i'th over-budget retry waits i/rate seconds.
	for i := 0; i < 2; i++ {
		if wait, parked := g.reserve(); wait != 0 || parked {
			t.Fatalf("burst retry %d parked (wait %v)", i, wait)
		}
	}
	for i := 1; i <= 3; i++ {
		wait, parked := g.reserve()
		if !parked {
			t.Fatalf("over-budget retry %d not parked", i)
		}
		if want := time.Duration(i) * 500 * time.Millisecond; wait != want {
			t.Fatalf("over-budget retry %d wait = %v, want %v", i, wait, want)
		}
	}
	retries, parks := g.retries, g.parks
	if retries != 5 || parks != 3 {
		t.Fatalf("stats = %d retries / %d parks, want 5 / 3", retries, parks)
	}
	// Time passing refills the bucket; the reserved debt drains first.
	now = now.Add(2 * time.Second) // +4 tokens onto -3 -> 1
	if wait, parked := g.reserve(); wait != 0 || parked {
		t.Fatalf("post-refill retry parked (wait %v)", wait)
	}
}

func TestUnlimitedBudgetNeverParks(t *testing.T) {
	g := newRetryGate(RetryConfig{Seed: 1})
	for i := 0; i < 100; i++ {
		if wait, parked := g.reserve(); wait != 0 || parked {
			t.Fatalf("retry %d parked with no budget configured", i)
		}
	}
}

func TestRetryPauseSleepsMaxOfBackoffAndPark(t *testing.T) {
	now := time.Unix(0, 0)
	var slept []time.Duration
	e := &Engine{Retry: RetryConfig{
		BaseDelay: 10 * time.Millisecond, MaxDelay: 10 * time.Millisecond,
		BudgetPerSecond: 1, BudgetBurst: 1, Seed: 1,
		Now:   func() time.Time { return now },
		Sleep: func(_ context.Context, d time.Duration) error { slept = append(slept, d); return nil },
	}}
	ctx := context.Background()
	// First retry spends the burst token: only the backoff sleeps
	// (10ms envelope, so at most 10ms).
	if err := e.retryPause(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// Second retry is over budget: the 1s park dominates the 10ms backoff.
	if err := e.retryPause(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 2 {
		t.Fatalf("sleeps = %v, want 2 entries", slept)
	}
	if slept[0] > 10*time.Millisecond || slept[0] < 5*time.Millisecond {
		t.Fatalf("first sleep %v outside backoff envelope [5ms, 10ms]", slept[0])
	}
	if slept[1] != time.Second {
		t.Fatalf("second sleep = %v, want the 1s budget park", slept[1])
	}
	retries, parked := e.RetryStats()
	if retries != 2 || parked != 1 {
		t.Fatalf("RetryStats = %d/%d, want 2 retries, 1 park", retries, parked)
	}
}

func TestRetryPauseZeroConfigIsImmediate(t *testing.T) {
	called := false
	e := &Engine{Retry: RetryConfig{
		Sleep: func(context.Context, time.Duration) error { called = true; return nil },
	}}
	if err := e.retryPause(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("zero-config retryPause must not sleep (legacy immediate retry)")
	}
}
