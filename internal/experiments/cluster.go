package experiments

import (
	"fmt"
	"time"

	"vdce/internal/core"
	"vdce/internal/netmodel"
	"vdce/internal/sim"
	"vdce/internal/testbed"
	"vdce/internal/workload"
)

// cluster is the shared experiment fixture: a fabricated multi-site
// testbed with schedulers per site.
type cluster struct {
	tb    *testbed.Testbed
	sites []*core.LocalSite
	net   *netmodel.Network
}

// newCluster fabricates sites x hostsPerSite hosts and refreshes every
// repository once so load data is populated.
func newCluster(sites, hostsPerSite int, seed int64) (*cluster, error) {
	tb, err := testbed.Build(testbed.Config{
		Sites: sites, HostsPerGroup: hostsPerSite, Seed: seed,
		BaseLoadMax: 0.5, LoadSigma: 0.05,
	})
	if err != nil {
		return nil, err
	}
	c := &cluster{tb: tb, net: tb.Net}
	for _, s := range tb.Sites {
		c.sites = append(c.sites, core.NewLocalSite(s.Repo))
	}
	if err := tb.RefreshRepos(time.Unix(0, 0)); err != nil {
		return nil, err
	}
	return c, nil
}

// install registers a synthetic workload at every site.
func (c *cluster) install(w *workload.Graph) error {
	for _, s := range c.tb.Sites {
		names := make([]string, len(s.Hosts))
		for i, h := range s.Hosts {
			names[i] = h.Name
		}
		if err := w.Install(s.Repo, names); err != nil {
			return err
		}
	}
	return nil
}

// policy names one scheduling strategy for E2-style comparisons.
type policy struct {
	name string
	run  func(*cluster, *workload.Graph) (*core.AllocationTable, error)
}

func vdcePolicy(k int, prio core.PriorityMode) policy {
	name := fmt.Sprintf("vdce(k=%d)", k)
	if prio == core.FIFOPriority {
		name = "fifo-order"
	}
	return policy{name: name, run: func(c *cluster, w *workload.Graph) (*core.AllocationTable, error) {
		var remotes []core.SiteService
		for _, s := range c.sites[1:] {
			remotes = append(remotes, s)
		}
		sched := core.NewScheduler(c.sites[0], remotes, c.net, k)
		sched.Priority = prio
		return sched.Schedule(w.G, w.CostFunc())
	}}
}

func randomPolicy(seed int64) policy {
	return policy{name: "random", run: func(c *cluster, w *workload.Graph) (*core.AllocationTable, error) {
		return core.ScheduleRandom(w.G, c.sites, c.net, seed)
	}}
}

func roundRobinPolicy() policy {
	return policy{name: "round-robin", run: func(c *cluster, w *workload.Graph) (*core.AllocationTable, error) {
		return core.ScheduleRoundRobin(w.G, c.sites, c.net)
	}}
}

func minMinPolicy() policy {
	return policy{name: "min-min", run: func(c *cluster, w *workload.Graph) (*core.AllocationTable, error) {
		return core.ScheduleMinMin(w.G, c.sites, c.net)
	}}
}

func queueAwarePolicy() policy {
	return policy{name: "vdce+q", run: func(c *cluster, w *workload.Graph) (*core.AllocationTable, error) {
		return core.ScheduleQueueAware(w.G, c.sites, c.net, w.CostFunc())
	}}
}

// makespan schedules with the policy and simulates the result.
func (p policy) makespan(c *cluster, w *workload.Graph) (time.Duration, *sim.Result, error) {
	table, err := p.run(c, w)
	if err != nil {
		return 0, nil, fmt.Errorf("%s: %w", p.name, err)
	}
	res, err := sim.Run(w.G, table, c.net)
	if err != nil {
		return 0, nil, fmt.Errorf("%s: %w", p.name, err)
	}
	return res.Makespan, res, nil
}
