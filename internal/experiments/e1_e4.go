package experiments

import (
	"fmt"
	"strings"
	"time"

	"vdce/internal/afg"
	"vdce/internal/core"
	"vdce/internal/sim"
	"vdce/internal/tasklib"
	"vdce/internal/workload"
)

// E1LESBuild reproduces Fig. 1: the Linear Equation Solver application
// flow graph with its task-properties windows. The table lists every
// task exactly as the editor would render it; the notes carry the two
// properties windows the figure shows.
func E1LESBuild(n int) (*Table, error) {
	g, err := tasklib.BuildLinearEquationSolver(n, 1)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E1",
		Title:  fmt.Sprintf("Fig. 1 — Linear Equation Solver AFG (n=%d)", n),
		Header: []string{"task", "name", "mode", "nodes", "machine-pref", "inputs", "outputs"},
	}
	for _, task := range g.Tasks {
		mt := task.Props.MachineType
		if mt == "" {
			mt = afg.AnyMachine
		}
		ins := make([]string, len(task.Props.Inputs))
		for i, f := range task.Props.Inputs {
			ins[i] = f.String()
		}
		outs := make([]string, len(task.Props.Outputs))
		for i, f := range task.Props.Outputs {
			outs[i] = f.String()
		}
		t.Add(int(task.ID), task.Name, task.Props.Mode.String(), task.Props.Nodes,
			mt, strings.Join(ins, " "), strings.Join(outs, " "))
	}
	for _, name := range []string{"LU_Decomposition", "Matrix_Multiplication"} {
		for _, task := range g.Tasks {
			if task.Name == name {
				t.Note("properties window:\n%s", task.PropertiesWindow())
			}
		}
	}
	t.Note("edges: %d, entry tasks: %d, exit tasks: %d", len(g.Edges), len(g.Entries()), len(g.Exits()))
	return t, nil
}

// E2Params sizes the scheduler-comparison sweep.
type E2Params struct {
	Sites, HostsPerSite int
	TaskCounts          []int
	CCRs                []float64
	Seed                int64
}

// DefaultE2 is the sweep used in EXPERIMENTS.md.
func DefaultE2() E2Params {
	return E2Params{
		Sites: 4, HostsPerSite: 8,
		TaskCounts: []int{20, 100, 300},
		CCRs:       []float64{0.1, 1, 10},
		Seed:       7,
	}
}

// E2Schedulers reproduces the paper's central claim (Fig. 2 + §3): the
// level-priority site scheduler minimizes schedule length against
// baseline policies. Cells are simulated makespans in milliseconds;
// the last columns are ratios relative to the VDCE scheduler.
func E2Schedulers(p E2Params) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "Site Scheduler vs baselines — simulated schedule length (ms)",
		Header: []string{"family", "tasks", "ccr", "vdce", "fifo", "local",
			"random", "rrobin", "minmin", "vdce+q", "rand/vdce", "rr/vdce"},
	}
	policies := []policy{
		vdcePolicy(p.Sites-1, core.LevelPriority),
		vdcePolicy(p.Sites-1, core.FIFOPriority),
		vdcePolicy(0, core.LevelPriority), // local-only
		randomPolicy(p.Seed),
		roundRobinPolicy(),
		minMinPolicy(),
		queueAwarePolicy(), // extension: Fig. 3 + host availability
	}
	var worseRandom, total int
	for _, fam := range workload.Families() {
		for _, n := range p.TaskCounts {
			for _, ccr := range p.CCRs {
				c, err := newCluster(p.Sites, p.HostsPerSite, p.Seed)
				if err != nil {
					return nil, err
				}
				w, err := fam.Gen(workload.Params{Tasks: n, CCR: ccr, Seed: p.Seed})
				if err != nil {
					return nil, err
				}
				if err := c.install(w); err != nil {
					return nil, err
				}
				ms := make([]time.Duration, len(policies))
				for i, pol := range policies {
					d, _, err := pol.makespan(c, w)
					if err != nil {
						return nil, err
					}
					ms[i] = d
				}
				vd := ms[0]
				t.Add(fam.Name, n, ccr,
					msCell(ms[0]), msCell(ms[1]), msCell(ms[2]),
					msCell(ms[3]), msCell(ms[4]), msCell(ms[5]), msCell(ms[6]),
					ratio(ms[3], vd), ratio(ms[4], vd))
				total++
				if ms[3] >= vd {
					worseRandom++
				}
			}
		}
	}
	t.Note("random >= vdce in %d/%d configurations", worseRandom, total)
	return t, nil
}

func msCell(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond))
}

func ratio(a, b time.Duration) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", float64(a)/float64(b))
}

// E3HostSelection reproduces Fig. 3's quality: the host chosen from the
// resource-performance database versus the true best host, as the
// database ages (stale load information). Regret is the percent extra
// execution time of the chosen host over the oracle's.
func E3HostSelection(staleSteps []int, trials int, seed int64) (*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  "Host Selection vs oracle under stale load data",
		Header: []string{"staleness(steps)", "mean regret %", "max regret %", "exact picks"},
	}
	for _, steps := range staleSteps {
		c, err := newCluster(1, 16, seed)
		if err != nil {
			return nil, err
		}
		site := c.tb.Sites[0]
		w, err := workload.Layered(workload.Params{Tasks: trials, CCR: 0, Seed: seed})
		if err != nil {
			return nil, err
		}
		if err := c.install(w); err != nil {
			return nil, err
		}
		var regretSum, regretMax float64
		exact := 0
		for trial := 0; trial < trials; trial++ {
			// Refresh the DB, then advance the true loads beyond it.
			if err := c.tb.RefreshRepos(time.Unix(int64(trial), 0)); err != nil {
				return nil, err
			}
			for s := 0; s < steps; s++ {
				for _, h := range site.Hosts {
					h.Sample(time.Unix(int64(trial), int64(s)))
				}
			}
			task := w.G.Task(afg.TaskID(trial))
			single, singleID := singleTaskGraph(task)
			sel, err := c.sites[0].HostSelection(single)
			if err != nil {
				return nil, err
			}
			choice := sel[singleID]
			if choice.Err != "" {
				return nil, fmt.Errorf("E3: %s", choice.Err)
			}
			// True cost now: base time dilated by the live host state.
			trueCost := func(hostName string) (float64, error) {
				h, err := c.tb.Host(hostName)
				if err != nil {
					return 0, err
				}
				return w.Costs[task.ID].Seconds() * h.Dilation(), nil
			}
			chosen, err := trueCost(choice.Hosts[0])
			if err != nil {
				return nil, err
			}
			best := chosen
			for _, h := range site.Hosts {
				v, err := trueCost(h.Name)
				if err != nil {
					return nil, err
				}
				if v < best {
					best = v
				}
			}
			reg := (chosen - best) / best * 100
			regretSum += reg
			if reg > regretMax {
				regretMax = reg
			}
			if reg < 1e-9 {
				exact++
			}
		}
		t.Add(steps, regretSum/float64(trials), regretMax, fmt.Sprintf("%d/%d", exact, trials))
	}
	t.Note("regret grows with staleness; fresh data picks the true best host")
	return t, nil
}

// singleTaskGraph wraps one task in a standalone graph (with a fresh ID)
// so host selection evaluates just that task.
func singleTaskGraph(task *afg.Task) (*afg.Graph, afg.TaskID) {
	ng := afg.NewGraph("single")
	id := ng.AddTask(task.Name, task.Library, 0, task.OutPorts)
	props := task.Props
	props.Inputs = nil
	_ = ng.SetProps(id, props)
	return ng, id
}

// E4Locality reproduces the §3 claim that scheduling within
// nearest-neighbor sites decreases inter-task communication: on a
// latency ring of sites, the k-nearest multicast bounds how far tasks
// scatter. Reported per k: simulated makespan and inter-site traffic.
func E4Locality(ks []int, tasks int, ccr float64, seed int64) (*Table, error) {
	t := &Table{
		ID:     "E4",
		Title:  fmt.Sprintf("k-nearest site locality (ring of 8 sites, %d tasks, CCR=%g)", tasks, ccr),
		Header: []string{"k", "makespan(ms)", "sites used", "intersite MB", "intersite transfers"},
	}
	for _, k := range ks {
		c, err := newCluster(8, 4, seed)
		if err != nil {
			return nil, err
		}
		c.net.Ring(10*time.Millisecond, 2e6)
		// The submitting site is busy (the situation that motivates
		// scheduling on neighbors at all): its hosts carry heavy load, so
		// remote capacity is worth the transfers.
		for _, h := range c.tb.Sites[0].Hosts {
			h.InjectLoad(0.85)
		}
		if err := c.tb.RefreshRepos(time.Unix(1, 0)); err != nil {
			return nil, err
		}
		w, err := workload.Layered(workload.Params{Tasks: tasks, CCR: ccr, Seed: seed})
		if err != nil {
			return nil, err
		}
		if err := c.install(w); err != nil {
			return nil, err
		}
		pol := vdcePolicy(k, core.LevelPriority)
		table, err := pol.run(c, w)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(w.G, table, c.net)
		if err != nil {
			return nil, err
		}
		used := make(map[string]bool)
		for _, e := range table.Entries {
			used[e.Site] = true
		}
		t.Add(k, msCell(res.Makespan), len(used),
			fmt.Sprintf("%.2f", float64(res.InterSiteBytes)/1e6), res.InterSiteTransfers)
	}
	t.Note("the transfer term co-locates the whole graph on the best reachable site:")
	t.Note("larger k finds faster neighbors (makespan falls) while inter-site traffic stays minimal")
	return t, nil
}
