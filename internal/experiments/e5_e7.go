package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"vdce/internal/afg"
	"vdce/internal/control"
	"vdce/internal/core"
	"vdce/internal/exec"
	"vdce/internal/tasklib"
	"vdce/internal/testbed"
)

// E5Monitoring reproduces the Resource Controller pipeline of Fig. 4 and
// quantifies the Group Manager's significant-change filter: for each
// threshold, how many monitor samples reach the Site Manager, and how
// stale the resource-performance database gets (mean absolute load error
// versus ground truth at the end of the run).
func E5Monitoring(thresholds []float64, hosts, rounds int, seed int64) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  fmt.Sprintf("Group Manager change filtering (%d hosts, %d monitor rounds)", hosts, rounds),
		Header: []string{"threshold", "forwarded", "forwarded %", "mean |db err|"},
	}
	for _, thr := range thresholds {
		tb, err := testbed.Build(testbed.Config{
			Sites: 1, HostsPerGroup: hosts, Seed: seed, BaseLoadMax: 0.6, LoadSigma: 0.04,
		})
		if err != nil {
			return nil, err
		}
		site := tb.Sites[0]
		local := core.NewLocalSite(site.Repo)
		sm, err := control.StartSiteManager(local, "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		gm := control.NewGroupManager(site.Name, "g0", site.Hosts, sm, time.Hour)
		gm.Threshold = thr
		gm.MemThreshold = 1 << 40 // isolate the load trigger

		for r := 0; r < rounds; r++ {
			now := time.Unix(int64(r), 0)
			for _, h := range site.Hosts {
				s := h.Sample(now)
				if err := gm.Ingest(h.Name, s); err != nil {
					sm.Close()
					return nil, err
				}
			}
		}
		// Database staleness: repo load vs live host load.
		var errSum float64
		for _, h := range site.Hosts {
			rec, err := site.Repo.Resources.Host(h.Name)
			if err != nil {
				sm.Close()
				return nil, err
			}
			errSum += math.Abs(rec.CPULoad - h.CurrentLoad())
		}
		recv, fwd, _ := gm.Stats()
		sm.Close()
		t.Add(thr, fwd, fmt.Sprintf("%.1f", float64(fwd)/float64(recv)*100),
			fmt.Sprintf("%.4f", errSum/float64(hosts)))
	}
	t.Note("higher thresholds cut Site Manager traffic at the cost of database staleness")
	return t, nil
}

// E6FailureDetect reproduces §4.1's echo-based failure detection:
// detection latency as a function of the echo period. Time is modeled
// in virtual rounds (failures occur uniformly inside an echo interval),
// so the measured latency distribution is exact rather than
// sleep-dependent; the database transition is verified on every trial.
func E6FailureDetect(periods []time.Duration, trials int, seed int64) (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "Echo-based failure detection latency",
		Header: []string{"echo period", "mean latency", "max latency", "detected"},
	}
	for _, period := range periods {
		tb, err := testbed.Build(testbed.Config{Sites: 1, HostsPerGroup: 8, Seed: seed})
		if err != nil {
			return nil, err
		}
		site := tb.Sites[0]
		local := core.NewLocalSite(site.Repo)
		sm, err := control.StartSiteManager(local, "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		gm := control.NewGroupManager(site.Name, "g0", site.Hosts, sm, time.Hour)
		var latSum, latMax time.Duration
		detected := 0
		rng := newRng(seed)
		for trial := 0; trial < trials; trial++ {
			victim := site.Hosts[trial%len(site.Hosts)]
			// The failure lands uniformly inside an echo interval.
			offset := time.Duration(rng.Int63n(int64(period)))
			failAt := time.Unix(int64(trial)*1000, 0).Add(offset)
			victim.Fail()
			// Next echo rounds happen at interval boundaries after the
			// trial epoch.
			var detectAt time.Time
			for r := 1; r <= 3; r++ {
				roundTime := time.Unix(int64(trial)*1000, 0).Add(time.Duration(r) * period)
				if err := gm.EchoRound(roundTime); err != nil {
					sm.Close()
					return nil, err
				}
				if gm.Down(victim.Name) {
					detectAt = roundTime
					break
				}
			}
			if !detectAt.IsZero() {
				detected++
				lat := detectAt.Sub(failAt)
				latSum += lat
				if lat > latMax {
					latMax = lat
				}
				// The repository must agree (Fig. 4 step 3).
				rec, err := site.Repo.Resources.Host(victim.Name)
				if err != nil {
					sm.Close()
					return nil, err
				}
				if rec.Status != "down" {
					sm.Close()
					return nil, fmt.Errorf("E6: repo missed the failure")
				}
			}
			victim.Recover()
			if err := gm.EchoRound(time.Unix(int64(trial)*1000+500, 0)); err != nil {
				sm.Close()
				return nil, err
			}
		}
		sm.Close()
		mean := time.Duration(0)
		if detected > 0 {
			mean = latSum / time.Duration(detected)
		}
		t.Add(period.String(), mean.String(), latMax.String(), fmt.Sprintf("%d/%d", detected, trials))
	}
	t.Note("latency ≈ echo period − uniform failure offset; mean ≈ period/2, max ≤ period")
	return t, nil
}

// E7Reschedule reproduces §4.1's Application Controller threshold: a
// contention burst lands on the host running a chain of tasks; with
// rescheduling the work moves away, without it the run drags through the
// overload. Real execution with real TCP channels.
func E7Reschedule(spinMs int, contention float64) (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  fmt.Sprintf("Load-threshold rescheduling under a %.0f%% contention burst", contention*100),
		Header: []string{"mode", "makespan", "reschedules", "final host moved"},
	}
	run := func(withReschedule bool) (time.Duration, int, bool, error) {
		tb, err := testbed.Build(testbed.Config{
			Sites: 1, HostsPerGroup: 2, Seed: 31,
			SpeedMin: 1, SpeedMax: 1, BaseLoadMax: 0.01, LoadSigma: 0.0001,
		})
		if err != nil {
			return 0, 0, false, err
		}
		site := tb.Sites[0]
		names := []string{site.Hosts[0].Name, site.Hosts[1].Name}
		if err := tasklib.Default().InstallInto(site.Repo, names); err != nil {
			return 0, 0, false, err
		}
		local := core.NewLocalSite(site.Repo)
		engine := &exec.Engine{
			Reg: tasklib.Default(), TB: tb,
			LoadCheckPeriod: time.Millisecond,
		}
		if withReschedule {
			engine.LoadThreshold = 0.7
			engine.Reschedule = exec.NewRescheduler([]*core.LocalSite{local})
		} else {
			// Threshold disabled: the task stays on the overloaded host.
			engine.LoadThreshold = 0
			// Dilation makes the overload actually slow the task down.
			engine.DilationScale = 1
		}
		g := afg.NewGraph("burst")
		id := g.AddTask("Spin", "util", 0, 1)
		if err := g.SetProps(id, afg.Properties{Args: map[string]string{"ms": fmt.Sprint(spinMs)}}); err != nil {
			return 0, 0, false, err
		}
		table := &core.AllocationTable{App: "burst", Entries: []core.Placement{{
			Task: id, TaskName: "Spin", Site: site.Name,
			Hosts: []string{site.Hosts[0].Name}, Predicted: time.Duration(spinMs) * time.Millisecond,
		}}}
		// Contention burst arrives immediately.
		site.Hosts[0].InjectLoad(contention)
		res, err := engine.Execute(context.Background(), g, table)
		if err != nil {
			return 0, 0, false, err
		}
		last := res.Runs[len(res.Runs)-1]
		return res.Makespan, res.Rescheduled, last.Host == site.Hosts[1].Name, nil
	}

	withMs, withCount, moved, err := run(true)
	if err != nil {
		return nil, err
	}
	withoutMs, withoutCount, _, err := run(false)
	if err != nil {
		return nil, err
	}
	t.Add("reschedule on", withMs.Round(time.Millisecond).String(), withCount, moved)
	t.Add("reschedule off", withoutMs.Round(time.Millisecond).String(), withoutCount, false)
	t.Note("rescheduling moves the task off the overloaded host; disabled runs pay the dilated overload")
	return t, nil
}
