package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"vdce/internal/afg"
	"vdce/internal/core"
	"vdce/internal/exec"
	"vdce/internal/protocol"
	"vdce/internal/tasklib"
	"vdce/internal/testbed"
	"vdce/internal/workload"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// E8Prediction reproduces the §3 prediction core: per-(task, host)
// prediction error before and after the calibration loop (the Site
// Manager folding measured execution times back into the
// task-performance database). Tasks run for real with dilation, so
// measurements reflect host speed.
func E8Prediction(runs int) (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "Prediction error before/after measurement calibration",
		Header: []string{"round", "mean |err| %", "max |err| %"},
	}
	tb, err := testbed.Build(testbed.Config{
		Sites: 1, HostsPerGroup: 3, Seed: 41,
		SpeedMin: 0.5, SpeedMax: 3, BaseLoadMax: 0.05, LoadSigma: 0.001,
	})
	if err != nil {
		return nil, err
	}
	site := tb.Sites[0]
	names := make([]string, len(site.Hosts))
	for i, h := range site.Hosts {
		names[i] = h.Name
	}
	if err := tasklib.Default().InstallInto(site.Repo, names); err != nil {
		return nil, err
	}
	local := core.NewLocalSite(site.Repo)
	engine := &exec.Engine{
		Reg: tasklib.Default(), TB: tb, DilationScale: 1,
		Record: func(rec protocol.ExecutionRecord) {
			_ = site.Repo.TaskPerf.RecordExecution(rec.Task, rec.Host, rec.Elapsed, rec.At)
		},
	}
	g := afg.NewGraph("probe")
	id := g.AddTask("Spin", "util", 0, 1)
	if err := g.SetProps(id, afg.Properties{Args: map[string]string{"ms": "10"}}); err != nil {
		return nil, err
	}
	for round := 0; round < runs; round++ {
		var errSum, errMax float64
		samples := 0
		for _, h := range site.Hosts {
			table := &core.AllocationTable{App: "probe", Entries: []core.Placement{{
				Task: id, TaskName: "Spin", Site: site.Name,
				Hosts: []string{h.Name}, Predicted: time.Millisecond,
			}}}
			pred, err := local.PredictSet(g.Task(id), []string{h.Name})
			if err != nil {
				return nil, err
			}
			res, err := engine.Execute(context.Background(), g, table)
			if err != nil {
				return nil, err
			}
			meas := res.Runs[0].Elapsed
			e := math.Abs(float64(pred-meas)) / float64(meas) * 100
			errSum += e
			if e > errMax {
				errMax = e
			}
			samples++
		}
		t.Add(round, errSum/float64(samples), errMax)
	}
	t.Note("round 0 uses the static catalog parameters; later rounds blend per-host measurements")
	return t, nil
}

// E9Scale reproduces the scalability direction of §1/§5: wall-clock
// scheduler decision time as sites, hosts, and task counts grow.
func E9Scale(shapes [][3]int, seed int64) (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "Scheduler decision time",
		Header: []string{"sites", "hosts/site", "tasks", "decision time (ms)"},
	}
	for _, shape := range shapes {
		sites, hosts, tasks := shape[0], shape[1], shape[2]
		c, err := newCluster(sites, hosts, seed)
		if err != nil {
			return nil, err
		}
		w, err := workload.Layered(workload.Params{Tasks: tasks, CCR: 1, Seed: seed})
		if err != nil {
			return nil, err
		}
		if err := c.install(w); err != nil {
			return nil, err
		}
		pol := vdcePolicy(sites-1, core.LevelPriority)
		t0 := time.Now()
		if _, err := pol.run(c, w); err != nil {
			return nil, err
		}
		elapsed := time.Since(t0)
		t.Add(sites, hosts, tasks, fmt.Sprintf("%.2f", float64(elapsed)/float64(time.Millisecond)))
	}
	t.Note("growth is near-linear in tasks x sites x hosts (Fig. 3 is a full scan per task)")
	return t, nil
}

// E10DataManager reproduces §4.2: the socket-based point-to-point
// channel path. A two-task producer/consumer application moves payloads
// of increasing size through real TCP channels; reported throughput
// includes channel setup, ack collection, and the startup signal.
func E10DataManager(sizes []int) (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "Data Manager channel throughput (real TCP, loopback)",
		Header: []string{"payload", "wall time", "MB/s"},
	}
	tb, err := testbed.Build(testbed.Config{
		Sites: 1, HostsPerGroup: 2, Seed: 51,
		SpeedMin: 1, SpeedMax: 1, BaseLoadMax: 0.01,
	})
	if err != nil {
		return nil, err
	}
	site := tb.Sites[0]
	names := []string{site.Hosts[0].Name, site.Hosts[1].Name}
	if err := tasklib.Default().InstallInto(site.Repo, names); err != nil {
		return nil, err
	}
	engine := &exec.Engine{Reg: tasklib.Default(), TB: tb}
	for _, n := range sizes {
		g := afg.NewGraph("xfer")
		gen := g.AddTask("Matrix_Generate", "matrix", 0, 1)
		sink := g.AddTask("Checksum", "util", 1, 1)
		if err := g.SetProps(gen, afg.Properties{Args: map[string]string{"n": fmt.Sprint(n), "seed": "1"}}); err != nil {
			return nil, err
		}
		payload := int64(n) * int64(n) * 8
		if err := g.Connect(gen, 0, sink, 0, payload); err != nil {
			return nil, err
		}
		table := &core.AllocationTable{App: "xfer", Entries: []core.Placement{
			{Task: gen, TaskName: "Matrix_Generate", Site: site.Name,
				Hosts: []string{names[0]}, Predicted: time.Millisecond},
			{Task: sink, TaskName: "Checksum", Site: site.Name,
				Hosts: []string{names[1]}, Predicted: time.Millisecond},
		}}
		t0 := time.Now()
		if _, err := engine.Execute(context.Background(), g, table); err != nil {
			return nil, err
		}
		wall := time.Since(t0)
		mbps := float64(payload) / 1e6 / wall.Seconds()
		t.Add(fmt.Sprintf("%dx%d (%.1f MB)", n, n, float64(payload)/1e6),
			wall.Round(time.Millisecond).String(), fmt.Sprintf("%.1f", mbps))
	}
	t.Note("includes generation + gob encode/decode + checksum; sizes sweep the channel path")
	return t, nil
}
