package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestE1Fidelity(t *testing.T) {
	tbl, err := E1LESBuild(1024)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	// Fig. 1 fidelity markers.
	for _, want := range []string{
		"LU_Decomposition", "Matrix_Multiplication", "<parallel>",
		"Number of Nodes: 2", "SUN Solaris", "vector_X.dat", "matrix_A.dat",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E1 output missing %q", want)
		}
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("LES rows = %d", len(tbl.Rows))
	}
}

func TestE2ShapeHolds(t *testing.T) {
	p := DefaultE2()
	p.TaskCounts = []int{40}
	p.CCRs = []float64{1}
	tbl, err := E2Schedulers(p)
	if err != nil {
		t.Fatal(err)
	}
	// Shape: the VDCE scheduler beats random and round-robin on average
	// across families.
	var vdce, random, rrobin float64
	for _, row := range tbl.Rows {
		vdce += atof(t, row[3])
		random += atof(t, row[6])
		rrobin += atof(t, row[7])
	}
	if vdce >= random {
		t.Fatalf("vdce (%f) not better than random (%f) in aggregate", vdce, random)
	}
	if vdce >= rrobin {
		t.Fatalf("vdce (%f) not better than round-robin (%f) in aggregate", vdce, rrobin)
	}
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestE3FreshDataIsExact(t *testing.T) {
	tbl, err := E3HostSelection([]int{0, 16}, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	// With staleness 0 the mean regret must be (near) zero.
	if reg := atof(t, tbl.Rows[0][1]); reg > 1.0 {
		t.Fatalf("fresh-data regret = %g%%", reg)
	}
	// Stale data can only be worse or equal.
	if atof(t, tbl.Rows[1][1]) < atof(t, tbl.Rows[0][1])-1e-9 {
		t.Fatal("stale data beat fresh data")
	}
}

func TestE4LargerKNeverHurts(t *testing.T) {
	tbl, err := E4Locality([]int{1, 7}, 60, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	// A wider multicast can only expose better (or equal) placements.
	low := atof(t, tbl.Rows[0][1])
	high := atof(t, tbl.Rows[1][1])
	if high > low*1.01 {
		t.Fatalf("k=7 makespan %g worse than k=1 makespan %g", high, low)
	}
}

func TestE5FilteringReducesTraffic(t *testing.T) {
	tbl, err := E5Monitoring([]float64{0, 0.1}, 16, 80, 3)
	if err != nil {
		t.Fatal(err)
	}
	all := atof(t, tbl.Rows[0][1])
	filtered := atof(t, tbl.Rows[1][1])
	if filtered >= all/2 {
		t.Fatalf("threshold 0.1 forwarded %g of %g samples (want < half)", filtered, all)
	}
}

func TestE6LatencyBoundedByPeriod(t *testing.T) {
	period := time.Second
	tbl, err := E6FailureDetect([]time.Duration{period}, 32, 9)
	if err != nil {
		t.Fatal(err)
	}
	row := tbl.Rows[0]
	mean, err := time.ParseDuration(row[1])
	if err != nil {
		t.Fatal(err)
	}
	max, err := time.ParseDuration(row[2])
	if err != nil {
		t.Fatal(err)
	}
	if mean <= 0 || mean > period {
		t.Fatalf("mean latency %v out of (0, %v]", mean, period)
	}
	if max > period {
		t.Fatalf("max latency %v exceeds the echo period", max)
	}
	if row[3] != "32/32" {
		t.Fatalf("detected %s, want all", row[3])
	}
}

func TestE7ReschedulingHelps(t *testing.T) {
	tbl, err := E7Reschedule(30, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	with, err := time.ParseDuration(tbl.Rows[0][1])
	if err != nil {
		t.Fatal(err)
	}
	without, err := time.ParseDuration(tbl.Rows[1][1])
	if err != nil {
		t.Fatal(err)
	}
	if with >= without {
		t.Fatalf("rescheduling (%v) did not beat staying put (%v)", with, without)
	}
	if tbl.Rows[0][2] == "0" {
		t.Fatal("no reschedules recorded")
	}
}

func TestE8CalibrationConverges(t *testing.T) {
	tbl, err := E8Prediction(3)
	if err != nil {
		t.Fatal(err)
	}
	first := atof(t, tbl.Rows[0][1])
	last := atof(t, tbl.Rows[len(tbl.Rows)-1][1])
	if last >= first {
		t.Fatalf("calibration did not reduce error: %g -> %g", first, last)
	}
}

func TestE9Runs(t *testing.T) {
	tbl, err := E9Scale([][3]int{{1, 4, 30}, {2, 4, 30}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if atof(t, row[3]) <= 0 {
			t.Fatal("non-positive decision time")
		}
	}
}

func TestE10MovesPayloads(t *testing.T) {
	tbl, err := E10DataManager([]int{32, 128})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if atof(t, row[2]) <= 0 {
			t.Fatalf("throughput row %v", row)
		}
	}
}

func TestRegistryAndQuickMode(t *testing.T) {
	if len(All()) != 10 {
		t.Fatalf("suite has %d experiments", len(All()))
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	e, err := ByID("E1")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.Run(true)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "E1" {
		t.Fatalf("table ID = %s", tbl.ID)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "X", Title: "t", Header: []string{"a", "bb"}}
	tbl.Add("1", 2.5)
	tbl.Note("n=%d", 7)
	out := tbl.String()
	for _, want := range []string{"== X: t ==", "a", "bb", "2.5", "note: n=7"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}
