package experiments

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"vdce/internal/core"
	"vdce/internal/sim"
	"vdce/internal/workload"
)

// Property: every scheduling policy produces a valid allocation table
// whose simulation satisfies the precedence and host-exclusivity
// invariants, across random DAG families, sizes, and CCRs. This is the
// system-level safety net above the per-package unit tests.
func TestAllPoliciesProduceValidSchedulesProperty(t *testing.T) {
	families := workload.Families()
	f := func(seed int64, famRaw, szRaw, ccrRaw uint8) bool {
		fam := families[int(famRaw)%len(families)]
		tasks := int(szRaw)%40 + 2
		ccr := []float64{0, 0.5, 5}[int(ccrRaw)%3]
		c, err := newCluster(2, 3, seed)
		if err != nil {
			return false
		}
		w, err := fam.Gen(workload.Params{Tasks: tasks, CCR: ccr, Seed: seed})
		if err != nil {
			return false
		}
		if err := c.install(w); err != nil {
			return false
		}
		policies := []policy{
			vdcePolicy(1, core.LevelPriority),
			vdcePolicy(1, core.FIFOPriority),
			randomPolicy(seed),
			roundRobinPolicy(),
			minMinPolicy(),
			queueAwarePolicy(),
		}
		for _, pol := range policies {
			table, err := pol.run(c, w)
			if err != nil {
				return false
			}
			if err := table.Validate(w.G); err != nil {
				return false
			}
			res, err := sim.Run(w.G, table, c.net)
			if err != nil {
				return false // sim.Run re-checks both invariants internally
			}
			if res.Makespan <= 0 {
				return false
			}
			// Makespan is bounded below by the largest single placement.
			var longest time.Duration
			for _, e := range table.Entries {
				if e.Predicted > longest {
					longest = e.Predicted
				}
			}
			if res.Makespan < longest {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(99))}); err != nil {
		t.Fatal(err)
	}
}
