package experiments

import (
	"fmt"
	"time"
)

// Experiment couples an ID with a runner using the default parameters
// recorded in EXPERIMENTS.md. Quick mode shrinks sweeps for CI.
type Experiment struct {
	ID    string
	Title string
	Run   func(quick bool) (*Table, error)
}

// All returns the full E1-E10 suite in order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Fig. 1 LES application flow graph", Run: func(quick bool) (*Table, error) {
			n := 1024
			if quick {
				n = 64
			}
			return E1LESBuild(n)
		}},
		{ID: "E2", Title: "Site Scheduler vs baselines", Run: func(quick bool) (*Table, error) {
			p := DefaultE2()
			if quick {
				p.TaskCounts = []int{20, 60}
				p.CCRs = []float64{0.1, 10}
			}
			return E2Schedulers(p)
		}},
		{ID: "E3", Title: "Host Selection vs oracle", Run: func(quick bool) (*Table, error) {
			steps := []int{0, 2, 8, 32}
			trials := 40
			if quick {
				steps = []int{0, 8}
				trials = 10
			}
			return E3HostSelection(steps, trials, 13)
		}},
		{ID: "E4", Title: "k-nearest site locality", Run: func(quick bool) (*Table, error) {
			ks := []int{1, 2, 4, 7}
			tasks := 120
			if quick {
				ks = []int{1, 7}
				tasks = 40
			}
			return E4Locality(ks, tasks, 5, 17)
		}},
		{ID: "E5", Title: "Group Manager change filtering", Run: func(quick bool) (*Table, error) {
			thr := []float64{0, 0.02, 0.05, 0.1, 0.2}
			hosts, rounds := 64, 200
			if quick {
				thr = []float64{0, 0.1}
				hosts, rounds = 8, 50
			}
			return E5Monitoring(thr, hosts, rounds, 19)
		}},
		{ID: "E6", Title: "Echo failure detection latency", Run: func(quick bool) (*Table, error) {
			periods := []time.Duration{250 * time.Millisecond, time.Second, 4 * time.Second}
			trials := 64
			if quick {
				periods = []time.Duration{time.Second}
				trials = 8
			}
			return E6FailureDetect(periods, trials, 23)
		}},
		{ID: "E7", Title: "Load-threshold rescheduling", Run: func(quick bool) (*Table, error) {
			spin := 60
			if quick {
				spin = 25
			}
			return E7Reschedule(spin, 0.9)
		}},
		{ID: "E8", Title: "Prediction calibration", Run: func(quick bool) (*Table, error) {
			runs := 5
			if quick {
				runs = 2
			}
			return E8Prediction(runs)
		}},
		{ID: "E9", Title: "Scheduler scalability", Run: func(quick bool) (*Table, error) {
			shapes := [][3]int{
				{1, 8, 100}, {2, 8, 100}, {4, 8, 100}, {8, 8, 100},
				{4, 8, 250}, {4, 8, 500}, {4, 8, 1000},
				{4, 16, 250}, {4, 32, 250},
			}
			if quick {
				shapes = [][3]int{{2, 4, 50}, {4, 4, 100}}
			}
			return E9Scale(shapes, 29)
		}},
		{ID: "E10", Title: "Data Manager throughput", Run: func(quick bool) (*Table, error) {
			sizes := []int{64, 256, 512, 1024}
			if quick {
				sizes = []int{64, 256}
			}
			return E10DataManager(sizes)
		}},
	}
}

// ByID returns the named experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
