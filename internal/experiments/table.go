// Package experiments implements the reproduction harness: one runnable
// experiment per figure and per quantitative claim of the paper, indexed
// E1-E10 in DESIGN.md. Each experiment returns a printable Table whose
// rows are also consumed by bench_test.go and cmd/vdce-bench, and whose
// measured shapes are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row, stringifying the cells.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note records a free-text observation under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
