package jobsapi

import (
	"sync"

	"vdce/internal/obs"
	"vdce/internal/services"
)

// Stream event types. State transitions come from the job board's
// lifecycle publications; reschedules and host failures come from the
// execution engine's recovery event sink.
const (
	// EventState: the job moved through its lifecycle (queued,
	// scheduling, running, done, failed, canceled) or refreshed its
	// status (queue position, held hosts).
	EventState = "state"
	// EventRescheduled: the engine moved one of the job's tasks to a
	// replacement placement mid-run.
	EventRescheduled = "rescheduled"
	// EventHostFailure: one of the job's hosts failed or was confirmed
	// dead, forcing recovery.
	EventHostFailure = "host-failure"
	// EventSnapshot: a synthesized catch-up event carrying a job's
	// current status — sent at subscribe time so a client that joins (or
	// rejoins past the replay ring) always converges on present state.
	EventSnapshot = "snapshot"
	// EventRecovered: the control plane restarted and re-adopted this
	// job from the durable store — it was in flight when the previous
	// incarnation died and is being re-dispatched.
	EventRecovered = "recovered"
)

// StreamEvent is one notification on the job event stream.
type StreamEvent struct {
	// Cursor is the event's position in the site-wide stream: strictly
	// monotonic, dense per broker. Clients resume after a disconnect by
	// sending the last cursor they processed as Last-Event-ID (or the
	// after query parameter); the stream then continues with the first
	// event they have not seen.
	Cursor uint64 `json:"cursor"`
	// Type is one of EventState, EventRescheduled, EventHostFailure, or
	// EventSnapshot.
	Type string `json:"type"`
	// Job is the job's full status at the time of the event.
	Job services.JobStatus `json:"job"`
}

// DefaultEventBuffer sizes the broker's replay ring and each
// subscriber's delivery buffer when the caller passes 0.
const DefaultEventBuffer = 4096

// Broker is the bounded fan-out hub between the job pipeline and the
// streaming API: publishers (job lifecycle transitions, the execution
// engine's recovery sink) push events in, and any number of HTTP
// subscribers receive them with monotonic cursors.
//
// Both sides are bounded so the board can never be blocked by a slow
// reader: Publish never waits — a subscriber whose delivery buffer is
// full is evicted (its channel closes) rather than backpressuring the
// pipeline — and a replay ring of the most recent events serves
// Last-Event-ID reconnects without holding per-client state.
type Broker struct {
	mu   sync.Mutex
	next uint64 // cursor of the next event to publish (first is 1)
	// ring holds the most recent events for reconnect replay; len(ring)
	// is the bound, start indexes the oldest retained event.
	ring  []StreamEvent
	start int
	count int
	subs  map[*Subscriber]struct{}
	// onPublish, when set, observes every assigned cursor (called under
	// b.mu) — the durability hook persisting the stream's high-water
	// mark.
	onPublish func(uint64)
	// published/evicted/overwritten are the broker's registry counters,
	// installed by Instrument before concurrent use; nil until then, so
	// un-instrumented brokers (tests) pay nothing.
	published   *obs.Counter
	evictedCnt  *obs.Counter
	overwritten *obs.Counter
}

// Instrument registers the broker's counters on reg and installs the
// handles plus a subscriber gauge. Call once, before the broker sees
// concurrent publishes.
func (b *Broker) Instrument(reg *obs.Registry) {
	b.published = reg.Counter("vdce_events_published_total",
		"Events published to the job event broker.").With()
	b.evictedCnt = reg.Counter("vdce_events_subscribers_evicted_total",
		"Slow subscribers evicted because their delivery buffer overflowed.").With()
	b.overwritten = reg.Counter("vdce_events_dropped_total",
		"Replay-ring events overwritten before any reconnect could replay them.").With()
	reg.GaugeFunc("vdce_events_subscribers",
		"Live event-stream subscribers.", nil,
		func(emit func(v float64, labelVals ...string)) {
			emit(float64(b.Subscribers()))
		})
}

// NewBroker returns a broker retaining the last buffer events for
// reconnect replay (0 means DefaultEventBuffer).
func NewBroker(buffer int) *Broker {
	return NewBrokerAt(buffer, 0, nil)
}

// NewBrokerAt returns a broker whose first published event gets cursor
// start+1, with onPublish (may be nil) observing every assigned cursor.
// A control plane restarting from a durable store resumes above the
// persisted high-water mark, so every cursor issued by a previous
// incarnation is strictly below every new one — stale Last-Event-ID
// resumes are detected as gaps instead of silently replaying the wrong
// events.
func NewBrokerAt(buffer int, start uint64, onPublish func(uint64)) *Broker {
	if buffer <= 0 {
		buffer = DefaultEventBuffer
	}
	return &Broker{
		next:      start,
		ring:      make([]StreamEvent, buffer),
		subs:      make(map[*Subscriber]struct{}),
		onPublish: onPublish,
	}
}

// Subscriber is one live event consumer. Receive from C; a closed C
// means the subscription ended (broker shut down, or this consumer fell
// behind and was evicted — check Evicted). Always call Close when done.
type Subscriber struct {
	// C delivers matched events in cursor order.
	C <-chan StreamEvent

	broker  *Broker
	ch      chan StreamEvent
	match   func(StreamEvent) bool
	evicted bool
	closed  bool
}

// Evicted reports whether the broker dropped this subscriber because
// its delivery buffer overflowed (the slow-consumer policy: the board
// is never blocked; the reader must resubscribe with its last cursor).
func (s *Subscriber) Evicted() bool {
	s.broker.mu.Lock()
	defer s.broker.mu.Unlock()
	return s.evicted
}

// Close detaches the subscriber. Idempotent; safe while the broker
// publishes concurrently.
func (s *Subscriber) Close() {
	s.broker.mu.Lock()
	defer s.broker.mu.Unlock()
	s.broker.dropLocked(s)
}

// dropLocked removes a subscriber and closes its channel exactly once.
// Caller holds b.mu — which is what makes close safe: every send to
// s.ch also happens under b.mu, so no send can race the close.
func (b *Broker) dropLocked(s *Subscriber) {
	if s.closed {
		return
	}
	s.closed = true
	delete(b.subs, s)
	close(s.ch)
}

// Publish assigns the next cursor to a job event, retains it for
// replay, and fans it out to every matching subscriber. It never
// blocks: a subscriber without buffer space is evicted instead.
func (b *Broker) Publish(typ string, job services.JobStatus) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.next++
	if b.onPublish != nil {
		b.onPublish(b.next)
	}
	ev := StreamEvent{Cursor: b.next, Type: typ, Job: job}
	if b.published != nil {
		b.published.Inc()
	}
	// Retain in the ring, overwriting the oldest once full.
	i := (b.start + b.count) % len(b.ring)
	b.ring[i] = ev
	if b.count < len(b.ring) {
		b.count++
	} else {
		b.start = (b.start + 1) % len(b.ring)
		if b.overwritten != nil {
			b.overwritten.Inc()
		}
	}
	for s := range b.subs {
		if s.match != nil && !s.match(ev) {
			continue
		}
		select {
		case s.ch <- ev:
		default:
			// Slow consumer: drop it rather than block the pipeline. The
			// closed channel tells the reader to resubscribe from its last
			// processed cursor (the replay ring bridges the gap).
			s.evicted = true
			b.dropLocked(s)
			if b.evictedCnt != nil {
				b.evictedCnt.Inc()
			}
		}
	}
}

// Cursor returns the cursor of the most recently published event (0
// when nothing has been published).
func (b *Broker) Cursor() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.next
}

// Subscribe registers a consumer for events matching match (nil matches
// everything), resuming after cursor `after` (0 subscribes to new
// events only). Replayed events — retained events with cursor > after
// that match — are returned in order; events published later arrive on
// the subscriber's channel. The replay capture and the registration
// happen atomically, so no event is ever both missed and unreplayed.
//
// missed reports whether events between `after` and the oldest retained
// event were already evicted from the replay ring — the subscriber
// cannot be given a gapless resume and should re-synchronize from
// current state (the SSE handlers send a snapshot event).
func (b *Broker) Subscribe(after uint64, buffer int, match func(StreamEvent) bool) (sub *Subscriber, replay []StreamEvent, missed bool) {
	if buffer <= 0 {
		buffer = DefaultEventBuffer
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if after > 0 {
		switch {
		case b.count > 0 && after < b.ring[b.start].Cursor-1:
			// Events between after and the oldest retained one are gone.
			missed = true
		case b.count == 0 && after < b.next:
			// Nothing retained but cursors have moved past after — every
			// intervening event is unreplayable. The empty-ring case covers
			// a broker freshly restarted at a persisted high-water mark:
			// a pre-restart cursor must not silently resume with a gap.
			missed = true
		case after > b.next:
			// A cursor from the future: this broker never issued it (a
			// stale client talking to a restarted server whose high-water
			// mark lagged, or a corrupted value). Resynchronize.
			missed = true
		}
		for i := 0; i < b.count; i++ {
			ev := b.ring[(b.start+i)%len(b.ring)]
			if ev.Cursor <= after {
				continue
			}
			if match != nil && !match(ev) {
				continue
			}
			replay = append(replay, ev)
		}
	}
	s := &Subscriber{
		broker: b,
		ch:     make(chan StreamEvent, buffer),
		match:  match,
	}
	s.C = s.ch
	b.subs[s] = struct{}{}
	return s, replay, missed
}

// Subscribers reports how many consumers are attached (monitoring and
// tests).
func (b *Broker) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}
