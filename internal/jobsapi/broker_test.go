package jobsapi

import (
	"fmt"
	"testing"
	"time"

	"vdce/internal/services"
)

// jst builds a minimal job status for broker tests.
func jst(id, owner, state string) services.JobStatus {
	return services.JobStatus{ID: id, Owner: owner, State: state, SubmittedAt: time.Unix(1000, 0)}
}

func TestBrokerDeliversInCursorOrder(t *testing.T) {
	b := NewBroker(16)
	sub, replay, missed := b.Subscribe(0, 16, nil)
	defer sub.Close()
	if len(replay) != 0 || missed {
		t.Fatalf("fresh subscribe: replay=%d missed=%v, want none", len(replay), missed)
	}
	for i := 1; i <= 5; i++ {
		b.Publish(EventState, jst(fmt.Sprintf("job-%d", i), "ana", services.JobStateQueued))
	}
	var last uint64
	for i := 1; i <= 5; i++ {
		ev := <-sub.C
		if ev.Cursor <= last {
			t.Fatalf("cursor not strictly monotonic: %d after %d", ev.Cursor, last)
		}
		last = ev.Cursor
		if want := fmt.Sprintf("job-%d", i); ev.Job.ID != want {
			t.Fatalf("event %d = %s, want %s", i, ev.Job.ID, want)
		}
	}
	if got := b.Cursor(); got != 5 {
		t.Fatalf("broker cursor = %d, want 5", got)
	}
}

func TestBrokerResumeAfterCursorIsGapless(t *testing.T) {
	b := NewBroker(64)
	for i := 1; i <= 10; i++ {
		b.Publish(EventState, jst(fmt.Sprintf("job-%d", i), "ana", services.JobStateQueued))
	}
	// Resume after cursor 4: replay must be exactly 5..10, once each.
	sub, replay, missed := b.Subscribe(4, 16, nil)
	defer sub.Close()
	if missed {
		t.Fatal("resume within the ring reported missed")
	}
	if len(replay) != 6 {
		t.Fatalf("replay length = %d, want 6", len(replay))
	}
	for i, ev := range replay {
		if want := uint64(5 + i); ev.Cursor != want {
			t.Fatalf("replay[%d].Cursor = %d, want %d (gap or duplicate)", i, ev.Cursor, want)
		}
	}
	// New events continue after the replay with no overlap.
	b.Publish(EventState, jst("job-11", "ana", services.JobStateDone))
	if ev := <-sub.C; ev.Cursor != 11 {
		t.Fatalf("live event cursor = %d, want 11", ev.Cursor)
	}
}

func TestBrokerReportsMissedWhenRingEvicted(t *testing.T) {
	b := NewBroker(4)
	for i := 1; i <= 10; i++ {
		b.Publish(EventState, jst(fmt.Sprintf("job-%d", i), "ana", services.JobStateQueued))
	}
	// The ring retains 7..10; resuming after 2 has an unbridgeable gap.
	sub, replay, missed := b.Subscribe(2, 16, nil)
	defer sub.Close()
	if !missed {
		t.Fatal("resume past the ring did not report missed")
	}
	if len(replay) != 4 || replay[0].Cursor != 7 {
		t.Fatalf("replay = %d events starting %d, want the 4 retained from 7", len(replay), replay[0].Cursor)
	}
	// Resuming exactly at the eviction boundary (oldest-1) is gapless.
	if _, replay, missed := b.Subscribe(6, 16, nil); missed || len(replay) != 4 {
		t.Fatalf("boundary resume: missed=%v replay=%d, want clean 4", missed, len(replay))
	}
}

func TestBrokerEvictsSlowConsumerWithoutBlocking(t *testing.T) {
	b := NewBroker(64)
	slow, _, _ := b.Subscribe(0, 2, nil)
	fast, _, _ := b.Subscribe(0, 64, nil)
	defer fast.Close()
	done := make(chan struct{})
	go func() {
		// Publish far past the slow subscriber's buffer; must never block.
		for i := 1; i <= 32; i++ {
			b.Publish(EventState, jst(fmt.Sprintf("job-%d", i), "ana", services.JobStateQueued))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a slow consumer")
	}
	// The slow subscriber's channel drains its 2 buffered events then
	// closes; Evicted distinguishes eviction from a plain Close.
	n := 0
	for range slow.C {
		n++
	}
	if n != 2 {
		t.Fatalf("slow consumer drained %d events, want its 2 buffered", n)
	}
	if !slow.Evicted() {
		t.Fatal("slow consumer not marked evicted")
	}
	// The fast subscriber got everything.
	for i := 1; i <= 32; i++ {
		ev := <-fast.C
		if ev.Cursor != uint64(i) {
			t.Fatalf("fast consumer cursor = %d, want %d", ev.Cursor, i)
		}
	}
	if b.Subscribers() != 1 {
		t.Fatalf("subscribers = %d, want 1 (slow one dropped)", b.Subscribers())
	}
}

func TestBrokerMatchFiltersReplayAndLive(t *testing.T) {
	b := NewBroker(16)
	b.Publish(EventState, jst("job-1", "ana", services.JobStateQueued))
	b.Publish(EventState, jst("job-2", "bo", services.JobStateQueued))
	onlyBo := func(ev StreamEvent) bool { return ev.Job.Owner == "bo" }
	sub, replay, _ := b.Subscribe(1, 16, onlyBo)
	defer sub.Close()
	if len(replay) != 1 || replay[0].Job.ID != "job-2" {
		t.Fatalf("filtered replay = %+v, want just job-2", replay)
	}
	b.Publish(EventState, jst("job-3", "ana", services.JobStateRunning))
	b.Publish(EventState, jst("job-4", "bo", services.JobStateRunning))
	if ev := <-sub.C; ev.Job.ID != "job-4" {
		t.Fatalf("filtered live event = %s, want job-4", ev.Job.ID)
	}
}

// TestBrokerRestartCursorSemantics covers NewBrokerAt, the restart
// constructor: cursors resume above the persisted high-water mark,
// onPublish observes every assignment (the durable store hooks it),
// and a client resuming with a pre-restart cursor is told it missed
// events instead of silently skipping the gap.
func TestBrokerRestartCursorSemantics(t *testing.T) {
	var observed []uint64
	b := NewBrokerAt(8, 100, func(cur uint64) { observed = append(observed, cur) })
	if got := b.Cursor(); got != 100 {
		t.Fatalf("restarted broker Cursor() = %d, want 100", got)
	}

	// A cursor at the high-water mark resumes cleanly (nothing new yet).
	sub, replay, missed := b.Subscribe(100, 4, nil)
	sub.Close()
	if missed || len(replay) != 0 {
		t.Fatalf("resume at mark: replay=%d missed=%v", len(replay), missed)
	}
	// A cursor below the mark is stale — those events lived in the
	// previous incarnation's ring and are gone.
	sub, replay, missed = b.Subscribe(5, 4, nil)
	sub.Close()
	if !missed {
		t.Fatal("stale pre-restart cursor resumed without missed signal")
	}
	if len(replay) != 0 {
		t.Fatalf("stale resume replayed %d events", len(replay))
	}
	// A cursor from the future (e.g. a different store) is also a gap.
	sub, _, missed = b.Subscribe(1000, 4, nil)
	sub.Close()
	if !missed {
		t.Fatal("future cursor resumed without missed signal")
	}

	// New publishes continue the persisted sequence and are observed.
	b.Publish(EventState, jst("job-1", "ana", services.JobStateQueued))
	b.Publish(EventState, jst("job-2", "ana", services.JobStateRunning))
	if len(observed) != 2 || observed[0] != 101 || observed[1] != 102 {
		t.Fatalf("onPublish observed %v, want [101 102]", observed)
	}
	sub, replay, missed = b.Subscribe(100, 4, nil)
	defer sub.Close()
	if missed || len(replay) != 2 || replay[0].Cursor != 101 {
		t.Fatalf("post-restart replay = %+v missed=%v", replay, missed)
	}
}
