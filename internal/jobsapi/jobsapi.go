// Package jobsapi is the versioned job-control HTTP surface shared by
// every VDCE front end: vdce-server mounts it as the site-wide
// monitoring and control API, and the Application Editor mounts it
// owner-scoped so users manage their own running applications — the
// paper's "user interacts with the executing application" through the
// editor, generalized to a protocol both tools speak.
//
//	GET    /v1/jobs             list jobs (filter: owner, state;
//	                            paginate: cursor, limit — offset is a
//	                            deprecated alias; limit=0 is count-only)
//	GET    /v1/jobs/{id}        one job's status
//	GET    /v1/jobs/{id}/events one job's lifecycle as SSE (resume with
//	                            Last-Event-ID; ends at the terminal event)
//	GET    /v1/events           site-wide job event firehose (filter:
//	                            owner, state)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/owners           per-owner fair-share weights, quota
//	                            limits, rate limits, and live usage
//	PATCH  /v1/owners/{owner}   runtime owner administration: pin the
//	                            fair-share weight, override quota caps
//	                            (site-wide mounts only; owner-scoped
//	                            mounts answer 403 — the editor surface
//	                            stays read-only)
//	GET    /v1/hosts            per-host health: up/down, failure-
//	                            detector state, and circuit-breaker
//	                            state (closed/open/half-open with the
//	                            windowed failure rate), when the Source
//	                            implements HostSource
//	GET    /v1/jobs/{id}/trace  one job's lifecycle trace: phase
//	                            boundary timestamps plus park,
//	                            reschedule, and failure point events,
//	                            when the Source implements TraceSource
//
// All endpoints require authentication; the embedding server supplies
// the session model. When Config.RateLimit is set, every request spends
// one token from the caller's per-owner bucket and an empty bucket
// answers 429 with Retry-After — one owner's polling storm cannot crowd
// out another owner's requests or streams.
package jobsapi

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"vdce/internal/obs"
	"vdce/internal/services"
)

// DefaultLimit and MaxLimit bound GET /v1/jobs pages. A limit above
// MaxLimit is rejected with 400 (not silently clamped): the caller
// asked for a page the server will not serve, and pretending otherwise
// would corrupt cursor arithmetic clients build on top.
const (
	DefaultLimit = 100
	MaxLimit     = 1000
)

// Cursor is a position in the canonical (submit-time, then ID) listing
// order — the keyset cursor of GET /v1/jobs. A page's next_cursor
// encodes the last row returned; passing it back resumes strictly
// after that row in O(page) time at any board depth, and stays correct
// as earlier rows are evicted or later rows arrive (unlike offsets,
// which shift whenever the set changes).
type Cursor struct {
	// Submitted is the row's submission time in Unix nanoseconds.
	Submitted int64
	// ID is the row's job ID, breaking submission-time ties.
	ID string
}

// IsZero reports whether the cursor is the start-of-listing position.
func (c Cursor) IsZero() bool { return c.Submitted == 0 && c.ID == "" }

// CursorOf returns the cursor positioned at a job status row.
func CursorOf(s services.JobStatus) Cursor {
	return Cursor{Submitted: s.SubmittedAt.UnixNano(), ID: s.ID}
}

// Less orders cursors by the canonical listing order.
func (c Cursor) Less(o Cursor) bool {
	if c.Submitted != o.Submitted {
		return c.Submitted < o.Submitted
	}
	return c.ID < o.ID
}

// Encode renders the cursor as the opaque token carried in next_cursor.
func (c Cursor) Encode() string {
	return base64.RawURLEncoding.EncodeToString([]byte(fmt.Sprintf("%d:%s", c.Submitted, c.ID)))
}

// DecodeCursor parses a token produced by Encode. The empty token is
// the start of the listing.
func DecodeCursor(token string) (Cursor, error) {
	if token == "" {
		return Cursor{}, nil
	}
	raw, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return Cursor{}, fmt.Errorf("jobsapi: malformed cursor %q", token)
	}
	sep := strings.IndexByte(string(raw), ':')
	if sep < 0 {
		return Cursor{}, fmt.Errorf("jobsapi: malformed cursor %q", token)
	}
	ns, err := strconv.ParseInt(string(raw[:sep]), 10, 64)
	if err != nil {
		return Cursor{}, fmt.Errorf("jobsapi: malformed cursor %q", token)
	}
	return Cursor{Submitted: ns, ID: string(raw[sep+1:])}, nil
}

// Source is the job store the API serves — implemented by
// vdce.Environment.
type Source interface {
	// ListJobs returns statuses filtered by owner and state (empty
	// strings match everything) in a stable, deterministic order.
	ListJobs(owner, state string) []services.JobStatus
	// ListJobsAfter returns up to limit filtered statuses strictly after
	// the cursor position in the canonical (submit-time, then ID) order,
	// and whether the page filled (more may remain). Implementations
	// must be O(limit) in the board size, not O(board) — this is the
	// pagination path that must stay flat on deep boards.
	ListJobsAfter(owner, state string, after Cursor, limit int) (jobs []services.JobStatus, more bool)
	// Job returns one job's current status.
	Job(id string) (services.JobStatus, bool)
	// CancelJob cancels a queued or running job; canceling a terminal
	// job is a no-op. It errors only for unknown IDs.
	CancelJob(id string) error
	// Owners returns every known owner's fair-share weight, quota
	// limits, and live usage counters, sorted by owner name. The usage
	// counters must come from the same ground truth ListJobs serves.
	// Callers must not retain or mutate the returned slice's backing
	// array beyond the request.
	Owners() []services.OwnerStatus
	// UpdateOwner applies a partial owner-admin change — pin the
	// fair-share weight, override quota caps — effective on the live
	// admission queue immediately and persisted when the environment is
	// durable. An empty update is an error.
	UpdateOwner(owner string, upd services.OwnerUpdate) (services.OwnerStatus, error)
}

// CountSource is the optional Source extension behind the count-only
// listing (explicit limit=0): the filtered total without materializing
// a single row. Sources backed by a counting store (the sharded job
// board keeps per-state and per-owner tallies) answer in O(shards)
// instead of building and discarding an O(board) status slice; sources
// that do not implement it fall back to len(ListJobs).
type CountSource interface {
	CountJobs(owner, state string) int
}

// HostSource is the optional Source extension behind GET /v1/hosts:
// per-host health including circuit-breaker state. Sources that do not
// implement it simply do not get the endpoint mounted (404), so
// existing Source implementations keep working unchanged.
type HostSource interface {
	// Hosts returns every testbed host's health snapshot, sorted by
	// host name.
	Hosts() []services.HostStatus
}

// TraceSource is the optional Source extension behind
// GET /v1/jobs/{id}/trace: the job's full lifecycle trace (phase
// boundaries plus park/reschedule/failure point events). Sources that
// do not implement it do not get the endpoint mounted.
type TraceSource interface {
	// JobTrace returns one retained job's ordered lifecycle trace.
	JobTrace(id string) (services.JobTrace, bool)
}

// Config wires one mount of the API.
type Config struct {
	// Source supplies and controls the jobs.
	Source Source
	// Authenticate resolves a request to its user; ok=false yields 401.
	// The user name is what OwnerScoped authorization compares against.
	Authenticate func(*http.Request) (user string, ok bool)
	// OwnerScoped restricts the whole surface to the caller's own jobs
	// (the editor mount): listings and the firehose are forced to
	// owner=<caller>, and GET/DELETE on someone else's job answer 403.
	// Unscoped mounts (the vdce-server administrative surface) expose
	// and control every job.
	OwnerScoped bool
	// Events feeds the streaming endpoints (/v1/jobs/{id}/events and
	// /v1/events); nil answers them 503.
	Events *Broker
	// EventBuffer bounds each subscriber's delivery buffer (0 =
	// DefaultEventBuffer). A subscriber that falls this far behind is
	// evicted rather than allowed to block the pipeline.
	EventBuffer int
	// RateLimit enforces a per-owner request token bucket across the
	// whole mount; the zero value disables it.
	RateLimit RateLimitConfig
	// Now overrides the rate limiter's clock (tests).
	Now func() time.Time
	// Metrics, when non-nil, receives the mount's per-owner throttle
	// counters (vdce_api_rate_throttled_total{owner}) — the same cells
	// GET /v1/owners reports as rate_throttled, so the two surfaces
	// cannot disagree. Mounts sharing a registry aggregate.
	Metrics *obs.Registry
}

// Handler returns the /v1 job-control mux.
func Handler(cfg Config) http.Handler {
	limiter := newRateLimiter(cfg.RateLimit, cfg.Now)
	if limiter != nil && cfg.Metrics != nil {
		limiter.instrument(cfg.Metrics)
	}
	mux := http.NewServeMux()
	handle := func(pattern string, h func(http.ResponseWriter, *http.Request, string)) {
		mux.HandleFunc(pattern, cfg.auth(limiter, h))
	}
	handle("GET /v1/jobs", cfg.handleList)
	handle("GET /v1/jobs/{id}", cfg.handleGet)
	handle("GET /v1/jobs/{id}/events", cfg.handleJobEvents)
	handle("GET /v1/events", cfg.handleFirehose)
	handle("DELETE /v1/jobs/{id}", cfg.handleCancel)
	handle("GET /v1/owners", func(w http.ResponseWriter, r *http.Request, user string) {
		cfg.handleOwners(w, r, user, limiter)
	})
	handle("PATCH /v1/owners/{owner}", cfg.handleOwnerPatch)
	if hs, ok := cfg.Source.(HostSource); ok {
		handle("GET /v1/hosts", func(w http.ResponseWriter, r *http.Request, _ string) {
			writeJSON(w, http.StatusOK, map[string]any{"hosts": hs.Hosts()})
		})
	}
	if ts, ok := cfg.Source.(TraceSource); ok {
		handle("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request, user string) {
			cfg.handleTrace(w, r, user, ts)
		})
	}
	return mux
}

// handleTrace serves GET /v1/jobs/{id}/trace. Authorization follows
// handleGet exactly: owner-scoped mounts answer 403 for someone else's
// job, so the trace endpoint leaks nothing the status endpoint hides.
func (c Config) handleTrace(w http.ResponseWriter, r *http.Request, user string, ts TraceSource) {
	id := r.PathValue("id")
	s, ok := c.Source.Job(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("jobsapi: no job %q", id))
		return
	}
	if c.OwnerScoped && s.Owner != user {
		writeErr(w, http.StatusForbidden, errors.New("jobsapi: not your job"))
		return
	}
	tr, ok := ts.JobTrace(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("jobsapi: no trace for job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// auth wraps a handler with session authentication and, when a limiter
// is configured, the per-owner request budget. The order matters: the
// bucket is keyed by the authenticated owner, so unauthenticated
// requests are rejected before they can spend anyone's tokens.
func (c Config) auth(limiter *rateLimiter, h func(http.ResponseWriter, *http.Request, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		user, ok := c.Authenticate(r)
		if !ok {
			writeErr(w, http.StatusUnauthorized, errors.New("jobsapi: not authenticated"))
			return
		}
		if limiter != nil {
			if rerr := limiter.allow(user); rerr != nil {
				writeRateErr(w, rerr)
				return
			}
		}
		h(w, r, user)
	}
}

// listResponse is one GET /v1/jobs page. Cursor pages carry
// next_cursor; deprecated offset pages carry total and offset; the
// limit=0 count-only form carries total alone.
type listResponse struct {
	Jobs  []services.JobStatus `json:"jobs"`
	Limit int                  `json:"limit"`
	// NextCursor resumes the listing strictly after the last returned
	// row; empty when the listing is exhausted. Cursor pages only.
	NextCursor string `json:"next_cursor,omitempty"`
	// Total is the filtered job count before pagination — offset pages
	// and limit=0 count-only responses (computing it walks the whole
	// filtered set, which is exactly why the cursor path omits it).
	Total *int `json:"total,omitempty"`
	// Offset echoes the deprecated offset parameter when used.
	Offset *int `json:"offset,omitempty"`
}

// queryInt parses a non-negative integer query parameter.
func queryInt(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("jobsapi: %s must be a non-negative integer, got %q", name, raw)
	}
	return v, nil
}

// handleList serves GET /v1/jobs three ways, in precedence order:
//
//   - limit=0: count-only — zero rows plus the filtered total. The
//     explicit contract for "how many", with none of the rows.
//   - offset present: the deprecated offset page (O(board) on the
//     server; answers carry a Deprecation header).
//   - otherwise: cursor (keyset) pagination — pass next_cursor back as
//     cursor to resume; O(page) at any depth.
func (c Config) handleList(w http.ResponseWriter, r *http.Request, user string) {
	q := r.URL.Query()
	limit, err := queryInt(r, "limit", DefaultLimit)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if limit > MaxLimit {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("jobsapi: limit %d exceeds the maximum page size %d", limit, MaxLimit))
		return
	}
	owner := q.Get("owner")
	if c.OwnerScoped {
		// Users see only their own jobs, whatever filter they ask for.
		owner = user
	}
	state := q.Get("state")

	if q.Has("cursor") && q.Has("offset") {
		writeErr(w, http.StatusBadRequest,
			errors.New("jobsapi: cursor and offset are mutually exclusive"))
		return
	}

	// Count-only: an explicit limit=0 returns zero rows and the filtered
	// total, regardless of pagination mode.
	if limit == 0 && q.Get("limit") != "" {
		var total int
		if cs, ok := c.Source.(CountSource); ok {
			total = cs.CountJobs(owner, state)
		} else {
			total = len(c.Source.ListJobs(owner, state))
		}
		writeJSON(w, http.StatusOK, listResponse{
			Jobs: []services.JobStatus{}, Limit: 0, Total: &total,
		})
		return
	}
	if limit == 0 {
		// limit explicitly absent cannot reach here (default applies);
		// guard against a Source misuse all the same.
		limit = DefaultLimit
	}

	if q.Has("offset") {
		c.handleListOffset(w, r, owner, state, limit)
		return
	}

	after, err := DecodeCursor(q.Get("cursor"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	jobs, more := c.Source.ListJobsAfter(owner, state, after, limit)
	if jobs == nil {
		jobs = []services.JobStatus{}
	}
	resp := listResponse{Jobs: jobs, Limit: limit}
	if more && len(jobs) > 0 {
		resp.NextCursor = CursorOf(jobs[len(jobs)-1]).Encode()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleListOffset is the deprecated offset pagination path, kept as an
// alias for pre-cursor clients. It materializes the whole filtered
// listing per request — O(board) however deep the page — which is why
// new clients should follow next_cursor instead.
func (c Config) handleListOffset(w http.ResponseWriter, r *http.Request, owner, state string, limit int) {
	offset, err := queryInt(r, "offset", 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	jobs := c.Source.ListJobs(owner, state)
	total := len(jobs)
	if offset > total {
		offset = total
	}
	end := offset + limit
	if end > total {
		end = total
	}
	w.Header().Set("Deprecation", "true")
	writeJSON(w, http.StatusOK, listResponse{
		Jobs: jobs[offset:end], Limit: limit, Total: &total, Offset: &offset,
	})
}

// handleOwners serves GET /v1/owners: each owner's fair-share weight,
// quota limits, rate-limit budget, and live usage. On owner-scoped
// mounts a user sees only their own row (possibly empty, if they never
// submitted).
func (c Config) handleOwners(w http.ResponseWriter, r *http.Request, user string, limiter *rateLimiter) {
	owners := c.Source.Owners()
	if c.OwnerScoped {
		// Filter into a fresh slice: reslicing the source's return value
		// (owners[:0]) would compact rows in place over its backing array,
		// corrupting any listing the source serves from shared state.
		scoped := make([]services.OwnerStatus, 0, 1)
		for _, o := range owners {
			if o.Owner == user {
				scoped = append(scoped, o)
			}
		}
		owners = scoped
	}
	if owners == nil {
		owners = []services.OwnerStatus{}
	}
	if limiter != nil {
		// Annotate a copy, not the Source's backing array (same contract
		// the scoped filter above honors).
		annotated := make([]services.OwnerStatus, len(owners))
		copy(annotated, owners)
		for i := range annotated {
			annotated[i].RateRPS = limiter.cfg.RequestsPerSecond
			annotated[i].RateBurst = int(limiter.cfg.burst())
			annotated[i].RateThrottled = limiter.throttledCount(annotated[i].Owner)
		}
		owners = annotated
	}
	writeJSON(w, http.StatusOK, map[string]any{"owners": owners})
}

// handleOwnerPatch serves PATCH /v1/owners/{owner}: a partial admin
// update (weight pin, quota-cap override) applied to the live admission
// queue and persisted when the environment is durable. It is an
// administrative verb: owner-scoped mounts (the editor) answer 403 for
// everyone — users do not set their own weights — and only the
// site-wide mount carries it.
func (c Config) handleOwnerPatch(w http.ResponseWriter, r *http.Request, user string) {
	if c.OwnerScoped {
		writeErr(w, http.StatusForbidden,
			errors.New("jobsapi: owner administration requires the site-wide mount"))
		return
	}
	owner := r.PathValue("owner")
	var upd services.OwnerUpdate
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&upd); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("jobsapi: bad owner update: %w", err))
		return
	}
	if upd.Empty() {
		writeErr(w, http.StatusBadRequest, errors.New("jobsapi: empty owner update"))
		return
	}
	s, err := c.Source.UpdateOwner(owner, upd)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"owner": s})
}

// fetch resolves one job for the authenticated user, writing the 404 /
// 403 responses itself. On owner-scoped mounts another user's job is
// 403 without naming its owner.
func (c Config) fetch(w http.ResponseWriter, id, user string) (services.JobStatus, bool) {
	s, ok := c.Source.Job(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("jobsapi: no job %q", id))
		return services.JobStatus{}, false
	}
	if c.OwnerScoped && s.Owner != user {
		writeErr(w, http.StatusForbidden,
			fmt.Errorf("jobsapi: job %q belongs to another user", id))
		return services.JobStatus{}, false
	}
	return s, true
}

func (c Config) handleGet(w http.ResponseWriter, r *http.Request, user string) {
	s, ok := c.fetch(w, r.PathValue("id"), user)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"job": s})
}

func (c Config) handleCancel(w http.ResponseWriter, r *http.Request, user string) {
	id := r.PathValue("id")
	s, ok := c.fetch(w, id, user)
	if !ok {
		return
	}
	if err := c.Source.CancelJob(id); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	// Report the post-cancel status; a queued job is already terminal, a
	// running one may still be draining. If retention pruning evicted the
	// job between cancel and re-fetch, answer with the pre-cancel
	// snapshot rather than a zero-value job.
	if cur, found := c.Source.Job(id); found {
		s = cur
	}
	writeJSON(w, http.StatusOK, map[string]any{"job": s})
}
