// Package jobsapi is the versioned job-control HTTP surface shared by
// every VDCE front end: vdce-server mounts it as the site-wide
// monitoring and control API, and the Application Editor mounts it
// owner-scoped so users manage their own running applications — the
// paper's "user interacts with the executing application" through the
// editor, generalized to a protocol both tools speak.
//
//	GET    /v1/jobs           list jobs (filter: owner, state; paginate:
//	                          offset, limit)
//	GET    /v1/jobs/{id}      one job's status
//	DELETE /v1/jobs/{id}      cancel a queued or running job
//	GET    /v1/owners         per-owner fair-share weights, quota
//	                          limits, and live usage counters
//
// All endpoints require authentication; the embedding server supplies
// the session model.
package jobsapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"vdce/internal/services"
)

// DefaultLimit and MaxLimit bound GET /v1/jobs pages.
const (
	DefaultLimit = 100
	MaxLimit     = 1000
)

// Source is the job store the API serves — implemented by
// vdce.Environment.
type Source interface {
	// ListJobs returns statuses filtered by owner and state (empty
	// strings match everything) in a stable, deterministic order.
	ListJobs(owner, state string) []services.JobStatus
	// Job returns one job's current status.
	Job(id string) (services.JobStatus, bool)
	// CancelJob cancels a queued or running job; canceling a terminal
	// job is a no-op. It errors only for unknown IDs.
	CancelJob(id string) error
	// Owners returns every known owner's fair-share weight, quota
	// limits, and live usage counters, sorted by owner name. The usage
	// counters must come from the same ground truth ListJobs serves.
	Owners() []services.OwnerStatus
}

// Config wires one mount of the API.
type Config struct {
	// Source supplies and controls the jobs.
	Source Source
	// Authenticate resolves a request to its user; ok=false yields 401.
	// The user name is what OwnerScoped authorization compares against.
	Authenticate func(*http.Request) (user string, ok bool)
	// OwnerScoped restricts the whole surface to the caller's own jobs
	// (the editor mount): listings are forced to owner=<caller>, and
	// GET/DELETE on someone else's job answer 403. Unscoped mounts (the
	// vdce-server administrative surface) expose and control every job.
	OwnerScoped bool
}

// Handler returns the /v1 job-control mux.
func Handler(cfg Config) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs", cfg.auth(cfg.handleList))
	mux.HandleFunc("GET /v1/jobs/{id}", cfg.auth(cfg.handleGet))
	mux.HandleFunc("DELETE /v1/jobs/{id}", cfg.auth(cfg.handleCancel))
	mux.HandleFunc("GET /v1/owners", cfg.auth(cfg.handleOwners))
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (c Config) auth(h func(http.ResponseWriter, *http.Request, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		user, ok := c.Authenticate(r)
		if !ok {
			writeErr(w, http.StatusUnauthorized, errors.New("jobsapi: not authenticated"))
			return
		}
		h(w, r, user)
	}
}

// listResponse is one GET /v1/jobs page.
type listResponse struct {
	Jobs []services.JobStatus `json:"jobs"`
	// Total is the filtered job count before pagination.
	Total  int `json:"total"`
	Offset int `json:"offset"`
	Limit  int `json:"limit"`
}

// queryInt parses a non-negative integer query parameter.
func queryInt(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("jobsapi: %s must be a non-negative integer, got %q", name, raw)
	}
	return v, nil
}

func (c Config) handleList(w http.ResponseWriter, r *http.Request, user string) {
	q := r.URL.Query()
	offset, err := queryInt(r, "offset", 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	limit, err := queryInt(r, "limit", DefaultLimit)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// An explicit limit=0 is the count-only idiom: zero rows plus Total.
	if limit > MaxLimit {
		limit = MaxLimit
	}
	owner := q.Get("owner")
	if c.OwnerScoped {
		// Users see only their own jobs, whatever filter they ask for.
		owner = user
	}
	jobs := c.Source.ListJobs(owner, q.Get("state"))
	total := len(jobs)
	if offset > total {
		offset = total
	}
	end := offset + limit
	if end > total {
		end = total
	}
	writeJSON(w, http.StatusOK, listResponse{
		Jobs: jobs[offset:end], Total: total, Offset: offset, Limit: limit,
	})
}

// handleOwners serves GET /v1/owners: each owner's fair-share weight,
// quota limits, and live usage. On owner-scoped mounts a user sees
// only their own row (possibly empty, if they never submitted).
func (c Config) handleOwners(w http.ResponseWriter, r *http.Request, user string) {
	owners := c.Source.Owners()
	if c.OwnerScoped {
		scoped := owners[:0]
		for _, o := range owners {
			if o.Owner == user {
				scoped = append(scoped, o)
			}
		}
		owners = scoped
	}
	if owners == nil {
		owners = []services.OwnerStatus{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"owners": owners})
}

// fetch resolves one job for the authenticated user, writing the 404 /
// 403 responses itself. On owner-scoped mounts another user's job is
// 403 without naming its owner.
func (c Config) fetch(w http.ResponseWriter, id, user string) (services.JobStatus, bool) {
	s, ok := c.Source.Job(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("jobsapi: no job %q", id))
		return services.JobStatus{}, false
	}
	if c.OwnerScoped && s.Owner != user {
		writeErr(w, http.StatusForbidden,
			fmt.Errorf("jobsapi: job %q belongs to another user", id))
		return services.JobStatus{}, false
	}
	return s, true
}

func (c Config) handleGet(w http.ResponseWriter, r *http.Request, user string) {
	s, ok := c.fetch(w, r.PathValue("id"), user)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"job": s})
}

func (c Config) handleCancel(w http.ResponseWriter, r *http.Request, user string) {
	id := r.PathValue("id")
	s, ok := c.fetch(w, id, user)
	if !ok {
		return
	}
	if err := c.Source.CancelJob(id); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	// Report the post-cancel status; a queued job is already terminal, a
	// running one may still be draining. If retention pruning evicted the
	// job between cancel and re-fetch, answer with the pre-cancel
	// snapshot rather than a zero-value job.
	if cur, found := c.Source.Job(id); found {
		s = cur
	}
	writeJSON(w, http.StatusOK, map[string]any{"job": s})
}
