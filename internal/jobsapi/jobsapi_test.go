package jobsapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"vdce/internal/services"
)

// fakeSource is an in-memory Source over a fixed job set.
type fakeSource struct {
	jobs     []services.JobStatus
	canceled []string
	// updates records UpdateOwner calls (owner name and the update).
	updates map[string]services.OwnerUpdate
}

func (f *fakeSource) ListJobs(owner, state string) []services.JobStatus {
	out := make([]services.JobStatus, 0, len(f.jobs))
	for _, s := range f.jobs {
		if s.Matches(owner, state) {
			out = append(out, s)
		}
	}
	services.SortJobs(out)
	return out
}

// ListJobsAfter is the keyset page over the same canonical order
// ListJobs serves (O(n) is fine for a test fixture).
func (f *fakeSource) ListJobsAfter(owner, state string, after Cursor, limit int) ([]services.JobStatus, bool) {
	all := f.ListJobs(owner, state)
	out := make([]services.JobStatus, 0, limit)
	for _, s := range all {
		if !after.Less(CursorOf(s)) {
			continue
		}
		if len(out) == limit {
			return out, true
		}
		out = append(out, s)
	}
	return out, false
}

func (f *fakeSource) Job(id string) (services.JobStatus, bool) {
	for _, s := range f.jobs {
		if s.ID == id {
			return s, true
		}
	}
	return services.JobStatus{}, false
}

func (f *fakeSource) CancelJob(id string) error {
	if _, ok := f.Job(id); !ok {
		return errors.New("unknown job")
	}
	f.canceled = append(f.canceled, id)
	return nil
}

// Owners derives per-owner usage from the fixed job set, weight 1 for
// everyone, no quota limits.
func (f *fakeSource) Owners() []services.OwnerStatus {
	usage := make(map[string]services.OwnerUsage)
	var names []string
	for _, s := range f.jobs {
		u, ok := usage[s.Owner]
		if !ok {
			names = append(names, s.Owner)
		}
		switch s.State {
		case services.JobStateQueued:
			u.Queued++
		case services.JobStateScheduling, services.JobStateRunning:
			u.InFlight++
		case services.JobStateDone:
			u.Done++
		}
		u.Total++
		usage[s.Owner] = u
	}
	sort.Strings(names)
	out := make([]services.OwnerStatus, 0, len(names))
	for _, n := range names {
		out = append(out, services.OwnerStatus{Owner: n, Weight: 1, Usage: usage[n]})
	}
	return out
}

// UpdateOwner records the change and echoes it back as a status row.
func (f *fakeSource) UpdateOwner(owner string, upd services.OwnerUpdate) (services.OwnerStatus, error) {
	if upd.Empty() {
		return services.OwnerStatus{}, errors.New("empty owner update")
	}
	if f.updates == nil {
		f.updates = make(map[string]services.OwnerUpdate)
	}
	f.updates[owner] = upd
	s := services.OwnerStatus{Owner: owner, Weight: 1}
	if upd.Weight != nil {
		s.Weight = *upd.Weight
		s.WeightPinned = true
	}
	if upd.MaxQueued != nil {
		s.MaxQueued = *upd.MaxQueued
	}
	if upd.MaxInFlight != nil {
		s.MaxInFlight = *upd.MaxInFlight
	}
	if upd.MaxHosts != nil {
		s.MaxHosts = *upd.MaxHosts
	}
	return s, nil
}

func newTestAPI(t *testing.T, n int, ownerScoped bool) (*httptest.Server, *fakeSource) {
	t.Helper()
	src := &fakeSource{}
	t0 := time.Unix(1000, 0)
	for i := 1; i <= n; i++ {
		owner := "ana"
		if i%2 == 0 {
			owner = "bo"
		}
		state := services.JobStateQueued
		if i <= n/2 {
			state = services.JobStateDone
		}
		src.jobs = append(src.jobs, services.JobStatus{
			ID: fmt.Sprintf("job-%d", i), App: "app", Owner: owner,
			State: state, SubmittedAt: t0.Add(time.Duration(i) * time.Second),
		})
	}
	ts := httptest.NewServer(Handler(Config{
		Source: src,
		Authenticate: func(r *http.Request) (string, bool) {
			u := r.Header.Get("X-User")
			return u, u != ""
		},
		OwnerScoped: ownerScoped,
	}))
	t.Cleanup(ts.Close)
	return ts, src
}

func call(t *testing.T, ts *httptest.Server, method, path, user string) (map[string]any, int) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if user != "" {
		req.Header.Set("X-User", user)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return out, resp.StatusCode
}

func TestListPaginationAndFilters(t *testing.T) {
	ts, _ := newTestAPI(t, 10, false)

	out, code := call(t, ts, "GET", "/v1/jobs", "ana")
	if code != http.StatusOK {
		t.Fatalf("list = %d", code)
	}
	if rows := out["jobs"].([]any); len(rows) != 10 {
		t.Fatalf("default list returned %d rows, want 10", len(rows))
	}
	if _, hasTotal := out["total"]; hasTotal {
		t.Fatalf("cursor-mode list carries total (O(board) to compute): %v", out)
	}

	// Cursor pages of 3 tile the set without overlap, in stable order,
	// with next_cursor absent on the final page.
	var seen []string
	cursor := ""
	for page := 0; page < 5 && (page == 0 || cursor != ""); page++ {
		out, _ := call(t, ts, "GET", "/v1/jobs?limit=3&cursor="+cursor, "ana")
		for _, item := range out["jobs"].([]any) {
			seen = append(seen, item.(map[string]any)["id"].(string))
		}
		cursor, _ = out["next_cursor"].(string)
	}
	if cursor != "" {
		t.Fatalf("listing never exhausted; dangling cursor %q", cursor)
	}
	if len(seen) != 10 {
		t.Fatalf("cursor pages covered %d jobs, want 10: %v", len(seen), seen)
	}
	for i, id := range seen {
		if want := fmt.Sprintf("job-%d", i+1); id != want {
			t.Fatalf("cursor page order[%d] = %s, want %s", i, id, want)
		}
	}

	// Deprecated offset pages still tile identically and say so.
	seen = seen[:0]
	for offset := 0; offset < 10; offset += 3 {
		out, _ := call(t, ts, "GET", fmt.Sprintf("/v1/jobs?limit=3&offset=%d", offset), "ana")
		for _, item := range out["jobs"].([]any) {
			seen = append(seen, item.(map[string]any)["id"].(string))
		}
	}
	if len(seen) != 10 {
		t.Fatalf("offset pages covered %d jobs, want 10: %v", len(seen), seen)
	}
	for i, id := range seen {
		if want := fmt.Sprintf("job-%d", i+1); id != want {
			t.Fatalf("offset page order[%d] = %s, want %s", i, id, want)
		}
	}

	// Explicit limit=0 is the count-only idiom: no rows, just Total.
	out, _ = call(t, ts, "GET", "/v1/jobs?limit=0", "ana")
	if rows := out["jobs"].([]any); len(rows) != 0 {
		t.Fatalf("limit=0 returned %d rows, want 0", len(rows))
	}
	if total := out["total"].(float64); total != 10 {
		t.Fatalf("limit=0 total = %v, want 10", total)
	}

	// Offset past the end is an empty page, not an error.
	out, code = call(t, ts, "GET", "/v1/jobs?offset=99", "ana")
	if code != http.StatusOK || len(out["jobs"].([]any)) != 0 {
		t.Fatalf("past-end page = %d %v", code, out)
	}
	// Bad pagination values are rejected.
	if _, code := call(t, ts, "GET", "/v1/jobs?limit=-1", "ana"); code != http.StatusBadRequest {
		t.Fatalf("negative limit = %d, want 400", code)
	}
	if _, code := call(t, ts, "GET", "/v1/jobs?offset=x", "ana"); code != http.StatusBadRequest {
		t.Fatalf("bad offset = %d, want 400", code)
	}
	if _, code := call(t, ts, "GET", fmt.Sprintf("/v1/jobs?limit=%d", MaxLimit+1), "ana"); code != http.StatusBadRequest {
		t.Fatalf("limit over MaxLimit = %d, want 400 (not a silent clamp)", code)
	}
	if _, code := call(t, ts, "GET", "/v1/jobs?cursor=%25%25not-base64", "ana"); code != http.StatusBadRequest {
		t.Fatalf("malformed cursor = %d, want 400", code)
	}
	if _, code := call(t, ts, "GET", "/v1/jobs?cursor=AAA&offset=3", "ana"); code != http.StatusBadRequest {
		t.Fatalf("cursor+offset = %d, want 400", code)
	}

	// Filters pass through to the source.
	out, _ = call(t, ts, "GET", "/v1/jobs?owner=bo&state=queued", "ana")
	for _, item := range out["jobs"].([]any) {
		job := item.(map[string]any)
		if job["owner"] != "bo" || job["state"] != services.JobStateQueued {
			t.Fatalf("filtered listing leaked %v", job)
		}
	}
}

func TestGetAndAuth(t *testing.T) {
	ts, _ := newTestAPI(t, 3, false)
	if _, code := call(t, ts, "GET", "/v1/jobs", ""); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated list = %d, want 401", code)
	}
	out, code := call(t, ts, "GET", "/v1/jobs/job-2", "ana")
	if code != http.StatusOK || out["job"].(map[string]any)["id"] != "job-2" {
		t.Fatalf("get = %d %v", code, out)
	}
	if _, code := call(t, ts, "GET", "/v1/jobs/job-404", "ana"); code != http.StatusNotFound {
		t.Fatalf("get unknown = %d, want 404", code)
	}
}

func TestOwnersEndpoint(t *testing.T) {
	// Unscoped: every owner's row, sorted, with usage matching the jobs.
	ts, src := newTestAPI(t, 10, false)
	if _, code := call(t, ts, "GET", "/v1/owners", ""); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated owners = %d, want 401", code)
	}
	out, code := call(t, ts, "GET", "/v1/owners", "ana")
	if code != http.StatusOK {
		t.Fatalf("owners = %d", code)
	}
	rows, _ := out["owners"].([]any)
	want := src.Owners()
	if len(rows) != len(want) {
		t.Fatalf("owners rows = %d, want %d", len(rows), len(want))
	}
	for i, item := range rows {
		row := item.(map[string]any)
		if row["owner"] != want[i].Owner {
			t.Fatalf("owners[%d] = %v, want %s", i, row["owner"], want[i].Owner)
		}
		usage := row["usage"].(map[string]any)
		if int(usage["queued"].(float64)) != want[i].Usage.Queued ||
			int(usage["total"].(float64)) != want[i].Usage.Total {
			t.Fatalf("owners[%d] usage %v does not match source %+v", i, usage, want[i].Usage)
		}
	}

	// Owner-scoped: only the caller's row, even for users with no jobs.
	ts2, _ := newTestAPI(t, 10, true)
	out, _ = call(t, ts2, "GET", "/v1/owners", "bo")
	rows, _ = out["owners"].([]any)
	if len(rows) != 1 || rows[0].(map[string]any)["owner"] != "bo" {
		t.Fatalf("scoped owners = %v, want just bo", rows)
	}
	out, _ = call(t, ts2, "GET", "/v1/owners", "stranger")
	if rows, _ := out["owners"].([]any); len(rows) != 0 {
		t.Fatalf("scoped owners for a jobless user = %v, want empty", rows)
	}
}

func TestCancelOwnerScoping(t *testing.T) {
	// Unscoped: any authenticated user cancels any job.
	ts, src := newTestAPI(t, 4, false)
	if _, code := call(t, ts, "DELETE", "/v1/jobs/job-1", "bo"); code != http.StatusOK {
		t.Fatalf("unscoped cross-owner cancel = %d, want 200", code)
	}
	if len(src.canceled) != 1 || src.canceled[0] != "job-1" {
		t.Fatalf("canceled = %v", src.canceled)
	}

	// Owner-scoped: the whole surface narrows to the caller's own jobs.
	ts2, src2 := newTestAPI(t, 4, true)
	if _, code := call(t, ts2, "DELETE", "/v1/jobs/job-1", "bo"); code != http.StatusForbidden {
		t.Fatalf("scoped cross-owner cancel = %d, want 403", code)
	}
	if out, code := call(t, ts2, "DELETE", "/v1/jobs/job-1", "bo"); code == http.StatusForbidden {
		if msg, _ := out["error"].(string); strings.Contains(msg, "ana") {
			t.Fatalf("403 leaks the job owner's name: %q", msg)
		}
	}
	if _, code := call(t, ts2, "GET", "/v1/jobs/job-1", "bo"); code != http.StatusForbidden {
		t.Fatalf("scoped cross-owner get = %d, want 403", code)
	}
	// Scoped listings ignore the owner query parameter entirely.
	out, _ := call(t, ts2, "GET", "/v1/jobs?owner=ana", "bo")
	for _, item := range out["jobs"].([]any) {
		if job := item.(map[string]any); job["owner"] != "bo" {
			t.Fatalf("scoped listing leaked %v", job)
		}
	}
	if _, code := call(t, ts2, "DELETE", "/v1/jobs/job-1", "ana"); code != http.StatusOK {
		t.Fatalf("scoped owner cancel = %d, want 200", code)
	}
	if len(src2.canceled) != 1 || src2.canceled[0] != "job-1" {
		t.Fatalf("canceled = %v", src2.canceled)
	}
	if _, code := call(t, ts2, "DELETE", "/v1/jobs/job-404", "ana"); code != http.StatusNotFound {
		t.Fatalf("cancel unknown = %d, want 404", code)
	}
}

// callBody is call with a JSON request body, for the PATCH surface.
func callBody(t *testing.T, ts *httptest.Server, method, path, user, body string) (map[string]any, int) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if user != "" {
		req.Header.Set("X-User", user)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return out, resp.StatusCode
}

func TestOwnerPatch(t *testing.T) {
	ts, src := newTestAPI(t, 2, false)

	out, code := callBody(t, ts, "PATCH", "/v1/owners/ana", "admin",
		`{"weight": 7, "max_queued": 2, "max_hosts": 3}`)
	if code != http.StatusOK {
		t.Fatalf("patch = %d: %v", code, out)
	}
	row, _ := out["owner"].(map[string]any)
	if row["weight"] != float64(7) || row["weight_pinned"] != true {
		t.Fatalf("patched owner = %v, want pinned weight 7", row)
	}
	upd, ok := src.updates["ana"]
	if !ok || upd.Weight == nil || *upd.Weight != 7 ||
		upd.MaxQueued == nil || *upd.MaxQueued != 2 ||
		upd.MaxHosts == nil || *upd.MaxHosts != 3 || upd.MaxInFlight != nil {
		t.Fatalf("source saw update %+v", upd)
	}

	// An empty patch is a bad request, not a silent no-op.
	if _, code := callBody(t, ts, "PATCH", "/v1/owners/ana", "admin", `{}`); code != http.StatusBadRequest {
		t.Fatalf("empty patch = %d, want 400", code)
	}
	// Unknown fields are rejected so typos cannot read as no-ops.
	if _, code := callBody(t, ts, "PATCH", "/v1/owners/ana", "admin",
		`{"wieght": 7}`); code != http.StatusBadRequest {
		t.Fatalf("unknown-field patch = %d, want 400", code)
	}
	// Unauthenticated callers get 401 like the rest of the surface.
	if _, code := callBody(t, ts, "PATCH", "/v1/owners/ana", "",
		`{"weight": 2}`); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated patch = %d, want 401", code)
	}

	// The owner-scoped (editor) mount keeps the admin surface read-only.
	ts2, src2 := newTestAPI(t, 2, true)
	if _, code := callBody(t, ts2, "PATCH", "/v1/owners/ana", "ana",
		`{"weight": 2}`); code != http.StatusForbidden {
		t.Fatalf("owner-scoped patch = %d, want 403", code)
	}
	if len(src2.updates) != 0 {
		t.Fatalf("owner-scoped mount applied updates: %v", src2.updates)
	}
}
