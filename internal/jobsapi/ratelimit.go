package jobsapi

import (
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"vdce/internal/obs"
)

// RateLimitConfig is a per-owner token bucket enforced at the API mux,
// the request-rate sibling of the admission layer's per-owner quotas:
// every authenticated request (list, get, cancel, subscribe) spends one
// token from the caller's bucket, which refills at RequestsPerSecond up
// to Burst. An empty bucket answers 429 with a Retry-After header —
// the same "back off, the server is healthy" vocabulary as a
// queued-jobs quota rejection — while other owners' buckets, and their
// open event streams, are untouched.
type RateLimitConfig struct {
	// RequestsPerSecond is the sustained per-owner refill rate; <= 0
	// disables rate limiting entirely.
	RequestsPerSecond float64
	// Burst is the bucket capacity (momentary excess above the sustained
	// rate); 0 defaults to max(1, ceil(RequestsPerSecond)).
	Burst int
}

// Enabled reports whether the configuration enforces anything.
func (c RateLimitConfig) Enabled() bool { return c.RequestsPerSecond > 0 }

// burst resolves the effective bucket capacity.
func (c RateLimitConfig) burst() float64 {
	if c.Burst > 0 {
		return float64(c.Burst)
	}
	return math.Max(1, math.Ceil(c.RequestsPerSecond))
}

// RateError is the typed 429 payload of a rate-limited request — the
// request-rate counterpart of the pipeline's QuotaError, sharing its
// field vocabulary (owner, resource, limit) so clients handle both the
// same way.
type RateError struct {
	// Owner is the authenticated caller ("" never occurs: auth runs
	// first).
	Owner string `json:"owner"`
	// Resource names the exhausted budget; always "api-requests".
	Resource string `json:"resource"`
	// Limit is the sustained refill rate in requests per second; Burst
	// the bucket capacity.
	Limit float64 `json:"limit"`
	Burst int     `json:"burst"`
	// RetryAfter is how long until one token is available.
	RetryAfter time.Duration `json:"-"`
}

func (e *RateError) Error() string {
	return fmt.Sprintf("jobsapi: owner %s over %s quota (%g req/s, burst %d): retry in %s",
		e.Owner, e.Resource, e.Limit, e.Burst, e.RetryAfter.Round(time.Millisecond))
}

// rateLimiter holds one bucket per owner. Buckets are created on first
// use; the map is bounded by the number of distinct authenticated
// owners, the same population the admission quota ledger carries.
type rateLimiter struct {
	cfg RateLimitConfig
	now func() time.Time
	// throttles is the per-owner 429 counter family
	// (vdce_api_rate_throttled_total). It is the single tally behind both
	// /v1/owners' rate_throttled and /metrics: the registry cell IS the
	// count, so the two surfaces cannot disagree. A private registry
	// backs un-instrumented mounts so allow() never branches.
	throttles *obs.CounterVec

	mu      sync.Mutex
	buckets map[string]*rateBucket
}

type rateBucket struct {
	tokens float64
	last   time.Time
	// throttled is the owner's resolved 429 counter handle, from the
	// limiter's throttles family.
	throttled *obs.Counter
}

func newRateLimiter(cfg RateLimitConfig, now func() time.Time) *rateLimiter {
	if !cfg.Enabled() {
		return nil
	}
	if now == nil {
		now = time.Now
	}
	l := &rateLimiter{cfg: cfg, now: now, buckets: make(map[string]*rateBucket)}
	l.instrument(obs.NewRegistry())
	return l
}

// instrument re-homes the limiter's throttle counters onto reg. Must be
// called before the mount serves traffic (buckets resolve their handle
// at creation).
func (l *rateLimiter) instrument(reg *obs.Registry) {
	l.throttles = reg.Counter("vdce_api_rate_throttled_total",
		"API requests answered 429 by the per-owner token bucket, by owner.", "owner")
}

// allow spends one token from the owner's bucket, reporting nil on
// success and a *RateError (with RetryAfter filled) when the bucket is
// empty.
func (l *rateLimiter) allow(owner string) *RateError {
	burst := l.cfg.burst()
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[owner]
	if !ok {
		b = &rateBucket{tokens: burst, last: now, throttled: l.throttles.With(owner)}
		l.buckets[owner] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(burst, b.tokens+dt*l.cfg.RequestsPerSecond)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return nil
	}
	b.throttled.Inc()
	wait := time.Duration((1 - b.tokens) / l.cfg.RequestsPerSecond * float64(time.Second))
	return &RateError{
		Owner: owner, Resource: "api-requests",
		Limit: l.cfg.RequestsPerSecond, Burst: int(burst), RetryAfter: wait,
	}
}

// throttled returns how many 429s this owner has been served, read
// from the shared registry counter.
func (l *rateLimiter) throttledCount(owner string) uint64 {
	return uint64(l.throttles.Value(owner))
}

// writeRateErr renders a 429: Retry-After plus the structured
// QuotaError-style body.
func writeRateErr(w http.ResponseWriter, e *RateError) {
	secs := int(math.Ceil(e.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprint(secs))
	w.Header().Set("X-RateLimit-Limit", fmt.Sprintf("%g", e.Limit))
	w.Header().Set("X-RateLimit-Burst", fmt.Sprint(e.Burst))
	writeJSON(w, http.StatusTooManyRequests, map[string]any{
		"error":    e.Error(),
		"owner":    e.Owner,
		"resource": e.Resource,
		"limit":    e.Limit,
		"burst":    e.Burst,
	})
}
