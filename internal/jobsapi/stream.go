package jobsapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// The streaming front door. Two endpoints retire status polling:
//
//	GET /v1/jobs/{id}/events   one job's lifecycle as Server-Sent
//	                           Events; the stream ends after the
//	                           terminal event.
//	GET /v1/events             the site-wide firehose (filter: owner,
//	                           state), running until the client
//	                           disconnects.
//
// Every SSE frame carries the broker cursor as its id: field and the
// full StreamEvent as data:, so a dropped connection resumes losslessly
// with Last-Event-ID (or ?after=<cursor>) — the broker replays retained
// events after that cursor. When the requested cursor has already been
// evicted from the bounded replay ring, the stream opens with a
// synthesized "snapshot" event (per-job stream: that job's current
// status) or a "reset" comment (firehose: re-list, then continue), so
// clients converge instead of silently missing transitions.
//
// Subscribers are bounded: a client that cannot drain its delivery
// buffer is evicted — the stream closes and the client reconnects with
// its last cursor — so a stalled reader can never block the job board.

// resumeCursor extracts the client's resume position: the standard SSE
// Last-Event-ID header, or the after query parameter (header wins).
func resumeCursor(r *http.Request) (uint64, error) {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("after")
	}
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("jobsapi: resume cursor must be an unsigned integer, got %q", raw)
	}
	return v, nil
}

// sseWriter emits Server-Sent Events frames with immediate flushing.
type sseWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func newSSEWriter(w http.ResponseWriter) (*sseWriter, bool) {
	f, ok := w.(http.Flusher)
	if !ok {
		return nil, false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	f.Flush()
	return &sseWriter{w: w, f: f}, true
}

// event writes one frame: id is the resume cursor, the event name is
// the StreamEvent type, and data is the JSON-encoded event.
func (s *sseWriter) event(ev StreamEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(s.w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Cursor, ev.Type, data); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}

// comment writes an SSE comment line (ignored by event dispatch,
// visible to diagnostics).
func (s *sseWriter) comment(text string) error {
	if _, err := fmt.Fprintf(s.w, ": %s\n\n", text); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}

// handleJobEvents streams one job's lifecycle. The subscription is
// registered before the initial snapshot is composed, so a transition
// landing in between is delivered, not lost.
func (c Config) handleJobEvents(w http.ResponseWriter, r *http.Request, user string) {
	if c.Events == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("jobsapi: event streaming not enabled"))
		return
	}
	id := r.PathValue("id")
	if _, ok := c.fetch(w, id, user); !ok {
		return
	}
	after, err := resumeCursor(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sub, replay, missed := c.Events.Subscribe(after, c.EventBuffer, func(ev StreamEvent) bool {
		return ev.Job.ID == id
	})
	defer sub.Close()
	out, ok := newSSEWriter(w)
	if !ok {
		writeErr(w, http.StatusInternalServerError, errors.New("jobsapi: response writer cannot stream"))
		return
	}
	// A fresh subscriber (or one that outran the replay ring) starts
	// from the job's current status; a clean resume starts from its
	// replayed backlog. The snapshot is stamped with the cursor of the
	// last event preceding the subscription, so the client's
	// Last-Event-ID stays valid for the next reconnect.
	if after == 0 || missed {
		if s, found := c.Source.Job(id); found {
			snap := StreamEvent{Cursor: c.Events.Cursor(), Type: EventSnapshot, Job: s}
			// Events that raced in between subscribe and snapshot also sit
			// in sub's buffer; dropping the replay avoids duplicating them.
			replay = nil
			if err := out.event(snap); err != nil {
				return
			}
			if s.Terminal() {
				return
			}
		}
	}
	for _, ev := range replay {
		if err := out.event(ev); err != nil {
			return
		}
		if ev.Job.Terminal() {
			return
		}
	}
	c.pump(r, out, sub, func(ev StreamEvent) bool { return ev.Job.Terminal() })
}

// handleFirehose streams every job event matching the owner/state
// filters. Owner-scoped mounts force the filter to the caller.
func (c Config) handleFirehose(w http.ResponseWriter, r *http.Request, user string) {
	if c.Events == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("jobsapi: event streaming not enabled"))
		return
	}
	q := r.URL.Query()
	owner, state := q.Get("owner"), q.Get("state")
	if c.OwnerScoped {
		owner = user
	}
	after, err := resumeCursor(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sub, replay, missed := c.Events.Subscribe(after, c.EventBuffer, func(ev StreamEvent) bool {
		return ev.Job.Matches(owner, state)
	})
	defer sub.Close()
	out, ok := newSSEWriter(w)
	if !ok {
		writeErr(w, http.StatusInternalServerError, errors.New("jobsapi: response writer cannot stream"))
		return
	}
	if missed {
		// The gap cannot be replayed; tell the client to re-list before
		// trusting the stream as complete.
		if err := out.comment("reset: events before this point were evicted; re-list /v1/jobs"); err != nil {
			return
		}
	}
	for _, ev := range replay {
		if err := out.event(ev); err != nil {
			return
		}
	}
	c.pump(r, out, sub, nil)
}

// pump forwards live events until the client disconnects, the
// subscriber is evicted as a slow consumer, or stop reports the stream
// is complete.
func (c Config) pump(r *http.Request, out *sseWriter, sub *Subscriber, stop func(StreamEvent) bool) {
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-sub.C:
			if !ok {
				if sub.Evicted() {
					// Best effort: the client reconnects from its last cursor.
					_ = out.comment("evicted: subscriber fell behind; reconnect with Last-Event-ID")
				}
				return
			}
			if err := out.event(ev); err != nil {
				return
			}
			if stop != nil && stop(ev) {
				return
			}
		}
	}
}
