package jobsapi

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"vdce/internal/services"
)

// streamConn is one open SSE connection under test.
type streamConn struct {
	resp *http.Response
	rd   *bufio.Reader
}

// openStream starts an SSE request; lastEventID zero omits the header.
func openStream(t *testing.T, url, user string, lastEventID uint64) *streamConn {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-User", user)
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastEventID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		t.Fatalf("stream open = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("stream content type = %q", ct)
	}
	return &streamConn{resp: resp, rd: bufio.NewReader(resp.Body)}
}

func (c *streamConn) close() { c.resp.Body.Close() }

// next reads one SSE frame (skipping comments), failing the test on
// timeout via the connection's deadline-free read being wrapped by the
// caller's test timeout.
func (c *streamConn) next(t *testing.T) (StreamEvent, bool) {
	t.Helper()
	var ev StreamEvent
	haveData := false
	for {
		line, err := c.rd.ReadString('\n')
		if err != nil {
			return StreamEvent{}, false
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if haveData {
				return ev, true
			}
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseUint(line[4:], 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q", line)
			}
			if ev.Cursor != 0 && ev.Cursor != id {
				t.Fatalf("id line %d disagrees with pending frame %d", id, ev.Cursor)
			}
		case strings.HasPrefix(line, "event: "):
			// Checked against the decoded body below.
			typ := line[7:]
			defer func() {
				if haveData && ev.Type != typ {
					t.Fatalf("event line %q disagrees with body type %q", typ, ev.Type)
				}
			}()
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[6:]), &ev); err != nil {
				t.Fatalf("bad data line %q: %v", line, err)
			}
			haveData = true
		case strings.HasPrefix(line, ":"):
			// comment
		}
	}
}

// newStreamAPI wires a handler with a live broker over a single job.
func newStreamAPI(t *testing.T) (*httptest.Server, *fakeSource, *Broker) {
	t.Helper()
	src := &fakeSource{jobs: []services.JobStatus{{
		ID: "job-1", App: "app", Owner: "ana",
		State: services.JobStateQueued, SubmittedAt: time.Unix(1000, 0),
	}}}
	broker := NewBroker(64)
	ts := httptest.NewServer(Handler(Config{
		Source: src,
		Events: broker,
		Authenticate: func(r *http.Request) (string, bool) {
			u := r.Header.Get("X-User")
			return u, u != ""
		},
	}))
	t.Cleanup(ts.Close)
	return ts, src, broker
}

// TestJobEventsSubscribeThenPublish pins the subscribe-then-submit
// ordering guarantee: a client that subscribes first sees the initial
// snapshot, then every subsequent transition in publish order, and the
// stream ends by itself at the terminal event.
func TestJobEventsSubscribeThenPublish(t *testing.T) {
	ts, src, broker := newStreamAPI(t)
	conn := openStream(t, ts.URL+"/v1/jobs/job-1/events", "ana", 0)
	defer conn.close()

	snap, ok := conn.next(t)
	if !ok || snap.Type != EventSnapshot || snap.Job.State != services.JobStateQueued {
		t.Fatalf("first frame = %+v ok=%v, want queued snapshot", snap, ok)
	}

	states := []string{services.JobStateScheduling, services.JobStateRunning, services.JobStateDone}
	for _, st := range states {
		s := src.jobs[0]
		s.State = st
		src.jobs[0] = s
		broker.Publish(EventState, s)
	}
	for _, want := range states {
		ev, ok := conn.next(t)
		if !ok {
			t.Fatalf("stream ended before %s", want)
		}
		if ev.Type != EventState || ev.Job.State != want {
			t.Fatalf("frame = %s/%s, want state/%s", ev.Type, ev.Job.State, want)
		}
	}
	// Terminal event ends the stream server-side.
	if ev, ok := conn.next(t); ok {
		t.Fatalf("stream continued past terminal with %+v", ev)
	}
}

// TestJobEventsReconnectResumesWithoutLoss drops the connection mid-
// stream and reconnects with Last-Event-ID: the replayed continuation
// has no gap and no duplicate.
func TestJobEventsReconnectResumesWithoutLoss(t *testing.T) {
	ts, src, broker := newStreamAPI(t)
	conn := openStream(t, ts.URL+"/v1/jobs/job-1/events", "ana", 0)
	if _, ok := conn.next(t); !ok { // snapshot
		t.Fatal("no snapshot")
	}
	publish := func(st string) services.JobStatus {
		s := src.jobs[0]
		s.State = st
		src.jobs[0] = s
		broker.Publish(EventState, s)
		return s
	}
	publish(services.JobStateScheduling)
	first, ok := conn.next(t)
	if !ok || first.Job.State != services.JobStateScheduling {
		t.Fatalf("first live frame = %+v", first)
	}
	// Drop the connection; transitions keep landing while disconnected.
	conn.close()
	publish(services.JobStateRunning)
	publish(services.JobStateDone)

	re := openStream(t, ts.URL+"/v1/jobs/job-1/events", "ana", first.Cursor)
	defer re.close()
	var got []string
	lastCursor := first.Cursor
	for {
		ev, ok := re.next(t)
		if !ok {
			break
		}
		if ev.Cursor <= lastCursor {
			t.Fatalf("resume replayed cursor %d after %d (duplicate)", ev.Cursor, lastCursor)
		}
		if ev.Cursor != lastCursor+1 {
			t.Fatalf("resume skipped from %d to %d (gap)", lastCursor, ev.Cursor)
		}
		lastCursor = ev.Cursor
		got = append(got, ev.Job.State)
	}
	want := []string{services.JobStateRunning, services.JobStateDone}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("resumed states = %v, want %v", got, want)
	}
}

// TestFirehoseFiltersAndScoping: the site-wide stream honors the owner
// filter, and owner-scoped mounts force it to the caller.
func TestFirehoseFiltersAndScoping(t *testing.T) {
	src := &fakeSource{}
	broker := NewBroker(64)
	ts := httptest.NewServer(Handler(Config{
		Source: src,
		Events: broker,
		Authenticate: func(r *http.Request) (string, bool) {
			u := r.Header.Get("X-User")
			return u, u != ""
		},
		OwnerScoped: true,
	}))
	t.Cleanup(ts.Close)

	// bo asks for ana's events; the scoped mount pins the filter to bo.
	conn := openStream(t, ts.URL+"/v1/events?owner=ana", "bo", 0)
	defer conn.close()
	broker.Publish(EventState, services.JobStatus{ID: "job-1", Owner: "ana", State: services.JobStateQueued})
	broker.Publish(EventState, services.JobStatus{ID: "job-2", Owner: "bo", State: services.JobStateQueued})
	ev, ok := conn.next(t)
	if !ok || ev.Job.Owner != "bo" {
		t.Fatalf("scoped firehose delivered %+v, want bo's event only", ev)
	}
}

// TestPerOwnerRateLimit pins the 429 contract: an owner over its token
// bucket is throttled with Retry-After while other owners proceed, and
// /v1/owners surfaces the budget and the throttle count.
func TestPerOwnerRateLimit(t *testing.T) {
	src := &fakeSource{jobs: []services.JobStatus{{
		ID: "job-1", Owner: "ana", State: services.JobStateDone, SubmittedAt: time.Unix(1000, 0),
	}}}
	var clockMu sync.Mutex
	now := time.Unix(5000, 0)
	advance := func(d time.Duration) {
		clockMu.Lock()
		now = now.Add(d)
		clockMu.Unlock()
	}
	ts := httptest.NewServer(Handler(Config{
		Source: src,
		Authenticate: func(r *http.Request) (string, bool) {
			u := r.Header.Get("X-User")
			return u, u != ""
		},
		RateLimit: RateLimitConfig{RequestsPerSecond: 1, Burst: 2},
		Now: func() time.Time {
			clockMu.Lock()
			defer clockMu.Unlock()
			return now
		},
	}))
	t.Cleanup(ts.Close)

	get := func(user string) (int, http.Header, map[string]any) {
		req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs", nil)
		req.Header.Set("X-User", user)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, resp.Header, body
	}

	// Burst of 2, then the bucket is empty.
	for i := 0; i < 2; i++ {
		if code, _, _ := get("ana"); code != http.StatusOK {
			t.Fatalf("request %d = %d, want 200", i, code)
		}
	}
	code, hdr, body := get("ana")
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-budget request = %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After")
	}
	if body["resource"] != "api-requests" || body["owner"] != "ana" {
		t.Fatalf("429 body = %v, want QuotaError-style fields", body)
	}
	// Another owner's bucket is untouched.
	if code, _, _ := get("bo"); code != http.StatusOK {
		t.Fatalf("other owner = %d, want 200", code)
	}
	// Refill restores service.
	advance(3 * time.Second)
	if code, _, _ := get("ana"); code != http.StatusOK {
		t.Fatalf("after refill = %d, want 200", code)
	}
	// /v1/owners reports the budget and the throttle count.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/owners", nil)
	req.Header.Set("X-User", "ana")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Owners []services.OwnerStatus `json:"owners"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range out.Owners {
		if o.Owner == "ana" {
			found = true
			if o.RateRPS != 1 || o.RateBurst != 2 || o.RateThrottled != 1 {
				t.Fatalf("ana's rate row = rps %g burst %d throttled %d, want 1/2/1",
					o.RateRPS, o.RateBurst, o.RateThrottled)
			}
		}
	}
	if !found {
		t.Fatal("owners listing has no row for ana")
	}
}

// sharedOwnersSource returns the same backing slice from every Owners
// call, the shape that made the owners[:0] reslice bug observable.
type sharedOwnersSource struct {
	*fakeSource
	owners []services.OwnerStatus
}

func (s *sharedOwnersSource) Owners() []services.OwnerStatus { return s.owners }

// TestScopedOwnersDoesNotMutateSourceSlice is the regression test for
// the handleOwners filter: filtering the caller's row out of the
// source's listing must not compact rows in place over the source's
// backing array.
func TestScopedOwnersDoesNotMutateSourceSlice(t *testing.T) {
	src := &sharedOwnersSource{
		fakeSource: &fakeSource{},
		owners: []services.OwnerStatus{
			{Owner: "ana", Weight: 1},
			{Owner: "bo", Weight: 2},
			{Owner: "cy", Weight: 3},
		},
	}
	ts := httptest.NewServer(Handler(Config{
		Source: src,
		Authenticate: func(r *http.Request) (string, bool) {
			u := r.Header.Get("X-User")
			return u, u != ""
		},
		OwnerScoped: true,
	}))
	t.Cleanup(ts.Close)

	// bo's scoped view is just bo...
	req, _ := http.NewRequest("GET", ts.URL+"/v1/owners", nil)
	req.Header.Set("X-User", "bo")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Owners []services.OwnerStatus `json:"owners"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(out.Owners) != 1 || out.Owners[0].Owner != "bo" {
		t.Fatalf("scoped owners = %+v, want just bo", out.Owners)
	}
	// ...and the source's slice is untouched (the old owners[:0] filter
	// compacted bo into ana's slot here).
	for i, want := range []string{"ana", "bo", "cy"} {
		if src.owners[i].Owner != want {
			t.Fatalf("source owners[%d] = %q after scoped request, want %q (backing array mutated)",
				i, src.owners[i].Owner, want)
		}
	}
}

// TestJobEventsRequiresBrokerAnd404s: streaming without a broker is 503,
// unknown jobs are 404 before the stream opens.
func TestJobEventsRequiresBrokerAnd404s(t *testing.T) {
	ts, _ := newTestAPI(t, 2, false)
	if _, code := call(t, ts, "GET", "/v1/jobs/job-1/events", "ana"); code != http.StatusServiceUnavailable {
		t.Fatalf("events without broker = %d, want 503", code)
	}
	tsb, _, _ := newStreamAPI(t)
	if _, code := call(t, tsb, "GET", "/v1/jobs/job-404/events", "ana"); code != http.StatusNotFound {
		t.Fatalf("events for unknown job = %d, want 404", code)
	}
	if _, code := call(t, tsb, "GET", fmt.Sprintf("/v1/jobs/job-1/events?after=%s", "x"), "ana"); code != http.StatusBadRequest {
		t.Fatalf("bad after cursor = %d, want 400", code)
	}
}
