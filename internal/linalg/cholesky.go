package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned when Cholesky hits a non-positive pivot: the
// matrix is not symmetric positive definite (within tolerance).
var ErrNotSPD = errors.New("linalg: matrix is not symmetric positive definite")

// Cholesky computes the lower-triangular L with A = L*Lᵀ for a
// symmetric positive-definite A. a is not modified. Asymmetry beyond a
// small tolerance is rejected.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	// Symmetry check with a scale-aware tolerance.
	scale := a.FrobeniusNorm()
	if scale == 0 {
		return nil, ErrNotSPD
	}
	tol := 1e-10 * scale
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > tol {
				return nil, fmt.Errorf("%w: asymmetric at (%d,%d)", ErrNotSPD, i, j)
			}
		}
	}
	l := New(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 {
			return nil, fmt.Errorf("%w: pivot %d = %g", ErrNotSPD, j, d)
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return l, nil
}

// SolveSPD solves A*x = b for symmetric positive-definite A via
// Cholesky: L*y = b then Lᵀ*x = y.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != len(b) {
		return nil, fmt.Errorf("linalg: SolveSPD shape mismatch A=%dx%d len(b)=%d", a.Rows, a.Cols, len(b))
	}
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	y, err := ForwardSub(l, b)
	if err != nil {
		return nil, err
	}
	return BackSub(l.Transpose(), y)
}

// RandomSPD returns a random symmetric positive-definite matrix:
// B*Bᵀ + n*I for random B.
func RandomSPD(n int, seed int64) *Matrix {
	b := RandomMatrix(n, n, seed)
	bt := b.Transpose()
	m, err := MatMul(b, bt)
	if err != nil {
		panic(err) // shapes are square by construction
	}
	for i := 0; i < n; i++ {
		m.Set(i, i, m.At(i, i)+float64(n))
	}
	return m
}
