package linalg

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskyReconstructs(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 40} {
		a := RandomSPD(n, int64(n))
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		prod, err := MatMul(l, l.Transpose())
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxAbsDiff(a, prod); d > 1e-8*float64(n) {
			t.Fatalf("n=%d: ||A - LLt|| = %g", n, d)
		}
		// L is lower triangular with positive diagonal.
		for i := 0; i < n; i++ {
			if l.At(i, i) <= 0 {
				t.Fatalf("diagonal %d = %g", i, l.At(i, i))
			}
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("L[%d][%d] = %g above diagonal", i, j, l.At(i, j))
				}
			}
		}
	}
}

func TestCholeskyRejections(t *testing.T) {
	if _, err := Cholesky(New(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, err := Cholesky(New(3, 3)); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("zero matrix: %v", err)
	}
	// Asymmetric.
	asym, _ := FromRows([][]float64{{2, 1}, {0, 2}})
	if _, err := Cholesky(asym); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("asymmetric: %v", err)
	}
	// Symmetric but indefinite.
	indef, _ := FromRows([][]float64{{1, 2}, {2, 1}})
	if _, err := Cholesky(indef); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("indefinite: %v", err)
	}
}

func TestSolveSPD(t *testing.T) {
	a := RandomSPD(24, 9)
	b := RandomVector(24, 10)
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Residual(a, x, b)
	if err != nil {
		t.Fatal(err)
	}
	if r > 1e-8 {
		t.Fatalf("residual %g", r)
	}
	if _, err := SolveSPD(a, []float64{1}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

// Property: SolveSPD and the LU-based Solve agree on SPD systems.
func TestSolversAgreeProperty(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw)%16 + 1
		a := RandomSPD(n, seed)
		b := RandomVector(n, seed^0xbeef)
		x1, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		x2, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x1 {
			d := x1[i] - x2[i]
			if d < 0 {
				d = -d
			}
			if d > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(45))}); err != nil {
		t.Fatal(err)
	}
}
