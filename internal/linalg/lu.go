package linalg

import (
	"errors"
	"fmt"
	"math"
)

// LU holds the result of an LU decomposition with partial pivoting:
// P*A = L*U where L is unit lower triangular, U is upper triangular, and
// P is the row permutation encoded by Perm (row i of P*A is row Perm[i]
// of A). Swaps counts row exchanges (used for the determinant sign).
type LU struct {
	L, U  *Matrix
	Perm  []int
	Swaps int
}

// ErrSingular is returned when a pivot (or the whole matrix) is singular
// to working precision.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// Decompose computes the LU decomposition of square matrix a with
// partial (row) pivoting. a is not modified.
func Decompose(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Decompose needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	u := a.Clone()
	l := Identity(n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	swaps := 0
	for k := 0; k < n; k++ {
		// Find pivot: largest |u[i][k]| for i >= k.
		p, best := k, math.Abs(u.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(u.At(i, k)); v > best {
				p, best = i, v
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if p != k {
			u.swapRows(p, k)
			perm[p], perm[k] = perm[k], perm[p]
			swaps++
			// Swap the already-computed multipliers in L (columns < k).
			for j := 0; j < k; j++ {
				lp, lk := l.At(p, j), l.At(k, j)
				l.Set(p, j, lk)
				l.Set(k, j, lp)
			}
		}
		pivot := u.At(k, k)
		for i := k + 1; i < n; i++ {
			m := u.At(i, k) / pivot
			l.Set(i, k, m)
			u.Set(i, k, 0)
			for j := k + 1; j < n; j++ {
				u.Set(i, j, u.At(i, j)-m*u.At(k, j))
			}
		}
	}
	return &LU{L: l, U: u, Perm: perm, Swaps: swaps}, nil
}

// PermuteRows returns P*m for the decomposition's permutation: output row
// i is input row Perm[i].
func (lu *LU) PermuteRows(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, src := range lu.Perm {
		copy(out.Data[i*m.Cols:(i+1)*m.Cols], m.Data[src*m.Cols:(src+1)*m.Cols])
	}
	return out
}

// Det returns the determinant of the decomposed matrix.
func (lu *LU) Det() float64 {
	d := 1.0
	for i := 0; i < lu.U.Rows; i++ {
		d *= lu.U.At(i, i)
	}
	if lu.Swaps%2 == 1 {
		d = -d
	}
	return d
}

// ForwardSub solves L*y = b for unit lower-triangular L.
func ForwardSub(l *Matrix, b []float64) ([]float64, error) {
	n := l.Rows
	if l.Cols != n || len(b) != n {
		return nil, fmt.Errorf("linalg: ForwardSub shape mismatch L=%dx%d len(b)=%d", l.Rows, l.Cols, len(b))
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= l.At(i, j) * y[j]
		}
		// L is unit lower triangular: diagonal is 1, but divide anyway to
		// support general lower-triangular systems.
		d := l.At(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		y[i] = s / d
	}
	return y, nil
}

// BackSub solves U*x = y for upper-triangular U.
func BackSub(u *Matrix, y []float64) ([]float64, error) {
	n := u.Rows
	if u.Cols != n || len(y) != n {
		return nil, fmt.Errorf("linalg: BackSub shape mismatch U=%dx%d len(y)=%d", u.Rows, u.Cols, len(y))
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= u.At(i, j) * x[j]
		}
		d := u.At(i, i)
		if math.Abs(d) < 1e-300 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// Solve solves A*x = b using LU decomposition with partial pivoting.
// This is exactly the pipeline of the paper's Linear Equation Solver
// application: LU decomposition, forward substitution, back substitution.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != len(b) {
		return nil, fmt.Errorf("linalg: Solve shape mismatch A=%dx%d len(b)=%d", a.Rows, a.Cols, len(b))
	}
	lu, err := Decompose(a)
	if err != nil {
		return nil, err
	}
	pb := make([]float64, len(b))
	for i, src := range lu.Perm {
		pb[i] = b[src]
	}
	y, err := ForwardSub(lu.L, pb)
	if err != nil {
		return nil, err
	}
	return BackSub(lu.U, y)
}

// MatVec returns A*x.
func MatVec(a *Matrix, x []float64) ([]float64, error) {
	if a.Cols != len(x) {
		return nil, fmt.Errorf("linalg: MatVec shape mismatch A=%dx%d len(x)=%d", a.Rows, a.Cols, len(x))
	}
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		var s float64
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y, nil
}

// VecNormInf returns the infinity norm of v.
func VecNormInf(v []float64) float64 {
	var max float64
	for _, x := range v {
		if a := math.Abs(x); a > max {
			max = a
		}
	}
	return max
}

// Residual returns ||A*x - b||_inf, a convenience for solver validation.
func Residual(a *Matrix, x, b []float64) (float64, error) {
	ax, err := MatVec(a, x)
	if err != nil {
		return 0, err
	}
	if len(ax) != len(b) {
		return 0, fmt.Errorf("linalg: Residual length mismatch %d vs %d", len(ax), len(b))
	}
	var max float64
	for i := range ax {
		if d := math.Abs(ax[i] - b[i]); d > max {
			max = d
		}
	}
	return max, nil
}
