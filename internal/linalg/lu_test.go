package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDecomposeReconstructs(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16, 33} {
		a := RandomDiagonallyDominant(n, int64(n))
		lu, err := Decompose(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		pa := lu.PermuteRows(a)
		prod, err := MatMul(lu.L, lu.U)
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxAbsDiff(pa, prod); d > 1e-9 {
			t.Fatalf("n=%d: ||PA - LU|| = %g", n, d)
		}
	}
}

func TestDecomposeShapes(t *testing.T) {
	if _, err := Decompose(New(2, 3)); err == nil {
		t.Fatal("expected non-square error")
	}
}

func TestDecomposeSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}}) // rank 1
	if _, err := Decompose(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("got %v, want ErrSingular", err)
	}
	z := New(3, 3)
	if _, err := Decompose(z); !errors.Is(err, ErrSingular) {
		t.Fatalf("zero matrix: got %v, want ErrSingular", err)
	}
}

func TestLUStructure(t *testing.T) {
	a := RandomDiagonallyDominant(12, 7)
	lu, err := Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if lu.L.At(i, i) != 1 {
			t.Fatalf("L diagonal [%d] = %g, want 1", i, lu.L.At(i, i))
		}
		for j := i + 1; j < 12; j++ {
			if lu.L.At(i, j) != 0 {
				t.Fatalf("L[%d][%d] = %g above diagonal", i, j, lu.L.At(i, j))
			}
			if lu.U.At(j, i) != 0 {
				t.Fatalf("U[%d][%d] = %g below diagonal", j, i, lu.U.At(j, i))
			}
		}
	}
	// Perm must be a permutation of 0..n-1.
	seen := make(map[int]bool)
	for _, p := range lu.Perm {
		if p < 0 || p >= 12 || seen[p] {
			t.Fatalf("Perm not a permutation: %v", lu.Perm)
		}
		seen[p] = true
	}
}

func TestDet(t *testing.T) {
	a, _ := FromRows([][]float64{{2, 0}, {0, 3}})
	lu, err := Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := lu.Det(); math.Abs(d-6) > 1e-12 {
		t.Fatalf("Det = %g, want 6", d)
	}
	// A matrix that needs a pivot swap: det should keep its sign right.
	b, _ := FromRows([][]float64{{0, 1}, {1, 0}})
	lub, err := Decompose(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := lub.Det(); math.Abs(d+1) > 1e-12 {
		t.Fatalf("Det(antidiag) = %g, want -1", d)
	}
}

func TestForwardBackSub(t *testing.T) {
	l, _ := FromRows([][]float64{{1, 0}, {0.5, 1}})
	y, err := ForwardSub(l, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-2) > 1e-12 || math.Abs(y[1]-2) > 1e-12 {
		t.Fatalf("ForwardSub wrong: %v", y)
	}
	u, _ := FromRows([][]float64{{2, 1}, {0, 4}})
	x, err := BackSub(u, []float64{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[1]-2) > 1e-12 || math.Abs(x[0]-1) > 1e-12 {
		t.Fatalf("BackSub wrong: %v", x)
	}
	if _, err := ForwardSub(l, []float64{1}); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := BackSub(u, []float64{1}); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := BackSub(New(2, 2), []float64{1, 1}); !errors.Is(err, ErrSingular) {
		t.Fatalf("zero U: got %v", err)
	}
}

func TestSolveAgainstResidual(t *testing.T) {
	for _, n := range []int{1, 4, 16, 64} {
		a := RandomDiagonallyDominant(n, int64(100+n))
		b := RandomVector(n, int64(200+n))
		x, err := Solve(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		r, err := Residual(a, x, b)
		if err != nil {
			t.Fatal(err)
		}
		if r > 1e-8 {
			t.Fatalf("n=%d: residual %g too large", n, r)
		}
	}
	if _, err := Solve(New(2, 2), []float64{1}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestMatVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	y, err := MatVec(a, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MatVec wrong: %v", y)
	}
	if _, err := MatVec(a, []float64{1}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestVecNormInf(t *testing.T) {
	if VecNormInf([]float64{-3, 2}) != 3 {
		t.Fatal("VecNormInf wrong")
	}
	if VecNormInf(nil) != 0 {
		t.Fatal("VecNormInf(nil) should be 0")
	}
}

// Property: for random diagonally-dominant systems, Solve produces a
// solution whose residual is tiny (LU with partial pivoting is stable on
// this class).
func TestSolveProperty(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw)%24 + 1
		a := RandomDiagonallyDominant(n, seed)
		b := RandomVector(n, seed^0x5eed)
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		r, err := Residual(a, x, b)
		return err == nil && r < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Fatal(err)
	}
}

// Property: PA == LU for every decomposable random matrix.
func TestDecomposeProperty(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw)%20 + 1
		a := RandomDiagonallyDominant(n, seed)
		lu, err := Decompose(a)
		if err != nil {
			return false
		}
		prod, err := MatMul(lu.L, lu.U)
		if err != nil {
			return false
		}
		return MaxAbsDiff(lu.PermuteRows(a), prod) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(43))}); err != nil {
		t.Fatal(err)
	}
}
