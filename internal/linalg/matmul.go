package linalg

import (
	"fmt"
	"runtime"
	"sync"
)

// MatMul returns a*b using the straightforward triple loop with an
// ikj ordering that keeps the inner loop streaming over contiguous rows.
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("linalg: MatMul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	c := New(a.Rows, b.Cols)
	mulRange(a, b, c, 0, a.Rows)
	return c, nil
}

// mulRange computes rows [lo,hi) of c = a*b.
func mulRange(a, b, c *Matrix, lo, hi int) {
	n, p := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		crow := c.Data[i*p : (i+1)*p]
		arow := a.Data[i*n : (i+1)*n]
		for k := 0; k < n; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Data[k*p : (k+1)*p]
			for j := range brow {
				crow[j] += aik * brow[j]
			}
		}
	}
}

// MatMulBlocked returns a*b using cache blocking with the given block
// size. A non-positive block size selects a reasonable default.
func MatMulBlocked(a, b *Matrix, block int) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("linalg: MatMulBlocked dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if block <= 0 {
		block = 64
	}
	m, n, p := a.Rows, a.Cols, b.Cols
	c := New(m, p)
	for ii := 0; ii < m; ii += block {
		iMax := min(ii+block, m)
		for kk := 0; kk < n; kk += block {
			kMax := min(kk+block, n)
			for jj := 0; jj < p; jj += block {
				jMax := min(jj+block, p)
				for i := ii; i < iMax; i++ {
					crow := c.Data[i*p : (i+1)*p]
					arow := a.Data[i*n : (i+1)*n]
					for k := kk; k < kMax; k++ {
						aik := arow[k]
						if aik == 0 {
							continue
						}
						brow := b.Data[k*p : (k+1)*p]
						for j := jj; j < jMax; j++ {
							crow[j] += aik * brow[j]
						}
					}
				}
			}
		}
	}
	return c, nil
}

// MatMulParallel returns a*b computed by nWorkers goroutines splitting
// the rows of a. nWorkers <= 0 selects GOMAXPROCS. This is the "parallel
// computation mode" implementation used when an AFG task requests more
// than one node.
func MatMulParallel(a, b *Matrix, nWorkers int) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("linalg: MatMulParallel dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	if nWorkers > a.Rows {
		nWorkers = a.Rows
	}
	c := New(a.Rows, b.Cols)
	var wg sync.WaitGroup
	rowsPer := (a.Rows + nWorkers - 1) / nWorkers
	for w := 0; w < nWorkers; w++ {
		lo := w * rowsPer
		hi := min(lo+rowsPer, a.Rows)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulRange(a, b, c, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return c, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
