package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulSmall(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{{19, 22}, {43, 50}})
	if !Equalish(c, want, 1e-12) {
		t.Fatalf("MatMul wrong: %v", c.Data)
	}
}

func TestMatMulIdentity(t *testing.T) {
	a := RandomMatrix(6, 6, 9)
	c, err := MatMul(a, Identity(6))
	if err != nil {
		t.Fatal(err)
	}
	if !Equalish(a, c, 1e-12) {
		t.Fatal("A*I != A")
	}
}

func TestMatMulShapeError(t *testing.T) {
	if _, err := MatMul(New(2, 3), New(2, 3)); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := MatMulBlocked(New(2, 3), New(2, 3), 8); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := MatMulParallel(New(2, 3), New(2, 3), 2); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestMatMulVariantsAgree(t *testing.T) {
	a := RandomMatrix(37, 53, 11)
	b := RandomMatrix(53, 29, 12)
	ref, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, block := range []int{0, 1, 8, 64, 1000} {
		got, err := MatMulBlocked(a, b, block)
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxAbsDiff(ref, got); d > 1e-10 {
			t.Fatalf("blocked(%d) differs by %g", block, d)
		}
	}
	for _, workers := range []int{-1, 1, 2, 4, 100} {
		got, err := MatMulParallel(a, b, workers)
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxAbsDiff(ref, got); d > 1e-10 {
			t.Fatalf("parallel(%d) differs by %g", workers, d)
		}
	}
}

// Property: sequential, blocked, and parallel matmul agree on random
// shapes — the invariant the runtime relies on when it swaps computation
// modes for a task.
func TestMatMulAgreementProperty(t *testing.T) {
	f := func(seed int64, mRaw, nRaw, pRaw uint8) bool {
		m := int(mRaw)%16 + 1
		n := int(nRaw)%16 + 1
		p := int(pRaw)%16 + 1
		a := RandomMatrix(m, n, seed)
		b := RandomMatrix(n, p, seed^1)
		ref, err := MatMul(a, b)
		if err != nil {
			return false
		}
		bl, err := MatMulBlocked(a, b, 4)
		if err != nil {
			return false
		}
		pl, err := MatMulParallel(a, b, 3)
		if err != nil {
			return false
		}
		return MaxAbsDiff(ref, bl) < 1e-10 && MaxAbsDiff(ref, pl) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(44))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	x := RandomMatrix(128, 128, 1)
	y := RandomMatrix(128, 128, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatMul(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMulBlocked128(b *testing.B) {
	x := RandomMatrix(128, 128, 1)
	y := RandomMatrix(128, 128, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatMulBlocked(x, y, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMulParallel128(b *testing.B) {
	x := RandomMatrix(128, 128, 1)
	y := RandomMatrix(128, 128, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatMulParallel(x, y, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLUDecompose128(b *testing.B) {
	a := RandomDiagonallyDominant(128, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(a); err != nil {
			b.Fatal(err)
		}
	}
}
