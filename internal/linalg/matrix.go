// Package linalg provides the dense linear-algebra kernels that back the
// VDCE matrix-algebra task library: LU decomposition with partial
// pivoting, triangular solves, and sequential, blocked, and parallel
// matrix multiplication.
//
// The kernels are deliberately self-contained (stdlib only) and
// deterministic so that the task-performance database measurements taken
// by the runtime are reproducible across runs.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zero matrix with the given dimensions.
// It panics if either dimension is not positive.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("linalg: FromRows needs at least one non-empty row")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			return nil, fmt.Errorf("linalg: row %d has %d entries, want %d", i, len(r), m.Cols)
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Add returns a+b. Dimensions must match.
func Add(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("linalg: Add dimension mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	c := New(a.Rows, a.Cols)
	for i := range a.Data {
		c.Data[i] = a.Data[i] + b.Data[i]
	}
	return c, nil
}

// Sub returns a-b. Dimensions must match.
func Sub(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("linalg: Sub dimension mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	c := New(a.Rows, a.Cols)
	for i := range a.Data {
		c.Data[i] = a.Data[i] - b.Data[i]
	}
	return c, nil
}

// Scale returns s*m as a new matrix.
func Scale(s float64, m *Matrix) *Matrix {
	c := New(m.Rows, m.Cols)
	for i := range m.Data {
		c.Data[i] = s * m.Data[i]
	}
	return c
}

// Equalish reports whether a and b have the same shape and all entries
// within tol of one another.
func Equalish(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// a and b, or +Inf if shapes differ.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	var max float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > max {
			max = d
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// String renders small matrices for debugging; large ones are summarized.
func (m *Matrix) String() string {
	if m.Rows > 8 || m.Cols > 8 {
		return fmt.Sprintf("Matrix(%dx%d, |·|F=%.4g)", m.Rows, m.Cols, m.FrobeniusNorm())
	}
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteByte('[')
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%8.4g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// swapRows exchanges rows i and j in place.
func (m *Matrix) swapRows(i, j int) {
	if i == j {
		return
	}
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}
