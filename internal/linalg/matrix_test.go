package linalg

import (
	"math"
	"testing"
)

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("wrong entries: %v", m.Data)
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected ragged-row error")
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(4)[%d][%d] = %g", i, j, id.At(i, j))
			}
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{{6, 8}, {10, 12}})
	if !Equalish(sum, want, 0) {
		t.Fatalf("Add wrong: %v", sum.Data)
	}
	diff, err := Sub(sum, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equalish(diff, a, 0) {
		t.Fatalf("Sub wrong: %v", diff.Data)
	}
	sc := Scale(2, a)
	if sc.At(1, 1) != 8 {
		t.Fatalf("Scale wrong: %v", sc.Data)
	}
	if _, err := Add(a, New(3, 3)); err == nil {
		t.Fatal("expected dimension error from Add")
	}
	if _, err := Sub(a, New(3, 3)); err == nil {
		t.Fatal("expected dimension error from Sub")
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := RandomMatrix(5, 7, 1)
	tt := m.Transpose().Transpose()
	if !Equalish(m, tt, 0) {
		t.Fatal("transpose is not an involution")
	}
	tr := m.Transpose()
	if tr.Rows != 7 || tr.Cols != 5 {
		t.Fatalf("transpose dims %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(3, 2) != m.At(2, 3) {
		t.Fatal("transpose entry mismatch")
	}
}

func TestRowColClone(t *testing.T) {
	m := RandomMatrix(4, 3, 2)
	r := m.Row(2)
	c := m.Col(1)
	if len(r) != 3 || len(c) != 4 {
		t.Fatalf("row/col lengths %d %d", len(r), len(c))
	}
	if r[1] != m.At(2, 1) || c[3] != m.At(3, 1) {
		t.Fatal("row/col entries wrong")
	}
	cl := m.Clone()
	cl.Set(0, 0, 42)
	if m.At(0, 0) == 42 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestEqualishAndMaxAbsDiff(t *testing.T) {
	a := RandomMatrix(3, 3, 3)
	b := a.Clone()
	b.Set(1, 1, b.At(1, 1)+0.5)
	if Equalish(a, b, 0.1) {
		t.Fatal("Equalish missed a 0.5 difference")
	}
	if !Equalish(a, b, 0.6) {
		t.Fatal("Equalish rejected within tolerance")
	}
	if d := MaxAbsDiff(a, b); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("MaxAbsDiff = %g, want 0.5", d)
	}
	if !math.IsInf(MaxAbsDiff(a, New(2, 2)), 1) {
		t.Fatal("MaxAbsDiff on shape mismatch should be +Inf")
	}
}

func TestStringForms(t *testing.T) {
	small := Identity(2)
	if s := small.String(); len(s) == 0 {
		t.Fatal("empty String for small matrix")
	}
	big := New(20, 20)
	if s := big.String(); len(s) == 0 || s[0] != 'M' {
		t.Fatalf("summary String wrong: %q", s)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m, _ := FromRows([][]float64{{3, 4}})
	if n := m.FrobeniusNorm(); math.Abs(n-5) > 1e-12 {
		t.Fatalf("FrobeniusNorm = %g, want 5", n)
	}
}
