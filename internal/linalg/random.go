package linalg

import "math/rand"

// RandomMatrix returns a rows x cols matrix with entries uniform in
// [-1, 1), generated from the given seed so tests and benchmarks are
// reproducible.
func RandomMatrix(rows, cols int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = 2*rng.Float64() - 1
	}
	return m
}

// RandomDiagonallyDominant returns an n x n matrix that is strictly
// diagonally dominant (hence nonsingular and LU-stable), suitable for
// exercising the Linear Equation Solver pipeline.
func RandomDiagonallyDominant(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := New(n, n)
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := 2*rng.Float64() - 1
			m.Set(i, j, v)
			if v < 0 {
				rowSum -= v
			} else {
				rowSum += v
			}
		}
		m.Set(i, i, rowSum+1+rng.Float64())
	}
	return m
}

// RandomVector returns an n-vector with entries uniform in [-1, 1).
func RandomVector(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*rng.Float64() - 1
	}
	return v
}
