// Package monitor implements the Monitor daemon of the paper's Resource
// Controller: one daemon per VDCE resource, periodically measuring
// up-to-date resource parameters (CPU load and memory availability) and
// delivering them to the Group Manager.
package monitor

import (
	"context"
	"sync/atomic"
	"time"

	"vdce/internal/repository"
	"vdce/internal/testbed"
)

// Sink receives each measurement a daemon takes.
type Sink func(host string, s repository.WorkloadSample)

// Daemon periodically samples one host.
type Daemon struct {
	Host   *testbed.Host
	Period time.Duration
	// samples counts measurements taken (for overhead accounting in E5).
	samples atomic.Int64
}

// NewDaemon returns a daemon for the host with the given period
// (defaulting to one second, the era-typical monitor cadence).
func NewDaemon(h *testbed.Host, period time.Duration) *Daemon {
	if period <= 0 {
		period = time.Second
	}
	return &Daemon{Host: h, Period: period}
}

// Samples returns how many measurements the daemon has taken.
func (d *Daemon) Samples() int64 { return d.samples.Load() }

// MeasureOnce takes a single measurement immediately and delivers it,
// reporting whether a sample went out. Unreachable hosts produce
// nothing — the daemon dies with its machine, and a partitioned
// machine's reports never arrive. That silence is the heartbeat signal
// the failure detector (internal/detect) consumes.
func (d *Daemon) MeasureOnce(now time.Time, sink Sink) bool {
	if !d.Host.Reachable() {
		return false
	}
	s := d.Host.Sample(now)
	d.samples.Add(1)
	sink(d.Host.Name, s)
	return true
}

// Run measures every Period until ctx is done. It delivers measurements
// synchronously through sink; a slow sink backpressures the daemon, as a
// slow Group Manager link would.
func (d *Daemon) Run(ctx context.Context, sink Sink) {
	t := time.NewTicker(d.Period)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			d.MeasureOnce(now, sink)
		}
	}
}
