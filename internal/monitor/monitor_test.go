package monitor

import (
	"context"
	"sync"
	"testing"
	"time"

	"vdce/internal/repository"
	"vdce/internal/testbed"
)

func testHost(t *testing.T) *testbed.Host {
	t.Helper()
	tb, err := testbed.Build(testbed.Config{Sites: 1, HostsPerGroup: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return tb.Sites[0].Hosts[0]
}

func TestMeasureOnce(t *testing.T) {
	h := testHost(t)
	d := NewDaemon(h, 0) // default period
	if d.Period != time.Second {
		t.Fatalf("default period = %v", d.Period)
	}
	var got []repository.WorkloadSample
	sink := func(host string, s repository.WorkloadSample) {
		if host != h.Name {
			t.Errorf("sample for %q", host)
		}
		got = append(got, s)
	}
	now := time.Unix(50, 0)
	if !d.MeasureOnce(now, sink) {
		t.Fatal("reachable host not sampled")
	}
	if len(got) != 1 || !got[0].Time.Equal(now) {
		t.Fatalf("samples = %v", got)
	}
	if d.Samples() != 1 {
		t.Fatalf("Samples = %d", d.Samples())
	}
	// A failed host produces nothing — its daemon died with it.
	h.Fail()
	if d.MeasureOnce(now, sink) {
		t.Fatal("failed host reported a delivery")
	}
	if len(got) != 1 || d.Samples() != 1 {
		t.Fatal("failed host still sampled")
	}
	// A partitioned host keeps computing but its reports never arrive:
	// the silence the failure detector feeds on.
	h.Recover()
	h.Partition()
	if d.MeasureOnce(now, sink) || len(got) != 1 {
		t.Fatal("partitioned host's report got through")
	}
	h.Heal()
	if !d.MeasureOnce(now.Add(time.Second), sink) || len(got) != 2 {
		t.Fatal("healed host not sampled")
	}
}

func TestRunDelivers(t *testing.T) {
	h := testHost(t)
	d := NewDaemon(h, 2*time.Millisecond)
	var mu sync.Mutex
	count := 0
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		d.Run(ctx, func(string, repository.WorkloadSample) {
			mu.Lock()
			count++
			mu.Unlock()
		})
		close(done)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		c := count
		mu.Unlock()
		if c >= 3 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	<-done
	mu.Lock()
	defer mu.Unlock()
	if count < 3 {
		t.Fatalf("only %d samples delivered", count)
	}
}
