// Package netmodel models the wide-area network joining VDCE sites: a
// symmetric latency + bandwidth matrix used for the paper's inter-task
// transfer-time estimates ("based on the network transfer time between a
// site and the parent's site, and the size of the transfer") and for the
// k-nearest-neighbor site selection of the site scheduler algorithm.
package netmodel

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Link is one direction-independent site-to-site connection.
type Link struct {
	Latency     time.Duration
	BytesPerSec float64
}

// Network is a complete graph over named sites. Intra-site "links" model
// the LAN inside one site. Networks are immutable after construction
// aside from SetLink, and safe for concurrent reads once configured.
type Network struct {
	sites []string
	index map[string]int
	links [][]Link
}

// Defaults applied by New for unspecified links.
var (
	DefaultWANLink = Link{Latency: 20 * time.Millisecond, BytesPerSec: 1e6}   // ~T1..10base WAN of the era
	DefaultLANLink = Link{Latency: 500 * time.Microsecond, BytesPerSec: 10e6} // 10 Mbyte/s campus LAN
)

// New builds a network over the given site names with default WAN links
// between distinct sites and default LAN characteristics within a site.
func New(sites []string) (*Network, error) {
	if len(sites) == 0 {
		return nil, errors.New("netmodel: no sites")
	}
	n := &Network{
		sites: append([]string(nil), sites...),
		index: make(map[string]int, len(sites)),
	}
	for i, s := range sites {
		if s == "" {
			return nil, errors.New("netmodel: empty site name")
		}
		if _, dup := n.index[s]; dup {
			return nil, fmt.Errorf("netmodel: duplicate site %q", s)
		}
		n.index[s] = i
	}
	n.links = make([][]Link, len(sites))
	for i := range n.links {
		n.links[i] = make([]Link, len(sites))
		for j := range n.links[i] {
			if i == j {
				n.links[i][j] = DefaultLANLink
			} else {
				n.links[i][j] = DefaultWANLink
			}
		}
	}
	return n, nil
}

// Sites returns the site names in construction order.
func (n *Network) Sites() []string { return append([]string(nil), n.sites...) }

// Has reports whether the named site exists.
func (n *Network) Has(site string) bool { _, ok := n.index[site]; return ok }

// SetLink sets the symmetric link between sites a and b (a may equal b to
// set a site's internal LAN characteristics).
func (n *Network) SetLink(a, b string, l Link) error {
	ia, ok := n.index[a]
	if !ok {
		return fmt.Errorf("netmodel: unknown site %q", a)
	}
	ib, ok := n.index[b]
	if !ok {
		return fmt.Errorf("netmodel: unknown site %q", b)
	}
	if l.Latency < 0 || l.BytesPerSec <= 0 {
		return fmt.Errorf("netmodel: invalid link %+v", l)
	}
	n.links[ia][ib] = l
	n.links[ib][ia] = l
	return nil
}

// LinkBetween returns the link between two sites.
func (n *Network) LinkBetween(a, b string) (Link, error) {
	ia, ok := n.index[a]
	if !ok {
		return Link{}, fmt.Errorf("netmodel: unknown site %q", a)
	}
	ib, ok := n.index[b]
	if !ok {
		return Link{}, fmt.Errorf("netmodel: unknown site %q", b)
	}
	return n.links[ia][ib], nil
}

// TransferTime returns the paper's transfer_time(S_a, S_b) x file-size
// estimate: latency plus size over bandwidth. Transfers within one site
// use the site's LAN link. A zero or negative size costs only latency.
func (n *Network) TransferTime(bytes int64, a, b string) (time.Duration, error) {
	l, err := n.LinkBetween(a, b)
	if err != nil {
		return 0, err
	}
	if bytes <= 0 {
		return l.Latency, nil
	}
	secs := float64(bytes) / l.BytesPerSec
	return l.Latency + time.Duration(secs*float64(time.Second)), nil
}

// Nearest returns up to k remote sites sorted by ascending latency from
// local — the paper's "select k nearest VDCE neighbor sites". The local
// site itself is excluded.
func (n *Network) Nearest(local string, k int) ([]string, error) {
	il, ok := n.index[local]
	if !ok {
		return nil, fmt.Errorf("netmodel: unknown site %q", local)
	}
	if k <= 0 {
		return nil, nil
	}
	type cand struct {
		site string
		lat  time.Duration
	}
	cands := make([]cand, 0, len(n.sites)-1)
	for i, s := range n.sites {
		if i == il {
			continue
		}
		cands = append(cands, cand{site: s, lat: n.links[il][i].Latency})
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].lat != cands[b].lat {
			return cands[a].lat < cands[b].lat
		}
		return cands[a].site < cands[b].site
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].site
	}
	return out, nil
}

// Ring rewires the network so sites form a latency ring: hop distance d
// costs d*hopLatency with bandwidth divided by d. Useful for locality
// experiments (E4) where "nearest" is meaningful.
func (n *Network) Ring(hopLatency time.Duration, hopBytesPerSec float64) {
	c := len(n.sites)
	for i := 0; i < c; i++ {
		for j := 0; j < c; j++ {
			if i == j {
				continue
			}
			d := i - j
			if d < 0 {
				d = -d
			}
			if c-d < d {
				d = c - d
			}
			n.links[i][j] = Link{
				Latency:     time.Duration(d) * hopLatency,
				BytesPerSec: hopBytesPerSec / float64(d),
			}
		}
	}
}

// Randomize assigns random WAN links (latency in [lo, hi], bandwidth in
// [bwLo, bwHi]) using the given seed, keeping intra-site LAN links.
func (n *Network) Randomize(seed int64, lo, hi time.Duration, bwLo, bwHi float64) {
	rng := rand.New(rand.NewSource(seed))
	c := len(n.sites)
	for i := 0; i < c; i++ {
		for j := i + 1; j < c; j++ {
			lat := lo + time.Duration(rng.Int63n(int64(hi-lo)+1))
			bw := bwLo + rng.Float64()*(bwHi-bwLo)
			l := Link{Latency: lat, BytesPerSec: bw}
			n.links[i][j] = l
			n.links[j][i] = l
		}
	}
}
