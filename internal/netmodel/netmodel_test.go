package netmodel

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func mustNew(t *testing.T, sites ...string) *Network {
	t.Helper()
	n, err := New(sites)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty site list accepted")
	}
	if _, err := New([]string{"a", ""}); err == nil {
		t.Fatal("empty site name accepted")
	}
	if _, err := New([]string{"a", "a"}); err == nil {
		t.Fatal("duplicate site accepted")
	}
}

func TestDefaults(t *testing.T) {
	n := mustNew(t, "a", "b")
	lan, err := n.LinkBetween("a", "a")
	if err != nil {
		t.Fatal(err)
	}
	if lan != DefaultLANLink {
		t.Fatalf("intra-site link = %+v", lan)
	}
	wan, err := n.LinkBetween("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if wan != DefaultWANLink {
		t.Fatalf("inter-site link = %+v", wan)
	}
	if !n.Has("a") || n.Has("zz") {
		t.Fatal("Has wrong")
	}
	if s := n.Sites(); len(s) != 2 || s[0] != "a" {
		t.Fatalf("Sites = %v", s)
	}
}

func TestSetLinkSymmetric(t *testing.T) {
	n := mustNew(t, "a", "b")
	l := Link{Latency: 5 * time.Millisecond, BytesPerSec: 2e6}
	if err := n.SetLink("a", "b", l); err != nil {
		t.Fatal(err)
	}
	ab, _ := n.LinkBetween("a", "b")
	ba, _ := n.LinkBetween("b", "a")
	if ab != l || ba != l {
		t.Fatal("SetLink not symmetric")
	}
	if err := n.SetLink("a", "zz", l); err == nil {
		t.Fatal("unknown site accepted")
	}
	if err := n.SetLink("zz", "a", l); err == nil {
		t.Fatal("unknown site accepted")
	}
	if err := n.SetLink("a", "b", Link{Latency: -1, BytesPerSec: 1}); err == nil {
		t.Fatal("negative latency accepted")
	}
	if err := n.SetLink("a", "b", Link{Latency: 1, BytesPerSec: 0}); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

func TestTransferTime(t *testing.T) {
	n := mustNew(t, "a", "b")
	if err := n.SetLink("a", "b", Link{Latency: 10 * time.Millisecond, BytesPerSec: 1e6}); err != nil {
		t.Fatal(err)
	}
	d, err := n.TransferTime(2e6, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if d != 10*time.Millisecond+2*time.Second {
		t.Fatalf("TransferTime = %v", d)
	}
	// Zero size costs only latency.
	d, err = n.TransferTime(0, "a", "b")
	if err != nil || d != 10*time.Millisecond {
		t.Fatalf("zero-size transfer = %v, %v", d, err)
	}
	if _, err := n.TransferTime(1, "a", "zz"); err == nil {
		t.Fatal("unknown site accepted")
	}
	// Intra-site beats inter-site for same payload.
	intra, _ := n.TransferTime(1e6, "a", "a")
	inter, _ := n.TransferTime(1e6, "a", "b")
	if intra >= inter {
		t.Fatalf("intra-site (%v) should beat inter-site (%v)", intra, inter)
	}
}

func TestNearest(t *testing.T) {
	n := mustNew(t, "s0", "s1", "s2", "s3")
	// Latencies from s0: s1=5ms, s2=1ms, s3=10ms.
	_ = n.SetLink("s0", "s1", Link{Latency: 5 * time.Millisecond, BytesPerSec: 1e6})
	_ = n.SetLink("s0", "s2", Link{Latency: 1 * time.Millisecond, BytesPerSec: 1e6})
	_ = n.SetLink("s0", "s3", Link{Latency: 10 * time.Millisecond, BytesPerSec: 1e6})
	got, err := n.Nearest("s0", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "s2" || got[1] != "s1" {
		t.Fatalf("Nearest = %v", got)
	}
	// k larger than site count clips; k<=0 empty; local excluded.
	all, _ := n.Nearest("s0", 99)
	if len(all) != 3 {
		t.Fatalf("Nearest(99) = %v", all)
	}
	for _, s := range all {
		if s == "s0" {
			t.Fatal("local site in Nearest result")
		}
	}
	if none, _ := n.Nearest("s0", 0); len(none) != 0 {
		t.Fatalf("Nearest(0) = %v", none)
	}
	if _, err := n.Nearest("zz", 1); err == nil {
		t.Fatal("unknown site accepted")
	}
}

func TestRing(t *testing.T) {
	n := mustNew(t, "s0", "s1", "s2", "s3", "s4", "s5")
	n.Ring(2*time.Millisecond, 8e6)
	// s0 -> s1 is 1 hop, s0 -> s3 is 3 hops.
	l1, _ := n.LinkBetween("s0", "s1")
	l3, _ := n.LinkBetween("s0", "s3")
	if l1.Latency != 2*time.Millisecond || l3.Latency != 6*time.Millisecond {
		t.Fatalf("ring latencies: %v %v", l1.Latency, l3.Latency)
	}
	// Wrap-around: s0 -> s5 is 1 hop.
	l5, _ := n.LinkBetween("s0", "s5")
	if l5.Latency != 2*time.Millisecond {
		t.Fatalf("wrap-around latency %v", l5.Latency)
	}
	// Nearest from s0 must be the two ring neighbors.
	near, _ := n.Nearest("s0", 2)
	if len(near) != 2 || (near[0] != "s1" && near[0] != "s5") {
		t.Fatalf("ring Nearest = %v", near)
	}
}

func TestRandomizeDeterministic(t *testing.T) {
	a := mustNew(t, "x", "y", "z")
	b := mustNew(t, "x", "y", "z")
	a.Randomize(7, time.Millisecond, 50*time.Millisecond, 1e5, 1e7)
	b.Randomize(7, time.Millisecond, 50*time.Millisecond, 1e5, 1e7)
	la, _ := a.LinkBetween("x", "z")
	lb, _ := b.LinkBetween("x", "z")
	if la != lb {
		t.Fatal("Randomize not deterministic for equal seeds")
	}
	// Intra-site LAN untouched.
	lan, _ := a.LinkBetween("x", "x")
	if lan != DefaultLANLink {
		t.Fatal("Randomize clobbered LAN link")
	}
}

// Property: TransferTime is symmetric, monotone in size, and never less
// than the link latency.
func TestTransferTimeProperty(t *testing.T) {
	n := mustNew(t, "a", "b", "c", "d")
	n.Randomize(11, time.Millisecond, 40*time.Millisecond, 1e5, 1e7)
	sites := n.Sites()
	f := func(szRaw uint32, iRaw, jRaw uint8) bool {
		size := int64(szRaw % 10_000_000)
		i := int(iRaw) % len(sites)
		j := int(jRaw) % len(sites)
		ab, err1 := n.TransferTime(size, sites[i], sites[j])
		ba, err2 := n.TransferTime(size, sites[j], sites[i])
		bigger, err3 := n.TransferTime(size+1000, sites[i], sites[j])
		l, err4 := n.LinkBetween(sites[i], sites[j])
		return err1 == nil && err2 == nil && err3 == nil && err4 == nil &&
			ab == ba && bigger >= ab && ab >= l.Latency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}
