// Package obs is the repo's pure-stdlib metrics substrate: atomic
// counters, gauges, and fixed-bucket histograms with label support,
// collected into a Registry that renders Prometheus text exposition
// format. It exists so every subsystem (admission, scheduler, exec,
// breakers, WAL, broker) reports through one shared surface instead of
// the bespoke per-package tallies that accreted through PR 8 — and so
// HTTP status views can read the same series /metrics exports, making
// disagreement structurally impossible.
//
// Hot-path discipline: recording is lock-free after the series handle
// is resolved. Callers resolve label instances once at wiring time
// (reg.Counter(...).With("queue-full")) and keep the *Counter /
// *Histogram pointer; Inc/Add/Observe are then a few atomic ops with
// zero allocations, cheap enough for the WAL append path and the
// admission heap. The registry mutex is only taken when a new series
// materializes or during collection.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// kind discriminates the exposition TYPE line.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds metric families and renders them as Prometheus text.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one named metric with a fixed label-key schema and any
// number of label-value series.
type family struct {
	name    string
	help    string
	kind    kind
	keys    []string
	buckets []float64 // histogram families only

	mu     sync.Mutex
	series []*series
	bySig  map[string]*series

	// collect, when non-nil, produces the family's samples at scrape
	// time instead of from stored series (Func families).
	collect CollectFunc
}

// series is one label-value combination of a family.
type series struct {
	vals []string

	// counter/gauge payload: counters are monotonically increased
	// float64 bit patterns; gauges are set/added the same way.
	bits atomic.Uint64

	// histogram payload (nil for counters/gauges): counts[i] tallies
	// observations <= buckets[i]; counts[len] is the +Inf bucket.
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-added
	count  atomic.Uint64
}

// CollectFunc emits samples for a Func family at scrape time. The
// callback must pass exactly as many label values as the family has
// label keys.
type CollectFunc func(emit func(value float64, labelVals ...string))

func (r *Registry) family(name, help string, k kind, keys []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != k || len(f.keys) != len(keys) {
			panic(fmt.Sprintf("obs: metric %s re-registered with different schema", name))
		}
		return f
	}
	f := &family{name: name, help: help, kind: k, keys: keys, buckets: buckets,
		bySig: make(map[string]*series)}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// Counter registers (or returns the existing) counter family. Resolve
// concrete series with With; for an unlabeled counter call With() once
// and keep the handle.
func (r *Registry) Counter(name, help string, labelKeys ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, labelKeys, nil)}
}

// Gauge registers a gauge family.
func (r *Registry) Gauge(name, help string, labelKeys ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, labelKeys, nil)}
}

// Histogram registers a fixed-bucket histogram family. Buckets are
// upper bounds in ascending order; an implicit +Inf bucket is always
// appended. The slice is captured; do not mutate it afterwards.
func (r *Registry) Histogram(name, help string, buckets []float64, labelKeys ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram buckets must be strictly ascending: " + name)
		}
	}
	return &HistogramVec{r.family(name, help, kindHistogram, labelKeys, buckets)}
}

// CounterFunc registers a counter family whose samples come from fn at
// scrape time — the bridge for subsystems that already keep their own
// monotone tallies (retry gates, rank caches) without double-counting.
func (r *Registry) CounterFunc(name, help string, labelKeys []string, fn CollectFunc) {
	f := r.family(name, help, kindCounter, labelKeys, nil)
	f.collect = fn
}

// GaugeFunc registers a gauge family sampled from fn at scrape time —
// for instantaneous values a subsystem can answer cheaply on demand
// (queue depth, subscriber count, per-state breaker census).
func (r *Registry) GaugeFunc(name, help string, labelKeys []string, fn CollectFunc) {
	f := r.family(name, help, kindGauge, labelKeys, nil)
	f.collect = fn
}

// sig builds the lookup key for a label-value tuple. Label values never
// legitimately contain \xff in this codebase; the separator keeps
// ("a","bc") distinct from ("ab","c").
func sig(vals []string) string {
	if len(vals) == 0 {
		return ""
	}
	if len(vals) == 1 {
		return vals[0]
	}
	return strings.Join(vals, "\xff")
}

func (f *family) with(vals []string) *series {
	if len(vals) != len(f.keys) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.keys), len(vals)))
	}
	key := sig(vals)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.bySig[key]; ok {
		return s
	}
	s := &series{vals: append([]string(nil), vals...)}
	if f.kind == kindHistogram {
		s.counts = make([]atomic.Uint64, len(f.buckets)+1)
	}
	f.bySig[key] = s
	f.series = append(f.series, s)
	return s
}

// CounterVec is a counter family; With resolves one series.
type CounterVec struct{ f *family }

// With returns the series for the given label values, creating it on
// first use. Resolve once at wiring time, not on the hot path.
func (v *CounterVec) With(labelVals ...string) *Counter {
	return &Counter{v.f.with(labelVals)}
}

// Value reads the current value for a label tuple without creating the
// series; absent series read as 0.
func (v *CounterVec) Value(labelVals ...string) float64 {
	v.f.mu.Lock()
	s, ok := v.f.bySig[sig(labelVals)]
	v.f.mu.Unlock()
	if !ok {
		return 0
	}
	return math.Float64frombits(s.bits.Load())
}

// Counter is a monotonically increasing value.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v; negative deltas are ignored
// (counters are monotone by contract).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	addFloatBits(&c.s.bits, v)
}

// Value reads the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.s.bits.Load()) }

// GaugeVec is a gauge family; With resolves one series.
type GaugeVec struct{ f *family }

// With returns the series for the given label values.
func (v *GaugeVec) With(labelVals ...string) *Gauge { return &Gauge{v.f.with(labelVals)} }

// Gauge is an instantaneous value that can go up and down.
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v float64) { g.s.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) { addFloatBits(&g.s.bits, v) }

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.bits.Load()) }

// HistogramVec is a histogram family; With resolves one series.
type HistogramVec struct{ f *family }

// With returns the series for the given label values.
func (v *HistogramVec) With(labelVals ...string) *Histogram {
	return &Histogram{s: v.f.with(labelVals), buckets: v.f.buckets}
}

// Histogram accumulates observations into fixed buckets.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one sample: a linear scan over the (small, fixed)
// bucket table plus three atomic ops — no locks, no allocations.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.buckets) && v > h.buckets[i] {
		i++
	}
	h.s.counts[i].Add(1)
	addFloatBits(&h.s.sum, v)
	h.s.count.Add(1)
}

// Count reports how many samples have been observed.
func (h *Histogram) Count() uint64 { return h.s.count.Load() }

// Sum reports the running total of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.s.sum.Load()) }

// addFloatBits CAS-adds a float64 delta onto a bit-pattern cell.
func addFloatBits(cell *atomic.Uint64, v float64) {
	for {
		old := cell.Load()
		if cell.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// DefBuckets covers the pipeline's latency range, 100µs to 10s.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// WALBuckets resolves the group-committed append path, 100ns to 100ms.
var WALBuckets = []float64{
	1e-7, 2.5e-7, 5e-7, 1e-6, 5e-6, 2.5e-5, 1e-4, 1e-3, 1e-2, 1e-1,
}

// SizeBuckets is a powers-of-two scale for batch/record counts.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// ExponentialBuckets returns count buckets starting at start, each
// factor times the previous. Panics on a non-positive start, a factor
// <= 1, or count < 1.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("obs: ExponentialBuckets needs start > 0, factor > 1, count >= 1")
	}
	b := make([]float64, count)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// Total sums every series of the named family across its label values:
// counter and gauge families sum their values (Func families sample
// their collector), histogram families sum observation counts. Unknown
// names return 0. This is the report-generation read path (chaos
// summaries, tests), not a hot-path API.
func (r *Registry) Total(name string) float64 {
	r.mu.Lock()
	f, ok := r.byName[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	var total float64
	if f.collect != nil {
		f.collect(func(v float64, _ ...string) { total += v })
		return total
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, s := range f.series {
		if f.kind == kindHistogram {
			total += float64(s.count.Load())
		} else {
			total += math.Float64frombits(s.bits.Load())
		}
	}
	return total
}

// Handler serves the registry as Prometheus text exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var sb strings.Builder
		r.WriteText(&sb)
		_, _ = w.Write([]byte(sb.String()))
	})
}

// WriteText renders every family in registration order: HELP and TYPE
// headers, then one line per series with labels sorted by first use.
func (r *Registry) WriteText(sb *strings.Builder) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(sb, "# TYPE %s %s\n", f.name, f.kind)
		if f.collect != nil {
			f.writeFunc(sb)
			continue
		}
		f.mu.Lock()
		ser := append([]*series(nil), f.series...)
		f.mu.Unlock()
		for _, s := range ser {
			if f.kind == kindHistogram {
				writeHistogram(sb, f, s)
				continue
			}
			sb.WriteString(f.name)
			writeLabels(sb, f.keys, s.vals, "", "")
			sb.WriteByte(' ')
			sb.WriteString(formatFloat(math.Float64frombits(s.bits.Load())))
			sb.WriteByte('\n')
		}
	}
}

// writeFunc renders a Func family by sampling its collector. Samples
// are sorted by label signature for stable output.
func (f *family) writeFunc(sb *strings.Builder) {
	type sample struct {
		vals []string
		v    float64
	}
	var samples []sample
	f.collect(func(v float64, labelVals ...string) {
		if len(labelVals) != len(f.keys) {
			panic(fmt.Sprintf("obs: func metric %s emitted %d label values, want %d", f.name, len(labelVals), len(f.keys)))
		}
		samples = append(samples, sample{append([]string(nil), labelVals...), v})
	})
	sort.Slice(samples, func(i, j int) bool { return sig(samples[i].vals) < sig(samples[j].vals) })
	for _, s := range samples {
		sb.WriteString(f.name)
		writeLabels(sb, f.keys, s.vals, "", "")
		sb.WriteByte(' ')
		sb.WriteString(formatFloat(s.v))
		sb.WriteByte('\n')
	}
}

// writeHistogram renders the cumulative _bucket series, _sum and
// _count for one label tuple.
func writeHistogram(sb *strings.Builder, f *family, s *series) {
	var cum uint64
	for i, ub := range f.buckets {
		cum += s.counts[i].Load()
		sb.WriteString(f.name)
		sb.WriteString("_bucket")
		writeLabels(sb, f.keys, s.vals, "le", formatFloat(ub))
		fmt.Fprintf(sb, " %d\n", cum)
	}
	cum += s.counts[len(f.buckets)].Load()
	sb.WriteString(f.name)
	sb.WriteString("_bucket")
	writeLabels(sb, f.keys, s.vals, "le", "+Inf")
	fmt.Fprintf(sb, " %d\n", cum)
	sb.WriteString(f.name)
	sb.WriteString("_sum")
	writeLabels(sb, f.keys, s.vals, "", "")
	sb.WriteByte(' ')
	sb.WriteString(formatFloat(math.Float64frombits(s.sum.Load())))
	sb.WriteByte('\n')
	sb.WriteString(f.name)
	sb.WriteString("_count")
	writeLabels(sb, f.keys, s.vals, "", "")
	fmt.Fprintf(sb, " %d\n", s.count.Load())
}

// writeLabels renders {k="v",...}, optionally with one extra pair
// (the histogram le bound), or nothing when there are no labels.
func writeLabels(sb *strings.Builder, keys, vals []string, extraKey, extraVal string) {
	if len(keys) == 0 && extraKey == "" {
		return
	}
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(vals[i]))
		sb.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraKey)
		sb.WriteString(`="`)
		sb.WriteString(extraVal)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
}

// formatFloat renders a sample value: integers without an exponent,
// everything else in Go's shortest round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
