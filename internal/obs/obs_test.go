package obs

import (
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the exact Prometheus text rendering of a
// registry holding one of each family kind — HELP/TYPE headers, label
// quoting, cumulative histogram buckets with the implicit +Inf, _sum
// and _count, and Func-family sampling — so the scrape format cannot
// drift without this test noticing.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	sheds := r.Counter("vdce_sheds_total", "Submissions shed at admission.", "reason")
	sheds.With("queue-full").Add(3)
	sheds.With("deadline-infeasible").Inc()
	depth := r.Gauge("vdce_queue_depth", "Jobs waiting in admission.")
	depth.With().Set(7)
	lat := r.Histogram("vdce_wait_seconds", "Submit wait.", []float64{0.01, 0.1, 1})
	h := lat.With()
	h.Observe(0.005) // le=0.01
	h.Observe(0.05)  // le=0.1
	h.Observe(0.05)  // le=0.1
	h.Observe(5)     // +Inf
	r.GaugeFunc("vdce_breaker_hosts", "Hosts per breaker state.", []string{"state"},
		func(emit func(v float64, labelVals ...string)) {
			emit(2, "open")
			emit(6, "closed")
		})

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(rec.Body)

	want := `# HELP vdce_sheds_total Submissions shed at admission.
# TYPE vdce_sheds_total counter
vdce_sheds_total{reason="queue-full"} 3
vdce_sheds_total{reason="deadline-infeasible"} 1
# HELP vdce_queue_depth Jobs waiting in admission.
# TYPE vdce_queue_depth gauge
vdce_queue_depth 7
# HELP vdce_wait_seconds Submit wait.
# TYPE vdce_wait_seconds histogram
vdce_wait_seconds_bucket{le="0.01"} 1
vdce_wait_seconds_bucket{le="0.1"} 3
vdce_wait_seconds_bucket{le="1"} 3
vdce_wait_seconds_bucket{le="+Inf"} 4
vdce_wait_seconds_sum 5.105
vdce_wait_seconds_count 4
# HELP vdce_breaker_hosts Hosts per breaker state.
# TYPE vdce_breaker_hosts gauge
vdce_breaker_hosts{state="closed"} 6
vdce_breaker_hosts{state="open"} 2
`
	if string(body) != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", body, want)
	}
}

// TestHistogramBucketBoundaries pins the le contract: an observation
// exactly equal to an upper bound lands in that bucket (le is
// inclusive), one epsilon above it spills to the next, and anything
// beyond the last bound lands only in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b", "", []float64{1, 2, 4}).With()
	h.Observe(1)                    // exactly on the first bound → bucket le=1
	h.Observe(math.Nextafter(1, 2)) // just above → le=2
	h.Observe(2)                    // on the second bound → le=2
	h.Observe(4)                    // last finite bound → le=4
	h.Observe(4.0001)               // past every bound → +Inf only
	counts := h.s.counts
	got := []uint64{counts[0].Load(), counts[1].Load(), counts[2].Load(), counts[3].Load()}
	want := []uint64{1, 2, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket counts = %v, want %v", got, want)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if s := h.Sum(); math.Abs(s-12.0001) > 1e-9 {
		t.Fatalf("Sum = %g, want 12.0001", s)
	}
}

// TestSeriesIdentityAndValue pins the wiring contract: With on the
// same label tuple returns the same underlying series, Vec.Value reads
// without materializing a series, and re-registering a family returns
// the existing one.
func TestSeriesIdentityAndValue(t *testing.T) {
	r := NewRegistry()
	v := r.Counter("c", "", "who")
	a1, a2 := v.With("a"), v.With("a")
	a1.Add(2)
	a2.Inc()
	if got := v.Value("a"); got != 3 {
		t.Fatalf("Value(a) = %g, want 3", got)
	}
	if got := v.Value("ghost"); got != 0 {
		t.Fatalf("Value(ghost) = %g, want 0", got)
	}
	if r.Counter("c", "", "who").With("a").Value() != 3 {
		t.Fatal("re-registered family lost its series")
	}
	// Counters refuse to go backwards.
	a1.Add(-5)
	if a1.Value() != 3 {
		t.Fatalf("counter moved backwards: %g", a1.Value())
	}
	g := r.Gauge("g", "").With()
	g.Set(10)
	g.Add(-4)
	g.Dec()
	if g.Value() != 5 {
		t.Fatalf("gauge = %g, want 5", g.Value())
	}
}

// TestConcurrentRecording hammers one counter, gauge, and histogram
// from many goroutines (run under -race in CI) and checks the totals
// survive without loss.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "").With()
	g := r.Gauge("g", "").With()
	h := r.Histogram("h", "", []float64{0.5}).With()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Inc()
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %g, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge = %g, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("hist count = %d, want %d", h.Count(), workers*per)
	}
}

// TestExponentialBuckets pins the helper's geometry and the label
// escaping rules.
func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
	if escapeLabel("a\"b\\c\nd") != `a\"b\\c\nd` {
		t.Fatalf("escapeLabel = %q", escapeLabel("a\"b\\c\nd"))
	}
}
