// Package predict implements the performance-prediction phase the paper
// calls "the core of the given built-in scheduling algorithms": separate
// function evaluations of each task on each resource, in the style of Yan
// & Zhang's prediction model for non-dedicated heterogeneous NOWs.
//
// The model combines task parameters from the task-performance database
// (computation size, communication size, required memory) with resource
// parameters from the resource-performance database (speed factor,
// current CPU load, available memory), and optionally blends in the
// exponentially smoothed measured execution time of the same task on the
// same host — the calibration loop the Site Manager closes after every
// application execution.
package predict

import (
	"errors"
	"fmt"
	"time"

	"vdce/internal/repository"
)

// Predictor holds the model constants. The zero value is not useful; use
// Default or fill all fields.
type Predictor struct {
	// BaseOpsPerSec is the throughput of the base processor (speed factor
	// 1.0) in task "computation ops" per second. Task BaseTime values and
	// this constant must agree: BaseTime = ComputationOps / BaseOpsPerSec.
	BaseOpsPerSec float64
	// MemPenaltySlope inflates execution time when a task's required
	// memory exceeds the host's available memory: the time is multiplied
	// by 1 + slope * deficitRatio (thrashing model).
	MemPenaltySlope float64
	// IntraNodeBytesPerSec is the per-node communication bandwidth used
	// for parallel tasks' coordination overhead.
	IntraNodeBytesPerSec float64
	// MeasuredBlend is the weight given to a measured (smoothed) execution
	// time when one exists for (task, host); the model prediction gets
	// 1 - MeasuredBlend.
	MeasuredBlend float64
}

// Default returns the constants used across the examples and benchmarks:
// a 100 Mops base processor, 4x thrashing slope, 10 MB/s intra-site
// per-node coordination bandwidth, and a 0.6 preference for history.
func Default() Predictor {
	return Predictor{
		BaseOpsPerSec:        100e6,
		MemPenaltySlope:      4,
		IntraNodeBytesPerSec: 10e6,
		MeasuredBlend:        0.6,
	}
}

// Errors returned by prediction.
var (
	ErrHostDown   = errors.New("predict: host is down")
	ErrSaturated  = errors.New("predict: host load leaves no capacity")
	ErrBadRequest = errors.New("predict: invalid request")
)

// Predict estimates the execution time of a task with the given
// parameters on the given resource using nodes processors (nodes <= 1
// means sequential). measured, when non-nil, is the smoothed observed
// execution time of this task on this host and is blended into the
// estimate. The host arrives as the slim HostView — the model never
// reads workload history, so the scheduling path passes views straight
// out of a repository snapshot without cloning records.
//
// This is the paper's Predict(task_i, R_j).
func (p *Predictor) Predict(task repository.TaskParams, host repository.HostView, nodes int, measured *time.Duration) (time.Duration, error) {
	if p.BaseOpsPerSec <= 0 {
		return 0, fmt.Errorf("%w: BaseOpsPerSec must be positive", ErrBadRequest)
	}
	if task.ComputationOps < 0 {
		return 0, fmt.Errorf("%w: negative computation size", ErrBadRequest)
	}
	if host.Status == repository.HostDown {
		return 0, fmt.Errorf("%w: %s", ErrHostDown, host.HostName)
	}
	if nodes < 1 {
		nodes = 1
	}
	if !task.Parallelizable {
		nodes = 1
	}
	load := host.CPULoad
	if load < 0 {
		load = 0
	}
	if load >= 0.999 {
		return 0, fmt.Errorf("%w: %s at load %.3f", ErrSaturated, host.HostName, load)
	}
	speed := host.SpeedFactor
	if speed <= 0 {
		speed = 1
	}
	// Effective sequential rate on this host right now.
	rate := p.BaseOpsPerSec * speed * (1 - load)

	// Amdahl split for parallel execution: the serial fraction runs at the
	// single-node rate; the parallel remainder is divided across nodes.
	serial := task.SerialFraction
	if nodes == 1 {
		serial = 1 // whole task runs serially
	}
	var seconds float64
	if nodes == 1 {
		seconds = task.ComputationOps / rate
	} else {
		seconds = task.ComputationOps*serial/rate + task.ComputationOps*(1-serial)/(rate*float64(nodes))
		// Coordination overhead grows with node count.
		if p.IntraNodeBytesPerSec > 0 && task.CommunicationBytes > 0 {
			seconds += float64(task.CommunicationBytes) * float64(nodes-1) / p.IntraNodeBytesPerSec / float64(nodes)
		}
	}

	// Memory deficit penalty (thrashing).
	if task.RequiredMemBytes > 0 && host.AvailMem > 0 && task.RequiredMemBytes > host.AvailMem {
		deficit := float64(task.RequiredMemBytes-host.AvailMem) / float64(task.RequiredMemBytes)
		seconds *= 1 + p.MemPenaltySlope*deficit
	}

	model := time.Duration(seconds * float64(time.Second))
	if measured != nil && p.MeasuredBlend > 0 {
		// The smoothed measurement was taken under whatever load prevailed
		// then; rescale it to the current load assuming it was near-idle.
		adj := float64(*measured) / (1 - load)
		blended := p.MeasuredBlend*adj + (1-p.MeasuredBlend)*float64(model)
		return time.Duration(blended), nil
	}
	return model, nil
}

// Oracle binds a Predictor to a site repository so callers can predict by
// task and host name, pulling parameters and measurements from the
// databases exactly as the host selection algorithm's steps 1-2 retrieve
// them.
type Oracle struct {
	P    Predictor
	Repo *repository.Repository
}

// NewOracle returns an Oracle over repo with Default constants.
func NewOracle(repo *repository.Repository) *Oracle {
	return &Oracle{P: Default(), Repo: repo}
}

// Predict estimates task's execution time on host using nodes
// processors. It reads one coherent repository snapshot; callers holding
// a snapshot for a whole round should use PredictAt instead.
func (o *Oracle) Predict(taskName, hostName string, nodes int) (time.Duration, error) {
	return o.PredictAt(o.Repo.Snapshot(), taskName, hostName, nodes)
}

// PredictAt estimates task's execution time on host against the given
// snapshot, so repeated predictions within one scheduling round share a
// single frozen view of the databases.
func (o *Oracle) PredictAt(snap *repository.Snapshot, taskName, hostName string, nodes int) (time.Duration, error) {
	task, err := snap.TaskParams(taskName)
	if err != nil {
		return 0, err
	}
	host, ok := snap.View(hostName)
	if !ok {
		return 0, fmt.Errorf("%w: %s", repository.ErrUnknownHost, hostName)
	}
	var measured *time.Duration
	if d, ok := snap.MeasuredTime(taskName, hostName); ok {
		measured = &d
	}
	return o.P.Predict(task, host, nodes, measured)
}

// BaseTimeFor returns the level-computation cost of a task: the stored
// base-processor time if present, else the model's prediction on an
// idle base processor.
func (o *Oracle) BaseTimeFor(taskName string) (time.Duration, error) {
	params, err := o.Repo.TaskPerf.Params(taskName)
	if err != nil {
		return 0, err
	}
	if params.BaseTime > 0 {
		return params.BaseTime, nil
	}
	base := repository.HostView{HostName: "base", SpeedFactor: 1, Status: repository.HostUp}
	return o.P.Predict(params, base, 1, nil)
}
