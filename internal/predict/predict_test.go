package predict

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"vdce/internal/repository"
)

func task(ops float64) repository.TaskParams {
	return repository.TaskParams{Name: "t", ComputationOps: ops}
}

func upHost(speed, load float64) repository.HostView {
	return repository.HostView{
		HostName: "h", SpeedFactor: speed, CPULoad: load,
		Status: repository.HostUp, TotalMem: 1 << 30, AvailMem: 1 << 30,
	}
}

func TestPredictIdleBaseProcessor(t *testing.T) {
	p := Default()
	// 100e6 ops on a 100e6 ops/sec idle base host = 1 second.
	d, err := p.Predict(task(100e6), upHost(1, 0), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d != time.Second {
		t.Fatalf("Predict = %v, want 1s", d)
	}
}

func TestPredictScalesWithSpeedAndLoad(t *testing.T) {
	p := Default()
	fast, _ := p.Predict(task(100e6), upHost(2, 0), 1, nil)
	slow, _ := p.Predict(task(100e6), upHost(1, 0), 1, nil)
	if fast*2 != slow {
		t.Fatalf("speed 2x should halve time: fast=%v slow=%v", fast, slow)
	}
	loaded, _ := p.Predict(task(100e6), upHost(1, 0.5), 1, nil)
	if loaded != 2*slow {
		t.Fatalf("load 0.5 should double time: %v vs %v", loaded, slow)
	}
}

func TestPredictErrors(t *testing.T) {
	p := Default()
	down := upHost(1, 0)
	down.Status = repository.HostDown
	if _, err := p.Predict(task(1), down, 1, nil); !errors.Is(err, ErrHostDown) {
		t.Fatalf("down host: %v", err)
	}
	if _, err := p.Predict(task(1), upHost(1, 1.0), 1, nil); !errors.Is(err, ErrSaturated) {
		t.Fatalf("saturated: %v", err)
	}
	if _, err := p.Predict(task(-1), upHost(1, 0), 1, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("negative ops: %v", err)
	}
	var zero Predictor
	if _, err := zero.Predict(task(1), upHost(1, 0), 1, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("zero predictor: %v", err)
	}
}

func TestPredictParallelSpeedup(t *testing.T) {
	p := Default()
	p.IntraNodeBytesPerSec = 0 // isolate Amdahl behaviour
	par := task(100e6)
	par.Parallelizable = true
	par.SerialFraction = 0.1
	seq, err := p.Predict(par, upHost(1, 0), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	four, err := p.Predict(par, upHost(1, 0), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if four >= seq {
		t.Fatalf("4 nodes (%v) not faster than 1 (%v)", four, seq)
	}
	// Amdahl bound: speedup <= 1/serialFraction = 10x.
	if seq/four > 10 {
		t.Fatalf("speedup %v exceeds Amdahl bound", seq/four)
	}
	// Non-parallelizable tasks ignore the node count.
	notPar := task(100e6)
	d1, _ := p.Predict(notPar, upHost(1, 0), 1, nil)
	d4, _ := p.Predict(notPar, upHost(1, 0), 4, nil)
	if d1 != d4 {
		t.Fatalf("node count changed a sequential task: %v vs %v", d1, d4)
	}
}

func TestPredictParallelCommOverhead(t *testing.T) {
	p := Default()
	par := task(100e6)
	par.Parallelizable = true
	par.CommunicationBytes = 50 << 20
	with, err := p.Predict(par, upHost(1, 0), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.IntraNodeBytesPerSec = 0
	without, err := p.Predict(par, upHost(1, 0), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if with <= without {
		t.Fatalf("comm overhead missing: with=%v without=%v", with, without)
	}
}

func TestPredictMemoryPenalty(t *testing.T) {
	p := Default()
	tk := task(100e6)
	tk.RequiredMemBytes = 1 << 30
	small := upHost(1, 0)
	small.AvailMem = 1 << 29 // half of required
	penalized, err := p.Predict(tk, small, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	roomy, err := p.Predict(tk, upHost(1, 0), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if penalized <= roomy {
		t.Fatalf("memory penalty missing: %v <= %v", penalized, roomy)
	}
	// deficitRatio = 0.5 -> multiplier 1 + 4*0.5 = 3.
	if penalized != 3*roomy {
		t.Fatalf("penalty = %v, want %v", penalized, 3*roomy)
	}
}

func TestPredictBlendsMeasurement(t *testing.T) {
	p := Default()
	m := 10 * time.Second
	got, err := p.Predict(task(100e6), upHost(1, 0), 1, &m)
	if err != nil {
		t.Fatal(err)
	}
	// model = 1s, measured = 10s, blend 0.6 -> 6.4s.
	want := time.Duration(0.6*float64(10*time.Second) + 0.4*float64(time.Second))
	if got != want {
		t.Fatalf("blended = %v, want %v", got, want)
	}
	// Blend of 0 ignores the measurement.
	p.MeasuredBlend = 0
	got, err = p.Predict(task(100e6), upHost(1, 0), 1, &m)
	if err != nil {
		t.Fatal(err)
	}
	if got != time.Second {
		t.Fatalf("blend 0 = %v, want 1s", got)
	}
}

// Property: prediction is monotonically non-decreasing in load and in
// computation size — the two directions the host-selection algorithm
// relies on to rank resources.
func TestPredictMonotonicProperty(t *testing.T) {
	p := Default()
	f := func(opsRaw uint32, loadRaw, bumpRaw uint8) bool {
		ops := float64(opsRaw%1e6) + 1
		load := float64(loadRaw%90) / 100
		bump := float64(bumpRaw%9+1) / 100
		d1, err1 := p.Predict(task(ops), upHost(1, load), 1, nil)
		d2, err2 := p.Predict(task(ops), upHost(1, load+bump), 1, nil)
		d3, err3 := p.Predict(task(ops*2), upHost(1, load), 1, nil)
		return err1 == nil && err2 == nil && err3 == nil && d2 >= d1 && d3 >= d1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(10))}); err != nil {
		t.Fatal(err)
	}
}

func TestOracle(t *testing.T) {
	repo := repository.New("s1")
	if err := repo.TaskPerf.RegisterTask(repository.TaskParams{
		Name: "lu", ComputationOps: 200e6, BaseTime: 2 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	if err := repo.Resources.AddHost(repository.ResourceInfo{
		HostName: "h1", SpeedFactor: 2, TotalMem: 1 << 30, Site: "s1",
	}); err != nil {
		t.Fatal(err)
	}
	o := NewOracle(repo)
	d, err := o.Predict("lu", "h1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if d != time.Second {
		t.Fatalf("oracle predict = %v, want 1s", d)
	}
	if _, err := o.Predict("nope", "h1", 1); err == nil {
		t.Fatal("unknown task accepted")
	}
	if _, err := o.Predict("lu", "nope", 1); err == nil {
		t.Fatal("unknown host accepted")
	}
	// Measurement changes the oracle's answer.
	if err := repo.TaskPerf.RecordExecution("lu", "h1", 5*time.Second, time.Now()); err != nil {
		t.Fatal(err)
	}
	d2, err := o.Predict("lu", "h1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= d {
		t.Fatalf("measurement ignored: %v vs %v", d2, d)
	}
}

func TestBaseTimeFor(t *testing.T) {
	repo := repository.New("s1")
	if err := repo.TaskPerf.RegisterTask(repository.TaskParams{Name: "a", BaseTime: 3 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if err := repo.TaskPerf.RegisterTask(repository.TaskParams{Name: "b", ComputationOps: 100e6}); err != nil {
		t.Fatal(err)
	}
	o := NewOracle(repo)
	if d, err := o.BaseTimeFor("a"); err != nil || d != 3*time.Second {
		t.Fatalf("stored base time: %v %v", d, err)
	}
	if d, err := o.BaseTimeFor("b"); err != nil || d != time.Second {
		t.Fatalf("derived base time: %v %v", d, err)
	}
	if _, err := o.BaseTimeFor("zz"); err == nil {
		t.Fatal("unknown task accepted")
	}
}
