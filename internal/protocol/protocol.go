// Package protocol defines the wire messages VDCE components exchange:
// host-selection requests between Application Schedulers (the AFG
// multicast of Fig. 2), monitoring and failure reports flowing from
// Group Managers to Site Managers, execution records closing the
// prediction feedback loop, and the envelope format Data Manager
// channels use for inter-task payloads. Transport is Go's net/rpc over
// TCP for control traffic and raw gob-framed TCP sockets for data
// channels.
package protocol

import (
	"time"

	"vdce/internal/core"
	"vdce/internal/repository"
)

// SiteServiceName is the rpc service name every VDCE server registers.
const SiteServiceName = "Site"

// HostSelectionRequest carries a JSON-encoded application flow graph to a
// remote Application Scheduler (Fig. 2 step 3, the AFG multicast).
type HostSelectionRequest struct {
	GraphJSON []byte
}

// HostSelectionResponse returns the site's host-selection output: the
// best machine(s) and predicted execution time per task (Fig. 2 step 5).
// Keys are task IDs.
type HostSelectionResponse struct {
	Site    string
	Choices map[int]core.HostChoice
}

// WorkloadBatch is a Group Manager's filtered workload report: only the
// hosts whose load changed considerably since the last report.
type WorkloadBatch struct {
	Site    string
	Group   string
	Samples []HostSample
}

// HostSample pairs a host with one monitor measurement.
type HostSample struct {
	Host   string
	Sample repository.WorkloadSample
}

// FailureNotice reports an echo-detected host failure.
type FailureNotice struct {
	Host     string
	Group    string
	Detected time.Time
}

// RecoveryNotice reports a host answering echoes again.
type RecoveryNotice struct {
	Host     string
	Group    string
	Detected time.Time
}

// ExecutionRecord carries a completed task execution back to the Site
// Manager, which updates the task-performance database.
type ExecutionRecord struct {
	Task    string
	Host    string
	Elapsed time.Duration
	At      time.Time
}

// Ack is the empty reply used by notification-style RPCs.
type Ack struct{}

// ResourceQuery selects hosts from the resource-performance database.
type ResourceQuery struct {
	// Group filters to one group when non-empty.
	Group string
	// UpOnly drops hosts marked down.
	UpOnly bool
}

// ResourceList is the query result.
type ResourceList struct {
	Hosts []repository.ResourceInfo
}

// DataEnvelope frames one inter-task payload on a Data Manager channel:
// which application run it belongs to, which graph edge it travels, and
// the gob-encoded value.
type DataEnvelope struct {
	AppID    string
	FromTask int
	ToTask   int
	ToPort   int
	Payload  []byte
}

// DSMRequest is one distributed-shared-memory operation against a site's
// DSM service (the paper's §5 shared-memory extension). Op is "read",
// "write", or "cas".
type DSMRequest struct {
	Op    string
	Key   string
	Value []byte
	Old   []byte // cas only
}

// DSMReply returns the operation outcome. For reads, Found reports
// whether the page exists; for cas, Swapped reports success and Value
// carries the current value on failure.
type DSMReply struct {
	Value   []byte
	Found   bool
	Swapped bool
}
