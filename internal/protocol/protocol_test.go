package protocol

import (
	"bytes"
	"encoding/gob"
	"testing"
	"time"

	"vdce/internal/core"
	"vdce/internal/repository"
)

// roundTrip gob-encodes and decodes v into out (a pointer).
func roundTrip(t *testing.T, v, out any) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func TestHostSelectionResponseGob(t *testing.T) {
	in := HostSelectionResponse{
		Site: "s1",
		Choices: map[int]core.HostChoice{
			0: {Site: "s1", Hosts: []string{"h1", "h2"}, Predicted: 3 * time.Second},
			1: {Site: "s1", Err: "no eligible host"},
		},
	}
	var out HostSelectionResponse
	roundTrip(t, in, &out)
	if out.Site != "s1" || len(out.Choices) != 2 {
		t.Fatalf("round trip lost data: %+v", out)
	}
	if c := out.Choices[0]; len(c.Hosts) != 2 || c.Predicted != 3*time.Second {
		t.Fatalf("choice 0 = %+v", c)
	}
	if out.Choices[1].Err == "" {
		t.Fatal("error choice lost")
	}
}

func TestWorkloadBatchGob(t *testing.T) {
	in := WorkloadBatch{
		Site: "s", Group: "g",
		Samples: []HostSample{{
			Host:   "h",
			Sample: repository.WorkloadSample{CPULoad: 0.5, AvailMemBytes: 99, Time: time.Unix(7, 0).UTC()},
		}},
	}
	var out WorkloadBatch
	roundTrip(t, in, &out)
	if len(out.Samples) != 1 || out.Samples[0].Sample.CPULoad != 0.5 {
		t.Fatalf("round trip lost data: %+v", out)
	}
	if !out.Samples[0].Sample.Time.Equal(time.Unix(7, 0)) {
		t.Fatal("timestamp lost")
	}
}

func TestDataEnvelopeGob(t *testing.T) {
	in := DataEnvelope{AppID: "a", FromTask: 1, ToTask: 2, ToPort: 3, Payload: []byte{1, 2, 3}}
	var out DataEnvelope
	roundTrip(t, in, &out)
	if out.AppID != "a" || out.ToPort != 3 || len(out.Payload) != 3 {
		t.Fatalf("round trip lost data: %+v", out)
	}
}

func TestNoticesGob(t *testing.T) {
	var f FailureNotice
	roundTrip(t, FailureNotice{Host: "h", Group: "g", Detected: time.Unix(1, 0).UTC()}, &f)
	if f.Host != "h" {
		t.Fatal("failure notice lost")
	}
	var r RecoveryNotice
	roundTrip(t, RecoveryNotice{Host: "h2"}, &r)
	if r.Host != "h2" {
		t.Fatal("recovery notice lost")
	}
	var e ExecutionRecord
	roundTrip(t, ExecutionRecord{Task: "t", Host: "h", Elapsed: time.Second}, &e)
	if e.Elapsed != time.Second {
		t.Fatal("execution record lost")
	}
}
