// Package repository implements the VDCE site repository: the four
// databases the paper attaches to every site — user accounts, resource
// performance, task performance, and task constraints. All databases are
// safe for concurrent use and serialize to JSON for site persistence.
package repository

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// AccessDomain is the paper's "access domain type" field: how far a
// user's jobs may be scheduled.
type AccessDomain string

const (
	// DomainLocal restricts the user to the local site's resources.
	DomainLocal AccessDomain = "local"
	// DomainCampus allows the local site and its nearest neighbors.
	DomainCampus AccessDomain = "campus"
	// DomainGlobal allows every VDCE site.
	DomainGlobal AccessDomain = "global"
)

// UserAccount is the 5-tuple the paper stores per user: user name,
// password (stored salted+hashed here), user ID, priority, and access
// domain type.
type UserAccount struct {
	Name         string       `json:"name"`
	PasswordHash string       `json:"password_hash"`
	Salt         string       `json:"salt"`
	UserID       int          `json:"user_id"`
	Priority     int          `json:"priority"`
	Domain       AccessDomain `json:"domain"`
}

// UserAccountsDB is the user-accounts database used for authentication.
type UserAccountsDB struct {
	mu     sync.RWMutex
	users  map[string]*UserAccount
	nextID int
}

// NewUserAccountsDB returns an empty accounts database.
func NewUserAccountsDB() *UserAccountsDB {
	return &UserAccountsDB{users: make(map[string]*UserAccount), nextID: 1}
}

// Errors returned by account operations.
var (
	ErrUserExists   = errors.New("repository: user already exists")
	ErrUnknownUser  = errors.New("repository: unknown user")
	ErrBadPassword  = errors.New("repository: bad password")
	ErrEmptyName    = errors.New("repository: empty user name")
	ErrBadDomain    = errors.New("repository: invalid access domain")
	ErrEmptySecret  = errors.New("repository: empty password")
	ErrBadPriority  = errors.New("repository: priority must be non-negative")
	ErrNotPersisted = errors.New("repository: no path configured")
)

func validDomain(d AccessDomain) bool {
	switch d {
	case DomainLocal, DomainCampus, DomainGlobal:
		return true
	}
	return false
}

func hashPassword(salt, password string) string {
	h := sha256.Sum256([]byte(salt + ":" + password))
	return hex.EncodeToString(h[:])
}

func newSalt() string {
	b := make([]byte, 16)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failure is unrecoverable for account creation.
		panic(fmt.Sprintf("repository: crypto/rand: %v", err))
	}
	return hex.EncodeToString(b)
}

// AddUser creates an account and returns its assigned user ID.
func (db *UserAccountsDB) AddUser(name, password string, priority int, domain AccessDomain) (int, error) {
	if name == "" {
		return 0, ErrEmptyName
	}
	if password == "" {
		return 0, ErrEmptySecret
	}
	if priority < 0 {
		return 0, ErrBadPriority
	}
	if !validDomain(domain) {
		return 0, ErrBadDomain
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.users[name]; ok {
		return 0, ErrUserExists
	}
	salt := newSalt()
	acct := &UserAccount{
		Name:         name,
		Salt:         salt,
		PasswordHash: hashPassword(salt, password),
		UserID:       db.nextID,
		Priority:     priority,
		Domain:       domain,
	}
	db.nextID++
	db.users[name] = acct
	return acct.UserID, nil
}

// Authenticate verifies the password and returns a copy of the account.
func (db *UserAccountsDB) Authenticate(name, password string) (UserAccount, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	acct, ok := db.users[name]
	if !ok {
		return UserAccount{}, ErrUnknownUser
	}
	want := []byte(acct.PasswordHash)
	got := []byte(hashPassword(acct.Salt, password))
	if subtle.ConstantTimeCompare(want, got) != 1 {
		return UserAccount{}, ErrBadPassword
	}
	return *acct, nil
}

// Lookup returns a copy of the named account without authenticating.
func (db *UserAccountsDB) Lookup(name string) (UserAccount, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	acct, ok := db.users[name]
	if !ok {
		return UserAccount{}, ErrUnknownUser
	}
	return *acct, nil
}

// RemoveUser deletes the named account.
func (db *UserAccountsDB) RemoveUser(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.users[name]; !ok {
		return ErrUnknownUser
	}
	delete(db.users, name)
	return nil
}

// Users returns all accounts sorted by name (copies).
func (db *UserAccountsDB) Users() []UserAccount {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]UserAccount, 0, len(db.users))
	for _, a := range db.users {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// snapshot/restore support persistence.
func (db *UserAccountsDB) snapshot() ([]UserAccount, int) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]UserAccount, 0, len(db.users))
	for _, a := range db.users {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UserID < out[j].UserID })
	return out, db.nextID
}

func (db *UserAccountsDB) restore(users []UserAccount, nextID int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.users = make(map[string]*UserAccount, len(users))
	for i := range users {
		u := users[i]
		db.users[u.Name] = &u
	}
	db.nextID = nextID
	if db.nextID < 1 {
		db.nextID = 1
	}
}
