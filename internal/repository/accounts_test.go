package repository

import (
	"errors"
	"sync"
	"testing"
)

func TestAddAndAuthenticate(t *testing.T) {
	db := NewUserAccountsDB()
	id, err := db.AddUser("user_k", "secret", 5, DomainCampus)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("first user ID = %d, want 1", id)
	}
	acct, err := db.Authenticate("user_k", "secret")
	if err != nil {
		t.Fatal(err)
	}
	if acct.Priority != 5 || acct.Domain != DomainCampus || acct.UserID != 1 {
		t.Fatalf("account fields wrong: %+v", acct)
	}
	if acct.PasswordHash == "secret" {
		t.Fatal("password stored in clear")
	}
	if _, err := db.Authenticate("user_k", "wrong"); !errors.Is(err, ErrBadPassword) {
		t.Fatalf("wrong password: got %v", err)
	}
	if _, err := db.Authenticate("nobody", "x"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("unknown user: got %v", err)
	}
}

func TestAddUserValidation(t *testing.T) {
	db := NewUserAccountsDB()
	if _, err := db.AddUser("", "p", 0, DomainLocal); !errors.Is(err, ErrEmptyName) {
		t.Fatalf("empty name: %v", err)
	}
	if _, err := db.AddUser("u", "", 0, DomainLocal); !errors.Is(err, ErrEmptySecret) {
		t.Fatalf("empty password: %v", err)
	}
	if _, err := db.AddUser("u", "p", -1, DomainLocal); !errors.Is(err, ErrBadPriority) {
		t.Fatalf("bad priority: %v", err)
	}
	if _, err := db.AddUser("u", "p", 0, "galactic"); !errors.Is(err, ErrBadDomain) {
		t.Fatalf("bad domain: %v", err)
	}
	if _, err := db.AddUser("u", "p", 0, DomainLocal); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddUser("u", "p2", 0, DomainLocal); !errors.Is(err, ErrUserExists) {
		t.Fatalf("duplicate: %v", err)
	}
}

func TestUserIDsIncrease(t *testing.T) {
	db := NewUserAccountsDB()
	for i := 1; i <= 4; i++ {
		id, err := db.AddUser(string(rune('a'+i)), "p", 0, DomainGlobal)
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Fatalf("ID %d, want %d", id, i)
		}
	}
}

func TestRemoveAndLookup(t *testing.T) {
	db := NewUserAccountsDB()
	if _, err := db.AddUser("u", "p", 0, DomainLocal); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Lookup("u"); err != nil {
		t.Fatal(err)
	}
	if err := db.RemoveUser("u"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Lookup("u"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("after remove: %v", err)
	}
	if err := db.RemoveUser("u"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestUsersSorted(t *testing.T) {
	db := NewUserAccountsDB()
	for _, n := range []string{"zoe", "ann", "mid"} {
		if _, err := db.AddUser(n, "p", 0, DomainLocal); err != nil {
			t.Fatal(err)
		}
	}
	users := db.Users()
	if len(users) != 3 || users[0].Name != "ann" || users[2].Name != "zoe" {
		t.Fatalf("Users() = %v", users)
	}
}

func TestAccountsConcurrent(t *testing.T) {
	db := NewUserAccountsDB()
	if _, err := db.AddUser("shared", "pw", 1, DomainGlobal); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := db.Authenticate("shared", "pw"); err != nil {
					t.Errorf("auth: %v", err)
					return
				}
				_, _ = db.AddUser("shared", "pw", 1, DomainGlobal) // expected to fail
				_ = db.Users()
			}
		}(i)
	}
	wg.Wait()
}

func TestSaltsDiffer(t *testing.T) {
	db := NewUserAccountsDB()
	if _, err := db.AddUser("a", "same", 0, DomainLocal); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddUser("b", "same", 0, DomainLocal); err != nil {
		t.Fatal(err)
	}
	ua, _ := db.Lookup("a")
	ub, _ := db.Lookup("b")
	if ua.Salt == ub.Salt || ua.PasswordHash == ub.PasswordHash {
		t.Fatal("same password should salt to different hashes")
	}
}
