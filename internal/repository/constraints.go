package repository

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ConstraintsDB is the task-constraints database: the location (absolute
// path of the task executable) of each task on each host. A task can run
// on a host only if a location is registered there.
type ConstraintsDB struct {
	mu sync.RWMutex
	// gen counts writes, so cached derivations (ranked-host lists)
	// invalidate when the installed-task map changes.
	gen atomic.Uint64
	// locations[task][host] = absolute executable path
	locations map[string]map[string]string
}

// Generation returns the write counter; it changes whenever a location
// is added or removed.
func (db *ConstraintsDB) Generation() uint64 { return db.gen.Load() }

// NewConstraintsDB returns an empty constraints database.
func NewConstraintsDB() *ConstraintsDB {
	return &ConstraintsDB{locations: make(map[string]map[string]string)}
}

// ErrNoLocation is returned when a task has no executable on a host.
var ErrNoLocation = errors.New("repository: no executable location")

// SetLocation registers the executable path of task on host.
func (db *ConstraintsDB) SetLocation(task, host, path string) error {
	if task == "" || host == "" || path == "" {
		return errors.New("repository: SetLocation requires task, host, and path")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	m, ok := db.locations[task]
	if !ok {
		m = make(map[string]string)
		db.locations[task] = m
	}
	m[host] = path
	db.gen.Add(1)
	return nil
}

// Location returns the executable path of task on host.
func (db *ConstraintsDB) Location(task, host string) (string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if p, ok := db.locations[task][host]; ok {
		return p, nil
	}
	return "", fmt.Errorf("%w: task %s on host %s", ErrNoLocation, task, host)
}

// HasTask reports whether host can run task.
func (db *ConstraintsDB) HasTask(task, host string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.locations[task][host]
	return ok
}

// HostsWithTask returns the hosts where task is installed, sorted.
func (db *ConstraintsDB) HostsWithTask(task string) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	m := db.locations[task]
	out := make([]string, 0, len(m))
	for h := range m {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// RemoveHost drops every location on the given host (host
// decommissioned).
func (db *ConstraintsDB) RemoveHost(host string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, m := range db.locations {
		delete(m, host)
	}
	db.gen.Add(1)
}

// InstallEverywhere registers task at path on every listed host — a
// convenience for testbed setup.
func (db *ConstraintsDB) InstallEverywhere(task, path string, hosts []string) error {
	for _, h := range hosts {
		if err := db.SetLocation(task, h, path); err != nil {
			return err
		}
	}
	return nil
}

// constraintRow is the serialized form.
type constraintRow struct {
	Task string `json:"task"`
	Host string `json:"host"`
	Path string `json:"path"`
}

func (db *ConstraintsDB) snapshot() []constraintRow {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []constraintRow
	for task, m := range db.locations {
		for host, path := range m {
			out = append(out, constraintRow{Task: task, Host: host, Path: path})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Task != out[j].Task {
			return out[i].Task < out[j].Task
		}
		return out[i].Host < out[j].Host
	})
	return out
}

func (db *ConstraintsDB) restore(rows []constraintRow) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.locations = make(map[string]map[string]string)
	for _, r := range rows {
		m, ok := db.locations[r.Task]
		if !ok {
			m = make(map[string]string)
			db.locations[r.Task] = m
		}
		m[r.Host] = r.Path
	}
	db.gen.Add(1)
}
