package repository

import (
	"encoding/json"
	"fmt"
	"os"
)

// Repository bundles one site's four databases, matching the paper's
// "each site has a site repository for storing user-accounts information,
// task and resource parameters that are used by the scheduler".
type Repository struct {
	Site        string
	Users       *UserAccountsDB
	Resources   *ResourceDB
	TaskPerf    *TaskPerfDB
	Constraints *ConstraintsDB
}

// New returns an empty repository for the named site.
func New(site string) *Repository {
	return &Repository{
		Site:        site,
		Users:       NewUserAccountsDB(),
		Resources:   NewResourceDB(),
		TaskPerf:    NewTaskPerfDB(),
		Constraints: NewConstraintsDB(),
	}
}

// persisted is the on-disk JSON layout.
type persisted struct {
	Site        string             `json:"site"`
	Users       []UserAccount      `json:"users"`
	NextUserID  int                `json:"next_user_id"`
	Hosts       []ResourceInfo     `json:"hosts"`
	Tasks       []taskPerfSnapshot `json:"tasks"`
	Constraints []constraintRow    `json:"constraints"`
}

// MarshalJSON serializes the whole repository.
func (r *Repository) MarshalJSON() ([]byte, error) {
	users, next := r.Users.snapshot()
	p := persisted{
		Site:        r.Site,
		Users:       users,
		NextUserID:  next,
		Hosts:       r.Resources.snapshot(),
		Tasks:       r.TaskPerf.snapshot(),
		Constraints: r.Constraints.snapshot(),
	}
	return json.MarshalIndent(p, "", "  ")
}

// UnmarshalJSON restores a repository serialized by MarshalJSON.
func (r *Repository) UnmarshalJSON(data []byte) error {
	var p persisted
	if err := json.Unmarshal(data, &p); err != nil {
		return fmt.Errorf("repository: decode: %w", err)
	}
	r.Site = p.Site
	if r.Users == nil {
		r.Users = NewUserAccountsDB()
	}
	if r.Resources == nil {
		r.Resources = NewResourceDB()
	}
	if r.TaskPerf == nil {
		r.TaskPerf = NewTaskPerfDB()
	}
	if r.Constraints == nil {
		r.Constraints = NewConstraintsDB()
	}
	r.Users.restore(p.Users, p.NextUserID)
	r.Resources.restore(p.Hosts)
	r.TaskPerf.restore(p.Tasks)
	r.Constraints.restore(p.Constraints)
	return nil
}

// SaveFile writes the repository to path as JSON.
func (r *Repository) SaveFile(path string) error {
	data, err := r.MarshalJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadFile reads a repository previously written by SaveFile.
func LoadFile(path string) (*Repository, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := New("")
	if err := r.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return r, nil
}
