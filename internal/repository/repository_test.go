package repository

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestConstraints(t *testing.T) {
	db := NewConstraintsDB()
	if err := db.SetLocation("lu", "h1", "/opt/vdce/bin/lu"); err != nil {
		t.Fatal(err)
	}
	if err := db.SetLocation("lu", "h2", "/usr/local/bin/lu"); err != nil {
		t.Fatal(err)
	}
	p, err := db.Location("lu", "h1")
	if err != nil || p != "/opt/vdce/bin/lu" {
		t.Fatalf("Location = %q, %v", p, err)
	}
	if _, err := db.Location("lu", "h3"); !errors.Is(err, ErrNoLocation) {
		t.Fatalf("missing location: %v", err)
	}
	if !db.HasTask("lu", "h2") || db.HasTask("lu", "h3") || db.HasTask("nope", "h1") {
		t.Fatal("HasTask wrong")
	}
	hs := db.HostsWithTask("lu")
	if len(hs) != 2 || hs[0] != "h1" || hs[1] != "h2" {
		t.Fatalf("HostsWithTask = %v", hs)
	}
	db.RemoveHost("h1")
	if db.HasTask("lu", "h1") {
		t.Fatal("RemoveHost did not drop location")
	}
	if err := db.SetLocation("", "h", "p"); err == nil {
		t.Fatal("empty task accepted")
	}
	if err := db.InstallEverywhere("mm", "/bin/mm", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if !db.HasTask("mm", "a") || !db.HasTask("mm", "b") {
		t.Fatal("InstallEverywhere incomplete")
	}
	if err := db.InstallEverywhere("mm", "", []string{"a"}); err == nil {
		t.Fatal("empty path accepted")
	}
}

func TestRepositoryRoundTrip(t *testing.T) {
	r := New("site-1")
	if _, err := r.Users.AddUser("user_k", "pw", 3, DomainGlobal); err != nil {
		t.Fatal(err)
	}
	if err := r.Resources.AddHost(host("serval.cal.syr.edu", "site-1", "g1")); err != nil {
		t.Fatal(err)
	}
	if err := r.Resources.UpdateWorkload("serval.cal.syr.edu",
		WorkloadSample{CPULoad: 0.25, AvailMemBytes: 1 << 20, Time: time.Unix(5000, 0).UTC()}); err != nil {
		t.Fatal(err)
	}
	if err := r.TaskPerf.RegisterTask(TaskParams{Name: "lu", BaseTime: time.Second, ComputationOps: 1e6}); err != nil {
		t.Fatal(err)
	}
	if err := r.TaskPerf.RecordExecution("lu", "serval.cal.syr.edu", 900*time.Millisecond, time.Unix(6000, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	if err := r.Constraints.SetLocation("lu", "serval.cal.syr.edu", "/opt/lu"); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "repo.json")
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Site != "site-1" {
		t.Fatalf("site = %q", back.Site)
	}
	if _, err := back.Users.Authenticate("user_k", "pw"); err != nil {
		t.Fatalf("auth after reload: %v", err)
	}
	// New users must not collide with restored IDs.
	id, err := back.Users.AddUser("new", "pw", 0, DomainLocal)
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Fatalf("post-restore ID = %d, want 2", id)
	}
	h, err := back.Resources.Host("serval.cal.syr.edu")
	if err != nil {
		t.Fatal(err)
	}
	if h.CPULoad != 0.25 || len(h.RecentLoads) != 1 {
		t.Fatalf("resource state lost: %+v", h)
	}
	if d, ok := back.TaskPerf.MeasuredTime("lu", "serval.cal.syr.edu"); !ok || d != 900*time.Millisecond {
		t.Fatalf("taskperf lost: %v %v", d, ok)
	}
	if p, err := back.Constraints.Location("lu", "serval.cal.syr.edu"); err != nil || p != "/opt/lu" {
		t.Fatalf("constraints lost: %q %v", p, err)
	}
}

func TestLoadFileErrors(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); err == nil {
		t.Fatal("corrupt file accepted")
	}
}
