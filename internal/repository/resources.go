package repository

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// HostStatus is the availability state the Resource Controller maintains.
type HostStatus string

const (
	// HostUp means the host answers echo packets.
	HostUp HostStatus = "up"
	// HostDown means the Group Manager detected a failure; the paper says
	// the host "is then marked as down at the site's
	// resource-performance database".
	HostDown HostStatus = "down"
)

// WorkloadSample is one monitor measurement of a host.
type WorkloadSample struct {
	// CPULoad is the fraction of CPU consumed by other work, in [0, 1).
	CPULoad float64 `json:"cpu_load"`
	// AvailMemBytes is currently available memory.
	AvailMemBytes int64 `json:"avail_mem_bytes"`
	// Time is when the sample was taken.
	Time time.Time `json:"time"`
}

// ResourceInfo carries the paper's resource-performance attributes: host
// name, IP address, architecture type, OS type, total memory, recent
// workload measurements, and available memory — plus site/group placement
// and a relative speed factor used by performance prediction.
type ResourceInfo struct {
	HostName    string           `json:"host_name"`
	IPAddress   string           `json:"ip_address"`
	ArchType    string           `json:"arch_type"`
	OSType      string           `json:"os_type"`
	TotalMem    int64            `json:"total_mem_bytes"`
	AvailMem    int64            `json:"avail_mem_bytes"`
	Site        string           `json:"site"`
	Group       string           `json:"group"`
	SpeedFactor float64          `json:"speed_factor"` // relative to the base processor (1.0)
	Status      HostStatus       `json:"status"`
	CPULoad     float64          `json:"cpu_load"`
	LastSeen    time.Time        `json:"last_seen"`
	RecentLoads []WorkloadSample `json:"recent_loads,omitempty"`
}

// MachineType is the editor-facing "machine type" label for preference
// matching: "<arch> <os>", e.g. "SUN Solaris".
func (r *ResourceInfo) MachineType() string {
	return r.ArchType + " " + r.OSType
}

// View returns the slim scheduling-path view of the record.
func (r *ResourceInfo) View() HostView {
	return HostView{
		HostName:    r.HostName,
		IPAddress:   r.IPAddress,
		ArchType:    r.ArchType,
		OSType:      r.OSType,
		TotalMem:    r.TotalMem,
		AvailMem:    r.AvailMem,
		Site:        r.Site,
		Group:       r.Group,
		SpeedFactor: r.SpeedFactor,
		Status:      r.Status,
		CPULoad:     r.CPULoad,
		LastSeen:    r.LastSeen,
	}
}

// HostView is the slim, history-free view of a host record: every field
// the prediction model and the host-selection algorithm read, without the
// RecentLoads ring. Views are plain values; the scheduling path copies
// them freely without touching the heap.
type HostView struct {
	HostName    string
	IPAddress   string
	ArchType    string
	OSType      string
	TotalMem    int64
	AvailMem    int64
	Site        string
	Group       string
	SpeedFactor float64
	Status      HostStatus
	CPULoad     float64
	LastSeen    time.Time
}

// MachineType mirrors ResourceInfo.MachineType for preference matching.
func (v HostView) MachineType() string {
	return v.ArchType + " " + v.OSType
}

// maxRecent bounds the per-host workload history ring.
const maxRecent = 32

// hostEpoch is one immutable copy-on-write snapshot of the database.
// Records and the derived slices are frozen once the epoch is published;
// readers share them without locking or cloning.
type hostEpoch struct {
	gen    uint64
	byName map[string]*ResourceInfo // records never mutate after publish
	views  []HostView               // all hosts, name-sorted
	up     []HostView               // up hosts, name-sorted
	groups []string                 // distinct group names, sorted
}

// ResourceDB is the resource-performance database of one site. Writers
// build a fresh epoch under a mutex and publish it atomically; readers
// are lock-free pointer loads against the last published epoch.
type ResourceDB struct {
	wmu   sync.Mutex // serializes writers only
	epoch atomic.Pointer[hostEpoch]
}

// NewResourceDB returns an empty resource database.
func NewResourceDB() *ResourceDB {
	db := &ResourceDB{}
	db.epoch.Store(buildHostEpoch(0, map[string]*ResourceInfo{}))
	return db
}

// buildHostEpoch derives the read-optimized slices from the record map.
func buildHostEpoch(gen uint64, byName map[string]*ResourceInfo) *hostEpoch {
	e := &hostEpoch{gen: gen, byName: byName}
	e.views = make([]HostView, 0, len(byName))
	groupSet := make(map[string]bool)
	for _, h := range byName {
		e.views = append(e.views, h.View())
		groupSet[h.Group] = true
	}
	slices.SortFunc(e.views, func(a, b HostView) int { return strings.Compare(a.HostName, b.HostName) })
	e.up = make([]HostView, 0, len(e.views))
	for _, v := range e.views {
		if v.Status == HostUp {
			e.up = append(e.up, v)
		}
	}
	e.groups = make([]string, 0, len(groupSet))
	for g := range groupSet {
		e.groups = append(e.groups, g)
	}
	sort.Strings(e.groups)
	return e
}

// nextHostEpoch builds the epoch following cur for record map m. Writes
// that keep the host set intact (workload updates, status flips — the
// monitor hot path) reuse cur's name order and group list, skipping the
// sort; membership changes fall back to the full rebuild.
func nextHostEpoch(cur *hostEpoch, gen uint64, m map[string]*ResourceInfo) *hostEpoch {
	if len(m) != len(cur.byName) {
		return buildHostEpoch(gen, m)
	}
	views := make([]HostView, len(cur.views))
	for i, v := range cur.views {
		h, ok := m[v.HostName]
		if !ok {
			return buildHostEpoch(gen, m) // renamed/replaced membership
		}
		views[i] = h.View()
	}
	e := &hostEpoch{gen: gen, byName: m, views: views, groups: cur.groups}
	e.up = make([]HostView, 0, len(views))
	for _, v := range views {
		if v.Status == HostUp {
			e.up = append(e.up, v)
		}
	}
	return e
}

// errNoChange aborts an epoch publish without error: f applied nothing,
// so the current epoch (and its generation) stays in place and cached
// derivations remain valid.
var errNoChange = errors.New("repository: no change")

// mutate runs f over a private copy of the record map and publishes the
// result as a new epoch. f must replace (not modify) any record it
// changes: records already in the map belong to prior epochs.
func (db *ResourceDB) mutate(f func(m map[string]*ResourceInfo) error) error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	cur := db.epoch.Load()
	m := make(map[string]*ResourceInfo, len(cur.byName)+1)
	for k, v := range cur.byName {
		m[k] = v
	}
	if err := f(m); err != nil {
		if errors.Is(err, errNoChange) {
			return nil
		}
		return err
	}
	db.epoch.Store(nextHostEpoch(cur, cur.gen+1, m))
	return nil
}

// Generation returns the current epoch number. It increases on every
// successful write (AddHost, UpdateWorkload, SetStatus, RemoveHost,
// batch updates, restore), so an unchanged generation guarantees an
// unchanged host catalog.
func (db *ResourceDB) Generation() uint64 {
	return db.epoch.Load().gen
}

// Errors returned by resource operations.
var (
	ErrUnknownHost = errors.New("repository: unknown host")
	ErrHostExists  = errors.New("repository: host already registered")
)

// AddHost registers a host. SpeedFactor defaults to 1 and status to up.
func (db *ResourceDB) AddHost(info ResourceInfo) error {
	if info.HostName == "" {
		return errors.New("repository: empty host name")
	}
	if info.SpeedFactor <= 0 {
		info.SpeedFactor = 1
	}
	if info.Status == "" {
		info.Status = HostUp
	}
	if info.AvailMem == 0 {
		info.AvailMem = info.TotalMem
	}
	return db.mutate(func(m map[string]*ResourceInfo) error {
		if _, ok := m[info.HostName]; ok {
			return fmt.Errorf("%w: %s", ErrHostExists, info.HostName)
		}
		c := cloneResource(&info) // private RecentLoads backing
		m[info.HostName] = &c
		return nil
	})
}

// withSample returns a fresh record extending h with one measurement.
// The history ring is a shared-tail chronicle: every epoch's record
// views a window [k:L] of one backing array, and new samples append at
// the global tail L — an address no older window covers — so the append
// is invisible to prior epochs. Only when capacity runs out does append
// copy the ≤maxRecent window into fresh backing, making ring growth
// amortized O(1) per monitor write instead of O(maxRecent). Writers are
// serialized by the database mutex, so the tail has a single appender.
func withSample(h *ResourceInfo, s WorkloadSample) *ResourceInfo {
	c := *h
	c.CPULoad = s.CPULoad
	c.AvailMem = s.AvailMemBytes
	c.LastSeen = s.Time
	ring := append(h.RecentLoads, s)
	if len(ring) > maxRecent {
		ring = ring[len(ring)-maxRecent:]
	}
	c.RecentLoads = ring
	return &c
}

// UpdateWorkload records a monitor sample for the host, updating the
// current load/memory fields and the bounded history ring.
func (db *ResourceDB) UpdateWorkload(host string, s WorkloadSample) error {
	return db.mutate(func(m map[string]*ResourceInfo) error {
		h, ok := m[host]
		if !ok {
			return fmt.Errorf("%w: %s", ErrUnknownHost, host)
		}
		m[host] = withSample(h, s)
		return nil
	})
}

// HostSample pairs a host with one monitor measurement, for batch writes.
type HostSample struct {
	Host   string
	Sample WorkloadSample
}

// UpdateWorkloads applies a whole monitor batch in one epoch publish —
// the Group Manager write path. Samples for known hosts are always
// applied; unknown hosts (a Group Manager whose membership is stale
// after a RemoveHost) are skipped and reported, so one dead entry can
// never starve the rest of the group of monitor data. It returns how
// many samples were applied alongside any unknown-host error.
func (db *ResourceDB) UpdateWorkloads(batch []HostSample) (int, error) {
	updates := make([]RoundUpdate, len(batch))
	for i := range batch {
		updates[i] = RoundUpdate{Host: batch[i].Host, Sample: &batch[i].Sample}
	}
	return db.ApplyRound(updates)
}

// RoundUpdate is one host's entry in a full monitor round: a status and
// an optional measurement.
type RoundUpdate struct {
	Host   string
	Status HostStatus // "" leaves the status unchanged
	Sample *WorkloadSample
}

// ApplyRound applies one synchronous monitor round — statuses and
// samples for many hosts — as a single epoch publish, so a whole refresh
// costs one generation bump instead of one per host. Known hosts are
// always applied; unknown ones are skipped and reported. A round that
// applies nothing publishes no epoch (the generation does not move, so
// cached rankings stay valid). Returns the applied-update count.
func (db *ResourceDB) ApplyRound(updates []RoundUpdate) (int, error) {
	if len(updates) == 0 {
		return 0, nil
	}
	var unknown []string
	applied := 0
	err := db.mutate(func(m map[string]*ResourceInfo) error {
		for _, u := range updates {
			h, ok := m[u.Host]
			if !ok {
				unknown = append(unknown, u.Host)
				continue
			}
			// A status-only update that matches the current status is a
			// no-op: applying it would publish an epoch and invalidate
			// every cached ranking for nothing. A sample always applies
			// (it refreshes LastSeen even at an identical load).
			if u.Sample == nil && (u.Status == "" || u.Status == h.Status) {
				continue
			}
			if u.Sample != nil {
				h = withSample(h, *u.Sample)
			} else {
				c := *h
				h = &c
			}
			if u.Status != "" {
				h.Status = u.Status
			}
			m[u.Host] = h
			applied++
		}
		if applied == 0 {
			return errNoChange
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if len(unknown) > 0 {
		return applied, fmt.Errorf("%w: %s", ErrUnknownHost, strings.Join(unknown, ", "))
	}
	return applied, nil
}

// SetStatus marks a host up or down (failure detection outcome).
func (db *ResourceDB) SetStatus(host string, st HostStatus) error {
	return db.mutate(func(m map[string]*ResourceInfo) error {
		h, ok := m[host]
		if !ok {
			return fmt.Errorf("%w: %s", ErrUnknownHost, host)
		}
		c := *h // RecentLoads backing is shared; both records are frozen
		c.Status = st
		m[host] = &c
		return nil
	})
}

// Host returns a full-fidelity copy of the named host's record,
// including the workload history ring. Scheduling-path callers that
// never read history should use View instead.
func (db *ResourceDB) Host(name string) (ResourceInfo, error) {
	h, ok := db.epoch.Load().byName[name]
	if !ok {
		return ResourceInfo{}, fmt.Errorf("%w: %s", ErrUnknownHost, name)
	}
	return cloneResource(h), nil
}

// View returns the slim view of the named host without cloning history.
func (db *ResourceDB) View(name string) (HostView, bool) {
	h, ok := db.epoch.Load().byName[name]
	if !ok {
		return HostView{}, false
	}
	return h.View(), true
}

// Hosts returns full-fidelity copies of all host records sorted by name
// — the explicit history accessor (persistence, the resources RPC/HTTP
// endpoint). The scheduling path reads Views instead.
func (db *ResourceDB) Hosts() []ResourceInfo {
	e := db.epoch.Load()
	out := make([]ResourceInfo, 0, len(e.views))
	for _, v := range e.views {
		out = append(out, cloneResource(e.byName[v.HostName]))
	}
	return out
}

// UpHosts returns full copies of all hosts currently marked up, sorted
// by name.
func (db *ResourceDB) UpHosts() []ResourceInfo {
	e := db.epoch.Load()
	out := make([]ResourceInfo, 0, len(e.up))
	for _, v := range e.up {
		out = append(out, cloneResource(e.byName[v.HostName]))
	}
	return out
}

// Views returns the slim views of all hosts sorted by name. The slice is
// shared with the current epoch: callers must not modify it.
func (db *ResourceDB) Views() []HostView {
	return db.epoch.Load().views
}

// GroupHosts returns the up hosts in the given group, sorted by name.
func (db *ResourceDB) GroupHosts(group string) []ResourceInfo {
	e := db.epoch.Load()
	var out []ResourceInfo
	for _, v := range e.up {
		if v.Group == group {
			out = append(out, cloneResource(e.byName[v.HostName]))
		}
	}
	return out
}

// Groups returns the distinct group names, sorted. The slice is shared
// with the current epoch: callers must not modify it.
func (db *ResourceDB) Groups() []string {
	return db.epoch.Load().groups
}

// RemoveHost deletes a host record.
func (db *ResourceDB) RemoveHost(name string) error {
	return db.mutate(func(m map[string]*ResourceInfo) error {
		if _, ok := m[name]; !ok {
			return fmt.Errorf("%w: %s", ErrUnknownHost, name)
		}
		delete(m, name)
		return nil
	})
}

func cloneResource(h *ResourceInfo) ResourceInfo {
	c := *h
	c.RecentLoads = append([]WorkloadSample(nil), h.RecentLoads...)
	return c
}

func (db *ResourceDB) snapshot() []ResourceInfo {
	return db.Hosts()
}

func (db *ResourceDB) restore(hosts []ResourceInfo) {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	cur := db.epoch.Load()
	m := make(map[string]*ResourceInfo, len(hosts))
	for i := range hosts {
		h := cloneResource(&hosts[i])
		m[h.HostName] = &h
	}
	db.epoch.Store(buildHostEpoch(cur.gen+1, m))
}
