package repository

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// HostStatus is the availability state the Resource Controller maintains.
type HostStatus string

const (
	// HostUp means the host answers echo packets.
	HostUp HostStatus = "up"
	// HostDown means the Group Manager detected a failure; the paper says
	// the host "is then marked as down at the site's
	// resource-performance database".
	HostDown HostStatus = "down"
)

// WorkloadSample is one monitor measurement of a host.
type WorkloadSample struct {
	// CPULoad is the fraction of CPU consumed by other work, in [0, 1).
	CPULoad float64 `json:"cpu_load"`
	// AvailMemBytes is currently available memory.
	AvailMemBytes int64 `json:"avail_mem_bytes"`
	// Time is when the sample was taken.
	Time time.Time `json:"time"`
}

// ResourceInfo carries the paper's resource-performance attributes: host
// name, IP address, architecture type, OS type, total memory, recent
// workload measurements, and available memory — plus site/group placement
// and a relative speed factor used by performance prediction.
type ResourceInfo struct {
	HostName    string           `json:"host_name"`
	IPAddress   string           `json:"ip_address"`
	ArchType    string           `json:"arch_type"`
	OSType      string           `json:"os_type"`
	TotalMem    int64            `json:"total_mem_bytes"`
	AvailMem    int64            `json:"avail_mem_bytes"`
	Site        string           `json:"site"`
	Group       string           `json:"group"`
	SpeedFactor float64          `json:"speed_factor"` // relative to the base processor (1.0)
	Status      HostStatus       `json:"status"`
	CPULoad     float64          `json:"cpu_load"`
	LastSeen    time.Time        `json:"last_seen"`
	RecentLoads []WorkloadSample `json:"recent_loads,omitempty"`
}

// MachineType is the editor-facing "machine type" label for preference
// matching: "<arch> <os>", e.g. "SUN Solaris".
func (r *ResourceInfo) MachineType() string {
	return r.ArchType + " " + r.OSType
}

// maxRecent bounds the per-host workload history ring.
const maxRecent = 32

// ResourceDB is the resource-performance database of one site.
type ResourceDB struct {
	mu    sync.RWMutex
	hosts map[string]*ResourceInfo
}

// NewResourceDB returns an empty resource database.
func NewResourceDB() *ResourceDB {
	return &ResourceDB{hosts: make(map[string]*ResourceInfo)}
}

// Errors returned by resource operations.
var (
	ErrUnknownHost = errors.New("repository: unknown host")
	ErrHostExists  = errors.New("repository: host already registered")
)

// AddHost registers a host. SpeedFactor defaults to 1 and status to up.
func (db *ResourceDB) AddHost(info ResourceInfo) error {
	if info.HostName == "" {
		return errors.New("repository: empty host name")
	}
	if info.SpeedFactor <= 0 {
		info.SpeedFactor = 1
	}
	if info.Status == "" {
		info.Status = HostUp
	}
	if info.AvailMem == 0 {
		info.AvailMem = info.TotalMem
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.hosts[info.HostName]; ok {
		return fmt.Errorf("%w: %s", ErrHostExists, info.HostName)
	}
	c := info
	db.hosts[info.HostName] = &c
	return nil
}

// UpdateWorkload records a monitor sample for the host, updating the
// current load/memory fields and the bounded history ring.
func (db *ResourceDB) UpdateWorkload(host string, s WorkloadSample) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	h, ok := db.hosts[host]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownHost, host)
	}
	h.CPULoad = s.CPULoad
	h.AvailMem = s.AvailMemBytes
	h.LastSeen = s.Time
	h.RecentLoads = append(h.RecentLoads, s)
	if len(h.RecentLoads) > maxRecent {
		h.RecentLoads = h.RecentLoads[len(h.RecentLoads)-maxRecent:]
	}
	return nil
}

// SetStatus marks a host up or down (failure detection outcome).
func (db *ResourceDB) SetStatus(host string, st HostStatus) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	h, ok := db.hosts[host]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownHost, host)
	}
	h.Status = st
	return nil
}

// Host returns a copy of the named host's record.
func (db *ResourceDB) Host(name string) (ResourceInfo, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	h, ok := db.hosts[name]
	if !ok {
		return ResourceInfo{}, fmt.Errorf("%w: %s", ErrUnknownHost, name)
	}
	return cloneResource(h), nil
}

// Hosts returns copies of all host records sorted by name.
func (db *ResourceDB) Hosts() []ResourceInfo {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]ResourceInfo, 0, len(db.hosts))
	for _, h := range db.hosts {
		out = append(out, cloneResource(h))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].HostName < out[j].HostName })
	return out
}

// UpHosts returns copies of all hosts currently marked up, sorted by name.
func (db *ResourceDB) UpHosts() []ResourceInfo {
	all := db.Hosts()
	out := all[:0]
	for _, h := range all {
		if h.Status == HostUp {
			out = append(out, h)
		}
	}
	return out
}

// GroupHosts returns the up hosts in the given group, sorted by name.
func (db *ResourceDB) GroupHosts(group string) []ResourceInfo {
	all := db.UpHosts()
	out := all[:0]
	for _, h := range all {
		if h.Group == group {
			out = append(out, h)
		}
	}
	return out
}

// Groups returns the distinct group names, sorted.
func (db *ResourceDB) Groups() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	set := make(map[string]bool)
	for _, h := range db.hosts {
		set[h.Group] = true
	}
	out := make([]string, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// RemoveHost deletes a host record.
func (db *ResourceDB) RemoveHost(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.hosts[name]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownHost, name)
	}
	delete(db.hosts, name)
	return nil
}

func cloneResource(h *ResourceInfo) ResourceInfo {
	c := *h
	c.RecentLoads = append([]WorkloadSample(nil), h.RecentLoads...)
	return c
}

func (db *ResourceDB) snapshot() []ResourceInfo {
	return db.Hosts()
}

func (db *ResourceDB) restore(hosts []ResourceInfo) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.hosts = make(map[string]*ResourceInfo, len(hosts))
	for i := range hosts {
		h := hosts[i]
		h.RecentLoads = append([]WorkloadSample(nil), hosts[i].RecentLoads...)
		db.hosts[h.HostName] = &h
	}
}
