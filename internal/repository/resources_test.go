package repository

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func host(name, site, group string) ResourceInfo {
	return ResourceInfo{
		HostName: name, IPAddress: "10.0.0.1", ArchType: "SUN", OSType: "Solaris",
		TotalMem: 1 << 28, Site: site, Group: group, SpeedFactor: 1.5,
	}
}

func TestAddHostDefaults(t *testing.T) {
	db := NewResourceDB()
	if err := db.AddHost(ResourceInfo{HostName: "h1", TotalMem: 100}); err != nil {
		t.Fatal(err)
	}
	h, err := db.Host("h1")
	if err != nil {
		t.Fatal(err)
	}
	if h.SpeedFactor != 1 || h.Status != HostUp || h.AvailMem != 100 {
		t.Fatalf("defaults wrong: %+v", h)
	}
	if err := db.AddHost(ResourceInfo{}); err == nil {
		t.Fatal("empty host name accepted")
	}
	if err := db.AddHost(ResourceInfo{HostName: "h1"}); !errors.Is(err, ErrHostExists) {
		t.Fatalf("duplicate: %v", err)
	}
}

func TestMachineType(t *testing.T) {
	h := host("x", "s", "g")
	if h.MachineType() != "SUN Solaris" {
		t.Fatalf("MachineType = %q", h.MachineType())
	}
}

func TestUpdateWorkloadAndRing(t *testing.T) {
	db := NewResourceDB()
	if err := db.AddHost(host("h1", "s1", "g1")); err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1000, 0)
	for i := 0; i < maxRecent+10; i++ {
		s := WorkloadSample{CPULoad: float64(i) / 100, AvailMemBytes: int64(i), Time: base.Add(time.Duration(i) * time.Second)}
		if err := db.UpdateWorkload("h1", s); err != nil {
			t.Fatal(err)
		}
	}
	h, err := db.Host("h1")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.RecentLoads) != maxRecent {
		t.Fatalf("ring length %d, want %d", len(h.RecentLoads), maxRecent)
	}
	// Current fields reflect the latest sample.
	last := maxRecent + 9
	if h.CPULoad != float64(last)/100 || h.AvailMem != int64(last) {
		t.Fatalf("current fields stale: %+v", h)
	}
	if err := db.UpdateWorkload("ghost", WorkloadSample{}); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("unknown host: %v", err)
	}
}

func TestStatusTransitions(t *testing.T) {
	db := NewResourceDB()
	if err := db.AddHost(host("h1", "s1", "g1")); err != nil {
		t.Fatal(err)
	}
	if err := db.SetStatus("h1", HostDown); err != nil {
		t.Fatal(err)
	}
	if up := db.UpHosts(); len(up) != 0 {
		t.Fatalf("down host still in UpHosts: %v", up)
	}
	if err := db.SetStatus("h1", HostUp); err != nil {
		t.Fatal(err)
	}
	if up := db.UpHosts(); len(up) != 1 {
		t.Fatal("host not restored")
	}
	if err := db.SetStatus("ghost", HostDown); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("unknown host: %v", err)
	}
}

func TestGroupQueries(t *testing.T) {
	db := NewResourceDB()
	for _, spec := range []struct{ n, g string }{{"a", "g1"}, {"b", "g1"}, {"c", "g2"}} {
		if err := db.AddHost(host(spec.n, "s1", spec.g)); err != nil {
			t.Fatal(err)
		}
	}
	if gs := db.Groups(); len(gs) != 2 || gs[0] != "g1" || gs[1] != "g2" {
		t.Fatalf("Groups = %v", gs)
	}
	if hs := db.GroupHosts("g1"); len(hs) != 2 {
		t.Fatalf("GroupHosts(g1) = %v", hs)
	}
	if err := db.SetStatus("a", HostDown); err != nil {
		t.Fatal(err)
	}
	if hs := db.GroupHosts("g1"); len(hs) != 1 || hs[0].HostName != "b" {
		t.Fatalf("GroupHosts(g1) after failure = %v", hs)
	}
}

func TestRemoveHost(t *testing.T) {
	db := NewResourceDB()
	if err := db.AddHost(host("h", "s", "g")); err != nil {
		t.Fatal(err)
	}
	if err := db.RemoveHost("h"); err != nil {
		t.Fatal(err)
	}
	if err := db.RemoveHost("h"); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestHostReturnsCopy(t *testing.T) {
	db := NewResourceDB()
	if err := db.AddHost(host("h", "s", "g")); err != nil {
		t.Fatal(err)
	}
	if err := db.UpdateWorkload("h", WorkloadSample{CPULoad: 0.5}); err != nil {
		t.Fatal(err)
	}
	h1, _ := db.Host("h")
	h1.CPULoad = 0.99
	h1.RecentLoads[0].CPULoad = 0.99
	h2, _ := db.Host("h")
	if h2.CPULoad == 0.99 || h2.RecentLoads[0].CPULoad == 0.99 {
		t.Fatal("Host leaked internal state")
	}
}

func TestResourcesConcurrent(t *testing.T) {
	db := NewResourceDB()
	for _, n := range []string{"a", "b", "c", "d"} {
		if err := db.AddHost(host(n, "s", "g")); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			names := []string{"a", "b", "c", "d"}
			for j := 0; j < 100; j++ {
				n := names[(i+j)%4]
				if err := db.UpdateWorkload(n, WorkloadSample{CPULoad: 0.1}); err != nil {
					t.Errorf("update: %v", err)
					return
				}
				_ = db.UpHosts()
				if err := db.SetStatus(n, HostUp); err != nil {
					t.Errorf("status: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
