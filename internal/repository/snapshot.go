package repository

import (
	"fmt"
	"time"
)

// Snapshot is a coherent, immutable view of one site's scheduling state:
// the resource-performance epoch and the task-performance epoch current
// at the moment Snapshot() was called. A scheduler takes one snapshot
// per round and reads it lock-free throughout, so concurrent monitor or
// failure-detection writes cannot tear a round's view of the site —
// every Predict in the round sees the same catalog. The task-constraints
// database is not part of the snapshot: install locations are
// write-rarely registration state, read live by the host-selection
// eligibility filter.
//
// Slices returned by Snapshot methods are shared with the underlying
// epoch and must not be modified.
type Snapshot struct {
	site string
	res  *hostEpoch
	perf *perfEpoch
}

// Snapshot captures the current resource and task-performance epochs.
// The two pointer loads are each atomic; the pair is fixed for the
// snapshot's lifetime.
func (r *Repository) Snapshot() *Snapshot {
	return &Snapshot{
		site: r.Site,
		res:  r.Resources.epoch.Load(),
		perf: r.TaskPerf.epoch.Load(),
	}
}

// Site returns the owning site's name.
func (s *Snapshot) Site() string { return s.site }

// ResourceGeneration is the resource epoch number: any host add/remove,
// status flip, or workload update observed by this snapshot bumps it.
func (s *Snapshot) ResourceGeneration() uint64 { return s.res.gen }

// TaskGeneration returns the per-task record generation (see
// TaskPerfDB.TaskGeneration); ok is false for unknown tasks.
func (s *Snapshot) TaskGeneration(name string) (gen uint64, ok bool) {
	t, ok := s.perf.tasks[name]
	if !ok {
		return 0, false
	}
	return t.gen, true
}

// UpHosts returns the slim views of all up hosts, name-sorted. Shared
// slice — do not modify.
func (s *Snapshot) UpHosts() []HostView { return s.res.up }

// View returns the slim view of the named host.
func (s *Snapshot) View(name string) (HostView, bool) {
	h, ok := s.res.byName[name]
	if !ok {
		return HostView{}, false
	}
	return h.View(), true
}

// TaskParams returns the static parameters of the named task as of this
// snapshot.
func (s *Snapshot) TaskParams(name string) (TaskParams, error) {
	t, ok := s.perf.tasks[name]
	if !ok {
		return TaskParams{}, fmt.Errorf("%w: %s", ErrUnknownTask, name)
	}
	return t.Params, nil
}

// MeasuredTime returns the smoothed measured execution time of task on
// host as of this snapshot, and whether any measurement exists.
func (s *Snapshot) MeasuredTime(task, host string) (time.Duration, bool) {
	t, ok := s.perf.tasks[task]
	if !ok {
		return 0, false
	}
	d, ok := t.Smoothed[host]
	return d, ok
}
