package repository

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func seedDB(t *testing.T, n int) *ResourceDB {
	t.Helper()
	db := NewResourceDB()
	for i := 0; i < n; i++ {
		if err := db.AddHost(ResourceInfo{
			HostName: fmt.Sprintf("h%d", i), Site: "s1", Group: "g0",
			TotalMem: 1 << 30, SpeedFactor: float64(i + 1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestGenerationBumpsOnEveryWrite(t *testing.T) {
	db := seedDB(t, 2)
	g0 := db.Generation()
	if err := db.UpdateWorkload("h0", WorkloadSample{CPULoad: 0.2, AvailMemBytes: 1, Time: time.Unix(1, 0)}); err != nil {
		t.Fatal(err)
	}
	if db.Generation() != g0+1 {
		t.Fatalf("UpdateWorkload: gen %d, want %d", db.Generation(), g0+1)
	}
	if err := db.SetStatus("h0", HostDown); err != nil {
		t.Fatal(err)
	}
	if err := db.RemoveHost("h1"); err != nil {
		t.Fatal(err)
	}
	if db.Generation() != g0+3 {
		t.Fatalf("gen %d after 3 writes from %d", db.Generation(), g0)
	}
	// Failed writes must not bump.
	gBefore := db.Generation()
	if err := db.UpdateWorkload("ghost", WorkloadSample{}); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("unknown host: %v", err)
	}
	if db.Generation() != gBefore {
		t.Fatal("failed write bumped the generation")
	}
}

func TestSnapshotIsImmutableUnderWrites(t *testing.T) {
	r := New("s1")
	if err := r.Resources.AddHost(ResourceInfo{HostName: "h0", TotalMem: 1 << 30}); err != nil {
		t.Fatal(err)
	}
	if err := r.TaskPerf.RegisterTask(TaskParams{Name: "t", ComputationOps: 1e6}); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()

	// Mutate everything after the snapshot was taken.
	if err := r.Resources.UpdateWorkload("h0", WorkloadSample{CPULoad: 0.9, AvailMemBytes: 7, Time: time.Unix(9, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := r.Resources.SetStatus("h0", HostDown); err != nil {
		t.Fatal(err)
	}
	if err := r.TaskPerf.RecordExecution("t", "h0", time.Second, time.Unix(9, 0)); err != nil {
		t.Fatal(err)
	}

	v, ok := snap.View("h0")
	if !ok {
		t.Fatal("host missing from snapshot")
	}
	if v.CPULoad != 0 || v.Status != HostUp {
		t.Fatalf("snapshot view changed under writes: %+v", v)
	}
	if len(snap.UpHosts()) != 1 {
		t.Fatal("snapshot up-set changed under writes")
	}
	if _, ok := snap.MeasuredTime("t", "h0"); ok {
		t.Fatal("snapshot sees a measurement recorded after it")
	}
	// A fresh snapshot sees everything.
	now := r.Snapshot()
	if v, _ := now.View("h0"); v.Status != HostDown || v.CPULoad != 0.9 {
		t.Fatalf("fresh snapshot stale: %+v", v)
	}
	if d, ok := now.MeasuredTime("t", "h0"); !ok || d != time.Second {
		t.Fatalf("fresh snapshot measurement: %v %v", d, ok)
	}
}

// TestChronicleRingIsolation pins the shared-tail chronicle: a record
// cloned from an old epoch must keep its history window byte-stable
// while dozens of later updates append past it and force backing
// reallocation.
func TestChronicleRingIsolation(t *testing.T) {
	db := seedDB(t, 1)
	for i := 0; i < 5; i++ {
		if err := db.UpdateWorkload("h0", WorkloadSample{CPULoad: float64(i) / 10, Time: time.Unix(int64(i), 0)}); err != nil {
			t.Fatal(err)
		}
	}
	old, err := db.Host("h0") // full-fidelity clone of the 5-sample ring
	if err != nil {
		t.Fatal(err)
	}

	// 3x maxRecent more updates: the ring wraps and reallocates.
	for i := 5; i < 5+3*maxRecent; i++ {
		if err := db.UpdateWorkload("h0", WorkloadSample{CPULoad: 0.5, Time: time.Unix(int64(i), 0)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(old.RecentLoads) != 5 {
		t.Fatalf("old clone ring length %d, want 5", len(old.RecentLoads))
	}
	for i, s := range old.RecentLoads {
		if s.Time != time.Unix(int64(i), 0) || s.CPULoad != float64(i)/10 {
			t.Fatalf("old ring sample %d corrupted: %+v", i, s)
		}
	}
	cur, err := db.Host("h0")
	if err != nil {
		t.Fatal(err)
	}
	if len(cur.RecentLoads) != maxRecent {
		t.Fatalf("current ring length %d, want %d", len(cur.RecentLoads), maxRecent)
	}
}

func TestUpdateWorkloadsBatchSingleGeneration(t *testing.T) {
	db := seedDB(t, 4)
	g0 := db.Generation()
	batch := []HostSample{
		{Host: "h0", Sample: WorkloadSample{CPULoad: 0.1, AvailMemBytes: 1, Time: time.Unix(1, 0)}},
		{Host: "h1", Sample: WorkloadSample{CPULoad: 0.2, AvailMemBytes: 2, Time: time.Unix(1, 0)}},
		{Host: "h2", Sample: WorkloadSample{CPULoad: 0.3, AvailMemBytes: 3, Time: time.Unix(1, 0)}},
	}
	applied, err := db.UpdateWorkloads(batch)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 {
		t.Fatalf("applied %d samples, want 3", applied)
	}
	if db.Generation() != g0+1 {
		t.Fatalf("batch cost %d generations, want 1", db.Generation()-g0)
	}
	for i, want := range []float64{0.1, 0.2, 0.3} {
		v, ok := db.View(fmt.Sprintf("h%d", i))
		if !ok || v.CPULoad != want {
			t.Fatalf("h%d load %v, want %v", i, v.CPULoad, want)
		}
	}
	// An unknown host is skipped and reported; known hosts in the same
	// batch still land (a stale Group Manager membership must not starve
	// the rest of the group of monitor data).
	bad := []HostSample{
		{Host: "h0", Sample: WorkloadSample{CPULoad: 0.7, AvailMemBytes: 1, Time: time.Unix(2, 0)}},
		{Host: "ghost"},
	}
	applied, err = db.UpdateWorkloads(bad)
	if !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("bad batch: %v", err)
	}
	if applied != 1 {
		t.Fatalf("applied %d of the bad batch, want 1", applied)
	}
	if v, _ := db.View("h0"); v.CPULoad != 0.7 {
		t.Fatal("known host's sample dropped because of an unknown peer")
	}
	// A batch that applies nothing publishes no epoch: the generation
	// must not move, so cached rankings stay valid.
	gBefore := db.Generation()
	if applied, err := db.UpdateWorkloads([]HostSample{{Host: "ghost"}}); err == nil || applied != 0 {
		t.Fatalf("all-unknown batch: applied=%d err=%v", applied, err)
	}
	if db.Generation() != gBefore {
		t.Fatal("no-op batch bumped the generation")
	}
}

func TestApplyRoundAtomicity(t *testing.T) {
	db := seedDB(t, 3)
	g0 := db.Generation()
	s := WorkloadSample{CPULoad: 0.4, AvailMemBytes: 8, Time: time.Unix(2, 0)}
	round := []RoundUpdate{
		{Host: "h0", Status: HostDown},
		{Host: "h1", Status: HostUp, Sample: &s},
		{Host: "h2", Sample: &s},
	}
	applied, err := db.ApplyRound(round)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 {
		t.Fatalf("applied %d updates, want 3", applied)
	}
	if db.Generation() != g0+1 {
		t.Fatalf("round cost %d generations, want 1", db.Generation()-g0)
	}
	if v, _ := db.View("h0"); v.Status != HostDown {
		t.Fatal("status not applied")
	}
	if v, _ := db.View("h1"); v.CPULoad != 0.4 || v.Status != HostUp {
		t.Fatalf("sample+status not applied: %+v", v)
	}
	if v, _ := db.View("h2"); v.CPULoad != 0.4 {
		t.Fatal("bare sample not applied")
	}
	up := 0
	for _, v := range db.Views() {
		if v.Status == HostUp {
			up++
		}
	}
	if up != 2 {
		t.Fatalf("up views %d, want 2", up)
	}
	// Re-asserting already-current statuses is a no-op round: no epoch,
	// no generation bump, zero applied.
	gBefore := db.Generation()
	applied, err = db.ApplyRound([]RoundUpdate{
		{Host: "h0", Status: HostDown},
		{Host: "h1", Status: HostUp},
	})
	if err != nil || applied != 0 {
		t.Fatalf("no-op round: applied=%d err=%v", applied, err)
	}
	if db.Generation() != gBefore {
		t.Fatal("no-op status round bumped the generation")
	}
}

func TestTaskGenerationPerTask(t *testing.T) {
	db := NewTaskPerfDB()
	if err := db.RegisterTask(TaskParams{Name: "a", ComputationOps: 1}); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterTask(TaskParams{Name: "b", ComputationOps: 1}); err != nil {
		t.Fatal(err)
	}
	genA, _ := db.TaskGeneration("a")
	genB, _ := db.TaskGeneration("b")
	if err := db.RecordExecution("a", "h0", time.Second, time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}
	if g, _ := db.TaskGeneration("a"); g == genA {
		t.Fatal("measured task's generation unchanged")
	}
	if g, _ := db.TaskGeneration("b"); g != genB {
		t.Fatal("unmeasured task's generation moved")
	}
	if _, ok := db.TaskGeneration("ghost"); ok {
		t.Fatal("unknown task has a generation")
	}
}

// TestConcurrentReadersWriters exercises the lock-free read path under
// the race detector: parallel readers iterate views and histories while
// writers publish epochs.
func TestConcurrentReadersWriters(t *testing.T) {
	r := New("s1")
	for i := 0; i < 8; i++ {
		if err := r.Resources.AddHost(ResourceInfo{HostName: fmt.Sprintf("h%d", i), TotalMem: 1 << 30}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.TaskPerf.RegisterTask(TaskParams{Name: "t", ComputationOps: 1e6}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				for _, v := range snap.UpHosts() {
					if _, ok := snap.View(v.HostName); !ok {
						t.Error("view missing from own snapshot")
						return
					}
				}
				snap.MeasuredTime("t", "h0")
				if rec, err := r.Resources.Host("h0"); err == nil {
					_ = rec.RecentLoads // full clone walks the ring
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		h := fmt.Sprintf("h%d", i%8)
		switch i % 3 {
		case 0:
			if err := r.Resources.UpdateWorkload(h, WorkloadSample{CPULoad: 0.1, Time: time.Unix(int64(i), 0)}); err != nil {
				t.Fatal(err)
			}
		case 1:
			st := HostDown
			if i%2 == 0 {
				st = HostUp
			}
			if err := r.Resources.SetStatus(h, st); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := r.TaskPerf.RecordExecution("t", h, time.Millisecond, time.Unix(int64(i), 0)); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
