package repository

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TaskParams are the paper's per-task-implementation parameters:
// computation size, communication size, required memory size, plus the
// measured execution time on the base processor that level computation
// uses as the computation cost.
type TaskParams struct {
	Name string `json:"name"`
	// ComputationOps is the task's computation size in abstract operations
	// (the prediction model divides by effective host speed in ops/sec).
	ComputationOps float64 `json:"computation_ops"`
	// CommunicationBytes is the task's aggregate communication size.
	CommunicationBytes int64 `json:"communication_bytes"`
	// RequiredMemBytes is the memory footprint a host must provide.
	RequiredMemBytes int64 `json:"required_mem_bytes"`
	// BaseTime is the measured execution time on the base processor
	// (speed factor 1.0), stored by the paper in the task-performance
	// database and used as the level-computation cost.
	BaseTime time.Duration `json:"base_time"`
	// Parallelizable marks tasks with a parallel implementation; Serial
	// fraction follows Amdahl's law in the prediction model.
	Parallelizable bool    `json:"parallelizable"`
	SerialFraction float64 `json:"serial_fraction,omitempty"`
}

// Measurement is one observed execution of a task on a host.
type Measurement struct {
	Host    string        `json:"host"`
	Elapsed time.Duration `json:"elapsed"`
	Time    time.Time     `json:"time"`
}

// perTask couples static parameters with the per-host exponentially
// smoothed execution times the Site Manager writes back after runs.
// Records are frozen once their epoch is published; writers replace a
// record with a fresh copy and bump its generation.
type perTask struct {
	// gen changes whenever this task's record (params, smoothed times, or
	// history) changes — the ranked-host cache invalidates per task on it.
	gen      uint64
	Params   TaskParams
	Smoothed map[string]time.Duration // host -> smoothed measured time
	History  []Measurement
}

// perfEpoch is one immutable copy-on-write snapshot of the database.
type perfEpoch struct {
	gen   uint64
	tasks map[string]*perTask // records never mutate after publish
}

// TaskPerfDB is the task-performance database: performance
// characteristics for each task, used to predict the performance of a
// task on a given resource. Writers publish copy-on-write epochs;
// readers are lock-free pointer loads.
type TaskPerfDB struct {
	wmu   sync.Mutex // serializes writers only
	epoch atomic.Pointer[perfEpoch]
	// Alpha is the exponential smoothing weight for new measurements.
	Alpha float64
}

// maxHistory bounds the stored per-task measurement log.
const maxHistory = 128

// NewTaskPerfDB returns an empty task-performance database with smoothing
// weight 0.5.
func NewTaskPerfDB() *TaskPerfDB {
	db := &TaskPerfDB{Alpha: 0.5}
	db.epoch.Store(&perfEpoch{tasks: map[string]*perTask{}})
	return db
}

// mutate runs f over a private copy of the task map and publishes the
// result as a new epoch. f must replace (not modify) any record it
// changes, stamping it with the new epoch's generation (passed as gen).
func (db *TaskPerfDB) mutate(f func(m map[string]*perTask, gen uint64) error) error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	cur := db.epoch.Load()
	m := make(map[string]*perTask, len(cur.tasks)+1)
	for k, v := range cur.tasks {
		m[k] = v
	}
	gen := cur.gen + 1
	if err := f(m, gen); err != nil {
		return err
	}
	db.epoch.Store(&perfEpoch{gen: gen, tasks: m})
	return nil
}

// TaskGeneration returns the named task's record generation: it changes
// only when that task's parameters or measurements change, so cached
// per-task derivations (ranked-host lists) invalidate on exactly the
// writes that affect them. ok is false for unknown tasks.
func (db *TaskPerfDB) TaskGeneration(name string) (gen uint64, ok bool) {
	t, ok := db.epoch.Load().tasks[name]
	if !ok {
		return 0, false
	}
	return t.gen, true
}

// ErrUnknownTask is returned when a task has no performance record.
var ErrUnknownTask = errors.New("repository: unknown task")

// RegisterTask stores (or replaces) the static parameters of a task.
func (db *TaskPerfDB) RegisterTask(p TaskParams) error {
	if p.Name == "" {
		return errors.New("repository: empty task name")
	}
	if p.ComputationOps < 0 || p.CommunicationBytes < 0 || p.RequiredMemBytes < 0 {
		return fmt.Errorf("repository: negative parameter for task %s", p.Name)
	}
	if p.SerialFraction < 0 || p.SerialFraction > 1 {
		return fmt.Errorf("repository: serial fraction %g out of [0,1] for task %s", p.SerialFraction, p.Name)
	}
	return db.mutate(func(m map[string]*perTask, gen uint64) error {
		if existing, ok := m[p.Name]; ok {
			c := clonePerTask(existing, gen)
			c.Params = p
			m[p.Name] = c
			return nil
		}
		m[p.Name] = &perTask{gen: gen, Params: p, Smoothed: map[string]time.Duration{}}
		return nil
	})
}

// clonePerTask copies a record so the copy can be modified without
// touching the epochs that still reference the original. The smoothed
// map is copied (maps cannot be shared with a mutator); History is
// shared — appends go through the shared-tail chronicle in
// RecordExecution, which older windows never observe.
func clonePerTask(t *perTask, gen uint64) *perTask {
	c := &perTask{
		gen:      gen,
		Params:   t.Params,
		Smoothed: make(map[string]time.Duration, len(t.Smoothed)+1),
		History:  t.History,
	}
	for h, d := range t.Smoothed {
		c.Smoothed[h] = d
	}
	return c
}

// Params returns the static parameters of the named task.
func (db *TaskPerfDB) Params(name string) (TaskParams, error) {
	t, ok := db.epoch.Load().tasks[name]
	if !ok {
		return TaskParams{}, fmt.Errorf("%w: %s", ErrUnknownTask, name)
	}
	return t.Params, nil
}

// BaseTime returns the base-processor execution time used as the level
// cost, or an error for unknown tasks.
func (db *TaskPerfDB) BaseTime(name string) (time.Duration, error) {
	p, err := db.Params(name)
	if err != nil {
		return 0, err
	}
	return p.BaseTime, nil
}

// RecordExecution folds a measured execution into the per-host smoothed
// estimate — this is the Site Manager's "updates the task-performance
// database with the execution time after an application execution is
// completed".
func (db *TaskPerfDB) RecordExecution(task, host string, elapsed time.Duration, at time.Time) error {
	if elapsed < 0 {
		return fmt.Errorf("repository: negative elapsed for %s on %s", task, host)
	}
	return db.mutate(func(m map[string]*perTask, gen uint64) error {
		t, ok := m[task]
		if !ok {
			return fmt.Errorf("%w: %s", ErrUnknownTask, task)
		}
		c := clonePerTask(t, gen)
		prev, seen := c.Smoothed[host]
		if !seen {
			c.Smoothed[host] = elapsed
		} else {
			a := db.Alpha
			c.Smoothed[host] = time.Duration(a*float64(elapsed) + (1-a)*float64(prev))
		}
		// Shared-tail chronicle append (see withSample in resources.go):
		// older epochs' windows end at or before the current tail, so
		// the append is invisible to them; trimming is a re-slice.
		c.History = append(c.History, Measurement{Host: host, Elapsed: elapsed, Time: at})
		if len(c.History) > maxHistory {
			c.History = c.History[len(c.History)-maxHistory:]
		}
		m[task] = c
		return nil
	})
}

// MeasuredTime returns the smoothed measured execution time of task on
// host and whether any measurement exists.
func (db *TaskPerfDB) MeasuredTime(task, host string) (time.Duration, bool) {
	t, ok := db.epoch.Load().tasks[task]
	if !ok {
		return 0, false
	}
	d, ok := t.Smoothed[host]
	return d, ok
}

// History returns a copy of the stored measurement log for a task.
func (db *TaskPerfDB) History(task string) []Measurement {
	t, ok := db.epoch.Load().tasks[task]
	if !ok {
		return nil
	}
	return append([]Measurement(nil), t.History...)
}

// TaskNames returns the registered task names, sorted.
func (db *TaskPerfDB) TaskNames() []string {
	e := db.epoch.Load()
	out := make([]string, 0, len(e.tasks))
	for n := range e.tasks {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// taskPerfSnapshot is the serialized form of one task's record.
type taskPerfSnapshot struct {
	Params   TaskParams               `json:"params"`
	Smoothed map[string]time.Duration `json:"smoothed,omitempty"`
	History  []Measurement            `json:"history,omitempty"`
}

func (db *TaskPerfDB) snapshot() []taskPerfSnapshot {
	e := db.epoch.Load()
	out := make([]taskPerfSnapshot, 0, len(e.tasks))
	for _, t := range e.tasks {
		s := taskPerfSnapshot{Params: t.Params, Smoothed: make(map[string]time.Duration, len(t.Smoothed))}
		for h, d := range t.Smoothed {
			s.Smoothed[h] = d
		}
		s.History = append(s.History, t.History...)
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Params.Name < out[j].Params.Name })
	return out
}

func (db *TaskPerfDB) restore(snaps []taskPerfSnapshot) {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	cur := db.epoch.Load()
	gen := cur.gen + 1
	m := make(map[string]*perTask, len(snaps))
	for _, s := range snaps {
		t := &perTask{gen: gen, Params: s.Params, Smoothed: make(map[string]time.Duration, len(s.Smoothed))}
		for h, d := range s.Smoothed {
			t.Smoothed[h] = d
		}
		t.History = append(t.History, s.History...)
		m[s.Params.Name] = t
	}
	db.epoch.Store(&perfEpoch{gen: gen, tasks: m})
}
