package repository

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// TaskParams are the paper's per-task-implementation parameters:
// computation size, communication size, required memory size, plus the
// measured execution time on the base processor that level computation
// uses as the computation cost.
type TaskParams struct {
	Name string `json:"name"`
	// ComputationOps is the task's computation size in abstract operations
	// (the prediction model divides by effective host speed in ops/sec).
	ComputationOps float64 `json:"computation_ops"`
	// CommunicationBytes is the task's aggregate communication size.
	CommunicationBytes int64 `json:"communication_bytes"`
	// RequiredMemBytes is the memory footprint a host must provide.
	RequiredMemBytes int64 `json:"required_mem_bytes"`
	// BaseTime is the measured execution time on the base processor
	// (speed factor 1.0), stored by the paper in the task-performance
	// database and used as the level-computation cost.
	BaseTime time.Duration `json:"base_time"`
	// Parallelizable marks tasks with a parallel implementation; Serial
	// fraction follows Amdahl's law in the prediction model.
	Parallelizable bool    `json:"parallelizable"`
	SerialFraction float64 `json:"serial_fraction,omitempty"`
}

// Measurement is one observed execution of a task on a host.
type Measurement struct {
	Host    string        `json:"host"`
	Elapsed time.Duration `json:"elapsed"`
	Time    time.Time     `json:"time"`
}

// perTask couples static parameters with the per-host exponentially
// smoothed execution times the Site Manager writes back after runs.
type perTask struct {
	Params   TaskParams
	Smoothed map[string]time.Duration // host -> smoothed measured time
	History  []Measurement
}

// TaskPerfDB is the task-performance database: performance
// characteristics for each task, used to predict the performance of a
// task on a given resource.
type TaskPerfDB struct {
	mu    sync.RWMutex
	tasks map[string]*perTask
	// Alpha is the exponential smoothing weight for new measurements.
	Alpha float64
}

// maxHistory bounds the stored per-task measurement log.
const maxHistory = 128

// NewTaskPerfDB returns an empty task-performance database with smoothing
// weight 0.5.
func NewTaskPerfDB() *TaskPerfDB {
	return &TaskPerfDB{tasks: make(map[string]*perTask), Alpha: 0.5}
}

// ErrUnknownTask is returned when a task has no performance record.
var ErrUnknownTask = errors.New("repository: unknown task")

// RegisterTask stores (or replaces) the static parameters of a task.
func (db *TaskPerfDB) RegisterTask(p TaskParams) error {
	if p.Name == "" {
		return errors.New("repository: empty task name")
	}
	if p.ComputationOps < 0 || p.CommunicationBytes < 0 || p.RequiredMemBytes < 0 {
		return fmt.Errorf("repository: negative parameter for task %s", p.Name)
	}
	if p.SerialFraction < 0 || p.SerialFraction > 1 {
		return fmt.Errorf("repository: serial fraction %g out of [0,1] for task %s", p.SerialFraction, p.Name)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	existing, ok := db.tasks[p.Name]
	if ok {
		existing.Params = p
		return nil
	}
	db.tasks[p.Name] = &perTask{Params: p, Smoothed: make(map[string]time.Duration)}
	return nil
}

// Params returns the static parameters of the named task.
func (db *TaskPerfDB) Params(name string) (TaskParams, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tasks[name]
	if !ok {
		return TaskParams{}, fmt.Errorf("%w: %s", ErrUnknownTask, name)
	}
	return t.Params, nil
}

// BaseTime returns the base-processor execution time used as the level
// cost, or an error for unknown tasks.
func (db *TaskPerfDB) BaseTime(name string) (time.Duration, error) {
	p, err := db.Params(name)
	if err != nil {
		return 0, err
	}
	return p.BaseTime, nil
}

// RecordExecution folds a measured execution into the per-host smoothed
// estimate — this is the Site Manager's "updates the task-performance
// database with the execution time after an application execution is
// completed".
func (db *TaskPerfDB) RecordExecution(task, host string, elapsed time.Duration, at time.Time) error {
	if elapsed < 0 {
		return fmt.Errorf("repository: negative elapsed for %s on %s", task, host)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tasks[task]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTask, task)
	}
	prev, seen := t.Smoothed[host]
	if !seen {
		t.Smoothed[host] = elapsed
	} else {
		a := db.Alpha
		t.Smoothed[host] = time.Duration(a*float64(elapsed) + (1-a)*float64(prev))
	}
	t.History = append(t.History, Measurement{Host: host, Elapsed: elapsed, Time: at})
	if len(t.History) > maxHistory {
		t.History = t.History[len(t.History)-maxHistory:]
	}
	return nil
}

// MeasuredTime returns the smoothed measured execution time of task on
// host and whether any measurement exists.
func (db *TaskPerfDB) MeasuredTime(task, host string) (time.Duration, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tasks[task]
	if !ok {
		return 0, false
	}
	d, ok := t.Smoothed[host]
	return d, ok
}

// History returns a copy of the stored measurement log for a task.
func (db *TaskPerfDB) History(task string) []Measurement {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tasks[task]
	if !ok {
		return nil
	}
	return append([]Measurement(nil), t.History...)
}

// TaskNames returns the registered task names, sorted.
func (db *TaskPerfDB) TaskNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tasks))
	for n := range db.tasks {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// taskPerfSnapshot is the serialized form of one task's record.
type taskPerfSnapshot struct {
	Params   TaskParams               `json:"params"`
	Smoothed map[string]time.Duration `json:"smoothed,omitempty"`
	History  []Measurement            `json:"history,omitempty"`
}

func (db *TaskPerfDB) snapshot() []taskPerfSnapshot {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]taskPerfSnapshot, 0, len(db.tasks))
	for _, t := range db.tasks {
		s := taskPerfSnapshot{Params: t.Params, Smoothed: make(map[string]time.Duration, len(t.Smoothed))}
		for h, d := range t.Smoothed {
			s.Smoothed[h] = d
		}
		s.History = append(s.History, t.History...)
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Params.Name < out[j].Params.Name })
	return out
}

func (db *TaskPerfDB) restore(snaps []taskPerfSnapshot) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tasks = make(map[string]*perTask, len(snaps))
	for _, s := range snaps {
		t := &perTask{Params: s.Params, Smoothed: make(map[string]time.Duration, len(s.Smoothed))}
		for h, d := range s.Smoothed {
			t.Smoothed[h] = d
		}
		t.History = append(t.History, s.History...)
		db.tasks[s.Params.Name] = t
	}
}
