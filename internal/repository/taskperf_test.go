package repository

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRegisterAndParams(t *testing.T) {
	db := NewTaskPerfDB()
	p := TaskParams{Name: "LU_Decomposition", ComputationOps: 1e9, CommunicationBytes: 1 << 20,
		RequiredMemBytes: 1 << 24, BaseTime: 2 * time.Second, Parallelizable: true, SerialFraction: 0.1}
	if err := db.RegisterTask(p); err != nil {
		t.Fatal(err)
	}
	got, err := db.Params("LU_Decomposition")
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("Params = %+v, want %+v", got, p)
	}
	bt, err := db.BaseTime("LU_Decomposition")
	if err != nil || bt != 2*time.Second {
		t.Fatalf("BaseTime = %v, %v", bt, err)
	}
	if _, err := db.Params("missing"); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("unknown: %v", err)
	}
	if _, err := db.BaseTime("missing"); err == nil {
		t.Fatal("BaseTime on missing task should fail")
	}
}

func TestRegisterValidation(t *testing.T) {
	db := NewTaskPerfDB()
	bad := []TaskParams{
		{},
		{Name: "x", ComputationOps: -1},
		{Name: "x", CommunicationBytes: -1},
		{Name: "x", RequiredMemBytes: -1},
		{Name: "x", SerialFraction: 1.5},
		{Name: "x", SerialFraction: -0.1},
	}
	for i, p := range bad {
		if err := db.RegisterTask(p); err == nil {
			t.Errorf("case %d: bad params accepted: %+v", i, p)
		}
	}
}

func TestReRegisterKeepsMeasurements(t *testing.T) {
	db := NewTaskPerfDB()
	if err := db.RegisterTask(TaskParams{Name: "t", BaseTime: time.Second}); err != nil {
		t.Fatal(err)
	}
	if err := db.RecordExecution("t", "h1", 3*time.Second, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterTask(TaskParams{Name: "t", BaseTime: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if d, ok := db.MeasuredTime("t", "h1"); !ok || d != 3*time.Second {
		t.Fatalf("measurement lost after re-register: %v %v", d, ok)
	}
	if bt, _ := db.BaseTime("t"); bt != 2*time.Second {
		t.Fatal("re-register did not update params")
	}
}

func TestRecordExecutionSmoothing(t *testing.T) {
	db := NewTaskPerfDB() // Alpha = 0.5
	if err := db.RegisterTask(TaskParams{Name: "t", BaseTime: time.Second}); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if err := db.RecordExecution("t", "h", 4*time.Second, now); err != nil {
		t.Fatal(err)
	}
	if d, _ := db.MeasuredTime("t", "h"); d != 4*time.Second {
		t.Fatalf("first measurement should be taken as-is, got %v", d)
	}
	if err := db.RecordExecution("t", "h", 2*time.Second, now); err != nil {
		t.Fatal(err)
	}
	if d, _ := db.MeasuredTime("t", "h"); d != 3*time.Second {
		t.Fatalf("smoothed = %v, want 3s", d)
	}
	if err := db.RecordExecution("t", "h", -time.Second, now); err == nil {
		t.Fatal("negative elapsed accepted")
	}
	if err := db.RecordExecution("ghost", "h", time.Second, now); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("unknown task: %v", err)
	}
	if _, ok := db.MeasuredTime("t", "unmeasured-host"); ok {
		t.Fatal("measurement invented for unmeasured host")
	}
	if _, ok := db.MeasuredTime("ghost", "h"); ok {
		t.Fatal("measurement invented for unknown task")
	}
}

func TestHistoryBounded(t *testing.T) {
	db := NewTaskPerfDB()
	if err := db.RegisterTask(TaskParams{Name: "t"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxHistory+20; i++ {
		if err := db.RecordExecution("t", "h", time.Duration(i), time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	h := db.History("t")
	if len(h) != maxHistory {
		t.Fatalf("history length %d, want %d", len(h), maxHistory)
	}
	if h[len(h)-1].Elapsed != time.Duration(maxHistory+19) {
		t.Fatal("history lost the newest measurement")
	}
	if db.History("ghost") != nil {
		t.Fatal("history for unknown task should be nil")
	}
}

func TestTaskNamesSorted(t *testing.T) {
	db := NewTaskPerfDB()
	for _, n := range []string{"zz", "aa", "mm"} {
		if err := db.RegisterTask(TaskParams{Name: n}); err != nil {
			t.Fatal(err)
		}
	}
	names := db.TaskNames()
	if len(names) != 3 || names[0] != "aa" || names[2] != "zz" {
		t.Fatalf("TaskNames = %v", names)
	}
}

// Property: smoothing always lands between the previous estimate and the
// new measurement (a convexity invariant of exponential smoothing).
func TestSmoothingConvexProperty(t *testing.T) {
	f := func(prevMs, nextMs uint16) bool {
		db := NewTaskPerfDB()
		if err := db.RegisterTask(TaskParams{Name: "t"}); err != nil {
			return false
		}
		prev := time.Duration(prevMs) * time.Millisecond
		next := time.Duration(nextMs) * time.Millisecond
		_ = db.RecordExecution("t", "h", prev, time.Now())
		_ = db.RecordExecution("t", "h", next, time.Now())
		got, _ := db.MeasuredTime("t", "h")
		lo, hi := prev, next
		if lo > hi {
			lo, hi = hi, lo
		}
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

func TestTaskPerfConcurrent(t *testing.T) {
	db := NewTaskPerfDB()
	if err := db.RegisterTask(TaskParams{Name: "t"}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if err := db.RecordExecution("t", "h", time.Millisecond, time.Now()); err != nil {
					t.Errorf("record: %v", err)
					return
				}
				_, _ = db.MeasuredTime("t", "h")
				_ = db.History("t")
			}
		}()
	}
	wg.Wait()
}
