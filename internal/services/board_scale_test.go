package services

// Sharded-board scale suite (ISSUE 10): randomized aggregate
// consistency against a brute-force recount, count/list equivalence,
// board-side weight memory, a concurrent read/write soak over the
// shards, and the million-job benchmarks EXPERIMENTS.md records — the
// evidence that listing and publishing no longer serialize on one lock.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var boardStates = []string{
	JobStateQueued, JobStateScheduling, JobStateRunning,
	JobStateDone, JobStateFailed, JobStateCanceled,
}

// recountBoard rebuilds the board's aggregates from a full listing —
// the brute-force ground truth the incremental tallies must match.
func recountBoard(b *JobBoard) (counts map[string]int, usage map[string]OwnerUsage) {
	counts = make(map[string]int)
	usage = make(map[string]OwnerUsage)
	for _, s := range b.List() {
		counts[s.State]++
		u := usage[s.Owner]
		switch s.State {
		case JobStateQueued:
			u.Queued++
		case JobStateScheduling, JobStateRunning:
			u.InFlight++
		case JobStateDone:
			u.Done++
		case JobStateFailed:
			u.Failed++
		case JobStateCanceled:
			u.Canceled++
		}
		u.HostsHeld += s.HostsHeld
		u.Total++
		usage[s.Owner] = u
	}
	return counts, usage
}

// TestJobBoardAggregatesMatchRecount drives a random update/delete
// stream and asserts the incremental per-state and per-owner aggregates
// never drift from a brute-force recount of the rows.
func TestJobBoardAggregatesMatchRecount(t *testing.T) {
	rng := rand.New(rand.NewSource(1010))
	b := NewJobBoard()
	base := time.Unix(40000, 0)
	live := []string{}
	next := 0
	for op := 0; op < 4000; op++ {
		switch c := rng.Intn(10); {
		case c < 5 || len(live) == 0: // insert
			id := fmt.Sprintf("r%d", next)
			next++
			live = append(live, id)
			b.Update(JobStatus{
				ID: id, Owner: fmt.Sprintf("own-%d", rng.Intn(25)),
				State:       boardStates[rng.Intn(len(boardStates))],
				HostsHeld:   rng.Intn(4),
				ShareWeight: 1 + rng.Intn(5),
				SubmittedAt: base.Add(time.Duration(rng.Intn(100000)) * time.Microsecond),
			})
		case c < 8: // mutate an existing row (state transition)
			id := live[rng.Intn(len(live))]
			s, ok := b.Get(id)
			if !ok {
				t.Fatalf("live row %q missing", id)
			}
			s.State = boardStates[rng.Intn(len(boardStates))]
			s.HostsHeld = rng.Intn(4)
			b.Update(s)
		default: // retention eviction
			i := rng.Intn(len(live))
			b.Delete(live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if op%500 != 0 {
			continue
		}
		wantCounts, wantUsage := recountBoard(b)
		gotCounts := b.Counts()
		for _, st := range boardStates {
			if gotCounts[st] != wantCounts[st] {
				t.Fatalf("op %d: Counts[%s] = %d, recount = %d", op, st, gotCounts[st], wantCounts[st])
			}
		}
		gotUsage := b.OwnerUsages()
		if len(gotUsage) != len(wantUsage) {
			t.Fatalf("op %d: OwnerUsages has %d owners, recount %d", op, len(gotUsage), len(wantUsage))
		}
		for owner, want := range wantUsage {
			if gotUsage[owner] != want {
				t.Fatalf("op %d: OwnerUsages[%s] = %+v, recount %+v", op, owner, gotUsage[owner], want)
			}
		}
		if got, want := b.Len(), len(live); got != want {
			t.Fatalf("op %d: Len = %d, want %d", op, got, want)
		}
	}
}

// TestJobBoardCountFilteredMatchesList pins CountFiltered (the
// count-only listing backend) to len(ListFiltered) across every filter
// shape, including the owner+in-flight-state combinations that fall
// back to a snapshot scan.
func TestJobBoardCountFilteredMatchesList(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	b := NewJobBoard()
	base := time.Unix(41000, 0)
	owners := []string{"", "ana", "bo", "cy"}
	for i := 0; i < 600; i++ {
		b.Update(JobStatus{
			ID: fmt.Sprintf("cf%d", i), Owner: owners[rng.Intn(len(owners))],
			State:       boardStates[rng.Intn(len(boardStates))],
			SubmittedAt: base.Add(time.Duration(i) * time.Millisecond),
		})
	}
	for _, owner := range append(owners, "nobody") {
		for _, state := range append([]string{""}, boardStates...) {
			got := b.CountFiltered(owner, state)
			want := len(b.ListFiltered(owner, state))
			if got != want {
				t.Fatalf("CountFiltered(%q, %q) = %d, ListFiltered len = %d", owner, state, got, want)
			}
		}
	}
}

// TestJobBoardOwnerWeights pins the board-side weight memory: per
// owner, the latest-submitted retained row's share weight wins, ties
// on submit time break by higher ID, and deleting the last row forgets
// the owner.
func TestJobBoardOwnerWeights(t *testing.T) {
	b := NewJobBoard()
	t0 := time.Unix(42000, 0)
	b.Update(JobStatus{ID: "w1", Owner: "ana", State: JobStateDone, ShareWeight: 2, SubmittedAt: t0})
	b.Update(JobStatus{ID: "w2", Owner: "ana", State: JobStateDone, ShareWeight: 5, SubmittedAt: t0.Add(time.Second)})
	b.Update(JobStatus{ID: "w3", Owner: "bo", State: JobStateDone, ShareWeight: 3, SubmittedAt: t0})
	// Same instant as w3 but higher ID: wins bo's tie.
	b.Update(JobStatus{ID: "w4", Owner: "bo", State: JobStateDone, ShareWeight: 4, SubmittedAt: t0})
	w := b.OwnerWeights()
	if w["ana"] != 5 || w["bo"] != 4 {
		t.Fatalf("OwnerWeights = %v, want ana=5 bo=4", w)
	}
	b.Delete("w2")
	// w2 (the latest) evicted: the aggregate's weight sticks at the last
	// value seen for the shard, which is still the latest submission the
	// board knew about.
	if w := b.OwnerWeights(); w["ana"] == 0 {
		t.Fatalf("OwnerWeights after evicting latest row = %v, want ana retained", w)
	}
	b.Delete("w1")
	if w := b.OwnerWeights(); w["ana"] != 0 {
		t.Fatalf("OwnerWeights after deleting all of ana's rows = %v, want ana forgotten", w)
	}
}

// TestJobBoardConcurrentReadersAndWriters is the -race soak for the
// sharded read path: listing, counting, and usage readers run lock-free
// against a write storm and must always observe internally consistent
// snapshots (monotone generations are the board's job; this asserts no
// torn reads or panics and a correct final recount).
func TestJobBoardConcurrentReadersAndWriters(t *testing.T) {
	b := NewJobBoard()
	base := time.Unix(43000, 0)
	const (
		writers = 4
		rows    = 300
	)
	var stop atomic.Bool
	var writersWG, readerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				id := fmt.Sprintf("cw%d-%d", w, rng.Intn(rows))
				if rng.Intn(8) == 0 {
					b.Delete(id)
					continue
				}
				b.Update(JobStatus{
					ID: id, Owner: fmt.Sprintf("own-%d", w),
					State:       boardStates[rng.Intn(len(boardStates))],
					SubmittedAt: base.Add(time.Duration(rng.Intn(1000)) * time.Millisecond),
				})
			}
		}(w)
	}
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for !stop.Load() {
			rows := b.ListFiltered("own-1", "")
			for i := 1; i < len(rows); i++ {
				if rows[i].SubmittedAt.Before(rows[i-1].SubmittedAt) {
					t.Error("ListFiltered out of order under concurrent writes")
					return
				}
			}
			b.OwnerUsages()
			b.CountFiltered("", JobStateRunning)
			b.Counts()
		}
	}()
	writersWG.Wait()
	stop.Store(true)
	readerWG.Wait()
	wantCounts, _ := recountBoard(b)
	gotCounts := b.Counts()
	for _, st := range boardStates {
		if gotCounts[st] != wantCounts[st] {
			t.Fatalf("final Counts[%s] = %d, recount = %d", st, gotCounts[st], wantCounts[st])
		}
	}
}

// millionBoard lazily builds the shared million-row board the
// BenchmarkJobBoardMillion sub-benchmarks read: 1e6 jobs across 1000
// owners in a realistic state mix. Built once per test binary run.
var millionBoard struct {
	once sync.Once
	b    *JobBoard
	ids  []string
}

func millionRow(i int) JobStatus {
	return JobStatus{
		ID:          fmt.Sprintf("m%07d", i),
		Owner:       fmt.Sprintf("owner-%03d", i%1000),
		State:       boardStates[i%len(boardStates)],
		ShareWeight: 1 + i%5,
		SubmittedAt: time.Unix(44000, 0).Add(time.Duration(i) * time.Microsecond),
	}
}

func getMillionBoard() (*JobBoard, []string) {
	millionBoard.once.Do(func() {
		const n = 1_000_000
		board := NewJobBoard()
		ids := make([]string, n)
		for i := 0; i < n; i++ {
			s := millionRow(i)
			ids[i] = s.ID
			board.Update(s)
		}
		millionBoard.b, millionBoard.ids = board, ids
	})
	return millionBoard.b, millionBoard.ids
}

// BenchmarkJobBoardMillion measures the board at a million retained
// jobs. The update/list sub-benchmarks run writes while a background
// lister loops, which on the old single-mutex board serialized into
// lock-convoy latencies; on the sharded board a write touches 1/32 of
// the board and listings read immutable snapshots lock-free.
func BenchmarkJobBoardMillion(b *testing.B) {
	b.Run("update", func(b *testing.B) {
		board, _ := getMillionBoard()
		b.ReportAllocs()
		b.ResetTimer()
		var i atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				n := int(i.Add(1)) % 1_000_000
				s := millionRow(n)
				s.State = JobStateRunning
				board.Update(s)
			}
		})
	})
	b.Run("update-during-list", func(b *testing.B) {
		board, _ := getMillionBoard()
		var stop atomic.Bool
		var listers sync.WaitGroup
		for l := 0; l < 2; l++ {
			listers.Add(1)
			go func(l int) {
				defer listers.Done()
				for !stop.Load() {
					board.ListFiltered(fmt.Sprintf("owner-%03d", l), "")
				}
			}(l)
		}
		b.ReportAllocs()
		b.ResetTimer()
		var i atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				n := int(i.Add(1)) % 1_000_000
				s := millionRow(n)
				s.State = JobStateScheduling
				board.Update(s)
			}
		})
		b.StopTimer()
		stop.Store(true)
		listers.Wait()
	})
	b.Run("get", func(b *testing.B) {
		board, ids := getMillionBoard()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := board.Get(ids[i%len(ids)]); !ok {
				b.Fatal("row missing")
			}
		}
	})
	b.Run("list-owner", func(b *testing.B) {
		board, _ := getMillionBoard()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			board.ListFiltered(fmt.Sprintf("owner-%03d", i%1000), "")
		}
	})
	b.Run("count-filtered", func(b *testing.B) {
		board, _ := getMillionBoard()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			board.CountFiltered(fmt.Sprintf("owner-%03d", i%1000), JobStateQueued)
		}
	})
	b.Run("owner-usages", func(b *testing.B) {
		board, _ := getMillionBoard()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if u := board.OwnerUsages(); len(u) == 0 {
				b.Fatal("no owners")
			}
		}
	})
}
