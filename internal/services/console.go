// Package services implements the user-requested runtime services of
// §4.2: the I/O service (file or URL inputs), the console service
// (suspend and restart a running application), and the visualization
// service (application performance and workload time series). It also
// hosts the distributed-shared-memory extension the paper's conclusion
// announces as future work.
package services

import (
	"context"
	"sync"
)

// Console lets a user suspend and restart an application execution. The
// Application Controllers consult Gate before starting each task, so a
// suspended application stops dispatching new tasks; running tasks
// drain, matching the paper's console semantics.
type Console struct {
	mu     sync.Mutex
	paused bool
	wake   chan struct{}
}

// NewConsole returns a running (not suspended) console.
func NewConsole() *Console {
	return &Console{wake: make(chan struct{})}
}

// Suspend pauses dispatch of new tasks.
func (c *Console) Suspend() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.paused = true
}

// Resume restarts dispatch.
func (c *Console) Resume() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.paused {
		c.paused = false
		close(c.wake)
		c.wake = make(chan struct{})
	}
}

// Suspended reports the current state.
func (c *Console) Suspended() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.paused
}

// Gate blocks while the console is suspended. It returns ctx.Err() if
// the context ends first, nil once dispatch may proceed.
func (c *Console) Gate(ctx context.Context) error {
	for {
		c.mu.Lock()
		if !c.paused {
			c.mu.Unlock()
			return nil
		}
		wake := c.wake
		c.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-wake:
		}
	}
}
