package services

import (
	"fmt"
	"sync"
)

// DSM is the distributed-shared-memory extension the paper's conclusion
// promises ("a distributed shared memory model that will allow VDCE
// users to describe their applications using a shared memory paradigm").
// It provides a sequentially consistent page store: all operations are
// serialized through a single owner goroutine per DSM instance, so every
// process observes the same total order of writes.
type DSM struct {
	ops  chan dsmOp
	done chan struct{}
	wg   sync.WaitGroup
}

type dsmOp struct {
	kind  byte // 'r', 'w', 'c' (compare-and-swap)
	key   string
	value []byte
	old   []byte
	reply chan dsmReply
}

type dsmReply struct {
	value []byte
	ok    bool
}

// NewDSM starts the owner goroutine.
func NewDSM() *DSM {
	d := &DSM{ops: make(chan dsmOp), done: make(chan struct{})}
	d.wg.Add(1)
	go d.owner()
	return d
}

func (d *DSM) owner() {
	defer d.wg.Done()
	pages := make(map[string][]byte)
	for {
		select {
		case <-d.done:
			return
		case op := <-d.ops:
			switch op.kind {
			case 'r':
				v, ok := pages[op.key]
				op.reply <- dsmReply{value: append([]byte(nil), v...), ok: ok}
			case 'w':
				pages[op.key] = append([]byte(nil), op.value...)
				op.reply <- dsmReply{ok: true}
			case 'c':
				cur := pages[op.key]
				if string(cur) == string(op.old) {
					pages[op.key] = append([]byte(nil), op.value...)
					op.reply <- dsmReply{ok: true}
				} else {
					op.reply <- dsmReply{value: append([]byte(nil), cur...), ok: false}
				}
			}
		}
	}
}

// Close stops the owner. Operations after Close return an error.
func (d *DSM) Close() {
	close(d.done)
	d.wg.Wait()
}

func (d *DSM) do(op dsmOp) (dsmReply, error) {
	op.reply = make(chan dsmReply, 1)
	select {
	case d.ops <- op:
		return <-op.reply, nil
	case <-d.done:
		return dsmReply{}, fmt.Errorf("services: DSM closed")
	}
}

// Read returns the page's current value and whether it exists.
func (d *DSM) Read(key string) ([]byte, bool, error) {
	r, err := d.do(dsmOp{kind: 'r', key: key})
	return r.value, r.ok, err
}

// Write stores a page.
func (d *DSM) Write(key string, value []byte) error {
	_, err := d.do(dsmOp{kind: 'w', key: key, value: value})
	return err
}

// CompareAndSwap writes value only if the page currently equals old
// (nil means "absent"). It reports whether the swap happened and, when
// it did not, the current value.
func (d *DSM) CompareAndSwap(key string, old, value []byte) (bool, []byte, error) {
	r, err := d.do(dsmOp{kind: 'c', key: key, old: old, value: value})
	return r.ok, r.value, err
}
