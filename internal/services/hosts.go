package services

// HostStatus is one testbed host's health snapshot, served by
// GET /v1/hosts and the simulator reports: the host model's own
// up/down, the failure detector's view (when a detector runs), and the
// circuit breaker's state with its windowed failure rate (when breakers
// run).
type HostStatus struct {
	// Host is the host name; Site the owning site.
	Host string `json:"host"`
	Site string `json:"site"`
	// Up reports the host model's ground truth: not failed and
	// reachable.
	Up bool `json:"up"`
	// Detector is the failure detector's state for the host
	// (healthy/suspect/dead/recovered); empty when no detector runs or
	// the detector has never observed the host.
	Detector string `json:"detector,omitempty"`
	// Breaker is the circuit-breaker state (closed/open/half-open);
	// "closed" for hosts the breaker set has never sampled.
	Breaker string `json:"breaker"`
	// FailureRate and Samples are the breaker's windowed failure rate
	// and sample count.
	FailureRate float64 `json:"failure_rate"`
	Samples     int     `json:"samples"`
	// BreakerOpens counts how many times the host's breaker has opened.
	BreakerOpens int `json:"breaker_opens"`
}
