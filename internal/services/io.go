package services

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"vdce/internal/afg"
)

// IOService provides the paper's "either file I/O or URL I/O for the
// inputs of the application tasks". File paths are confined to a root
// directory (each VDCE user's area); URLs are fetched over HTTP.
type IOService struct {
	// Root is the directory file paths resolve under. Absolute input
	// paths like Fig. 1's /users/VDCE/user_k/matrix_A.dat are mapped
	// beneath it.
	Root string
	// Client performs URL fetches; defaults to a client with a 10s
	// timeout.
	Client *http.Client
}

// NewIOService returns a service rooted at root.
func NewIOService(root string) *IOService {
	return &IOService{Root: root, Client: &http.Client{Timeout: 10 * time.Second}}
}

// ErrOutsideRoot is returned when a path escapes the service root.
var ErrOutsideRoot = errors.New("services: path escapes I/O root")

// resolve maps a user path (possibly absolute) into the root.
func (s *IOService) resolve(path string) (string, error) {
	if path == "" {
		return "", errors.New("services: empty path")
	}
	cleaned := filepath.Clean("/" + path) // forces absolute, squeezes ..
	full := filepath.Join(s.Root, cleaned)
	rootAbs, err := filepath.Abs(s.Root)
	if err != nil {
		return "", err
	}
	fullAbs, err := filepath.Abs(full)
	if err != nil {
		return "", err
	}
	if fullAbs != rootAbs && !strings.HasPrefix(fullAbs, rootAbs+string(filepath.Separator)) {
		return "", fmt.Errorf("%w: %s", ErrOutsideRoot, path)
	}
	return fullAbs, nil
}

// Read loads the bytes behind a FileSpec: URL fetch for URL specs, root-
// confined file read otherwise. Dataflow specs have no backing bytes.
func (s *IOService) Read(spec afg.FileSpec) ([]byte, error) {
	if spec.Dataflow && spec.Path == "" {
		return nil, errors.New("services: dataflow input has no file")
	}
	if spec.URL {
		client := s.Client
		if client == nil {
			client = &http.Client{Timeout: 10 * time.Second}
		}
		resp, err := client.Get(spec.Path)
		if err != nil {
			return nil, fmt.Errorf("services: url fetch: %w", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("services: url fetch %s: status %d", spec.Path, resp.StatusCode)
		}
		return io.ReadAll(resp.Body)
	}
	full, err := s.resolve(spec.Path)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(full)
}

// Write stores task output bytes under the root, creating directories.
func (s *IOService) Write(path string, data []byte) error {
	full, err := s.resolve(path)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return err
	}
	return os.WriteFile(full, data, 0o644)
}

// Exists reports whether the path resolves to a stored file.
func (s *IOService) Exists(path string) bool {
	full, err := s.resolve(path)
	if err != nil {
		return false
	}
	_, err = os.Stat(full)
	return err == nil
}
