package services

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Job lifecycle states, in submission order. The pipeline moves every
// application through queued -> scheduling -> running ->
// done|failed|canceled.
const (
	JobStateQueued     = "queued"
	JobStateScheduling = "scheduling"
	JobStateRunning    = "running"
	JobStateDone       = "done"
	JobStateFailed     = "failed"
	JobStateCanceled   = "canceled"
)

// JobStatus is a snapshot of one submitted application's lifecycle,
// published by the submission pipeline for monitoring tools and the
// versioned job-control API.
type JobStatus struct {
	ID    string `json:"id"`
	App   string `json:"app"`
	Owner string `json:"owner,omitempty"`
	State string `json:"state"`
	// Priority is the job's base admission priority (owner account
	// priority unless overridden at submit time).
	Priority int `json:"priority"`
	// ShareWeight is the owner fair-share weight this submission
	// carried: across owners, the admission queue drains in proportion
	// to weight.
	ShareWeight int `json:"share_weight,omitempty"`
	// HostsHeld is how many distinct testbed hosts the job's placement
	// holds while it is dispatched (0 while queued and after it
	// terminalizes) — the unit the per-owner held-hosts quota charges.
	HostsHeld int `json:"hosts_held,omitempty"`
	// QueuePosition is the job's 1-based dequeue position while queued
	// (1 = next to be scheduled); 0 once it left the admission queue.
	QueuePosition int               `json:"queue_position,omitempty"`
	Labels        map[string]string `json:"labels,omitempty"`
	// Reschedules counts mid-run task reschedules the execution engine
	// performed for this job (watchdog- or failure-detector-driven). It
	// updates live while the job runs.
	Reschedules int `json:"reschedules,omitempty"`
	// FailedHosts lists the distinct hosts whose failure (crash or
	// confirmed death — not overload) forced one of the job's tasks to
	// move, in first-observed order. It updates live while the job runs.
	FailedHosts []string `json:"failed_hosts,omitempty"`
	// Recovered marks a job re-adopted from the durable store after a
	// control-plane restart: it was queued or in flight when the previous
	// incarnation died and was re-admitted (and, if in flight,
	// re-dispatched) on boot.
	Recovered   bool      `json:"recovered,omitempty"`
	Deadline    time.Time `json:"deadline,omitzero"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
	Error       string    `json:"error,omitempty"`
	// Timings is the job's lifecycle phase-boundary block: one timestamp
	// per pipeline phase the job has crossed so far, plus derived
	// durations. Nil only for statuses predating the tracing layer
	// (store records persisted by older incarnations).
	Timings *JobTimings `json:"timings,omitempty"`
}

// Lifecycle phase names, in pipeline order. These are both the trace
// event names and the `phase` label values of the
// vdce_job_phase_seconds histogram.
const (
	PhaseSubmitted  = "submitted"
	PhaseAdmitted   = "admitted"
	PhaseScheduled  = "scheduled"
	PhaseDispatched = "dispatched"
	PhaseRunning    = "running"
)

// JobTimings is the phase-boundary view of one job: when each pipeline
// phase was entered (zero until crossed) and the durations between
// consecutive crossed boundaries, in seconds.
type JobTimings struct {
	SubmittedAt  time.Time `json:"submitted_at,omitzero"`
	AdmittedAt   time.Time `json:"admitted_at,omitzero"`
	ScheduledAt  time.Time `json:"scheduled_at,omitzero"`
	DispatchedAt time.Time `json:"dispatched_at,omitzero"`
	RunningAt    time.Time `json:"running_at,omitzero"`
	FinishedAt   time.Time `json:"finished_at,omitzero"`
	// SubmitWaitSeconds: Submit call to admission-queue entry.
	SubmitWaitSeconds float64 `json:"submit_wait_seconds,omitempty"`
	// QueueWaitSeconds: admission-queue entry to schedule completion.
	QueueWaitSeconds float64 `json:"queue_wait_seconds,omitempty"`
	// DispatchWaitSeconds: schedule completion to run-slot dispatch
	// (includes host-quota parks and run-slot waits).
	DispatchWaitSeconds float64 `json:"dispatch_wait_seconds,omitempty"`
	// RunSeconds: running to terminal.
	RunSeconds float64 `json:"run_seconds,omitempty"`
	// TotalSeconds: submission to terminal.
	TotalSeconds float64 `json:"total_seconds,omitempty"`
}

// TraceEvent is one entry in a job's lifecycle trace: a phase boundary
// (submitted, admitted, scheduled, dispatched, running, or a terminal
// state) or a recovery point event (host-park, host-unpark,
// rescheduled, host-failure, recovered).
type TraceEvent struct {
	At    time.Time `json:"at"`
	Event string    `json:"event"`
	// Detail carries the event's subject when it has one: the host for
	// rescheduled/host-failure, the error for failed.
	Detail string `json:"detail,omitempty"`
}

// JobTrace is the full ordered lifecycle trace of one job, served by
// GET /v1/jobs/{id}/trace. Events are append-ordered and their
// timestamps are non-decreasing.
type JobTrace struct {
	ID     string       `json:"id"`
	Owner  string       `json:"owner,omitempty"`
	State  string       `json:"state"`
	Events []TraceEvent `json:"events"`
	// Timings is the same phase-boundary block JobStatus carries.
	Timings *JobTimings `json:"timings,omitempty"`
}

// Terminal reports whether the status will never change again.
func (s JobStatus) Terminal() bool {
	return s.State == JobStateDone || s.State == JobStateFailed || s.State == JobStateCanceled
}

// Matches is the job-control API's filter predicate: empty filter
// fields match everything. Every listing surface (board, live pipeline)
// shares it so the /v1 data paths cannot diverge.
func (s JobStatus) Matches(owner, state string) bool {
	if owner != "" && s.Owner != owner {
		return false
	}
	if state != "" && s.State != state {
		return false
	}
	return true
}

// SortJobs orders statuses stably by (submission time, then ID), the
// canonical listing order of the job-control API — deterministic, so
// paginated clients never see entries shift between pages.
func SortJobs(jobs []JobStatus) {
	sort.SliceStable(jobs, func(i, j int) bool {
		if !jobs[i].SubmittedAt.Equal(jobs[j].SubmittedAt) {
			return jobs[i].SubmittedAt.Before(jobs[j].SubmittedAt)
		}
		return jobs[i].ID < jobs[j].ID
	})
}

// OwnerUsage is one owner's live aggregate over the job board: how
// many jobs sit in each phase of the pipeline and how many testbed
// hosts the owner's running placements hold. It is the ground truth
// the /v1/owners counters report.
type OwnerUsage struct {
	// Queued counts jobs still in the admission queue.
	Queued int `json:"queued"`
	// InFlight counts scheduling + running jobs.
	InFlight int `json:"in_flight"`
	// HostsHeld sums each dispatched job's distinct placement hosts —
	// host slots, so two jobs sharing a host count it twice; the same
	// conservative accounting the per-owner hosts quota enforces.
	HostsHeld int `json:"hosts_held"`
	// Terminal tallies.
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
	// Total is every job the board retains for the owner.
	Total int `json:"total"`
}

// OwnerStatus is one owner's row in the /v1/owners listing: fair-share
// weight, configured per-owner quota limits (0 = unlimited), and live
// usage.
type OwnerStatus struct {
	Owner  string `json:"owner"`
	Weight int    `json:"weight"`
	// WeightPinned marks a weight set through the owner-admin endpoint:
	// it no longer follows the owner's submissions and survives restarts.
	WeightPinned bool `json:"weight_pinned,omitempty"`
	// Quota limits; zero means unlimited and is omitted from JSON.
	MaxQueued   int        `json:"max_queued,omitempty"`
	MaxInFlight int        `json:"max_in_flight,omitempty"`
	MaxHosts    int        `json:"max_hosts,omitempty"`
	Usage       OwnerUsage `json:"usage"`
	// API request rate limit enforced at the serving mount (token
	// bucket; zero means the mount enforces none) and how many requests
	// of this owner it has answered 429. Filled by the job-control API,
	// not the pipeline.
	RateRPS       float64 `json:"rate_rps,omitempty"`
	RateBurst     int     `json:"rate_burst,omitempty"`
	RateThrottled uint64  `json:"rate_throttled,omitempty"`
}

// OwnerUpdate is a partial owner-admin change (PATCH /v1/owners/{owner}):
// nil fields are left untouched. Weight pins the owner's fair-share
// weight; the Max* fields install a per-owner quota override (0 = that
// cap unlimited).
type OwnerUpdate struct {
	Weight      *int `json:"weight,omitempty"`
	MaxQueued   *int `json:"max_queued,omitempty"`
	MaxInFlight *int `json:"max_in_flight,omitempty"`
	MaxHosts    *int `json:"max_hosts,omitempty"`
}

// Empty reports whether the update changes nothing (a request error on
// the admin surface).
func (u OwnerUpdate) Empty() bool {
	return u.Weight == nil && u.MaxQueued == nil && u.MaxInFlight == nil && u.MaxHosts == nil
}

// boardShards is the JobBoard's fixed shard count. Shards are selected
// by job-ID hash (Delete and Get receive only an ID, so the ID is the
// only key every write path shares); 32 keeps per-shard row counts in
// cache-friendly territory at a million jobs while the array of
// padded-ish shard structs stays trivial.
const boardShards = 32

// JobBoard is the monitoring view of the submission pipeline: the
// current status of every job plus per-state counters. It is safe for
// concurrent use by the pipeline workers and monitoring readers.
//
// The board is sharded by job-ID hash so submit/terminalize publishes
// and monitoring reads stop serializing on one lock: each shard has its
// own mutex, rows, and incrementally maintained per-state and per-owner
// aggregates, plus a generation-validated copy-on-write snapshot of its
// rows (the PR 3 pattern) that listing reads share without holding any
// lock. Writers bump the shard generation; a read finding the cached
// snapshot's generation current reuses it, so a burst of listings over
// an unchanged board sorts nothing, and a write only invalidates 1/32
// of the board.
type JobBoard struct {
	shards [boardShards]boardShard
	// snapHits/snapRebuilds count snapshot reads served from the cache
	// versus rebuilt — the observability of the sharded read path.
	snapHits     atomic.Uint64
	snapRebuilds atomic.Uint64
}

// boardShard is one hash shard: rows plus aggregates under a private
// mutex, and the lock-free row snapshot readers share.
type boardShard struct {
	mu   sync.Mutex
	gen  atomic.Uint64
	jobs map[string]JobStatus
	// counts tallies rows by state, maintained on every write, so
	// Counts/InFlight/CountFiltered never scan rows.
	counts map[string]int
	// usage is the per-owner aggregate (the /v1/owners ground truth),
	// maintained on every write; owners whose last retained row leaves
	// the shard are deleted, so transient owners do not accrete.
	usage map[string]ownerAgg
	snap  atomic.Pointer[boardSnap]
}

// ownerAgg is one owner's aggregate within one shard: the public usage
// counters plus the latest-submitted retained row's share weight. The
// weight is what lets /v1/owners keep reporting an owner's
// last-submitted weight after the admission queue pruned the drained
// owner — the board rows are the surviving record, and they are bounded
// by retention. lastAt/lastID order "latest" by the canonical
// (SubmittedAt, ID) job order; if the latest row itself is evicted the
// weight sticks at the last value seen, which is still the latest
// submission the board knew about.
type ownerAgg struct {
	usage  OwnerUsage
	lastAt time.Time
	lastID string
	weight int
}

// boardSnap is one shard's immutable published row set, in canonical
// (SubmittedAt, ID) order, valid while gen matches the shard's.
type boardSnap struct {
	gen  uint64
	rows []JobStatus
}

// NewJobBoard returns an empty board.
func NewJobBoard() *JobBoard {
	b := &JobBoard{}
	for i := range b.shards {
		sh := &b.shards[i]
		sh.jobs = make(map[string]JobStatus)
		sh.counts = make(map[string]int)
		sh.usage = make(map[string]ownerAgg)
	}
	return b
}

// shard maps a job ID to its home shard (FNV-1a).
func (b *JobBoard) shard(id string) *boardShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return &b.shards[h%boardShards]
}

// apply folds one row into (sign=+1) or out of (sign=-1) the shard's
// incremental aggregates. Caller holds sh.mu.
func (sh *boardShard) apply(s JobStatus, sign int) {
	sh.counts[s.State] += sign
	if sh.counts[s.State] == 0 {
		delete(sh.counts, s.State)
	}
	agg := sh.usage[s.Owner]
	u := &agg.usage
	switch s.State {
	case JobStateQueued:
		u.Queued += sign
	case JobStateScheduling, JobStateRunning:
		u.InFlight += sign
	case JobStateDone:
		u.Done += sign
	case JobStateFailed:
		u.Failed += sign
	case JobStateCanceled:
		u.Canceled += sign
	}
	u.HostsHeld += sign * s.HostsHeld
	u.Total += sign
	if u.Total == 0 {
		delete(sh.usage, s.Owner)
		return
	}
	if sign > 0 && (agg.weight == 0 || s.SubmittedAt.After(agg.lastAt) ||
		(s.SubmittedAt.Equal(agg.lastAt) && s.ID >= agg.lastID)) {
		agg.lastAt, agg.lastID, agg.weight = s.SubmittedAt, s.ID, s.ShareWeight
	}
	sh.usage[s.Owner] = agg
}

// Update records the latest status of a job, inserting it on first sight.
func (b *JobBoard) Update(s JobStatus) {
	sh := b.shard(s.ID)
	sh.mu.Lock()
	if old, ok := sh.jobs[s.ID]; ok {
		sh.apply(old, -1)
	}
	sh.jobs[s.ID] = s
	sh.apply(s, +1)
	sh.gen.Add(1)
	sh.mu.Unlock()
}

// Delete removes a job from the board (retention eviction). Unknown
// IDs are a no-op.
func (b *JobBoard) Delete(id string) {
	sh := b.shard(id)
	sh.mu.Lock()
	if old, ok := sh.jobs[id]; ok {
		delete(sh.jobs, id)
		sh.apply(old, -1)
		sh.gen.Add(1)
	}
	sh.mu.Unlock()
}

// Get returns the last recorded status of one job.
func (b *JobBoard) Get(id string) (JobStatus, bool) {
	sh := b.shard(id)
	sh.mu.Lock()
	s, ok := sh.jobs[id]
	sh.mu.Unlock()
	return s, ok
}

// rows returns the shard's current sorted row snapshot, rebuilding it
// only when a write invalidated the cached one. The returned slice is
// immutable and shared: callers read, never mutate.
func (sh *boardShard) rows(b *JobBoard) []JobStatus {
	if s := sh.snap.Load(); s != nil && s.gen == sh.gen.Load() {
		b.snapHits.Add(1)
		return s.rows
	}
	sh.mu.Lock()
	g := sh.gen.Load()
	if s := sh.snap.Load(); s != nil && s.gen == g {
		sh.mu.Unlock()
		b.snapHits.Add(1)
		return s.rows
	}
	rows := make([]JobStatus, 0, len(sh.jobs))
	for _, s := range sh.jobs {
		rows = append(rows, s)
	}
	SortJobs(rows)
	sh.snap.Store(&boardSnap{gen: g, rows: rows})
	sh.mu.Unlock()
	b.snapRebuilds.Add(1)
	return rows
}

// List returns every job status in stable (submission time, then ID)
// order.
func (b *JobBoard) List() []JobStatus {
	return b.ListFiltered("", "")
}

// ListFiltered returns the job statuses matching the owner and state
// filters (empty strings match everything), in stable (submission time,
// then ID) order — the deterministic base the job-control API paginates
// over. The scan walks the shards' immutable snapshots, so it holds no
// lock while filtering and merging and never blocks a publish.
func (b *JobBoard) ListFiltered(owner, state string) []JobStatus {
	var out []JobStatus
	for i := range b.shards {
		for _, s := range b.shards[i].rows(b) {
			if s.Matches(owner, state) {
				out = append(out, s)
			}
		}
	}
	SortJobs(out)
	return out
}

// OwnerUsages aggregates the board by owner: per-phase job counts and
// held hosts, keyed by owner name (the anonymous owner is ""). This is
// the ground-truth source behind the /v1/owners counters. Served from
// the shards' incremental aggregates — O(owners), not O(jobs), so a
// million-job board answers in microseconds.
func (b *JobBoard) OwnerUsages() map[string]OwnerUsage {
	out := make(map[string]OwnerUsage)
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.Lock()
		for owner, agg := range sh.usage {
			u := out[owner]
			u.Queued += agg.usage.Queued
			u.InFlight += agg.usage.InFlight
			u.HostsHeld += agg.usage.HostsHeld
			u.Done += agg.usage.Done
			u.Failed += agg.usage.Failed
			u.Canceled += agg.usage.Canceled
			u.Total += agg.usage.Total
			out[owner] = u
		}
		sh.mu.Unlock()
	}
	return out
}

// OwnerWeights reports, per owner with retained rows, the share weight
// of the owner's latest-submitted row — the board-side weight memory
// /v1/owners falls back to once the admission queue prunes a fully
// drained owner. Owners whose rows carried no weight report 0.
func (b *JobBoard) OwnerWeights() map[string]int {
	type latest struct {
		at time.Time
		id string
	}
	seen := make(map[string]latest)
	out := make(map[string]int)
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.Lock()
		for owner, agg := range sh.usage {
			l, ok := seen[owner]
			if !ok || agg.lastAt.After(l.at) || (agg.lastAt.Equal(l.at) && agg.lastID > l.id) {
				seen[owner] = latest{at: agg.lastAt, id: agg.lastID}
				out[owner] = agg.weight
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// Counts returns how many jobs sit in each state, keyed by state name.
// Served from the shards' incremental tallies — no row scan.
func (b *JobBoard) Counts() map[string]int {
	out := make(map[string]int)
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.Lock()
		for state, n := range sh.counts {
			out[state] += n
		}
		sh.mu.Unlock()
	}
	return out
}

// CountFiltered returns how many retained rows match the owner and
// state filters — the count-only listing (limit=0) without
// materializing a single row. Unfiltered and single-filter counts come
// straight from the incremental aggregates; the owner+state combination
// falls back to a snapshot scan only for the two states the aggregates
// merge (scheduling/running).
func (b *JobBoard) CountFiltered(owner, state string) int {
	if owner == "" {
		if state == "" {
			n := 0
			for i := range b.shards {
				sh := &b.shards[i]
				sh.mu.Lock()
				for _, c := range sh.counts {
					n += c
				}
				sh.mu.Unlock()
			}
			return n
		}
		n := 0
		for i := range b.shards {
			sh := &b.shards[i]
			sh.mu.Lock()
			n += sh.counts[state]
			sh.mu.Unlock()
		}
		return n
	}
	if state == "" {
		n := 0
		for i := range b.shards {
			sh := &b.shards[i]
			sh.mu.Lock()
			if agg, ok := sh.usage[owner]; ok {
				n += agg.usage.Total
			}
			sh.mu.Unlock()
		}
		return n
	}
	perState := func(u OwnerUsage) (int, bool) {
		switch state {
		case JobStateQueued:
			return u.Queued, true
		case JobStateDone:
			return u.Done, true
		case JobStateFailed:
			return u.Failed, true
		case JobStateCanceled:
			return u.Canceled, true
		}
		return 0, false
	}
	n := 0
	exact := true
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.Lock()
		if agg, ok := sh.usage[owner]; ok {
			c, ok := perState(agg.usage)
			if !ok {
				exact = false
			}
			n += c
		}
		sh.mu.Unlock()
		if !exact {
			break
		}
	}
	if exact {
		return n
	}
	// scheduling/running share one aggregate counter; count those the
	// slow way, over the lock-free snapshots.
	n = 0
	for i := range b.shards {
		for _, s := range b.shards[i].rows(b) {
			if s.Matches(owner, state) {
				n++
			}
		}
	}
	return n
}

// InFlight returns how many jobs have been admitted but not finished.
func (b *JobBoard) InFlight() int {
	n := 0
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.Lock()
		n += sh.counts[JobStateQueued] + sh.counts[JobStateScheduling] + sh.counts[JobStateRunning]
		sh.mu.Unlock()
	}
	return n
}

// Len returns how many rows the board retains.
func (b *JobBoard) Len() int {
	return b.CountFiltered("", "")
}

// SnapshotStats reports how many shard-snapshot reads were served from
// the generation-validated cache versus rebuilt after a write —
// exported for the vdce_board_snapshots_total series.
func (b *JobBoard) SnapshotStats() (hits, rebuilds uint64) {
	return b.snapHits.Load(), b.snapRebuilds.Load()
}

// States lists the state names present on the board, sorted — a
// convenience for monitoring output.
func (b *JobBoard) States() []string {
	counts := b.Counts()
	out := make([]string, 0, len(counts))
	for s := range counts {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
