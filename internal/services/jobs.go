package services

import (
	"sort"
	"sync"
	"time"
)

// Job lifecycle states, in submission order. The pipeline moves every
// application through queued -> scheduling -> running ->
// done|failed|canceled.
const (
	JobStateQueued     = "queued"
	JobStateScheduling = "scheduling"
	JobStateRunning    = "running"
	JobStateDone       = "done"
	JobStateFailed     = "failed"
	JobStateCanceled   = "canceled"
)

// JobStatus is a snapshot of one submitted application's lifecycle,
// published by the submission pipeline for monitoring tools and the
// versioned job-control API.
type JobStatus struct {
	ID    string `json:"id"`
	App   string `json:"app"`
	Owner string `json:"owner,omitempty"`
	State string `json:"state"`
	// Priority is the job's base admission priority (owner account
	// priority unless overridden at submit time).
	Priority int `json:"priority"`
	// ShareWeight is the owner fair-share weight this submission
	// carried: across owners, the admission queue drains in proportion
	// to weight.
	ShareWeight int `json:"share_weight,omitempty"`
	// HostsHeld is how many distinct testbed hosts the job's placement
	// holds while it is dispatched (0 while queued and after it
	// terminalizes) — the unit the per-owner held-hosts quota charges.
	HostsHeld int `json:"hosts_held,omitempty"`
	// QueuePosition is the job's 1-based dequeue position while queued
	// (1 = next to be scheduled); 0 once it left the admission queue.
	QueuePosition int               `json:"queue_position,omitempty"`
	Labels        map[string]string `json:"labels,omitempty"`
	// Reschedules counts mid-run task reschedules the execution engine
	// performed for this job (watchdog- or failure-detector-driven). It
	// updates live while the job runs.
	Reschedules int `json:"reschedules,omitempty"`
	// FailedHosts lists the distinct hosts whose failure (crash or
	// confirmed death — not overload) forced one of the job's tasks to
	// move, in first-observed order. It updates live while the job runs.
	FailedHosts []string `json:"failed_hosts,omitempty"`
	// Recovered marks a job re-adopted from the durable store after a
	// control-plane restart: it was queued or in flight when the previous
	// incarnation died and was re-admitted (and, if in flight,
	// re-dispatched) on boot.
	Recovered   bool      `json:"recovered,omitempty"`
	Deadline    time.Time `json:"deadline,omitzero"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
	Error       string    `json:"error,omitempty"`
	// Timings is the job's lifecycle phase-boundary block: one timestamp
	// per pipeline phase the job has crossed so far, plus derived
	// durations. Nil only for statuses predating the tracing layer
	// (store records persisted by older incarnations).
	Timings *JobTimings `json:"timings,omitempty"`
}

// Lifecycle phase names, in pipeline order. These are both the trace
// event names and the `phase` label values of the
// vdce_job_phase_seconds histogram.
const (
	PhaseSubmitted  = "submitted"
	PhaseAdmitted   = "admitted"
	PhaseScheduled  = "scheduled"
	PhaseDispatched = "dispatched"
	PhaseRunning    = "running"
)

// JobTimings is the phase-boundary view of one job: when each pipeline
// phase was entered (zero until crossed) and the durations between
// consecutive crossed boundaries, in seconds.
type JobTimings struct {
	SubmittedAt  time.Time `json:"submitted_at,omitzero"`
	AdmittedAt   time.Time `json:"admitted_at,omitzero"`
	ScheduledAt  time.Time `json:"scheduled_at,omitzero"`
	DispatchedAt time.Time `json:"dispatched_at,omitzero"`
	RunningAt    time.Time `json:"running_at,omitzero"`
	FinishedAt   time.Time `json:"finished_at,omitzero"`
	// SubmitWaitSeconds: Submit call to admission-queue entry.
	SubmitWaitSeconds float64 `json:"submit_wait_seconds,omitempty"`
	// QueueWaitSeconds: admission-queue entry to schedule completion.
	QueueWaitSeconds float64 `json:"queue_wait_seconds,omitempty"`
	// DispatchWaitSeconds: schedule completion to run-slot dispatch
	// (includes host-quota parks and run-slot waits).
	DispatchWaitSeconds float64 `json:"dispatch_wait_seconds,omitempty"`
	// RunSeconds: running to terminal.
	RunSeconds float64 `json:"run_seconds,omitempty"`
	// TotalSeconds: submission to terminal.
	TotalSeconds float64 `json:"total_seconds,omitempty"`
}

// TraceEvent is one entry in a job's lifecycle trace: a phase boundary
// (submitted, admitted, scheduled, dispatched, running, or a terminal
// state) or a recovery point event (host-park, host-unpark,
// rescheduled, host-failure, recovered).
type TraceEvent struct {
	At    time.Time `json:"at"`
	Event string    `json:"event"`
	// Detail carries the event's subject when it has one: the host for
	// rescheduled/host-failure, the error for failed.
	Detail string `json:"detail,omitempty"`
}

// JobTrace is the full ordered lifecycle trace of one job, served by
// GET /v1/jobs/{id}/trace. Events are append-ordered and their
// timestamps are non-decreasing.
type JobTrace struct {
	ID     string       `json:"id"`
	Owner  string       `json:"owner,omitempty"`
	State  string       `json:"state"`
	Events []TraceEvent `json:"events"`
	// Timings is the same phase-boundary block JobStatus carries.
	Timings *JobTimings `json:"timings,omitempty"`
}

// Terminal reports whether the status will never change again.
func (s JobStatus) Terminal() bool {
	return s.State == JobStateDone || s.State == JobStateFailed || s.State == JobStateCanceled
}

// Matches is the job-control API's filter predicate: empty filter
// fields match everything. Every listing surface (board, live pipeline)
// shares it so the /v1 data paths cannot diverge.
func (s JobStatus) Matches(owner, state string) bool {
	if owner != "" && s.Owner != owner {
		return false
	}
	if state != "" && s.State != state {
		return false
	}
	return true
}

// SortJobs orders statuses stably by (submission time, then ID), the
// canonical listing order of the job-control API — deterministic, so
// paginated clients never see entries shift between pages.
func SortJobs(jobs []JobStatus) {
	sort.SliceStable(jobs, func(i, j int) bool {
		if !jobs[i].SubmittedAt.Equal(jobs[j].SubmittedAt) {
			return jobs[i].SubmittedAt.Before(jobs[j].SubmittedAt)
		}
		return jobs[i].ID < jobs[j].ID
	})
}

// OwnerUsage is one owner's live aggregate over the job board: how
// many jobs sit in each phase of the pipeline and how many testbed
// hosts the owner's running placements hold. It is the ground truth
// the /v1/owners counters report.
type OwnerUsage struct {
	// Queued counts jobs still in the admission queue.
	Queued int `json:"queued"`
	// InFlight counts scheduling + running jobs.
	InFlight int `json:"in_flight"`
	// HostsHeld sums each dispatched job's distinct placement hosts —
	// host slots, so two jobs sharing a host count it twice; the same
	// conservative accounting the per-owner hosts quota enforces.
	HostsHeld int `json:"hosts_held"`
	// Terminal tallies.
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
	// Total is every job the board retains for the owner.
	Total int `json:"total"`
}

// OwnerStatus is one owner's row in the /v1/owners listing: fair-share
// weight, configured per-owner quota limits (0 = unlimited), and live
// usage.
type OwnerStatus struct {
	Owner  string `json:"owner"`
	Weight int    `json:"weight"`
	// WeightPinned marks a weight set through the owner-admin endpoint:
	// it no longer follows the owner's submissions and survives restarts.
	WeightPinned bool `json:"weight_pinned,omitempty"`
	// Quota limits; zero means unlimited and is omitted from JSON.
	MaxQueued   int        `json:"max_queued,omitempty"`
	MaxInFlight int        `json:"max_in_flight,omitempty"`
	MaxHosts    int        `json:"max_hosts,omitempty"`
	Usage       OwnerUsage `json:"usage"`
	// API request rate limit enforced at the serving mount (token
	// bucket; zero means the mount enforces none) and how many requests
	// of this owner it has answered 429. Filled by the job-control API,
	// not the pipeline.
	RateRPS       float64 `json:"rate_rps,omitempty"`
	RateBurst     int     `json:"rate_burst,omitempty"`
	RateThrottled uint64  `json:"rate_throttled,omitempty"`
}

// OwnerUpdate is a partial owner-admin change (PATCH /v1/owners/{owner}):
// nil fields are left untouched. Weight pins the owner's fair-share
// weight; the Max* fields install a per-owner quota override (0 = that
// cap unlimited).
type OwnerUpdate struct {
	Weight      *int `json:"weight,omitempty"`
	MaxQueued   *int `json:"max_queued,omitempty"`
	MaxInFlight *int `json:"max_in_flight,omitempty"`
	MaxHosts    *int `json:"max_hosts,omitempty"`
}

// Empty reports whether the update changes nothing (a request error on
// the admin surface).
func (u OwnerUpdate) Empty() bool {
	return u.Weight == nil && u.MaxQueued == nil && u.MaxInFlight == nil && u.MaxHosts == nil
}

// JobBoard is the monitoring view of the submission pipeline: the
// current status of every job plus per-state counters. It is safe for
// concurrent use by the pipeline workers and monitoring readers.
type JobBoard struct {
	mu    sync.Mutex
	order []string
	jobs  map[string]JobStatus
}

// NewJobBoard returns an empty board.
func NewJobBoard() *JobBoard {
	return &JobBoard{jobs: make(map[string]JobStatus)}
}

// Update records the latest status of a job, inserting it on first sight.
func (b *JobBoard) Update(s JobStatus) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.jobs[s.ID]; !ok {
		b.order = append(b.order, s.ID)
	}
	b.jobs[s.ID] = s
}

// Delete removes a job from the board (retention eviction). Unknown
// IDs are a no-op.
func (b *JobBoard) Delete(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.jobs[id]; !ok {
		return
	}
	delete(b.jobs, id)
	for i, x := range b.order {
		if x == id {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
}

// Get returns the last recorded status of one job.
func (b *JobBoard) Get(id string) (JobStatus, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.jobs[id]
	return s, ok
}

// List returns every job status in stable (submission time, then ID)
// order.
func (b *JobBoard) List() []JobStatus {
	return b.ListFiltered("", "")
}

// ListFiltered returns the job statuses matching the owner and state
// filters (empty strings match everything), in stable (submission time,
// then ID) order — the deterministic base the job-control API paginates
// over.
func (b *JobBoard) ListFiltered(owner, state string) []JobStatus {
	b.mu.Lock()
	out := make([]JobStatus, 0, len(b.order))
	for _, id := range b.order {
		if s := b.jobs[id]; s.Matches(owner, state) {
			out = append(out, s)
		}
	}
	b.mu.Unlock()
	SortJobs(out)
	return out
}

// OwnerUsages aggregates the board by owner: per-phase job counts and
// held hosts, keyed by owner name (the anonymous owner is ""). This is
// the ground-truth source behind the /v1/owners counters.
func (b *JobBoard) OwnerUsages() map[string]OwnerUsage {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]OwnerUsage)
	for _, s := range b.jobs {
		u := out[s.Owner]
		switch s.State {
		case JobStateQueued:
			u.Queued++
		case JobStateScheduling, JobStateRunning:
			u.InFlight++
		case JobStateDone:
			u.Done++
		case JobStateFailed:
			u.Failed++
		case JobStateCanceled:
			u.Canceled++
		}
		u.HostsHeld += s.HostsHeld
		u.Total++
		out[s.Owner] = u
	}
	return out
}

// Counts returns how many jobs sit in each state, keyed by state name.
func (b *JobBoard) Counts() map[string]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int)
	for _, s := range b.jobs {
		out[s.State]++
	}
	return out
}

// InFlight returns how many jobs have been admitted but not finished.
func (b *JobBoard) InFlight() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, s := range b.jobs {
		if !s.Terminal() {
			n++
		}
	}
	return n
}

// States lists the state names present on the board, sorted — a
// convenience for monitoring output.
func (b *JobBoard) States() []string {
	counts := b.Counts()
	out := make([]string, 0, len(counts))
	for s := range counts {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
