package services

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestJobBoardLifecycle(t *testing.T) {
	b := NewJobBoard()
	now := time.Now()
	b.Update(JobStatus{ID: "job-1", App: "les", State: JobStateQueued, SubmittedAt: now})
	b.Update(JobStatus{ID: "job-2", App: "c3i", State: JobStateQueued, SubmittedAt: now})
	if got := b.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}

	b.Update(JobStatus{ID: "job-1", App: "les", State: JobStateRunning, SubmittedAt: now, StartedAt: now})
	b.Update(JobStatus{ID: "job-1", App: "les", State: JobStateDone, SubmittedAt: now, StartedAt: now, FinishedAt: now})
	b.Update(JobStatus{ID: "job-2", App: "c3i", State: JobStateFailed, Error: "no eligible host"})

	if got := b.InFlight(); got != 0 {
		t.Fatalf("InFlight after completion = %d, want 0", got)
	}
	counts := b.Counts()
	if counts[JobStateDone] != 1 || counts[JobStateFailed] != 1 {
		t.Fatalf("Counts = %v", counts)
	}
	if got := b.States(); len(got) != 2 || got[0] != JobStateDone || got[1] != JobStateFailed {
		t.Fatalf("States = %v", got)
	}

	s, ok := b.Get("job-2")
	if !ok || s.Error != "no eligible host" || !s.Terminal() {
		t.Fatalf("Get(job-2) = %+v, %v", s, ok)
	}
	if _, ok := b.Get("job-404"); ok {
		t.Fatal("Get of unknown job succeeded")
	}

	list := b.List()
	if len(list) != 2 || list[0].ID != "job-1" || list[1].ID != "job-2" {
		t.Fatalf("List out of submission order: %+v", list)
	}
}

func TestJobBoardConcurrentUpdates(t *testing.T) {
	b := NewJobBoard()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("job-%d-%d", w, i)
				b.Update(JobStatus{ID: id, State: JobStateQueued})
				b.Update(JobStatus{ID: id, State: JobStateDone})
				b.Get(id)
				b.InFlight()
			}
		}(w)
	}
	wg.Wait()
	if got := len(b.List()); got != 8*50 {
		t.Fatalf("List = %d entries, want %d", got, 8*50)
	}
	if got := b.Counts()[JobStateDone]; got != 8*50 {
		t.Fatalf("done count = %d, want %d", got, 8*50)
	}
}
