package services

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestJobBoardLifecycle(t *testing.T) {
	b := NewJobBoard()
	now := time.Now()
	b.Update(JobStatus{ID: "job-1", App: "les", State: JobStateQueued, SubmittedAt: now})
	b.Update(JobStatus{ID: "job-2", App: "c3i", State: JobStateQueued, SubmittedAt: now})
	if got := b.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}

	b.Update(JobStatus{ID: "job-1", App: "les", State: JobStateRunning, SubmittedAt: now, StartedAt: now})
	b.Update(JobStatus{ID: "job-1", App: "les", State: JobStateDone, SubmittedAt: now, StartedAt: now, FinishedAt: now})
	b.Update(JobStatus{ID: "job-2", App: "c3i", State: JobStateFailed, SubmittedAt: now, Error: "no eligible host"})

	if got := b.InFlight(); got != 0 {
		t.Fatalf("InFlight after completion = %d, want 0", got)
	}
	counts := b.Counts()
	if counts[JobStateDone] != 1 || counts[JobStateFailed] != 1 {
		t.Fatalf("Counts = %v", counts)
	}
	if got := b.States(); len(got) != 2 || got[0] != JobStateDone || got[1] != JobStateFailed {
		t.Fatalf("States = %v", got)
	}

	s, ok := b.Get("job-2")
	if !ok || s.Error != "no eligible host" || !s.Terminal() {
		t.Fatalf("Get(job-2) = %+v, %v", s, ok)
	}
	if _, ok := b.Get("job-404"); ok {
		t.Fatal("Get of unknown job succeeded")
	}

	list := b.List()
	if len(list) != 2 || list[0].ID != "job-1" || list[1].ID != "job-2" {
		t.Fatalf("List out of submission order: %+v", list)
	}
}

// TestJobBoardStableOrderAndFilters is the pagination-determinism
// regression test: List orders by (submit time, then ID) regardless of
// insertion order, and ListFiltered narrows by owner and state without
// disturbing that order.
func TestJobBoardStableOrderAndFilters(t *testing.T) {
	b := NewJobBoard()
	t0 := time.Unix(100, 0)
	// Inserted deliberately out of submission order, with an ID tie on t0.
	b.Update(JobStatus{ID: "job-3", Owner: "ana", State: JobStateRunning, SubmittedAt: t0.Add(2 * time.Second)})
	b.Update(JobStatus{ID: "job-2", Owner: "bo", State: JobStateQueued, SubmittedAt: t0})
	b.Update(JobStatus{ID: "job-1", Owner: "ana", State: JobStateDone, SubmittedAt: t0})
	b.Update(JobStatus{ID: "job-4", Owner: "ana", State: JobStateCanceled, SubmittedAt: t0.Add(time.Second)})

	wantOrder := []string{"job-1", "job-2", "job-4", "job-3"}
	list := b.List()
	if len(list) != len(wantOrder) {
		t.Fatalf("List = %d entries, want %d", len(list), len(wantOrder))
	}
	for i, id := range wantOrder {
		if list[i].ID != id {
			t.Fatalf("List[%d] = %s, want %s (full: %+v)", i, list[i].ID, id, list)
		}
	}
	// Repeated calls are identical — the determinism pagination needs.
	again := b.List()
	for i := range list {
		if again[i].ID != list[i].ID {
			t.Fatalf("List not stable across calls: %v vs %v", again[i].ID, list[i].ID)
		}
	}

	owned := b.ListFiltered("ana", "")
	if len(owned) != 3 || owned[0].ID != "job-1" || owned[1].ID != "job-4" || owned[2].ID != "job-3" {
		t.Fatalf("ListFiltered(ana) = %+v", owned)
	}
	canceled := b.ListFiltered("", JobStateCanceled)
	if len(canceled) != 1 || canceled[0].ID != "job-4" {
		t.Fatalf("ListFiltered(canceled) = %+v", canceled)
	}
	if !canceled[0].Terminal() {
		t.Fatal("canceled status not terminal")
	}
	both := b.ListFiltered("ana", JobStateDone)
	if len(both) != 1 || both[0].ID != "job-1" {
		t.Fatalf("ListFiltered(ana, done) = %+v", both)
	}
	if got := b.ListFiltered("ghost", ""); len(got) != 0 {
		t.Fatalf("ListFiltered(ghost) = %+v, want empty", got)
	}
}

func TestJobBoardConcurrentUpdates(t *testing.T) {
	b := NewJobBoard()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("job-%d-%d", w, i)
				b.Update(JobStatus{ID: id, State: JobStateQueued})
				b.Update(JobStatus{ID: id, State: JobStateDone})
				b.Get(id)
				b.InFlight()
			}
		}(w)
	}
	wg.Wait()
	if got := len(b.List()); got != 8*50 {
		t.Fatalf("List = %d entries, want %d", got, 8*50)
	}
	if got := b.Counts()[JobStateDone]; got != 8*50 {
		t.Fatalf("done count = %d, want %d", got, 8*50)
	}
}
