package services

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Point is one sample in a visualization series.
type Point struct {
	T time.Duration // offset from series start
	V float64
}

// Metrics is the visualization service's backing store: named time
// series of application performance and workload measurements.
type Metrics struct {
	mu     sync.Mutex
	series map[string][]Point
}

// NewMetrics returns an empty store.
func NewMetrics() *Metrics {
	return &Metrics{series: make(map[string][]Point)}
}

// Add appends a sample to the named series.
func (m *Metrics) Add(name string, t time.Duration, v float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.series[name] = append(m.series[name], Point{T: t, V: v})
}

// Series returns a copy of the named series in insertion order.
func (m *Metrics) Series(name string) []Point {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Point(nil), m.series[name]...)
}

// Names lists the stored series, sorted.
func (m *Metrics) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.series))
	for n := range m.series {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Chart renders the named series as an ASCII line chart of the given
// width and height — the terminal stand-in for the paper's workload
// visualization windows.
func (m *Metrics) Chart(name string, width, height int) string {
	pts := m.Series(name)
	if len(pts) == 0 {
		return fmt.Sprintf("%s: (no data)\n", name)
	}
	if width < 8 {
		width = 8
	}
	if height < 2 {
		height = 2
	}
	lo, hi := pts[0].V, pts[0].V
	for _, p := range pts {
		lo = math.Min(lo, p.V)
		hi = math.Max(hi, p.V)
	}
	if hi == lo {
		hi = lo + 1
	}
	// Resample onto the grid by bucketing points into columns. Points
	// need not be time-ordered (several recorders may share a series).
	cols := make([]float64, width)
	filled := make([]bool, width)
	var tMax time.Duration
	for _, p := range pts {
		if p.T > tMax {
			tMax = p.T
		}
	}
	if tMax == 0 {
		tMax = 1
	}
	for _, p := range pts {
		c := int(float64(p.T) / float64(tMax) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		cols[c] = p.V // last write wins within a bucket
		filled[c] = true
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for c := 0; c < width; c++ {
		if !filled[c] {
			continue
		}
		r := int((cols[c] - lo) / (hi - lo) * float64(height-1))
		grid[height-1-r][c] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%.3g .. %.3g]\n", name, lo, hi)
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	return b.String()
}
