package services

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vdce/internal/afg"
)

func TestConsoleGate(t *testing.T) {
	c := NewConsole()
	if err := c.Gate(context.Background()); err != nil {
		t.Fatal(err)
	}
	c.Suspend()
	if !c.Suspended() {
		t.Fatal("not suspended")
	}
	// Gate blocks while suspended.
	released := make(chan error, 1)
	go func() { released <- c.Gate(context.Background()) }()
	select {
	case <-released:
		t.Fatal("gate passed while suspended")
	case <-time.After(20 * time.Millisecond):
	}
	c.Resume()
	select {
	case err := <-released:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("gate never released")
	}
	// Context cancellation unblocks a suspended gate.
	c.Suspend()
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- c.Gate(ctx) }()
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("cancelled gate returned nil")
	}
	// Double suspend / double resume are harmless.
	c.Suspend()
	c.Resume()
	c.Resume()
	if c.Suspended() {
		t.Fatal("resume lost")
	}
}

func TestMetricsSeriesAndChart(t *testing.T) {
	m := NewMetrics()
	for i := 0; i < 20; i++ {
		m.Add("load:h1", time.Duration(i)*time.Second, float64(i%5))
	}
	m.Add("other", time.Second, 1)
	if got := m.Names(); len(got) != 2 || got[0] != "load:h1" {
		t.Fatalf("Names = %v", got)
	}
	s := m.Series("load:h1")
	if len(s) != 20 || s[3].V != 3 {
		t.Fatalf("series wrong: %v", s[:4])
	}
	chart := m.Chart("load:h1", 40, 8)
	if !strings.Contains(chart, "*") || !strings.Contains(chart, "load:h1") {
		t.Fatalf("chart missing content:\n%s", chart)
	}
	if empty := m.Chart("missing", 10, 4); !strings.Contains(empty, "no data") {
		t.Fatalf("empty chart = %q", empty)
	}
	// Flat series still renders (degenerate range).
	m.Add("flat", 0, 2)
	m.Add("flat", time.Second, 2)
	if c := m.Chart("flat", 10, 3); !strings.Contains(c, "*") {
		t.Fatalf("flat chart:\n%s", c)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Add(fmt.Sprintf("s%d", i%2), time.Duration(j), float64(j))
				_ = m.Series("s0")
			}
		}(i)
	}
	wg.Wait()
	if len(m.Series("s0"))+len(m.Series("s1")) != 800 {
		t.Fatal("samples lost")
	}
}

func TestIOServiceFiles(t *testing.T) {
	root := t.TempDir()
	s := NewIOService(root)
	if err := s.Write("/users/VDCE/user_k/matrix_A.dat", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if !s.Exists("/users/VDCE/user_k/matrix_A.dat") {
		t.Fatal("written file missing")
	}
	got, err := s.Read(afg.FileSpec{Path: "/users/VDCE/user_k/matrix_A.dat"})
	if err != nil || string(got) != "data" {
		t.Fatalf("Read = %q, %v", got, err)
	}
	// Escapes are clipped by the leading-slash clean, not allowed out.
	if err := s.Write("../../etc/passwd", []byte("x")); err != nil {
		t.Fatalf("relative escape should be confined, got error %v", err)
	}
	if s.Exists("../../etc/passwd") != true {
		t.Fatal("confined path should exist under root")
	}
	if _, err := s.Read(afg.FileSpec{Path: "/missing.dat"}); err == nil {
		t.Fatal("missing file read succeeded")
	}
	if _, err := s.Read(afg.FileSpec{Dataflow: true}); err == nil {
		t.Fatal("dataflow spec read succeeded")
	}
	if _, err := s.Read(afg.FileSpec{}); err == nil {
		t.Fatal("empty spec read succeeded")
	}
}

func TestIOServiceURL(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/ok" {
			fmt.Fprint(w, "payload")
			return
		}
		http.NotFound(w, r)
	}))
	defer srv.Close()
	s := NewIOService(t.TempDir())
	got, err := s.Read(afg.FileSpec{Path: srv.URL + "/ok", URL: true})
	if err != nil || string(got) != "payload" {
		t.Fatalf("URL read = %q, %v", got, err)
	}
	if _, err := s.Read(afg.FileSpec{Path: srv.URL + "/missing", URL: true}); err == nil {
		t.Fatal("404 fetch succeeded")
	}
	if _, err := s.Read(afg.FileSpec{Path: "http://127.0.0.1:1/none", URL: true}); err == nil {
		t.Fatal("unreachable fetch succeeded")
	}
}

func TestDSMSequential(t *testing.T) {
	d := NewDSM()
	defer d.Close()
	if _, ok, err := d.Read("k"); err != nil || ok {
		t.Fatalf("fresh read: %v %v", ok, err)
	}
	if err := d.Write("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := d.Read("k")
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("read after write: %q %v %v", v, ok, err)
	}
	// CAS success and failure.
	swapped, _, err := d.CompareAndSwap("k", []byte("v1"), []byte("v2"))
	if err != nil || !swapped {
		t.Fatalf("cas: %v %v", swapped, err)
	}
	swapped, cur, err := d.CompareAndSwap("k", []byte("v1"), []byte("v3"))
	if err != nil || swapped || string(cur) != "v2" {
		t.Fatalf("stale cas: %v %q %v", swapped, cur, err)
	}
}

func TestDSMCASIsAtomic(t *testing.T) {
	d := NewDSM()
	defer d.Close()
	if err := d.Write("ctr", []byte("0")); err != nil {
		t.Fatal(err)
	}
	// 8 workers x 50 CAS-increments must total exactly 400.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for {
					cur, _, err := d.Read("ctr")
					if err != nil {
						t.Errorf("read: %v", err)
						return
					}
					var n int
					fmt.Sscanf(string(cur), "%d", &n)
					ok, _, err := d.CompareAndSwap("ctr", cur, []byte(fmt.Sprint(n+1)))
					if err != nil {
						t.Errorf("cas: %v", err)
						return
					}
					if ok {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	v, _, _ := d.Read("ctr")
	if string(v) != "400" {
		t.Fatalf("counter = %s, want 400", v)
	}
}

func TestDSMClosed(t *testing.T) {
	d := NewDSM()
	d.Close()
	if err := d.Write("k", []byte("v")); err == nil {
		t.Fatal("write after close succeeded")
	}
}
