// Package sim evaluates resource allocation tables by discrete-event
// simulation: given an application flow graph, an allocation, and a
// network model, it computes when every task starts and finishes under
// two constraints — precedence (a task starts only after every parent's
// output has arrived) and host exclusivity (a host runs one task at a
// time; a parallel task occupies all its hosts). The simulated schedule
// length is the metric the paper's scheduler minimizes, and what the E2
// and E4 experiments report.
//
// Links are modeled with latency + bandwidth delay but without
// contention, matching the scheduler's own transfer-time estimate; host
// serialization, the first-order effect list scheduling manages, is
// exact.
package sim

import (
	"fmt"
	"strings"
	"time"

	"vdce/internal/afg"
	"vdce/internal/core"
	"vdce/internal/netmodel"
)

// TaskTimes records one task's simulated interval.
type TaskTimes struct {
	Task   afg.TaskID
	Start  time.Duration
	Finish time.Duration
}

// Result is the outcome of one simulation.
type Result struct {
	// Makespan is the schedule length: the latest task finish time.
	Makespan time.Duration
	// Times maps each task to its interval.
	Times map[afg.TaskID]TaskTimes
	// HostBusy is the total execution time charged to each host.
	HostBusy map[string]time.Duration
	// InterSiteBytes is the total payload crossing site boundaries.
	InterSiteBytes int64
	// InterSiteTransfers counts edges whose endpoints sat on different
	// sites.
	InterSiteTransfers int
	// TotalBytes is the total payload moved on all edges.
	TotalBytes int64
}

// Utilization returns busy time divided by (makespan * number of hosts
// that ran at least one task); 0 for an empty schedule.
func (r *Result) Utilization() float64 {
	if r.Makespan <= 0 || len(r.HostBusy) == 0 {
		return 0
	}
	var busy time.Duration
	for _, d := range r.HostBusy {
		busy += d
	}
	return float64(busy) / (float64(r.Makespan) * float64(len(r.HostBusy)))
}

// String summarizes the result.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan=%v tasks=%d hosts=%d util=%.2f intersite=%dB/%d transfers\n",
		r.Makespan, len(r.Times), len(r.HostBusy), r.Utilization(), r.InterSiteBytes, r.InterSiteTransfers)
	return b.String()
}

// Run simulates table over g and net. Entries must be in topological
// order (core schedulers guarantee this; Validate enforces it). Tasks
// assigned to the same host execute in table order — the priority order
// the scheduler chose.
func Run(g *afg.Graph, table *core.AllocationTable, net *netmodel.Network) (*Result, error) {
	if err := table.Validate(g); err != nil {
		return nil, err
	}
	res := &Result{
		Times:    make(map[afg.TaskID]TaskTimes, len(table.Entries)),
		HostBusy: make(map[string]time.Duration),
	}
	hostFree := make(map[string]time.Duration)
	siteOf := make(map[afg.TaskID]string, len(table.Entries))

	for _, e := range table.Entries {
		siteOf[e.Task] = e.Site
		// Data-ready time: every parent's finish plus its edge transfer.
		var dataReady time.Duration
		for _, edge := range g.InEdges(e.Task) {
			parent, ok := res.Times[edge.From]
			if !ok {
				return nil, fmt.Errorf("sim: parent %d of %d not simulated (table order broken)", edge.From, e.Task)
			}
			size := g.EdgeSize(edge)
			xfer, err := net.TransferTime(size, siteOf[edge.From], e.Site)
			if err != nil {
				return nil, err
			}
			res.TotalBytes += size
			if siteOf[edge.From] != e.Site {
				res.InterSiteBytes += size
				res.InterSiteTransfers++
			}
			if arr := parent.Finish + xfer; arr > dataReady {
				dataReady = arr
			}
		}
		// Host-ready time: all assigned hosts free.
		start := dataReady
		for _, h := range e.Hosts {
			if hostFree[h] > start {
				start = hostFree[h]
			}
		}
		finish := start + e.Predicted
		for _, h := range e.Hosts {
			hostFree[h] = finish
			res.HostBusy[h] += e.Predicted
		}
		res.Times[e.Task] = TaskTimes{Task: e.Task, Start: start, Finish: finish}
		if finish > res.Makespan {
			res.Makespan = finish
		}
	}
	if err := checkInvariants(g, table, res, net); err != nil {
		return nil, err
	}
	return res, nil
}

// checkInvariants re-verifies the two scheduling invariants on the
// simulated timeline: precedence with transfer delays, and per-host
// mutual exclusion. A violation is a simulator bug, reported as an error
// so property tests catch it.
func checkInvariants(g *afg.Graph, table *core.AllocationTable, res *Result, net *netmodel.Network) error {
	siteOf := make(map[afg.TaskID]string, len(table.Entries))
	for _, e := range table.Entries {
		siteOf[e.Task] = e.Site
	}
	for _, edge := range g.Edges {
		p, c := res.Times[edge.From], res.Times[edge.To]
		xfer, err := net.TransferTime(g.EdgeSize(edge), siteOf[edge.From], siteOf[edge.To])
		if err != nil {
			return err
		}
		if c.Start < p.Finish+xfer {
			return fmt.Errorf("sim: precedence violated: %d starts %v before %d's data arrives %v",
				edge.To, c.Start, edge.From, p.Finish+xfer)
		}
	}
	// Host exclusivity: collect intervals per host and check overlap.
	type interval struct {
		start, finish time.Duration
		id            afg.TaskID
	}
	perHost := make(map[string][]interval)
	for _, e := range table.Entries {
		t := res.Times[e.Task]
		if t.Finish < t.Start {
			return fmt.Errorf("sim: task %d finishes before it starts", e.Task)
		}
		for _, h := range e.Hosts {
			perHost[h] = append(perHost[h], interval{t.Start, t.Finish, e.Task})
		}
	}
	for h, ivs := range perHost {
		for i := 0; i < len(ivs); i++ {
			for j := i + 1; j < len(ivs); j++ {
				a, b := ivs[i], ivs[j]
				if a.start < b.finish && b.start < a.finish && a.finish != a.start && b.finish != b.start {
					return fmt.Errorf("sim: host %s runs tasks %d and %d concurrently", h, a.id, b.id)
				}
			}
		}
	}
	return nil
}
