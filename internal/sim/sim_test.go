package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"vdce/internal/afg"
	"vdce/internal/core"
	"vdce/internal/netmodel"
)

// mkNet builds a two-site network with a known link.
func mkNet(t *testing.T) *netmodel.Network {
	t.Helper()
	n, err := netmodel.New([]string{"s1", "s2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetLink("s1", "s2", netmodel.Link{Latency: 10 * time.Millisecond, BytesPerSec: 1e6}); err != nil {
		t.Fatal(err)
	}
	if err := n.SetLink("s1", "s1", netmodel.Link{Latency: 0, BytesPerSec: 1e12}); err != nil {
		t.Fatal(err)
	}
	if err := n.SetLink("s2", "s2", netmodel.Link{Latency: 0, BytesPerSec: 1e12}); err != nil {
		t.Fatal(err)
	}
	return n
}

// chainGraph builds t0 -> t1 -> t2 with the given edge size.
func chainGraph(size int64) *afg.Graph {
	g := afg.NewGraph("chain")
	a := g.AddTask("A", "l", 0, 1)
	b := g.AddTask("B", "l", 1, 1)
	c := g.AddTask("C", "l", 1, 0)
	_ = g.Connect(a, 0, b, 0, size)
	_ = g.Connect(b, 0, c, 0, size)
	return g
}

func table(app string, entries ...core.Placement) *core.AllocationTable {
	return &core.AllocationTable{App: app, Entries: entries}
}

func TestChainSameHostSerializes(t *testing.T) {
	g := chainGraph(0)
	net := mkNet(t)
	tb := table("chain",
		core.Placement{Task: 0, TaskName: "A", Site: "s1", Hosts: []string{"h"}, Predicted: time.Second},
		core.Placement{Task: 1, TaskName: "B", Site: "s1", Hosts: []string{"h"}, Predicted: 2 * time.Second},
		core.Placement{Task: 2, TaskName: "C", Site: "s1", Hosts: []string{"h"}, Predicted: 3 * time.Second},
	)
	res, err := Run(g, tb, net)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 6*time.Second {
		t.Fatalf("makespan = %v, want 6s", res.Makespan)
	}
	if res.InterSiteTransfers != 0 || res.InterSiteBytes != 0 {
		t.Fatal("phantom inter-site traffic")
	}
	if res.HostBusy["h"] != 6*time.Second {
		t.Fatalf("host busy = %v", res.HostBusy["h"])
	}
	if u := res.Utilization(); u < 0.999 || u > 1.001 {
		t.Fatalf("utilization = %g, want 1", u)
	}
}

func TestChainCrossSitePaysTransfer(t *testing.T) {
	g := chainGraph(1e6) // 1 MB at 1 MB/s = 1s + 10ms latency
	net := mkNet(t)
	tb := table("chain",
		core.Placement{Task: 0, TaskName: "A", Site: "s1", Hosts: []string{"h1"}, Predicted: time.Second},
		core.Placement{Task: 1, TaskName: "B", Site: "s2", Hosts: []string{"h2"}, Predicted: time.Second},
		core.Placement{Task: 2, TaskName: "C", Site: "s2", Hosts: []string{"h2"}, Predicted: time.Second},
	)
	res, err := Run(g, tb, net)
	if err != nil {
		t.Fatal(err)
	}
	// t0: [0,1]; transfer 1.01s; t1: [2.01, 3.01]; t2 same site, zero-size?
	// size 1e6 within s2 at 1e12 B/s ~ 1us — call it negligible but
	// nonzero; assert a window instead of equality.
	if res.Makespan < 4*time.Second+10*time.Millisecond || res.Makespan > 4*time.Second+20*time.Millisecond {
		t.Fatalf("makespan = %v", res.Makespan)
	}
	if res.InterSiteTransfers != 1 || res.InterSiteBytes != 1e6 {
		t.Fatalf("inter-site accounting: %d transfers %dB", res.InterSiteTransfers, res.InterSiteBytes)
	}
	if res.TotalBytes != 2e6 {
		t.Fatalf("total bytes = %d", res.TotalBytes)
	}
}

func TestDiamondParallelBranches(t *testing.T) {
	g := afg.NewGraph("diamond")
	a := g.AddTask("A", "l", 0, 2)
	b := g.AddTask("B", "l", 1, 1)
	c := g.AddTask("C", "l", 1, 1)
	d := g.AddTask("D", "l", 2, 0)
	_ = g.Connect(a, 0, b, 0, 0)
	_ = g.Connect(a, 1, c, 0, 0)
	_ = g.Connect(b, 0, d, 0, 0)
	_ = g.Connect(c, 0, d, 1, 0)
	net := mkNet(t)
	// B and C on different hosts: they overlap, makespan = 1 + 2 + 1.
	tb := table("d",
		core.Placement{Task: a, TaskName: "A", Site: "s1", Hosts: []string{"h1"}, Predicted: time.Second},
		core.Placement{Task: b, TaskName: "B", Site: "s1", Hosts: []string{"h1"}, Predicted: 2 * time.Second},
		core.Placement{Task: c, TaskName: "C", Site: "s1", Hosts: []string{"h2"}, Predicted: 2 * time.Second},
		core.Placement{Task: d, TaskName: "D", Site: "s1", Hosts: []string{"h1"}, Predicted: time.Second},
	)
	res, err := Run(g, tb, net)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 4*time.Second {
		t.Fatalf("parallel-branch makespan = %v, want 4s", res.Makespan)
	}
	// Same-host placement serializes: 1 + 2 + 2 + 1.
	tb.Entries[2].Hosts = []string{"h1"}
	res2, err := Run(g, tb, net)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Makespan != 6*time.Second {
		t.Fatalf("serialized makespan = %v, want 6s", res2.Makespan)
	}
}

func TestMultiHostTaskOccupiesAll(t *testing.T) {
	g := afg.NewGraph("par")
	p := g.AddTask("P", "l", 0, 1)
	q := g.AddTask("Q", "l", 0, 1)
	_ = g.SetProps(p, afg.Properties{Mode: afg.Parallel, Nodes: 2})
	net := mkNet(t)
	tb := table("par",
		core.Placement{Task: p, TaskName: "P", Site: "s1", Hosts: []string{"h1", "h2"}, Predicted: 2 * time.Second},
		core.Placement{Task: q, TaskName: "Q", Site: "s1", Hosts: []string{"h2"}, Predicted: time.Second},
	)
	res, err := Run(g, tb, net)
	if err != nil {
		t.Fatal(err)
	}
	// Q must wait for the parallel task to release h2.
	if res.Times[q].Start != 2*time.Second {
		t.Fatalf("Q started at %v while h2 busy", res.Times[q].Start)
	}
}

func TestRunRejectsBadTables(t *testing.T) {
	g := chainGraph(0)
	net := mkNet(t)
	// Missing a task.
	bad := table("x",
		core.Placement{Task: 0, TaskName: "A", Site: "s1", Hosts: []string{"h"}, Predicted: time.Second},
	)
	if _, err := Run(g, bad, net); err == nil {
		t.Fatal("short table accepted")
	}
	// Non-topological order.
	bad2 := table("x",
		core.Placement{Task: 1, TaskName: "B", Site: "s1", Hosts: []string{"h"}, Predicted: time.Second},
		core.Placement{Task: 0, TaskName: "A", Site: "s1", Hosts: []string{"h"}, Predicted: time.Second},
		core.Placement{Task: 2, TaskName: "C", Site: "s1", Hosts: []string{"h"}, Predicted: time.Second},
	)
	if _, err := Run(g, bad2, net); err == nil {
		t.Fatal("non-topological table accepted")
	}
	// Unknown site.
	bad3 := table("x",
		core.Placement{Task: 0, TaskName: "A", Site: "mars", Hosts: []string{"h"}, Predicted: time.Second},
		core.Placement{Task: 1, TaskName: "B", Site: "s1", Hosts: []string{"h"}, Predicted: time.Second},
		core.Placement{Task: 2, TaskName: "C", Site: "s1", Hosts: []string{"h"}, Predicted: time.Second},
	)
	if _, err := Run(g, bad3, net); err == nil {
		t.Fatal("unknown site accepted")
	}
}

// Property: for random DAGs with random single-site placements, the
// simulator's own invariant checker passes, the makespan is at least the
// longest single task, and at most the serial sum of all tasks plus all
// transfer times (single-site placements have zero transfer).
func TestSimProperty(t *testing.T) {
	net := mkNet(t)
	f := func(seed int64, szRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(szRaw)%20 + 1
		g := afg.NewGraph("rand")
		for i := 0; i < n; i++ {
			g.AddTask("T", "l", n, n)
		}
		port := make([]int, n)
		for to := 1; to < n; to++ {
			for p := 0; p < rng.Intn(3); p++ {
				from := rng.Intn(to)
				_ = g.Connect(afg.TaskID(from), p, afg.TaskID(to), port[to], 0)
				port[to]++
			}
		}
		hosts := []string{"h1", "h2", "h3"}
		tb := &core.AllocationTable{App: "rand"}
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		var serial time.Duration
		var longest time.Duration
		for _, id := range order {
			d := time.Duration(rng.Intn(1000)+1) * time.Millisecond
			serial += d
			if d > longest {
				longest = d
			}
			tb.Entries = append(tb.Entries, core.Placement{
				Task: id, TaskName: "T", Site: "s1",
				Hosts: []string{hosts[rng.Intn(len(hosts))]}, Predicted: d,
			})
		}
		res, err := Run(g, tb, net)
		if err != nil {
			return false
		}
		return res.Makespan >= longest && res.Makespan <= serial
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}
