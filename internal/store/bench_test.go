package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vdce/internal/obs"
)

// BenchmarkWALAppend pins the cost the WAL adds to the admission hot
// path: framing + CRC + batch memcpy under a short mutex. The batch
// write+fsync happens off the submit path in the group committer, so
// this variant drains batches to /dev/null — isolating per-submit
// latency from storage throughput (which the Tmpfs/Disk variants
// measure, saturated, including the committer's share of the CPU). The
// acceptance budget is 2x the in-memory admission baseline (238
// ns/job, EXPERIMENTS.md).
func BenchmarkWALAppend(b *testing.B) {
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		b.Fatal(err)
	}
	benchWALAppend(b, b.TempDir(), f)
}

// BenchmarkWALAppendInstrumented is BenchmarkWALAppend with the
// metrics registry attached: the delta is the full observability tax
// on a WAL append — two time.Now() reads plus one histogram Observe
// (atomic bucket increment, CAS sum add).
func BenchmarkWALAppendInstrumented(b *testing.B) {
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	w := newWAL(dir, 0, f, 2*time.Millisecond, obs.NewRegistry())
	defer w.close()
	payload := []byte(`{"k":"submit","job":{"id":"job-123456","owner":"bench-owner","graph":{"name":"g","tasks":[{"id":"t0"},{"id":"t1"},{"id":"t2"}]},"k":4,"home":1,"priority":3,"share_weight":2,"labels":{"suite":"bench"},"submitted_at":"2026-08-01T12:00:00Z","state":"queued"}}`)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := w.append(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	if err := w.sync(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWALAppendTmpfs is the same workload saturating tmpfs:
// sustained throughput when every byte is also CRC'd, memcpy'd, and
// written by the committer, minus real-disk fsync stalls.
func BenchmarkWALAppendTmpfs(b *testing.B) {
	dir, err := os.MkdirTemp("/dev/shm", "walbench")
	if err != nil {
		b.Skipf("no tmpfs: %v", err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	f, err := os.OpenFile(filepath.Join(dir, segmentName(0)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	benchWALAppend(b, dir, f)
}

// BenchmarkWALAppendDisk is the same workload against real storage:
// sustained record throughput once the group committer is disk-bound
// and backpressure engages.
func BenchmarkWALAppendDisk(b *testing.B) {
	dir := b.TempDir()
	f, err := os.OpenFile(filepath.Join(dir, segmentName(0)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	benchWALAppend(b, dir, f)
}

func benchWALAppend(b *testing.B, dir string, f *os.File) {
	w := newWAL(dir, 0, f, 2*time.Millisecond, nil)
	defer w.close()
	// A realistic submit record payload (~256 bytes).
	payload := []byte(`{"k":"submit","job":{"id":"job-123456","owner":"bench-owner","graph":{"name":"g","tasks":[{"id":"t0"},{"id":"t1"},{"id":"t2"}]},"k":4,"home":1,"priority":3,"share_weight":2,"labels":{"suite":"bench"},"submitted_at":"2026-08-01T12:00:00Z","state":"queued"}}`)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := w.append(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	if err := w.sync(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStoreJobSubmitted is the full typed-append stack — JSON
// marshal, mirror apply, WAL append — over a bounded live-job set (the
// retention cap keeps real deployments bounded too).
func BenchmarkStoreJobSubmitted(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{CompactEvery: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Abandon()
	rec := JobRecord{
		Owner: "bench", Graph: []byte(`{"name":"g","tasks":[{"id":"t0"},{"id":"t1"}]}`),
		K: 4, Priority: 3, ShareWeight: 2,
		Labels:      map[string]string{"suite": "bench"},
		SubmittedAt: time.Unix(0, 0),
		State:       "queued",
	}
	ids := make([]string, 512)
	for i := range ids {
		ids[i] = fmt.Sprintf("job-%d", i+1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		r := rec
		for pb.Next() {
			r.ID = ids[i%len(ids)]
			i++
			if err := s.JobSubmitted(r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	if err := s.Sync(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStoreRecovery10k measures cold-start replay of a 10k-job
// queue (the EXPERIMENTS.md restart-recovery figure).
func BenchmarkStoreRecovery10k(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{CompactEvery: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	for i := 1; i <= 10_000; i++ {
		rec := JobRecord{
			ID: fmt.Sprintf("job-%d", i), Owner: fmt.Sprintf("owner-%d", i%8),
			Graph:    []byte(`{"name":"g","tasks":[{"id":"t0"}]}`),
			Priority: i % 5, ShareWeight: 1 + i%4,
			SubmittedAt: time.Unix(int64(i), 0), State: "queued",
		}
		if err := s.JobSubmitted(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		b.Fatal(err)
	}
	if err := s.Abandon(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Open(dir, Options{CompactEvery: 1 << 30})
		if err != nil {
			b.Fatal(err)
		}
		if n := len(r.Recovered().Jobs); n != 10_000 {
			b.Fatalf("recovered %d jobs", n)
		}
		r.Abandon()
	}
}
