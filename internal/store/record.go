// Package store is the durable control plane behind vdce.Config.StoreDir:
// an append-only, length-prefixed + CRC'd record log with group-committed
// fsync, periodic compacted snapshots, and startup replay. It persists the
// three state families a server restart would otherwise forget — the job
// lifecycle (submits, transitions, terminal states), per-owner fair-share
// weights and quota caps, and the task-performance measurement history —
// plus the event broker's high-water cursor, so SSE resume cursors from a
// previous incarnation are detected instead of silently replayed.
//
// Layout of a store directory:
//
//	wal-00000003.log    append-only record segments (frames below)
//	snap-00000003.json  compacted snapshot of everything before segment 3
//
// Recovery loads the highest parseable snapshot, then replays every
// segment numbered at or above it in order. A torn final record (the
// crash window of an in-flight group commit) is truncated silently;
// corruption anywhere before the tail surfaces as a *CorruptError.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Frame layout: a 4-byte little-endian payload length, a 4-byte
// little-endian CRC-32 (IEEE) of the payload, then the payload itself.
const frameHeader = 8

// MaxRecordSize bounds one record's payload. No legitimate record comes
// within orders of magnitude of it; a declared length beyond it is
// corruption by definition, never a torn tail — which is what lets the
// reader treat "frame extends past end of file" as a truncatable torn
// write without a wild length field swallowing valid later records.
const MaxRecordSize = 16 << 20

// ErrShortFrame reports an incomplete frame: the buffer ends before the
// declared frame does. At the end of the final segment this is a torn
// write and the tail is truncated; anywhere else it is corruption.
var ErrShortFrame = fmt.Errorf("store: incomplete record frame")

// CorruptError is the typed mid-log corruption report: a record whose
// declared length is impossible or whose checksum does not match, with
// more valid bytes after it ruled out. Recovery refuses to guess past
// it — the operator decides whether to restore or discard.
type CorruptError struct {
	// Path is the segment file, empty when decoding a raw buffer.
	Path string
	// Offset is the byte offset of the corrupt frame within it.
	Offset int64
	// Reason says what failed: "length" or "checksum".
	Reason string
}

func (e *CorruptError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("store: corrupt record at offset %d (%s)", e.Offset, e.Reason)
	}
	return fmt.Sprintf("store: corrupt record in %s at offset %d (%s)", e.Path, e.Offset, e.Reason)
}

// appendFrame appends one framed payload to dst.
func appendFrame(dst []byte, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeWALRecord decodes the first frame of buf, returning the payload
// (aliasing buf, not a copy) and the total bytes the frame consumed.
// ErrShortFrame means buf ends before the frame does (read more, or
// treat as a torn tail at end of file); a *CorruptError means the frame
// can never be valid no matter how many bytes follow.
func DecodeWALRecord(buf []byte) (payload []byte, n int, err error) {
	if len(buf) < frameHeader {
		return nil, 0, ErrShortFrame
	}
	length := binary.LittleEndian.Uint32(buf[0:4])
	if length > MaxRecordSize {
		return nil, 0, &CorruptError{Reason: "length"}
	}
	end := frameHeader + int(length)
	if len(buf) < end {
		return nil, 0, ErrShortFrame
	}
	payload = buf[frameHeader:end]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(buf[4:8]) {
		return nil, 0, &CorruptError{Reason: "checksum"}
	}
	return payload, end, nil
}
