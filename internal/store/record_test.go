package store

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestFrameRoundtrip(t *testing.T) {
	payloads := [][]byte{
		[]byte(""),
		[]byte("x"),
		[]byte(`{"k":"submit","job":{"id":"job-1"}}`),
		bytes.Repeat([]byte("a"), 4096),
	}
	var buf []byte
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	for i, want := range payloads {
		got, n, err := DecodeWALRecord(buf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: payload mismatch (%d bytes vs %d)", i, len(got), len(want))
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

func TestDecodeShortAndCorrupt(t *testing.T) {
	frame := appendFrame(nil, []byte("hello, durability"))

	for cut := 0; cut < len(frame); cut++ {
		_, _, err := DecodeWALRecord(frame[:cut])
		if err != ErrShortFrame {
			t.Fatalf("cut at %d: err = %v, want ErrShortFrame", cut, err)
		}
	}

	bad := bytes.Clone(frame)
	bad[frameHeader] ^= 1
	if _, _, err := DecodeWALRecord(bad); err == nil {
		t.Fatal("flipped payload byte decoded cleanly")
	}

	var wild [frameHeader + 4]byte
	binary.LittleEndian.PutUint32(wild[0:4], MaxRecordSize+1)
	_, _, err := DecodeWALRecord(wild[:])
	ce, ok := err.(*CorruptError)
	if !ok || ce.Reason != "length" {
		t.Fatalf("wild length: err = %v, want *CorruptError{length}", err)
	}
}

// FuzzDecodeWALRecord asserts the codec never panics and never returns
// success for a frame whose checksum would not verify — arbitrary torn,
// truncated, or bit-flipped input must land in ErrShortFrame or
// *CorruptError.
func FuzzDecodeWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendFrame(nil, []byte("seed")))
	f.Add(appendFrame(nil, nil))
	torn := appendFrame(nil, []byte("torn tail record"))
	f.Add(torn[:len(torn)-3])
	flipped := appendFrame(nil, []byte("flip"))
	flipped[frameHeader] ^= 0x80
	f.Add(flipped)
	var wild [frameHeader]byte
	binary.LittleEndian.PutUint32(wild[0:4], ^uint32(0))
	f.Add(wild[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, n, err := DecodeWALRecord(data)
		if err != nil {
			if err != ErrShortFrame {
				if _, ok := err.(*CorruptError); !ok {
					t.Fatalf("unexpected error type %T: %v", err, err)
				}
			}
			return
		}
		if n < frameHeader || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if len(payload) != n-frameHeader {
			t.Fatalf("payload %d bytes but frame consumed %d", len(payload), n)
		}
		// A successful decode must survive a re-encode byte-for-byte.
		if !bytes.Equal(appendFrame(nil, payload), data[:n]) {
			t.Fatal("decode/encode mismatch")
		}
	})
}
