package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"vdce/internal/obs"
)

// Options tunes a Store. The zero value takes the listed defaults.
type Options struct {
	// FlushInterval is the group-commit window: how long appended
	// records may sit in memory before the committer writes and fsyncs
	// them as one batch. Default 2ms.
	FlushInterval time.Duration
	// CompactEvery is how many appended records trigger a background
	// compaction (snapshot + segment rotation + old-file cleanup).
	// Default 4096.
	CompactEvery int
	// Metrics, when non-nil, receives the WAL's instrumentation:
	// vdce_wal_append_seconds (hot-path framing latency, including any
	// backpressure wait) and vdce_wal_fsync_batch_records (records per
	// group-committed fsync).
	Metrics *obs.Registry
}

func (o *Options) fillDefaults() {
	if o.FlushInterval <= 0 {
		o.FlushInterval = 2 * time.Millisecond
	}
	if o.CompactEvery <= 0 {
		o.CompactEvery = 4096
	}
}

// JobRecord is one job's persisted lifecycle: everything recovery needs
// to re-admit a queued job exactly as it was (owner, priority, share
// weight, deadline, home site, labels, graph) or to retain a terminal
// one for listings. Allocation tables and execution results are not
// persisted — a recovered in-flight job re-runs its scheduling round
// against current resource state instead of trusting a pre-crash
// placement.
type JobRecord struct {
	ID          string            `json:"id"`
	Owner       string            `json:"owner,omitempty"`
	Graph       json.RawMessage   `json:"graph"`
	K           int               `json:"k,omitempty"`
	Home        int               `json:"home,omitempty"`
	Priority    int               `json:"priority,omitempty"`
	ShareWeight int               `json:"share_weight,omitempty"`
	Labels      map[string]string `json:"labels,omitempty"`
	Deadline    time.Time         `json:"deadline,omitzero"`
	SubmittedAt time.Time         `json:"submitted_at"`
	State       string            `json:"state"`
	Error       string            `json:"error,omitempty"`
	StartedAt   time.Time         `json:"started_at,omitzero"`
	FinishedAt  time.Time         `json:"finished_at,omitzero"`
}

// OwnerRecord is one owner's persisted admin state: an admin-pinned
// fair-share weight (0 = none pinned) and, when HasCaps is set,
// per-owner quota caps overriding the site-wide configuration.
type OwnerRecord struct {
	Owner       string `json:"owner"`
	Weight      int    `json:"weight,omitempty"`
	HasCaps     bool   `json:"has_caps,omitempty"`
	MaxQueued   int    `json:"max_queued,omitempty"`
	MaxInFlight int    `json:"max_in_flight,omitempty"`
	MaxHosts    int    `json:"max_hosts,omitempty"`
}

// PerfRecord is one task-performance measurement (the Site Manager's
// write-back after a task execution). Replay feeds them back through
// RecordExecution in order, rebuilding the smoothed estimates.
type PerfRecord struct {
	Task    string        `json:"task"`
	Host    string        `json:"host"`
	Elapsed time.Duration `json:"elapsed"`
	At      time.Time     `json:"at"`
}

// maxPerfPerTask bounds the snapshot's retained measurement history per
// task, mirroring the task-performance database's own history cap.
const maxPerfPerTask = 128

// EventCursorSlack is how far beyond the observed broker cursor the
// persisted high-water mark is advanced — one hwm record per slack
// window of events, not one per event. After a restart the broker
// resumes above the mark, so any cursor issued before the crash is
// strictly below every new one and stale SSE resumes are detectable.
const EventCursorSlack = 65536

// State is the materialized store: the fold of the latest snapshot plus
// every replayed record. Recovery reads it once at boot.
type State struct {
	// MaxJobSeq is the highest job-ID sequence number ever persisted
	// ("job-17" -> 17); the pipeline resumes its ID counter above it so
	// recovered and new jobs never collide.
	MaxJobSeq int `json:"max_job_seq,omitempty"`
	// Jobs holds every retained job by ID.
	Jobs map[string]*JobRecord `json:"jobs,omitempty"`
	// Owners holds per-owner admin state by owner name.
	Owners map[string]OwnerRecord `json:"owners,omitempty"`
	// Perf is the measurement history, oldest first, bounded per task.
	Perf []PerfRecord `json:"perf,omitempty"`
	// EventCursor is the persisted broker high-water mark.
	EventCursor uint64 `json:"event_cursor,omitempty"`
}

func newState() *State {
	return &State{Jobs: make(map[string]*JobRecord), Owners: make(map[string]OwnerRecord)}
}

func (st *State) normalize() {
	if st.Jobs == nil {
		st.Jobs = make(map[string]*JobRecord)
	}
	if st.Owners == nil {
		st.Owners = make(map[string]OwnerRecord)
	}
}

// record is the WAL's one on-disk record shape: a kind tag plus the
// fields that kind uses. Unknown kinds are skipped on replay, so older
// binaries can read logs written by newer ones.
type record struct {
	Kind       string       `json:"k"`
	Job        *JobRecord   `json:"job,omitempty"`
	JobID      string       `json:"id,omitempty"`
	State      string       `json:"state,omitempty"`
	Error      string       `json:"error,omitempty"`
	StartedAt  time.Time    `json:"started_at,omitzero"`
	FinishedAt time.Time    `json:"finished_at,omitzero"`
	Owner      *OwnerRecord `json:"owner,omitempty"`
	Perf       *PerfRecord  `json:"perf,omitempty"`
	Cursor     uint64       `json:"cursor,omitempty"`
}

// Record kinds.
const (
	kindSubmit = "submit"
	kindState  = "state"
	kindDelete = "delete"
	kindOwner  = "owner"
	kindPerf   = "perf"
	kindHWM    = "hwm"
)

// Store is the durable control plane: typed appends fold into an
// in-memory mirror and frame into the group-committed WAL, and
// compaction periodically collapses the log into a snapshot. All
// methods are safe for concurrent use.
type Store struct {
	dir string
	opt Options
	w   *wal

	mu         sync.Mutex
	st         *State
	appends    int
	compacting bool
	closed     bool

	// recovered is the deep copy of the state as of Open, handed to the
	// boot path; the live mirror keeps evolving underneath it.
	recovered *State
}

// Open loads (or initializes) the store directory: latest snapshot,
// replayed log tail, committer started. A torn final record is
// truncated; corruption before the tail returns a *CorruptError.
func Open(dir string, opt Options) (*Store, error) {
	opt.fillDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	snaps, segs, err := scanDir(dir)
	if err != nil {
		return nil, err
	}

	st := newState()
	var base uint64
	if len(snaps) > 0 {
		base = snaps[len(snaps)-1]
		data, err := os.ReadFile(filepath.Join(dir, snapshotName(base)))
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(data, st); err != nil {
			return nil, fmt.Errorf("store: snapshot %s: %w", snapshotName(base), err)
		}
		st.normalize()
	}

	// Replay segments at or above the snapshot base, oldest first. Only
	// the final segment may end in a torn record.
	live := make([]uint64, 0, len(segs))
	for _, n := range segs {
		if n >= base {
			live = append(live, n)
		}
	}
	for i, n := range live {
		if err := replaySegment(dir, n, st, i == len(live)-1); err != nil {
			return nil, err
		}
	}

	// Open (or create) the current segment for appending.
	cur := base
	if len(live) > 0 {
		cur = live[len(live)-1]
	}
	f, err := os.OpenFile(filepath.Join(dir, segmentName(cur)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}

	// Clean up files a crashed compaction left behind: segments and
	// snapshots strictly below the loaded snapshot are dead weight.
	for _, n := range segs {
		if n < base {
			os.Remove(filepath.Join(dir, segmentName(n)))
		}
	}
	for _, n := range snaps {
		if n < base {
			os.Remove(filepath.Join(dir, snapshotName(n)))
		}
	}

	s := &Store{
		dir:       dir,
		opt:       opt,
		w:         newWAL(dir, cur, f, opt.FlushInterval, opt.Metrics),
		st:        st,
		recovered: st.clone(),
	}
	return s, nil
}

// scanDir lists snapshot and segment numbers present in dir, each
// sorted ascending.
func scanDir(dir string) (snaps, segs []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if n, ok := parseNumbered(name, "snap-", ".json"); ok {
			snaps = append(snaps, n)
		} else if n, ok := parseNumbered(name, "wal-", ".log"); ok {
			segs = append(segs, n)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return snaps, segs, nil
}

func parseNumbered(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// replaySegment folds one segment's records into st. In the final
// segment a trailing incomplete frame is a torn group commit: the file
// is truncated back to the last whole record. Anywhere else, or on a
// checksum failure with valid data after it ruled out, replay stops
// with a typed corruption error.
func replaySegment(dir string, n uint64, st *State, final bool) error {
	path := filepath.Join(dir, segmentName(n))
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	off := 0
	for off < len(data) {
		payload, consumed, err := DecodeWALRecord(data[off:])
		if err != nil {
			if final && tornTail(data[off:], err) {
				// Torn tail: drop the partial frame and keep going from
				// here on restart.
				return os.Truncate(path, int64(off))
			}
			if ce, ok := err.(*CorruptError); ok {
				ce.Path, ce.Offset = path, int64(off)
				return ce
			}
			return &CorruptError{Path: path, Offset: int64(off), Reason: "truncated mid-log"}
		}
		var rec record
		if jerr := json.Unmarshal(payload, &rec); jerr != nil {
			return &CorruptError{Path: path, Offset: int64(off), Reason: "payload"}
		}
		st.apply(rec)
		off += consumed
	}
	return nil
}

// tornTail reports whether a decode failure at the end of the final
// segment is attributable to a torn write rather than corruption: the
// buffer simply ends before the frame does (a partial append), or the
// checksum fails on a frame that ends exactly at end-of-file (a tail
// whose size landed before its data — delayed allocation). A checksum
// or length failure with bytes beyond the frame is real corruption.
func tornTail(rest []byte, err error) bool {
	if err == ErrShortFrame {
		return true
	}
	ce, ok := err.(*CorruptError)
	if !ok || ce.Reason != "checksum" || len(rest) < frameHeader {
		return false
	}
	length := int(uint32(rest[0]) | uint32(rest[1])<<8 | uint32(rest[2])<<16 | uint32(rest[3])<<24)
	return frameHeader+length == len(rest)
}

// apply folds one record into the state. Unknown kinds are ignored.
func (st *State) apply(rec record) {
	switch rec.Kind {
	case kindSubmit:
		if rec.Job == nil || rec.Job.ID == "" {
			return
		}
		j := *rec.Job
		st.Jobs[j.ID] = &j
		if seq, ok := jobSeq(j.ID); ok && seq > st.MaxJobSeq {
			st.MaxJobSeq = seq
		}
	case kindState:
		j, ok := st.Jobs[rec.JobID]
		if !ok {
			return
		}
		j.State = rec.State
		j.Error = rec.Error
		if !rec.StartedAt.IsZero() {
			j.StartedAt = rec.StartedAt
		}
		if !rec.FinishedAt.IsZero() {
			j.FinishedAt = rec.FinishedAt
		}
	case kindDelete:
		delete(st.Jobs, rec.JobID)
	case kindOwner:
		if rec.Owner != nil && rec.Owner.Owner != "" {
			st.Owners[rec.Owner.Owner] = *rec.Owner
		}
	case kindPerf:
		if rec.Perf != nil {
			st.Perf = append(st.Perf, *rec.Perf)
		}
	case kindHWM:
		if rec.Cursor > st.EventCursor {
			st.EventCursor = rec.Cursor
		}
	}
}

// jobSeq parses the numeric suffix of a pipeline job ID ("job-17").
func jobSeq(id string) (int, bool) {
	const prefix = "job-"
	if !strings.HasPrefix(id, prefix) {
		return 0, false
	}
	n, err := strconv.Atoi(id[len(prefix):])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// clone deep-copies the state.
func (st *State) clone() *State {
	c := &State{
		MaxJobSeq:   st.MaxJobSeq,
		Jobs:        make(map[string]*JobRecord, len(st.Jobs)),
		Owners:      make(map[string]OwnerRecord, len(st.Owners)),
		EventCursor: st.EventCursor,
	}
	for id, j := range st.Jobs {
		cp := *j
		c.Jobs[id] = &cp
	}
	for o, r := range st.Owners {
		c.Owners[o] = r
	}
	c.Perf = append(c.Perf, st.Perf...)
	return c
}

// SortedJobs returns the state's jobs ordered by (submission time, then
// job sequence) — the canonical admission order recovery re-admits in.
func (st *State) SortedJobs() []*JobRecord {
	out := make([]*JobRecord, 0, len(st.Jobs))
	for _, j := range st.Jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].SubmittedAt.Equal(out[j].SubmittedAt) {
			return out[i].SubmittedAt.Before(out[j].SubmittedAt)
		}
		si, _ := jobSeq(out[i].ID)
		sj, _ := jobSeq(out[j].ID)
		return si < sj
	})
	return out
}

// Recovered returns the state as of Open. The boot path reads it once,
// single-threaded; it does not track later appends.
func (s *Store) Recovered() *State { return s.recovered }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// append folds the record into the mirror and frames it into the WAL
// under one lock hold, keeping mirror order identical to log order,
// then triggers a background compaction once enough records piled up.
func (s *Store) append(rec record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errWALClosed
	}
	s.st.apply(rec)
	if err := s.w.append(payload); err != nil {
		s.mu.Unlock()
		return err
	}
	s.appends++
	compact := s.appends >= s.opt.CompactEvery && !s.compacting
	if compact {
		s.compacting = true
	}
	s.mu.Unlock()
	if compact {
		go func() {
			defer func() {
				s.mu.Lock()
				s.compacting = false
				s.mu.Unlock()
			}()
			_ = s.Compact()
		}()
	}
	return nil
}

// JobSubmitted persists a newly admitted job.
func (s *Store) JobSubmitted(j JobRecord) error {
	return s.append(record{Kind: kindSubmit, Job: &j})
}

// JobState persists a lifecycle transition. Zero started/finished times
// leave the previously recorded ones in place.
func (s *Store) JobState(id, state, errMsg string, started, finished time.Time) error {
	return s.append(record{Kind: kindState, JobID: id, State: state, Error: errMsg,
		StartedAt: started, FinishedAt: finished})
}

// JobDeleted persists a retention eviction, so the mirror does not grow
// past what the pipeline itself retains.
func (s *Store) JobDeleted(id string) error {
	return s.append(record{Kind: kindDelete, JobID: id})
}

// OwnerUpdated persists one owner's admin state (pinned weight and/or
// quota caps); the record replaces any previous one for the owner.
func (s *Store) OwnerUpdated(o OwnerRecord) error {
	return s.append(record{Kind: kindOwner, Owner: &o})
}

// PerfMeasured persists one task-performance measurement.
func (s *Store) PerfMeasured(p PerfRecord) error {
	return s.append(record{Kind: kindPerf, Perf: &p})
}

// NoteEventCursor advances the persisted broker high-water mark: when
// cur crosses the current mark, a new mark of cur+EventCursorSlack is
// appended — one write per slack window, not per event.
func (s *Store) NoteEventCursor(cur uint64) error {
	s.mu.Lock()
	if cur < s.st.EventCursor {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	return s.append(record{Kind: kindHWM, Cursor: cur + EventCursorSlack})
}

// EventCursor returns the mirror's current persisted high-water mark.
func (s *Store) EventCursor() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.EventCursor
}

// Sync blocks until every record appended so far is fsynced.
func (s *Store) Sync() error { return s.w.sync() }

// Compact collapses the log: rotate to a fresh segment, snapshot the
// mirror as of the rotation point, then delete the segments and
// snapshots the new snapshot supersedes. Crash-safe at every step — a
// crash before the snapshot lands replays the old segments; a crash
// before the deletions leaves stale files Open cleans up.
func (s *Store) Compact() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errWALClosed
	}
	s.prunePerfLocked()
	seg, err := s.w.rotate()
	if err != nil {
		s.mu.Unlock()
		return err
	}
	snap, err := json.Marshal(s.st)
	s.appends = 0
	s.mu.Unlock()
	if err != nil {
		return err
	}

	tmp := filepath.Join(s.dir, snapshotName(seg)+".tmp")
	if err := os.WriteFile(tmp, snap, 0o644); err != nil {
		return err
	}
	if err := renameDurable(tmp, filepath.Join(s.dir, snapshotName(seg)), s.dir); err != nil {
		return err
	}
	snaps, segs, err := scanDir(s.dir)
	if err != nil {
		return err
	}
	for _, n := range segs {
		if n < seg {
			os.Remove(filepath.Join(s.dir, segmentName(n)))
		}
	}
	for _, n := range snaps {
		if n < seg {
			os.Remove(filepath.Join(s.dir, snapshotName(n)))
		}
	}
	return nil
}

// renameDurable renames tmp into place and fsyncs the file and its
// directory, so the snapshot either exists whole or not at all.
func renameDurable(tmp, dst, dir string) error {
	f, err := os.Open(tmp)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	f.Close()
	if err := os.Rename(tmp, dst); err != nil {
		return err
	}
	return syncDir(dir)
}

// prunePerfLocked trims the mirror's measurement history to the last
// maxPerfPerTask entries per task (what the task-performance database
// itself retains), keeping snapshot size bounded. Caller holds s.mu.
func (s *Store) prunePerfLocked() {
	counts := make(map[string]int)
	for _, p := range s.st.Perf {
		counts[p.Task]++
	}
	over := false
	for _, c := range counts {
		if c > maxPerfPerTask {
			over = true
			break
		}
	}
	if !over {
		return
	}
	kept := make([]PerfRecord, 0, len(s.st.Perf))
	taken := make(map[string]int, len(counts))
	for i := len(s.st.Perf) - 1; i >= 0; i-- {
		p := s.st.Perf[i]
		if taken[p.Task] >= maxPerfPerTask {
			continue
		}
		taken[p.Task]++
		kept = append(kept, p)
	}
	// kept is newest-first; restore chronological order.
	for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
		kept[i], kept[j] = kept[j], kept[i]
	}
	s.st.Perf = kept
}

// Close is the graceful shutdown: compact (final snapshot, including
// the latest event high-water mark), then stop the committer and close
// the segment. The jobs the mirror holds as queued or running stay that
// way on disk — recovery re-admits them — because the pipeline
// suppresses persistence of shutdown-induced terminal transitions.
func (s *Store) Close() error {
	cerr := s.Compact()
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	werr := s.w.close()
	if cerr != nil {
		return cerr
	}
	return werr
}

// Abandon is the SIGKILL-equivalent teardown (tests, the chaos
// scenario): flush the user-space batch to the OS and stop, with no
// compaction and no graceful records. What the group-commit window had
// not yet accepted is lost, exactly as a real crash would lose it.
func (s *Store) Abandon() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.w.close()
}
