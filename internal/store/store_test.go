package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var t0 = time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)

func jobN(n int, owner, state string) JobRecord {
	return JobRecord{
		ID: "job-" + itoa(n), Owner: owner,
		Graph:    json.RawMessage(`{"name":"g"}`),
		Priority: n, ShareWeight: 1 + n%3,
		SubmittedAt: t0.Add(time.Duration(n) * time.Second),
		State:       state,
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func openT(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func TestStoreRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 1; i <= 3; i++ {
		if err := s.JobSubmitted(jobN(i, "alice", "queued")); err != nil {
			t.Fatalf("JobSubmitted: %v", err)
		}
	}
	if err := s.JobState("job-2", "running", "", t0.Add(time.Minute), time.Time{}); err != nil {
		t.Fatalf("JobState: %v", err)
	}
	if err := s.JobState("job-3", "failed", "boom", time.Time{}, t0.Add(2*time.Minute)); err != nil {
		t.Fatalf("JobState: %v", err)
	}
	if err := s.OwnerUpdated(OwnerRecord{Owner: "alice", Weight: 7, HasCaps: true, MaxQueued: 9}); err != nil {
		t.Fatalf("OwnerUpdated: %v", err)
	}
	if err := s.PerfMeasured(PerfRecord{Task: "lu", Host: "h1", Elapsed: time.Second, At: t0}); err != nil {
		t.Fatalf("PerfMeasured: %v", err)
	}
	if err := s.NoteEventCursor(5); err != nil {
		t.Fatalf("NoteEventCursor: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openT(t, dir, Options{})
	defer r.Abandon()
	st := r.Recovered()
	if len(st.Jobs) != 3 {
		t.Fatalf("recovered %d jobs, want 3", len(st.Jobs))
	}
	if st.MaxJobSeq != 3 {
		t.Fatalf("MaxJobSeq = %d, want 3", st.MaxJobSeq)
	}
	if got := st.Jobs["job-2"]; got.State != "running" || !got.StartedAt.Equal(t0.Add(time.Minute)) {
		t.Fatalf("job-2 = %+v, want running started at t0+1m", got)
	}
	if got := st.Jobs["job-3"]; got.State != "failed" || got.Error != "boom" {
		t.Fatalf("job-3 = %+v, want failed/boom", got)
	}
	if got := st.Jobs["job-1"]; got.State != "queued" || got.Owner != "alice" || got.Priority != 1 {
		t.Fatalf("job-1 = %+v, want queued alice prio 1", got)
	}
	if o := st.Owners["alice"]; o.Weight != 7 || !o.HasCaps || o.MaxQueued != 9 {
		t.Fatalf("owner alice = %+v", o)
	}
	if len(st.Perf) != 1 || st.Perf[0].Task != "lu" {
		t.Fatalf("perf = %+v", st.Perf)
	}
	if st.EventCursor != 5+EventCursorSlack {
		t.Fatalf("EventCursor = %d, want %d", st.EventCursor, 5+EventCursorSlack)
	}
}

func TestSyncSurvivesAbandon(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{FlushInterval: time.Hour}) // no timer flush: Sync must force it
	if err := s.JobSubmitted(jobN(1, "bob", "queued")); err != nil {
		t.Fatalf("JobSubmitted: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := s.Abandon(); err != nil {
		t.Fatalf("Abandon: %v", err)
	}
	r := openT(t, dir, Options{})
	defer r.Abandon()
	if len(r.Recovered().Jobs) != 1 {
		t.Fatalf("recovered %d jobs after crash, want 1", len(r.Recovered().Jobs))
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 1; i <= 2; i++ {
		if err := s.JobSubmitted(jobN(i, "o", "queued")); err != nil {
			t.Fatalf("JobSubmitted: %v", err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := s.Abandon(); err != nil {
		t.Fatalf("Abandon: %v", err)
	}
	// Simulate a torn group commit: a partial frame at the tail.
	seg := filepath.Join(dir, segmentName(0))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := appendFrame(nil, []byte(`{"k":"submit","job":{"id":"job-99"}}`))
	if _, err := f.Write(torn[:len(torn)-5]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := openT(t, dir, Options{})
	defer r.Abandon()
	st := r.Recovered()
	if len(st.Jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2 (torn record dropped)", len(st.Jobs))
	}
	if _, ok := st.Jobs["job-99"]; ok {
		t.Fatal("torn record must not replay")
	}
	// The tail must have been truncated back to whole records.
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(seg)
	off := 0
	for off < len(data) {
		_, n, err := DecodeWALRecord(data[off:])
		if err != nil {
			t.Fatalf("after truncation segment still has bad frame at %d (size %d): %v", off, fi.Size(), err)
		}
		off += n
	}
}

func TestCorruptMidLogTyped(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 1; i <= 3; i++ {
		if err := s.JobSubmitted(jobN(i, "o", "queued")); err != nil {
			t.Fatalf("JobSubmitted: %v", err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := s.Abandon(); err != nil {
		t.Fatalf("Abandon: %v", err)
	}
	// Flip one payload byte of the first record: a checksum failure with
	// valid frames after it — corruption, not a torn tail.
	seg := filepath.Join(dir, segmentName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeader+2] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(dir, Options{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Open = %v, want *CorruptError", err)
	}
	if ce.Reason != "checksum" || ce.Offset != 0 {
		t.Fatalf("CorruptError = %+v, want checksum at offset 0", ce)
	}
}

func TestCompactionCollapsesLog(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{CompactEvery: 1 << 30}) // manual compaction only
	for i := 1; i <= 10; i++ {
		if err := s.JobSubmitted(jobN(i, "o", "queued")); err != nil {
			t.Fatalf("JobSubmitted: %v", err)
		}
	}
	if err := s.JobDeleted("job-1"); err != nil {
		t.Fatalf("JobDeleted: %v", err)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	// A second batch lands in the rotated segment.
	if err := s.JobSubmitted(jobN(11, "o", "queued")); err != nil {
		t.Fatalf("JobSubmitted: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	snaps, segs, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshot after compaction")
	}
	for _, n := range segs {
		if n < snaps[len(snaps)-1] {
			t.Fatalf("stale segment %d survived compaction (snap %d)", n, snaps[len(snaps)-1])
		}
	}

	r := openT(t, dir, Options{})
	defer r.Abandon()
	st := r.Recovered()
	if len(st.Jobs) != 10 {
		t.Fatalf("recovered %d jobs, want 10 (11 submitted, 1 deleted)", len(st.Jobs))
	}
	if _, ok := st.Jobs["job-1"]; ok {
		t.Fatal("deleted job survived compaction")
	}
	if st.MaxJobSeq != 11 {
		t.Fatalf("MaxJobSeq = %d, want 11", st.MaxJobSeq)
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{CompactEvery: 8})
	for i := 1; i <= 64; i++ {
		if err := s.JobSubmitted(jobN(i, "o", "queued")); err != nil {
			t.Fatalf("JobSubmitted: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r := openT(t, dir, Options{})
	defer r.Abandon()
	if got := len(r.Recovered().Jobs); got != 64 {
		t.Fatalf("recovered %d jobs through auto-compactions, want 64", got)
	}
}

func TestEventCursorOneWriteNeeded(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	defer s.Abandon()
	if err := s.NoteEventCursor(1); err != nil {
		t.Fatal(err)
	}
	hwm := s.EventCursor()
	if hwm != 1+EventCursorSlack {
		t.Fatalf("hwm = %d, want %d", hwm, 1+EventCursorSlack)
	}
	// Cursors inside the slack window must not append new marks.
	for c := uint64(2); c < 100; c++ {
		if err := s.NoteEventCursor(c); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.EventCursor(); got != hwm {
		t.Fatalf("hwm moved to %d inside the slack window", got)
	}
	if err := s.NoteEventCursor(hwm + 1); err != nil {
		t.Fatal(err)
	}
	if got := s.EventCursor(); got != hwm+1+EventCursorSlack {
		t.Fatalf("hwm = %d after crossing, want %d", got, hwm+1+EventCursorSlack)
	}
}

func TestPerfHistoryBounded(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 0; i < maxPerfPerTask+50; i++ {
		if err := s.PerfMeasured(PerfRecord{Task: "lu", Host: "h", Elapsed: time.Duration(i), At: t0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PerfMeasured(PerfRecord{Task: "qr", Host: "h", Elapsed: 1, At: t0}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openT(t, dir, Options{})
	defer r.Abandon()
	counts := map[string]int{}
	for _, p := range r.Recovered().Perf {
		counts[p.Task]++
	}
	if counts["lu"] != maxPerfPerTask {
		t.Fatalf("lu history = %d, want pruned to %d", counts["lu"], maxPerfPerTask)
	}
	if counts["qr"] != 1 {
		t.Fatalf("qr history = %d, want 1", counts["qr"])
	}
	// Pruning keeps the newest measurements in order.
	perf := r.Recovered().Perf
	last := time.Duration(-1)
	for _, p := range perf {
		if p.Task == "lu" {
			if p.Elapsed <= last {
				t.Fatalf("pruned history out of order: %v after %v", p.Elapsed, last)
			}
			last = p.Elapsed
		}
	}
	if last != time.Duration(maxPerfPerTask+49) {
		t.Fatalf("newest lu measurement = %v, want %d", last, maxPerfPerTask+49)
	}
}

func TestOpenRejectsWildLength(t *testing.T) {
	dir := t.TempDir()
	// A frame declaring an absurd length followed by real bytes: never a
	// torn tail, always corruption.
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MaxRecordSize+1)
	data := append(hdr[:], make([]byte, 64)...)
	if err := os.WriteFile(filepath.Join(dir, segmentName(0)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, Options{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Open = %v, want *CorruptError for wild length", err)
	}
}
