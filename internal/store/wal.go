package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"vdce/internal/obs"
)

// errWALClosed is returned by appends and syncs after the log shut down.
var errWALClosed = errors.New("store: log closed")

// wal is the append-only segment log under a Store. Appends are group
// committed: append frames the payload into an in-memory batch under a
// short mutex (no I/O on the caller), and a background committer writes
// and fsyncs the whole batch once per flush interval — so the submit
// hot path pays a memcpy and a CRC, while durability costs one fsync
// per interval regardless of how many records landed in it.
type wal struct {
	dir        string
	flushEvery time.Duration

	// ioMu serializes file writes and segment rotation; it is never held
	// while appenders run, so a slow fsync stalls durability, not admission.
	ioMu sync.Mutex
	f    *os.File
	seg  uint64

	mu   sync.Mutex
	cond *sync.Cond
	buf  []byte
	// spare is the last written batch buffer, recycled so steady-state
	// appends copy into pre-grown capacity instead of re-growing from nil
	// after every flush.
	spare []byte
	// nAppend counts records accepted into the batch; nDurable counts
	// records whose batch has been fsynced. sync() waits for the gap to
	// close.
	nAppend  uint64
	nDurable uint64
	// batchRecs counts records in the current pending batch (guarded by
	// mu); the committer snapshots and resets it per flush to feed the
	// fsync batch-size histogram.
	batchRecs uint64
	err       error // sticky first I/O error; poisons later appends
	closed    bool

	// appendHist/fsyncBatch are the WAL's instrumentation handles; nil
	// (un-instrumented stores) costs the hot path one predictable branch.
	appendHist *obs.Histogram
	fsyncBatch *obs.Histogram

	kick chan struct{}
	quit chan struct{}
	done chan struct{}
}

// kickBatchBytes is the pending-batch size that wakes the committer
// early, bounding batch memory between flush ticks under burst load.
const kickBatchBytes = 1 << 20

// maxBatchBytes is the hard cap on the pending batch: past it appenders
// block until the committer drains, so a stalled disk applies
// backpressure instead of growing an unbounded buffer.
const maxBatchBytes = 8 << 20

func segmentName(n uint64) string  { return fmt.Sprintf("wal-%08d.log", n) }
func snapshotName(n uint64) string { return fmt.Sprintf("snap-%08d.json", n) }

// newWAL wraps an already-opened current segment file and starts the
// committer. reg, when non-nil, receives the append-latency and
// fsync-batch-size histograms (installed before the committer starts,
// so the handles are never written concurrently).
func newWAL(dir string, seg uint64, f *os.File, flushEvery time.Duration, reg *obs.Registry) *wal {
	w := &wal{
		dir:        dir,
		flushEvery: flushEvery,
		f:          f,
		seg:        seg,
		kick:       make(chan struct{}, 1),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	if reg != nil {
		w.appendHist = reg.Histogram("vdce_wal_append_seconds",
			"WAL append latency: framing plus CRC under the batch mutex, including any full-batch backpressure wait.",
			obs.WALBuckets).With()
		w.fsyncBatch = reg.Histogram("vdce_wal_fsync_batch_records",
			"Records group-committed per WAL fsync.", obs.SizeBuckets).With()
	}
	w.cond = sync.NewCond(&w.mu)
	go w.committer()
	return w
}

// append frames one payload into the pending batch. It does no I/O; the
// record is durable once a later flush covers it (see sync).
func (w *wal) append(payload []byte) error {
	if w.appendHist != nil {
		start := time.Now()
		err := w.appendInner(payload)
		w.appendHist.Observe(time.Since(start).Seconds())
		return err
	}
	return w.appendInner(payload)
}

func (w *wal) appendInner(payload []byte) error {
	w.mu.Lock()
	for len(w.buf) >= maxBatchBytes && !w.closed && w.err == nil {
		w.mu.Unlock()
		w.wake()
		w.mu.Lock()
		if len(w.buf) < maxBatchBytes || w.closed || w.err != nil {
			break
		}
		w.cond.Wait()
	}
	if w.closed {
		w.mu.Unlock()
		return errWALClosed
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if w.buf == nil && w.spare != nil {
		w.buf, w.spare = w.spare, nil
	}
	w.buf = appendFrame(w.buf, payload)
	w.nAppend++
	w.batchRecs++
	big := len(w.buf) >= kickBatchBytes
	w.mu.Unlock()
	if big {
		w.wake()
	}
	return nil
}

func (w *wal) wake() {
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// sync blocks until every record appended before the call is fsynced
// (the durability barrier graceful shutdown and tests use).
func (w *wal) sync() error {
	w.mu.Lock()
	target := w.nAppend
	w.mu.Unlock()
	w.wake()
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.err == nil && !w.closed && w.nDurable < target {
		w.cond.Wait()
	}
	if w.err != nil {
		return w.err
	}
	if w.nDurable < target {
		return errWALClosed
	}
	return nil
}

// committer is the group-commit loop: one write+fsync per flush tick
// (or early wake on a large batch), then a final flush at shutdown.
func (w *wal) committer() {
	defer close(w.done)
	t := time.NewTicker(w.flushEvery)
	defer t.Stop()
	for {
		select {
		case <-w.quit:
			w.flushOnce()
			return
		case <-t.C:
		case <-w.kick:
		}
		w.flushOnce()
	}
}

// flushOnce writes and fsyncs the pending batch. The batch is detached
// under mu, written under ioMu only — appenders never wait on the disk.
func (w *wal) flushOnce() {
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	w.flushLockedIO()
}

// flushLockedIO is flushOnce with ioMu already held (rotation flushes
// the old segment before switching files).
func (w *wal) flushLockedIO() {
	w.mu.Lock()
	b, target, f := w.buf, w.nAppend, w.f
	recs := w.batchRecs
	w.batchRecs = 0
	w.buf = nil
	bad := w.err
	w.mu.Unlock()
	if bad != nil {
		return
	}
	if w.fsyncBatch != nil && recs > 0 {
		w.fsyncBatch.Observe(float64(recs))
	}
	var err error
	if len(b) > 0 {
		if f == nil {
			err = errWALClosed
		} else if _, err = f.Write(b); err == nil {
			// EINVAL means the target cannot fsync (character devices,
			// some network filesystems) — best-effort there, not fatal.
			if serr := f.Sync(); serr != nil && !errors.Is(serr, syscall.EINVAL) {
				err = serr
			}
		}
	}
	w.mu.Lock()
	if err != nil {
		if w.err == nil {
			w.err = err
		}
	} else if target > w.nDurable {
		w.nDurable = target
	}
	if cap(b) > 0 && cap(b) > cap(w.spare) {
		w.spare = b[:0]
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

// rotate flushes and closes the current segment, then opens the next
// one. Returns the new segment number; callers write the matching
// snapshot after (never before) the rotation point exists on disk.
func (w *wal) rotate() (uint64, error) {
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	w.flushLockedIO()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, errWALClosed
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	old := w.f
	w.mu.Unlock()
	if old != nil {
		if err := old.Close(); err != nil {
			return 0, err
		}
	}
	next := w.seg + 1
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(next)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		w.mu.Lock()
		if w.err == nil {
			w.err = err
		}
		w.mu.Unlock()
		return 0, err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return 0, err
	}
	w.mu.Lock()
	w.f = f
	w.mu.Unlock()
	w.seg = next
	return next, nil
}

// close stops the committer (which flushes the pending batch), then
// closes the segment file. Idempotent.
func (w *wal) close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.quit)
	<-w.done
	w.mu.Lock()
	f, err := w.f, w.err
	w.f = nil
	w.cond.Broadcast()
	w.mu.Unlock()
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// syncDir fsyncs a directory so file creations and renames inside it
// survive a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
